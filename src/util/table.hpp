// Aligned-column table and CSV emission for the benchmark harness.
//
// Every bench binary regenerating a paper table/figure prints its rows both
// as an aligned human-readable table (stdout) and, optionally, as CSV so the
// series can be plotted directly against the paper figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bsis {

/// Accumulates rows of string cells and prints them column-aligned, or as
/// CSV. Numeric convenience overloads format with enough digits for
/// round-tripping benchmark results.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Begins a new row; subsequent add() calls append cells to it.
    Table& new_row();

    Table& add(const std::string& cell);
    Table& add(const char* cell) { return add(std::string(cell)); }
    Table& add(double value, int precision = 6);
    Table& add(std::int64_t value);
    Table& add(int value) { return add(static_cast<std::int64_t>(value)); }
    Table& add(std::size_t value)
    {
        return add(static_cast<std::int64_t>(value));
    }

    std::size_t num_rows() const { return rows_.size(); }

    /// Prints the table with aligned columns and a rule under the header.
    void print(std::ostream& os) const;

    /// Prints the table as RFC-4180-ish CSV (no quoting: cells never contain
    /// commas by construction).
    void print_csv(std::ostream& os) const;

    /// Writes the CSV form to `path`, creating parent-less files only.
    void write_csv(const std::string& path) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace bsis
