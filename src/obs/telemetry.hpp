// Process-wide telemetry switchboard.
//
// The solver hot paths are compiled with telemetry unconditionally present
// but record nothing unless enabled: every record site is gated by an
// inlined relaxed atomic load (`metrics_enabled()` / `trace_enabled()`),
// so the disabled cost is one predictable branch -- verified by the
// bench_regression overhead gate. The global MetricsRegistry and
// TraceSession singletons live for the process; examples and apps flip the
// flags from `--metrics-json=` / `--trace=` CLI options.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"

namespace bsis::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{false};
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

inline bool metrics_enabled()
{
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

inline bool trace_enabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// True when any telemetry sink is on (cheap pre-check for sites that
/// would otherwise compute a value just to record it).
inline bool enabled() { return metrics_enabled() || trace_enabled(); }

void set_metrics_enabled(bool on);
void set_trace_enabled(bool on);

/// The process-wide registries. Construction is thread-safe; recording
/// into them is only meaningful while the matching flag is on.
MetricsRegistry& metrics();
TraceSession& trace();

/// Mirrors the global TraceSession's span-drop count into the
/// `obs.trace.dropped` gauge of the global registry, so a truncated trace
/// is visible in the metrics snapshot. Called on the cold paths that
/// publish snapshots (record_solve_metrics, ObsCli::flush).
void sync_trace_dropped_gauge();

/// RAII span against the global TraceSession; no-op when tracing is off
/// at construction time (the end is driven by the same decision, so a
/// flag flip mid-span cannot unbalance the per-thread stack).
class ScopedSpan {
public:
    explicit ScopedSpan(const char* name, const char* cat = "solver",
                        std::int64_t arg = -1)
    {
        if (trace_enabled()) {
            active_ = true;
            trace().begin(name, cat, arg);
        }
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    ~ScopedSpan()
    {
        if (active_) {
            trace().end();
        }
    }

private:
    bool active_ = false;
};

/// Runs `f` under a span named `name` (category "kernel"). The span form
/// the solver kernels use to tag one phase -- an SpMV sweep, a reduction,
/// a fused vector update -- without restructuring the kernel body; when
/// tracing is off this compiles down to the call plus one relaxed load.
template <typename F>
inline decltype(auto) traced(const char* name, F&& f)
{
    ScopedSpan span(name, "kernel");
    return std::forward<F>(f)();
}

/// Calling thread's consumed CPU nanoseconds, or -1 where no per-thread
/// CPU clock exists. Immune to scheduler preemption, which is exactly
/// what drift detection needs on a loaded machine (see PhaseTotals).
inline std::int64_t thread_cpu_ns()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 +
               ts.tv_nsec;
    }
#endif
    return -1;
}

/// RAII phase timer against the global PhaseAccumulator (the measurement
/// half of the attribution layer); no-op unless metrics are enabled at
/// construction. Enabled cost: two steady_clock reads, two thread-CPU
/// clock reads, and three relaxed fetch_adds on the thread's own shard.
/// Where no thread-CPU clock exists the wall time is recorded on both
/// axes.
class PhaseTimer {
public:
    explicit PhaseTimer(Phase phase)
    {
        if (metrics_enabled()) {
            active_ = true;
            phase_ = phase;
            start_cpu_ = thread_cpu_ns();
            start_ = std::chrono::steady_clock::now();
        }
    }

    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;

    ~PhaseTimer()
    {
        if (active_) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            const auto cpu = start_cpu_ >= 0
                                 ? thread_cpu_ns() - start_cpu_
                                 : ns;
            phase_times().add(phase_, ns, cpu);
        }
    }

private:
    bool active_ = false;
    Phase phase_ = Phase::other;
    std::int64_t start_cpu_ = -1;
    std::chrono::steady_clock::time_point start_;
};

/// Phase-kind form of traced(): the span is still emitted under `name`
/// for the trace timeline, and the elapsed time is additionally tallied
/// under `phase` in the global PhaseAccumulator so the attribution layer
/// can join it with the work ledger. All solver-kernel spans use this
/// form since the attribution PR.
template <typename F>
inline decltype(auto) traced(Phase phase, const char* name, F&& f)
{
    ScopedSpan span(name, "kernel");
    PhaseTimer timer(phase);
    return std::forward<F>(f)();
}

/// Shorthand using the phase's canonical span name.
template <typename F>
inline decltype(auto) traced(Phase phase, F&& f)
{
    return traced(phase, phase_name(phase), std::forward<F>(f));
}

}  // namespace bsis::obs
