#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace bsis::obs {

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

double TraceSession::now_us() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void TraceSession::begin(const char* name, const char* cat, std::int64_t arg)
{
    auto& shard = shards_.local();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stack.push_back({name, cat, now_us(), arg});
}

void TraceSession::end()
{
    auto& shard = shards_.local();
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.stack.empty()) {
        return;  // unmatched end(): ignore rather than corrupt the stack
    }
    const OpenSpan span = shard.stack.back();
    shard.stack.pop_back();
    TraceEvent event;
    event.name = span.name;
    event.cat = span.cat;
    event.ts_us = span.ts_us;
    event.dur_us = now_us() - span.ts_us;
    event.pid = host_pid;
    event.tid = shard.index;
    event.arg = span.arg;
    push_event(shard, event);
}

void TraceSession::emit_complete(const char* name, const char* cat, int pid,
                                 int tid, double ts_us, double dur_us,
                                 std::int64_t arg)
{
    auto& shard = shards_.local();
    std::lock_guard<std::mutex> lock(shard.mutex);
    push_event(shard, {name, cat, ts_us, dur_us, pid, tid, arg});
}

void TraceSession::push_event(Shard& shard, const TraceEvent& event)
{
    if (shard.events.size() >=
        shard_capacity_.load(std::memory_order_relaxed)) {
        if (dropped_.fetch_add(1, std::memory_order_relaxed) == 0) {
            // Warn once per session so a truncated trace never passes
            // silently; the running total is surfaced as the
            // `obs.trace.dropped` gauge in the metrics snapshot.
            std::fprintf(stderr,
                         "[bsis.obs] trace shard capacity (%zu events) "
                         "reached; further spans will be dropped and "
                         "counted\n",
                         shard_capacity_.load(std::memory_order_relaxed));
        }
        return;
    }
    shard.events.push_back(event);
}

void TraceSession::clear()
{
    shards_.for_each([](Shard& shard) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.events.clear();
        shard.stack.clear();
    });
    dropped_.store(0, std::memory_order_relaxed);
    epoch_ = std::chrono::steady_clock::now();
}

void TraceSession::set_shard_capacity(std::size_t max_events)
{
    shard_capacity_.store(max_events, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceSession::snapshot() const
{
    std::vector<TraceEvent> events;
    shards_.for_each([&](const Shard& shard) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        events.insert(events.end(), shard.events.begin(),
                      shard.events.end());
    });
    return events;
}

std::string TraceSession::chrome_trace_json() const
{
    auto events = snapshot();
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         if (a.pid != b.pid) {
                             return a.pid < b.pid;
                         }
                         if (a.tid != b.tid) {
                             return a.tid < b.tid;
                         }
                         if (a.ts_us != b.ts_us) {
                             return a.ts_us < b.ts_us;
                         }
                         // Ties: the longer span is the enclosing one.
                         return a.dur_us > b.dur_us;
                     });
    std::ostringstream os;
    os.precision(12);
    os << "{\"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto& e = events[i];
        os << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"";
        json_escape(os, e.name);
        os << "\", \"cat\": \"";
        json_escape(os, e.cat);
        os << "\", \"ph\": \"X\", \"ts\": " << e.ts_us
           << ", \"dur\": " << e.dur_us << ", \"pid\": " << e.pid
           << ", \"tid\": " << e.tid;
        if (e.arg >= 0) {
            os << ", \"args\": {\"id\": " << e.arg << "}";
        }
        os << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
    return os.str();
}

bool TraceSession::write_chrome_trace(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << chrome_trace_json();
    return static_cast<bool>(out);
}

}  // namespace bsis::obs
