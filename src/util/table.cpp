#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace bsis {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    BSIS_ENSURE_ARG(!header_.empty(), "table needs at least one column");
}

Table& Table::new_row()
{
    rows_.emplace_back();
    return *this;
}

Table& Table::add(const std::string& cell)
{
    BSIS_ENSURE_ARG(!rows_.empty(), "call new_row() before add()");
    BSIS_ENSURE_ARG(rows_.back().size() < header_.size(),
                    "row already has a cell per column");
    rows_.back().push_back(cell);
    return *this;
}

Table& Table::add(double value, int precision)
{
    std::ostringstream os;
    os << std::setprecision(precision) << value;
    return add(os.str());
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << row[c];
        }
        os << '\n';
    };
    print_row(header_);
    std::size_t total = 0;
    for (auto w : width) {
        total += w + 2;
    }
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) {
        print_row(row);
    }
}

void Table::print_csv(std::ostream& os) const
{
    const auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) {
                os << ',';
            }
            os << row[c];
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto& row : rows_) {
        print_row(row);
    }
}

void Table::write_csv(const std::string& path) const
{
    std::ofstream file(path);
    if (!file) {
        throw Error("Table::write_csv: cannot open " + path);
    }
    print_csv(file);
}

}  // namespace bsis
