// Fig. 1 of the paper: execution profile of one Picard loop of the
// collision-kernel proxy app in its ORIGINAL configuration -- collision
// operator work on the GPU, but the linear solver still on the CPU, with
// device-to-host and host-to-device transfers around every solve. The
// paper reads off: ~48% of the loop on the CPU, of which ~66% inside the
// dgbsv call itself, and ~9% transfer overhead. This is the motivation for
// porting the solver to the GPU.
//
// The GPU-resident part (assembly of the collision operator, moments,
// scatter/gather) is modeled from its arithmetic cost on the device; the
// solve and transfer pieces use the same models as the other benchmarks.
#include <iostream>

#include "common.hpp"

int main()
{
    using namespace bsis;
    using bsis::bench::XgcBatch;

    const size_type nbatch = bench::quick_mode() ? 240 : 960;
    const auto& device = gpusim::v100();
    const CpuExecutor skylake;

    XgcBatch problem(nbatch);
    const auto [kl, ku] = bandwidths(problem.a);
    const index_type rows = problem.a.rows();
    const index_type nnz = problem.a.nnz_per_entry();

    // --- GPU-resident collision-kernel work (per Picard iteration) ---
    // Operator assembly with Rosenbluth-like integrals (~600 flops per
    // stencil entry: tensor, Maxwellian ratios, shell integrals, metric
    // factors), moment/diagnostic reductions, and the Picard update.
    const double assembly_flops =
        static_cast<double>(nbatch) * nnz * 600.0;
    const double moment_flops =
        static_cast<double>(nbatch) * rows * 120.0;
    // The kernel sustains a modest fraction of peak (transcendental- and
    // gather-heavy; calibrated against the Fig. 1 segment shares).
    const double gpu_rate = device.peak_fp64_tflops * 1e12 * 0.033;
    const double gpu_seconds =
        (assembly_flops + moment_flops) / gpu_rate +
        3 * device.launch_overhead_us * 1e-6;

    // --- transfers: matrices + rhs to the host, solutions back ---
    const double h2d_bytes =
        static_cast<double>(nbatch) * rows * sizeof(real_type);
    const double d2h_bytes =
        static_cast<double>(nbatch) *
        (static_cast<double>(nnz) + rows) * sizeof(real_type);
    // The Fig. 1 configuration attaches the GPU over PCIe (the proxy-app
    // profiling node), not Summit's NVLink.
    auto link = device;
    link.link_bw_gbps = 16.0;
    const double transfer_seconds =
        gpusim::transfer_seconds(link, d2h_bytes) +
        gpusim::transfer_seconds(link, h2d_bytes);

    // --- CPU part: dgbsv solves + host-side pre/post processing ---
    const double solve_seconds =
        static_cast<double>((nbatch + skylake.cpu().cores_used - 1) /
                            skylake.cpu().cores_used) *
        gpusim::cpu_gbsv_system_seconds(skylake.cpu(), rows, kl, ku);
    // Associated host-side processing around the solves (band pack/
    // unpack, Picard bookkeeping): proportional to the solve work; the
    // paper's profile attributes ~2/3 of the CPU segment to dgbsv itself.
    const double host_prep_seconds = 0.5 * solve_seconds;
    const double cpu_seconds = solve_seconds + host_prep_seconds;

    const double total = gpu_seconds + transfer_seconds + cpu_seconds;

    Table table({"segment", "ms_per_picard_iteration", "fraction_%"});
    const auto row = [&](const char* name, double seconds) {
        table.new_row().add(name).add(seconds * 1e3, 5).add(
            100.0 * seconds / total, 4);
    };
    row("gpu: collision kernel (assembly+moments)", gpu_seconds);
    {
        auto link2 = device;
        link2.link_bw_gbps = 16.0;
        row("transfer: D2H (matrices, rhs)",
            gpusim::transfer_seconds(link2, d2h_bytes));
        row("transfer: H2D (solutions)",
            gpusim::transfer_seconds(link2, h2d_bytes));
    }
    row("cpu: dgbsv solve", solve_seconds);
    row("cpu: associated processing", host_prep_seconds);
    bench::emit("fig1_profile",
                "Fig. 1: modeled profile of one Picard iteration with the "
                "CPU-resident solver (batch of 960 systems, V100 host "
                "link)",
                table);

    std::cout << "\nDerived quantities (paper: ~48% CPU, ~66% of CPU in "
                 "dgbsv, ~9% transfers):\n"
              << "  cpu fraction:          " << 100.0 * cpu_seconds / total
              << " %\n"
              << "  dgbsv share of cpu:    "
              << 100.0 * solve_seconds / cpu_seconds << " %\n"
              << "  transfer fraction:     "
              << 100.0 * transfer_seconds / total << " %\n";
    return 0;
}
