// Fundamental index/value typedefs used across the library.
#pragma once

#include <complex>
#include <cstdint>

namespace bsis {

/// Index type for rows/columns within one (small) batch entry.
using index_type = std::int32_t;

/// Size type for batch counts and global array lengths.
using size_type = std::int64_t;

/// Default scalar type. The XGC collision kernel uses FP64 throughout.
using real_type = double;

/// Complex scalar, used by the eigenvalue solver (spectra are complex for
/// the nonsymmetric collision matrices -- Fig. 2 of the paper).
using complex_type = std::complex<double>;

}  // namespace bsis
