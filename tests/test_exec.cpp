#include <gtest/gtest.h>

#include <cmath>

#include "exec/executor.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"
#include "util/rng.hpp"
#include "xgc/workload.hpp"

namespace bsis {
namespace {

struct Problem {
    BatchCsr<real_type> a;
    BatchVector<real_type> b;

    static Problem make(size_type nbatch)
    {
        Problem p{make_synthetic_batch(16, 15, StencilKind::nine_point,
                                       nbatch, {}),
                  BatchVector<real_type>(nbatch, 240)};
        Rng rng(17);
        for (size_type i = 0; i < nbatch; ++i) {
            auto bv = p.b.entry(i);
            for (index_type k = 0; k < bv.len; ++k) {
                bv[k] = rng.uniform(-1.0, 1.0);
            }
        }
        return p;
    }
};

real_type residual_inf(const BatchCsr<real_type>& a, size_type entry,
                       ConstVecView<real_type> x, ConstVecView<real_type> b)
{
    std::vector<real_type> r(static_cast<std::size_t>(b.len));
    spmv(a.entry(entry), x, VecView<real_type>{r.data(), b.len});
    real_type worst = 0;
    for (index_type i = 0; i < b.len; ++i) {
        worst = std::max(worst,
                         std::abs(r[static_cast<std::size_t>(i)] - b[i]));
    }
    return worst;
}

TEST(SimGpuExecutor, SolvesFunctionallyAndModelsTime)
{
    auto p = Problem::make(8);
    SimGpuExecutor exec(gpusim::a100());
    SolverSettings s;
    s.tolerance = 1e-10;
    BatchVector<real_type> x(8, p.a.rows());
    const auto report = exec.solve(p.a, p.b, x, s);
    EXPECT_TRUE(report.log.all_converged());
    for (size_type i = 0; i < 8; ++i) {
        EXPECT_LT(residual_inf(p.a, i, x.entry(i), p.b.entry(i)), 1e-9);
    }
    EXPECT_GT(report.kernel_seconds,
              gpusim::a100().launch_overhead_us * 1e-6 * 0.99);
    EXPECT_GT(report.wall_seconds, 0.0);
    EXPECT_GT(report.block_cost.per_iteration_us, 0.0);
    EXPECT_EQ(report.h2d_seconds, 0.0);  // transfers not requested
}

TEST(SimGpuExecutor, EllKernelModeledFasterThanCsr)
{
    auto p = Problem::make(64);
    auto ell = to_ell(p.a);
    SimGpuExecutor exec(gpusim::v100());
    SolverSettings s;
    s.tolerance = 1e-10;
    BatchVector<real_type> x(64, p.a.rows());
    const auto csr_report = exec.solve(p.a, p.b, x, s);
    const auto ell_report = exec.solve(ell, p.b, x, s);
    EXPECT_LT(ell_report.kernel_seconds, csr_report.kernel_seconds);
    // Same arithmetic -> same iteration counts.
    EXPECT_EQ(csr_report.log.total_iterations(),
              ell_report.log.total_iterations());
}

TEST(SimGpuExecutor, PerEntryTimeDropsWithBatchSize)
{
    // Fig. 6 right: the GPU saturates with growing batch size.
    SimGpuExecutor exec(gpusim::a100());
    SolverSettings s;
    s.tolerance = 1e-10;
    double small_per_entry = 0;
    double large_per_entry = 0;
    {
        auto p = Problem::make(4);
        BatchVector<real_type> x(4, p.a.rows());
        small_per_entry = exec.solve(p.a, p.b, x, s).per_entry_seconds();
    }
    {
        auto p = Problem::make(256);
        BatchVector<real_type> x(256, p.a.rows());
        large_per_entry = exec.solve(p.a, p.b, x, s).per_entry_seconds();
    }
    EXPECT_LT(large_per_entry, small_per_entry / 4);
}

TEST(SimGpuExecutor, Mi100StepsAtComputeUnitMultiples)
{
    SimGpuExecutor exec(gpusim::mi100());
    SolverSettings s;
    s.tolerance = 1e-10;
    // Real 992-row systems so occupancy is LDS-limited to one block/CU.
    xgc::WorkloadParams wp;
    wp.num_mesh_nodes = 61;  // 122 systems > 120 slots
    xgc::CollisionWorkload w(wp);
    auto a = w.make_matrix_batch();
    w.assemble_batch(w.distributions(), w.distributions(), 0.0035, a);
    auto& b = w.distributions();
    BatchVector<real_type> x(w.num_systems(), a.rows());
    const auto report = exec.solve(a, b, x, s);
    EXPECT_EQ(report.occupancy.blocks_per_cu, 1);
    EXPECT_EQ(report.num_waves, 2);  // 122 blocks over 120 slots
}

TEST(SimGpuExecutor, TransferModelCountsAllOperands)
{
    auto p = Problem::make(16);
    SimGpuExecutor exec(gpusim::v100());
    SolverSettings s;
    BatchVector<real_type> x(16, p.a.rows());
    const auto report = exec.solve(p.a, p.b, x, s, true);
    EXPECT_GT(report.h2d_seconds, 0.0);
    EXPECT_GT(report.d2h_seconds, 0.0);
    EXPECT_GT(report.h2d_seconds, report.d2h_seconds);  // matrix down
    EXPECT_NEAR(report.total_device_seconds(),
                report.kernel_seconds + report.h2d_seconds +
                    report.d2h_seconds,
                1e-15);
}

TEST(SimGpuExecutor, SpmvTimingSweepIsMonotone)
{
    SimGpuExecutor exec(gpusim::a100());
    const gpusim::SystemShape shape{992, 8928, 9};
    const double t1 = exec.spmv_seconds(shape, BatchFormat::ell, 100);
    const double t2 = exec.spmv_seconds(shape, BatchFormat::ell, 1000);
    const double t3 = exec.spmv_seconds(shape, BatchFormat::csr, 1000);
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t3);  // Fig. 7: ELL SpMV beats CSR SpMV
}

TEST(SimGpuExecutor, DirectQrSlowerThanIterative)
{
    // Fig. 6: batched QR is ~10-30x slower than batched BiCGStab.
    xgc::WorkloadParams wp;
    wp.num_mesh_nodes = 60;
    xgc::CollisionWorkload w(wp);
    auto a = w.make_matrix_batch();
    w.assemble_batch(w.distributions(), w.distributions(), 0.0035, a);
    BatchVector<real_type> x(w.num_systems(), a.rows());
    SimGpuExecutor exec(gpusim::v100());
    SolverSettings s;
    s.tolerance = 1e-10;
    const auto iterative = exec.solve(a, w.distributions(), x, s);
    const auto [kl, ku] = bandwidths(a);
    const double qr =
        exec.direct_qr_seconds(a.rows(), kl, ku, w.num_systems());
    const double ratio = qr / iterative.kernel_seconds;
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 100.0);
}

TEST(CpuExecutor, GbsvSolvesExactly)
{
    auto p = Problem::make(6);
    CpuExecutor cpu;
    BatchVector<real_type> x(6, p.a.rows());
    const auto report = cpu.gbsv(p.a, p.b, x);
    for (size_type i = 0; i < 6; ++i) {
        EXPECT_LT(residual_inf(p.a, i, x.entry(i), p.b.entry(i)), 1e-11);
    }
    EXPECT_GT(report.wall_seconds, 0.0);
    EXPECT_GT(report.per_system_seconds, 0.0);
}

TEST(CpuExecutor, NodeModelScalesInCoreWaves)
{
    auto p38 = Problem::make(38);
    auto p39 = Problem::make(39);
    CpuExecutor cpu;
    BatchVector<real_type> x38(38, p38.a.rows());
    BatchVector<real_type> x39(39, p39.a.rows());
    const auto r38 = cpu.gbsv(p38.a, p38.b, x38);
    const auto r39 = cpu.gbsv(p39.a, p39.b, x39);
    // 38 systems = one wave over 38 cores; 39 = two waves.
    EXPECT_NEAR(r39.node_seconds, 2 * r38.node_seconds, 1e-12);
}

TEST(CpuExecutor, MatchesIterativeSolution)
{
    auto p = Problem::make(3);
    CpuExecutor cpu;
    BatchVector<real_type> x_direct(3, p.a.rows());
    cpu.gbsv(p.a, p.b, x_direct);
    SimGpuExecutor gpu(gpusim::a100());
    SolverSettings s;
    s.tolerance = 1e-12;
    BatchVector<real_type> x_iter(3, p.a.rows());
    gpu.solve(p.a, p.b, x_iter, s);
    for (size_type i = 0; i < 3; ++i) {
        for (index_type k = 0; k < p.a.rows(); ++k) {
            EXPECT_NEAR(x_direct.entry(i)[k], x_iter.entry(i)[k], 1e-8);
        }
    }
}

TEST(CpuExecutor, IterativeModelSolvesAndScalesWithIterations)
{
    auto p = Problem::make(8);
    CpuExecutor cpu;
    SolverSettings s;
    s.tolerance = 1e-10;
    BatchVector<real_type> x(8, p.a.rows());
    const auto tight = cpu.iterative(p.a, p.b, x, s);
    for (size_type i = 0; i < 8; ++i) {
        EXPECT_LT(residual_inf(p.a, i, x.entry(i), p.b.entry(i)), 1e-8);
    }
    s.tolerance = 1e-4;  // fewer iterations -> cheaper model
    const auto loose = cpu.iterative(p.a, p.b, x, s);
    EXPECT_GT(tight.node_seconds, loose.node_seconds);
    EXPECT_GT(tight.per_system_seconds, 0.0);
}

TEST(GpuSolveReport, StorageConfigurationIsExposed)
{
    xgc::WorkloadParams wp;
    wp.num_mesh_nodes = 1;
    xgc::CollisionWorkload w(wp);
    auto a = w.make_matrix_batch();
    w.assemble_batch(w.distributions(), w.distributions(), 0.0035, a);
    auto ell = to_ell(a);
    BatchVector<real_type> x(2, a.rows());
    SimGpuExecutor exec(gpusim::v100());
    SolverSettings s;
    s.tolerance = 1e-10;
    const auto report = exec.solve(ell, w.distributions(), x, s);
    // The paper's V100 configuration: 6 of 10 vectors in shared memory
    // (9 solver vectors + Jacobi diagonal).
    EXPECT_EQ(report.storage.num_shared, 6);
    EXPECT_EQ(report.storage.num_global, 4);
    EXPECT_EQ(report.block_threads, 992);
}

}  // namespace
}  // namespace bsis
