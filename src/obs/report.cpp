#include "obs/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

namespace bsis::obs {

namespace {

// --- minimal JSON reader (objects, arrays, strings, numbers, literals) ---
// Covers the documents this repo itself emits (metrics snapshots, Chrome
// traces); not a general-purpose validator.

struct JsonValue {
    enum class Kind { null, boolean, number, string, array, object };
    Kind kind = Kind::null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue* find(const std::string& key) const
    {
        for (const auto& [k, v] : object) {
            if (k == key) {
                return &v;
            }
        }
        return nullptr;
    }
};

class JsonReader {
public:
    explicit JsonReader(const std::string& text) : text_(text) {}

    bool parse(JsonValue& out)
    {
        pos_ = 0;
        if (!parse_value(out)) {
            return false;
        }
        skip_ws();
        return pos_ == text_.size();
    }

private:
    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool consume(char c)
    {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool parse_string(std::string& out)
    {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            return false;
        }
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    return false;
                }
                const char esc = text_[pos_++];
                switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                default: out += esc; break;
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= text_.size()) {
            return false;
        }
        ++pos_;  // closing quote
        return true;
    }

    bool parse_value(JsonValue& out)
    {
        skip_ws();
        if (pos_ >= text_.size()) {
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::object;
            if (consume('}')) {
                return true;
            }
            while (true) {
                std::string key;
                JsonValue value;
                if (!parse_string(key) || !consume(':') ||
                    !parse_value(value)) {
                    return false;
                }
                out.object.emplace_back(std::move(key), std::move(value));
                if (consume(',')) {
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::array;
            if (consume(']')) {
                return true;
            }
            while (true) {
                JsonValue value;
                if (!parse_value(value)) {
                    return false;
                }
                out.array.push_back(std::move(value));
                if (consume(',')) {
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::string;
            return parse_string(out.string);
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            out.kind = JsonValue::Kind::boolean;
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.kind = JsonValue::Kind::boolean;
            pos_ += 5;
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return true;
        }
        // number
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start) {
            return false;
        }
        try {
            out.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return false;
        }
        out.kind = JsonValue::Kind::number;
        return true;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

bool parse_metrics_json(const std::string& text, MetricsDocument& out)
{
    JsonValue root;
    if (!JsonReader(text).parse(root) ||
        root.kind != JsonValue::Kind::object) {
        return false;
    }
    out = MetricsDocument{};
    const auto read_flat = [](const JsonValue* section,
                              std::map<std::string, double>& into) {
        if (section == nullptr) {
            return true;  // section absent is fine
        }
        if (section->kind != JsonValue::Kind::object) {
            return false;
        }
        for (const auto& [name, value] : section->object) {
            if (value.kind != JsonValue::Kind::number) {
                return false;
            }
            into[name] = value.number;
        }
        return true;
    };
    if (!read_flat(root.find("counters"), out.counters) ||
        !read_flat(root.find("gauges"), out.gauges)) {
        return false;
    }
    if (const auto* hists = root.find("histograms")) {
        if (hists->kind != JsonValue::Kind::object) {
            return false;
        }
        for (const auto& [name, value] : hists->object) {
            if (value.kind != JsonValue::Kind::object) {
                return false;
            }
            auto& fields = out.histograms[name];
            for (const auto& [field, leaf] : value.object) {
                if (leaf.kind != JsonValue::Kind::number) {
                    return false;
                }
                fields[field] = leaf.number;
            }
        }
    }
    return true;
}

bool load_metrics_json(const std::string& path, MetricsDocument& out)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_metrics_json(buffer.str(), out);
}

bool summarize_trace_json(const std::string& text,
                          std::map<std::string, TraceSpanStats>& out)
{
    JsonValue root;
    if (!JsonReader(text).parse(root) ||
        root.kind != JsonValue::Kind::object) {
        return false;
    }
    const auto* events = root.find("traceEvents");
    if (events == nullptr || events->kind != JsonValue::Kind::array) {
        return false;
    }
    out.clear();
    for (const auto& event : events->array) {
        if (event.kind != JsonValue::Kind::object) {
            continue;
        }
        const auto* name = event.find("name");
        const auto* dur = event.find("dur");
        if (name == nullptr || name->kind != JsonValue::Kind::string) {
            continue;
        }
        auto& stats = out[name->string];
        stats.count += 1;
        if (dur != nullptr && dur->kind == JsonValue::Kind::number) {
            stats.total_us += dur->number;
        }
    }
    return true;
}

namespace {

std::string format_number(double v, int precision = 4)
{
    std::ostringstream os;
    os.precision(precision);
    os << v;
    return os.str();
}

/// Pads `s` to `width` (left-aligned for text, right-aligned for numbers).
std::string pad(const std::string& s, std::size_t width, bool right = true)
{
    if (s.size() >= width) {
        return s;
    }
    const std::string fill(width - s.size(), ' ');
    return right ? fill + s : s + fill;
}

/// Attribution suffixes recorded per phase (see record_phase_attribution).
struct PhaseRow {
    std::string name;
    double seconds = 0, calls = 0, bytes = 0, flops = 0;
    double gbps = 0, gflops = 0, intensity = 0, peak_fraction = 0;
    bool memory_bound = true;
};

/// Collects `<prefix>.phase.<name>.*` gauge families of one prefix.
std::vector<PhaseRow> collect_phases(const MetricsDocument& m,
                                     const std::string& prefix)
{
    const std::string stem = prefix + ".phase.";
    std::set<std::string> names;
    for (const auto& [key, value] : m.gauges) {
        (void)value;
        if (key.rfind(stem, 0) != 0) {
            continue;
        }
        const auto dot = key.find('.', stem.size());
        if (dot != std::string::npos) {
            names.insert(key.substr(stem.size(), dot - stem.size()));
        }
    }
    std::vector<PhaseRow> rows;
    for (const auto& name : names) {
        const std::string base = stem + name + ".";
        PhaseRow row;
        row.name = name;
        row.seconds = m.gauge(base + "seconds");
        row.calls = m.gauge(base + "calls");
        row.bytes = m.gauge(base + "bytes");
        row.flops = m.gauge(base + "flops");
        row.gbps = m.gauge(base + "gbps");
        row.gflops = m.gauge(base + "gflops");
        row.intensity = m.gauge(base + "intensity");
        row.peak_fraction = m.gauge(base + "peak_fraction");
        row.memory_bound = m.gauge(base + "memory_bound", 1.0) != 0.0;
        rows.push_back(row);
    }
    return rows;
}

}  // namespace

SolveReport render_solve_report(
    const MetricsDocument& metrics,
    const std::map<std::string, TraceSpanStats>& trace_spans)
{
    SolveReport report;
    std::ostringstream os;
    os << "=== Batched-solver performance report ===\n\n";

    // --- solve summary ---
    os << "Solve summary\n";
    os << "  batches:      " << metrics.counter("solve.batches") << "\n";
    os << "  systems:      " << metrics.counter("solve.systems") << "\n";
    os << "  iterations:   " << metrics.counter("solve.iterations") << "\n";
    os << "  unconverged:  " << metrics.counter("solve.unconverged") << "\n";
    const auto wall = metrics.histograms.find("solve.wall_seconds");
    if (wall != metrics.histograms.end()) {
        const auto get = [&](const char* f) {
            const auto it = wall->second.find(f);
            return it == wall->second.end() ? 0.0 : it->second;
        };
        os << "  wall seconds: total " << format_number(get("sum"))
           << ", mean " << format_number(get("mean")) << ", p95 "
           << format_number(get("p95")) << "\n";
    }
    os << "\n";

    // --- per-prefix phase attribution tables ---
    for (const std::string prefix : {"solve", "gpusim"}) {
        const auto rows = collect_phases(metrics, prefix);
        if (rows.empty()) {
            continue;
        }
        const double peak_gbps =
            metrics.gauge(prefix + std::string(".roofline.peak_gbps"));
        const double peak_gflops =
            metrics.gauge(prefix + std::string(".roofline.peak_gflops"));
        os << "Phase attribution [" << prefix << "]";
        if (peak_gbps > 0) {
            os << "  (roofline " << format_number(peak_gbps) << " GB/s, "
               << format_number(peak_gflops) << " GF/s, ridge "
               << format_number(peak_gbps > 0 ? peak_gflops / peak_gbps
                                              : 0.0)
               << " flop/B)";
        }
        os << "\n";
        os << "  " << pad("phase", 14, false) << pad("seconds", 11)
           << pad("calls", 9) << pad("GB", 10) << pad("GFLOP", 10)
           << pad("GB/s", 9) << pad("GF/s", 9) << pad("flop/B", 9)
           << pad("bound", 9) << pad("%peak", 8) << "\n";
        for (const auto& row : rows) {
            ++report.phases;
            os << "  " << pad(row.name, 14, false)
               << pad(format_number(row.seconds), 11)
               << pad(format_number(row.calls, 9), 9)
               << pad(format_number(row.bytes * 1e-9), 10)
               << pad(format_number(row.flops * 1e-9), 10)
               << pad(format_number(row.gbps), 9)
               << pad(format_number(row.gflops), 9)
               << pad(format_number(row.intensity, 3), 9)
               << pad(row.memory_bound ? "memory" : "compute", 9)
               << pad(format_number(row.peak_fraction * 100.0, 3) + "%", 8)
               << "\n";
            // Sanity gate: a phase that ran and moved bytes must land in
            // (0, peak]. Modeled (gpusim) phases use their own peak.
            if (row.seconds > 0 && row.bytes > 0 && peak_gbps > 0) {
                if (!(row.gbps > 0 && row.gbps <= peak_gbps)) {
                    ++report.bandwidth_violations;
                }
            }
        }
        os << "\n";
    }

    // --- drift summary ---
    const double checks = metrics.counter("obs.drift.checks");
    const double alarms = metrics.counter("obs.drift.alarms");
    report.drift_alarms = static_cast<int>(alarms);
    os << "Drift (measured vs modeled)\n";
    os << "  checks: " << checks << ", alarms: " << alarms << "\n";
    for (const auto& [key, value] : metrics.gauges) {
        if (key.rfind("obs.drift.", 0) != 0 ||
            key.size() < 6 ||
            key.compare(key.size() - 6, 6, ".ratio") != 0) {
            continue;
        }
        const std::string stem = key.substr(0, key.size() - 6);
        const bool alarmed =
            metrics.gauge(stem + ".alarmed", 0.0) != 0.0;
        os << "  " << pad(stem.substr(10), 28, false) << " ratio "
           << pad(format_number(value, 3), 8)
           << (alarmed ? "  ALARM" : "") << "\n";
    }
    os << "\n";

    // --- continuous profiler window ---
    if (metrics.gauge("obs.window.samples") > 0) {
        os << "Continuous profiler window ("
           << metrics.gauge("obs.window.samples") << " samples)\n";
        os << "  " << pad("phase", 14, false) << pad("ewma_us", 11)
           << pad("p95_us", 11) << pad("ewma_GB/s", 11) << "\n";
        for (const char* phase :
             {"spmv", "precond_apply", "reduction", "update", "other"}) {
            const std::string base = std::string("obs.window.") + phase;
            if (!metrics.has_gauge(base + ".ewma_us")) {
                continue;
            }
            os << "  " << pad(phase, 14, false)
               << pad(format_number(metrics.gauge(base + ".ewma_us")), 11)
               << pad(format_number(metrics.gauge(base + ".p95_us")), 11)
               << pad(format_number(metrics.gauge(base + ".ewma_gbps")), 11)
               << "\n";
        }
        os << "\n";
    }

    // --- failure-class breakdown ---
    os << "Failure classes\n";
    bool any_fail_counter = false;
    for (const auto& [key, value] : metrics.counters) {
        if (key.rfind("solve.fail.", 0) == 0) {
            os << "  " << pad(key.substr(11), 18, false) << value << "\n";
            any_fail_counter = true;
        }
    }
    if (!any_fail_counter) {
        os << "  (no failure counters in snapshot)\n";
    }
    os << "\n";

    // --- trace section ---
    if (!trace_spans.empty()) {
        std::vector<std::pair<std::string, TraceSpanStats>> spans(
            trace_spans.begin(), trace_spans.end());
        std::sort(spans.begin(), spans.end(),
                  [](const auto& a, const auto& b) {
                      return a.second.total_us > b.second.total_us;
                  });
        os << "Trace spans (by total duration)\n";
        os << "  " << pad("span", 20, false) << pad("count", 10)
           << pad("total_ms", 12) << "\n";
        for (const auto& [name, stats] : spans) {
            os << "  " << pad(name, 20, false)
               << pad(std::to_string(stats.count), 10)
               << pad(format_number(stats.total_us * 1e-3), 12) << "\n";
        }
        os << "\n";
    }
    if (metrics.has_gauge("obs.trace.dropped")) {
        os << "Dropped trace spans: "
           << metrics.gauge("obs.trace.dropped") << "\n\n";
    }

    // --- gates ---
    os << "Gates\n";
    os << "  drift alarms:       " << report.drift_alarms << " "
       << (report.drift_alarms == 0 ? "(PASS)" : "(FAIL)") << "\n";
    os << "  bandwidth in range: " << report.bandwidth_violations
       << " violation(s) "
       << (report.bandwidth_violations == 0 ? "(PASS)" : "(FAIL)") << "\n";

    report.text = os.str();
    return report;
}

}  // namespace bsis::obs
