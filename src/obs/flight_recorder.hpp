// Solve flight recorder.
//
// When a batched solve is armed with a recorder (SolverSettings::
// flight_recorder), every NON-converged system is dumped as a
// self-contained "bundle" directory -- matrix, right-hand side, initial
// guess (MatrixMarket files) plus a JSON sidecar with the solver settings,
// classification, and residual history. A bundle is everything
// `tools/replay_entry` needs to re-run that one system offline through any
// execution path / solver / format combination, turning a production
// failure into a reproducible test case (fused GPU kernels make in-situ
// diagnosis impractical; capture-and-replay is the workable alternative).
//
// The recorder deliberately knows nothing about core's SolverSettings or
// FailureClass types (obs sits below core in the library graph); the
// sidecar carries plain strings and numbers, converted at the capture
// site.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "io/matrix_market.hpp"
#include "util/types.hpp"

namespace bsis::obs {

/// Sidecar metadata of one captured bundle. All solver-enum fields are the
/// canonical lower-case names (solver_name() etc.) so the bundle stays
/// readable without the library headers.
struct FailureBundleMeta {
    std::string failure;        ///< failure_class_name of the classification
    std::string solver;         ///< "bicgstab", "cg", ...
    std::string precond;        ///< "identity", "jacobi", "block_jacobi"
    std::string stop;           ///< "absolute", "relative"
    real_type tolerance = 0.0;
    int max_iterations = 0;
    int gmres_restart = 0;
    int block_jacobi_size = 0;
    real_type richardson_omega = 0.0;
    bool used_initial_guess = false;
    bool fused_kernels = true;
    bool pipelined = false;
    int lockstep_width = 0;
    std::int64_t system_index = 0;  ///< index within the captured batch
    int iterations = 0;             ///< iterations the failing solve ran
    real_type residual_norm = 0.0;  ///< final residual norm
    /// Residual trajectory of the failing solve (iteration -> norm);
    /// decimated when the convergence history capacity was exceeded.
    std::vector<std::int64_t> history_iterations;
    std::vector<real_type> history_residuals;
};

/// A bundle read back from disk.
struct FailureBundle {
    io::Coo a;
    std::vector<real_type> b;
    std::vector<real_type> x0;
    FailureBundleMeta meta;
};

/// Thread-safe bounded capture sink. One recorder serves a whole run (many
/// batched solves); the budget caps the total number of bundles so an
/// entirely-diverging production batch cannot flood the disk.
class FlightRecorder {
public:
    /// Bundles are written under `directory` (created on first capture) as
    /// `<seq>_sys<i>/{A.mtx, b.mtx, x0.mtx, meta.json}`.
    explicit FlightRecorder(std::string directory, int budget = 16);

    const std::string& directory() const { return directory_; }

    /// Total captures attempted (including ones dropped over budget).
    std::int64_t seen() const;

    /// Bundles actually written.
    int captured() const;

    int budget() const { return budget_; }

    /// Writes one bundle; returns false (without touching the filesystem)
    /// once the budget is exhausted. Safe to call concurrently from the
    /// batch drivers' capture loops.
    bool capture(const io::Coo& a, ConstVecView<real_type> b,
                 ConstVecView<real_type> x0, const FailureBundleMeta& meta);

private:
    std::string directory_;
    int budget_;
    mutable std::mutex mutex_;
    int captured_ = 0;
    std::int64_t seen_ = 0;
};

/// Reads back one bundle directory written by FlightRecorder::capture.
/// Throws ParseError / IoError on missing or malformed files.
FailureBundle load_bundle(const std::string& bundle_dir);

/// Bundle subdirectories under `capture_dir`, sorted by name (capture
/// order, since the name starts with the sequence number).
std::vector<std::string> list_bundles(const std::string& capture_dir);

}  // namespace bsis::obs
