// BatchSellp: batch of sparse matrices sharing one SELL-P pattern.
//
// SELL-P (sliced ELLPACK with padding) is the middle ground between
// BatchCsr and BatchEll: rows are grouped into slices of `slice_size`
// (one warp), each slice is padded only to ITS longest row, and values are
// stored slice-locally column-major -- coalesced like ELL, but without
// paying global padding for one long row. This is the format family
// GINKGO generalizes ELL with; for the perfectly uniform XGC stencils it
// degenerates to ELL (same storage, same access pattern), and the tests
// verify exactly that.
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "matrix/batch_ell.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// One entry of a BatchSellp: shared pattern + this entry's values.
template <typename T>
struct SellpView {
    index_type rows = 0;
    index_type slice_size = 0;
    const index_type* slice_sets = nullptr;  ///< per-slice width prefix sum
    const index_type* col_idxs = nullptr;    ///< slice-local column-major
    const T* values = nullptr;

    index_type num_slices() const
    {
        return (rows + slice_size - 1) / slice_size;
    }

    /// Linear index of (global row r, slot k) in the slice-local layout.
    std::size_t at(index_type r, index_type k) const
    {
        const index_type slice = r / slice_size;
        const index_type local = r % slice_size;
        return (static_cast<std::size_t>(slice_sets[slice]) + k) *
                   slice_size +
               local;
    }
};

template <typename T>
class BatchSellp {
public:
    BatchSellp() = default;

    /// Builds the batch from a shared pattern: `slice_sets` holds the
    /// prefix sum of per-slice widths (num_slices + 1 entries), and
    /// `col_idxs` the slice-local column-major indices with `ell_padding`
    /// marking padded slots. Values are zero-initialized.
    BatchSellp(size_type num_batch, index_type rows, index_type slice_size,
               std::vector<index_type> slice_sets,
               std::vector<index_type> col_idxs)
        : num_batch_(num_batch),
          rows_(rows),
          slice_size_(slice_size),
          slice_sets_(std::move(slice_sets)),
          col_idxs_(std::move(col_idxs))
    {
        BSIS_ENSURE_ARG(num_batch >= 0, "negative batch count");
        BSIS_ENSURE_ARG(slice_size >= 1, "slice size must be positive");
        const index_type slices = (rows + slice_size - 1) / slice_size;
        BSIS_ENSURE_DIMS(static_cast<index_type>(slice_sets_.size()) ==
                             slices + 1,
                         "slice_sets must have num_slices + 1 entries");
        BSIS_ENSURE_DIMS(slice_sets_.front() == 0, "slice_sets[0] must be 0");
        for (index_type s = 0; s < slices; ++s) {
            BSIS_ENSURE_DIMS(slice_sets_[s] <= slice_sets_[s + 1],
                             "slice_sets must be non-decreasing");
        }
        BSIS_ENSURE_DIMS(
            static_cast<size_type>(col_idxs_.size()) ==
                static_cast<size_type>(slice_sets_.back()) * slice_size,
            "col_idxs size must be slice_sets.back() * slice_size");
        values_.assign(static_cast<std::size_t>(num_batch) *
                           col_idxs_.size(),
                       T{});
    }

    size_type num_batch() const { return num_batch_; }
    index_type rows() const { return rows_; }
    index_type slice_size() const { return slice_size_; }
    index_type stored_per_entry() const
    {
        return static_cast<index_type>(col_idxs_.size());
    }

    const std::vector<index_type>& slice_sets() const { return slice_sets_; }
    const std::vector<index_type>& col_idxs() const { return col_idxs_; }

    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size() * sizeof(T) +
                                      col_idxs_.size() * sizeof(index_type) +
                                      slice_sets_.size() *
                                          sizeof(index_type));
    }

    SellpView<T> entry(size_type b) const
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {rows_, slice_size_, slice_sets_.data(), col_idxs_.data(),
                values_.data() +
                    static_cast<std::size_t>(b) * col_idxs_.size()};
    }

    T* values(size_type b)
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return values_.data() + static_cast<std::size_t>(b) * col_idxs_.size();
    }

private:
    size_type num_batch_ = 0;
    index_type rows_ = 0;
    index_type slice_size_ = 0;
    std::vector<index_type> slice_sets_;
    std::vector<index_type> col_idxs_;
    std::vector<T> values_;
};

/// y := A x for one SELL-P entry (slice-wise thread-per-row traversal).
template <typename T>
inline void spmv(SellpView<T> a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(y.len == a.rows);
    for (index_type r = 0; r < a.rows; ++r) {
        y[r] = T{};
    }
    for (index_type slice = 0; slice < a.num_slices(); ++slice) {
        const index_type width =
            a.slice_sets[slice + 1] - a.slice_sets[slice];
        const index_type r0 = slice * a.slice_size;
        for (index_type k = 0; k < width; ++k) {
            for (index_type local = 0;
                 local < a.slice_size && r0 + local < a.rows; ++local) {
                const std::size_t idx =
                    (static_cast<std::size_t>(a.slice_sets[slice]) + k) *
                        a.slice_size +
                    local;
                const index_type c = a.col_idxs[idx];
                if (c != ell_padding) {
                    y[r0 + local] += a.values[idx] * x[c];
                }
            }
        }
    }
}

/// y := A^T x for one SELL-P entry (scatter traversal, as in the CSR and
/// ELL transpose kernels; needed by the BiCG shadow recurrence).
template <typename T>
inline void spmv_transpose(SellpView<T> a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == a.rows);
    for (index_type c = 0; c < y.len; ++c) {
        y[c] = T{};
    }
    for (index_type r = 0; r < a.rows; ++r) {
        const index_type slice = r / a.slice_size;
        const index_type width =
            a.slice_sets[slice + 1] - a.slice_sets[slice];
        for (index_type k = 0; k < width; ++k) {
            const index_type c = a.col_idxs[a.at(r, k)];
            if (c != ell_padding) {
                y[c] += a.values[a.at(r, k)] * x[r];
            }
        }
    }
}

/// Extracts the diagonal of one SELL-P entry (scalar-Jacobi setup).
template <typename T>
inline void extract_diagonal(SellpView<T> a, VecView<T> diag)
{
    BSIS_ASSERT(diag.len == a.rows);
    for (index_type r = 0; r < a.rows; ++r) {
        diag[r] = T{};
        const index_type slice = r / a.slice_size;
        const index_type width =
            a.slice_sets[slice + 1] - a.slice_sets[slice];
        for (index_type k = 0; k < width; ++k) {
            if (a.col_idxs[a.at(r, k)] == r) {
                diag[r] = a.values[a.at(r, k)];
            }
        }
    }
}

}  // namespace bsis
