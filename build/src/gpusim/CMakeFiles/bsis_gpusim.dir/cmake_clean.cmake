file(REMOVE_RECURSE
  "CMakeFiles/bsis_gpusim.dir/cache.cpp.o"
  "CMakeFiles/bsis_gpusim.dir/cache.cpp.o.d"
  "CMakeFiles/bsis_gpusim.dir/cost_model.cpp.o"
  "CMakeFiles/bsis_gpusim.dir/cost_model.cpp.o.d"
  "CMakeFiles/bsis_gpusim.dir/device.cpp.o"
  "CMakeFiles/bsis_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/bsis_gpusim.dir/occupancy.cpp.o"
  "CMakeFiles/bsis_gpusim.dir/occupancy.cpp.o.d"
  "CMakeFiles/bsis_gpusim.dir/scheduler.cpp.o"
  "CMakeFiles/bsis_gpusim.dir/scheduler.cpp.o.d"
  "CMakeFiles/bsis_gpusim.dir/simt.cpp.o"
  "CMakeFiles/bsis_gpusim.dir/simt.cpp.o.d"
  "CMakeFiles/bsis_gpusim.dir/simt_kernels.cpp.o"
  "CMakeFiles/bsis_gpusim.dir/simt_kernels.cpp.o.d"
  "libbsis_gpusim.a"
  "libbsis_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsis_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
