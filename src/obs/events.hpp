// Structured JSON-lines event log for the live-monitoring layer.
//
// Metrics answer "how much"; the event log answers "what happened when":
// one JSON object per line, append-only, with wall-clock timestamps, so a
// long-running campaign leaves an audit trail that `tail -f`, jq, or a
// log shipper can consume while the process is still running. Emitters
// are the cold paths only -- solve start/end, flight-recorder captures,
// drift alarms, alert transitions -- so a solve never blocks on the log's
// mutex from a hot loop.
//
// The file is size-capped with rotation: when the active file exceeds the
// byte cap it is renamed to `<path>.1` (shifting older rotations up, the
// oldest dropped) and a fresh file is started, so an unattended campaign
// cannot fill the disk. Like the other obs sinks, emission is gated by a
// process-wide atomic (`events_enabled()`): with no log open the cost of
// an emit site is one relaxed load.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string>

namespace bsis::obs {

/// One key/value field of an event. Build with the field() overloads;
/// string values are JSON-escaped at emission.
struct EventField {
    enum class Type { string, number, integer, boolean };
    std::string key;
    Type type = Type::number;
    std::string str;
    double num = 0;
    std::int64_t integer = 0;
    bool boolean = false;
};

inline EventField field(std::string key, std::string value)
{
    EventField f;
    f.key = std::move(key);
    f.type = EventField::Type::string;
    f.str = std::move(value);
    return f;
}

inline EventField field(std::string key, const char* value)
{
    return field(std::move(key), std::string(value));
}

inline EventField field(std::string key, double value)
{
    EventField f;
    f.key = std::move(key);
    f.type = EventField::Type::number;
    f.num = value;
    return f;
}

inline EventField field(std::string key, std::int64_t value)
{
    EventField f;
    f.key = std::move(key);
    f.type = EventField::Type::integer;
    f.integer = value;
    return f;
}

inline EventField field(std::string key, int value)
{
    return field(std::move(key), static_cast<std::int64_t>(value));
}

inline EventField field(std::string key, bool value)
{
    EventField f;
    f.key = std::move(key);
    f.type = EventField::Type::boolean;
    f.boolean = value;
    return f;
}

/// Append-only JSON-lines sink with size-capped rotation.
class EventLog {
public:
    /// Rotation defaults: 4 MiB per file, active file + 3 rotations.
    static constexpr std::int64_t default_max_bytes = 4 << 20;
    static constexpr int default_max_rotations = 3;

    EventLog() = default;
    ~EventLog();

    EventLog(const EventLog&) = delete;
    EventLog& operator=(const EventLog&) = delete;

    /// Opens (appending) the active file. Returns false when the file
    /// cannot be opened; the log then stays inactive.
    bool open(const std::string& path,
              std::int64_t max_bytes = default_max_bytes,
              int max_rotations = default_max_rotations);

    /// Flushes and closes; emit() becomes a no-op again.
    void close();

    bool active() const;

    /// Appends one event line: {"ts": <unix seconds>, "event": <kind>,
    /// <fields...>}. Thread-safe; no-op while inactive.
    void emit(const std::string& kind,
              std::initializer_list<EventField> fields);

    /// Events written (including into rotated-away files) since open().
    std::int64_t emitted() const;

    /// Rotations performed since open().
    int rotations() const;

    std::string path() const;

private:
    void rotate_locked();

    mutable std::mutex mutex_;
    std::string path_;
    std::int64_t max_bytes_ = default_max_bytes;
    int max_rotations_ = default_max_rotations;
    std::int64_t bytes_ = 0;
    std::int64_t emitted_ = 0;
    int rotations_ = 0;
    std::ofstream out_;
};

namespace detail {
inline std::atomic<bool> g_events_enabled{false};
}  // namespace detail

/// True while the process-wide event log is open; emit sites gate on this
/// one relaxed load.
inline bool events_enabled()
{
    return detail::g_events_enabled.load(std::memory_order_relaxed);
}

/// The process-wide event log the solver/forensics/monitor hooks write
/// to. Open/close it through open_events()/close_events() so the enabled
/// flag stays in sync.
EventLog& events();

/// Opens the global event log (closing any previous file) and flips
/// events_enabled(). Returns false and leaves events disabled on failure.
bool open_events(const std::string& path,
                 std::int64_t max_bytes = EventLog::default_max_bytes,
                 int max_rotations = EventLog::default_max_rotations);

/// Closes the global event log and clears events_enabled().
void close_events();

/// Unix wall-clock seconds (sub-second precision) -- the event timestamp
/// base, also used by the monitor's sampler.
double unix_seconds();

}  // namespace bsis::obs
