# Empty compiler generated dependencies file for bench_extension_exascale.
# This may be replaced when dependencies are built.
