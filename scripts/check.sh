#!/usr/bin/env bash
# Hardened check tier: build, run the sanitizer-labeled tests, the
# observability (telemetry) tests, then run the solver example suite under
# --sanitize. Any SIMT sanitizer finding (shared race, barrier divergence,
# out-of-bounds access) fails the script.
#
# Usage: scripts/check.sh            (build dir defaults to ./build)
#        BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== sanitizer test tier =="
ctest --test-dir "$BUILD_DIR" -L sanitizer --output-on-failure

# Telemetry: metrics registry, Chrome-trace export (valid JSON, properly
# nested spans, monotonic timestamps), convergence history, and the
# live-profile-vs-bench agreement check.
echo "== observability test tier =="
ctest --test-dir "$BUILD_DIR" -L obs --output-on-failure

# Attribution: the work ledger's byte/flop hand counts, roofline
# attribution, drift detection, the continuous-profiler window, and the
# measured-bandwidth sanity bounds of real solves on all three paths.
echo "== attribution test tier =="
ctest --test-dir "$BUILD_DIR" -L attribution --output-on-failure

# Forensics: the failure taxonomy, cross-path classification agreement,
# the flight recorder, and bundle replay -- plus the replay tool's own
# end-to-end loop (force a breakdown, capture the bundle, replay it
# through all three execution paths).
echo "== forensics test tier =="
ctest --test-dir "$BUILD_DIR" -L forensics --output-on-failure
echo "-- replay_entry --selftest"
FORENSICS_DIR=$(mktemp -d)
trap 'rm -rf "$FORENSICS_DIR"' EXIT
"$BUILD_DIR/tools/replay_entry" --selftest "$FORENSICS_DIR/bundles" \
    > /dev/null

# Pipelined variants: classic-vs-pipelined equivalence across solvers,
# preconditioners, formats and execution paths, recurrence-drift bounds,
# failure-classification parity on seeded breakdown/NaN batches, and the
# barrier/utilization deltas of the traced pipelined kernel.
echo "== pipelined test tier =="
ctest --test-dir "$BUILD_DIR" -L pipelined --output-on-failure

# The perf smoke run also covers the SIMD batch-lockstep rows
# (lockstep4/lockstep8) and cross-checks them against the scalar path
# per entry; the full-size lockstep-vs-scalar speedup gate only runs in
# the non-smoke bench_regression.
echo "== perf regression tier (smoke) =="
ctest --test-dir "$BUILD_DIR" -L perf --output-on-failure

echo "== sanitized examples =="
for example in quickstart solver_comparison device_comparison; do
    echo "-- $example --sanitize"
    "$BUILD_DIR/examples/$example" --sanitize > /dev/null
done

echo "check.sh: all sanitized runs clean"
