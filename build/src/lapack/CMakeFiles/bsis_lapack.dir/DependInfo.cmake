
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lapack/banded_lu.cpp" "src/lapack/CMakeFiles/bsis_lapack.dir/banded_lu.cpp.o" "gcc" "src/lapack/CMakeFiles/bsis_lapack.dir/banded_lu.cpp.o.d"
  "/root/repo/src/lapack/banded_qr.cpp" "src/lapack/CMakeFiles/bsis_lapack.dir/banded_qr.cpp.o" "gcc" "src/lapack/CMakeFiles/bsis_lapack.dir/banded_qr.cpp.o.d"
  "/root/repo/src/lapack/dense.cpp" "src/lapack/CMakeFiles/bsis_lapack.dir/dense.cpp.o" "gcc" "src/lapack/CMakeFiles/bsis_lapack.dir/dense.cpp.o.d"
  "/root/repo/src/lapack/eigen.cpp" "src/lapack/CMakeFiles/bsis_lapack.dir/eigen.cpp.o" "gcc" "src/lapack/CMakeFiles/bsis_lapack.dir/eigen.cpp.o.d"
  "/root/repo/src/lapack/tridiag.cpp" "src/lapack/CMakeFiles/bsis_lapack.dir/tridiag.cpp.o" "gcc" "src/lapack/CMakeFiles/bsis_lapack.dir/tridiag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bsis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/bsis_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
