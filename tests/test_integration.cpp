// Cross-module integration tests: the full pipeline the benchmarks rely
// on -- XGC workload -> batched matrices -> executors (simulated GPUs and
// the CPU baseline) -> Picard driver -> I/O round trip.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "exec/executor.hpp"
#include "io/matrix_market.hpp"
#include "matrix/conversions.hpp"
#include "xgc/picard.hpp"
#include "xgc/workload.hpp"

namespace bsis {
namespace {

using xgc::CollisionWorkload;
using xgc::PicardSettings;
using xgc::WorkloadParams;

TEST(Integration, GpuAndCpuSolversAgreeOnXgcMatrices)
{
    WorkloadParams wp;
    wp.num_mesh_nodes = 2;
    CollisionWorkload w(wp);
    auto a = w.make_matrix_batch();
    w.assemble_batch(w.distributions(), w.distributions(), 0.0035, a);
    const auto& b = w.distributions();

    SimGpuExecutor gpu(gpusim::a100());
    SolverSettings s;
    s.tolerance = 1e-11;
    s.max_iterations = 500;
    BatchVector<real_type> x_gpu(w.num_systems(), a.rows());
    const auto gpu_report = gpu.solve(a, b, x_gpu, s);
    ASSERT_TRUE(gpu_report.log.all_converged());

    CpuExecutor cpu;
    BatchVector<real_type> x_cpu(w.num_systems(), a.rows());
    cpu.gbsv(a, b, x_cpu);

    for (size_type i = 0; i < w.num_systems(); ++i) {
        real_type scale = 0;
        for (index_type k = 0; k < a.rows(); ++k) {
            scale = std::max(scale, std::abs(x_cpu.entry(i)[k]));
        }
        for (index_type k = 0; k < a.rows(); ++k) {
            ASSERT_NEAR(x_gpu.entry(i)[k], x_cpu.entry(i)[k],
                        1e-7 * scale)
                << "system " << i << " row " << k;
        }
    }
}

TEST(Integration, PicardThroughSimulatedGpu)
{
    WorkloadParams wp;
    wp.num_mesh_nodes = 2;
    CollisionWorkload w(wp);
    SimGpuExecutor gpu(gpusim::v100());
    SolverSettings s;
    s.tolerance = 1e-10;
    s.max_iterations = 500;

    double modeled_total = 0;
    const auto solver = [&](const BatchCsr<real_type>& a,
                            const BatchVector<real_type>& b,
                            BatchVector<real_type>& x, bool warm,
                            int /*k*/) {
        auto ell = to_ell(a);
        SolverSettings local = s;
        local.use_initial_guess = warm;
        auto report = gpu.solve(ell, b, x, local);
        modeled_total += report.kernel_seconds;
        return report.log;
    };
    const auto report =
        implicit_collision_step(w, PicardSettings{}, solver);
    EXPECT_TRUE(report.converged);
    EXPECT_LT(report.max_conservation_error(), 1e-12);
    EXPECT_GT(modeled_total, 0.0);
    for (const auto& log : report.linear_logs) {
        EXPECT_TRUE(log.all_converged());
    }
}

TEST(Integration, EllAndCsrPicardGiveSamePhysics)
{
    WorkloadParams wp;
    wp.num_mesh_nodes = 1;
    SolverSettings s;
    s.tolerance = 1e-12;
    s.max_iterations = 500;

    CollisionWorkload w_csr(wp);
    CollisionWorkload w_ell(wp);
    const auto csr_solver = xgc::make_reference_solver(s);
    const auto ell_solver = [&](const BatchCsr<real_type>& a,
                                const BatchVector<real_type>& b,
                                BatchVector<real_type>& x, bool warm,
                                int /*k*/) {
        auto ell = to_ell(a);
        SolverSettings local = s;
        local.use_initial_guess = warm;
        return solve_batch(ell, b, x, local).log;
    };
    const auto r1 =
        implicit_collision_step(w_csr, PicardSettings{}, csr_solver);
    const auto r2 =
        implicit_collision_step(w_ell, PicardSettings{}, ell_solver);
    ASSERT_TRUE(r1.converged);
    ASSERT_TRUE(r2.converged);
    for (size_type sys = 0; sys < w_csr.num_systems(); ++sys) {
        const auto f1 = w_csr.distributions().entry(sys);
        const auto f2 = w_ell.distributions().entry(sys);
        for (index_type k = 0; k < f1.len; ++k) {
            ASSERT_NEAR(f1[k], f2[k], 1e-9 * std::abs(f1[k]) + 1e-16);
        }
    }
}

TEST(Integration, WorkloadBatchSurvivesDiskRoundTrip)
{
    WorkloadParams wp;
    wp.n_vpar = 8;
    wp.n_vperp = 7;
    wp.num_mesh_nodes = 2;
    CollisionWorkload w(wp);
    auto a = w.make_matrix_batch();
    w.assemble_batch(w.distributions(), w.distributions(), 0.0035, a);

    const std::string root =
        (std::filesystem::temp_directory_path() / "bsis_integration")
            .string();
    std::filesystem::remove_all(root);
    io::write_batch(root, a, w.distributions());
    const auto [a2, b2] = io::read_batch(root);
    std::filesystem::remove_all(root);

    // Solving the reloaded batch gives the same solutions.
    SolverSettings s;
    s.tolerance = 1e-11;
    BatchVector<real_type> x1(a.num_batch(), a.rows());
    BatchVector<real_type> x2(a.num_batch(), a.rows());
    solve_batch(a, w.distributions(), x1, s);
    solve_batch(a2, b2, x2, s);
    for (size_type i = 0; i < a.num_batch(); ++i) {
        for (index_type k = 0; k < a.rows(); ++k) {
            ASSERT_NEAR(x1.entry(i)[k], x2.entry(i)[k],
                        1e-9 * std::abs(x1.entry(i)[k]) + 1e-15);
        }
    }
}

TEST(Integration, CombinedBatchSpeedupOverCpuInPaperBand)
{
    // The headline claim (Fig. 9): batched BiCGStab(ELL) on the GPUs beats
    // dgbsv on the Skylake node by ~4-9x for combined ion+electron batches
    // over 5 warm-started Picard iterations. Use a modest batch (the
    // models saturate) and require the modeled speedup to land in a
    // generous band around the paper's.
    WorkloadParams wp;
    wp.num_mesh_nodes = 120;  // 240 systems: saturates all device models
    CollisionWorkload w(wp);
    SolverSettings s;
    s.tolerance = 1e-10;
    s.max_iterations = 500;

    SimGpuExecutor gpu(gpusim::a100());
    CpuExecutor cpu;
    double gpu_total = 0;
    double cpu_total = 0;
    const auto solver = [&](const BatchCsr<real_type>& a,
                            const BatchVector<real_type>& b,
                            BatchVector<real_type>& x, bool warm,
                            int /*k*/) {
        auto ell = to_ell(a);
        SolverSettings local = s;
        local.use_initial_guess = warm;
        auto report = gpu.solve(ell, b, x, local);
        gpu_total += report.kernel_seconds;

        BatchVector<real_type> x_cpu(a.num_batch(), a.rows());
        cpu_total += cpu.gbsv(a, b, x_cpu).node_seconds;
        return report.log;
    };
    implicit_collision_step(w, PicardSettings{}, solver);
    const double speedup = cpu_total / gpu_total;
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 20.0);
}

}  // namespace
}  // namespace bsis
