// Pipelined batched BiCGStab / CG kernels (Rupp et al., "Pipelined
// Iterative Solvers with Kernel Fusion for GPUs").
//
// The classic fused kernels still stop at 3 (BiCGStab) / 3 (CG) reduction
// points per iteration; on the lockstep and GPU paths every one of those
// is a lane-group synchronization. The pipelined variants restructure the
// recurrences so the quantities the NEXT reduction would measure are
// by-products of reductions already in flight:
//
//   BiCGStab: the end-of-iteration dual dot (t.t, t.s) widens into a
//   dot4 over {t, s, r_hat} that also yields s.r_hat and t.r_hat, from
//   which rho_next = s.r_hat - omega * t.r_hat (exact identity for
//   r_next = s - omega t) and ||r_next||^2 = ||s||^2 - 2 omega t.s +
//   omega^2 t.t follow in registers -- the standalone r.r_hat dot and the
//   residual-norm reduction disappear.
//
//   CG: the p.q dot widens into dot3_nrm2 over {q, p, r} yielding q.q,
//   q.r and a freshly measured ||r||, giving ||r - alpha q||^2 = ||r||^2
//   - 2 alpha q.r + alpha^2 q.q; the r.z dot folds into the
//   preconditioner sweep (Prec::apply_dot). alpha and beta are computed
//   from the SAME dot values as the classic kernel, so the CG iterates
//   themselves evolve bit-identically -- only the stopping decisions ride
//   on the recurrence norm.
//
// Drift policy: every recurrence bridges exactly ONE iteration from
// quantities measured in that same iteration (||s|| is measured by the
// s-update sweep, ||r|| by the CG reduction sweep), so recurrence rounding
// never compounds across iterations; the drift tests bound the gap to the
// true residual at exit. Failure detection is kept structurally identical
// to the classic kernels (done -> non_finite -> breakdown rho/omega split,
// classify_exhausted at the iteration cap); a non-finite recurrence value
// is mapped to NaN rather than clamped so the non_finite check fires
// exactly as it does on a measured norm.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "blas/kernels.hpp"
#include "core/workspace.hpp"
#include "obs/telemetry.hpp"
#include "util/types.hpp"

namespace bsis {

/// sqrt of a recurrence-maintained squared norm: tiny negative values
/// (cancellation) clamp to zero, but non-finite values must stay
/// non-finite so the solver's NaN detection behaves exactly as with a
/// measured norm.
inline real_type recurrence_norm(real_type squared)
{
    if (squared > real_type{0}) {
        return std::sqrt(squared);
    }
    return std::isfinite(squared)
               ? real_type{0}
               : std::numeric_limits<real_type>::quiet_NaN();
}

/// Pipelined BiCGStab: same workspace layout, history contract, and
/// failure classification structure as `bicgstab_kernel`, with the
/// per-iteration standalone reductions collapsed from three to two (the
/// r_hat.v dot and one dot4 sweep). The rho and residual-norm recurrences
/// each bridge a single iteration, so the iterates track the classic
/// kernel's to rounding and stopping decisions agree within one iteration.
template <typename MatrixView, typename Prec, typename Stop>
EntryResult pipelined_bicgstab_kernel(
    const MatrixView& a, ConstVecView<real_type> b, VecView<real_type> x,
    const Prec& prec, const Stop& stop, int max_iters, Workspace& ws,
    int work_offset = 0, std::vector<real_type>* history = nullptr)
{
    auto r = ws.slot(work_offset + 0);
    auto r_hat = ws.slot(work_offset + 1);
    auto p = ws.slot(work_offset + 2);
    auto p_hat = ws.slot(work_offset + 3);
    auto v = ws.slot(work_offset + 4);
    auto s = ws.slot(work_offset + 5);
    auto s_hat = ws.slot(work_offset + 6);
    auto t = ws.slot(work_offset + 7);

    const real_type b_norm = blas::nrm2(b);

    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    real_type r_norm = obs::traced(obs::Phase::update, "update", [&] {
        return blas::zaxpby_nrm2(real_type{1}, b, real_type{-1},
                                 ConstVecView<real_type>(r), r);
    });
    blas::copy(ConstVecView<real_type>(r), r_hat);
    blas::fill(p, real_type{0});
    blas::fill(v, real_type{0});

    const real_type r0 = r_norm;
    real_type rho_old = 1;
    real_type omega = 1;
    real_type alpha = 1;
    // The first iteration's rho is measured directly (r_hat = r here, so
    // this matches the classic kernel's iteration-0 dot bit for bit);
    // every later rho comes from the dot4 recurrence.
    real_type rho = obs::traced(obs::Phase::reduction, "reduction", [&] {
        return blas::dot(ConstVecView<real_type>(r),
                         ConstVecView<real_type>(r_hat));
    });

    if (history != nullptr) {
        history->clear();
        history->push_back(r_norm);
    }
    for (int iter = 0; iter < max_iters; ++iter) {
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true, FailureClass::converged};
        }
        if (!std::isfinite(r_norm)) {
            return {iter, r_norm, false, FailureClass::non_finite};
        }
        if (rho == real_type{0} || omega == real_type{0}) {
            // Serious breakdown: the Krylov space cannot be extended.
            return {iter, r_norm, false,
                    rho == real_type{0} ? FailureClass::breakdown_rho
                                        : FailureClass::breakdown_omega};
        }
        const real_type beta = (rho / rho_old) * (alpha / omega);
        // p = r + beta * (p - omega * v) in ONE sweep.
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz(real_type{1}, ConstVecView<real_type>(r),
                           -beta * omega, ConstVecView<real_type>(v), beta,
                           p);
        });
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(p), p_hat); });
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(p_hat), v); });
        const real_type r_hat_v = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(r_hat),
                             ConstVecView<real_type>(v));
        });
        if (r_hat_v == real_type{0}) {
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        alpha = rho / r_hat_v;
        // s = r - alpha * v fused with ||s|| (measured, anchoring the
        // residual-norm recurrence below).
        const real_type s_norm = obs::traced(obs::Phase::update, "update", [&] {
            return blas::zaxpby_nrm2(real_type{1},
                                     ConstVecView<real_type>(r), -alpha,
                                     ConstVecView<real_type>(v), s);
        });
        if (stop.done(s_norm, b_norm)) {
            blas::axpy(alpha, ConstVecView<real_type>(p_hat), x);
            return {iter + 1, s_norm, true, FailureClass::converged};
        }
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(s), s_hat); });
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(s_hat), t); });
        // The pipelined quad reduction: t.t and t.s (bit-identical to the
        // classic dual dot) plus s.r_hat and t.r_hat for the recurrences.
        real_type t_t;
        real_type t_s;
        real_type s_rhat;
        real_type t_rhat;
        obs::traced(obs::Phase::reduction, "reduction", [&] {
            blas::dot4(ConstVecView<real_type>(t), ConstVecView<real_type>(s),
                       ConstVecView<real_type>(r_hat), t_t, t_s, s_rhat,
                       t_rhat);
        });
        if (t_t == real_type{0}) {
            blas::axpy(alpha, ConstVecView<real_type>(p_hat), x);
            r_norm = s_norm;
            const bool done = stop.done(r_norm, b_norm);
            return {iter + 1, r_norm, done,
                    done ? FailureClass::converged
                         : FailureClass::breakdown_omega};
        }
        omega = t_s / t_t;
        // x = x + alpha * p_hat + omega * s_hat in ONE sweep.
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz(alpha, ConstVecView<real_type>(p_hat), omega,
                           ConstVecView<real_type>(s_hat), real_type{1}, x);
        });
        // r = s - omega * t -- no norm fused in: ||r|| and the next rho
        // come from the dot4 results, which is the whole point.
        obs::traced(obs::Phase::update, "update", [&] {
            blas::zaxpby(real_type{1}, ConstVecView<real_type>(s), -omega,
                         ConstVecView<real_type>(t), r);
        });
        r_norm = recurrence_norm(s_norm * s_norm -
                                 2 * omega * t_s + omega * omega * t_t);
        rho_old = rho;
        rho = s_rhat - omega * t_rhat;
        if (history != nullptr) {
            history->push_back(r_norm);
        }
    }
    {
        const bool done = stop.done(r_norm, b_norm);
        return {max_iters, r_norm, done,
                classify_exhausted(r_norm, r0, done)};
    }
}

/// Pipelined CG: one dot3_nrm2 reduction sweep per iteration; the r.z dot
/// folds into the preconditioner sweep via Prec::apply_dot. alpha and
/// beta are built from the same dot values as `cg_kernel`, so the iterates
/// are bit-identical to the classic kernel's and only the stop decisions
/// (recurrence norm vs measured norm) may differ by one iteration.
template <typename MatrixView, typename Prec, typename Stop>
EntryResult pipelined_cg_kernel(const MatrixView& a,
                                ConstVecView<real_type> b,
                                VecView<real_type> x, const Prec& prec,
                                const Stop& stop, int max_iters,
                                Workspace& ws, int work_offset = 0,
                                std::vector<real_type>* history = nullptr)
{
    auto r = ws.slot(work_offset + 0);
    auto z = ws.slot(work_offset + 1);
    auto p = ws.slot(work_offset + 2);
    auto q = ws.slot(work_offset + 3);

    const real_type b_norm = blas::nrm2(b);

    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    blas::axpby(real_type{1}, b, real_type{-1}, r);
    real_type r_norm = obs::traced(
        obs::Phase::reduction, "reduction",
        [&] { return blas::nrm2(ConstVecView<real_type>(r)); });

    real_type rz = obs::traced(
        obs::Phase::precond, "precond_apply",
        [&] { return prec.apply_dot(ConstVecView<real_type>(r), z); });
    blas::copy(ConstVecView<real_type>(z), p);
    const real_type r0 = r_norm;

    if (history != nullptr) {
        history->clear();
        history->push_back(r_norm);
    }
    for (int iter = 0; iter < max_iters; ++iter) {
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true, FailureClass::converged};
        }
        if (!std::isfinite(r_norm)) {
            return {iter, r_norm, false, FailureClass::non_finite};
        }
        if (rz == real_type{0}) {
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(p), q); });
        // q.p, q.q, q.r and the measured ||r|| in one sweep: everything
        // the iteration's scalars and the residual-norm recurrence need.
        real_type pq;
        real_type qq;
        real_type qr;
        real_type r_meas;
        obs::traced(obs::Phase::reduction, "reduction", [&] {
            blas::dot3_nrm2(ConstVecView<real_type>(q),
                            ConstVecView<real_type>(p),
                            ConstVecView<real_type>(r), pq, qq, qr, r_meas);
        });
        if (pq <= real_type{0}) {
            // Indefinite matrix: CG is not applicable.
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        const real_type alpha = rz / pq;
        blas::axpy(alpha, ConstVecView<real_type>(p), x);
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpy(-alpha, ConstVecView<real_type>(q), r);
        });
        // ||r - alpha q||^2 re-anchored at this iteration's measured
        // ||r||, so recurrence rounding cannot compound.
        r_norm = recurrence_norm(r_meas * r_meas - 2 * alpha * qr +
                                 alpha * alpha * qq);
        const real_type rz_new = obs::traced(
            obs::Phase::precond, "precond_apply",
            [&] { return prec.apply_dot(ConstVecView<real_type>(r), z); });
        const real_type beta = rz_new / rz;
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpby(real_type{1}, ConstVecView<real_type>(z), beta, p);
        });
        rz = rz_new;
        if (history != nullptr) {
            history->push_back(r_norm);
        }
    }
    {
        const bool done = stop.done(r_norm, b_norm);
        return {max_iters, r_norm, done,
                classify_exhausted(r_norm, r0, done)};
    }
}

}  // namespace bsis
