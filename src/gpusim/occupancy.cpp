#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsis::gpusim {

Occupancy compute_occupancy(const DeviceSpec& device,
                            index_type block_threads,
                            size_type shared_bytes_per_block)
{
    BSIS_ENSURE_ARG(block_threads > 0, "block must have threads");
    Occupancy occ;
    const int by_threads =
        std::max(1, device.max_threads_per_cu / block_threads);
    // The whole L1+shared carve-out of a CU is partitionable among its
    // resident blocks; at least the per-block limit is available.
    const auto cu_shared_bytes = static_cast<size_type>(
        device.l1_shared_kib_per_cu * 1024.0);
    const int by_shared =
        shared_bytes_per_block == 0
            ? device.max_blocks_per_cu
            : std::max<int>(
                  1, static_cast<int>(cu_shared_bytes /
                                      shared_bytes_per_block));
    const int by_limit = device.max_blocks_per_cu;

    occ.blocks_per_cu = std::min({by_threads, by_shared, by_limit});
    if (occ.blocks_per_cu == by_threads) {
        occ.limiter = "threads";
    }
    if (occ.blocks_per_cu == by_shared &&
        shared_bytes_per_block > 0) {
        occ.limiter = "shared";
    }
    if (occ.blocks_per_cu == by_limit) {
        occ.limiter = "blocks";
    }
    return occ;
}

}  // namespace bsis::gpusim
