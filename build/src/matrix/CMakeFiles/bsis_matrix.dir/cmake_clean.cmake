file(REMOVE_RECURSE
  "CMakeFiles/bsis_matrix.dir/stats.cpp.o"
  "CMakeFiles/bsis_matrix.dir/stats.cpp.o.d"
  "CMakeFiles/bsis_matrix.dir/stencil.cpp.o"
  "CMakeFiles/bsis_matrix.dir/stencil.cpp.o.d"
  "libbsis_matrix.a"
  "libbsis_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsis_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
