// Nonlinear model Fokker-Planck collision operator on the 2D velocity grid.
//
// A Dougherty/Landau-type operator in flux-divergence form with an
// anisotropic, velocity-dependent diffusion tensor:
//
//   C[f] = nu * div( D(v) [ (v - u) f / t^2 + grad f ] )        t^2 = T/m
//
//   D(v)  = t^2 [ phi_par(w) W + phi_perp(w) (I - W) ],  W = w w^T / |w|^2,
//   w = v - u.
//
// Properties that make it a faithful stand-in for XGC's nonlinear
// Fokker-Planck-Landau operator (see DESIGN.md, substitutions):
//   * nonlinear: u and T are moments of f (frozen per Picard iterate),
//   * the drifting Maxwellian (u, T) is the exact kernel (detailed
//     balance: the bracket vanishes on it for ANY positive-definite D),
//   * the anisotropic tensor has off-diagonal entries -> mixed
//     derivatives -> a genuine 9-point stencil (Fig. 4 of the paper),
//   * conservative discretization (flux form, zero-flux boundaries,
//     cylindrical metric) conserves density exactly,
//   * the discrete operator is nonsymmetric with eigenvalues in the right
//     half plane clustered near 1 after backward Euler (Fig. 2).
//
// Backward Euler: A f^{n+1} = f^n with A = I - dt * C(u, T). Each Picard
// iteration re-assembles A from the current iterate's moments.
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "matrix/stencil.hpp"
#include "util/types.hpp"
#include "xgc/distribution.hpp"
#include "xgc/grid.hpp"
#include "xgc/species.hpp"

namespace bsis::xgc {

class CollisionOperator {
public:
    CollisionOperator(const VelocityGrid& grid, SpeciesParams species);

    const VelocityGrid& grid() const { return grid_; }
    const SpeciesParams& species() const { return species_; }

    /// The shared 9-point CSR pattern (992 rows for the 32 x 31 grid).
    const StencilPattern& pattern() const { return pattern_; }

    /// Computes the Rosenbluth-like background screening from the current
    /// Picard iterate: the diffusion rates at normalized speed w are scaled
    /// by the actual-to-Maxwellian mass ratio of the speed shell containing
    /// w. This makes the operator depend on the full SHAPE of f (as the
    /// Landau operator's Rosenbluth potentials do), not just its first
    /// three moments -- which is what makes consecutive Picard matrices
    /// differ and the warm-started iteration counts decay gradually
    /// (Table III of the paper). Must be called before assemble()/apply();
    /// without it the screening is 1 (pure Dougherty-type operator).
    void set_background(const PlasmaState& state,
                        ConstVecView<real_type> f);

    /// Resets the background screening to 1.
    void clear_background();

    /// Raw shell-screening table computed by set_background (one factor
    /// per speed shell; empty if unset).
    const std::vector<real_type>& background_table() const
    {
        return screen_;
    }

    /// Blends another species' screening table into this one with the
    /// given weight (field-particle coupling). Both tables must have been
    /// computed with set_background first.
    void blend_background(const std::vector<real_type>& other,
                          real_type weight);

    /// Assembles A = I - dt * C(u, T) into `values` (CSR value layout of
    /// pattern()). `state` carries the moments of the current Picard
    /// iterate.
    void assemble(const PlasmaState& state, real_type dt,
                  real_type* values) const;

    /// Applies the discrete collision operator C(u,T) to `f` directly
    /// (for operator verification tests): out = C f.
    void apply(const PlasmaState& state, ConstVecView<real_type> f,
               VecView<real_type> out) const;

private:
    /// Adds `coeff * f[col]` to the operator row `row` of the assembly
    /// scratch.
    void add(index_type row, index_type col, real_type coeff) const;

    /// Accumulates all flux contributions of C(u,T) scaled by `scale` into
    /// the scratch (a dense-per-row stencil accumulator).
    void accumulate(const PlasmaState& state, real_type scale) const;

    /// Anisotropic diffusion tensor at velocity (vpar, vperp).
    void tensor(const PlasmaState& state, real_type vpar, real_type vperp,
                real_type& d11, real_type& d12, real_type& d22) const;

    /// Interpolated shell-screening factor at normalized speed wbar.
    real_type screening(real_type wbar) const;

    VelocityGrid grid_;
    SpeciesParams species_;
    StencilPattern pattern_;
    /// Shell screening table over normalized speed [0, screen_max_];
    /// empty = no screening.
    std::vector<real_type> screen_;
    real_type screen_max_ = 8.0;
    /// Scratch: one coefficient per stored nonzero (assembly is
    /// single-threaded per operator instance; the batch parallelizes over
    /// operator instances).
    mutable std::vector<real_type> scratch_;
};

}  // namespace bsis::xgc
