#include "lapack/dense.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include <exception>

#include "util/error.hpp"

namespace bsis::lapack {

void getrf(DenseView<real_type> a, std::vector<index_type>& ipiv)
{
    BSIS_ENSURE_DIMS(a.rows == a.cols, "LU requires a square matrix");
    const index_type n = a.rows;
    ipiv.assign(static_cast<std::size_t>(n), 0);
    for (index_type j = 0; j < n; ++j) {
        index_type piv = j;
        real_type piv_mag = std::abs(a(j, j));
        for (index_type i = j + 1; i < n; ++i) {
            const real_type mag = std::abs(a(i, j));
            if (mag > piv_mag) {
                piv_mag = mag;
                piv = i;
            }
        }
        ipiv[j] = piv;
        if (piv_mag == real_type{0}) {
            throw NumericalBreakdown(
                "getrf", "zero pivot at column " + std::to_string(j));
        }
        if (piv != j) {
            for (index_type c = 0; c < n; ++c) {
                std::swap(a(j, c), a(piv, c));
            }
        }
        const real_type inv_pivot = real_type{1} / a(j, j);
        for (index_type i = j + 1; i < n; ++i) {
            const real_type l = a(i, j) * inv_pivot;
            a(i, j) = l;
            for (index_type c = j + 1; c < n; ++c) {
                a(i, c) -= l * a(j, c);
            }
        }
    }
}

void getrs(ConstDenseView<real_type> a, const std::vector<index_type>& ipiv,
           VecView<real_type> b)
{
    const index_type n = a.rows;
    BSIS_ENSURE_DIMS(b.len == n, "rhs length must equal matrix order");
    for (index_type j = 0; j < n; ++j) {
        if (ipiv[j] != j) {
            std::swap(b[j], b[ipiv[j]]);
        }
        for (index_type i = j + 1; i < n; ++i) {
            b[i] -= a(i, j) * b[j];
        }
    }
    for (index_type j = n - 1; j >= 0; --j) {
        b[j] /= a(j, j);
        for (index_type i = 0; i < j; ++i) {
            b[i] -= a(i, j) * b[j];
        }
    }
}

void getrs_transpose(ConstDenseView<real_type> a,
                     const std::vector<index_type>& ipiv,
                     VecView<real_type> b)
{
    const index_type n = a.rows;
    BSIS_ENSURE_DIMS(b.len == n, "rhs length must equal matrix order");
    // A^T = (P^T L U)^T = U^T L^T P, so solve U^T y = b, then L^T z = y,
    // then apply the pivots in reverse.
    for (index_type j = 0; j < n; ++j) {
        for (index_type i = 0; i < j; ++i) {
            b[j] -= a(i, j) * b[i];
        }
        b[j] /= a(j, j);
    }
    for (index_type j = n - 1; j >= 0; --j) {
        for (index_type i = j + 1; i < n; ++i) {
            b[j] -= a(i, j) * b[i];
        }
    }
    for (index_type j = n - 1; j >= 0; --j) {
        if (ipiv[j] != j) {
            std::swap(b[j], b[ipiv[j]]);
        }
    }
}

void gesv(DenseView<real_type> a, VecView<real_type> b)
{
    std::vector<index_type> ipiv;
    getrf(a, ipiv);
    getrs(ConstDenseView<real_type>(a), ipiv, b);
}

void geqrs(DenseView<real_type> a, VecView<real_type> b)
{
    BSIS_ENSURE_DIMS(a.rows == a.cols, "QR solve requires a square matrix");
    const index_type n = a.rows;
    BSIS_ENSURE_DIMS(b.len == n, "rhs length must equal matrix order");
    // Householder QR: for each column, build v with H = I - 2 v v^T / v^T v
    // annihilating below-diagonal entries, apply to remaining columns and b.
    std::vector<real_type> v(static_cast<std::size_t>(n));
    for (index_type j = 0; j < n; ++j) {
        real_type norm = 0;
        for (index_type i = j; i < n; ++i) {
            norm += a(i, j) * a(i, j);
        }
        norm = std::sqrt(norm);
        if (norm == real_type{0}) {
            throw NumericalBreakdown(
                "geqrs", "rank-deficient at column " + std::to_string(j));
        }
        const real_type alpha = a(j, j) >= 0 ? -norm : norm;
        real_type vnorm2 = 0;
        for (index_type i = j; i < n; ++i) {
            v[i] = a(i, j);
        }
        v[j] -= alpha;
        for (index_type i = j; i < n; ++i) {
            vnorm2 += v[i] * v[i];
        }
        if (vnorm2 == real_type{0}) {
            continue;  // column already triangular
        }
        const real_type beta = 2 / vnorm2;
        for (index_type c = j; c < n; ++c) {
            real_type dot = 0;
            for (index_type i = j; i < n; ++i) {
                dot += v[i] * a(i, c);
            }
            const real_type scale = beta * dot;
            for (index_type i = j; i < n; ++i) {
                a(i, c) -= scale * v[i];
            }
        }
        real_type dot = 0;
        for (index_type i = j; i < n; ++i) {
            dot += v[i] * b[i];
        }
        const real_type scale = beta * dot;
        for (index_type i = j; i < n; ++i) {
            b[i] -= scale * v[i];
        }
    }
    for (index_type j = n - 1; j >= 0; --j) {
        b[j] /= a(j, j);
        for (index_type i = 0; i < j; ++i) {
            b[i] -= a(i, j) * b[j];
        }
    }
}

void batch_gesv(BatchDense<real_type>& a, BatchVector<real_type>& x)
{
    BSIS_ENSURE_DIMS(a.num_batch() == x.num_batch(),
                     "batch counts must match");
    BSIS_ENSURE_DIMS(a.rows() == x.len(),
                     "rhs length must equal matrix order");
    const size_type nbatch = a.num_batch();
    std::exception_ptr failure;
#pragma omp parallel for schedule(dynamic)
    for (size_type b = 0; b < nbatch; ++b) {
        try {
            gesv(a.entry(b), x.entry(b));
        } catch (...) {
#pragma omp critical(bsis_batch_driver_failure)
            {
                if (!failure) {
                    failure = std::current_exception();
                }
            }
        }
    }
    if (failure) {
        std::rethrow_exception(failure);
    }
}

real_type norm_1(ConstDenseView<real_type> a)
{
    real_type best = 0;
    for (index_type c = 0; c < a.cols; ++c) {
        real_type colsum = 0;
        for (index_type r = 0; r < a.rows; ++r) {
            colsum += std::abs(a(r, c));
        }
        best = std::max(best, colsum);
    }
    return best;
}

real_type estimate_condition_1(ConstDenseView<real_type> a)
{
    BSIS_ENSURE_DIMS(a.rows == a.cols, "condition estimate needs square A");
    const index_type n = a.rows;
    const real_type a_norm = norm_1(a);

    // Factorize a copy once; Hager iterations then only do solves.
    std::vector<real_type> lu(static_cast<std::size_t>(n) * n);
    std::copy(a.values, a.values + static_cast<std::size_t>(n) * n,
              lu.begin());
    DenseView<real_type> lu_view{lu.data(), n, n};
    std::vector<index_type> ipiv;
    getrf(lu_view, ipiv);
    const ConstDenseView<real_type> f(lu_view);

    // Hager's method estimates ||A^-1||_1 by maximizing ||A^-1 x||_1 over
    // the unit 1-norm ball.
    std::vector<real_type> x(static_cast<std::size_t>(n),
                             real_type{1} / n);
    real_type estimate = 0;
    for (int iter = 0; iter < 5; ++iter) {
        VecView<real_type> xv{x.data(), n};
        getrs(f, ipiv, xv);  // y = A^-1 x
        real_type y_norm = 0;
        for (index_type i = 0; i < n; ++i) {
            y_norm += std::abs(x[i]);
        }
        estimate = std::max(estimate, y_norm);
        // xi = sign(y); z = A^-T xi
        for (index_type i = 0; i < n; ++i) {
            x[i] = x[i] >= 0 ? 1 : -1;
        }
        getrs_transpose(f, ipiv, xv);
        index_type jmax = 0;
        real_type zmax = 0;
        for (index_type i = 0; i < n; ++i) {
            if (std::abs(x[i]) > zmax) {
                zmax = std::abs(x[i]);
                jmax = i;
            }
        }
        if (zmax <= estimate) {
            break;
        }
        std::fill(x.begin(), x.end(), real_type{0});
        x[jmax] = 1;
    }
    return a_norm * estimate;
}

}  // namespace bsis::lapack
