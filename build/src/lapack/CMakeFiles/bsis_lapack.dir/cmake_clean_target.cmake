file(REMOVE_RECURSE
  "libbsis_lapack.a"
)
