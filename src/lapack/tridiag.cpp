#include "lapack/tridiag.hpp"

#include <cmath>

#include <exception>

#include "util/error.hpp"

namespace bsis::lapack {

BatchTridiag::BatchTridiag(size_type num_batch, index_type n)
    : num_batch_(num_batch), n_(n)
{
    BSIS_ENSURE_ARG(num_batch >= 0 && n >= 1, "bad batch shape");
    const auto total = static_cast<std::size_t>(num_batch) * n;
    sub_.assign(total, 0.0);
    diag_.assign(total, 0.0);
    sup_.assign(total, 0.0);
}

TridiagView<real_type> BatchTridiag::entry(size_type b)
{
    BSIS_ASSERT(b >= 0 && b < num_batch_);
    const auto offset = static_cast<std::size_t>(b) * n_;
    return {n_, sub_.data() + offset, diag_.data() + offset,
            sup_.data() + offset};
}

void thomas_solve(TridiagView<real_type> a, VecView<real_type> b)
{
    const index_type n = a.n;
    BSIS_ENSURE_DIMS(b.len == n, "rhs length must equal system order");
    // Forward sweep: eliminate the sub-diagonal.
    if (a.diag[0] == real_type{0}) {
        throw NumericalBreakdown("thomas_solve", "zero pivot at row 0");
    }
    for (index_type i = 1; i < n; ++i) {
        const real_type w = a.sub[i] / a.diag[i - 1];
        a.diag[i] -= w * a.sup[i - 1];
        b[i] -= w * b[i - 1];
        if (a.diag[i] == real_type{0}) {
            throw NumericalBreakdown(
                "thomas_solve", "zero pivot at row " + std::to_string(i));
        }
    }
    // Back substitution.
    b[n - 1] /= a.diag[n - 1];
    for (index_type i = n - 2; i >= 0; --i) {
        b[i] = (b[i] - a.sup[i] * b[i + 1]) / a.diag[i];
    }
}

namespace {

/// One level of cyclic reduction: eliminates the odd-indexed unknowns,
/// producing the reduced system over the even indices, recurses, then
/// back-substitutes the odd unknowns. Arbitrary n.
void cr_recurse(const std::vector<real_type>& sub,
                const std::vector<real_type>& diag,
                const std::vector<real_type>& sup,
                std::vector<real_type>& rhs, std::vector<real_type>& x)
{
    const auto n = static_cast<index_type>(diag.size());
    if (n == 1) {
        if (diag[0] == real_type{0}) {
            throw NumericalBreakdown("cyclic_reduction_solve",
                                     "zero reduced pivot");
        }
        x[0] = rhs[0] / diag[0];
        return;
    }
    const index_type m = (n + 1) / 2;  // even-indexed unknowns
    std::vector<real_type> rsub(static_cast<std::size_t>(m), 0.0);
    std::vector<real_type> rdiag(static_cast<std::size_t>(m), 0.0);
    std::vector<real_type> rsup(static_cast<std::size_t>(m), 0.0);
    std::vector<real_type> rrhs(static_cast<std::size_t>(m), 0.0);

    for (index_type i = 0; i < m; ++i) {
        const index_type row = 2 * i;
        real_type d = diag[static_cast<std::size_t>(row)];
        real_type r = rhs[static_cast<std::size_t>(row)];
        real_type s = 0;
        real_type p = 0;
        if (row - 1 >= 0) {
            const auto up = static_cast<std::size_t>(row - 1);
            if (diag[up] == real_type{0}) {
                throw NumericalBreakdown("cyclic_reduction_solve",
                                         "zero odd pivot");
            }
            const real_type alpha =
                sub[static_cast<std::size_t>(row)] / diag[up];
            d -= alpha * sup[up];
            r -= alpha * rhs[up];
            s = -alpha * sub[up];  // couples to even index row-2
        }
        if (row + 1 < n) {
            const auto dn = static_cast<std::size_t>(row + 1);
            if (diag[dn] == real_type{0}) {
                throw NumericalBreakdown("cyclic_reduction_solve",
                                         "zero odd pivot");
            }
            const real_type gamma =
                sup[static_cast<std::size_t>(row)] / diag[dn];
            d -= gamma * sub[dn];
            r -= gamma * rhs[dn];
            p = -gamma * sup[dn];  // couples to even index row+2
        }
        rsub[static_cast<std::size_t>(i)] = s;
        rdiag[static_cast<std::size_t>(i)] = d;
        rsup[static_cast<std::size_t>(i)] = p;
        rrhs[static_cast<std::size_t>(i)] = r;
    }

    std::vector<real_type> rx(static_cast<std::size_t>(m), 0.0);
    cr_recurse(rsub, rdiag, rsup, rrhs, rx);

    for (index_type i = 0; i < m; ++i) {
        x[static_cast<std::size_t>(2 * i)] = rx[static_cast<std::size_t>(i)];
    }
    // Back-substitute the odd unknowns.
    for (index_type row = 1; row < n; row += 2) {
        const auto r = static_cast<std::size_t>(row);
        real_type v = rhs[r];
        v -= sub[r] * x[r - 1];
        if (row + 1 < n) {
            v -= sup[r] * x[r + 1];
        }
        x[r] = v / diag[r];
    }
}

}  // namespace

void cyclic_reduction_solve(const TridiagView<const real_type>& a,
                            VecView<real_type> b)
{
    const index_type n = a.n;
    BSIS_ENSURE_DIMS(b.len == n, "rhs length must equal system order");
    std::vector<real_type> sub(a.sub, a.sub + n);
    std::vector<real_type> diag(a.diag, a.diag + n);
    std::vector<real_type> sup(a.sup, a.sup + n);
    std::vector<real_type> rhs(b.begin(), b.end());
    std::vector<real_type> x(static_cast<std::size_t>(n), 0.0);
    cr_recurse(sub, diag, sup, rhs, x);
    for (index_type i = 0; i < n; ++i) {
        b[i] = x[static_cast<std::size_t>(i)];
    }
}

void cyclic_reduction_solve(const TridiagView<real_type>& a,
                            VecView<real_type> b)
{
    cyclic_reduction_solve(
        TridiagView<const real_type>{a.n, a.sub, a.diag, a.sup}, b);
}

void batch_thomas(BatchTridiag& a, BatchVector<real_type>& x)
{
    BSIS_ENSURE_DIMS(a.num_batch() == x.num_batch() && a.n() == x.len(),
                     "batch shape mismatch");
    const size_type nbatch = a.num_batch();
    std::exception_ptr failure;
#pragma omp parallel for schedule(static)
    for (size_type b = 0; b < nbatch; ++b) {
        try {
            thomas_solve(a.entry(b), x.entry(b));
        } catch (...) {
#pragma omp critical(bsis_batch_driver_failure)
            {
                if (!failure) {
                    failure = std::current_exception();
                }
            }
        }
    }
    if (failure) {
        std::rethrow_exception(failure);
    }
}

void batch_cyclic_reduction(BatchTridiag& a, BatchVector<real_type>& x)
{
    BSIS_ENSURE_DIMS(a.num_batch() == x.num_batch() && a.n() == x.len(),
                     "batch shape mismatch");
    const size_type nbatch = a.num_batch();
    std::exception_ptr failure;
#pragma omp parallel for schedule(static)
    for (size_type b = 0; b < nbatch; ++b) {
        try {
            cyclic_reduction_solve(a.entry(b), x.entry(b));
        } catch (...) {
#pragma omp critical(bsis_batch_driver_failure)
            {
                if (!failure) {
                    failure = std::current_exception();
                }
            }
        }
    }
    if (failure) {
        std::rethrow_exception(failure);
    }
}

BatchPentadiag::BatchPentadiag(size_type num_batch, index_type n)
    : num_batch_(num_batch), n_(n)
{
    BSIS_ENSURE_ARG(num_batch >= 0 && n >= 1, "bad batch shape");
    for (auto& band : bands_) {
        band.assign(static_cast<std::size_t>(num_batch) * n, 0.0);
    }
}

PentadiagView<real_type> BatchPentadiag::entry(size_type b)
{
    BSIS_ASSERT(b >= 0 && b < num_batch_);
    const auto offset = static_cast<std::size_t>(b) * n_;
    return {n_,
            bands_[0].data() + offset,
            bands_[1].data() + offset,
            bands_[2].data() + offset,
            bands_[3].data() + offset,
            bands_[4].data() + offset};
}

void pentadiag_solve(PentadiagView<real_type> a, VecView<real_type> b)
{
    const index_type n = a.n;
    BSIS_ENSURE_DIMS(b.len == n, "rhs length must equal system order");
    // Band accessor: A(r, r + k) for k in [-2, 2].
    const auto band = [&](index_type r, int k) -> real_type& {
        switch (k) {
        case -2: return a.sub2[r];
        case -1: return a.sub1[r];
        case 0: return a.diag[r];
        case 1: return a.sup1[r];
        default: return a.sup2[r];
        }
    };
    // Forward elimination (no pivoting): rows i+1 and i+2 lose their
    // entries in column i.
    for (index_type i = 0; i < n; ++i) {
        if (a.diag[i] == real_type{0}) {
            throw NumericalBreakdown(
                "pentadiag_solve", "zero pivot at row " + std::to_string(i));
        }
        for (int down = 1; down <= 2; ++down) {
            const index_type r = i + down;
            if (r >= n) {
                continue;
            }
            const real_type factor = band(r, -down) / a.diag[i];
            if (factor == real_type{0}) {
                continue;
            }
            band(r, -down) = 0;
            // Row i has entries in columns i .. i+2.
            for (int k = 1; k <= 2; ++k) {
                const index_type c = i + k;
                if (c < n && c - r >= -2 && c - r <= 2) {
                    band(r, static_cast<int>(c - r)) -=
                        factor * band(i, k);
                }
            }
            b[r] -= factor * b[i];
        }
    }
    // Back substitution with two super-diagonals.
    for (index_type i = n - 1; i >= 0; --i) {
        real_type v = b[i];
        if (i + 1 < n) {
            v -= a.sup1[i] * b[i + 1];
        }
        if (i + 2 < n) {
            v -= a.sup2[i] * b[i + 2];
        }
        b[i] = v / a.diag[i];
    }
}

void batch_pentadiag(BatchPentadiag& a, BatchVector<real_type>& x)
{
    BSIS_ENSURE_DIMS(a.num_batch() == x.num_batch() && a.n() == x.len(),
                     "batch shape mismatch");
    const size_type nbatch = a.num_batch();
    std::exception_ptr failure;
#pragma omp parallel for schedule(static)
    for (size_type b = 0; b < nbatch; ++b) {
        try {
            pentadiag_solve(a.entry(b), x.entry(b));
        } catch (...) {
#pragma omp critical(bsis_batch_driver_failure)
            {
                if (!failure) {
                    failure = std::current_exception();
                }
            }
        }
    }
    if (failure) {
        std::rethrow_exception(failure);
    }
}

double thomas_flops(index_type n)
{
    return 8.0 * n;  // 3 in the sweep + 5 in the back substitution
}

double cyclic_reduction_flops(index_type n)
{
    // ~12 flops per eliminated unknown per level, summed over a halving
    // sequence ~ 12 * 2n, plus the back substitutions.
    return 24.0 * n + 5.0 * n;
}

double pentadiag_flops(index_type n)
{
    return 24.0 * n;
}

}  // namespace bsis::lapack
