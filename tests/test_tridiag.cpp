#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lapack/tridiag.hpp"
#include "util/rng.hpp"

namespace bsis::lapack {
namespace {

/// Fills one tridiagonal entry with a random diagonally dominant system.
void fill_random(TridiagView<real_type> t, std::uint64_t seed)
{
    Rng rng(seed);
    for (index_type i = 0; i < t.n; ++i) {
        t.sub[i] = i > 0 ? rng.uniform(-1.0, 1.0) : 0.0;
        t.sup[i] = i + 1 < t.n ? rng.uniform(-1.0, 1.0) : 0.0;
        t.diag[i] = std::abs(t.sub[i]) + std::abs(t.sup[i]) + 1.0 +
                    rng.uniform();
    }
}

/// Residual ||A x - b||_inf of a tridiagonal system.
real_type residual(const TridiagView<real_type>& t,
                   const std::vector<real_type>& x,
                   const std::vector<real_type>& b)
{
    real_type worst = 0;
    for (index_type i = 0; i < t.n; ++i) {
        real_type sum = t.diag[i] * x[static_cast<std::size_t>(i)];
        if (i > 0) {
            sum += t.sub[i] * x[static_cast<std::size_t>(i) - 1];
        }
        if (i + 1 < t.n) {
            sum += t.sup[i] * x[static_cast<std::size_t>(i) + 1];
        }
        worst = std::max(worst,
                         std::abs(sum - b[static_cast<std::size_t>(i)]));
    }
    return worst;
}

class TridiagSolvers : public ::testing::TestWithParam<index_type> {};

TEST_P(TridiagSolvers, ThomasSolvesToMachinePrecision)
{
    const index_type n = GetParam();
    BatchTridiag batch(1, n);
    auto t = batch.entry(0);
    fill_random(t, 10 + n);
    // Keep an unfactorized copy for the residual.
    BatchTridiag copy_batch(1, n);
    auto copy = copy_batch.entry(0);
    for (index_type i = 0; i < n; ++i) {
        copy.sub[i] = t.sub[i];
        copy.diag[i] = t.diag[i];
        copy.sup[i] = t.sup[i];
    }
    Rng rng(1);
    std::vector<real_type> b(static_cast<std::size_t>(n));
    for (auto& v : b) {
        v = rng.uniform(-1.0, 1.0);
    }
    auto x = b;
    thomas_solve(t, VecView<real_type>{x.data(), n});
    EXPECT_LT(residual(copy, x, b), 1e-12);
}

TEST_P(TridiagSolvers, CyclicReductionMatchesThomas)
{
    const index_type n = GetParam();
    BatchTridiag batch(1, n);
    auto t = batch.entry(0);
    fill_random(t, 500 + n);
    Rng rng(2);
    std::vector<real_type> b(static_cast<std::size_t>(n));
    for (auto& v : b) {
        v = rng.uniform(-1.0, 1.0);
    }
    auto x_cr = b;
    cyclic_reduction_solve(t, VecView<real_type>{x_cr.data(), n});
    EXPECT_LT(residual(t, x_cr, b), 1e-11);  // CR leaves the matrix intact
    auto x_thomas = b;
    thomas_solve(t, VecView<real_type>{x_thomas.data(), n});
    for (index_type i = 0; i < n; ++i) {
        EXPECT_NEAR(x_cr[static_cast<std::size_t>(i)],
                    x_thomas[static_cast<std::size_t>(i)], 1e-11);
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, TridiagSolvers,
                         ::testing::Values<index_type>(1, 2, 3, 7, 16, 31,
                                                       64, 255, 992));

TEST(Tridiag, ThomasThrowsOnZeroPivot)
{
    BatchTridiag batch(1, 2);
    auto t = batch.entry(0);
    t.diag[0] = 0.0;
    t.diag[1] = 1.0;
    std::vector<real_type> b{1.0, 1.0};
    EXPECT_THROW(thomas_solve(t, VecView<real_type>{b.data(), 2}),
                 NumericalBreakdown);
}

TEST(Tridiag, BatchedDriversSolveEverySystem)
{
    const index_type n = 64;
    const size_type nbatch = 12;
    BatchTridiag a1(nbatch, n);
    BatchTridiag a2(nbatch, n);
    BatchVector<real_type> x1(nbatch, n);
    BatchVector<real_type> x2(nbatch, n);
    std::vector<std::vector<real_type>> rhs;
    Rng rng(3);
    for (size_type b = 0; b < nbatch; ++b) {
        fill_random(a1.entry(b), 900 + b);
        auto t1 = a1.entry(b);
        auto t2 = a2.entry(b);
        for (index_type i = 0; i < n; ++i) {
            t2.sub[i] = t1.sub[i];
            t2.diag[i] = t1.diag[i];
            t2.sup[i] = t1.sup[i];
        }
        rhs.emplace_back(static_cast<std::size_t>(n));
        for (index_type i = 0; i < n; ++i) {
            rhs.back()[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
            x1.entry(b)[i] = rhs.back()[static_cast<std::size_t>(i)];
            x2.entry(b)[i] = rhs.back()[static_cast<std::size_t>(i)];
        }
    }
    batch_thomas(a1, x1);
    batch_cyclic_reduction(a2, x2);
    for (size_type b = 0; b < nbatch; ++b) {
        std::vector<real_type> xs(x2.entry(b).begin(), x2.entry(b).end());
        EXPECT_LT(residual(a2.entry(b), xs,
                           rhs[static_cast<std::size_t>(b)]),
                  1e-11);
        for (index_type i = 0; i < n; ++i) {
            EXPECT_NEAR(x1.entry(b)[i], x2.entry(b)[i], 1e-11);
        }
    }
}

class PentadiagSolver : public ::testing::TestWithParam<index_type> {};

TEST_P(PentadiagSolver, SolvesDiagonallyDominantSystems)
{
    const index_type n = GetParam();
    BatchPentadiag batch(1, n);
    auto p = batch.entry(0);
    Rng rng(40 + n);
    for (index_type i = 0; i < n; ++i) {
        p.sub2[i] = i > 1 ? rng.uniform(-1.0, 1.0) : 0.0;
        p.sub1[i] = i > 0 ? rng.uniform(-1.0, 1.0) : 0.0;
        p.sup1[i] = i + 1 < n ? rng.uniform(-1.0, 1.0) : 0.0;
        p.sup2[i] = i + 2 < n ? rng.uniform(-1.0, 1.0) : 0.0;
        p.diag[i] = std::abs(p.sub2[i]) + std::abs(p.sub1[i]) +
                    std::abs(p.sup1[i]) + std::abs(p.sup2[i]) + 1.5;
    }
    // Dense copy for the residual check.
    std::vector<real_type> dense(static_cast<std::size_t>(n) * n, 0.0);
    for (index_type i = 0; i < n; ++i) {
        dense[static_cast<std::size_t>(i) * n + i] = p.diag[i];
        if (i > 0) dense[static_cast<std::size_t>(i) * n + i - 1] = p.sub1[i];
        if (i > 1) dense[static_cast<std::size_t>(i) * n + i - 2] = p.sub2[i];
        if (i + 1 < n) dense[static_cast<std::size_t>(i) * n + i + 1] = p.sup1[i];
        if (i + 2 < n) dense[static_cast<std::size_t>(i) * n + i + 2] = p.sup2[i];
    }
    std::vector<real_type> b(static_cast<std::size_t>(n));
    for (auto& v : b) {
        v = rng.uniform(-1.0, 1.0);
    }
    auto x = b;
    pentadiag_solve(p, VecView<real_type>{x.data(), n});
    for (index_type i = 0; i < n; ++i) {
        real_type sum = 0;
        for (index_type j = 0; j < n; ++j) {
            sum += dense[static_cast<std::size_t>(i) * n + j] *
                   x[static_cast<std::size_t>(j)];
        }
        EXPECT_NEAR(sum, b[static_cast<std::size_t>(i)], 1e-11)
            << "row " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, PentadiagSolver,
                         ::testing::Values<index_type>(1, 2, 3, 5, 17, 64,
                                                       255));

TEST(TridiagFlops, ScaleLinearly)
{
    EXPECT_GT(lapack::thomas_flops(100), 0);
    EXPECT_NEAR(lapack::thomas_flops(200) / lapack::thomas_flops(100), 2.0,
                1e-12);
    EXPECT_GT(lapack::cyclic_reduction_flops(100),
              lapack::thomas_flops(100));
    EXPECT_GT(lapack::pentadiag_flops(100), lapack::thomas_flops(100));
}

}  // namespace
}  // namespace bsis::lapack
