#include "matrix/stencil.hpp"

#include <cmath>
#include <memory>

#include "util/error.hpp"

namespace bsis {

std::vector<std::array<index_type, 2>> stencil_offsets(StencilKind kind)
{
    if (kind == StencilKind::five_point) {
        return {{0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1}};
    }
    std::vector<std::array<index_type, 2>> offsets;
    offsets.push_back({0, 0});
    for (index_type dj = -1; dj <= 1; ++dj) {
        for (index_type di = -1; di <= 1; ++di) {
            if (di != 0 || dj != 0) {
                offsets.push_back({di, dj});
            }
        }
    }
    return offsets;
}

StencilPattern make_stencil_pattern(index_type nx, index_type ny,
                                    StencilKind kind)
{
    BSIS_ENSURE_ARG(nx >= 2 && ny >= 2, "grid must be at least 2x2");
    StencilPattern pattern;
    pattern.nx = nx;
    pattern.ny = ny;
    pattern.kind = kind;
    const auto offsets = stencil_offsets(kind);
    const index_type rows = nx * ny;
    pattern.row_ptrs.assign(rows + 1, 0);

    // First pass: count in-grid neighbors per row.
    for (index_type j = 0; j < ny; ++j) {
        for (index_type i = 0; i < nx; ++i) {
            index_type cnt = 0;
            for (const auto& [di, dj] : offsets) {
                const index_type ii = i + di;
                const index_type jj = j + dj;
                if (ii >= 0 && ii < nx && jj >= 0 && jj < ny) {
                    ++cnt;
                }
            }
            pattern.row_ptrs[j * nx + i + 1] = cnt;
        }
    }
    for (index_type r = 0; r < rows; ++r) {
        pattern.row_ptrs[r + 1] += pattern.row_ptrs[r];
    }

    // Second pass: emit columns sorted ascending. For a row r = j*nx + i the
    // neighbor columns sorted ascending are exactly the neighborhood
    // traversed with dj outer (ascending), di inner (ascending).
    pattern.col_idxs.assign(pattern.row_ptrs[rows], 0);
    for (index_type j = 0; j < ny; ++j) {
        for (index_type i = 0; i < nx; ++i) {
            index_type p = pattern.row_ptrs[j * nx + i];
            for (index_type dj = -1; dj <= 1; ++dj) {
                for (index_type di = -1; di <= 1; ++di) {
                    const bool in_stencil =
                        kind == StencilKind::nine_point
                            ? true
                            : (di == 0 || dj == 0);
                    const index_type ii = i + di;
                    const index_type jj = j + dj;
                    if (in_stencil && ii >= 0 && ii < nx && jj >= 0 &&
                        jj < ny) {
                        pattern.col_idxs[p++] = jj * nx + ii;
                    }
                }
            }
        }
    }
    return pattern;
}

BatchCsr<real_type> assemble_stencil_batch(
    const StencilPattern& pattern,
    const std::vector<StencilCoefficientFn>& coeff)
{
    BSIS_ENSURE_ARG(!coeff.empty(), "need at least one coefficient function");
    BatchCsr<real_type> csr(static_cast<size_type>(coeff.size()),
                            pattern.rows(), pattern.row_ptrs,
                            pattern.col_idxs);
    const index_type nx = pattern.nx;
    for (size_type b = 0; b < csr.num_batch(); ++b) {
        real_type* vals = csr.values(b);
        for (index_type j = 0; j < pattern.ny; ++j) {
            for (index_type i = 0; i < nx; ++i) {
                const index_type r = j * nx + i;
                for (index_type p = pattern.row_ptrs[r];
                     p < pattern.row_ptrs[r + 1]; ++p) {
                    const index_type c = pattern.col_idxs[p];
                    const index_type ii = c % nx;
                    const index_type jj = c / nx;
                    vals[p] = coeff[b](i, j, ii - i, jj - j);
                }
            }
        }
    }
    return csr;
}

BatchCsr<real_type> make_synthetic_batch(index_type nx, index_type ny,
                                         StencilKind kind,
                                         size_type num_batch,
                                         const SyntheticStencilParams& params)
{
    const auto pattern = make_stencil_pattern(nx, ny, kind);
    std::vector<StencilCoefficientFn> coeff;
    coeff.reserve(static_cast<std::size_t>(num_batch));
    for (size_type b = 0; b < num_batch; ++b) {
        // One RNG per batch entry keeps entries independent of batch order.
        auto rng = std::make_shared<Rng>(params.seed + 1000003 * (b + 1));
        coeff.push_back([rng, params, kind](index_type, index_type,
                                            index_type di, index_type dj) {
            const real_type noise =
                1.0 + params.perturbation * (2.0 * rng->uniform() - 1.0);
            if (di == 0 && dj == 0) {
                const real_type neighbors =
                    kind == StencilKind::five_point ? 4.0 : 8.0;
                return (1.0 + neighbors * params.diffusion) * noise;
            }
            // Off-diagonal: diffusive coupling plus a one-sided advective
            // part that breaks symmetry.
            const real_type upwind =
                (di + dj > 0) ? params.advection : -params.advection;
            return (-params.diffusion + upwind) * noise;
        });
    }
    return assemble_stencil_batch(pattern, coeff);
}

}  // namespace bsis
