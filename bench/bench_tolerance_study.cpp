// Section V of the paper (first paragraph): the tolerance study behind the
// choice of 1e-10. Two claims are reproduced:
//   1. "Conservation of relevant physical quantities in XGC to a
//      pre-decided threshold (1e-7) was met with a minimum tolerance of
//      1e-10" -- measured here as the deviation of the accepted step from
//      a direct-solve (machine-precision) reference.
//   2. "Increasing the linear solver tolerance above 1e-10 resulted in the
//      Picard loop not converging up to 100 iterations" -- measured as the
//      true nonlinear residual stagnating above the Picard tolerance
//      (XGC's tight nonlinear threshold guarantees the conservation
//      target with margin; the linear residual floor is what stalls it).
#include <cmath>
#include <iostream>

#include "common.hpp"

namespace {

using namespace bsis;

struct StudyResult {
    bool picard_converged = false;
    int picard_iterations = 0;
    double deviation_from_reference = 0;
    double raw_conservation = 0;
};

StudyResult run(real_type linear_tol,
                const BatchVector<real_type>* reference)
{
    xgc::WorkloadParams wp;
    wp.num_mesh_nodes = 2;
    xgc::CollisionWorkload workload(wp);

    SolverSettings settings;
    settings.tolerance = linear_tol;
    settings.max_iterations = 500;

    xgc::PicardSettings ps;
    ps.num_iterations = 100;
    ps.nonlinear_tol = 1e-13;
    const auto report = implicit_collision_step(
        workload, ps, xgc::make_reference_solver(settings));

    StudyResult result;
    result.picard_converged = report.converged;
    result.picard_iterations = report.picard_iterations;
    for (const auto e : report.raw_conservation_errors) {
        result.raw_conservation = std::max(result.raw_conservation, e);
    }
    if (reference != nullptr) {
        // Max relative deviation of the accepted distributions from the
        // tight-tolerance reference (the physics-facing error).
        double worst = 0;
        for (size_type sys = 0; sys < workload.num_systems(); ++sys) {
            const auto f = workload.distributions().entry(sys);
            const auto r = reference->entry(sys);
            double num = 0;
            double den = 0;
            for (index_type i = 0; i < f.len; ++i) {
                num += (f[i] - r[i]) * (f[i] - r[i]);
                den += r[i] * r[i];
            }
            worst = std::max(worst, std::sqrt(num / den));
        }
        result.deviation_from_reference = worst;
    }
    return result;
}

}  // namespace

int main()
{
    using namespace bsis;

    // Machine-precision reference step.
    BatchVector<real_type> reference;
    {
        xgc::WorkloadParams wp;
        wp.num_mesh_nodes = 2;
        xgc::CollisionWorkload workload(wp);
        SolverSettings settings;
        settings.tolerance = 1e-13;
        settings.max_iterations = 1000;
        xgc::PicardSettings ps;
        ps.num_iterations = 100;
        ps.nonlinear_tol = 1e-13;
        implicit_collision_step(workload, ps,
                                xgc::make_reference_solver(settings));
        reference = workload.distributions();
    }

    Table table({"linear_tol", "picard_converged", "picard_iters",
                 "deviation_from_reference", "meets_1e-7"});
    for (const double tol : {1e-6, 1e-8, 1e-10, 1e-12}) {
        const auto result = run(tol, &reference);
        table.new_row()
            .add(tol, 1)
            .add(result.picard_converged ? "yes" : "NO (stalled)")
            .add(result.picard_iterations)
            .add(result.deviation_from_reference, 3)
            .add(result.deviation_from_reference < 1e-7 ? "yes" : "no");
    }
    bench::emit("tolerance_study",
                "Tolerance study: Picard convergence (tol 1e-13, max 100) "
                "and solution fidelity vs linear solver tolerance",
                table);
    std::cout << "\nShape check (paper: tolerances looser than ~1e-10 stall "
                 "the Picard loop\nand miss the 1e-7 fidelity threshold; "
                 "1e-10 meets both)\n";
    return 0;
}
