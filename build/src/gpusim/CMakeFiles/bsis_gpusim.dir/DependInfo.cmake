
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cache.cpp" "src/gpusim/CMakeFiles/bsis_gpusim.dir/cache.cpp.o" "gcc" "src/gpusim/CMakeFiles/bsis_gpusim.dir/cache.cpp.o.d"
  "/root/repo/src/gpusim/cost_model.cpp" "src/gpusim/CMakeFiles/bsis_gpusim.dir/cost_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/bsis_gpusim.dir/cost_model.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/bsis_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/bsis_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/gpusim/CMakeFiles/bsis_gpusim.dir/occupancy.cpp.o" "gcc" "src/gpusim/CMakeFiles/bsis_gpusim.dir/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/scheduler.cpp" "src/gpusim/CMakeFiles/bsis_gpusim.dir/scheduler.cpp.o" "gcc" "src/gpusim/CMakeFiles/bsis_gpusim.dir/scheduler.cpp.o.d"
  "/root/repo/src/gpusim/simt.cpp" "src/gpusim/CMakeFiles/bsis_gpusim.dir/simt.cpp.o" "gcc" "src/gpusim/CMakeFiles/bsis_gpusim.dir/simt.cpp.o.d"
  "/root/repo/src/gpusim/simt_kernels.cpp" "src/gpusim/CMakeFiles/bsis_gpusim.dir/simt_kernels.cpp.o" "gcc" "src/gpusim/CMakeFiles/bsis_gpusim.dir/simt_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bsis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/bsis_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bsis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lapack/CMakeFiles/bsis_lapack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
