// Batched preconditioners.
//
// Composed into the solver kernel as the `PrecType` template parameter
// (paper Listing 1). Each preconditioner exposes:
//   static constexpr index_type work_vectors  -- per-system scratch slots
//   generate(matrix_view, work)               -- per-system setup
//   apply(in, out)                            -- out := M^-1 in
//   apply_dot(in, out)                        -- apply + returns in . out
//
// apply_dot fuses the dot product the pipelined kernels need (e.g. CG's
// r . z) into the apply sweep itself; the elementwise preconditioners
// accumulate in the same ascending order as blas::dot over the finished
// output, so the fused result is bit-identical to apply + dot.
#pragma once

#include <cmath>
#include <vector>

#include "blas/batch_vector.hpp"
#include "blas/kernels.hpp"
#include "lapack/dense.hpp"
#include "matrix/batch_csr.hpp"
#include "matrix/batch_ell.hpp"
#include "matrix/batch_sellp.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// No preconditioning: out := in.
class IdentityPrec {
public:
    static constexpr index_type work_vectors = 0;

    template <typename MatrixView>
    void generate(const MatrixView&, VecView<real_type>)
    {}

    void apply(ConstVecView<real_type> in, VecView<real_type> out) const
    {
        blas::copy(in, out);
    }

    real_type apply_dot(ConstVecView<real_type> in,
                        VecView<real_type> out) const
    {
        BSIS_ASSERT(in.len == out.len);
        real_type sum{};
        for (index_type i = 0; i < in.len; ++i) {
            out[i] = in[i];
            sum += in[i] * in[i];
        }
        return sum;
    }
};

/// Scalar Jacobi: out := diag(A)^-1 in. The paper's production choice for
/// the collision matrices (diagonally dominant, 9-point stencil).
class JacobiPrec {
public:
    static constexpr index_type work_vectors = 1;

    template <typename MatrixView>
    void generate(const MatrixView& a, VecView<real_type> work)
    {
        extract_diagonal(a, work);
        for (index_type i = 0; i < work.len; ++i) {
            if (work[i] == real_type{0}) {
                throw NumericalBreakdown("JacobiPrec",
                                         "zero diagonal entry");
            }
            work[i] = real_type{1} / work[i];
        }
        inv_diag_ = work;
    }

    void apply(ConstVecView<real_type> in, VecView<real_type> out) const
    {
        blas::mul_elementwise(ConstVecView<real_type>(inv_diag_), in, out);
    }

    real_type apply_dot(ConstVecView<real_type> in,
                        VecView<real_type> out) const
    {
        BSIS_ASSERT(in.len == out.len);
        real_type sum{};
        for (index_type i = 0; i < in.len; ++i) {
            const real_type oi = inv_diag_[i] * in[i];
            out[i] = oi;
            sum += in[i] * oi;
        }
        return sum;
    }

private:
    VecView<real_type> inv_diag_;
};

/// Block Jacobi with contiguous fixed-size diagonal blocks, each inverted
/// by dense LU at generate time. An extension over the paper's scalar
/// Jacobi, exercised by the ablation benchmarks.
class BlockJacobiPrec {
public:
    /// Scratch: one n x block_size strip storing the inverted blocks.
    static index_type work_vectors_for(index_type block_size)
    {
        return block_size;
    }

    explicit BlockJacobiPrec(index_type block_size = 4)
        : block_size_(block_size)
    {
        BSIS_ENSURE_ARG(block_size >= 1, "block size must be positive");
    }

    index_type block_size() const { return block_size_; }

    template <typename MatrixView>
    void generate(const MatrixView& a, VecView<real_type> work)
    {
        const index_type n = matrix_rows(a);
        BSIS_ENSURE_DIMS(work.len >= n * block_size_,
                         "block-Jacobi scratch too small");
        inv_blocks_ = work;
        n_ = n;
        // Extract each diagonal block densely, invert it, store row-major.
        std::vector<real_type> block(
            static_cast<std::size_t>(block_size_) * block_size_);
        std::vector<real_type> inv(
            static_cast<std::size_t>(block_size_) * block_size_);
        std::vector<index_type> ipiv;
        for (index_type start = 0; start < n; start += block_size_) {
            const index_type bs = std::min(block_size_, n - start);
            extract_block(a, start, bs, block.data());
            // Invert by solving with unit vectors.
            DenseView<real_type> bv{block.data(), bs, bs};
            lapack::getrf(bv, ipiv);
            for (index_type c = 0; c < bs; ++c) {
                std::vector<real_type> e(static_cast<std::size_t>(bs), 0.0);
                e[static_cast<std::size_t>(c)] = 1.0;
                VecView<real_type> ev{e.data(), bs};
                lapack::getrs(ConstDenseView<real_type>(bv), ipiv, ev);
                for (index_type r = 0; r < bs; ++r) {
                    inv[static_cast<std::size_t>(r) * bs + c] = e[r];
                }
            }
            for (index_type r = 0; r < bs; ++r) {
                for (index_type c = 0; c < bs; ++c) {
                    inv_blocks_[(start + r) * block_size_ + c] =
                        inv[static_cast<std::size_t>(r) * bs + c];
                }
            }
        }
    }

    void apply(ConstVecView<real_type> in, VecView<real_type> out) const
    {
        for (index_type start = 0; start < n_; start += block_size_) {
            const index_type bs = std::min(block_size_, n_ - start);
            for (index_type r = 0; r < bs; ++r) {
                real_type sum{};
                for (index_type c = 0; c < bs; ++c) {
                    sum += inv_blocks_[(start + r) * block_size_ + c] *
                           in[start + c];
                }
                out[start + r] = sum;
            }
        }
    }

    /// Block application has no elementwise sweep to piggyback on; fall
    /// back to apply followed by a separate dot (still the same value the
    /// pipelined kernels would measure).
    real_type apply_dot(ConstVecView<real_type> in,
                        VecView<real_type> out) const
    {
        apply(in, out);
        return blas::dot(in, ConstVecView<real_type>(out));
    }

private:
    template <typename MatrixView>
    static index_type matrix_rows(const MatrixView& a)
    {
        return a.rows;
    }

    /// Copies the dense bs x bs diagonal block starting at `start` out of
    /// any matrix view that supports extract_diagonal-style traversal.
    template <typename MatrixView>
    void extract_block(const MatrixView& a, index_type start, index_type bs,
                       real_type* block) const
    {
        for (index_type r = 0; r < bs; ++r) {
            for (index_type c = 0; c < bs; ++c) {
                block[static_cast<std::size_t>(r) * bs + c] =
                    value_at(a, start + r, start + c);
            }
        }
    }

    static real_type value_at(const CsrView<real_type>& a, index_type r,
                              index_type c)
    {
        for (index_type k = a.row_ptrs[r]; k < a.row_ptrs[r + 1]; ++k) {
            if (a.col_idxs[k] == c) {
                return a.values[k];
            }
        }
        return real_type{0};
    }

    static real_type value_at(const EllView<real_type>& a, index_type r,
                              index_type c)
    {
        for (index_type k = 0; k < a.nnz_per_row; ++k) {
            if (a.col_idxs[a.at(r, k)] == c) {
                return a.values[a.at(r, k)];
            }
        }
        return real_type{0};
    }

    static real_type value_at(const SellpView<real_type>& a, index_type r,
                              index_type c)
    {
        const index_type slice = r / a.slice_size;
        const index_type width =
            a.slice_sets[slice + 1] - a.slice_sets[slice];
        for (index_type k = 0; k < width; ++k) {
            if (a.col_idxs[a.at(r, k)] == c) {
                return a.values[a.at(r, k)];
            }
        }
        return real_type{0};
    }

    static real_type value_at(const ConstDenseView<real_type>& a,
                              index_type r, index_type c)
    {
        return a(r, c);
    }

    index_type block_size_;
    index_type n_ = 0;
    VecView<real_type> inv_blocks_;
};

/// Runtime selector used by the dispatch layer.
enum class PrecondType {
    identity,
    jacobi,
    block_jacobi,
};

}  // namespace bsis
