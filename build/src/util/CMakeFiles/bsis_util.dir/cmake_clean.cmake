file(REMOVE_RECURSE
  "CMakeFiles/bsis_util.dir/table.cpp.o"
  "CMakeFiles/bsis_util.dir/table.cpp.o.d"
  "CMakeFiles/bsis_util.dir/timer.cpp.o"
  "CMakeFiles/bsis_util.dir/timer.cpp.o.d"
  "libbsis_util.a"
  "libbsis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
