// google-benchmark microbenchmarks of the host-side (functional) kernels:
// the per-system SpMV in each format, the BLAS building blocks, the fused
// BiCGStab kernel, the banded direct solvers, and the collision-operator
// assembly. These measure THIS machine (the functional layer the
// simulator's arithmetic runs on), not the modeled devices.
#include <benchmark/benchmark.h>

#include <vector>

#include "blas/kernels.hpp"
#include "core/bicgstab.hpp"
#include "core/precond.hpp"
#include "core/solver.hpp"
#include "core/stop.hpp"
#include "lapack/banded_lu.hpp"
#include "lapack/banded_qr.hpp"
#include "matrix/conversions.hpp"
#include "xgc/workload.hpp"

namespace {

using namespace bsis;

/// One ion+electron pair of real collision matrices and right-hand sides.
struct Fixture {
    Fixture()
        : workload(make_params()), a(workload.make_matrix_batch())
    {
        workload.assemble_batch(workload.distributions(),
                                workload.distributions(), 0.0035, a);
        ell = to_ell(a);
        x = BatchVector<real_type>(a.num_batch(), a.rows());
    }

    static xgc::WorkloadParams make_params()
    {
        xgc::WorkloadParams p;
        p.num_mesh_nodes = 8;
        return p;
    }

    xgc::CollisionWorkload workload;
    BatchCsr<real_type> a;
    BatchEll<real_type> ell;
    BatchVector<real_type> x;
};

Fixture& fixture()
{
    static Fixture f;
    return f;
}

void BM_SpmvCsr(benchmark::State& state)
{
    auto& f = fixture();
    const auto b = f.workload.distributions().entry(1);
    auto y = f.x.entry(0);
    for (auto _ : state) {
        spmv(f.a.entry(1), ConstVecView<real_type>(b), y);
        benchmark::DoNotOptimize(y.data);
    }
    state.SetItemsProcessed(state.iterations() * f.a.nnz_per_entry());
}
BENCHMARK(BM_SpmvCsr);

void BM_SpmvEll(benchmark::State& state)
{
    auto& f = fixture();
    const auto b = f.workload.distributions().entry(1);
    auto y = f.x.entry(0);
    for (auto _ : state) {
        spmv(f.ell.entry(1), ConstVecView<real_type>(b), y);
        benchmark::DoNotOptimize(y.data);
    }
    state.SetItemsProcessed(state.iterations() * f.ell.stored_per_entry());
}
BENCHMARK(BM_SpmvEll);

void BM_Dot(benchmark::State& state)
{
    auto& f = fixture();
    const auto a = f.workload.distributions().entry(0);
    const auto b = f.workload.distributions().entry(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(blas::dot<real_type>(a, b));
    }
    state.SetItemsProcessed(state.iterations() * a.len);
}
BENCHMARK(BM_Dot);

// The pipelined solvers' fused multi-output reductions against the
// equivalent sequence of separate dot/nrm2 calls over the same vectors:
// one sweep touching three vectors vs four sweeps touching two each.
void BM_Dot4Fused(benchmark::State& state)
{
    auto& f = fixture();
    const auto x = f.workload.distributions().entry(0);
    const auto y = f.workload.distributions().entry(1);
    const auto z = ConstVecView<real_type>(f.x.entry(0));
    for (auto _ : state) {
        real_type d_xx, d_xy, d_yz, d_xz;
        blas::dot4<real_type>(x, y, z, d_xx, d_xy, d_yz, d_xz);
        benchmark::DoNotOptimize(d_xx);
        benchmark::DoNotOptimize(d_xy);
        benchmark::DoNotOptimize(d_yz);
        benchmark::DoNotOptimize(d_xz);
    }
    state.SetItemsProcessed(state.iterations() * x.len);
}
BENCHMARK(BM_Dot4Fused);

void BM_Dot4Separate(benchmark::State& state)
{
    auto& f = fixture();
    const auto x = f.workload.distributions().entry(0);
    const auto y = f.workload.distributions().entry(1);
    const auto z = ConstVecView<real_type>(f.x.entry(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(blas::dot<real_type>(x, x));
        benchmark::DoNotOptimize(blas::dot<real_type>(x, y));
        benchmark::DoNotOptimize(blas::dot<real_type>(y, z));
        benchmark::DoNotOptimize(blas::dot<real_type>(x, z));
    }
    state.SetItemsProcessed(state.iterations() * x.len);
}
BENCHMARK(BM_Dot4Separate);

void BM_Dot3Nrm2Fused(benchmark::State& state)
{
    auto& f = fixture();
    const auto x = f.workload.distributions().entry(0);
    const auto y = f.workload.distributions().entry(1);
    const auto z = ConstVecView<real_type>(f.x.entry(0));
    for (auto _ : state) {
        real_type d_xy, d_xx, d_xz, z_norm;
        blas::dot3_nrm2<real_type>(x, y, z, d_xy, d_xx, d_xz, z_norm);
        benchmark::DoNotOptimize(d_xy);
        benchmark::DoNotOptimize(d_xx);
        benchmark::DoNotOptimize(d_xz);
        benchmark::DoNotOptimize(z_norm);
    }
    state.SetItemsProcessed(state.iterations() * x.len);
}
BENCHMARK(BM_Dot3Nrm2Fused);

void BM_Dot3Nrm2Separate(benchmark::State& state)
{
    auto& f = fixture();
    const auto x = f.workload.distributions().entry(0);
    const auto y = f.workload.distributions().entry(1);
    const auto z = ConstVecView<real_type>(f.x.entry(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(blas::dot<real_type>(x, y));
        benchmark::DoNotOptimize(blas::dot<real_type>(x, x));
        benchmark::DoNotOptimize(blas::dot<real_type>(x, z));
        benchmark::DoNotOptimize(blas::nrm2<real_type>(z));
    }
    state.SetItemsProcessed(state.iterations() * x.len);
}
BENCHMARK(BM_Dot3Nrm2Separate);

void BM_Axpy(benchmark::State& state)
{
    auto& f = fixture();
    const auto a = f.workload.distributions().entry(0);
    auto y = f.x.entry(0);
    for (auto _ : state) {
        blas::axpy<real_type>(1.0000001, a, y);
        benchmark::DoNotOptimize(y.data);
    }
    state.SetItemsProcessed(state.iterations() * a.len);
}
BENCHMARK(BM_Axpy);

void BM_BicgstabElectronSolve(benchmark::State& state)
{
    auto& f = fixture();
    Workspace ws(f.a.rows(), bicgstab_work_vectors + 1);
    const auto b = f.workload.distributions().entry(1);
    auto x = f.x.entry(1);
    for (auto _ : state) {
        blas::fill(x, real_type{0});
        JacobiPrec prec;
        prec.generate(f.ell.entry(1), ws.slot(bicgstab_work_vectors));
        const auto result =
            bicgstab_kernel(f.ell.entry(1), b, x, prec,
                            AbsResidualStop{1e-10}, 500, ws);
        benchmark::DoNotOptimize(result.iterations);
    }
}
BENCHMARK(BM_BicgstabElectronSolve);

void BM_DgbsvSolve(benchmark::State& state)
{
    auto& f = fixture();
    const auto [kl, ku] = bandwidths(f.a);
    for (auto _ : state) {
        state.PauseTiming();
        auto banded = to_banded(f.a, kl, ku);
        std::vector<real_type> rhs(
            f.workload.distributions().entry(1).begin(),
            f.workload.distributions().entry(1).end());
        state.ResumeTiming();
        lapack::gbsv(banded.entry(1),
                     VecView<real_type>{rhs.data(), f.a.rows()});
        benchmark::DoNotOptimize(rhs.data());
    }
}
BENCHMARK(BM_DgbsvSolve);

void BM_BandedQrSolve(benchmark::State& state)
{
    auto& f = fixture();
    const auto [kl, ku] = bandwidths(f.a);
    for (auto _ : state) {
        state.PauseTiming();
        auto banded = to_banded(f.a, kl, ku);
        std::vector<real_type> rhs(
            f.workload.distributions().entry(1).begin(),
            f.workload.distributions().entry(1).end());
        state.ResumeTiming();
        lapack::gbqr_solve(banded.entry(1),
                           VecView<real_type>{rhs.data(), f.a.rows()});
        benchmark::DoNotOptimize(rhs.data());
    }
}
BENCHMARK(BM_BandedQrSolve);

void BM_CollisionAssembly(benchmark::State& state)
{
    auto& f = fixture();
    auto a = f.workload.make_matrix_batch();
    for (auto _ : state) {
        f.workload.assemble_batch(f.workload.distributions(),
                                  f.workload.distributions(), 0.0035, a);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * a.num_batch());
}
BENCHMARK(BM_CollisionAssembly);

}  // namespace
