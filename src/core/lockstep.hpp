// Batch-lockstep solver drivers: W systems per thread, advanced in SIMD.
//
// The scalar host path assigns one batch entry per OpenMP thread at a
// time -- the CPU image of the paper's one-thread-block-per-system
// mapping, with the warp lanes' row-sweep serialized into the kernel
// loops. The lockstep path recovers that lost lane parallelism on the
// OTHER axis: each thread advances a GROUP of W batch entries through the
// same solver iteration simultaneously, with every BLAS-1 sweep, Jacobi
// apply, and SpMV running over batch-interleaved storage (element i of
// lane l at data[i*W + l]) so the inner loop body is one contiguous
// width-W vector operation that `#pragma omp simd` turns into straight
// vector code. Where a GPU warp's 32 lanes sweep the rows of one system,
// the CPU's SIMD lanes here sweep W systems at one row -- same lockstep,
// transposed mapping (see DESIGN.md).
//
// Divergence handling mirrors the GPU's predication: per-lane state is
// masked by COEFFICIENTS, not branches. A lane whose system has converged
// (or broken down) passes (0, ..., 1) into the fused updates so its
// column is left untouched, and is refilled with the next unsolved system
// from a shared atomic counter at the top of the iteration loop -- the
// CPU version of persistent thread blocks draining a work queue. Each
// lane reproduces the scalar fused kernel's operation order exactly
// (same sweeps, same ascending-order reductions, same breakdown checks),
// so a lockstep solve returns the same per-system iteration counts and
// residual norms as the scalar path up to rounding.
#pragma once

#include <atomic>
#include <cmath>
#include <exception>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "blas/batch_vector.hpp"
#include "blas/kernels.hpp"
#include "core/logger.hpp"
#include "core/pipelined.hpp"
#include "core/workspace.hpp"
#include "matrix/ell_slab.hpp"
#include "obs/convergence.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// Workspace slots of the lockstep BiCGStab group, each of length
/// rows * W: r, r_hat, p, p_hat, v, s, s_hat, t, x, b, inv_diag. The
/// matrix slab occupies `nnz_per_row` further slots as one contiguous
/// strip.
inline constexpr int lockstep_bicgstab_base_slots = 11;

/// Lockstep CG group slots: r, z, p, q, x, b, inv_diag (+ slab strip).
inline constexpr int lockstep_cg_base_slots = 7;

namespace lockstep {

inline int this_thread()
{
#ifdef _OPENMP
    return omp_get_thread_num();
#else
    return 0;
#endif
}

inline int max_threads()
{
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

template <typename T>
inline T diag_at(const CsrView<T>& a, index_type r)
{
    for (index_type k = a.row_ptrs[r]; k < a.row_ptrs[r + 1]; ++k) {
        if (a.col_idxs[k] == r) {
            return a.values[k];
        }
    }
    return T{};
}

template <typename T>
inline T diag_at(const EllView<T>& a, index_type r)
{
    for (index_type k = 0; k < a.nnz_per_row; ++k) {
        if (a.col_idxs[a.at(r, k)] == r) {
            return a.values[a.at(r, k)];
        }
    }
    return T{};
}

template <typename T>
inline T diag_at(const SellpView<T>& a, index_type r)
{
    const index_type slice = r / a.slice_size;
    const index_type width = a.slice_sets[slice + 1] - a.slice_sets[slice];
    for (index_type k = 0; k < width; ++k) {
        if (a.col_idxs[a.at(r, k)] == r) {
            return a.values[a.at(r, k)];
        }
    }
    return T{};
}

/// Scalar-Jacobi setup for one lane: inv_diag(:, lane) := 1 / diag(A_i).
/// Extracts from the SOURCE format view, never from the slab pattern
/// (whose padding slots alias column 0). Matches JacobiPrec::generate's
/// zero-diagonal breakdown behaviour.
template <typename MatrixView>
inline void pack_inv_diag_lane(const MatrixView& a, index_type rows,
                               real_type* inv_diag, int width, int lane)
{
    for (index_type r = 0; r < rows; ++r) {
        const real_type d = diag_at(a, r);
        if (d == real_type{0}) {
            throw NumericalBreakdown("JacobiPrec", "zero diagonal entry");
        }
        inv_diag[static_cast<std::size_t>(r) * width + lane] =
            real_type{1} / d;
    }
}

/// ||v(:, lane)||_2 accumulated in ascending element order (the order of
/// the scalar blas::nrm2).
inline real_type lane_nrm2(const real_type* v, index_type n, int width,
                           int lane)
{
    real_type sum{};
    for (index_type i = 0; i < n; ++i) {
        const real_type vi = v[static_cast<std::size_t>(i) * width + lane];
        sum += vi * vi;
    }
    return std::sqrt(sum);
}

/// v(:, lane) . w(:, lane) in ascending element order.
inline real_type lane_dot(const real_type* v, const real_type* w,
                          index_type n, int width, int lane)
{
    real_type sum{};
    for (index_type i = 0; i < n; ++i) {
        sum += v[static_cast<std::size_t>(i) * width + lane] *
               w[static_cast<std::size_t>(i) * width + lane];
    }
    return sum;
}

}  // namespace lockstep

/// Runs one thread's lockstep BiCGStab group to queue exhaustion: W lanes
/// advance through the fused iteration together; a finished lane is
/// refilled from `next_system` at the top of the loop. Lane semantics
/// (operation order, breakdown checks, iteration counts) match
/// `bicgstab_kernel` exactly -- see the per-step notes.
template <int W, bool UseJacobi, typename SourceBatch, typename Stop>
void bicgstab_lockstep(const SourceBatch& a, const EllSlabPattern& pattern,
                       const BatchVector<real_type>& b,
                       BatchVector<real_type>& x, bool zero_guess,
                       const Stop& stop, int max_iters, Workspace& ws,
                       std::atomic<size_type>& next_system,
                       BatchLogStage& stage, int thread,
                       obs::ConvergenceHistory* history = nullptr)
{
    const index_type n = pattern.rows;
    const size_type nbatch = a.num_batch();

    real_type* r = ws.slot(0).data;
    real_type* r_hat = ws.slot(1).data;
    real_type* p = ws.slot(2).data;
    real_type* p_hat = ws.slot(3).data;
    real_type* v = ws.slot(4).data;
    real_type* s = ws.slot(5).data;
    real_type* s_hat = ws.slot(6).data;
    real_type* t = ws.slot(7).data;
    real_type* xg = ws.slot(8).data;
    real_type* bg = ws.slot(9).data;
    real_type* inv_diag = ws.slot(10).data;
    // The slab strip is `nnz_per_row` consecutive slots; workspace slots
    // are contiguous in one allocation, so the strip is one flat array.
    real_type* slab = ws.slot(lockstep_bicgstab_base_slots).data;
    const EllSlabView<real_type> av{n, pattern.nnz_per_row,
                                    pattern.col_idxs.data(), slab, W};

    size_type sys[W] = {};
    int iter[W] = {};
    bool active[W] = {};
    real_type act[W] = {};  // 1.0 active, 0.0 parked: the coefficient mask
    real_type b_norm[W] = {};
    real_type r_norm[W] = {};
    real_type r0[W] = {};
    real_type rho_old[W] = {};
    real_type alpha[W] = {};
    real_type omega[W] = {};

    // Record the lane's outcome and write its solution column back to the
    // caller's entry-major x (the scalar path writes x in place; here the
    // column is the working copy).
    auto finish = [&](int l, int iters, real_type rn, bool conv,
                      FailureClass fc) {
        stage.record(thread, sys[l], iters, rn, conv, fc);
        if (history != nullptr) {
            history->finalize(sys[l], iters, rn, conv);
        }
        unpack_lane(ConstLaneGroupView<real_type>(xg, n, W), l,
                    x.entry(sys[l]));
        active[l] = false;
        act[l] = real_type{0};
    };

    // Load the next unsolved system into lane l. The setup is the scalar
    // kernel's preamble run on one lane's column: pack values / b / x,
    // r = b - A x fused with ||r||, r_hat = r, p = v = 0.
    auto refill = [&](int l) -> bool {
        const size_type i = next_system.fetch_add(1);
        if (i >= nbatch) {
            return false;
        }
        obs::ScopedSpan span("lane_refill", "solver",
                             static_cast<std::int64_t>(i));
        sys[l] = i;
        const auto src = a.entry(i);
        pack_slab_lane(src, pattern, slab, W, l);
        if constexpr (UseJacobi) {
            lockstep::pack_inv_diag_lane(src, n, inv_diag, W, l);
        }
        pack_lane(b.entry(i), LaneGroupView<real_type>{bg, n, W}, l);
        b_norm[l] = lockstep::lane_nrm2(bg, n, W, l);
        if (zero_guess) {
            zero_lane(LaneGroupView<real_type>{xg, n, W}, l);
        } else {
            pack_lane(ConstVecView<real_type>(x.entry(i)),
                      LaneGroupView<real_type>{xg, n, W}, l);
        }
        spmv_slab_lane(av, l, xg, r);
        real_type sum{};
        for (index_type j = 0; j < n; ++j) {
            const std::size_t idx = static_cast<std::size_t>(j) * W + l;
            const real_type rj = bg[idx] - r[idx];
            r[idx] = rj;
            sum += rj * rj;
            r_hat[idx] = rj;
            p[idx] = real_type{0};
            v[idx] = real_type{0};
        }
        r_norm[l] = std::sqrt(sum);
        r0[l] = r_norm[l];
        rho_old[l] = real_type{1};
        alpha[l] = real_type{1};
        omega[l] = real_type{1};
        iter[l] = 0;
        active[l] = true;
        act[l] = real_type{1};
        if (history != nullptr) {
            history->record(i, 0, r_norm[l]);
        }
        return true;
    };

    while (true) {
        // Top of the lockstep iteration: park converged / exhausted lanes
        // and refill them until each lane either has work or the queue is
        // dry. A freshly refilled system may converge immediately (zero
        // right-hand side with a zero guess), so the checks loop. The
        // check order (done, non-finite, exhausted) mirrors the scalar
        // kernel's loop top so a system classifies identically on both
        // paths.
        for (int l = 0; l < W; ++l) {
            for (;;) {
                if (!active[l]) {
                    if (!refill(l)) {
                        break;
                    }
                }
                if (stop.done(r_norm[l], b_norm[l])) {
                    finish(l, iter[l], r_norm[l], true,
                           FailureClass::converged);
                    continue;
                }
                if (!std::isfinite(r_norm[l])) {
                    // A poisoned lane used to retire looking exactly like
                    // a clean max-iter exit; park it promptly with its
                    // real cause instead.
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::non_finite);
                    continue;
                }
                if (iter[l] >= max_iters) {
                    finish(l, max_iters, r_norm[l], false,
                           classify_exhausted(r_norm[l], r0[l], false));
                    continue;
                }
                break;
            }
        }
        bool any_active = false;
        for (int l = 0; l < W; ++l) {
            any_active = any_active || active[l];
        }
        if (!any_active) {
            break;
        }

        real_type ca[W];
        real_type cb[W];
        real_type cc[W];

        // rho = r . r_hat; serious breakdown parks the lane with the
        // scalar kernel's exact result (iter, r_norm, false).
        real_type rho[W];
        obs::traced(obs::Phase::reduction, "reduction", [&] { blas::dot_lanes<W>(r, r_hat, n, rho); });
        real_type beta[W] = {};
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                if (rho[l] == real_type{0} || omega[l] == real_type{0}) {
                    finish(l, iter[l], r_norm[l], false,
                           rho[l] == real_type{0}
                               ? FailureClass::breakdown_rho
                               : FailureClass::breakdown_omega);
                } else {
                    beta[l] = (rho[l] / rho_old[l]) * (alpha[l] / omega[l]);
                }
            }
        }
        // p = r + beta * (p - omega * v); parked lanes pass (0, 0, 1).
        for (int l = 0; l < W; ++l) {
            ca[l] = act[l];
            cb[l] = active[l] ? -beta[l] * omega[l] : real_type{0};
            cc[l] = active[l] ? beta[l] : real_type{1};
        }
        obs::traced(obs::Phase::update, "update",
                    [&] { blas::axpbypcz_lanes<W>(ca, r, cb, v, cc, p, n); });
        // p_hat = M^-1 p (mask-selected so parked columns keep their
        // values rather than being recomputed from stale operands).
        obs::traced(obs::Phase::precond, "precond_apply", [&] {
            if constexpr (UseJacobi) {
                blas::mul_elementwise_lanes<W>(inv_diag, p, act, p_hat, n);
            } else {
                blas::copy_lanes<W>(p, act, p_hat, n);
            }
        });
        // v = A p_hat for all lanes; a parked lane's column receives
        // garbage that never escapes the lane (refill rewrites it).
        obs::traced(obs::Phase::spmv, "spmv", [&] { spmv_lanes<W>(av, p_hat, v); });
        real_type r_hat_v[W];
        obs::traced(obs::Phase::reduction, "reduction",
                    [&] { blas::dot_lanes<W>(r_hat, v, n, r_hat_v); });
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                if (r_hat_v[l] == real_type{0}) {
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::breakdown_rho);
                } else {
                    alpha[l] = rho[l] / r_hat_v[l];
                }
            }
        }
        // s = r - alpha * v fused with ||s||.
        real_type s_norm[W];
        for (int l = 0; l < W; ++l) {
            ca[l] = act[l];
            cb[l] = active[l] ? -alpha[l] : real_type{0};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::zaxpby_nrm2_lanes<W>(ca, r, cb, v, s, n, s_norm);
        });
        // Early exit on ||s||: the scalar kernel applies x += alpha*p_hat
        // and returns {iter+1, s_norm, true}. Here the lane rides the
        // remaining sweeps with its omega coefficient zeroed (so the fused
        // x-update applies exactly alpha * p_hat) and parks at the bottom.
        bool early[W] = {};
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                early[l] = stop.done(s_norm[l], b_norm[l]);
            }
        }
        obs::traced(obs::Phase::precond, "precond_apply", [&] {
            if constexpr (UseJacobi) {
                blas::mul_elementwise_lanes<W>(inv_diag, s, act, s_hat, n);
            } else {
                blas::copy_lanes<W>(s, act, s_hat, n);
            }
        });
        obs::traced(obs::Phase::spmv, "spmv", [&] { spmv_lanes<W>(av, s_hat, t); });
        real_type t_t[W];
        real_type t_s[W];
        obs::traced(obs::Phase::reduction, "reduction",
                    [&] { blas::dot2_lanes<W>(t, t, s, n, t_t, t_s); });
        bool tt0[W] = {};
        for (int l = 0; l < W; ++l) {
            if (active[l] && !early[l]) {
                if (t_t[l] == real_type{0}) {
                    tt0[l] = true;
                } else {
                    omega[l] = t_s[l] / t_t[l];
                }
            }
        }
        // x += alpha * p_hat + omega * s_hat (omega coefficient zeroed for
        // early-exit and t.t-breakdown lanes, matching the scalar axpy).
        for (int l = 0; l < W; ++l) {
            ca[l] = active[l] ? alpha[l] : real_type{0};
            cb[l] = active[l] && !early[l] && !tt0[l] ? omega[l]
                                                      : real_type{0};
            cc[l] = real_type{1};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz_lanes<W>(ca, p_hat, cb, s_hat, cc, xg, n);
        });
        // r = s - omega * t fused with ||r|| for continuing lanes.
        real_type rn_new[W];
        for (int l = 0; l < W; ++l) {
            const bool cont = active[l] && !early[l] && !tt0[l];
            ca[l] = cont ? real_type{1} : real_type{0};
            cb[l] = cont ? -omega[l] : real_type{0};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::zaxpby_nrm2_lanes<W>(ca, s, cb, t, r, n, rn_new);
        });
        for (int l = 0; l < W; ++l) {
            if (!active[l]) {
                continue;
            }
            if (early[l]) {
                finish(l, iter[l] + 1, s_norm[l], true,
                       FailureClass::converged);
            } else if (tt0[l]) {
                // t.t == 0 after a failed ||s|| check: the scalar kernel
                // returns {iter+1, s_norm, stop.done(s_norm, b_norm)},
                // and the stop check just failed.
                finish(l, iter[l] + 1, s_norm[l], false,
                       FailureClass::breakdown_omega);
            } else {
                r_norm[l] = rn_new[l];
                rho_old[l] = rho[l];
                ++iter[l];
                if (history != nullptr) {
                    history->record(sys[l], iter[l], r_norm[l]);
                }
            }
        }
    }
}

/// Pipelined lockstep BiCGStab: the lane protocol of `bicgstab_lockstep`
/// with the per-iteration reduction structure of
/// `pipelined_bicgstab_kernel`. The three STANDALONE lane-group reduction
/// sweeps disappear entirely: r_hat.v fuses into the first SpMV sweep
/// (the freshly produced v is dotted in registers), the t-side quad
/// reduction fuses into the second SpMV sweep, and s.r_hat rides the
/// s-update sweep -- so a W-wide group serializes on lane scalars at TWO
/// points per iteration (after each SpMV) instead of five. rho and the
/// residual norm are carried by the single-iteration recurrences.
template <int W, bool UseJacobi, typename SourceBatch, typename Stop>
void bicgstab_lockstep_pipelined(
    const SourceBatch& a, const EllSlabPattern& pattern,
    const BatchVector<real_type>& b, BatchVector<real_type>& x,
    bool zero_guess, const Stop& stop, int max_iters, Workspace& ws,
    std::atomic<size_type>& next_system, BatchLogStage& stage, int thread,
    obs::ConvergenceHistory* history = nullptr)
{
    const index_type n = pattern.rows;
    const size_type nbatch = a.num_batch();

    real_type* r = ws.slot(0).data;
    real_type* r_hat = ws.slot(1).data;
    real_type* p = ws.slot(2).data;
    real_type* p_hat = ws.slot(3).data;
    real_type* v = ws.slot(4).data;
    real_type* s = ws.slot(5).data;
    real_type* s_hat = ws.slot(6).data;
    real_type* t = ws.slot(7).data;
    real_type* xg = ws.slot(8).data;
    real_type* bg = ws.slot(9).data;
    real_type* inv_diag = ws.slot(10).data;
    real_type* slab = ws.slot(lockstep_bicgstab_base_slots).data;
    const EllSlabView<real_type> av{n, pattern.nnz_per_row,
                                    pattern.col_idxs.data(), slab, W};

    size_type sys[W] = {};
    int iter[W] = {};
    bool active[W] = {};
    real_type act[W] = {};
    real_type b_norm[W] = {};
    real_type r_norm[W] = {};
    real_type r0[W] = {};
    real_type rho[W] = {};
    real_type rho_old[W] = {};
    real_type alpha[W] = {};
    real_type omega[W] = {};

    auto finish = [&](int l, int iters, real_type rn, bool conv,
                      FailureClass fc) {
        stage.record(thread, sys[l], iters, rn, conv, fc);
        if (history != nullptr) {
            history->finalize(sys[l], iters, rn, conv);
        }
        unpack_lane(ConstLaneGroupView<real_type>(xg, n, W), l,
                    x.entry(sys[l]));
        active[l] = false;
        act[l] = real_type{0};
    };

    auto refill = [&](int l) -> bool {
        const size_type i = next_system.fetch_add(1);
        if (i >= nbatch) {
            return false;
        }
        obs::ScopedSpan span("lane_refill", "solver",
                             static_cast<std::int64_t>(i));
        sys[l] = i;
        const auto src = a.entry(i);
        pack_slab_lane(src, pattern, slab, W, l);
        if constexpr (UseJacobi) {
            lockstep::pack_inv_diag_lane(src, n, inv_diag, W, l);
        }
        pack_lane(b.entry(i), LaneGroupView<real_type>{bg, n, W}, l);
        b_norm[l] = lockstep::lane_nrm2(bg, n, W, l);
        if (zero_guess) {
            zero_lane(LaneGroupView<real_type>{xg, n, W}, l);
        } else {
            pack_lane(ConstVecView<real_type>(x.entry(i)),
                      LaneGroupView<real_type>{xg, n, W}, l);
        }
        spmv_slab_lane(av, l, xg, r);
        real_type sum{};
        for (index_type j = 0; j < n; ++j) {
            const std::size_t idx = static_cast<std::size_t>(j) * W + l;
            const real_type rj = bg[idx] - r[idx];
            r[idx] = rj;
            sum += rj * rj;
            r_hat[idx] = rj;
            p[idx] = real_type{0};
            v[idx] = real_type{0};
        }
        r_norm[l] = std::sqrt(sum);
        r0[l] = r_norm[l];
        // First rho is measured (r_hat = r here, matching the scalar
        // pipelined kernel's setup dot); later rhos come from the
        // recurrence at the bottom of the iteration.
        rho[l] = lockstep::lane_dot(r, r_hat, n, W, l);
        rho_old[l] = real_type{1};
        alpha[l] = real_type{1};
        omega[l] = real_type{1};
        iter[l] = 0;
        active[l] = true;
        act[l] = real_type{1};
        if (history != nullptr) {
            history->record(i, 0, r_norm[l]);
        }
        return true;
    };

    while (true) {
        // Loop-top checks in the scalar pipelined kernel's order: done,
        // non-finite, exhausted, then the rho/omega breakdown split (rho
        // is already known here -- that is the pipelining).
        for (int l = 0; l < W; ++l) {
            for (;;) {
                if (!active[l]) {
                    if (!refill(l)) {
                        break;
                    }
                }
                if (stop.done(r_norm[l], b_norm[l])) {
                    finish(l, iter[l], r_norm[l], true,
                           FailureClass::converged);
                    continue;
                }
                if (!std::isfinite(r_norm[l])) {
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::non_finite);
                    continue;
                }
                if (iter[l] >= max_iters) {
                    finish(l, max_iters, r_norm[l], false,
                           classify_exhausted(r_norm[l], r0[l], false));
                    continue;
                }
                if (rho[l] == real_type{0} || omega[l] == real_type{0}) {
                    finish(l, iter[l], r_norm[l], false,
                           rho[l] == real_type{0}
                               ? FailureClass::breakdown_rho
                               : FailureClass::breakdown_omega);
                    continue;
                }
                break;
            }
        }
        bool any_active = false;
        for (int l = 0; l < W; ++l) {
            any_active = any_active || active[l];
        }
        if (!any_active) {
            break;
        }

        real_type ca[W];
        real_type cb[W];
        real_type cc[W];

        real_type beta[W] = {};
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                beta[l] = (rho[l] / rho_old[l]) * (alpha[l] / omega[l]);
            }
        }
        // p = r + beta * (p - omega * v); parked lanes pass (0, 0, 1).
        for (int l = 0; l < W; ++l) {
            ca[l] = act[l];
            cb[l] = active[l] ? -beta[l] * omega[l] : real_type{0};
            cc[l] = active[l] ? beta[l] : real_type{1};
        }
        obs::traced(obs::Phase::update, "update",
                    [&] { blas::axpbypcz_lanes<W>(ca, r, cb, v, cc, p, n); });
        obs::traced(obs::Phase::precond, "precond_apply", [&] {
            if constexpr (UseJacobi) {
                blas::mul_elementwise_lanes<W>(inv_diag, p, act, p_hat, n);
            } else {
                blas::copy_lanes<W>(p, act, p_hat, n);
            }
        });
        // v = A p_hat with r_hat . v fused into the producing sweep: the
        // first lane-group synchronization point of the iteration.
        real_type r_hat_v[W];
        obs::traced(obs::Phase::spmv, "spmv", [&] {
            spmv_lanes_dot<W>(av, p_hat, r_hat, v, r_hat_v);
        });
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                if (r_hat_v[l] == real_type{0}) {
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::breakdown_rho);
                } else {
                    alpha[l] = rho[l] / r_hat_v[l];
                }
            }
        }
        // s = r - alpha * v fused with ||s|| AND s . r_hat (the rho
        // recurrence operand rides the update sweep).
        real_type s_norm[W];
        real_type s_rhat[W];
        for (int l = 0; l < W; ++l) {
            ca[l] = act[l];
            cb[l] = active[l] ? -alpha[l] : real_type{0};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::zaxpby_nrm2_dot_lanes<W>(ca, r, cb, v, r_hat, s, n,
                                           s_norm, s_rhat);
        });
        bool early[W] = {};
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                early[l] = stop.done(s_norm[l], b_norm[l]);
            }
        }
        obs::traced(obs::Phase::precond, "precond_apply", [&] {
            if constexpr (UseJacobi) {
                blas::mul_elementwise_lanes<W>(inv_diag, s, act, s_hat, n);
            } else {
                blas::copy_lanes<W>(s, act, s_hat, n);
            }
        });
        // t = A s_hat with t.t, t.s, t.r_hat fused into the producing
        // sweep (t.t / t.s bit-identical to the classic dual dot): the
        // second and last synchronization point.
        real_type t_t[W];
        real_type t_s[W];
        real_type t_rhat[W];
        obs::traced(obs::Phase::spmv, "spmv", [&] {
            spmv_lanes_dot3<W>(av, s_hat, s, r_hat, t, t_t, t_s, t_rhat);
        });
        bool tt0[W] = {};
        for (int l = 0; l < W; ++l) {
            if (active[l] && !early[l]) {
                if (t_t[l] == real_type{0}) {
                    tt0[l] = true;
                } else {
                    omega[l] = t_s[l] / t_t[l];
                }
            }
        }
        // x += alpha * p_hat + omega * s_hat (omega zeroed for early-exit
        // and t.t-breakdown lanes, as in the classic lockstep kernel).
        for (int l = 0; l < W; ++l) {
            ca[l] = active[l] ? alpha[l] : real_type{0};
            cb[l] = active[l] && !early[l] && !tt0[l] ? omega[l]
                                                      : real_type{0};
            cc[l] = real_type{1};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz_lanes<W>(ca, p_hat, cb, s_hat, cc, xg, n);
        });
        // r = s - omega * t, PLAIN: ||r|| and the next rho come from the
        // recurrences below, not from this sweep.
        for (int l = 0; l < W; ++l) {
            const bool cont = active[l] && !early[l] && !tt0[l];
            ca[l] = cont ? real_type{1} : real_type{0};
            cb[l] = cont ? -omega[l] : real_type{0};
        }
        obs::traced(obs::Phase::update, "update",
                    [&] { blas::zaxpby_lanes<W>(ca, s, cb, t, r, n); });
        for (int l = 0; l < W; ++l) {
            if (!active[l]) {
                continue;
            }
            if (early[l]) {
                finish(l, iter[l] + 1, s_norm[l], true,
                       FailureClass::converged);
            } else if (tt0[l]) {
                finish(l, iter[l] + 1, s_norm[l], false,
                       FailureClass::breakdown_omega);
            } else {
                r_norm[l] = recurrence_norm(
                    s_norm[l] * s_norm[l] - 2 * omega[l] * t_s[l] +
                    omega[l] * omega[l] * t_t[l]);
                rho_old[l] = rho[l];
                rho[l] = s_rhat[l] - omega[l] * t_rhat[l];
                ++iter[l];
                if (history != nullptr) {
                    history->record(sys[l], iter[l], r_norm[l]);
                }
            }
        }
    }
}

/// Runs one thread's lockstep CG group to queue exhaustion (same lane
/// protocol as `bicgstab_lockstep`; lane semantics match `cg_kernel`).
template <int W, bool UseJacobi, typename SourceBatch, typename Stop>
void cg_lockstep(const SourceBatch& a, const EllSlabPattern& pattern,
                 const BatchVector<real_type>& b, BatchVector<real_type>& x,
                 bool zero_guess, const Stop& stop, int max_iters,
                 Workspace& ws, std::atomic<size_type>& next_system,
                 BatchLogStage& stage, int thread,
                 obs::ConvergenceHistory* history = nullptr)
{
    const index_type n = pattern.rows;
    const size_type nbatch = a.num_batch();

    real_type* r = ws.slot(0).data;
    real_type* z = ws.slot(1).data;
    real_type* p = ws.slot(2).data;
    real_type* q = ws.slot(3).data;
    real_type* xg = ws.slot(4).data;
    real_type* bg = ws.slot(5).data;
    real_type* inv_diag = ws.slot(6).data;
    real_type* slab = ws.slot(lockstep_cg_base_slots).data;
    const EllSlabView<real_type> av{n, pattern.nnz_per_row,
                                    pattern.col_idxs.data(), slab, W};

    size_type sys[W] = {};
    int iter[W] = {};
    bool active[W] = {};
    real_type act[W] = {};
    real_type b_norm[W] = {};
    real_type r_norm[W] = {};
    real_type r0[W] = {};
    real_type rz[W] = {};

    auto finish = [&](int l, int iters, real_type rn, bool conv,
                      FailureClass fc) {
        stage.record(thread, sys[l], iters, rn, conv, fc);
        if (history != nullptr) {
            history->finalize(sys[l], iters, rn, conv);
        }
        unpack_lane(ConstLaneGroupView<real_type>(xg, n, W), l,
                    x.entry(sys[l]));
        active[l] = false;
        act[l] = real_type{0};
    };

    auto refill = [&](int l) -> bool {
        const size_type i = next_system.fetch_add(1);
        if (i >= nbatch) {
            return false;
        }
        obs::ScopedSpan span("lane_refill", "solver",
                             static_cast<std::int64_t>(i));
        sys[l] = i;
        const auto src = a.entry(i);
        pack_slab_lane(src, pattern, slab, W, l);
        if constexpr (UseJacobi) {
            lockstep::pack_inv_diag_lane(src, n, inv_diag, W, l);
        }
        pack_lane(b.entry(i), LaneGroupView<real_type>{bg, n, W}, l);
        b_norm[l] = lockstep::lane_nrm2(bg, n, W, l);
        if (zero_guess) {
            zero_lane(LaneGroupView<real_type>{xg, n, W}, l);
        } else {
            pack_lane(ConstVecView<real_type>(x.entry(i)),
                      LaneGroupView<real_type>{xg, n, W}, l);
        }
        // r = b - A x; z = M^-1 r; p = z; rz = r . z.
        spmv_slab_lane(av, l, xg, r);
        real_type sum{};
        for (index_type j = 0; j < n; ++j) {
            const std::size_t idx = static_cast<std::size_t>(j) * W + l;
            const real_type rj = bg[idx] - r[idx];
            r[idx] = rj;
            sum += rj * rj;
            const real_type zj =
                UseJacobi ? inv_diag[idx] * rj : rj;
            z[idx] = zj;
            p[idx] = zj;
        }
        r_norm[l] = std::sqrt(sum);
        r0[l] = r_norm[l];
        rz[l] = lockstep::lane_dot(r, z, n, W, l);
        iter[l] = 0;
        active[l] = true;
        act[l] = real_type{1};
        if (history != nullptr) {
            history->record(i, 0, r_norm[l]);
        }
        return true;
    };

    while (true) {
        for (int l = 0; l < W; ++l) {
            for (;;) {
                if (!active[l]) {
                    if (!refill(l)) {
                        break;
                    }
                }
                if (stop.done(r_norm[l], b_norm[l])) {
                    finish(l, iter[l], r_norm[l], true,
                           FailureClass::converged);
                    continue;
                }
                if (!std::isfinite(r_norm[l])) {
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::non_finite);
                    continue;
                }
                if (iter[l] >= max_iters) {
                    finish(l, max_iters, r_norm[l], false,
                           classify_exhausted(r_norm[l], r0[l], false));
                    continue;
                }
                if (rz[l] == real_type{0}) {
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::breakdown_rho);
                    continue;
                }
                break;
            }
        }
        bool any_active = false;
        for (int l = 0; l < W; ++l) {
            any_active = any_active || active[l];
        }
        if (!any_active) {
            break;
        }

        real_type ca[W];
        real_type cb[W];
        real_type cc[W];
        real_type alpha[W] = {};

        // q = A p; pq = p . q; pq <= 0 means CG is not applicable.
        obs::traced(obs::Phase::spmv, "spmv", [&] { spmv_lanes<W>(av, p, q); });
        real_type pq[W];
        obs::traced(obs::Phase::reduction, "reduction", [&] { blas::dot_lanes<W>(p, q, n, pq); });
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                if (pq[l] <= real_type{0}) {
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::breakdown_rho);
                } else {
                    alpha[l] = rz[l] / pq[l];
                }
            }
        }
        // x += alpha * p.
        for (int l = 0; l < W; ++l) {
            ca[l] = active[l] ? alpha[l] : real_type{0};
            cb[l] = real_type{0};
            cc[l] = real_type{1};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz_lanes<W>(ca, p, cb, p, cc, xg, n);
        });
        // r -= alpha * q fused with ||r||.
        real_type rn_new[W];
        for (int l = 0; l < W; ++l) {
            ca[l] = active[l] ? -alpha[l] : real_type{0};
            cb[l] = real_type{1};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpy_nrm2_lanes<W>(ca, q, cb, r, n, rn_new);
        });
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                r_norm[l] = rn_new[l];
            }
        }
        // z = M^-1 r; beta = (r . z)_new / rz; p = z + beta * p.
        obs::traced(obs::Phase::precond, "precond_apply", [&] {
            if constexpr (UseJacobi) {
                blas::mul_elementwise_lanes<W>(inv_diag, r, act, z, n);
            } else {
                blas::copy_lanes<W>(r, act, z, n);
            }
        });
        real_type rz_new[W];
        obs::traced(obs::Phase::reduction, "reduction",
                    [&] { blas::dot_lanes<W>(r, z, n, rz_new); });
        real_type beta[W] = {};
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                beta[l] = rz_new[l] / rz[l];
            }
        }
        for (int l = 0; l < W; ++l) {
            ca[l] = act[l];
            cb[l] = real_type{0};
            cc[l] = active[l] ? beta[l] : real_type{1};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz_lanes<W>(ca, z, cb, z, cc, p, n);
        });
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                rz[l] = rz_new[l];
                ++iter[l];
                if (history != nullptr) {
                    history->record(sys[l], iter[l], r_norm[l]);
                }
            }
        }
    }
}

/// Pipelined lockstep CG: the lane protocol of `cg_lockstep` with the
/// reduction structure of `pipelined_cg_kernel`. The p.q and residual-norm
/// reductions merge into one dot3_nrm2 sweep and the r-update sweep loses
/// its fused norm (the recurrence supplies it), leaving two lane-scalar
/// synchronization points per iteration (after the merged reduction and
/// after the r.z dot) instead of three. alpha / beta are built from the
/// same dot values as the classic kernel, so the lane iterates evolve
/// bit-identically; only stop decisions ride the recurrence norm.
template <int W, bool UseJacobi, typename SourceBatch, typename Stop>
void cg_lockstep_pipelined(const SourceBatch& a,
                           const EllSlabPattern& pattern,
                           const BatchVector<real_type>& b,
                           BatchVector<real_type>& x, bool zero_guess,
                           const Stop& stop, int max_iters, Workspace& ws,
                           std::atomic<size_type>& next_system,
                           BatchLogStage& stage, int thread,
                           obs::ConvergenceHistory* history = nullptr)
{
    const index_type n = pattern.rows;
    const size_type nbatch = a.num_batch();

    real_type* r = ws.slot(0).data;
    real_type* z = ws.slot(1).data;
    real_type* p = ws.slot(2).data;
    real_type* q = ws.slot(3).data;
    real_type* xg = ws.slot(4).data;
    real_type* bg = ws.slot(5).data;
    real_type* inv_diag = ws.slot(6).data;
    real_type* slab = ws.slot(lockstep_cg_base_slots).data;
    const EllSlabView<real_type> av{n, pattern.nnz_per_row,
                                    pattern.col_idxs.data(), slab, W};

    size_type sys[W] = {};
    int iter[W] = {};
    bool active[W] = {};
    real_type act[W] = {};
    real_type b_norm[W] = {};
    real_type r_norm[W] = {};
    real_type r0[W] = {};
    real_type rz[W] = {};

    auto finish = [&](int l, int iters, real_type rn, bool conv,
                      FailureClass fc) {
        stage.record(thread, sys[l], iters, rn, conv, fc);
        if (history != nullptr) {
            history->finalize(sys[l], iters, rn, conv);
        }
        unpack_lane(ConstLaneGroupView<real_type>(xg, n, W), l,
                    x.entry(sys[l]));
        active[l] = false;
        act[l] = real_type{0};
    };

    auto refill = [&](int l) -> bool {
        const size_type i = next_system.fetch_add(1);
        if (i >= nbatch) {
            return false;
        }
        obs::ScopedSpan span("lane_refill", "solver",
                             static_cast<std::int64_t>(i));
        sys[l] = i;
        const auto src = a.entry(i);
        pack_slab_lane(src, pattern, slab, W, l);
        if constexpr (UseJacobi) {
            lockstep::pack_inv_diag_lane(src, n, inv_diag, W, l);
        }
        pack_lane(b.entry(i), LaneGroupView<real_type>{bg, n, W}, l);
        b_norm[l] = lockstep::lane_nrm2(bg, n, W, l);
        if (zero_guess) {
            zero_lane(LaneGroupView<real_type>{xg, n, W}, l);
        } else {
            pack_lane(ConstVecView<real_type>(x.entry(i)),
                      LaneGroupView<real_type>{xg, n, W}, l);
        }
        // r = b - A x; z = M^-1 r; p = z; rz = r . z.
        spmv_slab_lane(av, l, xg, r);
        real_type sum{};
        for (index_type j = 0; j < n; ++j) {
            const std::size_t idx = static_cast<std::size_t>(j) * W + l;
            const real_type rj = bg[idx] - r[idx];
            r[idx] = rj;
            sum += rj * rj;
            const real_type zj =
                UseJacobi ? inv_diag[idx] * rj : rj;
            z[idx] = zj;
            p[idx] = zj;
        }
        r_norm[l] = std::sqrt(sum);
        r0[l] = r_norm[l];
        rz[l] = lockstep::lane_dot(r, z, n, W, l);
        iter[l] = 0;
        active[l] = true;
        act[l] = real_type{1};
        if (history != nullptr) {
            history->record(i, 0, r_norm[l]);
        }
        return true;
    };

    while (true) {
        for (int l = 0; l < W; ++l) {
            for (;;) {
                if (!active[l]) {
                    if (!refill(l)) {
                        break;
                    }
                }
                if (stop.done(r_norm[l], b_norm[l])) {
                    finish(l, iter[l], r_norm[l], true,
                           FailureClass::converged);
                    continue;
                }
                if (!std::isfinite(r_norm[l])) {
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::non_finite);
                    continue;
                }
                if (iter[l] >= max_iters) {
                    finish(l, max_iters, r_norm[l], false,
                           classify_exhausted(r_norm[l], r0[l], false));
                    continue;
                }
                if (rz[l] == real_type{0}) {
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::breakdown_rho);
                    continue;
                }
                break;
            }
        }
        bool any_active = false;
        for (int l = 0; l < W; ++l) {
            any_active = any_active || active[l];
        }
        if (!any_active) {
            break;
        }

        real_type ca[W];
        real_type cb[W];
        real_type cc[W];
        real_type alpha[W] = {};

        // q = A p, then the merged reduction: q.p, q.q, q.r and the
        // measured ||r|| in one sweep.
        obs::traced(obs::Phase::spmv, "spmv", [&] { spmv_lanes<W>(av, p, q); });
        real_type pq[W];
        real_type qq[W];
        real_type qr[W];
        real_type r_meas[W];
        obs::traced(obs::Phase::reduction, "reduction", [&] {
            blas::dot3_nrm2_lanes<W>(q, p, r, n, pq, qq, qr, r_meas);
        });
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                if (pq[l] <= real_type{0}) {
                    finish(l, iter[l], r_norm[l], false,
                           FailureClass::breakdown_rho);
                } else {
                    alpha[l] = rz[l] / pq[l];
                }
            }
        }
        // x += alpha * p.
        for (int l = 0; l < W; ++l) {
            ca[l] = active[l] ? alpha[l] : real_type{0};
            cb[l] = real_type{0};
            cc[l] = real_type{1};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz_lanes<W>(ca, p, cb, p, cc, xg, n);
        });
        // r -= alpha * q, PLAIN (the norm comes from the recurrence,
        // re-anchored at this iteration's measured ||r||).
        for (int l = 0; l < W; ++l) {
            ca[l] = active[l] ? -alpha[l] : real_type{0};
            cb[l] = real_type{1};
        }
        obs::traced(obs::Phase::update, "update",
                    [&] { blas::zaxpby_lanes<W>(ca, q, cb, r, r, n); });
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                r_norm[l] = recurrence_norm(
                    r_meas[l] * r_meas[l] - 2 * alpha[l] * qr[l] +
                    alpha[l] * alpha[l] * qq[l]);
            }
        }
        // z = M^-1 r; beta = (r . z)_new / rz; p = z + beta * p.
        obs::traced(obs::Phase::precond, "precond_apply", [&] {
            if constexpr (UseJacobi) {
                blas::mul_elementwise_lanes<W>(inv_diag, r, act, z, n);
            } else {
                blas::copy_lanes<W>(r, act, z, n);
            }
        });
        real_type rz_new[W];
        obs::traced(obs::Phase::reduction, "reduction",
                    [&] { blas::dot_lanes<W>(r, z, n, rz_new); });
        real_type beta[W] = {};
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                beta[l] = rz_new[l] / rz[l];
            }
        }
        for (int l = 0; l < W; ++l) {
            ca[l] = act[l];
            cb[l] = real_type{0};
            cc[l] = active[l] ? beta[l] : real_type{1};
        }
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz_lanes<W>(ca, z, cb, z, cc, p, n);
        });
        for (int l = 0; l < W; ++l) {
            if (active[l]) {
                rz[l] = rz_new[l];
                ++iter[l];
                if (history != nullptr) {
                    history->record(sys[l], iter[l], r_norm[l]);
                }
            }
        }
    }
}

/// Batch driver for the lockstep path: builds the shared slab pattern,
/// sizes the (separate, rows*W-length) workspace pool, and runs one
/// lockstep group per OpenMP thread against a shared work queue. Per-entry
/// results are staged per thread and merged into the log afterwards.
template <int W, bool UseJacobi, bool UseCg, bool Pipelined = false,
          typename SourceBatch, typename Stop>
void run_batch_lockstep(const SourceBatch& a, const BatchVector<real_type>& b,
                        BatchVector<real_type>& x, bool zero_guess,
                        const Stop& stop, int max_iters, WorkspacePool& pool,
                        BatchLog& log,
                        obs::ConvergenceHistory* history = nullptr)
{
    const EllSlabPattern pattern = make_slab_pattern(a);
    const int nthreads = lockstep::max_threads();
    const int base_slots =
        UseCg ? lockstep_cg_base_slots : lockstep_bicgstab_base_slots;
    pool.require(nthreads, pattern.rows * W,
                 base_slots + pattern.nnz_per_row);

    BatchLogStage stage(nthreads);
    std::atomic<size_type> next_system{0};
    std::exception_ptr failure;
#pragma omp parallel
    {
        try {
            const int thread = lockstep::this_thread();
            // One span per thread covering its whole queue drain: the
            // lane-group analogue of the scalar path's per-entry span.
            obs::ScopedSpan group_span("lockstep_group", "solver", W);
            auto& ws = pool.at(thread);
            if constexpr (UseCg && Pipelined) {
                cg_lockstep_pipelined<W, UseJacobi>(
                    a, pattern, b, x, zero_guess, stop, max_iters, ws,
                    next_system, stage, thread, history);
            } else if constexpr (UseCg) {
                cg_lockstep<W, UseJacobi>(a, pattern, b, x, zero_guess,
                                          stop, max_iters, ws, next_system,
                                          stage, thread, history);
            } else if constexpr (Pipelined) {
                bicgstab_lockstep_pipelined<W, UseJacobi>(
                    a, pattern, b, x, zero_guess, stop, max_iters, ws,
                    next_system, stage, thread, history);
            } else {
                bicgstab_lockstep<W, UseJacobi>(a, pattern, b, x, zero_guess,
                                                stop, max_iters, ws,
                                                next_system, stage, thread,
                                                history);
            }
        } catch (...) {
#pragma omp critical(bsis_lockstep_failure)
            {
                if (!failure) {
                    failure = std::current_exception();
                }
            }
        }
    }
    stage.merge_into(log);
    if (failure) {
        std::rethrow_exception(failure);
    }
}

}  // namespace bsis
