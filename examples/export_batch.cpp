// Writes a batch of collision matrices to disk in the layout of the
// paper's reproducibility appendix (Zenodo archive): a matrix-class
// directory with one numbered subfolder per batch entry holding A.mtx and
// b.mtx in MatrixMarket format. The companion driver `solve_from_files`
// (and the paper's run_xgc_matrices.sh workflow) consume this layout.
//
//   ./build/examples/export_batch <output_dir> [num_mesh_nodes]
#include <cstdlib>
#include <iostream>

#include "io/matrix_market.hpp"
#include "xgc/workload.hpp"

int main(int argc, char** argv)
{
    using namespace bsis;
    if (argc < 2) {
        std::cerr << "usage: export_batch <output_dir> [num_mesh_nodes]\n";
        return 1;
    }
    const std::string root = argv[1];
    const size_type nodes = argc > 2 ? std::atol(argv[2]) : 4;

    xgc::WorkloadParams wp;
    wp.num_mesh_nodes = nodes;
    xgc::CollisionWorkload workload(wp);
    auto a = workload.make_matrix_batch();
    workload.assemble_batch(workload.distributions(),
                            workload.distributions(), 0.0035, a);

    io::write_batch(root, a, workload.distributions());
    std::cout << "wrote " << a.num_batch() << " systems ("
              << a.rows() << " rows, " << a.nnz_per_entry()
              << " nnz each; alternating ion/electron) under " << root
              << "\n"
              << "solve them with: ./solve_from_files " << root << "\n";
    return 0;
}
