// Extension experiment: projecting the paper's headline result onto the
// exascale-era GPUs its conclusion anticipates ("seamless execution of XGC
// on exascale-oriented heterogeneous architectures at the various
// leadership supercomputing facilities" -- i.e. Frontier's MI250X and the
// H100 generation). Same workload and pipeline as Fig. 9, with the
// projection DeviceSpecs added next to the measured trio.
#include <iostream>

#include "common.hpp"

int main()
{
    using namespace bsis;
    const size_type nbatch = bench::quick_mode() ? 240 : 960;
    const CpuExecutor skylake;

    xgc::WorkloadParams wp;
    wp.num_mesh_nodes = nbatch / 2;

    Table table({"device", "generation", "gpu_ms", "skylake_ms",
                 "speedup", "blocks_per_cu"});
    const auto run_device = [&](const gpusim::DeviceSpec& spec,
                                const char* generation) {
        xgc::CollisionWorkload workload(wp);
        const SimGpuExecutor gpu(spec);
        SolverSettings settings;
        settings.tolerance = 1e-10;
        settings.max_iterations = 500;
        double gpu_total = 0;
        double cpu_total = 0;
        int blocks_per_cu = 0;
        const auto solver = [&](const BatchCsr<real_type>& a,
                                const BatchVector<real_type>& b,
                                BatchVector<real_type>& x, bool warm,
                                int /*k*/) {
            auto ell = to_ell(a);
            SolverSettings local = settings;
            local.use_initial_guess = warm;
            auto report = gpu.solve(ell, b, x, local);
            gpu_total += report.kernel_seconds;
            blocks_per_cu = report.occupancy.blocks_per_cu;

            BatchVector<real_type> x_cpu(a.num_batch(), a.rows());
            cpu_total += skylake.gbsv(a, b, x_cpu).node_seconds;
            return report.log;
        };
        implicit_collision_step(workload, xgc::PicardSettings{}, solver);
        table.new_row()
            .add(spec.name)
            .add(generation)
            .add(gpu_total * 1e3, 5)
            .add(cpu_total * 1e3, 5)
            .add(cpu_total / gpu_total, 3)
            .add(blocks_per_cu);
    };

    int count = 0;
    const auto* measured = gpusim::all_gpus(count);
    for (int g = 0; g < count; ++g) {
        run_device(measured[g], "paper (2022)");
    }
    int pcount = 0;
    const auto* projected = gpusim::projection_gpus(pcount);
    for (int g = 0; g < pcount; ++g) {
        run_device(projected[g], "projection");
    }

    bench::emit("extension_exascale",
                "Extension: Fig. 9's combined-batch speedup projected onto "
                "exascale-era GPUs (5 Picard iterations, BiCGStab-ELL, "
                "warm starts)",
                table);
    std::cout
        << "\nReading guide: the projections inherit the paper-generation "
           "calibration and\nonly change the published architectural "
           "parameters (CUs, bandwidth, caches,\nshared-memory capacity) "
           "-- treat them as the model's forecast, not a claim.\n";
    return 0;
}
