file(REMOVE_RECURSE
  "libbsis_util.a"
)
