// SIMT-traced batched kernels.
//
// These functions replay, warp instruction by warp instruction, the memory
// and execution behavior of the GPU kernels of Section IV-E of the paper:
// the warp-per-row BatchCsr SpMV, the thread-per-row BatchEll SpMV, block
// reductions (dot/norm), streaming vector updates, and the fused BiCGStab
// solver assembled from them. They do no arithmetic on real data -- the
// functional solve happens in bsis_core -- they generate the *access
// trace*, from which the profiler counters of Table II are measured and
// against which the SIMT sanitizer checks races, barrier divergence, and
// bounds.
//
// Vector operands are identified by a byte base address. Addresses below
// `shared_region_end` are byte offsets into the block's shared memory (no
// cache traffic, counted as shared accesses); the traced BiCGStab places
// shared solver vector i at offset i * padded_length * sizeof(real_type),
// followed by the cross-warp reduction scratch. `shared_space` (offset 0)
// marks the first shared vector and remains valid for single-operand
// traces.
#pragma once

#include <cstdint>
#include <vector>

#include "core/storage_config.hpp"
#include "gpusim/sanitizer.hpp"
#include "gpusim/simt.hpp"
#include "util/types.hpp"

namespace bsis::gpusim {

/// End of the shared-memory address window: any base/address below this is
/// interpreted as a byte offset into the block's shared allocation. Global
/// regions (AddressMap) all live far above it.
inline constexpr std::uint64_t shared_region_end = std::uint64_t{1} << 30;

/// Address marker for an operand at the bottom of shared memory.
inline constexpr std::uint64_t shared_space = 0;

/// Whether a base address denotes shared memory.
inline constexpr bool is_shared_addr(std::uint64_t addr)
{
    return addr < shared_region_end;
}

/// Virtual layout of one system's operands. The shared sparsity pattern
/// uses the SAME addresses for every system (it is stored once per batch,
/// Section IV-A), while values and vectors are per-system.
struct AddressMap {
    std::uint64_t values = 0;    ///< this system's nonzero values
    std::uint64_t col_idxs = 0;  ///< shared column indices
    std::uint64_t row_ptrs = 0;  ///< shared row pointers (CSR only)
    std::uint64_t b = 0;         ///< right-hand side
    std::uint64_t spill = 0;     ///< base of this system's spilled vectors
    std::uint64_t log = 0;       ///< per-system convergence log record
    index_type rows = 0;

    static AddressMap for_system(size_type system_index, index_type rows,
                                 index_type nnz_stored,
                                 int num_spill_vectors);

    /// Address of spilled (global-memory) vector number `slot`.
    std::uint64_t spill_vec(int slot) const
    {
        return spill + static_cast<std::uint64_t>(slot) *
                           static_cast<std::uint64_t>(rows) * sizeof(real_type);
    }
};

/// Shared bytes the traced solver actually touches for `config`: the
/// configured vectors plus `scratch_slots_per_warp` cross-warp reduction
/// scratch slots per warp. The classic fused kernels need TWO (the dual-
/// dot publishes two partials per warp in one pass); the pipelined kernel
/// needs THREE (its widest sweep combines three results). Pass this to
/// Sanitizer::set_shared_limit for bounds checking.
size_type traced_shared_bytes(const StorageConfig& config, int num_warps,
                              int scratch_slots_per_warp = 2);

/// Bytes of the per-system convergence log record the traced solver
/// writes back on exit: {iterations, residual_norm, failure class}, one
/// 8-byte word each.
inline constexpr std::uint64_t log_record_bytes = 24;

/// Registers the global regions of `map` with `sanitizer` for
/// out-of-bounds checking: the sparsity pattern (`row_ptrs` only when
/// `csr_pattern`), per-system values, the right-hand side, the spilled
/// solver vectors, and the per-system log record.
void register_map_buffers(Sanitizer& sanitizer, const AddressMap& map,
                          index_type rows, index_type nnz_stored,
                          bool csr_pattern, int num_spill_vectors);

/// Warp-per-row CSR SpMV (Fig. 5a): each row is read by one warp with
/// lanes covering its nonzeros, followed by a warp shuffle reduction.
void trace_spmv_csr(BlockTracer& tracer, const AddressMap& map,
                    const std::vector<index_type>& row_ptrs,
                    const std::vector<index_type>& col_idxs,
                    std::uint64_t x_base, std::uint64_t y_base);

/// Thread-per-row ELL SpMV (Fig. 5b): lane r handles row r; the slot loop
/// walks the column-major value/index arrays with fully coalesced accesses.
void trace_spmv_ell(BlockTracer& tracer, const AddressMap& map,
                    index_type rows, index_type nnz_per_row,
                    const std::vector<index_type>& ell_col_idxs,
                    std::uint64_t x_base, std::uint64_t y_base);

/// Multi-thread-per-row ELL SpMV: `threads_per_row` lanes cooperate on
/// each row, striding over its slots and combining with a sub-warp
/// shuffle reduction. Section IV-E of the paper: "For matrices with more
/// elements in a single row, it might be necessary to have multiple
/// threads working on one row." Requires threads_per_row to divide the
/// warp size.
void trace_spmv_ell_multi(BlockTracer& tracer, const AddressMap& map,
                          index_type rows, index_type nnz_per_row,
                          const std::vector<index_type>& ell_col_idxs,
                          int threads_per_row, std::uint64_t x_base,
                          std::uint64_t y_base);

/// Block-wide dot product / norm over vectors of length n (pass the same
/// base twice for a norm). `scratch_base` is the shared byte offset of the
/// cross-warp reduction scratch (one real per warp): per-warp partials are
/// stored there, a barrier orders them, warp 0 combines and publishes the
/// result, and a final barrier protects the scratch before reuse.
void trace_dot(BlockTracer& tracer, index_type n, std::uint64_t a_base,
               std::uint64_t b_base,
               std::uint64_t scratch_base = shared_space);

/// Fused dual reduction: one sweep computes x.y1 and x.y2 (each distinct
/// operand is read once). Warp w publishes its two partials at scratch
/// slots 2w and 2w+1 -- the scratch must hold 2 * num_warps reals (see
/// traced_shared_bytes).
void trace_dot2(BlockTracer& tracer, index_type n, std::uint64_t x_base,
                std::uint64_t y1_base, std::uint64_t y2_base,
                std::uint64_t scratch_base = shared_space);

/// Streaming vector update reading the vectors in `read_bases` and writing
/// `out_base` (e.g. axpy = 2 reads incl. the output's old value, 1 write).
void trace_axpy(BlockTracer& tracer, index_type n,
                const std::vector<std::uint64_t>& read_bases,
                std::uint64_t out_base);

/// Fused update + norm: the trace_axpy sweep with the squared norm of the
/// written value accumulated in registers, followed by the cross-warp
/// reduction combine. One sweep of traffic instead of two.
void trace_axpy_nrm2(BlockTracer& tracer, index_type n,
                     const std::vector<std::uint64_t>& read_bases,
                     std::uint64_t out_base,
                     std::uint64_t scratch_base = shared_space);

/// Warp-per-row CSR SpMV with reductions fused into the sweep: alongside
/// y = A x the kernel accumulates, per row, the products of the freshly
/// produced y element (still in registers) against each vector in
/// `dot_bases` -- plus y's own square when `self_dot` -- and finishes with
/// ONE cross-warp combine publishing all results instead of the plain
/// kernel's trailing barrier. This is the pipelined solver's key move: a
/// dot fused into the sweep that PRODUCES its operand costs only the
/// other operand's row reads.
void trace_spmv_csr_dots(BlockTracer& tracer, const AddressMap& map,
                         const std::vector<index_type>& row_ptrs,
                         const std::vector<index_type>& col_idxs,
                         std::uint64_t x_base, std::uint64_t y_base,
                         bool self_dot,
                         const std::vector<std::uint64_t>& dot_bases,
                         std::uint64_t scratch_base = shared_space);

/// Thread-per-row ELL SpMV with fused reductions; see trace_spmv_csr_dots.
void trace_spmv_ell_dots(BlockTracer& tracer, const AddressMap& map,
                         index_type rows, index_type nnz_per_row,
                         const std::vector<index_type>& ell_col_idxs,
                         std::uint64_t x_base, std::uint64_t y_base,
                         bool self_dot,
                         const std::vector<std::uint64_t>& dot_bases,
                         std::uint64_t scratch_base = shared_space);

/// Fused update + norm + dot: the trace_axpy sweep with the squared norm
/// of the written value AND its product against `dot_base` accumulated in
/// registers, closed by one combine round publishing both results (the
/// pipelined s-update: s, ||s||, and s.r_hat in one sweep).
void trace_axpy_nrm2_dot(BlockTracer& tracer, index_type n,
                         const std::vector<std::uint64_t>& read_bases,
                         std::uint64_t out_base, std::uint64_t dot_base,
                         std::uint64_t scratch_base = shared_space);

/// Which SpMV kernel a traced solve uses.
enum class TracedFormat { csr, ell };

/// Full fused BiCGStab solve of one system: setup plus `iterations`
/// iterations of Algorithm 1, with vector placements taken from `config`
/// (slot names as produced by bicgstab_slots()). Appends into the tracer.
void trace_bicgstab(BlockTracer& tracer, const AddressMap& map,
                    TracedFormat format,
                    const std::vector<index_type>& row_ptrs,
                    const std::vector<index_type>& csr_col_idxs,
                    const std::vector<index_type>& ell_col_idxs,
                    index_type rows, index_type nnz_per_row, int iterations,
                    const StorageConfig& config);

/// Pipelined fused BiCGStab solve of one system (the traced twin of
/// pipelined_bicgstab_kernel): the standalone rho reduction disappears
/// into the recurrence, r_hat.v fuses into the SpMV that produces v, the
/// omega/rho reductions fuse into the SpMV that produces t (a three-result
/// combine), and the r update runs as a pure streaming sweep. 14 block
/// barriers per iteration versus the classic kernel's 21. Needs THREE
/// reduction scratch slots per warp (traced_shared_bytes(..., 3)).
void trace_pipelined_bicgstab(BlockTracer& tracer, const AddressMap& map,
                              TracedFormat format,
                              const std::vector<index_type>& row_ptrs,
                              const std::vector<index_type>& csr_col_idxs,
                              const std::vector<index_type>& ell_col_idxs,
                              index_type rows, index_type nnz_per_row,
                              int iterations, const StorageConfig& config);

}  // namespace bsis::gpusim
