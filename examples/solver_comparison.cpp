// Compares every solver composition the library offers on one batch of
// XGC electron matrices (the hard species): the iterative solvers
// (BiCGStab / GMRES / Richardson, with and without Jacobi), the banded
// direct solvers (dgbsv-style LU and the Givens QR), and the format
// auto-tuner's recommendation.
// Pass --sanitize to additionally run the BiCGStab composition through the
// simulated-GPU executor with the SIMT sanitizer attached; the example
// fails on any reported violation.
// Telemetry: --trace=FILE / --metrics-json=FILE record every composition's
// phase spans and counters (see examples/obs_cli.hpp).
#include <cstring>
#include <iostream>

#include "core/solver.hpp"
#include "core/tuning.hpp"
#include "exec/executor.hpp"
#include "lapack/banded_lu.hpp"
#include "lapack/banded_qr.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stats.hpp"
#include "obs_cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "xgc/workload.hpp"

int main(int argc, char** argv)
{
    using namespace bsis;
    examples::ObsCli obs_cli(argc, argv);
    const bool sanitize =
        argc > 1 && std::strcmp(argv[1], "--sanitize") == 0;

    // Electron-only workload: 32 systems of 992 rows.
    xgc::WorkloadParams wp;
    wp.include_ions = false;
    wp.num_mesh_nodes = 32;
    xgc::CollisionWorkload workload(wp);
    auto a = workload.make_matrix_batch();
    workload.assemble_batch(workload.distributions(),
                            workload.distributions(), 0.0035, a);
    const auto& b = workload.distributions();
    const auto ell = to_ell(a);

    // What does the auto-tuner say?
    const auto stats = compute_stats(a);
    const auto choice = tune(stats, 32);
    std::cout << "auto-tuner: format = "
              << (choice.format == BatchFormat::ell ? "ELL" : "CSR")
              << ", block size = " << choice.block_size << " ("
              << choice.reason << ")\n"
              << "pattern: " << stats.rows << " rows, "
              << stats.avg_nnz_per_row << " avg nnz/row, ELL padding "
              << 100.0 * choice.ell_padding_overhead << "%\n\n";

    Table table({"method", "wall_ms", "mean_iters", "converged"});

    const auto run_iterative = [&](const char* name, SolverType solver,
                                   PrecondType precond) {
        SolverSettings s;
        s.solver = solver;
        s.precond = precond;
        s.tolerance = 1e-10;
        s.max_iterations = 2000;
        s.gmres_restart = 40;
        s.richardson_omega = 0.7;
        BatchVector<real_type> x(a.num_batch(), a.rows());
        const auto result = solve_batch(ell, b, x, s);
        table.new_row()
            .add(name)
            .add(result.wall_seconds * 1e3, 4)
            .add(result.log.mean_iterations(), 4)
            .add(result.log.all_converged() ? "yes" : "no");
    };
    run_iterative("bicgstab + jacobi", SolverType::bicgstab,
                  PrecondType::jacobi);
    run_iterative("bicgstab (unpreconditioned)", SolverType::bicgstab,
                  PrecondType::identity);
    run_iterative("bicgstab + block-jacobi(4)", SolverType::bicgstab,
                  PrecondType::block_jacobi);
    run_iterative("bicg + jacobi", SolverType::bicg, PrecondType::jacobi);
    run_iterative("cgs + jacobi", SolverType::cgs, PrecondType::jacobi);
    run_iterative("gmres(40) + jacobi", SolverType::gmres,
                  PrecondType::jacobi);
    run_iterative("chebyshev + jacobi (Gershgorin bounds)",
                  SolverType::chebyshev, PrecondType::jacobi);
    run_iterative("richardson + jacobi", SolverType::richardson,
                  PrecondType::jacobi);

    const auto run_direct = [&](const char* name, auto&& solve_fn) {
        BatchVector<real_type> x(a.num_batch(), a.rows());
        for (size_type i = 0; i < a.num_batch(); ++i) {
            blas::copy(b.entry(i), x.entry(i));
        }
        auto banded = to_banded(a);
        Timer timer;
        solve_fn(banded, x);
        table.new_row()
            .add(name)
            .add(timer.seconds() * 1e3, 4)
            .add("-")
            .add("yes (exact)");
    };
    run_direct("banded LU (dgbsv)",
               [](BatchBanded<real_type>& m, BatchVector<real_type>& x) {
                   lapack::batch_gbsv(m, x);
               });
    run_direct("banded QR (Givens)",
               [](BatchBanded<real_type>& m, BatchVector<real_type>& x) {
                   lapack::batch_gbqr_solve(m, x);
               });

    table.print(std::cout);
    std::cout << "\nNote: host wall times; the GPU story is in "
                 "bench/bench_fig6_solvers.\n";

    if (sanitize) {
        SolverSettings s;
        s.tolerance = 1e-10;
        s.max_iterations = 2000;
        SimGpuExecutor exec(gpusim::v100());
        exec.set_sanitize(true);
        BatchVector<real_type> x(a.num_batch(), a.rows());
        const auto report = exec.solve(ell, b, x, s);
        std::cout << "\n" << report.sanitizer.summary() << '\n';
        if (!report.sanitized || !report.sanitizer.clean()) {
            for (const auto& v : report.sanitizer.violations) {
                std::cerr << "  " << v.describe() << '\n';
            }
            return 1;
        }
    }
    return 0;
}
