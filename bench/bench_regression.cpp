// Perf-regression harness for the batched solvers.
//
// Times the canonical workload of the paper -- BiCGStab+Jacobi over a
// batch of 992-row / 9-nnz-per-row collision systems -- on the host (wall
// time, fused vs unfused kernels, CSR and ELL) and on the modeled devices
// (kernel seconds at warp 32 and warp 64), and writes the medians to
// BENCH_solvers.json so successive commits can be compared.
//
// Usage: bench_regression [--smoke] [--out <path>] [--baseline <path>]
//   --smoke    tiny batch / few repetitions (the `perf`-labeled ctest run)
//   --out      output path for the JSON (default: BENCH_solvers.json)
//   --baseline committed BENCH_solvers.json to gate against: the csr/fused
//              median (telemetry compiled in but disabled) must stay
//              within 2% of the baseline's. Skipped for smoke runs and
//              when the workload sizes differ.
// BSIS_QUICK=1 is honored like --smoke.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/monitor.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace bsis;

double median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n == 0 ? 0.0
                  : (n % 2 == 1 ? v[n / 2]
                                : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

double mean_iterations(const BatchLog& log)
{
    double sum = 0;
    for (size_type i = 0; i < log.num_batch(); ++i) {
        sum += log.iterations(i);
    }
    return log.num_batch() == 0 ? 0.0
                                : sum / static_cast<double>(log.num_batch());
}

/// One timed host configuration: median wall seconds over the repetitions.
struct HostCase {
    std::string format;
    std::string variant;
    double median_wall_seconds = 0;
    double mean_iterations = 0;
    bool all_converged = false;
};

/// One modeled device configuration (deterministic, no repetitions).
struct DeviceCase {
    std::string device;
    int warp_size = 0;
    std::string format;
    std::string variant;
    double kernel_seconds = 0;
    double per_iteration_us = 0;
};

/// A host case prepared for round-robin timing: the closure runs one solve.
struct HostRun {
    HostCase c;
    std::function<BatchSolveResult()> run;
    std::vector<double> walls;
};

/// Builds the timing closure for one host configuration. The solution
/// vector lives in the closure so repeated runs reuse the same storage.
template <typename BatchMatrix>
HostRun make_host_run(const char* format, const BatchMatrix& a,
                      const BatchVector<real_type>& b, bool fused,
                      int lockstep_width, bool pipelined)
{
    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;
    settings.fused_kernels = fused;
    settings.lockstep_width = lockstep_width;
    settings.pipelined = pipelined;
    HostRun r;
    r.c.format = format;
    if (pipelined) {
        r.c.variant = lockstep_width > 0
                          ? "pipelined-lockstep" +
                                std::to_string(lockstep_width)
                          : "pipelined";
    } else {
        r.c.variant = lockstep_width > 0
                          ? "lockstep" + std::to_string(lockstep_width)
                          : (fused ? "fused" : "unfused");
    }
    auto x = std::make_shared<BatchVector<real_type>>(a.num_batch(),
                                                      a.rows());
    r.run = [&a, &b, settings, x] { return solve_batch(a, b, *x, settings); };
    return r;
}

template <typename BatchMatrix>
HostCase time_host(const char* format, bool fused, const BatchMatrix& a,
                   const BatchVector<real_type>& b, int reps,
                   int lockstep_width = 0)
{
    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;
    settings.fused_kernels = fused;
    settings.lockstep_width = lockstep_width;
    BatchVector<real_type> x(a.num_batch(), a.rows());
    std::vector<double> walls;
    BatchSolveResult last;
    // One untimed warm-up solve so allocation of the persistent workspace
    // pool (and cache warming) does not land in the first sample.
    solve_batch(a, b, x, settings);
    for (int rep = 0; rep < reps; ++rep) {
        last = solve_batch(a, b, x, settings);
        walls.push_back(last.wall_seconds);
    }
    HostCase c;
    c.format = format;
    c.variant = lockstep_width > 0
                    ? "lockstep" + std::to_string(lockstep_width)
                    : (fused ? "fused" : "unfused");
    c.median_wall_seconds = median(std::move(walls));
    c.mean_iterations = mean_iterations(last.log);
    c.all_converged = last.log.all_converged();
    return c;
}

/// Per-entry equivalence check of the lockstep path against the scalar
/// fused path: identical converged flags, iteration counts within one,
/// and (at equal counts) residual norms within a small relative tolerance.
template <typename BatchMatrix>
bool lockstep_matches_scalar(const BatchMatrix& a,
                             const BatchVector<real_type>& b, int width)
{
    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;
    BatchVector<real_type> x_scalar(a.num_batch(), a.rows());
    BatchVector<real_type> x_lock(a.num_batch(), a.rows());
    const auto scalar = solve_batch(a, b, x_scalar, settings);
    settings.lockstep_width = width;
    const auto lock = solve_batch(a, b, x_lock, settings);
    for (size_type i = 0; i < a.num_batch(); ++i) {
        if (scalar.log.converged(i) != lock.log.converged(i)) {
            std::cerr << "lockstep mismatch: system " << i
                      << " converged flags differ\n";
            return false;
        }
        const int di =
            std::abs(scalar.log.iterations(i) - lock.log.iterations(i));
        if (di > 1) {
            std::cerr << "lockstep mismatch: system " << i << " iterations "
                      << scalar.log.iterations(i) << " vs "
                      << lock.log.iterations(i) << "\n";
            return false;
        }
        if (di == 0) {
            const double rs = scalar.log.residual_norm(i);
            const double rl = lock.log.residual_norm(i);
            const double scale = std::max({std::abs(rs), std::abs(rl),
                                           1e-300});
            if (std::abs(rs - rl) > 1e-6 * scale) {
                std::cerr << "lockstep mismatch: system " << i
                          << " residual " << rs << " vs " << rl << "\n";
                return false;
            }
        }
    }
    return true;
}

/// Per-entry equivalence of the pipelined variant against the classic
/// fused kernels at the same lockstep width: identical converged flags,
/// iteration counts within one, and (at equal counts) residual norms
/// within a small relative tolerance.
template <typename BatchMatrix>
bool pipelined_matches_classic(const BatchMatrix& a,
                               const BatchVector<real_type>& b, int width)
{
    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;
    settings.fused_kernels = true;
    settings.lockstep_width = width;
    BatchVector<real_type> x_classic(a.num_batch(), a.rows());
    BatchVector<real_type> x_pipe(a.num_batch(), a.rows());
    const auto classic = solve_batch(a, b, x_classic, settings);
    settings.pipelined = true;
    const auto pipe = solve_batch(a, b, x_pipe, settings);
    for (size_type i = 0; i < a.num_batch(); ++i) {
        if (classic.log.converged(i) != pipe.log.converged(i)) {
            std::cerr << "pipelined mismatch: system " << i
                      << " converged flags differ\n";
            return false;
        }
        const int di =
            std::abs(classic.log.iterations(i) - pipe.log.iterations(i));
        if (di > 1) {
            std::cerr << "pipelined mismatch: system " << i << " iterations "
                      << classic.log.iterations(i) << " vs "
                      << pipe.log.iterations(i) << "\n";
            return false;
        }
        if (di == 0) {
            // The pipelined kernel reports the recurrence-maintained norm,
            // the classic kernel a measured one: agreement is expected to
            // rounding of the recurrence, not bit-for-bit. Converged
            // residuals sit at the cancellation floor of the recurrence,
            // so allow an absolute slack well under the stop tolerance.
            const double rc = classic.log.residual_norm(i);
            const double rp = pipe.log.residual_norm(i);
            const double scale = std::max({std::abs(rc), std::abs(rp),
                                           1e-300});
            if (std::abs(rc - rp) >
                1e-4 * scale + 1e-3 * settings.tolerance) {
                std::cerr << "pipelined mismatch: system " << i
                          << " residual " << rc << " vs " << rp << "\n";
                return false;
            }
        }
    }
    return true;
}

/// Telemetry overhead A/B on the csr/fused configuration.
struct TelemetryCase {
    double disabled_median_wall_seconds = 0;  ///< obs switches off
    double enabled_median_wall_seconds = 0;   ///< metrics + tracing on
    double enabled_overhead_percent = 0;
};

/// Live-monitor overhead A/B on the same configuration: metrics-on solves
/// with and without the background sampler (obs::Monitor) ticking. The
/// two cases are interleaved rep-by-rep so slow machine drift hits both
/// medians equally; the gated number is the sampler's MARGINAL cost on
/// top of metrics recording, which is what `--monitor` actually adds.
struct MonitorCase {
    double tick_ms = 250;
    double metrics_only_median_wall_seconds = 0;  ///< sampler stopped
    double enabled_median_wall_seconds = 0;       ///< sampler ticking
    double overhead_percent = 0;  ///< enabled vs metrics-only
    long long ticks = 0;
};

/// Extracts the csr/fused median_wall_seconds and num_systems from a
/// BENCH_solvers.json written by this bench (line-per-case layout).
bool read_baseline(const std::string& path, double& median_out,
                   long long& num_systems_out)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    median_out = -1;
    num_systems_out = -1;
    std::string line;
    while (std::getline(in, line)) {
        const auto num_after = [&](const char* key) {
            const auto pos = line.find(key);
            return pos == std::string::npos
                       ? std::string{}
                       : line.substr(pos + std::strlen(key));
        };
        if (const auto v = num_after("\"num_systems\": "); !v.empty()) {
            num_systems_out = std::atoll(v.c_str());
        }
        if (line.find("\"format\": \"csr\"") != std::string::npos &&
            line.find("\"variant\": \"fused\"") != std::string::npos) {
            if (const auto v = num_after("\"median_wall_seconds\": ");
                !v.empty()) {
                median_out = std::atof(v.c_str());
            }
        }
    }
    return median_out > 0 && num_systems_out > 0;
}

void write_json(const std::string& path, bool smoke, size_type num_systems,
                index_type rows, index_type nnz_per_row, int reps,
                const std::vector<HostCase>& host,
                const std::vector<DeviceCase>& devices,
                const TelemetryCase& telemetry,
                const MonitorCase& monitor)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << " for writing\n";
        std::exit(1);
    }
    out.precision(9);
    out << "{\n";
    out << "  \"bench\": \"solvers_regression\",\n";
    out << "  \"workload\": \"bicgstab+jacobi, xgc collision batch\",\n";
    out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    out << "  \"num_systems\": " << num_systems << ",\n";
    out << "  \"rows\": " << rows << ",\n";
    out << "  \"nnz_per_row\": " << nnz_per_row << ",\n";
    out << "  \"repetitions\": " << reps << ",\n";
    out << "  \"host\": [\n";
    for (std::size_t i = 0; i < host.size(); ++i) {
        const auto& c = host[i];
        out << "    {\"format\": \"" << c.format
            << "\", \"variant\": \"" << c.variant
            << "\", \"median_wall_seconds\": " << c.median_wall_seconds
            << ", \"mean_iterations\": " << c.mean_iterations
            << ", \"all_converged\": "
            << (c.all_converged ? "true" : "false") << "}"
            << (i + 1 < host.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"modeled\": [\n";
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const auto& c = devices[i];
        out << "    {\"device\": \"" << c.device
            << "\", \"warp_size\": " << c.warp_size << ", \"format\": \""
            << c.format << "\", \"variant\": \"" << c.variant
            << "\", \"kernel_seconds\": " << c.kernel_seconds
            << ", \"per_iteration_us\": " << c.per_iteration_us << "}"
            << (i + 1 < devices.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"telemetry\": {\"disabled_median_wall_seconds\": "
        << telemetry.disabled_median_wall_seconds
        << ", \"enabled_median_wall_seconds\": "
        << telemetry.enabled_median_wall_seconds
        << ", \"enabled_overhead_percent\": "
        << telemetry.enabled_overhead_percent << "},\n";
    out << "  \"monitor\": {\"tick_ms\": " << monitor.tick_ms
        << ", \"metrics_only_median_wall_seconds\": "
        << monitor.metrics_only_median_wall_seconds
        << ", \"enabled_median_wall_seconds\": "
        << monitor.enabled_median_wall_seconds
        << ", \"overhead_percent\": " << monitor.overhead_percent
        << ", \"ticks\": " << monitor.ticks << "}\n";
    out << "}\n";
}

}  // namespace

int main(int argc, char** argv)
{
    using namespace bsis;

    bool smoke = bench::quick_mode();
    std::string out_path = "BENCH_solvers.json";
    std::string baseline_path;
    std::string metrics_out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics-out") == 0 &&
                   i + 1 < argc) {
            metrics_out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_regression [--smoke] [--out <path>]"
                         " [--baseline <path>] [--metrics-out <path>]\n";
            return 1;
        }
    }
    const size_type num_systems = smoke ? 40 : 1000;
    const int reps = smoke ? 3 : 7;

    bench::XgcBatch batch(num_systems);
    const auto& csr = batch.a;
    const auto ell = to_ell(csr);
    const auto sellp = to_sellp(csr);
    const auto& b = batch.rhs();
    const index_type rows = csr.rows();
    const index_type width = ell.nnz_per_row();

    std::cout << "perf regression: " << num_systems << " systems, " << rows
              << " rows, " << width << " nnz/row, " << reps
              << " repetitions" << (smoke ? " (smoke)" : "") << "\n";

    // Host cases are timed round-robin -- one repetition of every case per
    // sweep -- so machine drift (frequency scaling, background load) hits
    // all variants alike instead of inflating whichever case's block it
    // lands in. An earlier committed baseline showed csr/fused slower than
    // csr/unfused for exactly that reason: each case's repetitions ran
    // back-to-back, so case ordering coupled with drift.
    std::vector<HostRun> runs;
    runs.push_back(make_host_run("csr", csr, b, true, 0, false));
    runs.push_back(make_host_run("csr", csr, b, false, 0, false));
    runs.push_back(make_host_run("ell", ell, b, true, 0, false));
    runs.push_back(make_host_run("ell", ell, b, false, 0, false));
    runs.push_back(make_host_run("sellp", sellp, b, true, 0, false));
    // SIMD batch-lockstep rows: W systems per thread over interleaved
    // layouts, against the scalar fused rows above.
    runs.push_back(make_host_run("csr", csr, b, true, 4, false));
    runs.push_back(make_host_run("csr", csr, b, true, 8, false));
    runs.push_back(make_host_run("ell", ell, b, true, 8, false));
    runs.push_back(make_host_run("sellp", sellp, b, true, 8, false));
    // Pipelined rows: one reduction point per iteration, scalar and
    // lockstep, against the classic fused rows above.
    runs.push_back(make_host_run("csr", csr, b, true, 0, true));
    runs.push_back(make_host_run("csr", csr, b, true, 8, true));
    runs.push_back(make_host_run("ell", ell, b, true, 8, true));

    // One untimed warm-up solve per case so workspace-pool allocation and
    // cache warming do not land in the first sample.
    for (auto& r : runs) {
        r.run();
    }
    for (int rep = 0; rep < reps; ++rep) {
        for (auto& r : runs) {
            const auto result = r.run();
            r.walls.push_back(result.wall_seconds);
            if (rep + 1 == reps) {
                r.c.mean_iterations = mean_iterations(result.log);
                r.c.all_converged = result.log.all_converged();
            }
        }
    }
    std::vector<HostCase> host;
    for (auto& r : runs) {
        r.c.median_wall_seconds = median(r.walls);
        host.push_back(r.c);
    }

    Table table({"format", "variant", "median_wall_s", "mean_iters",
                 "converged"});
    for (const auto& c : host) {
        table.new_row()
            .add(c.format)
            .add(c.variant)
            .add(c.median_wall_seconds, 6)
            .add(c.mean_iterations, 2)
            .add(c.all_converged ? "yes" : "no");
    }

    // Modeled kernel time on the paper's warp-32 and warp-64 devices; the
    // work profile (and thus the fused sweep structure priced by the cost
    // model) comes from the solve itself.
    std::vector<DeviceCase> devices;
    const gpusim::DeviceSpec* specs[] = {&gpusim::v100(), &gpusim::mi100()};
    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;
    for (const auto* spec : specs) {
        SimGpuExecutor exec(*spec);
        for (int f = 0; f < 2; ++f) {
            for (const bool pipelined : {false, true}) {
                settings.pipelined = pipelined;
                BatchVector<real_type> x(csr.num_batch(), rows);
                const auto report =
                    f == 0 ? exec.solve(csr, b, x, settings)
                           : exec.solve(ell, b, x, settings);
                DeviceCase c;
                c.device = spec->name;
                c.warp_size = spec->warp_size;
                c.format = f == 0 ? "csr" : "ell";
                c.variant = pipelined ? "pipelined" : "classic";
                c.kernel_seconds = report.kernel_seconds;
                c.per_iteration_us = report.block_cost.per_iteration_us;
                devices.push_back(c);
            }
        }
    }
    settings.pipelined = false;
    Table modeled({"device", "warp", "format", "variant", "kernel_s",
                   "iter_us"});
    for (const auto& c : devices) {
        modeled.new_row()
            .add(c.device)
            .add(c.warp_size)
            .add(c.format)
            .add(c.variant)
            .add(c.kernel_seconds, 6)
            .add(c.per_iteration_us, 4);
    }

    // Telemetry A/B on the csr/fused configuration: every host case above
    // already measures the compiled-in-but-DISABLED cost (the obs switches
    // default to off); here the same configuration is re-timed with
    // metrics and tracing live. The trace reservoir is kept small -- the
    // overhead of interest is the recording fast path, not the memory.
    TelemetryCase telemetry;
    {
        const auto find_host = [&](const char* fmt, const char* variant) {
            for (const auto& c : host) {
                if (c.format == fmt && c.variant == variant) {
                    return c.median_wall_seconds;
                }
            }
            return 0.0;
        };
        telemetry.disabled_median_wall_seconds =
            find_host("csr", "fused");
        obs::trace().set_shard_capacity(1 << 16);
        obs::set_metrics_enabled(true);
        obs::set_trace_enabled(true);
        telemetry.enabled_median_wall_seconds =
            time_host("csr", true, csr, b, reps).median_wall_seconds;
        obs::set_metrics_enabled(false);
        obs::set_trace_enabled(false);
        // The telemetry-live repetitions just recorded the full
        // attribution of the canonical workload (phase roofline gauges,
        // drift checks); --metrics-out hands that snapshot to
        // tools/solve_report so the perf-regression script can gate on
        // drift alarms.
        if (!metrics_out_path.empty()) {
            obs::sync_trace_dropped_gauge();
            if (obs::metrics().write_json(metrics_out_path)) {
                std::cout << "[metrics snapshot written to "
                          << metrics_out_path << "]\n";
            } else {
                std::cerr << "bench_regression: cannot write metrics to "
                          << metrics_out_path << "\n";
                return 1;
            }
        }
        obs::trace().clear();
        obs::metrics().reset_values();
        if (telemetry.disabled_median_wall_seconds > 0) {
            telemetry.enabled_overhead_percent =
                100.0 * (telemetry.enabled_median_wall_seconds /
                             telemetry.disabled_median_wall_seconds -
                         1.0);
        }
    }

    // Monitor A/B on the same configuration: metrics live (no tracing)
    // with and without the background sampler ticking at its default
    // 250 ms period -- the exact setup `--monitor` enables on the
    // examples. The reps ALTERNATE between the two cases so slow machine
    // drift (frequency scaling, a shared box) lands on both medians
    // equally; the gated number is the sampler's marginal cost on top of
    // metrics recording, which is all `--monitor` adds. It must stay
    // under the 2% envelope (gated below for non-smoke runs).
    MonitorCase monitor_case;
    {
        obs::set_metrics_enabled(true);
        obs::MonitorConfig mc;
        mc.tick_seconds = monitor_case.tick_ms / 1000.0;
        obs::Monitor monitor(obs::metrics(), mc);
        SolverSettings settings;
        settings.solver = SolverType::bicgstab;
        settings.precond = PrecondType::jacobi;
        settings.fused_kernels = true;
        BatchVector<real_type> x(csr.num_batch(), csr.rows());
        solve_batch(csr, b, x, settings);  // untimed warm-up
        // Paired statistics: each rep times the two cases back-to-back
        // and contributes one with/without ratio; the gate uses the
        // median ratio. A median-of-ratios is far less sensitive to slow
        // drift than a ratio-of-medians because both halves of a pair
        // see the same machine state, and the ABBA ordering (which case
        // runs first alternates per rep) cancels any within-pair
        // position bias. Doubled reps since this is the tightest (2%)
        // gate in the bench.
        const int pair_reps = 2 * reps;
        std::vector<double> metrics_only;
        std::vector<double> with_sampler;
        std::vector<double> ratios;
        const auto run_plain = [&] {
            return solve_batch(csr, b, x, settings).wall_seconds;
        };
        const auto run_sampled = [&] {
            monitor.start();
            const double wall = solve_batch(csr, b, x, settings).wall_seconds;
            monitor.stop();
            return wall;
        };
        for (int rep = 0; rep < pair_reps; ++rep) {
            double without = 0;
            double sampled = 0;
            if (rep % 2 == 0) {
                without = run_plain();
                sampled = run_sampled();
            } else {
                sampled = run_sampled();
                without = run_plain();
            }
            metrics_only.push_back(without);
            with_sampler.push_back(sampled);
            ratios.push_back(sampled / without);
        }
        monitor_case.metrics_only_median_wall_seconds =
            median(std::move(metrics_only));
        monitor_case.enabled_median_wall_seconds =
            median(std::move(with_sampler));
        monitor_case.overhead_percent =
            100.0 * (median(std::move(ratios)) - 1.0);
        monitor_case.ticks = monitor.ticks();
        obs::set_metrics_enabled(false);
        obs::metrics().reset_values();
    }

    std::cout << "\n=== host wall time (fused vs unfused kernels)\n\n";
    table.print(std::cout);
    std::cout << "\n=== modeled kernel time (warp 32 / warp 64)\n\n";
    modeled.print(std::cout);
    std::cout << "\ntelemetry overhead (csr/fused): disabled "
              << telemetry.disabled_median_wall_seconds << " s, enabled "
              << telemetry.enabled_median_wall_seconds << " s ("
              << telemetry.enabled_overhead_percent << "% when live)\n";
    std::cout << "monitor overhead (csr/fused, " << monitor_case.tick_ms
              << " ms tick): metrics-only "
              << monitor_case.metrics_only_median_wall_seconds
              << " s, sampler on "
              << monitor_case.enabled_median_wall_seconds << " s ("
              << monitor_case.overhead_percent << "% marginal, "
              << monitor_case.ticks << " ticks)\n";

    write_json(out_path, smoke, num_systems, rows, width, reps, host,
               devices, telemetry, monitor_case);
    std::cout << "\n[json written to " << out_path << "]\n";

    // Overhead gate against the committed baseline: the csr/fused median
    // with telemetry compiled in but DISABLED must stay within 2% of the
    // baseline median. Smoke batches are too small/noisy to gate, and a
    // baseline of a different workload size is not comparable.
    if (!baseline_path.empty() && !smoke) {
        double base_median = 0;
        long long base_systems = 0;
        if (!read_baseline(baseline_path, base_median, base_systems)) {
            std::cerr << "regression bench: cannot read baseline "
                      << baseline_path << "\n";
            return 1;
        }
        if (base_systems != static_cast<long long>(num_systems)) {
            std::cout << "baseline gate skipped: baseline has "
                      << base_systems << " systems, this run "
                      << num_systems << "\n";
        } else {
            const double cur = telemetry.disabled_median_wall_seconds;
            const double ratio = cur / base_median;
            std::cout << "baseline gate (csr/fused, telemetry disabled): "
                      << cur << " s vs baseline " << base_median << " s ("
                      << 100.0 * (ratio - 1.0) << "%)\n";
            if (ratio > 1.02) {
                std::cerr << "regression bench: telemetry-disabled median "
                             "exceeds baseline by more than 2%\n";
                return 1;
            }
        }
    }

    // Monitor overhead gate: the sampler-on median must stay within 2%
    // of the interleaved metrics-only median -- the sampler's marginal
    // cost. Smoke batches are too small/noisy to gate.
    if (!smoke && monitor_case.overhead_percent > 2.0) {
        std::cerr << "regression bench: monitor sampler overhead "
                  << monitor_case.overhead_percent
                  << "% exceeds the 2% envelope\n";
        return 1;
    }

    // Self-check: the regression harness is only useful if the numbers it
    // writes are well-formed.
    for (const auto& c : host) {
        if (!(c.median_wall_seconds > 0) || !c.all_converged) {
            std::cerr << "regression bench: bad host case " << c.format
                      << "/" << c.variant << "\n";
            return 1;
        }
    }
    // Lockstep results must match the scalar path per entry (identical
    // converged flags, iterations within one, residuals to rounding).
    if (!lockstep_matches_scalar(csr, b, 8) ||
        !lockstep_matches_scalar(ell, b, 4)) {
        std::cerr << "regression bench: lockstep/scalar mismatch\n";
        return 1;
    }
    // The pipelined variant must match the classic fused kernels per entry
    // at both the scalar and the lockstep widths.
    if (!pipelined_matches_classic(csr, b, 0) ||
        !pipelined_matches_classic(csr, b, 8) ||
        !pipelined_matches_classic(ell, b, 8)) {
        std::cerr << "regression bench: pipelined/classic mismatch\n";
        return 1;
    }
    // The modeled per-iteration cost must drop for the pipelined traced
    // kernel on every device/format pair (fewer reduction rounds).
    for (const auto& c : devices) {
        if (c.variant != "pipelined") {
            continue;
        }
        for (const auto& classic : devices) {
            if (classic.variant == "classic" && classic.device == c.device &&
                classic.format == c.format &&
                !(c.per_iteration_us < classic.per_iteration_us)) {
                std::cerr << "regression bench: pipelined modeled iteration "
                             "cost does not drop on "
                          << c.device << "/" << c.format << "\n";
                return 1;
            }
        }
    }
    // And the point of the lockstep path is to beat the scalar fused path
    // on the full-size batch (smoke batches are too small/noisy to gate).
    const auto find_case = [&](const char* fmt, const char* variant) {
        for (const auto& c : host) {
            if (c.format == fmt && c.variant == variant) {
                return c.median_wall_seconds;
            }
        }
        return 0.0;
    };
    const double scalar_fused = find_case("csr", "fused");
    const double lockstep_best = std::min(find_case("csr", "lockstep4"),
                                          find_case("csr", "lockstep8"));
    std::cout << "\nlockstep best (csr, W>=4) " << lockstep_best
              << " s vs scalar fused " << scalar_fused << " s  ("
              << (scalar_fused > 0 ? scalar_fused / lockstep_best : 0.0)
              << "x)\n";
    if (!smoke && !(lockstep_best < scalar_fused)) {
        std::cerr << "regression bench: lockstep (W>=4) is not faster than "
                     "the scalar fused path\n";
        return 1;
    }
    // The point of pipelining on the host is fewer, fatter sweeps: the
    // pipelined lockstep8 row must beat classic lockstep8 on the full-size
    // workload (smoke batches are too small/noisy to gate).
    const double classic_l8 = find_case("csr", "lockstep8");
    const double pipelined_l8 = find_case("csr", "pipelined-lockstep8");
    std::cout << "pipelined lockstep8 (csr) " << pipelined_l8
              << " s vs classic lockstep8 " << classic_l8 << " s  ("
              << (pipelined_l8 > 0 ? classic_l8 / pipelined_l8 : 0.0)
              << "x)\n";
    if (!smoke && !(pipelined_l8 < classic_l8)) {
        std::cerr << "regression bench: pipelined lockstep8 is not faster "
                     "than classic lockstep8\n";
        return 1;
    }
    return 0;
}
