file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blockjacobi.dir/bench_ablation_blockjacobi.cpp.o"
  "CMakeFiles/bench_ablation_blockjacobi.dir/bench_ablation_blockjacobi.cpp.o.d"
  "bench_ablation_blockjacobi"
  "bench_ablation_blockjacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blockjacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
