// SIMT sanitizer tests: seeded-bug detection (a reduction with a dropped
// barrier, shrunk allocations, divergent barriers) and the hardened tier
// asserting every shipped traced kernel is violation-free at warp widths
// 32 and 64 across storage configurations.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/solver.hpp"
#include "core/storage_config.hpp"
#include "exec/executor.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"
#include "gpusim/sanitizer.hpp"
#include "gpusim/simt.hpp"
#include "gpusim/simt_kernels.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"

namespace bsis::gpusim {
namespace {

constexpr std::int64_t kib = 1024;

MemoryHierarchy test_mem() { return MemoryHierarchy(128 * kib, 6144 * kib); }

/// A copy of trace_dot's cross-warp reduction with the barrier between the
/// partial stores and the warp-0 combine DELIBERATELY REMOVED -- the classic
/// shared-memory reduction bug the sanitizer exists to catch.
void buggy_dot_no_barrier(BlockTracer& tracer, index_type n,
                          std::uint64_t a_base, std::uint64_t scratch_base)
{
    tracer.set_kernel("buggy_dot");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> addrs;
    std::vector<std::uint64_t> one(1);
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        addrs.clear();
        for (int lane = 0; lane < active; ++lane) {
            addrs.push_back(a_base + static_cast<std::uint64_t>(i0 + lane) *
                                         sizeof(real_type));
        }
        tracer.load_shared(addrs, sizeof(real_type));
        tracer.flop(active, 2);
    }
    for (int w = 0; w < warps; ++w) {
        tracer.set_warp(w);
        one[0] = scratch_base +
                 static_cast<std::uint64_t>(w) * sizeof(real_type);
        tracer.store_shared(one, sizeof(real_type));
    }
    // BUG: missing tracer.barrier() here.
    tracer.set_warp(0);
    addrs.clear();
    for (int w = 0; w < warps; ++w) {
        addrs.push_back(scratch_base +
                        static_cast<std::uint64_t>(w) * sizeof(real_type));
    }
    tracer.load_shared(addrs, sizeof(real_type));
    tracer.barrier();
}

TEST(SanitizerCounters, CountOnlyShimsMatchAddressedOverloads)
{
    // The deprecated count-only shared accessors must produce EXACTLY the
    // counters of the addressed overloads: one warp instruction and one
    // shared access per active lane, counted once (no double counting).
    auto mem_a = test_mem();
    auto mem_b = test_mem();
    BlockTracer counted(64, 32, &mem_a);
    BlockTracer addressed(64, 32, &mem_b);

    counted.load_shared(7);
    counted.store_shared(5);

    std::vector<std::uint64_t> loads(7), stores(5);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        loads[i] = i * sizeof(real_type);
    }
    for (std::size_t i = 0; i < stores.size(); ++i) {
        stores[i] = (64 + i) * sizeof(real_type);
    }
    addressed.load_shared(loads, sizeof(real_type));
    addressed.store_shared(stores, sizeof(real_type));

    EXPECT_EQ(counted.counters().warp_instructions, 2);
    EXPECT_EQ(counted.counters().shared_accesses, 12);
    EXPECT_EQ(counted.counters().warp_instructions,
              addressed.counters().warp_instructions);
    EXPECT_EQ(counted.counters().shared_accesses,
              addressed.counters().shared_accesses);
    EXPECT_EQ(counted.counters().active_lane_sum,
              addressed.counters().active_lane_sum);
}

TEST(SanitizerRaces, MissingBarrierReductionIsFlaggedWithAttribution)
{
    auto mem = test_mem();
    BlockTracer tracer(64, 32, &mem);  // 2 warps
    Sanitizer sanitizer;
    tracer.attach_sanitizer(&sanitizer);
    buggy_dot_no_barrier(tracer, 64, /*a_base=*/0,
                         /*scratch_base=*/64 * sizeof(real_type));

    const auto& report = sanitizer.report();
    ASSERT_FALSE(report.clean());
    ASSERT_GT(report.races, 0);
    ASSERT_FALSE(report.violations.empty());
    const auto& v = report.violations.front();
    // Warp 0 reads warp 1's partial before any barrier ordered the store.
    EXPECT_EQ(v.kind, ViolationKind::write_read_race);
    EXPECT_EQ(v.kernel, "buggy_dot");
    EXPECT_EQ(v.warp, 0);
    EXPECT_EQ(v.other_warp, 1);
    EXPECT_EQ(v.epoch, 0);
    EXPECT_EQ(v.address, (64 + 1) * sizeof(real_type));
    EXPECT_NE(v.describe().find("write-read race"), std::string::npos);
    EXPECT_NE(v.describe().find("buggy_dot"), std::string::npos);
}

TEST(SanitizerRaces, BarrierRestoresHappensBefore)
{
    // The same reduction WITH the barrier is clean: the barrier advances
    // the epoch, so the cross-warp read no longer conflicts.
    auto mem = test_mem();
    BlockTracer tracer(64, 32, &mem);
    Sanitizer sanitizer;
    tracer.attach_sanitizer(&sanitizer);
    std::vector<std::uint64_t> one(1);
    for (int w = 0; w < tracer.num_warps(); ++w) {
        tracer.set_warp(w);
        one[0] = static_cast<std::uint64_t>(w) * sizeof(real_type);
        tracer.store_shared(one, sizeof(real_type));
    }
    tracer.barrier();
    tracer.set_warp(0);
    std::vector<std::uint64_t> addrs{0, sizeof(real_type)};
    tracer.load_shared(addrs, sizeof(real_type));
    EXPECT_TRUE(sanitizer.report().clean());
}

TEST(SanitizerRaces, WriteWriteConflictDetected)
{
    auto mem = test_mem();
    BlockTracer tracer(64, 32, &mem);
    Sanitizer sanitizer;
    tracer.attach_sanitizer(&sanitizer);
    std::vector<std::uint64_t> addr{0};
    tracer.set_warp(0);
    tracer.store_shared(addr, sizeof(real_type));
    tracer.set_warp(1);
    tracer.store_shared(addr, sizeof(real_type));
    const auto& report = sanitizer.report();
    ASSERT_EQ(report.races, 1);
    EXPECT_EQ(report.violations.front().kind,
              ViolationKind::write_write_race);
}

TEST(SanitizerRaces, SameWarpAccessesNeverRace)
{
    // Lockstep execution within a warp orders its accesses by construction.
    auto mem = test_mem();
    BlockTracer tracer(64, 32, &mem);
    Sanitizer sanitizer;
    tracer.attach_sanitizer(&sanitizer);
    std::vector<std::uint64_t> addr{0};
    tracer.set_warp(1);
    tracer.store_shared(addr, sizeof(real_type));
    tracer.store_shared(addr, sizeof(real_type));
    tracer.load_shared(addr, sizeof(real_type));
    EXPECT_TRUE(sanitizer.report().clean());
}

TEST(SanitizerBounds, SharedOverrunFlaggedWhenLimitShrunk)
{
    auto mem = test_mem();
    BlockTracer tracer(64, 32, &mem);
    Sanitizer sanitizer;
    // Pretend the block only configured 32 bytes of shared memory.
    sanitizer.set_shared_limit(32);
    tracer.attach_sanitizer(&sanitizer);
    std::vector<std::uint64_t> addrs;
    for (int lane = 0; lane < 8; ++lane) {
        addrs.push_back(static_cast<std::uint64_t>(lane) *
                        sizeof(real_type));
    }
    tracer.store_shared(addrs, sizeof(real_type));  // lanes 4..7 overrun
    const auto& report = sanitizer.report();
    EXPECT_EQ(report.oob_accesses, 4);
    EXPECT_EQ(report.races, 0);
    ASSERT_FALSE(report.violations.empty());
    EXPECT_EQ(report.violations.front().kind, ViolationKind::shared_oob);
    EXPECT_EQ(report.violations.front().address, 32u);
}

TEST(SanitizerBounds, GlobalAccessOutsideRegisteredBuffersFlagged)
{
    auto mem = test_mem();
    BlockTracer tracer(64, 32, &mem);
    Sanitizer sanitizer;
    const std::uint64_t base = std::uint64_t{1} << 32;
    sanitizer.register_buffer("values", base, 16 * sizeof(real_type));
    tracer.attach_sanitizer(&sanitizer);
    std::vector<std::uint64_t> addrs;
    for (int lane = 0; lane < 4; ++lane) {
        addrs.push_back(base + static_cast<std::uint64_t>(14 + lane) *
                                   sizeof(real_type));
    }
    tracer.load_global(addrs, sizeof(real_type));  // lanes 2,3 overrun
    const auto& report = sanitizer.report();
    EXPECT_EQ(report.oob_accesses, 2);
    EXPECT_EQ(report.violations.front().kind, ViolationKind::global_oob);
}

TEST(SanitizerBounds, UnarmedGlobalCheckIgnoresEverything)
{
    // Without registered buffers the global bounds check is disarmed (the
    // caller opted out), so arbitrary addresses pass.
    auto mem = test_mem();
    BlockTracer tracer(64, 32, &mem);
    Sanitizer sanitizer;
    tracer.attach_sanitizer(&sanitizer);
    std::vector<std::uint64_t> addrs{0xdeadbeef};
    tracer.load_global(addrs, sizeof(real_type));
    EXPECT_TRUE(sanitizer.report().clean());
}

TEST(SanitizerBarriers, DivergentBarrierFlagged)
{
    auto mem = test_mem();
    BlockTracer tracer(64, 32, &mem);
    Sanitizer sanitizer;
    tracer.attach_sanitizer(&sanitizer);
    tracer.barrier(32);  // only one of the two warps arrives
    const auto& report = sanitizer.report();
    EXPECT_EQ(report.barrier_divergences, 1);
    EXPECT_EQ(report.violations.front().kind,
              ViolationKind::barrier_divergence);
    EXPECT_EQ(report.violations.front().address, 32u);
    // The full barrier is fine.
    tracer.barrier();
    EXPECT_EQ(sanitizer.report().barrier_divergences, 1);
}

TEST(SanitizerReportTest, SummariesAndRecordingCap)
{
    Sanitizer sanitizer(/*max_recorded=*/2);
    EXPECT_EQ(sanitizer.report().summary(),
              "sanitizer: clean (0 violations)");
    for (int i = 0; i < 5; ++i) {
        sanitizer.on_barrier(1, 64);
    }
    const auto& report = sanitizer.report();
    EXPECT_EQ(report.total_violations, 5);
    EXPECT_EQ(report.barrier_divergences, 5);
    EXPECT_EQ(report.violations.size(), 2u);  // capped
    EXPECT_NE(report.summary().find("5 violation(s)"), std::string::npos);
}

// ---- hardened tier: every shipped traced kernel must be clean ----------

class CleanKernels : public ::testing::TestWithParam<int> {
protected:
    CleanKernels()
        : pattern_(make_stencil_pattern(8, 8, StencilKind::nine_point)),
          csr_(1, pattern_.rows(), pattern_.row_ptrs, pattern_.col_idxs),
          ell_(to_ell(csr_))
    {}

    int warp_size() const { return GetParam(); }
    int block_threads() const { return 2 * warp_size(); }

    StencilPattern pattern_;
    BatchCsr<real_type> csr_;
    BatchEll<real_type> ell_;
};

TEST_P(CleanKernels, FusedBicgstabAcrossStorageConfigs)
{
    const index_type rows = pattern_.rows();
    const index_type nnz = csr_.nnz_per_entry();
    // Shared capacities chosen so the solver runs all-shared, partially
    // spilled, and fully spilled.
    const size_type full = 64 * kib;
    const size_type partial =
        4 * static_cast<size_type>(rows + warp_size()) * sizeof(real_type);
    for (const size_type capacity : {full, partial, size_type{0}}) {
        for (const int precond_vecs : {1, 0}) {
            const auto config = configure_storage(
                bicgstab_slots(precond_vecs), rows, warp_size(),
                sizeof(real_type), capacity);
            for (const auto format :
                 {TracedFormat::csr, TracedFormat::ell}) {
                // ELL stores rows * nnz_per_row (padded) pattern entries.
                const index_type nnz_stored = format == TracedFormat::csr
                                                  ? nnz
                                                  : ell_.stored_per_entry();
                const auto map = AddressMap::for_system(
                    0, rows, nnz_stored, config.num_global);
                auto mem = test_mem();
                BlockTracer tracer(block_threads(), warp_size(), &mem);
                Sanitizer sanitizer;
                sanitizer.set_shared_limit(
                    traced_shared_bytes(config, tracer.num_warps()));
                register_map_buffers(sanitizer, map, rows, nnz_stored,
                                     format == TracedFormat::csr,
                                     config.num_global);
                tracer.attach_sanitizer(&sanitizer);
                trace_bicgstab(tracer, map, format, pattern_.row_ptrs,
                               pattern_.col_idxs, ell_.col_idxs(), rows,
                               ell_.nnz_per_row(), 3, config);
                EXPECT_TRUE(sanitizer.report().clean())
                    << "warp=" << warp_size() << " capacity=" << capacity
                    << " precond=" << precond_vecs << " format="
                    << (format == TracedFormat::csr ? "csr" : "ell")
                    << "\n"
                    << sanitizer.report().summary() << "\n"
                    << (sanitizer.report().violations.empty()
                            ? ""
                            : sanitizer.report()
                                  .violations.front()
                                  .describe());
            }
        }
    }
}

TEST_P(CleanKernels, StandaloneKernelsClean)
{
    const index_type rows = pattern_.rows();
    // The ELL stored size covers the CSR extents too (padding only adds).
    const index_type nnz = ell_.stored_per_entry();
    const auto map = AddressMap::for_system(0, rows, nnz, 2);
    const auto vec_bytes =
        static_cast<std::uint64_t>(rows) * sizeof(real_type);
    auto mem = test_mem();
    BlockTracer tracer(block_threads(), warp_size(), &mem);
    Sanitizer sanitizer;
    // Two reduction scratch slots per warp: the fused dual-dot publishes
    // two partials per warp.
    sanitizer.set_shared_limit(
        static_cast<size_type>(3 * vec_bytes) +
        tracer.num_warps() * 2 * static_cast<size_type>(sizeof(real_type)));
    register_map_buffers(sanitizer, map, rows, nnz, true, 2);
    tracer.attach_sanitizer(&sanitizer);

    const std::uint64_t x = 0, y = vec_bytes, z = 2 * vec_bytes;
    const std::uint64_t scratch = 3 * vec_bytes;
    trace_spmv_csr(tracer, map, pattern_.row_ptrs, pattern_.col_idxs, x, y);
    trace_spmv_ell(tracer, map, rows, ell_.nnz_per_row(), ell_.col_idxs(),
                   x, y);
    trace_spmv_ell_multi(tracer, map, rows, ell_.nnz_per_row(),
                         ell_.col_idxs(), 4, x, y);
    trace_dot(tracer, rows, x, y, scratch);
    trace_dot(tracer, rows, z, z, scratch);  // norm; scratch reuse is clean
    trace_dot2(tracer, rows, x, x, y, scratch);  // dual-dot, 2 slots/warp
    trace_axpy(tracer, rows, {x, y}, z);
    trace_axpy_nrm2(tracer, rows, {x, y}, z, scratch);
    trace_axpy_nrm2(tracer, rows, {map.b, map.spill_vec(0)},
                    map.spill_vec(1), scratch);  // spilled operands
    trace_axpy(tracer, rows, {map.b, map.spill_vec(0)}, map.spill_vec(1));
    EXPECT_TRUE(sanitizer.report().clean())
        << sanitizer.report().summary();
}

TEST_P(CleanKernels, SanitizerIsObservationOnly)
{
    const index_type rows = pattern_.rows();
    const index_type nnz = csr_.nnz_per_entry();
    const auto config =
        configure_storage(bicgstab_slots(1), rows, warp_size(),
                          sizeof(real_type), 64 * kib);
    const auto map =
        AddressMap::for_system(0, rows, nnz, config.num_global);

    auto run = [&](Sanitizer* sanitizer) {
        auto mem = test_mem();
        BlockTracer tracer(block_threads(), warp_size(), &mem);
        tracer.attach_sanitizer(sanitizer);
        trace_bicgstab(tracer, map, TracedFormat::ell, pattern_.row_ptrs,
                       pattern_.col_idxs, ell_.col_idxs(), rows,
                       ell_.nnz_per_row(), 5, config);
        return tracer.counters();
    };
    Sanitizer sanitizer;
    const auto with = run(&sanitizer);
    const auto without = run(nullptr);
    EXPECT_EQ(with.warp_instructions, without.warp_instructions);
    EXPECT_EQ(with.active_lane_sum, without.active_lane_sum);
    EXPECT_EQ(with.shared_accesses, without.shared_accesses);
    EXPECT_EQ(with.flops, without.flops);
    EXPECT_EQ(with.barriers, without.barriers);
}

INSTANTIATE_TEST_SUITE_P(WarpWidths, CleanKernels, ::testing::Values(32, 64));

// ---- executor-level --sanitize plumbing --------------------------------

TEST(SanitizedExecutor, SolveReportsCleanAndIdenticalSolution)
{
    auto a = make_synthetic_batch(8, 8, StencilKind::nine_point, 3, {});
    const index_type n = a.rows();
    BatchVector<real_type> b(3, n, 1.0);
    SolverSettings settings;
    settings.tolerance = 1e-8;

    for (const auto* device : {&v100(), &mi100()}) {
        SimGpuExecutor plain(*device);
        SimGpuExecutor sanitized(*device);
        sanitized.set_sanitize(true);
        ASSERT_TRUE(sanitized.sanitize());

        BatchVector<real_type> x_plain(3, n, 0.0);
        BatchVector<real_type> x_san(3, n, 0.0);
        const auto r_plain = plain.solve(a, b, x_plain, settings);
        const auto r_san = sanitized.solve(a, b, x_san, settings);

        EXPECT_FALSE(r_plain.sanitized);
        ASSERT_TRUE(r_san.sanitized) << device->name;
        EXPECT_TRUE(r_san.sanitizer.clean())
            << device->name << ": " << r_san.sanitizer.summary();
        for (index_type i = 0; i < n; ++i) {
            EXPECT_EQ(x_plain.entry(0)[i], x_san.entry(0)[i]);
        }
        EXPECT_EQ(r_plain.log.iterations(0), r_san.log.iterations(0));

        // The ELL path as well.
        auto ell = to_ell(a);
        BatchVector<real_type> x_ell(3, n, 0.0);
        const auto r_ell = sanitized.solve(ell, b, x_ell, settings);
        ASSERT_TRUE(r_ell.sanitized);
        EXPECT_TRUE(r_ell.sanitizer.clean())
            << device->name << ": " << r_ell.sanitizer.summary();
    }
}

TEST(SanitizedExecutor, NonBicgstabSolveIsNotTraced)
{
    auto a = make_synthetic_batch(8, 8, StencilKind::nine_point, 1, {});
    BatchVector<real_type> b(1, a.rows(), 1.0);
    BatchVector<real_type> x(1, a.rows(), 0.0);
    SolverSettings settings;
    settings.solver = SolverType::cg;
    settings.tolerance = 1e-8;
    SimGpuExecutor exec(v100());
    exec.set_sanitize(true);
    const auto report = exec.solve(a, b, x, settings);
    EXPECT_FALSE(report.sanitized);
    EXPECT_TRUE(report.sanitizer.clean());
}

}  // namespace
}  // namespace bsis::gpusim
