#include "core/solver.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <exception>

#include "core/bicg.hpp"
#include "core/bicgstab.hpp"
#include "core/chebyshev.hpp"
#include "core/cg.hpp"
#include "core/cgs.hpp"
#include "core/forensics.hpp"
#include "core/gmres.hpp"
#include "core/lockstep.hpp"
#include "core/pipelined.hpp"
#include "core/richardson.hpp"
#include "core/workspace.hpp"
#include "obs/attribution.hpp"
#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bsis {

namespace {

int max_threads()
{
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

int this_thread()
{
#ifdef _OPENMP
    return omp_get_thread_num();
#else
    return 0;
#endif
}

/// Number of workspace slots a composition needs (solver scratch +
/// preconditioner storage).
int workspace_slots(const SolverSettings& s)
{
    const int prec = precond_work_vectors(s.precond, s.block_jacobi_size);
    switch (s.solver) {
    case SolverType::bicgstab:
        return bicgstab_work_vectors + prec;
    case SolverType::bicg:
        return bicg_work_vectors + prec;
    case SolverType::cgs:
        return cgs_work_vectors + prec;
    case SolverType::cg:
        return cg_work_vectors + prec;
    case SolverType::gmres:
        return gmres_work_vectors(s.gmres_restart) + prec;
    case SolverType::richardson:
        return richardson_work_vectors + prec;
    case SolverType::chebyshev:
        // +3 scratch slots for the Gershgorin bound computation.
        return chebyshev_work_vectors + 3 + prec;
    }
    return 0;
}

/// Per-calling-thread solver scratch, persistent across solve_batch calls
/// so repeated solves (Picard loops, bench repetitions) stop reallocating.
/// thread_local (rather than a global pool) keeps concurrent solve_batch
/// calls from different host threads isolated; the OpenMP threads of each
/// call's parallel region index into their caller's pool.
struct SolveScratch {
    WorkspacePool workspaces;
    /// Separate pool for the lockstep path: its slots are rows * W long,
    /// and growing the scalar pool's slot length would trip the scalar
    /// kernels' slot-length asserts.
    WorkspacePool lockstep_workspaces;
    std::vector<GmresScratch> gmres;
};

SolveScratch& solve_scratch()
{
    thread_local SolveScratch scratch;
    return scratch;
}

/// Formats the lockstep path can ELL-ize into the interleaved slab
/// (shared-pattern sparse formats; BatchDense has no shared pattern).
template <typename BatchMatrix>
inline constexpr bool lockstep_supported_format =
    std::is_same_v<BatchMatrix, BatchCsr<real_type>> ||
    std::is_same_v<BatchMatrix, BatchEll<real_type>> ||
    std::is_same_v<BatchMatrix, BatchSellp<real_type>>;

/// Rounds a requested lockstep width down to a supported power of two
/// (the instantiated kernel widths); < 2 selects the scalar path.
int effective_lockstep_width(int requested)
{
    for (const int w : {16, 8, 4, 2}) {
        if (requested >= w) {
            return w;
        }
    }
    return 0;
}

/// Dispatches the runtime solver choice to the compile-time lockstep
/// kernel for one width.
template <int W, bool UseJacobi, typename BatchMatrix, typename Stop>
void run_lockstep_width(const BatchMatrix& a, const BatchVector<real_type>& b,
                        BatchVector<real_type>& x,
                        const SolverSettings& settings, const Stop& stop,
                        BatchLog& log, WorkspacePool& pool,
                        obs::ConvergenceHistory* history)
{
    if (settings.solver == SolverType::cg) {
        if (settings.pipelined) {
            run_batch_lockstep<W, UseJacobi, true, true>(
                a, b, x, !settings.use_initial_guess, stop,
                settings.max_iterations, pool, log, history);
        } else {
            run_batch_lockstep<W, UseJacobi, true, false>(
                a, b, x, !settings.use_initial_guess, stop,
                settings.max_iterations, pool, log, history);
        }
    } else {
        if (settings.pipelined) {
            run_batch_lockstep<W, UseJacobi, false, true>(
                a, b, x, !settings.use_initial_guess, stop,
                settings.max_iterations, pool, log, history);
        } else {
            run_batch_lockstep<W, UseJacobi, false, false>(
                a, b, x, !settings.use_initial_guess, stop,
                settings.max_iterations, pool, log, history);
        }
    }
}

/// Runs the batch on the SIMD lockstep path when the composition supports
/// it; returns false (without touching x or the log) when the scalar path
/// must be used instead.
template <typename BatchMatrix, typename Prec, typename Stop>
bool try_run_lockstep(const BatchMatrix& a, const BatchVector<real_type>& b,
                      BatchVector<real_type>& x,
                      const SolverSettings& settings, const Stop& stop,
                      BatchLog& log, obs::ConvergenceHistory* history)
{
    if constexpr (!lockstep_supported_format<BatchMatrix> ||
                  std::is_same_v<Prec, BlockJacobiPrec>) {
        return false;
    } else {
        if (settings.solver != SolverType::bicgstab &&
            settings.solver != SolverType::cg) {
            return false;
        }
        if (!settings.fused_kernels) {
            return false;
        }
        const int w = effective_lockstep_width(settings.lockstep_width);
        if (w == 0) {
            return false;
        }
        constexpr bool use_jacobi = std::is_same_v<Prec, JacobiPrec>;
        auto& pool = solve_scratch().lockstep_workspaces;
        switch (w) {
        case 2:
            run_lockstep_width<2, use_jacobi>(a, b, x, settings, stop, log,
                                              pool, history);
            break;
        case 4:
            run_lockstep_width<4, use_jacobi>(a, b, x, settings, stop, log,
                                              pool, history);
            break;
        case 8:
            run_lockstep_width<8, use_jacobi>(a, b, x, settings, stop, log,
                                              pool, history);
            break;
        default:
            run_lockstep_width<16, use_jacobi>(a, b, x, settings, stop, log,
                                               pool, history);
            break;
        }
        return true;
    }
}

/// Runs the fully composed kernel over the batch. Prec and Stop are
/// compile-time parameters here, exactly as in the paper's fused kernel.
template <typename BatchMatrix, typename Prec, typename Stop>
void run_batch(const BatchMatrix& a, const BatchVector<real_type>& b,
               BatchVector<real_type>& x, const SolverSettings& settings,
               const Stop& stop, BatchLog& log,
               obs::ConvergenceHistory* history)
{
    if (try_run_lockstep<BatchMatrix, Prec>(a, b, x, settings, stop, log,
                                            history)) {
        return;
    }
    const size_type nbatch = a.num_batch();
    const index_type n = x.len();
    const int solver_slots = workspace_slots(settings);
    const int nthreads = max_threads();

    auto& scratch = solve_scratch();
    scratch.workspaces.require(nthreads, n, solver_slots);
    if (static_cast<int>(scratch.gmres.size()) < nthreads) {
        scratch.gmres.resize(static_cast<std::size_t>(nthreads));
    }
    auto& workspaces = scratch.workspaces;
    auto& gmres_scratch = scratch.gmres;

    // Exceptions cannot unwind through an OpenMP region: capture the
    // first one and rethrow it after the loop.
    std::exception_ptr failure;
    // Per-thread result staging (merged below): recording directly into
    // the shared log from inside the loop makes adjacent entries' writes
    // false-share cache lines across threads. Chunked dynamic scheduling
    // amortizes the per-entry scheduler handshake over 8 entries while
    // keeping the load balancing that varying iteration counts need.
    BatchLogStage stage(nthreads);
#pragma omp parallel for schedule(dynamic, 8)
    for (size_type i = 0; i < nbatch; ++i) {
        try {
        obs::ScopedSpan entry_span("solve_entry", "solver",
                                   static_cast<std::int64_t>(i));
        auto& ws = workspaces.at(this_thread());
        const auto av = a.entry(i);
        const auto bv = b.entry(i);
        auto xv = x.entry(i);
        if (!settings.use_initial_guess) {
            blas::fill(xv, real_type{0});
        }
        // Preconditioner storage lives in the tail slots of the workspace
        // (contiguous, so a multi-slot strip is one view).
        const int prec_vecs =
            precond_work_vectors(settings.precond, settings.block_jacobi_size);
        const int prec_slot_base = solver_slots - prec_vecs;
        Prec prec = [&] {
            if constexpr (std::is_same_v<Prec, BlockJacobiPrec>) {
                return BlockJacobiPrec(settings.block_jacobi_size);
            } else {
                return Prec{};
            }
        }();
        {
            obs::ScopedSpan setup_span("precond_setup", "solver");
            obs::PhaseTimer setup_timer(obs::Phase::precond);
            if constexpr (std::is_same_v<Prec, JacobiPrec>) {
                prec.generate(av, ws.slot(prec_slot_base));
            } else if constexpr (std::is_same_v<Prec, BlockJacobiPrec>) {
                prec.generate(av, VecView<real_type>{
                                      ws.slot(prec_slot_base).data,
                                      ws.length() * prec_vecs});
            } else {
                (void)prec_slot_base;
                prec.generate(av, VecView<real_type>{});
            }
        }

        // Residual trajectory staging; every kernel exposes a history
        // parameter, so all solvers record when the caller asked for one.
        std::vector<real_type> traj;
        std::vector<real_type>* traj_ptr = history != nullptr ? &traj
                                                              : nullptr;

        EntryResult result;
        switch (settings.solver) {
        case SolverType::bicgstab:
            result = !settings.fused_kernels
                         ? bicgstab_kernel_unfused(av, bv, xv, prec, stop,
                                                   settings.max_iterations,
                                                   ws, 0, traj_ptr)
                     : settings.pipelined
                         ? pipelined_bicgstab_kernel(
                               av, bv, xv, prec, stop,
                               settings.max_iterations, ws, 0, traj_ptr)
                         : bicgstab_kernel(av, bv, xv, prec, stop,
                                           settings.max_iterations, ws, 0,
                                           traj_ptr);
            break;
        case SolverType::bicg:
            result = bicg_kernel(av, bv, xv, prec, stop,
                                 settings.max_iterations, ws, 0, traj_ptr);
            break;
        case SolverType::cgs:
            result = cgs_kernel(av, bv, xv, prec, stop,
                                settings.max_iterations, ws, 0, traj_ptr);
            break;
        case SolverType::cg:
            result = settings.fused_kernels && settings.pipelined
                         ? pipelined_cg_kernel(av, bv, xv, prec, stop,
                                               settings.max_iterations, ws,
                                               0, traj_ptr)
                         : cg_kernel(av, bv, xv, prec, stop,
                                     settings.max_iterations, ws, 0,
                                     traj_ptr);
            break;
        case SolverType::gmres:
            result = gmres_kernel(
                av, bv, xv, prec, stop, settings.max_iterations,
                settings.gmres_restart, ws,
                gmres_scratch[static_cast<std::size_t>(this_thread())], 0,
                traj_ptr);
            break;
        case SolverType::richardson:
            result = richardson_kernel(av, bv, xv, prec, stop,
                                       settings.max_iterations, ws,
                                       settings.richardson_omega, 0,
                                       traj_ptr);
            break;
        case SolverType::chebyshev: {
            const auto bounds = gershgorin_bounds(
                av, ws, chebyshev_work_vectors,
                settings.precond != PrecondType::identity);
            result = chebyshev_kernel(av, bv, xv, prec, stop,
                                      settings.max_iterations, bounds, ws, 0,
                                      traj_ptr);
            break;
        }
        }
        stage.record(this_thread(), i, result.iterations,
                     result.residual_norm, result.converged,
                     result.failure);
        if (history != nullptr) {
            for (std::size_t k = 0; k < traj.size(); ++k) {
                history->record(i, static_cast<int>(k), traj[k]);
            }
            history->finalize(i, result.iterations, result.residual_norm,
                              result.converged);
        }
        } catch (...) {
#pragma omp critical(bsis_solver_failure)
            {
                if (!failure) {
                    failure = std::current_exception();
                }
            }
        }
    }
    stage.merge_into(log);
    if (failure) {
        std::rethrow_exception(failure);
    }
}

template <typename BatchMatrix, typename Prec>
void dispatch_stop(const BatchMatrix& a, const BatchVector<real_type>& b,
                   BatchVector<real_type>& x, const SolverSettings& settings,
                   BatchLog& log, obs::ConvergenceHistory* history)
{
    switch (settings.stop) {
    case StopType::abs_residual:
        run_batch<BatchMatrix, Prec>(a, b, x, settings,
                                     AbsResidualStop{settings.tolerance},
                                     log, history);
        break;
    case StopType::rel_residual:
        run_batch<BatchMatrix, Prec>(a, b, x, settings,
                                     RelResidualStop{settings.tolerance},
                                     log, history);
        break;
    }
}

/// Ledger view of a batch matrix's storage (shape + format), feeding the
/// attribution byte/flop accounting.
template <typename BatchMatrix>
obs::LedgerShape ledger_shape(const BatchMatrix& a)
{
    obs::LedgerShape shape;
    shape.rows = a.rows();
    if constexpr (std::is_same_v<BatchMatrix, BatchCsr<real_type>>) {
        shape.stored_nnz = a.nnz_per_entry();
        shape.nnz_per_row = a.max_nnz_per_row();
    } else if constexpr (std::is_same_v<BatchMatrix, BatchEll<real_type>>) {
        shape.stored_nnz = a.stored_per_entry();
        shape.nnz_per_row = a.nnz_per_row();
    } else if constexpr (std::is_same_v<BatchMatrix,
                                        BatchSellp<real_type>>) {
        shape.stored_nnz = a.stored_per_entry();
        shape.nnz_per_row =
            a.rows() > 0 ? a.stored_per_entry() / a.rows() : 0;
    } else {
        shape.stored_nnz = a.rows() * a.rows();
        shape.nnz_per_row = a.rows();
    }
    return shape;
}

template <typename BatchMatrix>
constexpr obs::LedgerFormat ledger_format()
{
    if constexpr (std::is_same_v<BatchMatrix, BatchCsr<real_type>>) {
        return obs::LedgerFormat::csr;
    } else if constexpr (std::is_same_v<BatchMatrix, BatchEll<real_type>>) {
        return obs::LedgerFormat::ell;
    } else if constexpr (std::is_same_v<BatchMatrix,
                                        BatchSellp<real_type>>) {
        return obs::LedgerFormat::sellp;
    } else {
        return obs::LedgerFormat::dense;
    }
}

/// Joins the measured phase-time delta of this solve with the work ledger:
/// per-phase achieved-GB/s / GF/s / roofline gauges, the drift check
/// against the host roofline model, and the continuous-profiler window.
void record_phase_metrics(obs::MetricsRegistry& m,
                          const obs::WorkLedger& ledger,
                          const obs::PhaseTotals& phases)
{
    const auto peaks = obs::host_roofline();
    const auto attribution = obs::attribute_phases(ledger, phases, peaks);
    obs::record_phase_attribution(m, "solve", attribution);
    m.set_named("solve.roofline.peak_gbps", peaks.gbps);
    m.set_named("solve.roofline.peak_gflops", peaks.gflops);

    // Drift: measured thread-CPU seconds per phase vs the roofline floor
    // the ledger implies (only the SHARES are compared, so the model's
    // absolute bandwidth assumption cancels out). CPU rather than wall
    // time: a scheduler preemption landing inside one span rewrites the
    // wall-share mix of a millisecond-scale solve, while the CPU shares
    // stay put -- bandwidth attribution above keeps wall time, drift
    // keeps its meaning on a loaded machine. Phase::other has no model
    // and stays zero on both sides.
    double measured[obs::phase_count] = {};
    double modeled[obs::phase_count] = {};
    for (int p = 0; p < obs::phase_count; ++p) {
        if (p == static_cast<int>(obs::Phase::other)) {
            continue;
        }
        measured[p] = phases.cpu_seconds[p];
        const auto& w = ledger.phase[p];
        const double mem_s =
            peaks.gbps > 0 ? w.bytes() / (peaks.gbps * 1e9) : 0.0;
        const double flop_s =
            peaks.gflops > 0 ? w.flops / (peaks.gflops * 1e9) : 0.0;
        modeled[p] = std::max(mem_s, flop_s);
    }
    const auto drift =
        obs::detect_drift(measured, modeled, obs::drift_config());
    obs::record_drift(m, "solve", drift);

    obs::ProfileWindow::Sample sample;
    for (const auto& a : attribution) {
        const int p = static_cast<int>(a.phase);
        sample.seconds[p] = a.seconds;
        sample.gbps[p] = a.gbps;
    }
    obs::profile_window().push(sample);
    obs::profile_window().export_gauges(m);
}

/// Post-solve metrics recording (cold path; called once per batch).
void record_solve_metrics(const BatchSolveResult& result,
                          const obs::WorkLedger& ledger,
                          const obs::PhaseTotals& phases)
{
    auto& m = obs::metrics();
    m.add_named("solve.batches");
    m.add_named("solve.systems", result.log.num_batch());
    m.add_named("solve.iterations", result.log.total_iterations());
    std::int64_t unconverged = 0;
    const auto iters_id = m.histogram("solve.system_iterations");
    for (size_type i = 0; i < result.log.num_batch(); ++i) {
        m.observe(iters_id, static_cast<double>(result.log.iterations(i)));
        unconverged += result.log.converged(i) ? 0 : 1;
    }
    m.add_named("solve.unconverged", unconverged);
    // Per-class failure tallies. Every class counter is always registered
    // (even at zero) so dashboards see a stable metric set.
    const FailureCounts fails = result.log.failure_counts();
    m.add_named("solve.fail.max_iters",
                fails[static_cast<std::size_t>(FailureClass::max_iters)]);
    m.add_named("solve.fail.breakdown_rho",
                fails[static_cast<std::size_t>(FailureClass::breakdown_rho)]);
    m.add_named(
        "solve.fail.breakdown_omega",
        fails[static_cast<std::size_t>(FailureClass::breakdown_omega)]);
    m.add_named("solve.fail.stagnated",
                fails[static_cast<std::size_t>(FailureClass::stagnated)]);
    m.add_named("solve.fail.non_finite",
                fails[static_cast<std::size_t>(FailureClass::non_finite)]);
    m.observe_named("solve.wall_seconds", result.wall_seconds);
    m.set_named("solve.last_wall_seconds", result.wall_seconds);
    m.set_named("solve.simd_lanes",
                static_cast<double>(result.work.simd_lanes));
    record_phase_metrics(m, ledger, phases);
    obs::sync_trace_dropped_gauge();
}

/// Dumps every non-converged system of the finished solve to the armed
/// recorder. Cold path: runs once per batch, after the parallel region.
/// `x0` is the initial guess the solve actually used (zeros unless the
/// caller warm-started).
template <typename BatchMatrix>
void capture_failures(const BatchMatrix& a, const BatchVector<real_type>& b,
                      const BatchVector<real_type>& x0,
                      const SolverSettings& settings,
                      const BatchSolveResult& result)
{
    auto* recorder = settings.flight_recorder;
    for (size_type i = 0; i < result.log.num_batch(); ++i) {
        if (result.log.converged(i)) {
            continue;
        }
        const auto meta = make_bundle_meta(
            settings, i, result.log,
            result.history.active() ? &result.history : nullptr);
        recorder->capture(to_coo(a.entry(i)), b.entry(i), x0.entry(i),
                          meta);
    }
}

}  // namespace

template <typename BatchMatrix>
BatchSolveResult solve_batch(const BatchMatrix& a,
                             const BatchVector<real_type>& b,
                             BatchVector<real_type>& x,
                             const SolverSettings& settings)
{
    BSIS_ENSURE_DIMS(a.num_batch() == b.num_batch() &&
                         a.num_batch() == x.num_batch(),
                     "matrix/rhs/solution batch counts must match");
    BSIS_ENSURE_DIMS(a.rows() == b.len() && a.rows() == x.len(),
                     "matrix order and vector lengths must match");
    BSIS_ENSURE_ARG(settings.max_iterations >= 0,
                    "negative iteration limit");
    BSIS_ENSURE_ARG(settings.tolerance >= 0, "negative tolerance");

    if (settings.trace_shard_capacity > 0) {
        obs::trace().set_shard_capacity(
            static_cast<std::size_t>(settings.trace_shard_capacity));
    }
    if (obs::events_enabled()) {
        obs::events().emit(
            "solve.start",
            {obs::field("systems",
                        static_cast<std::int64_t>(a.num_batch())),
             obs::field("rows", static_cast<std::int64_t>(a.rows())),
             obs::field("solver", solver_name(settings.solver)),
             obs::field("precond", precond_name(settings.precond)),
             obs::field("lockstep_width", settings.lockstep_width),
             obs::field("pipelined", settings.pipelined)});
    }

    BatchSolveResult result;
    result.log = BatchLog(a.num_batch());
    result.work = work_profile(settings.solver, settings.precond,
                               settings.gmres_restart,
                               settings.block_jacobi_size,
                               settings.fused_kernels,
                               settings.fused_kernels && settings.pipelined);
    // Price the SIMD lanes the lockstep path will actually use (the same
    // eligibility checks as try_run_lockstep, evaluated up front so the
    // cost model sees the width even before the solve runs).
    if (lockstep_supported_format<BatchMatrix> &&
        (settings.solver == SolverType::bicgstab ||
         settings.solver == SolverType::cg) &&
        settings.precond != PrecondType::block_jacobi &&
        settings.fused_kernels) {
        const int w = effective_lockstep_width(settings.lockstep_width);
        result.work.simd_lanes = w > 0 ? w : 1;
    }
    // The flight recorder wants the failing systems' residual
    // trajectories in the bundle sidecar, so an armed recorder forces the
    // history on even when the caller did not ask for it.
    const bool want_history =
        settings.record_convergence || settings.flight_recorder != nullptr;
    if (want_history) {
        result.history.reset(a.num_batch(), settings.convergence_capacity);
    }
    obs::ConvergenceHistory* history = want_history ? &result.history
                                                    : nullptr;
    // Snapshot the initial guess before the solve overwrites x: the bundle
    // must reproduce the exact starting state. Zeros unless warm-started
    // (run_batch zeroes x per entry in that case).
    BatchVector<real_type> x0_snapshot;
    if (settings.flight_recorder != nullptr) {
        x0_snapshot = settings.use_initial_guess
                          ? x
                          : BatchVector<real_type>(a.num_batch(), x.len());
    }
    obs::ScopedSpan batch_span("solve_batch", "solver",
                               static_cast<std::int64_t>(a.num_batch()));
    // Phase-time delta bracket for the attribution join. The global
    // accumulator tallies every thread, so the delta is attributable to
    // THIS solve as long as solves are not concurrent (the documented
    // assumption of per-solve attribution; concurrent solves only blur
    // the split, never the totals).
    obs::PhaseTotals phases_before;
    const bool attribute = obs::metrics_enabled();
    if (attribute) {
        phases_before = obs::phase_times().totals();
    }
    Timer timer;
    switch (settings.precond) {
    case PrecondType::identity:
        dispatch_stop<BatchMatrix, IdentityPrec>(a, b, x, settings,
                                                 result.log, history);
        break;
    case PrecondType::jacobi:
        dispatch_stop<BatchMatrix, JacobiPrec>(a, b, x, settings,
                                               result.log, history);
        break;
    case PrecondType::block_jacobi:
        dispatch_stop<BatchMatrix, BlockJacobiPrec>(a, b, x, settings,
                                                    result.log, history);
        break;
    }
    result.wall_seconds = timer.seconds();
    if (attribute && obs::metrics_enabled()) {
        const obs::PhaseTotals phase_delta =
            obs::phase_times().totals() - phases_before;
        const auto ledger = obs::work_ledger(
            result.work, ledger_shape(a), ledger_format<BatchMatrix>(),
            static_cast<double>(result.log.total_iterations()),
            static_cast<double>(a.num_batch()));
        record_solve_metrics(result, ledger, phase_delta);
    }
    if (settings.flight_recorder != nullptr) {
        capture_failures(a, b, x0_snapshot, settings, result);
    }
    if (obs::events_enabled()) {
        std::int64_t unconverged = 0;
        for (size_type i = 0; i < result.log.num_batch(); ++i) {
            unconverged += result.log.converged(i) ? 0 : 1;
        }
        obs::events().emit(
            "solve.end",
            {obs::field("systems",
                        static_cast<std::int64_t>(a.num_batch())),
             obs::field("wall_seconds", result.wall_seconds),
             obs::field("iterations", result.log.total_iterations()),
             obs::field("unconverged", unconverged)});
    }
    return result;
}

template BatchSolveResult solve_batch<BatchCsr<real_type>>(
    const BatchCsr<real_type>&, const BatchVector<real_type>&,
    BatchVector<real_type>&, const SolverSettings&);
template BatchSolveResult solve_batch<BatchEll<real_type>>(
    const BatchEll<real_type>&, const BatchVector<real_type>&,
    BatchVector<real_type>&, const SolverSettings&);
template BatchSolveResult solve_batch<BatchSellp<real_type>>(
    const BatchSellp<real_type>&, const BatchVector<real_type>&,
    BatchVector<real_type>&, const SolverSettings&);
template BatchSolveResult solve_batch<BatchDense<real_type>>(
    const BatchDense<real_type>&, const BatchVector<real_type>&,
    BatchVector<real_type>&, const SolverSettings&);

}  // namespace bsis
