# Empty compiler generated dependencies file for test_xgc.
# This may be replaced when dependencies are built.
