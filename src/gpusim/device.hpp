// Device descriptions for the GPU performance model.
//
// Table I of the paper, plus the microarchitectural parameters the cost
// model needs (warp width, shared-memory capacity, synchronization
// latency, launch overhead, host link bandwidth). Since this environment
// has no GPU, these specs drive a simulator: kernels execute functionally
// on the host and the model predicts device time (see DESIGN.md,
// "Substitutions").
#pragma once

#include <string>

#include "util/types.hpp"

namespace bsis::gpusim {

/// How a device's block scheduler dispatches thread blocks to compute
/// units. The paper observes wave-quantized steps at multiples of 120 on
/// the MI100 and a smooth curve on the V100 (Section V).
enum class SchedulingPolicy {
    wave_quantized,  ///< a full wave retires before the next is issued
    greedy_dynamic   ///< a block launches as soon as any CU has a free slot
};

/// One GPU of Table I plus model parameters.
struct DeviceSpec {
    std::string name;
    double peak_fp64_tflops = 0;
    double mem_bw_gbps = 0;        ///< main memory bandwidth
    double l1_shared_kib_per_cu = 0;  ///< combined L1 + shared per CU
    double max_shared_kib_per_block = 0;  ///< configurable shared memory
    double l2_mib = 0;
    int num_cu = 0;                ///< SMs (NVIDIA) / CUs (AMD)
    int warp_size = 32;
    int max_threads_per_cu = 2048;
    int max_blocks_per_cu = 32;
    SchedulingPolicy scheduling = SchedulingPolicy::greedy_dynamic;

    // --- cost-model calibration parameters ---
    double launch_overhead_us = 8.0;  ///< one fused-kernel launch
    /// Latency of one block-wide reduction (shared-memory tree + barrier
    /// synchronizations). Dominates iteration time for ~1000-row systems.
    double reduction_latency_us = 0.0;
    /// Barrier-only latency (between fused solver components).
    double barrier_latency_us = 0.0;
    /// Fraction of per-CU FP64 peak a single block's streaming vector ops
    /// actually achieve (issue limits, no ILP across systems).
    double stream_efficiency = 0.25;
    /// Exposed latency added to one streaming pass over a vector that
    /// lives in GLOBAL memory instead of shared (dependent L2/DRAM access
    /// chains the fused kernel cannot hide; the cost the Section IV-D
    /// placement removes).
    double spill_latency_us = 0.8;
    /// L1/shared bandwidth per CU as a multiple of its DRAM share.
    double l1_bw_ratio = 10.0;
    /// L2 bandwidth as a multiple of DRAM bandwidth.
    double l2_bw_ratio = 3.0;
    /// Host link (PCIe / NVLink) bandwidth for H2D/D2H transfers.
    double link_bw_gbps = 16.0;
    double link_latency_us = 10.0;
    /// Effective fraction of device peak the batched sparse direct QR
    /// reaches (calibrates the cuSolver csrqrsvBatched stand-in).
    double direct_qr_efficiency = 0.015;

    double per_cu_gflops() const
    {
        return peak_fp64_tflops * 1e3 / num_cu;
    }

    double per_cu_dram_gbps() const { return mem_bw_gbps / num_cu; }
};

/// NVIDIA V100-16GB (Volta), as on Summit.
const DeviceSpec& v100();
/// NVIDIA A100-40GB (Ampere), as on Perlmutter/HoreKa.
const DeviceSpec& a100();
/// AMD MI100-32GB (CDNA).
const DeviceSpec& mi100();

/// All three GPUs of the paper's evaluation.
const DeviceSpec* all_gpus(int& count);

/// NVIDIA H100-SXM5 (Hopper) -- projection device for the paper's
/// "exascale oriented heterogeneous architectures" outlook.
const DeviceSpec& h100();
/// AMD MI250X, one GCD (Frontier's building block) -- projection device.
const DeviceSpec& mi250x_gcd();

/// The projection devices (not part of the paper's measured set).
const DeviceSpec* projection_gpus(int& count);

/// The CPU baseline node: dual-socket Intel Xeon Gold 6148 ("Skylake"),
/// 40 cores, of which the proxy app uses 38 for the batch solve.
struct CpuSpec {
    std::string name;
    int total_cores = 40;
    int cores_used = 38;
    double peak_fp64_gflops_per_core = 50.0;
    /// Fraction of per-core peak the (unblocked) banded LU achieves.
    double banded_lu_efficiency = 0.011;
    double mem_bw_gbps = 256.0;  ///< two sockets of Table I's 128 GB/s
    /// Fraction of the ideal W-fold speedup one extra batch-lockstep SIMD
    /// lane contributes on the iterative path (vector-width limits,
    /// gather-free but wider working set; calibrated against the host
    /// lockstep bench). Effective multiplier for W lanes is
    /// 1 + (W - 1) * simd_lane_efficiency.
    double simd_lane_efficiency = 0.35;
};

const CpuSpec& skylake_node();

}  // namespace bsis::gpusim
