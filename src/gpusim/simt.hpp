// SIMT execution tracer.
//
// Kernels in simt_kernels.cpp are written against this tracer the way a
// CUDA/HIP kernel is written against a thread block: warp-level
// instructions with explicit active-lane masks and per-lane memory
// addresses. The tracer feeds global accesses through the coalescing unit
// and cache hierarchy and accumulates the counters NVIDIA Nsight Compute /
// AMD rocprof report -- warp (wavefront) utilization and L1/L2 hit rates --
// which reproduces Table II of the paper.
//
// A Sanitizer (gpusim/sanitizer.hpp) can be attached to observe addressed
// shared/global accesses, warp attribution, and barriers for race,
// divergence, and bounds checking; attaching one never changes counters or
// cache behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/cache.hpp"
#include "util/types.hpp"

namespace bsis::gpusim {

class Sanitizer;

/// Profiler counters of one traced block execution.
struct SimtCounters {
    std::int64_t warp_instructions = 0;
    std::int64_t active_lane_sum = 0;
    std::int64_t shared_accesses = 0;
    std::int64_t flops = 0;
    std::int64_t barriers = 0;

    /// Mean active lanes per issued warp instruction / warp width --
    /// the "wavefront/warp use %" column of Table II.
    double warp_utilization(int warp_size) const
    {
        return warp_instructions == 0
                   ? 0.0
                   : static_cast<double>(active_lane_sum) /
                         (static_cast<double>(warp_instructions) *
                          warp_size);
    }

    SimtCounters& operator+=(const SimtCounters& other)
    {
        warp_instructions += other.warp_instructions;
        active_lane_sum += other.active_lane_sum;
        shared_accesses += other.shared_accesses;
        flops += other.flops;
        barriers += other.barriers;
        return *this;
    }
};

/// One simulated thread block bound to a CU's memory hierarchy.
class BlockTracer {
public:
    BlockTracer(int block_threads, int warp_size, MemoryHierarchy* mem);

    int block_threads() const { return block_threads_; }
    int warp_size() const { return warp_size_; }
    int num_warps() const { return num_warps_; }

    /// Attaches (or detaches, with nullptr) a sanitizer. Starts a fresh
    /// shadow block on the sanitizer; its report keeps accumulating.
    void attach_sanitizer(Sanitizer* sanitizer);
    Sanitizer* sanitizer() const { return sanitizer_; }

    /// Sets the warp issuing the subsequent instructions (sanitizer
    /// attribution; counters are warp-agnostic). Kernels set this as they
    /// walk their per-warp work decomposition.
    void set_warp(int warp);
    int current_warp() const { return warp_; }

    /// Labels subsequent sanitizer findings with the kernel's name.
    void set_kernel(const char* name);

    /// Generic ALU/shuffle warp instruction.
    void instr(int active_lanes);

    /// Arithmetic warp instruction contributing `per_lane` flops per lane.
    void flop(int active_lanes, int per_lane = 1);

    /// One warp global load: `lane_addrs` holds the byte address touched by
    /// each ACTIVE lane; inactive lanes are simply absent.
    void load_global(const std::vector<std::uint64_t>& lane_addrs,
                     int bytes_per_lane);
    void store_global(const std::vector<std::uint64_t>& lane_addrs,
                      int bytes_per_lane);

    /// Addressed shared-memory access: `lane_addrs` holds the byte OFFSET
    /// into the block's shared allocation touched by each active lane (no
    /// cache model: LDS/shared is explicitly managed). Feeds the sanitizer
    /// when one is attached.
    void load_shared(const std::vector<std::uint64_t>& lane_addrs,
                     int bytes_per_lane);
    void store_shared(const std::vector<std::uint64_t>& lane_addrs,
                      int bytes_per_lane);

    /// DEPRECATED count-only shared access shims: counter semantics are
    /// identical to the addressed overloads (one warp instruction,
    /// `active_lanes` shared accesses) but carry no addresses, so the
    /// sanitizer cannot check them. Kept for callers that only need
    /// counters; new kernels must use the addressed overloads.
    void load_shared(int active_lanes);
    void store_shared(int active_lanes);

    /// Block-wide barrier (__syncthreads / s_barrier) with every thread
    /// participating.
    void barrier();

    /// Barrier reached by only `active_threads` of the block's threads --
    /// flagged as barrier divergence by an attached sanitizer when fewer
    /// than block_threads() arrive.
    void barrier(int active_threads);

    const SimtCounters& counters() const { return counters_; }

private:
    /// Common counter bump of addressed and count-only shared accesses
    /// (exactly once per access -- the overloads must not chain through
    /// each other, which would double count).
    void record_shared(int active_lanes);
    void global_access(const std::vector<std::uint64_t>& lane_addrs,
                       int bytes_per_lane, bool is_write);

    int block_threads_;
    int warp_size_;
    int num_warps_;
    MemoryHierarchy* mem_;
    Sanitizer* sanitizer_ = nullptr;
    int warp_ = 0;
    SimtCounters counters_;
    std::vector<std::uint64_t> segments_;
};

}  // namespace bsis::gpusim
