file(REMOVE_RECURSE
  "CMakeFiles/solve_from_files.dir/solve_from_files.cpp.o"
  "CMakeFiles/solve_from_files.dir/solve_from_files.cpp.o.d"
  "solve_from_files"
  "solve_from_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_from_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
