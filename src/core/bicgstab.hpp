// Batched BiCGStab kernel (paper Algorithm 1).
//
// One invocation solves ONE system of the batch -- the exact work a single
// GPU thread block performs inside the fused solver kernel. The matrix
// format, preconditioner, and stopping criterion are template parameters,
// mirroring the compile-time composition of the paper's Listing 1, so the
// whole solve inlines into one optimized function.
//
// Two variants are provided. `bicgstab_kernel` (the default path) sweeps
// the vectors with the fused single-pass BLAS kernels, matching the sweep
// structure of the paper's fused GPU kernel: 4 update sweeps and 3
// reduction sweeps per iteration instead of the ~13 sweeps of the naive
// BLAS composition. `bicgstab_kernel_unfused` keeps the one-sweep-per-call
// composition as the reference for the fusion A/B tests and benches.
#pragma once

#include <cmath>
#include <vector>

#include "blas/kernels.hpp"
#include "core/workspace.hpp"
#include "obs/telemetry.hpp"
#include "util/types.hpp"

namespace bsis {

/// Number of scratch vectors the BiCGStab kernel draws from the workspace
/// (r, r_hat, p, p_hat, v, s, s_hat, t), excluding x and the
/// preconditioner's own storage.
inline constexpr int bicgstab_work_vectors = 8;

/// Solves A x = b with preconditioned BiCGStab using the fused single-pass
/// vector kernels. `x` holds the initial guess on entry and the solution
/// on exit. `prec` must already be generated for this system's matrix.
/// Returns the iteration count, the final residual norm, and whether the
/// stopping criterion was met within `max_iters` iterations.
/// `history`, when non-null, receives the residual norm at the top of
/// every iteration (the per-system logging of the paper's Listing 1
/// LogType) -- see the convergence-history benchmark.
template <typename MatrixView, typename Prec, typename Stop>
EntryResult bicgstab_kernel(const MatrixView& a, ConstVecView<real_type> b,
                            VecView<real_type> x, const Prec& prec,
                            const Stop& stop, int max_iters, Workspace& ws,
                            int work_offset = 0,
                            std::vector<real_type>* history = nullptr)
{
    auto r = ws.slot(work_offset + 0);
    auto r_hat = ws.slot(work_offset + 1);
    auto p = ws.slot(work_offset + 2);
    auto p_hat = ws.slot(work_offset + 3);
    auto v = ws.slot(work_offset + 4);
    auto s = ws.slot(work_offset + 5);
    auto s_hat = ws.slot(work_offset + 6);
    auto t = ws.slot(work_offset + 7);

    const real_type b_norm = blas::nrm2(b);

    // r = b - A x fused with ||r||; with a zero guess this reduces to
    // r = b. The sweep writes over the A x it reads (aliasing is safe:
    // each element is read before it is written).
    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    real_type r_norm = obs::traced(obs::Phase::update, "update", [&] {
        return blas::zaxpby_nrm2(real_type{1}, b, real_type{-1},
                                 ConstVecView<real_type>(r), r);
    });
    blas::copy(ConstVecView<real_type>(r), r_hat);
    blas::fill(p, real_type{0});
    blas::fill(v, real_type{0});

    const real_type r0 = r_norm;
    real_type rho_old = 1;
    real_type omega = 1;
    real_type alpha = 1;

    if (history != nullptr) {
        history->clear();
        history->push_back(r_norm);
    }
    for (int iter = 0; iter < max_iters; ++iter) {
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true, FailureClass::converged};
        }
        if (!std::isfinite(r_norm)) {
            // Poisoned operands (NaN/Inf in A, b, or the guess) can never
            // converge: abandon the system promptly instead of spinning to
            // the iteration limit.
            return {iter, r_norm, false, FailureClass::non_finite};
        }
        const real_type rho = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(r),
                             ConstVecView<real_type>(r_hat));
        });
        if (rho == real_type{0} || omega == real_type{0}) {
            // Serious breakdown: the Krylov space cannot be extended.
            return {iter, r_norm, false,
                    rho == real_type{0} ? FailureClass::breakdown_rho
                                        : FailureClass::breakdown_omega};
        }
        const real_type beta = (rho / rho_old) * (alpha / omega);
        // p = r + beta * (p - omega * v) in ONE sweep.
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz(real_type{1}, ConstVecView<real_type>(r),
                           -beta * omega, ConstVecView<real_type>(v), beta,
                           p);
        });
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(p), p_hat); });
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(p_hat), v); });
        const real_type r_hat_v = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(r_hat),
                             ConstVecView<real_type>(v));
        });
        if (r_hat_v == real_type{0}) {
            // alpha = rho / r_hat.v is undefined: rho-side breakdown.
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        alpha = rho / r_hat_v;
        // s = r - alpha * v fused with ||s||.
        const real_type s_norm = obs::traced(obs::Phase::update, "update", [&] {
            return blas::zaxpby_nrm2(real_type{1},
                                     ConstVecView<real_type>(r), -alpha,
                                     ConstVecView<real_type>(v), s);
        });
        if (stop.done(s_norm, b_norm)) {
            blas::axpy(alpha, ConstVecView<real_type>(p_hat), x);
            return {iter + 1, s_norm, true, FailureClass::converged};
        }
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(s), s_hat); });
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(s_hat), t); });
        // t.t and t.s in one sweep over t.
        real_type t_t;
        real_type t_s;
        obs::traced(obs::Phase::reduction, "reduction", [&] {
            blas::dot2(ConstVecView<real_type>(t), ConstVecView<real_type>(t),
                       ConstVecView<real_type>(s), t_t, t_s);
        });
        if (t_t == real_type{0}) {
            blas::axpy(alpha, ConstVecView<real_type>(p_hat), x);
            r_norm = s_norm;
            const bool done = stop.done(r_norm, b_norm);
            return {iter + 1, r_norm, done,
                    done ? FailureClass::converged
                         : FailureClass::breakdown_omega};
        }
        omega = t_s / t_t;
        // x = x + alpha * p_hat + omega * s_hat in ONE sweep.
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpbypcz(alpha, ConstVecView<real_type>(p_hat), omega,
                           ConstVecView<real_type>(s_hat), real_type{1}, x);
        });
        // r = s - omega * t fused with ||r||.
        r_norm = obs::traced(obs::Phase::update, "update", [&] {
            return blas::zaxpby_nrm2(real_type{1},
                                     ConstVecView<real_type>(s), -omega,
                                     ConstVecView<real_type>(t), r);
        });
        rho_old = rho;
        if (history != nullptr) {
            history->push_back(r_norm);
        }
    }
    {
        const bool done = stop.done(r_norm, b_norm);
        return {max_iters, r_norm, done,
                classify_exhausted(r_norm, r0, done)};
    }
}

/// Reference BiCGStab on the unfused one-sweep-per-BLAS-call composition.
/// Mathematically identical to `bicgstab_kernel` (same operations in the
/// same order; fused sweeps only change rounding within a pass) but sweeps
/// the vectors ~13 times per iteration. Kept for the fusion ablation
/// benches and the fused-vs-unfused convergence tests.
template <typename MatrixView, typename Prec, typename Stop>
EntryResult bicgstab_kernel_unfused(
    const MatrixView& a, ConstVecView<real_type> b, VecView<real_type> x,
    const Prec& prec, const Stop& stop, int max_iters, Workspace& ws,
    int work_offset = 0, std::vector<real_type>* history = nullptr)
{
    auto r = ws.slot(work_offset + 0);
    auto r_hat = ws.slot(work_offset + 1);
    auto p = ws.slot(work_offset + 2);
    auto p_hat = ws.slot(work_offset + 3);
    auto v = ws.slot(work_offset + 4);
    auto s = ws.slot(work_offset + 5);
    auto s_hat = ws.slot(work_offset + 6);
    auto t = ws.slot(work_offset + 7);

    const real_type b_norm = blas::nrm2(b);

    // r = b - A x; with a zero guess this reduces to r = b.
    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    blas::axpby(real_type{1}, b, real_type{-1}, r);
    blas::copy(ConstVecView<real_type>(r), r_hat);
    blas::fill(p, real_type{0});
    blas::fill(v, real_type{0});

    real_type rho_old = 1;
    real_type omega = 1;
    real_type alpha = 1;
    real_type r_norm = obs::traced(
        obs::Phase::reduction, "reduction",
        [&] { return blas::nrm2(ConstVecView<real_type>(r)); });
    const real_type r0 = r_norm;

    if (history != nullptr) {
        history->clear();
        history->push_back(r_norm);
    }
    for (int iter = 0; iter < max_iters; ++iter) {
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true, FailureClass::converged};
        }
        if (!std::isfinite(r_norm)) {
            return {iter, r_norm, false, FailureClass::non_finite};
        }
        const real_type rho =
            blas::dot(ConstVecView<real_type>(r), ConstVecView<real_type>(r_hat));
        if (rho == real_type{0} || omega == real_type{0}) {
            // Serious breakdown: the Krylov space cannot be extended.
            return {iter, r_norm, false,
                    rho == real_type{0} ? FailureClass::breakdown_rho
                                        : FailureClass::breakdown_omega};
        }
        const real_type beta = (rho / rho_old) * (alpha / omega);
        // p = r + beta * (p - omega * v)
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpy(-omega, ConstVecView<real_type>(v), p);
            blas::axpby(real_type{1}, ConstVecView<real_type>(r), beta, p);
        });
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(p), p_hat); });
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(p_hat), v); });
        const real_type r_hat_v = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(r_hat),
                             ConstVecView<real_type>(v));
        });
        if (r_hat_v == real_type{0}) {
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        alpha = rho / r_hat_v;
        // s = r - alpha * v
        obs::traced(obs::Phase::update, "update", [&] {
            blas::copy(ConstVecView<real_type>(r), s);
            blas::axpy(-alpha, ConstVecView<real_type>(v), s);
        });
        const real_type s_norm = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::nrm2(ConstVecView<real_type>(s));
        });
        if (stop.done(s_norm, b_norm)) {
            blas::axpy(alpha, ConstVecView<real_type>(p_hat), x);
            return {iter + 1, s_norm, true, FailureClass::converged};
        }
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(s), s_hat); });
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(s_hat), t); });
        const real_type t_t = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(t),
                             ConstVecView<real_type>(t));
        });
        const real_type t_s = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(t),
                             ConstVecView<real_type>(s));
        });
        if (t_t == real_type{0}) {
            blas::axpy(alpha, ConstVecView<real_type>(p_hat), x);
            r_norm = s_norm;
            const bool done = stop.done(r_norm, b_norm);
            return {iter + 1, r_norm, done,
                    done ? FailureClass::converged
                         : FailureClass::breakdown_omega};
        }
        omega = t_s / t_t;
        // x = x + alpha * p_hat + omega * s_hat
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpy(alpha, ConstVecView<real_type>(p_hat), x);
            blas::axpy(omega, ConstVecView<real_type>(s_hat), x);
        });
        // r = s - omega * t
        obs::traced(obs::Phase::update, "update", [&] {
            blas::copy(ConstVecView<real_type>(s), r);
            blas::axpy(-omega, ConstVecView<real_type>(t), r);
        });
        r_norm = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::nrm2(ConstVecView<real_type>(r));
        });
        rho_old = rho;
        if (history != nullptr) {
            history->push_back(r_norm);
        }
    }
    {
        const bool done = stop.done(r_norm, b_norm);
        return {max_iters, r_norm, done,
                classify_exhausted(r_norm, r0, done)};
    }
}

}  // namespace bsis
