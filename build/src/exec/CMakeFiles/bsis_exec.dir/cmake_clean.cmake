file(REMOVE_RECURSE
  "CMakeFiles/bsis_exec.dir/executor.cpp.o"
  "CMakeFiles/bsis_exec.dir/executor.cpp.o.d"
  "libbsis_exec.a"
  "libbsis_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsis_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
