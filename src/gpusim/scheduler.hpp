// Thread-block scheduling over the device's compute units.
//
// Given per-block durations (from the cost model and each system's actual
// iteration count) and the number of concurrently resident blocks, the
// scheduler computes the kernel makespan. Two policies reproduce the
// behaviors observed in Fig. 6 of the paper:
//   * wave_quantized -- a wave of `slots` blocks must fully retire before
//     the next wave issues; the time-vs-batch-size curve steps at
//     multiples of the CU count (the MI100's discrete jumps at 120).
//   * greedy_dynamic -- a block launches as soon as a slot frees, giving
//     the smooth V100/A100 curves.
#pragma once

#include <vector>

#include "gpusim/device.hpp"

namespace bsis::gpusim {

struct ScheduleResult {
    double makespan_seconds = 0;
    int num_waves = 0;  ///< waves issued (wave_quantized) or ceil estimate
};

/// Scheduled placement of one block: when it ran and on which of the
/// device's resident-block slots. `blocks[i]` describes block_seconds[i].
struct BlockInterval {
    double start_seconds = 0;
    double end_seconds = 0;
    int slot = 0;
};

struct ScheduleTimeline {
    double makespan_seconds = 0;
    int num_waves = 0;
    std::vector<BlockInterval> blocks;
};

/// `block_seconds[i]` is the modeled duration of batch system i's block;
/// `slots` is blocks_per_cu * num_cu.
ScheduleResult schedule_blocks(const std::vector<double>& block_seconds,
                               int slots, SchedulingPolicy policy);

/// schedule_blocks plus the per-block schedule (start / end / slot): the
/// modeled device timeline the trace exporter renders. Same placement
/// rules as schedule_blocks -- the makespan and wave count are identical
/// by construction (schedule_blocks delegates here).
ScheduleTimeline schedule_blocks_timeline(
    const std::vector<double>& block_seconds, int slots,
    SchedulingPolicy policy);

}  // namespace bsis::gpusim
