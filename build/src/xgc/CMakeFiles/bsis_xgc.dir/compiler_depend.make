# Empty compiler generated dependencies file for bsis_xgc.
# This may be replaced when dependencies are built.
