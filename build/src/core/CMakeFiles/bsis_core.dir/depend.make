# Empty dependencies file for bsis_core.
# This may be replaced when dependencies are built.
