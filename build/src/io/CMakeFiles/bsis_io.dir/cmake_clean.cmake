file(REMOVE_RECURSE
  "CMakeFiles/bsis_io.dir/matrix_market.cpp.o"
  "CMakeFiles/bsis_io.dir/matrix_market.cpp.o.d"
  "libbsis_io.a"
  "libbsis_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsis_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
