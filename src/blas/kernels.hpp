// Dense vector kernels used inside the batched solvers.
//
// These are the per-batch-entry building blocks (Section IV-B of the paper):
// they run on one "thread block"'s data and are written so the compiler can
// inline them into the fused solver kernel, exactly as the CUDA/HIP versions
// are inlined by nvcc/hipcc in GINKGO's single-kernel design.
#pragma once

#include <cmath>

#include "blas/batch_vector.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis::blas {

/// y := x
template <typename T>
inline void copy(ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    for (index_type i = 0; i < x.len; ++i) {
        y[i] = x[i];
    }
}

/// x := alpha
template <typename T>
inline void fill(VecView<T> x, T alpha)
{
    for (index_type i = 0; i < x.len; ++i) {
        x[i] = alpha;
    }
}

/// x := alpha * x
template <typename T>
inline void scal(T alpha, VecView<T> x)
{
    for (index_type i = 0; i < x.len; ++i) {
        x[i] *= alpha;
    }
}

/// y := alpha * x + y
template <typename T>
inline void axpy(T alpha, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    for (index_type i = 0; i < x.len; ++i) {
        y[i] += alpha * x[i];
    }
}

/// y := alpha * x + beta * y
template <typename T>
inline void axpby(T alpha, ConstVecView<T> x, T beta, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    for (index_type i = 0; i < x.len; ++i) {
        y[i] = alpha * x[i] + beta * y[i];
    }
}

/// z := x - y
template <typename T>
inline void sub(ConstVecView<T> x, ConstVecView<T> y, VecView<T> z)
{
    BSIS_ASSERT(x.len == y.len && y.len == z.len);
    for (index_type i = 0; i < x.len; ++i) {
        z[i] = x[i] - y[i];
    }
}

/// Dot product x . y (unconjugated; the library is real-valued).
template <typename T>
inline T dot(ConstVecView<T> x, ConstVecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    T sum{};
    for (index_type i = 0; i < x.len; ++i) {
        sum += x[i] * y[i];
    }
    return sum;
}

/// Euclidean norm ||x||_2.
template <typename T>
inline T nrm2(ConstVecView<T> x)
{
    return std::sqrt(dot(x, x));
}

/// Max norm ||x||_inf.
template <typename T>
inline T nrm_inf(ConstVecView<T> x)
{
    T m{};
    for (index_type i = 0; i < x.len; ++i) {
        m = std::max(m, std::abs(x[i]));
    }
    return m;
}

/// z := x .* y (Hadamard product; scalar-Jacobi application).
template <typename T>
inline void mul_elementwise(ConstVecView<T> x, ConstVecView<T> y, VecView<T> z)
{
    BSIS_ASSERT(x.len == y.len && y.len == z.len);
    for (index_type i = 0; i < x.len; ++i) {
        z[i] = x[i] * y[i];
    }
}

/// Dense matrix-vector product y := A x for a row-major n x n block.
template <typename T>
inline void gemv(index_type n, const T* a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == n && y.len == n);
    for (index_type r = 0; r < n; ++r) {
        T sum{};
        const T* row = a + static_cast<std::size_t>(r) * n;
        for (index_type c = 0; c < n; ++c) {
            sum += row[c] * x[c];
        }
        y[r] = sum;
    }
}

}  // namespace bsis::blas
