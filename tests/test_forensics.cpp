// Forensics tier (`forensics` ctest label): the failure taxonomy, the
// flight recorder, and cross-path replay.
//
// The centerpiece mirrors the acceptance scenario of the forensics design:
// a seeded batch -- one singular system, one NaN-poisoned system, one hard
// system under a tight iteration cap, one trivially-converging system --
// must classify identically across the scalar OpenMP path, the SIMD
// batch-lockstep path, and the simulated-GPU executor; the flight recorder
// must write exactly the non-converged systems as bundles; and an
// in-process replay of each bundle must reproduce its recorded
// classification from the bundle alone.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "core/forensics.hpp"
#include "core/solver.hpp"
#include "exec/executor.hpp"
#include "io/matrix_market.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"

namespace bsis {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the test temp root.
std::string scratch_dir(const std::string& name)
{
    const fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    return dir.string();
}

/// Tridiagonal Coo with the given diagonal/off-diagonal values. With
/// `laplacian` the diagonal is overridden to the (negated) row sum of the
/// off-diagonals: a singular Neumann Laplacian with a nonzero diagonal
/// (scalar Jacobi stays well defined).
io::Coo tridiag(index_type n, real_type diag, real_type off,
                bool laplacian = false)
{
    io::Coo coo;
    coo.rows = n;
    coo.cols = n;
    for (index_type r = 0; r < n; ++r) {
        for (index_type c = std::max(r - 1, index_type{0});
             c <= std::min(r + 1, n - 1); ++c) {
            real_type v = r == c ? diag : off;
            if (laplacian && r == c) {
                v = (r == 0 || r == n - 1) ? -off : -2 * off;
            }
            coo.row_idxs.push_back(r);
            coo.col_idxs.push_back(c);
            coo.values.push_back(v);
        }
    }
    return coo;
}

// ---------------------------------------------------------------------
// Taxonomy basics
// ---------------------------------------------------------------------

TEST(FailureClassTest, ClassifyExhausted)
{
    EXPECT_EQ(classify_exhausted(1.0, 10.0, true), FailureClass::converged);
    EXPECT_EQ(classify_exhausted(1.0, 10.0, false),
              FailureClass::max_iters);
    EXPECT_EQ(classify_exhausted(std::nan(""), 10.0, false),
              FailureClass::non_finite);
    EXPECT_EQ(classify_exhausted(std::numeric_limits<real_type>::infinity(),
                                 10.0, false),
              FailureClass::non_finite);
    // No meaningful reduction from the initial residual: stagnated.
    EXPECT_EQ(classify_exhausted(9.95, 10.0, false),
              FailureClass::stagnated);
    EXPECT_EQ(classify_exhausted(10.0, 10.0, false),
              FailureClass::stagnated);
    EXPECT_EQ(classify_exhausted(12.0, 10.0, false),
              FailureClass::stagnated);
    EXPECT_EQ(classify_exhausted(9.0, 10.0, false), FailureClass::max_iters);
}

TEST(FailureClassTest, NamesRoundTrip)
{
    for (int c = 0; c < num_failure_classes; ++c) {
        const auto cls = static_cast<FailureClass>(c);
        FailureClass back{};
        ASSERT_TRUE(failure_class_from_name(failure_class_name(cls), back));
        EXPECT_EQ(back, cls);
    }
    FailureClass out{};
    EXPECT_FALSE(failure_class_from_name("no_such_class", out));
}

TEST(ForensicsNamesTest, CompositionNamesRoundTrip)
{
    for (const auto s :
         {SolverType::bicgstab, SolverType::bicg, SolverType::cgs,
          SolverType::cg, SolverType::gmres, SolverType::richardson,
          SolverType::chebyshev}) {
        SolverType back{};
        ASSERT_TRUE(solver_from_name(solver_name(s), back));
        EXPECT_EQ(back, s);
    }
    for (const auto p : {PrecondType::identity, PrecondType::jacobi,
                         PrecondType::block_jacobi}) {
        PrecondType back{};
        ASSERT_TRUE(precond_from_name(precond_name(p), back));
        EXPECT_EQ(back, p);
    }
    for (const auto s : {StopType::abs_residual, StopType::rel_residual}) {
        StopType back{};
        ASSERT_TRUE(stop_from_name(stop_name(s), back));
        EXPECT_EQ(back, s);
    }
}

// ---------------------------------------------------------------------
// The acceptance scenario: seeded failures, three paths, one verdict
// ---------------------------------------------------------------------

struct SeededBatch {
    BatchCsr<real_type> a;
    BatchVector<real_type> b;
    SolverSettings settings;
};

/// sys 0: singular Laplacian with inconsistent rhs; sys 1: NaN-poisoned
/// rhs; sys 2: hard (indefinite-ish) system under the tight cap; sys 3:
/// identity system, converges immediately.
SeededBatch seeded_batch()
{
    const index_type n = 16;
    SeededBatch sb{io::from_coo({tridiag(n, 2, -1, true),
                                 tridiag(n, 2, -1), tridiag(n, 2.0, -1.01),
                                 tridiag(n, 1, 0)}),
                   BatchVector<real_type>(4, n, real_type{1}), {}};
    sb.b.entry(0)[0] = 2;  // sum(b) != 0: outside the Laplacian's range
    sb.b.entry(1)[n / 2] = std::nan("");
    sb.settings.solver = SolverType::bicgstab;
    sb.settings.precond = PrecondType::jacobi;
    sb.settings.tolerance = 1e-10;
    sb.settings.max_iterations = 2;  // caps the hard system
    return sb;
}

TEST(FailureTaxonomyTest, SeededBatchClassifiesIdenticallyAcrossPaths)
{
    auto sb = seeded_batch();

    sb.settings.lockstep_width = 0;
    BatchVector<real_type> x_scalar(4, sb.a.rows());
    const auto scalar = solve_batch(sb.a, sb.b, x_scalar, sb.settings);

    sb.settings.lockstep_width = 4;
    BatchVector<real_type> x_lock(4, sb.a.rows());
    const auto lockstep = solve_batch(sb.a, sb.b, x_lock, sb.settings);

    sb.settings.lockstep_width = 0;
    SimGpuExecutor exec(gpusim::v100());
    BatchVector<real_type> x_gpu(4, sb.a.rows());
    const auto gpu = exec.solve(sb.a, sb.b, x_gpu, sb.settings);

    for (size_type sys = 0; sys < 4; ++sys) {
        EXPECT_EQ(scalar.log.failure(sys), lockstep.log.failure(sys))
            << "scalar vs lockstep at system " << sys;
        EXPECT_EQ(scalar.log.failure(sys), gpu.log.failure(sys))
            << "scalar vs simgpu at system " << sys;
    }
    // The seeded modes come out as designed.
    EXPECT_EQ(scalar.log.failure(1), FailureClass::non_finite);
    EXPECT_EQ(scalar.log.failure(3), FailureClass::converged);
    EXPECT_NE(scalar.log.failure(0), FailureClass::converged);
    EXPECT_NE(scalar.log.failure(2), FailureClass::converged);

    // The executor's per-batch summary tallies the same classes.
    FailureCounts expect{};
    for (size_type sys = 0; sys < 4; ++sys) {
        ++expect[static_cast<int>(gpu.log.failure(sys))];
    }
    EXPECT_EQ(gpu.failures, expect);
}

// ---------------------------------------------------------------------
// NaN / Inf poisoning: prompt termination, no neighbor contamination
// ---------------------------------------------------------------------

class PoisonTest : public ::testing::TestWithParam<real_type> {};

TEST_P(PoisonTest, PoisonTerminatesPromptlyWithoutContaminatingNeighbors)
{
    const index_type n = 24;
    const auto a =
        io::from_coo({tridiag(n, 3, -1), tridiag(n, 3, -1),
                      tridiag(n, 3, -1)});
    BatchVector<real_type> b(3, n, real_type{1});
    b.entry(1)[3] = GetParam();

    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;
    settings.tolerance = 1e-10;
    settings.max_iterations = 300;

    const auto check = [&](const BatchLog& log,
                           const BatchVector<real_type>& x,
                           const std::string& path) {
        EXPECT_EQ(log.failure(1), FailureClass::non_finite) << path;
        // Prompt: the poison is in the initial residual, so the solver
        // must stop immediately instead of spinning to the cap.
        EXPECT_EQ(log.iterations(1), 0) << path;
        for (const size_type sys : {size_type{0}, size_type{2}}) {
            EXPECT_EQ(log.failure(sys), FailureClass::converged) << path;
            for (index_type i = 0; i < n; ++i) {
                EXPECT_TRUE(std::isfinite(x.entry(sys)[i]))
                    << path << " system " << sys << " entry " << i;
            }
        }
    };

    settings.lockstep_width = 0;
    BatchVector<real_type> x_scalar(3, n);
    check(solve_batch(a, b, x_scalar, settings).log, x_scalar, "scalar");

    settings.lockstep_width = 2;
    BatchVector<real_type> x_lock(3, n);
    check(solve_batch(a, b, x_lock, settings).log, x_lock, "lockstep");

    settings.lockstep_width = 0;
    SimGpuExecutor exec(gpusim::v100());
    BatchVector<real_type> x_gpu(3, n);
    check(exec.solve(a, b, x_gpu, settings).log, x_gpu, "simgpu");
}

INSTANTIATE_TEST_SUITE_P(
    NanAndInf, PoisonTest,
    ::testing::Values(std::nan(""),
                      std::numeric_limits<real_type>::infinity(),
                      -std::numeric_limits<real_type>::infinity()));

TEST(LockstepTaxonomyTest, PoisonedLaneIsNotMistakenForMaxIters)
{
    // The regression the taxonomy fixed: a lane retiring with a non-finite
    // residual used to record the same terminal state as a clean
    // out-of-iterations exit.
    const index_type n = 16;
    const auto a = io::from_coo({tridiag(n, 3, -1), tridiag(n, 3, -1)});
    BatchVector<real_type> b(2, n, real_type{1});
    b.entry(0)[0] = std::nan("");

    SolverSettings settings;
    settings.solver = SolverType::cg;
    settings.precond = PrecondType::identity;
    settings.max_iterations = 50;
    settings.lockstep_width = 2;
    BatchVector<real_type> x(2, n);
    const auto result = solve_batch(a, b, x, settings);
    EXPECT_EQ(result.log.failure(0), FailureClass::non_finite);
    EXPECT_FALSE(result.log.converged(0));
    EXPECT_EQ(result.log.failure(1), FailureClass::converged);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, CapturesExactlyTheNonConvergedSystems)
{
    const auto dir = scratch_dir("forensics_capture");
    obs::FlightRecorder recorder(dir);
    auto sb = seeded_batch();
    sb.settings.record_convergence = true;
    sb.settings.flight_recorder = &recorder;
    BatchVector<real_type> x(4, sb.a.rows());
    const auto result = solve_batch(sb.a, sb.b, x, sb.settings);

    std::set<std::int64_t> expected;
    for (size_type sys = 0; sys < 4; ++sys) {
        if (!result.log.converged(sys)) {
            expected.insert(static_cast<std::int64_t>(sys));
        }
    }
    ASSERT_EQ(expected.size(), 3u);  // converged system 3 is excluded

    const auto bundles = obs::list_bundles(dir);
    ASSERT_EQ(bundles.size(), expected.size());
    EXPECT_EQ(recorder.captured(), static_cast<int>(expected.size()));
    EXPECT_EQ(recorder.seen(), static_cast<std::int64_t>(expected.size()));
    std::set<std::int64_t> captured;
    for (const auto& bdir : bundles) {
        const auto bundle = obs::load_bundle(bdir);
        captured.insert(bundle.meta.system_index);
        EXPECT_EQ(bundle.meta.failure,
                  failure_class_name(result.log.failure(
                      static_cast<size_type>(bundle.meta.system_index))));
        // The history rode along (record_convergence was on).
        EXPECT_FALSE(bundle.meta.history_residuals.empty());
        EXPECT_EQ(bundle.meta.history_residuals.size(),
                  bundle.meta.history_iterations.size());
    }
    EXPECT_EQ(captured, expected);
    fs::remove_all(dir);
}

TEST(FlightRecorderTest, BudgetBoundsTheCaptures)
{
    const auto dir = scratch_dir("forensics_budget");
    obs::FlightRecorder recorder(dir, 1);
    auto sb = seeded_batch();
    sb.settings.flight_recorder = &recorder;
    BatchVector<real_type> x(4, sb.a.rows());
    solve_batch(sb.a, sb.b, x, sb.settings);

    EXPECT_EQ(recorder.captured(), 1);
    EXPECT_EQ(recorder.seen(), 3);
    EXPECT_EQ(obs::list_bundles(dir).size(), 1u);
    fs::remove_all(dir);
}

TEST(FlightRecorderTest, BundleRoundTripsNonFiniteValues)
{
    const auto dir = scratch_dir("forensics_roundtrip");
    obs::FlightRecorder recorder(dir);

    const index_type n = 4;
    const auto coo = tridiag(n, 2, -1);
    std::vector<real_type> b{1, std::nan(""),
                             std::numeric_limits<real_type>::infinity(),
                             -std::numeric_limits<real_type>::infinity()};
    std::vector<real_type> x0{0, 0.5, 0, 0};
    obs::FailureBundleMeta meta;
    meta.failure = "non_finite";
    meta.solver = "bicgstab";
    meta.precond = "jacobi";
    meta.stop = "absolute";
    meta.tolerance = 1e-10;
    meta.max_iterations = 77;
    meta.gmres_restart = 30;
    meta.block_jacobi_size = 4;
    meta.richardson_omega = 0.9;
    meta.used_initial_guess = true;
    meta.fused_kernels = true;
    meta.lockstep_width = 8;
    meta.system_index = 5;
    meta.iterations = 3;
    meta.residual_norm = std::nan("");
    meta.history_iterations = {0, 1, 2, 3};
    meta.history_residuals = {1.0, 2.0, std::nan(""), std::nan("")};
    ASSERT_TRUE(recorder.capture(
        coo, ConstVecView<real_type>{b.data(), n},
        ConstVecView<real_type>{x0.data(), n}, meta));

    const auto bundles = obs::list_bundles(dir);
    ASSERT_EQ(bundles.size(), 1u);
    const auto bundle = obs::load_bundle(bundles.front());
    EXPECT_EQ(bundle.a.rows, n);
    EXPECT_EQ(bundle.a.values.size(), coo.values.size());
    ASSERT_EQ(bundle.b.size(), 4u);
    EXPECT_EQ(bundle.b[0], 1.0);
    EXPECT_TRUE(std::isnan(bundle.b[1]));
    EXPECT_EQ(bundle.b[2], std::numeric_limits<real_type>::infinity());
    EXPECT_EQ(bundle.b[3], -std::numeric_limits<real_type>::infinity());
    EXPECT_EQ(bundle.x0[1], 0.5);
    EXPECT_EQ(bundle.meta.failure, "non_finite");
    EXPECT_EQ(bundle.meta.solver, "bicgstab");
    EXPECT_EQ(bundle.meta.max_iterations, 77);
    EXPECT_EQ(bundle.meta.richardson_omega, 0.9);
    EXPECT_TRUE(bundle.meta.used_initial_guess);
    EXPECT_EQ(bundle.meta.lockstep_width, 8);
    EXPECT_EQ(bundle.meta.system_index, 5);
    EXPECT_TRUE(std::isnan(bundle.meta.residual_norm));
    ASSERT_EQ(bundle.meta.history_residuals.size(), 4u);
    EXPECT_TRUE(std::isnan(bundle.meta.history_residuals[2]));
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Replay: the bundle alone reproduces the classification
// ---------------------------------------------------------------------

TEST(ReplayTest, BundlesReproduceTheirClassificationAcrossPaths)
{
    const auto dir = scratch_dir("forensics_replay");
    obs::FlightRecorder recorder(dir);
    auto sb = seeded_batch();
    sb.settings.record_convergence = true;
    sb.settings.flight_recorder = &recorder;
    BatchVector<real_type> x(4, sb.a.rows());
    solve_batch(sb.a, sb.b, x, sb.settings);

    const auto bundles = obs::list_bundles(dir);
    ASSERT_EQ(bundles.size(), 3u);
    for (const auto& bdir : bundles) {
        const auto bundle = obs::load_bundle(bdir);
        SolverSettings replay;
        ASSERT_TRUE(apply_bundle_meta(bundle.meta, replay));
        replay.use_initial_guess = true;  // x0.mtx IS the guess
        replay.flight_recorder = nullptr;

        const auto n = static_cast<index_type>(bundle.a.rows);
        const auto a1 = io::from_coo({bundle.a});
        BatchVector<real_type> b1(1, n);
        BatchVector<real_type> x0(1, n);
        for (index_type i = 0; i < n; ++i) {
            b1.entry(0)[i] = bundle.b[static_cast<std::size_t>(i)];
            x0.entry(0)[i] = bundle.x0[static_cast<std::size_t>(i)];
        }

        FailureClass from_name{};
        ASSERT_TRUE(failure_class_from_name(bundle.meta.failure, from_name));

        replay.lockstep_width = 0;
        BatchVector<real_type> xs = x0;
        EXPECT_EQ(solve_batch(a1, b1, xs, replay).log.failure(0), from_name)
            << "scalar replay of " << bdir;

        replay.lockstep_width = 8;
        BatchVector<real_type> xl = x0;
        EXPECT_EQ(solve_batch(a1, b1, xl, replay).log.failure(0), from_name)
            << "lockstep replay of " << bdir;

        replay.lockstep_width = 0;
        SimGpuExecutor exec(gpusim::v100());
        BatchVector<real_type> xg = x0;
        EXPECT_EQ(exec.solve(a1, b1, xg, replay).log.failure(0), from_name)
            << "simgpu replay of " << bdir;
    }
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Metrics export
// ---------------------------------------------------------------------

TEST(FailureMetricsTest, SolveExportsPerClassCounters)
{
    const auto before = obs::metrics().snapshot();
    obs::set_metrics_enabled(true);
    auto sb = seeded_batch();
    BatchVector<real_type> x(4, sb.a.rows());
    const auto result = solve_batch(sb.a, sb.b, x, sb.settings);
    obs::set_metrics_enabled(false);
    const auto after = obs::metrics().snapshot();

    const auto counts = result.log.failure_counts();
    const auto delta = [&](const std::string& name) {
        return after.counter(name) - before.counter(name);
    };
    EXPECT_EQ(delta("solve.fail.non_finite"),
              counts[static_cast<int>(FailureClass::non_finite)]);
    EXPECT_EQ(delta("solve.fail.max_iters") +
                  delta("solve.fail.breakdown_rho") +
                  delta("solve.fail.breakdown_omega") +
                  delta("solve.fail.stagnated") +
                  delta("solve.fail.non_finite"),
              4 - counts[static_cast<int>(FailureClass::converged)]);
}

}  // namespace
}  // namespace bsis
