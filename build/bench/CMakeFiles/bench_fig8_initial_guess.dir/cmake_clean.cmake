file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_initial_guess.dir/bench_fig8_initial_guess.cpp.o"
  "CMakeFiles/bench_fig8_initial_guess.dir/bench_fig8_initial_guess.cpp.o.d"
  "bench_fig8_initial_guess"
  "bench_fig8_initial_guess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_initial_guess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
