# Empty dependencies file for test_tridiag.
# This may be replaced when dependencies are built.
