// Implicit collision step: backward Euler + Picard iteration.
//
// One collision step advances every system's distribution by dt:
//   (I - dt C(u_k, T_k)) f_{k+1} = f^n,   k = 0, 1, ...
// with the operator coefficients frozen at the moments of the current
// Picard iterate. The paper's proxy app uses 5 Picard iterations and,
// crucially, the previous iterate as the initial guess of the next linear
// solve (Fig. 8 / Table III) -- which is why iterative solvers beat exact
// direct solves here.
//
// The linear solver is injected as a callback so the benchmarks can plug
// in the batched iterative solvers (any format / device model) or the CPU
// dgbsv baseline.
#pragma once

#include <functional>
#include <vector>

#include "core/logger.hpp"
#include "core/solver.hpp"
#include "xgc/workload.hpp"

namespace bsis::xgc {

struct PicardSettings {
    real_type dt = 0.0035;
    int num_iterations = 5;  ///< the paper's Picard count
    /// Use the previous Picard iterate as initial guess of the next
    /// linear solve (true in production; false for the Fig. 8 baseline).
    bool warm_start = true;
    /// Optional early exit: stop when the relative change of the iterate
    /// drops below this (0 = always run num_iterations).
    real_type nonlinear_tol = 0.0;
    /// Apply the XGC-style moment-fixing correction once after the Picard
    /// loop, pinning density/momentum/energy of the accepted step to the
    /// pre-step values (production XGC behavior).
    bool conservation_fix = true;
};

/// Callback solving the batched linear systems of one Picard iteration.
/// `x` carries the initial guess when `warm_start` is set and must return
/// the solution.
using BatchLinearSolver = std::function<BatchLog(
    const BatchCsr<real_type>& a, const BatchVector<real_type>& b,
    BatchVector<real_type>& x, bool warm_start, int picard_index)>;

/// Outcome of one implicit collision step over the whole batch.
struct PicardReport {
    int picard_iterations = 0;
    /// Linear-solver convergence data per Picard iteration (Table III).
    std::vector<BatchLog> linear_logs;
    /// Relative TRUE nonlinear residual ||f^n - A(x) x|| / ||f^n|| at the
    /// last evaluated Picard iterate.
    real_type nonlinear_change = 0.0;
    /// Per-system conservation error (density/momentum/energy) across the
    /// step, AFTER the moment fix when enabled -- the diagnostic tying
    /// solver tolerance to physics fidelity.
    std::vector<real_type> conservation_errors;
    /// Per-system conservation error of the raw linear solutions of the
    /// final Picard iteration, BEFORE any moment fix (shows the
    /// discretization drift the fix removes).
    std::vector<real_type> raw_conservation_errors;
    bool converged = false;

    real_type max_conservation_error() const;

    /// Mean linear iterations over the systems of the given species
    /// (0 = ion, 1 = electron in a two-species workload) at one Picard
    /// iteration; reproduces the rows of Table III.
    double mean_species_iterations(int picard_index, size_type species,
                                   size_type num_species) const;
};

/// Advances the workload's distributions by one implicit collision step.
PicardReport implicit_collision_step(CollisionWorkload& workload,
                                     const PicardSettings& settings,
                                     const BatchLinearSolver& solve);

/// Reference linear solver running the library's batched solver on the
/// host (for examples/tests); honors `base.solver/precond/tolerance`.
BatchLinearSolver make_reference_solver(SolverSettings base);

}  // namespace bsis::xgc
