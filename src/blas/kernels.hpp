// Dense vector kernels used inside the batched solvers.
//
// These are the per-batch-entry building blocks (Section IV-B of the paper):
// they run on one "thread block"'s data and are written so the compiler can
// inline them into the fused solver kernel, exactly as the CUDA/HIP versions
// are inlined by nvcc/hipcc in GINKGO's single-kernel design.
#pragma once

#include <cmath>

#include "blas/batch_vector.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis::blas {

/// y := x
template <typename T>
inline void copy(ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    for (index_type i = 0; i < x.len; ++i) {
        y[i] = x[i];
    }
}

/// x := alpha
template <typename T>
inline void fill(VecView<T> x, T alpha)
{
    for (index_type i = 0; i < x.len; ++i) {
        x[i] = alpha;
    }
}

/// x := alpha * x
template <typename T>
inline void scal(T alpha, VecView<T> x)
{
    for (index_type i = 0; i < x.len; ++i) {
        x[i] *= alpha;
    }
}

/// y := alpha * x + y
template <typename T>
inline void axpy(T alpha, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    for (index_type i = 0; i < x.len; ++i) {
        y[i] += alpha * x[i];
    }
}

/// y := alpha * x + beta * y
template <typename T>
inline void axpby(T alpha, ConstVecView<T> x, T beta, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    for (index_type i = 0; i < x.len; ++i) {
        y[i] = alpha * x[i] + beta * y[i];
    }
}

/// z := x - y
template <typename T>
inline void sub(ConstVecView<T> x, ConstVecView<T> y, VecView<T> z)
{
    BSIS_ASSERT(x.len == y.len && y.len == z.len);
    for (index_type i = 0; i < x.len; ++i) {
        z[i] = x[i] - y[i];
    }
}

/// Dot product x . y (unconjugated; the library is real-valued).
template <typename T>
inline T dot(ConstVecView<T> x, ConstVecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    T sum{};
    for (index_type i = 0; i < x.len; ++i) {
        sum += x[i] * y[i];
    }
    return sum;
}

/// Euclidean norm ||x||_2.
template <typename T>
inline T nrm2(ConstVecView<T> x)
{
    return std::sqrt(dot(x, x));
}

/// Max norm ||x||_inf.
template <typename T>
inline T nrm_inf(ConstVecView<T> x)
{
    T m{};
    for (index_type i = 0; i < x.len; ++i) {
        m = std::max(m, std::abs(x[i]));
    }
    return m;
}

/// z := x .* y (Hadamard product; scalar-Jacobi application).
template <typename T>
inline void mul_elementwise(ConstVecView<T> x, ConstVecView<T> y, VecView<T> z)
{
    BSIS_ASSERT(x.len == y.len && y.len == z.len);
    for (index_type i = 0; i < x.len; ++i) {
        z[i] = x[i] * y[i];
    }
}

// ---- fused single-pass kernels ------------------------------------------
//
// Each of these sweeps its operands exactly once, mirroring the fused GPU
// kernels of Rupp et al. ("Pipelined Iterative Solvers with Kernel Fusion
// for GPUs"): the compositions they replace (copy+axpy, axpy+axpby,
// back-to-back dots over shared operands) each cost one full vector sweep
// per BLAS call on the host, exactly as they cost one kernel launch plus
// one global-memory round trip on the device. Reductions fused into an
// update sweep accumulate in the SAME element order as the unfused
// reference (left to right), so results agree to rounding (see the 4-ulp
// property tests). Output views may alias input views: every iteration
// reads its operands before writing the output element.

/// z := alpha * x + beta * y + gamma * z in one sweep.
///
/// Covers the BiCGStab direction update p = r + beta * (p - omega * v)
/// (alpha=1, beta=-beta*omega, gamma=beta) and the solution update
/// x += alpha * p_hat + omega * s_hat (gamma=1), each previously two
/// sweeps (axpy+axpby / axpy+axpy).
template <typename T>
inline void axpbypcz(T alpha, ConstVecView<T> x, T beta, ConstVecView<T> y,
                     T gamma, VecView<T> z)
{
    BSIS_ASSERT(x.len == z.len && y.len == z.len);
    for (index_type i = 0; i < z.len; ++i) {
        z[i] = alpha * x[i] + beta * y[i] + gamma * z[i];
    }
}

/// z := alpha * x + beta * y in one sweep (replaces copy + axpy pairs).
template <typename T>
inline void zaxpby(T alpha, ConstVecView<T> x, T beta, ConstVecView<T> y,
                   VecView<T> z)
{
    BSIS_ASSERT(x.len == z.len && y.len == z.len);
    for (index_type i = 0; i < z.len; ++i) {
        z[i] = alpha * x[i] + beta * y[i];
    }
}

/// z := alpha * x + beta * y, returning ||z||_2, in one sweep.
///
/// Covers the BiCGStab s-vector update s = r - alpha * v + ||s|| and the
/// residual update r = s - omega * t + ||r||, each previously three
/// sweeps (copy + axpy + nrm2).
template <typename T>
inline T zaxpby_nrm2(T alpha, ConstVecView<T> x, T beta, ConstVecView<T> y,
                     VecView<T> z)
{
    BSIS_ASSERT(x.len == z.len && y.len == z.len);
    T sum{};
    for (index_type i = 0; i < z.len; ++i) {
        const T zi = alpha * x[i] + beta * y[i];
        z[i] = zi;
        sum += zi * zi;
    }
    return std::sqrt(sum);
}

/// y := alpha * x + y, returning ||y||_2, in one sweep (the CG/CGS/BiCG
/// residual update r -= alpha * q fused with its norm).
template <typename T>
inline T axpy_nrm2(T alpha, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    T sum{};
    for (index_type i = 0; i < x.len; ++i) {
        const T yi = y[i] + alpha * x[i];
        y[i] = yi;
        sum += yi * yi;
    }
    return std::sqrt(sum);
}

/// Computes d1 := x . y1 and d2 := x . y2 in one sweep over x (the
/// BiCGStab dual reduction t.t / t.s, previously two passes over t).
template <typename T>
inline void dot2(ConstVecView<T> x, ConstVecView<T> y1, ConstVecView<T> y2,
                 T& d1, T& d2)
{
    BSIS_ASSERT(x.len == y1.len && x.len == y2.len);
    T sum1{};
    T sum2{};
    for (index_type i = 0; i < x.len; ++i) {
        sum1 += x[i] * y1[i];
        sum2 += x[i] * y2[i];
    }
    d1 = sum1;
    d2 = sum2;
}

/// Quad reduction in one sweep over three vectors: d_xx := x . x,
/// d_xy := x . y, d_yz := y . z, d_xz := x . z. The pipelined BiCGStab
/// end-of-iteration sweep: with x = t, y = s, z = r_hat it yields t.t and
/// t.s (the omega pair, bit-identical to the classic dot2 since the
/// accumulation order per result is unchanged) plus s.r_hat and t.r_hat,
/// from which the NEXT iteration's rho = s.r_hat - omega * t.r_hat follows
/// without a separate r.r_hat sweep.
template <typename T>
inline void dot4(ConstVecView<T> x, ConstVecView<T> y, ConstVecView<T> z,
                 T& d_xx, T& d_xy, T& d_yz, T& d_xz)
{
    BSIS_ASSERT(x.len == y.len && x.len == z.len);
    T sum_xx{};
    T sum_xy{};
    T sum_yz{};
    T sum_xz{};
    for (index_type i = 0; i < x.len; ++i) {
        sum_xx += x[i] * x[i];
        sum_xy += x[i] * y[i];
        sum_yz += y[i] * z[i];
        sum_xz += x[i] * z[i];
    }
    d_xx = sum_xx;
    d_xy = sum_xy;
    d_yz = sum_yz;
    d_xz = sum_xz;
}

/// Triple dot + norm in one sweep: d_xy := x . y, d_xx := x . x,
/// d_xz := x . z, and z_norm := ||z||_2. The pipelined CG reduction sweep
/// (x = q, y = p, z = r): q.p is alpha's denominator, and q.q / q.r feed
/// the residual-norm recurrence ||r - alpha q||^2 = ||r||^2 - 2 alpha q.r
/// + alpha^2 q.q, re-anchored by the freshly measured ||r|| each
/// iteration so recurrence rounding never compounds.
template <typename T>
inline void dot3_nrm2(ConstVecView<T> x, ConstVecView<T> y, ConstVecView<T> z,
                      T& d_xy, T& d_xx, T& d_xz, T& z_norm)
{
    BSIS_ASSERT(x.len == y.len && x.len == z.len);
    T sum_xy{};
    T sum_xx{};
    T sum_xz{};
    T sum_zz{};
    for (index_type i = 0; i < x.len; ++i) {
        sum_xy += x[i] * y[i];
        sum_xx += x[i] * x[i];
        sum_xz += x[i] * z[i];
        sum_zz += z[i] * z[i];
    }
    d_xy = sum_xy;
    d_xx = sum_xx;
    d_xz = sum_xz;
    z_norm = std::sqrt(sum_zz);
}

/// Paired update: y1 := alpha * x1 + beta * y1 and y2 := alpha * x2 +
/// beta * y2 in one loop (the BiCG primal/shadow direction updates, which
/// share their scalars).
template <typename T>
inline void axpby2(T alpha, ConstVecView<T> x1, ConstVecView<T> x2, T beta,
                   VecView<T> y1, VecView<T> y2)
{
    BSIS_ASSERT(x1.len == y1.len && x2.len == y2.len && y1.len == y2.len);
    for (index_type i = 0; i < y1.len; ++i) {
        y1[i] = alpha * x1[i] + beta * y1[i];
        y2[i] = alpha * x2[i] + beta * y2[i];
    }
}

// ---- batch-lockstep kernels ---------------------------------------------
//
// Width-W lane-group variants of the fused kernels above: one call
// advances W batch entries through the same sweep simultaneously over
// batch-interleaved storage (element i of lane l at data[i*W + l]), so the
// inner lane loop is one contiguous width-W vector operation -- the CPU
// SIMD analogue of the paper's warp lanes sweeping a system's rows in
// lockstep. All scalars are per-lane arrays; per-lane masking is done by
// COEFFICIENTS, not branches: an inactive lane passes (0, ..., 1) so its
// column is left untouched (z = 0*x + 0*y + 1*z) and the loop body stays
// branch-free. Lane columns never mix, so a stale or non-finite value in a
// parked lane cannot leak into its neighbours. Reductions accumulate
// per-lane in ascending element order -- the same order as the scalar
// fused kernels -- so a lockstep lane reproduces the scalar solve's
// rounding behaviour.
//
// W is a compile-time parameter: the lane loop has constant trip count, so
// `#pragma omp simd` turns it into straight vector code.

/// x(:, l) := alpha[l] for all lanes.
template <int W, typename T>
inline void fill_lanes(T* x, index_type n, const T* alpha)
{
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            x[i * W + l] = alpha[l];
        }
    }
}

/// z(:, l) := alpha[l] * x(:, l) + beta[l] * y(:, l) + gamma[l] * z(:, l).
template <int W, typename T>
inline void axpbypcz_lanes(const T* alpha, const T* x, const T* beta,
                           const T* y, const T* gamma, T* z, index_type n)
{
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            z[i * W + l] = alpha[l] * x[i * W + l] + beta[l] * y[i * W + l] +
                           gamma[l] * z[i * W + l];
        }
    }
}

/// z(:, l) := alpha[l] * x(:, l) + beta[l] * y(:, l), and
/// norm[l] := ||z(:, l)||_2, in one sweep.
template <int W, typename T>
inline void zaxpby_nrm2_lanes(const T* alpha, const T* x, const T* beta,
                              const T* y, T* z, index_type n, T* norm)
{
    T sum[W] = {};
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            const T zi = alpha[l] * x[i * W + l] + beta[l] * y[i * W + l];
            z[i * W + l] = zi;
            sum[l] += zi * zi;
        }
    }
    for (int l = 0; l < W; ++l) {
        norm[l] = std::sqrt(sum[l]);
    }
}

/// y(:, l) := alpha[l] * x(:, l) + gamma[l] * y(:, l), and
/// norm[l] := ||y(:, l)||_2, in one sweep (lockstep CG residual update;
/// gamma masks parked lanes).
template <int W, typename T>
inline void axpy_nrm2_lanes(const T* alpha, const T* x, const T* gamma,
                            T* y, index_type n, T* norm)
{
    T sum[W] = {};
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            const T yi = gamma[l] * y[i * W + l] + alpha[l] * x[i * W + l];
            y[i * W + l] = yi;
            sum[l] += yi * yi;
        }
    }
    for (int l = 0; l < W; ++l) {
        norm[l] = std::sqrt(sum[l]);
    }
}

/// d[l] := x(:, l) . y(:, l) for all lanes.
template <int W, typename T>
inline void dot_lanes(const T* x, const T* y, index_type n, T* d)
{
    T sum[W] = {};
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            sum[l] += x[i * W + l] * y[i * W + l];
        }
    }
    for (int l = 0; l < W; ++l) {
        d[l] = sum[l];
    }
}

/// d1[l] := x(:, l) . y1(:, l) and d2[l] := x(:, l) . y2(:, l) in one
/// sweep over x (the lockstep dual reduction t.t / t.s).
template <int W, typename T>
inline void dot2_lanes(const T* x, const T* y1, const T* y2, index_type n,
                       T* d1, T* d2)
{
    T sum1[W] = {};
    T sum2[W] = {};
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            sum1[l] += x[i * W + l] * y1[i * W + l];
            sum2[l] += x[i * W + l] * y2[i * W + l];
        }
    }
    for (int l = 0; l < W; ++l) {
        d1[l] = sum1[l];
        d2[l] = sum2[l];
    }
}

/// z(:, l) := alpha[l] * x(:, l) + beta[l] * y(:, l) (plain lockstep
/// two-term update; a parked lane passes (0, 0) and its column is simply
/// zeroed, which is safe for the pipelined residual update exactly as for
/// the masked zaxpby_nrm2_lanes s/r updates).
template <int W, typename T>
inline void zaxpby_lanes(const T* alpha, const T* x, const T* beta,
                         const T* y, T* z, index_type n)
{
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            z[i * W + l] = alpha[l] * x[i * W + l] + beta[l] * y[i * W + l];
        }
    }
}

/// z(:, l) := alpha[l] * x(:, l) + beta[l] * y(:, l), with
/// norm[l] := ||z(:, l)||_2 and d[l] := z(:, l) . w(:, l), in one sweep:
/// the pipelined lockstep s-update, which needs ||s|| for the early-exit
/// test and s . r_hat for the next iteration's rho recurrence.
template <int W, typename T>
inline void zaxpby_nrm2_dot_lanes(const T* alpha, const T* x, const T* beta,
                                  const T* y, const T* w, T* z, index_type n,
                                  T* norm, T* d)
{
    T sum[W] = {};
    T sumd[W] = {};
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            const T zi = alpha[l] * x[i * W + l] + beta[l] * y[i * W + l];
            z[i * W + l] = zi;
            sum[l] += zi * zi;
            sumd[l] += zi * w[i * W + l];
        }
    }
    for (int l = 0; l < W; ++l) {
        norm[l] = std::sqrt(sum[l]);
        d[l] = sumd[l];
    }
}

/// Lockstep analogue of dot3_nrm2: d_xy[l] := x . y, d_xx[l] := x . x,
/// d_xz[l] := x . z, z_norm[l] := ||z||_2, per lane, in one sweep.
template <int W, typename T>
inline void dot3_nrm2_lanes(const T* x, const T* y, const T* z, index_type n,
                            T* d_xy, T* d_xx, T* d_xz, T* z_norm)
{
    T sum_xy[W] = {};
    T sum_xx[W] = {};
    T sum_xz[W] = {};
    T sum_zz[W] = {};
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            sum_xy[l] += x[i * W + l] * y[i * W + l];
            sum_xx[l] += x[i * W + l] * x[i * W + l];
            sum_xz[l] += x[i * W + l] * z[i * W + l];
            sum_zz[l] += z[i * W + l] * z[i * W + l];
        }
    }
    for (int l = 0; l < W; ++l) {
        d_xy[l] = sum_xy[l];
        d_xx[l] = sum_xx[l];
        d_xz[l] = sum_xz[l];
        z_norm[l] = std::sqrt(sum_zz[l]);
    }
}

/// z(:, l) := diag(:, l) .* x(:, l) for lanes with mask[l] != 0 (the
/// lockstep scalar-Jacobi apply; masking keeps a parked lane's stale
/// scratch from being recomputed into NaN via 0 * inf).
template <int W, typename T>
inline void mul_elementwise_lanes(const T* diag, const T* x, const T* mask,
                                  T* z, index_type n)
{
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            z[i * W + l] = mask[l] != T{0} ? diag[i * W + l] * x[i * W + l]
                                           : z[i * W + l];
        }
    }
}

/// z(:, l) := x(:, l) for lanes with mask[l] != 0 (lockstep identity-
/// preconditioner apply).
template <int W, typename T>
inline void copy_lanes(const T* x, const T* mask, T* z, index_type n)
{
    for (index_type i = 0; i < n; ++i) {
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            z[i * W + l] = mask[l] != T{0} ? x[i * W + l] : z[i * W + l];
        }
    }
}

/// Dense matrix-vector product y := A x for a row-major n x n block.
template <typename T>
inline void gemv(index_type n, const T* a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == n && y.len == n);
    for (index_type r = 0; r < n; ++r) {
        T sum{};
        const T* row = a + static_cast<std::size_t>(r) * n;
        for (index_type c = 0; c < n; ++c) {
            sum += row[c] * x[c];
        }
        y[r] = sum;
    }
}

}  // namespace bsis::blas
