// Batch-interleaved ELL slab: the matrix-side layout of the lockstep path.
//
// The scalar host path walks one entry's values at a time; the lockstep
// path advances W batch entries per thread, so the W entries' values are
// interleaved the same way the solver vectors are: the value of (lane l,
// row r, slot k) lives at (k * rows + r) * W + l. Each (r, k) step of the
// lockstep SpMV then reads one contiguous width-W vector of values and one
// contiguous width-W vector of x -- the CPU-lane image of the paper's
// coalesced column-major BatchEll accesses (Section IV-E), with the batch
// dimension playing the role the row dimension plays on the GPU.
//
// The shared pattern is ELL-ized once per solve for any source format
// (CSR / ELL / SELL-P share one pattern across the whole batch). Padding
// slots are remapped to COLUMN 0 instead of the -1 sentinel: their values
// are zero, so they contribute 0 * x[0] and the SpMV inner loop needs no
// padding branch. The original padded pattern must therefore never be used
// for diagonal extraction (a column-0 alias would clobber row 0's
// diagonal); the lockstep driver extracts diagonals from the source views.
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "matrix/batch_csr.hpp"
#include "matrix/batch_ell.hpp"
#include "matrix/batch_sellp.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// Shared ELL-ized lockstep pattern: column-major (slot-major) column
/// indices with padding remapped to column 0.
struct EllSlabPattern {
    index_type rows = 0;
    index_type nnz_per_row = 0;
    /// col_idxs[k * rows + r] = column of (row r, slot k); padding -> 0.
    std::vector<index_type> col_idxs;

    index_type stored_per_entry() const { return rows * nnz_per_row; }
};

/// Width-W view over one group's interleaved values.
template <typename T>
struct EllSlabView {
    index_type rows = 0;
    index_type nnz_per_row = 0;
    const index_type* col_idxs = nullptr;  ///< shared, padding -> column 0
    const T* values = nullptr;             ///< (k * rows + r) * W + l
    int width = 0;
};

/// Builds the lockstep pattern from a shared CSR pattern: slot k of row r
/// is the k-th nonzero of the row, trailing slots are padding.
inline EllSlabPattern make_slab_pattern(const BatchCsr<real_type>& a)
{
    EllSlabPattern p;
    p.rows = a.rows();
    p.nnz_per_row = a.max_nnz_per_row();
    p.col_idxs.assign(
        static_cast<std::size_t>(p.rows) * p.nnz_per_row, 0);
    const auto& ptrs = a.row_ptrs();
    const auto& cols = a.col_idxs();
    for (index_type r = 0; r < p.rows; ++r) {
        index_type k = 0;
        for (index_type q = ptrs[r]; q < ptrs[r + 1]; ++q, ++k) {
            p.col_idxs[static_cast<std::size_t>(k) * p.rows + r] = cols[q];
        }
    }
    return p;
}

/// Builds the lockstep pattern from a shared ELL pattern (same layout;
/// padding slots remapped to column 0).
inline EllSlabPattern make_slab_pattern(const BatchEll<real_type>& a)
{
    EllSlabPattern p;
    p.rows = a.rows();
    p.nnz_per_row = a.nnz_per_row();
    p.col_idxs.assign(a.col_idxs().begin(), a.col_idxs().end());
    for (auto& c : p.col_idxs) {
        if (c == ell_padding) {
            c = 0;
        }
    }
    return p;
}

/// Builds the lockstep pattern from a shared SELL-P pattern: the slab
/// width is the widest slice; narrower slices pad with column-0 zeros.
inline EllSlabPattern make_slab_pattern(const BatchSellp<real_type>& a)
{
    EllSlabPattern p;
    p.rows = a.rows();
    const auto& sets = a.slice_sets();
    const auto ev = a.entry(0);
    index_type width = 0;
    for (index_type s = 0; s + 1 < static_cast<index_type>(sets.size());
         ++s) {
        width = std::max(width, sets[s + 1] - sets[s]);
    }
    p.nnz_per_row = width;
    p.col_idxs.assign(static_cast<std::size_t>(p.rows) * width, 0);
    for (index_type r = 0; r < p.rows; ++r) {
        const index_type slice = r / a.slice_size();
        const index_type slice_width = sets[slice + 1] - sets[slice];
        for (index_type k = 0; k < slice_width; ++k) {
            const index_type c = a.col_idxs()[ev.at(r, k)];
            if (c != ell_padding) {
                p.col_idxs[static_cast<std::size_t>(k) * p.rows + r] = c;
            }
        }
    }
    return p;
}

/// Packs one CSR entry's values into lane `lane` of the slab (trailing
/// padding slots of each row are zeroed).
template <typename T>
inline void pack_slab_lane(const CsrView<T>& a, const EllSlabPattern& p,
                           T* slab, int width, int lane)
{
    for (index_type r = 0; r < p.rows; ++r) {
        const index_type row_nnz = a.row_ptrs[r + 1] - a.row_ptrs[r];
        for (index_type k = 0; k < p.nnz_per_row; ++k) {
            const T v =
                k < row_nnz ? a.values[a.row_ptrs[r] + k] : T{};
            slab[(static_cast<std::size_t>(k) * p.rows + r) * width +
                 lane] = v;
        }
    }
}

/// Packs one ELL entry's values into lane `lane` of the slab.
template <typename T>
inline void pack_slab_lane(const EllView<T>& a, const EllSlabPattern& p,
                           T* slab, int width, int lane)
{
    for (index_type k = 0; k < p.nnz_per_row; ++k) {
        for (index_type r = 0; r < p.rows; ++r) {
            const std::size_t src = static_cast<std::size_t>(k) * p.rows + r;
            slab[src * width + lane] =
                a.col_idxs[src] == ell_padding ? T{} : a.values[src];
        }
    }
}

/// Packs one SELL-P entry's values into lane `lane` of the slab (slices
/// narrower than the slab width pad with zeros).
template <typename T>
inline void pack_slab_lane(const SellpView<T>& a, const EllSlabPattern& p,
                           T* slab, int width, int lane)
{
    for (index_type r = 0; r < p.rows; ++r) {
        const index_type slice = r / a.slice_size;
        const index_type slice_width =
            a.slice_sets[slice + 1] - a.slice_sets[slice];
        for (index_type k = 0; k < p.nnz_per_row; ++k) {
            T v{};
            if (k < slice_width && a.col_idxs[a.at(r, k)] != ell_padding) {
                v = a.values[a.at(r, k)];
            }
            slab[(static_cast<std::size_t>(k) * p.rows + r) * width +
                 lane] = v;
        }
    }
}

/// Lockstep SpMV: y(:, l) := A_l x(:, l) for all W lanes of the group in
/// one pass over the slab. The column index of each (r, k) step is shared
/// by all lanes (shared sparsity pattern), so the inner loop is one
/// contiguous width-W multiply-add; padding contributes 0 * x[0].
/// Per-row accumulation runs in ascending slot order, matching the scalar
/// CSR and ELL SpMV summation order lane for lane.
template <int W, typename T>
inline void spmv_lanes(const EllSlabView<T>& a, const T* x, T* y)
{
    BSIS_ASSERT(a.width == W);
    for (index_type r = 0; r < a.rows; ++r) {
        T sum[W] = {};
        for (index_type k = 0; k < a.nnz_per_row; ++k) {
            const std::size_t slot = static_cast<std::size_t>(k) * a.rows + r;
            const index_type c = a.col_idxs[slot];
            const T* vals = a.values + slot * W;
            const T* xs = x + static_cast<std::size_t>(c) * W;
#pragma omp simd
            for (int l = 0; l < W; ++l) {
                sum[l] += vals[l] * xs[l];
            }
        }
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            y[static_cast<std::size_t>(r) * W + l] = sum[l];
        }
    }
}

/// Lockstep SpMV with a dot fused into the producing sweep:
/// y(:, l) := A_l x(:, l) and d[l] := w(:, l) . y(:, l). The freshly
/// computed y row is dotted against w while it is still in registers, so
/// the dot costs one extra read of w instead of a full separate sweep over
/// two vectors. Rows accumulate in ascending order -- the same order as
/// dot_lanes over the finished y -- so the result is bit-identical to the
/// unfused spmv_lanes + dot_lanes pair.
template <int W, typename T>
inline void spmv_lanes_dot(const EllSlabView<T>& a, const T* x, const T* w,
                           T* y, T* d)
{
    BSIS_ASSERT(a.width == W);
    T acc[W] = {};
    for (index_type r = 0; r < a.rows; ++r) {
        T sum[W] = {};
        for (index_type k = 0; k < a.nnz_per_row; ++k) {
            const std::size_t slot = static_cast<std::size_t>(k) * a.rows + r;
            const index_type c = a.col_idxs[slot];
            const T* vals = a.values + slot * W;
            const T* xs = x + static_cast<std::size_t>(c) * W;
#pragma omp simd
            for (int l = 0; l < W; ++l) {
                sum[l] += vals[l] * xs[l];
            }
        }
        const T* ws = w + static_cast<std::size_t>(r) * W;
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            y[static_cast<std::size_t>(r) * W + l] = sum[l];
            acc[l] += ws[l] * sum[l];
        }
    }
    for (int l = 0; l < W; ++l) {
        d[l] = acc[l];
    }
}

/// Lockstep SpMV with the pipelined BiCGStab triple reduction fused in:
/// y(:, l) := A_l x(:, l), d_yy[l] := y . y, d_yw[l] := y . w,
/// d_yv[l] := y . v. With y = t, w = s, v = r_hat this replaces the
/// dot2(t, t, s) sweep AND supplies t . r_hat for the rho recurrence, all
/// while t is register-resident. Accumulation order per result matches
/// dot2_lanes / dot_lanes over the finished y bit for bit.
template <int W, typename T>
inline void spmv_lanes_dot3(const EllSlabView<T>& a, const T* x, const T* w,
                            const T* v, T* y, T* d_yy, T* d_yw, T* d_yv)
{
    BSIS_ASSERT(a.width == W);
    T acc_yy[W] = {};
    T acc_yw[W] = {};
    T acc_yv[W] = {};
    for (index_type r = 0; r < a.rows; ++r) {
        T sum[W] = {};
        for (index_type k = 0; k < a.nnz_per_row; ++k) {
            const std::size_t slot = static_cast<std::size_t>(k) * a.rows + r;
            const index_type c = a.col_idxs[slot];
            const T* vals = a.values + slot * W;
            const T* xs = x + static_cast<std::size_t>(c) * W;
#pragma omp simd
            for (int l = 0; l < W; ++l) {
                sum[l] += vals[l] * xs[l];
            }
        }
        const T* ws = w + static_cast<std::size_t>(r) * W;
        const T* vs = v + static_cast<std::size_t>(r) * W;
#pragma omp simd
        for (int l = 0; l < W; ++l) {
            const T yi = sum[l];
            y[static_cast<std::size_t>(r) * W + l] = yi;
            acc_yy[l] += yi * yi;
            acc_yw[l] += yi * ws[l];
            acc_yv[l] += yi * vs[l];
        }
    }
    for (int l = 0; l < W; ++l) {
        d_yy[l] = acc_yy[l];
        d_yw[l] = acc_yw[l];
        d_yv[l] = acc_yv[l];
    }
}

/// Scalar SpMV of one lane's column of the slab: y[r] := A_l x[r]. Used by
/// the per-lane refill setup (initial residual of a freshly loaded system)
/// where only one lane's data is valid.
template <typename T>
inline void spmv_slab_lane(const EllSlabView<T>& a, int lane, const T* x,
                           T* y)
{
    for (index_type r = 0; r < a.rows; ++r) {
        T sum{};
        for (index_type k = 0; k < a.nnz_per_row; ++k) {
            const std::size_t slot = static_cast<std::size_t>(k) * a.rows + r;
            const index_type c = a.col_idxs[slot];
            sum += a.values[slot * a.width + lane] *
                   x[static_cast<std::size_t>(c) * a.width + lane];
        }
        y[static_cast<std::size_t>(r) * a.width + lane] = sum;
    }
}

}  // namespace bsis
