#include "gpusim/cache.hpp"

#include <algorithm>

namespace bsis::gpusim {

Cache::Cache(std::int64_t size_bytes, int line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways)
{
    BSIS_ENSURE_ARG(line_bytes > 0 && ways > 0, "bad cache geometry");
    num_sets_ = std::max<std::int64_t>(
        1, size_bytes / (static_cast<std::int64_t>(line_bytes) * ways));
    sets_.assign(static_cast<std::size_t>(num_sets_ * ways_), Way{});
}

bool Cache::access(std::uint64_t addr)
{
    ++stats_.accesses;
    ++tick_;
    const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
    const auto set =
        static_cast<std::int64_t>(line % static_cast<std::uint64_t>(num_sets_));
    Way* base = sets_.data() + static_cast<std::size_t>(set * ways_);
    Way* lru = base;
    for (int w = 0; w < ways_; ++w) {
        if (base[w].tag == line) {
            base[w].last_use = tick_;
            ++stats_.hits;
            return true;
        }
        if (base[w].last_use < lru->last_use) {
            lru = base + w;
        }
    }
    lru->tag = line;
    lru->last_use = tick_;
    return false;
}

void Cache::invalidate()
{
    std::fill(sets_.begin(), sets_.end(), Way{});
}

void coalesce(const std::vector<std::uint64_t>& lane_addrs,
              int bytes_per_lane, int segment_bytes,
              std::vector<std::uint64_t>& out)
{
    out.clear();
    const auto seg = static_cast<std::uint64_t>(segment_bytes);
    for (const auto addr : lane_addrs) {
        // A lane access may straddle a segment boundary.
        const std::uint64_t first = addr / seg;
        const std::uint64_t last =
            (addr + static_cast<std::uint64_t>(bytes_per_lane) - 1) / seg;
        for (std::uint64_t s = first; s <= last; ++s) {
            out.push_back(s * seg);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

MemoryHierarchy::MemoryHierarchy(std::int64_t l1_bytes, std::int64_t l2_bytes,
                                 int line_bytes)
    : l1_(l1_bytes, line_bytes, 4), l2_(l2_bytes, line_bytes, 16)
{}

void MemoryHierarchy::access(std::uint64_t addr)
{
    if (!l1_.access(addr)) {
        if (!l2_.access(addr)) {
            ++dram_transactions_;
        }
    }
}

}  // namespace bsis::gpusim
