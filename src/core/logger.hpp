// Per-system convergence logging (paper Listing 1 `LogType`).
//
// Each system of the batch converges independently; the logger records the
// final iteration count and residual norm for every system, which feeds
// both the application (convergence verification) and the GPU cost model
// (per-block durations in the wave scheduler).
#pragma once

#include <vector>

#include "core/failure.hpp"
#include "util/types.hpp"

namespace bsis {

/// Final convergence state of every system in a batch.
class BatchLog {
public:
    BatchLog() = default;

    explicit BatchLog(size_type num_batch)
        : iters_(static_cast<std::size_t>(num_batch), 0),
          res_norms_(static_cast<std::size_t>(num_batch), 0.0),
          converged_(static_cast<std::size_t>(num_batch), false),
          failures_(static_cast<std::size_t>(num_batch),
                    FailureClass::max_iters)
    {}

    size_type num_batch() const
    {
        return static_cast<size_type>(iters_.size());
    }

    void record(size_type system, int iterations, real_type res_norm,
                bool converged, FailureClass failure)
    {
        iters_[static_cast<std::size_t>(system)] = iterations;
        res_norms_[static_cast<std::size_t>(system)] = res_norm;
        converged_[static_cast<std::size_t>(system)] = converged;
        failures_[static_cast<std::size_t>(system)] = failure;
    }

    /// Legacy entry point (pre-taxonomy): derives the class from the
    /// converged bit alone.
    void record(size_type system, int iterations, real_type res_norm,
                bool converged)
    {
        record(system, iterations, res_norm, converged,
               converged ? FailureClass::converged
                         : FailureClass::max_iters);
    }

    int iterations(size_type system) const
    {
        return iters_[static_cast<std::size_t>(system)];
    }

    real_type residual_norm(size_type system) const
    {
        return res_norms_[static_cast<std::size_t>(system)];
    }

    bool converged(size_type system) const
    {
        return converged_[static_cast<std::size_t>(system)];
    }

    FailureClass failure(size_type system) const
    {
        return failures_[static_cast<std::size_t>(system)];
    }

    /// Per-class tallies over the whole batch (index = FailureClass value).
    FailureCounts failure_counts() const
    {
        FailureCounts counts{};
        for (const auto f : failures_) {
            ++counts[static_cast<std::size_t>(f)];
        }
        return counts;
    }

    /// Vacuously true for an empty batch, matching the executors' empty
    /// early-return reporting success: "no system failed to converge".
    bool all_converged() const
    {
        for (const auto c : converged_) {
            if (!c) {
                return false;
            }
        }
        return true;
    }

    std::int64_t total_iterations() const
    {
        std::int64_t total = 0;
        for (const auto i : iters_) {
            total += i;
        }
        return total;
    }

    int max_iterations() const
    {
        int m = 0;
        for (const auto i : iters_) {
            m = i > m ? i : m;
        }
        return m;
    }

    double mean_iterations() const
    {
        return iters_.empty() ? 0.0
                              : static_cast<double>(total_iterations()) /
                                    static_cast<double>(iters_.size());
    }

    const std::vector<int>& all_iterations() const { return iters_; }

private:
    std::vector<int> iters_;
    std::vector<real_type> res_norms_;
    std::vector<char> converged_;
    std::vector<FailureClass> failures_;
};

/// Per-thread staging buffer for BatchLog writes.
///
/// BatchLog::record(i, ...) writes three arrays at index i; adjacent batch
/// entries recorded by different OpenMP threads land on the same cache
/// line (16 int iteration counts per 64 B line), so the batch drivers'
/// per-entry `record` calls ping-pong lines between cores. Each thread
/// instead appends to its own cache-line-aligned buffer, and one
/// single-threaded merge pass writes the log after the parallel region.
class BatchLogStage {
public:
    explicit BatchLogStage(int num_threads)
        : buffers_(static_cast<std::size_t>(num_threads))
    {}

    void record(int thread, size_type system, int iterations,
                real_type res_norm, bool converged, FailureClass failure)
    {
        buffers_[static_cast<std::size_t>(thread)].entries.push_back(
            {system, iterations, res_norm, converged, failure});
    }

    /// Legacy entry point (pre-taxonomy): derives the class from the
    /// converged bit alone.
    void record(int thread, size_type system, int iterations,
                real_type res_norm, bool converged)
    {
        record(thread, system, iterations, res_norm, converged,
               converged ? FailureClass::converged
                         : FailureClass::max_iters);
    }

    void merge_into(BatchLog& log) const
    {
        for (const auto& buf : buffers_) {
            for (const auto& e : buf.entries) {
                log.record(e.system, e.iterations, e.res_norm, e.converged,
                           e.failure);
            }
        }
    }

private:
    struct Entry {
        size_type system;
        int iterations;
        real_type res_norm;
        bool converged;
        FailureClass failure;
    };
    /// Aligned so neighbouring threads' vector headers (the end pointer
    /// bumped on every push_back) do not share a cache line either.
    struct alignas(64) ThreadBuffer {
        std::vector<Entry> entries;
    };

public:
    /// Per-thread staging alignment (one cache line), exposed so tests
    /// can assert the false-sharing guarantee.
    static constexpr std::size_t buffer_alignment = alignof(ThreadBuffer);

private:
    std::vector<ThreadBuffer> buffers_;
};

}  // namespace bsis
