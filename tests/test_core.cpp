#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/bicgstab.hpp"
#include "core/monolithic.hpp"
#include "core/solver.hpp"
#include "core/tuning.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

/// Workload fixture: a small nonsymmetric, well-conditioned stencil batch
/// with random right-hand sides.
struct Problem {
    BatchCsr<real_type> a;
    BatchVector<real_type> b;

    static Problem make(size_type nbatch, index_type nx = 8,
                        index_type ny = 7,
                        StencilKind kind = StencilKind::nine_point,
                        bool spd = false)
    {
        SyntheticStencilParams params;
        params.seed = 1234;
        if (spd) {
            // CG needs a symmetric positive definite batch.
            params.advection = 0.0;
            params.perturbation = 0.0;
        }
        Problem p{make_synthetic_batch(nx, ny, kind, nbatch, params),
                  BatchVector<real_type>(nbatch, nx * ny)};
        Rng rng(55);
        for (size_type i = 0; i < nbatch; ++i) {
            auto bv = p.b.entry(i);
            for (index_type k = 0; k < bv.len; ++k) {
                bv[k] = rng.uniform(-1.0, 1.0);
            }
        }
        return p;
    }
};

real_type residual_norm(const BatchCsr<real_type>& a, size_type entry,
                        ConstVecView<real_type> x, ConstVecView<real_type> b)
{
    std::vector<real_type> r(static_cast<std::size_t>(b.len));
    spmv(a.entry(entry), x, VecView<real_type>{r.data(), b.len});
    real_type sum = 0;
    for (index_type i = 0; i < b.len; ++i) {
        const real_type d = r[static_cast<std::size_t>(i)] - b[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

using Composition = std::tuple<SolverType, PrecondType>;

class SolverComposition : public ::testing::TestWithParam<Composition> {};

TEST_P(SolverComposition, ConvergesToAbsoluteTolerance)
{
    const auto [solver, precond] = GetParam();
    // CG requires an SPD batch; Richardson without Jacobi needs a small
    // enough relaxation parameter for the unscaled operator.
    // CG needs SPD; Chebyshev's real-interval theory also wants a
    // symmetric operator; classical BiCG requires a SYMMETRIC
    // preconditioner (M^-T = M^-1), which block-Jacobi only is for
    // symmetric blocks.
    auto p = Problem::make(
        4, 8, 7, StencilKind::nine_point,
        solver == SolverType::cg || solver == SolverType::chebyshev ||
            (solver == SolverType::bicg &&
             precond == PrecondType::block_jacobi));
    BatchVector<real_type> x(4, p.a.rows());
    SolverSettings s;
    s.solver = solver;
    s.precond = precond;
    s.tolerance = 1e-10;
    s.max_iterations = 2000;
    s.richardson_omega = precond == PrecondType::jacobi ? 0.8 : 0.3;
    const auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    for (size_type i = 0; i < 4; ++i) {
        EXPECT_LT(residual_norm(p.a, i, x.entry(i), p.b.entry(i)), 1e-9)
            << "system " << i;
        EXPECT_GT(result.log.iterations(i), 0);
    }
}

std::string composition_name(
    const ::testing::TestParamInfo<Composition>& info)
{
    std::string name;
    switch (std::get<0>(info.param)) {
    case SolverType::bicgstab: name = "bicgstab"; break;
    case SolverType::bicg: name = "bicg"; break;
    case SolverType::cgs: name = "cgs"; break;
    case SolverType::chebyshev: name = "chebyshev"; break;
    case SolverType::cg: name = "cg"; break;
    case SolverType::gmres: name = "gmres"; break;
    case SolverType::richardson: name = "richardson"; break;
    }
    switch (std::get<1>(info.param)) {
    case PrecondType::identity: name += "_identity"; break;
    case PrecondType::jacobi: name += "_jacobi"; break;
    case PrecondType::block_jacobi: name += "_blockjacobi"; break;
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCompositions, SolverComposition,
    ::testing::Combine(::testing::Values(SolverType::bicgstab,
                                         SolverType::bicg, SolverType::cgs,
                                         SolverType::cg, SolverType::gmres,
                                         SolverType::richardson,
                                         SolverType::chebyshev),
                       ::testing::Values(PrecondType::identity,
                                         PrecondType::jacobi,
                                         PrecondType::block_jacobi)),
    composition_name);

TEST(SolverFormats, CsrEllDenseGiveSameSolution)
{
    auto p = Problem::make(3);
    auto ell = to_ell(p.a);
    auto dense = to_dense(p.a);
    SolverSettings s;
    s.tolerance = 1e-12;
    s.max_iterations = 500;
    BatchVector<real_type> x_csr(3, p.a.rows());
    BatchVector<real_type> x_ell(3, p.a.rows());
    BatchVector<real_type> x_dense(3, p.a.rows());
    const auto r1 = solve_batch(p.a, p.b, x_csr, s);
    const auto r2 = solve_batch(ell, p.b, x_ell, s);
    const auto r3 = solve_batch(dense, p.b, x_dense, s);
    EXPECT_TRUE(r1.log.all_converged());
    EXPECT_TRUE(r2.log.all_converged());
    EXPECT_TRUE(r3.log.all_converged());
    for (size_type i = 0; i < 3; ++i) {
        for (index_type k = 0; k < p.a.rows(); ++k) {
            EXPECT_NEAR(x_csr.entry(i)[k], x_ell.entry(i)[k], 1e-9);
            EXPECT_NEAR(x_csr.entry(i)[k], x_dense.entry(i)[k], 1e-9);
        }
    }
}

TEST(SolverBehavior, JacobiReducesBicgstabIterations)
{
    // Scale rows to make Jacobi matter: multiply each row by a random
    // positive factor (row scaling leaves the solution intact).
    auto p = Problem::make(2);
    Rng rng(3);
    const auto& ptrs = p.a.row_ptrs();
    for (size_type e = 0; e < 2; ++e) {
        auto bv = p.b.entry(e);
        for (index_type r = 0; r < p.a.rows(); ++r) {
            const real_type scale = std::exp(rng.uniform(-2.0, 2.0));
            for (index_type k = ptrs[r]; k < ptrs[r + 1]; ++k) {
                p.a.values(e)[k] *= scale;
            }
            bv[r] *= scale;
        }
    }
    SolverSettings s;
    s.stop = StopType::rel_residual;
    s.tolerance = 1e-10;
    s.max_iterations = 3000;
    BatchVector<real_type> x(2, p.a.rows());
    s.precond = PrecondType::identity;
    const auto plain = solve_batch(p.a, p.b, x, s);
    s.precond = PrecondType::jacobi;
    const auto prec = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(prec.log.all_converged());
    EXPECT_LT(prec.log.total_iterations(), plain.log.total_iterations());
}

TEST(SolverBehavior, RelativeStopMatchesReduction)
{
    auto p = Problem::make(1);
    SolverSettings s;
    s.stop = StopType::rel_residual;
    s.tolerance = 1e-6;
    BatchVector<real_type> x(1, p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    real_type b_norm = blas::nrm2(ConstVecView<real_type>(p.b.entry(0)));
    EXPECT_LT(residual_norm(p.a, 0, x.entry(0), p.b.entry(0)),
              1e-6 * b_norm * 1.5);
}

TEST(SolverBehavior, MaxIterationCapIsRespected)
{
    auto p = Problem::make(1);
    SolverSettings s;
    s.tolerance = 1e-30;  // unreachable
    s.max_iterations = 3;
    BatchVector<real_type> x(1, p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_FALSE(result.log.all_converged());
    EXPECT_LE(result.log.iterations(0), 3);
}

TEST(SolverBehavior, ExactInitialGuessConvergesInZeroIterations)
{
    auto p = Problem::make(1);
    SolverSettings s;
    s.tolerance = 1e-8;
    BatchVector<real_type> x(1, p.a.rows());
    auto first = solve_batch(p.a, p.b, x, s);
    ASSERT_TRUE(first.log.all_converged());
    s.use_initial_guess = true;
    const auto second = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(second.log.all_converged());
    EXPECT_EQ(second.log.iterations(0), 0);
}

TEST(SolverBehavior, WarmStartNeverSlowerThanZeroGuess)
{
    auto p = Problem::make(2);
    SolverSettings s;
    s.tolerance = 1e-10;
    BatchVector<real_type> x(2, p.a.rows());
    const auto cold = solve_batch(p.a, p.b, x, s);
    // Perturb the matrix slightly (a Picard-like coefficient update).
    for (size_type e = 0; e < 2; ++e) {
        for (index_type k = 0; k < p.a.nnz_per_entry(); ++k) {
            p.a.values(e)[k] *= 1.0 + 1e-6 * ((k % 3) - 1);
        }
    }
    s.use_initial_guess = true;
    const auto warm = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(warm.log.all_converged());
    EXPECT_LT(warm.log.total_iterations(), cold.log.total_iterations());
}

TEST(SolverBehavior, PerSystemConvergenceIsIndependent)
{
    // One easy and one hard system in the same batch must report
    // different iteration counts (Section IV: independent monitoring).
    auto p = Problem::make(2);
    // Make system 1 harder: weaker diagonal.
    const auto& ptrs = p.a.row_ptrs();
    const auto& cols = p.a.col_idxs();
    for (index_type r = 0; r < p.a.rows(); ++r) {
        for (index_type k = ptrs[r]; k < ptrs[r + 1]; ++k) {
            if (cols[k] == r) {
                p.a.values(1)[k] = 1.0 + 0.3 * (p.a.values(1)[k] - 1.0);
            }
        }
    }
    SolverSettings s;
    s.tolerance = 1e-10;
    BatchVector<real_type> x(2, p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_NE(result.log.iterations(0), result.log.iterations(1));
    EXPECT_EQ(result.log.max_iterations(),
              std::max(result.log.iterations(0), result.log.iterations(1)));
}

TEST(SolverValidation, RejectsMismatchedBatchSizes)
{
    auto p = Problem::make(2);
    BatchVector<real_type> x(3, p.a.rows());
    EXPECT_THROW(solve_batch(p.a, p.b, x, SolverSettings{}),
                 DimensionMismatch);
}

TEST(SolverValidation, RejectsNegativeSettings)
{
    auto p = Problem::make(1);
    BatchVector<real_type> x(1, p.a.rows());
    SolverSettings s;
    s.max_iterations = -1;
    EXPECT_THROW(solve_batch(p.a, p.b, x, s), BadArgument);
    s.max_iterations = 10;
    s.tolerance = -1e-10;
    EXPECT_THROW(solve_batch(p.a, p.b, x, s), BadArgument);
}

TEST(BatchLogTest, AggregatesAreConsistent)
{
    BatchLog log(3);
    log.record(0, 5, 1e-11, true);
    log.record(1, 30, 2e-11, true);
    log.record(2, 12, 3e-11, true);
    EXPECT_EQ(log.total_iterations(), 47);
    EXPECT_EQ(log.max_iterations(), 30);
    EXPECT_NEAR(log.mean_iterations(), 47.0 / 3.0, 1e-12);
    EXPECT_TRUE(log.all_converged());
    log.record(2, 500, 1e-3, false);
    EXPECT_FALSE(log.all_converged());
}

TEST(BatchLogTest, AllConvergedIsVacuouslyTrueForEmptyBatch)
{
    // "No system failed to converge" -- matches the executors' empty
    // early-return, which also reports success.
    EXPECT_TRUE(BatchLog{}.all_converged());
    EXPECT_TRUE(BatchLog(0).all_converged());
    BatchLog one(1);
    EXPECT_FALSE(one.all_converged());  // default-recorded as unconverged
}

TEST(BatchLogStageTest, MergesOutOfOrderRecordsToTheRightSystems)
{
    // Threads finish systems in arbitrary order; the merge must land
    // every staged record at its own system index regardless.
    BatchLogStage stage(3);
    stage.record(2, 4, 40, 4e-11, true);
    stage.record(0, 1, 10, 1e-11, true);
    stage.record(1, 3, 30, 3e-11, false);
    stage.record(2, 0, 5, 5e-12, true);
    stage.record(0, 2, 20, 2e-11, true);

    BatchLog log(5);
    stage.merge_into(log);
    EXPECT_EQ(log.iterations(0), 5);
    EXPECT_EQ(log.iterations(1), 10);
    EXPECT_EQ(log.iterations(2), 20);
    EXPECT_EQ(log.iterations(3), 30);
    EXPECT_EQ(log.iterations(4), 40);
    EXPECT_FALSE(log.converged(3));
    EXPECT_TRUE(log.converged(0) && log.converged(1) && log.converged(2) &&
                log.converged(4));
    EXPECT_NEAR(log.residual_norm(4), 4e-11, 1e-20);
}

TEST(BatchLogStageTest, DuplicateRecordsLastWriteWins)
{
    // Within a thread, a later record of the same system supersedes the
    // earlier one; across threads, the higher thread index merges later.
    BatchLogStage stage(2);
    stage.record(0, 0, 3, 1e-3, false);
    stage.record(0, 0, 7, 1e-11, true);  // same thread, later record
    stage.record(0, 1, 9, 2e-11, true);
    stage.record(1, 1, 11, 5e-12, true);  // later thread wins on merge

    BatchLog log(2);
    stage.merge_into(log);
    EXPECT_EQ(log.iterations(0), 7);
    EXPECT_TRUE(log.converged(0));
    EXPECT_NEAR(log.residual_norm(0), 1e-11, 1e-20);
    EXPECT_EQ(log.iterations(1), 11);
    EXPECT_NEAR(log.residual_norm(1), 5e-12, 1e-20);
}

TEST(BatchLogStageTest, ThreadBuffersAreCacheLineAligned)
{
    // The whole point of the stage is that neighbouring threads' buffers
    // never share a cache line.
    EXPECT_GE(BatchLogStage::buffer_alignment, 64u);
    EXPECT_EQ(BatchLogStage::buffer_alignment % 64u, 0u);
}

TEST(Monolithic, SolvesAllSystemsOfTheBatch)
{
    auto p = Problem::make(4);
    BatchVector<real_type> x(4, p.a.rows());
    SolverSettings s;
    s.tolerance = 1e-10;
    const auto result = solve_monolithic(p.a, p.b, x, s);
    EXPECT_TRUE(result.converged);
    for (size_type i = 0; i < 4; ++i) {
        EXPECT_LT(residual_norm(p.a, i, x.entry(i), p.b.entry(i)), 1e-8);
    }
}

TEST(Monolithic, GlobalIterationCountAtLeastWorstSystem)
{
    // Section II of the paper: the block-diagonal iteration count is
    // governed by the hardest system.
    auto p = Problem::make(3);
    // Weaken system 2's diagonal to slow its convergence.
    const auto& ptrs = p.a.row_ptrs();
    const auto& cols = p.a.col_idxs();
    for (index_type r = 0; r < p.a.rows(); ++r) {
        for (index_type k = ptrs[r]; k < ptrs[r + 1]; ++k) {
            if (cols[k] == r) {
                p.a.values(2)[k] = 1.0 + 0.25 * (p.a.values(2)[k] - 1.0);
            }
        }
    }
    SolverSettings s;
    s.tolerance = 1e-10;
    BatchVector<real_type> x_batch(3, p.a.rows());
    const auto batched = solve_batch(p.a, p.b, x_batch, s);
    BatchVector<real_type> x_mono(3, p.a.rows());
    const auto mono = solve_monolithic(p.a, p.b, x_mono, s);
    ASSERT_TRUE(batched.log.all_converged());
    ASSERT_TRUE(mono.converged);
    // Batched: total work = sum of per-system iterations; monolithic does
    // its global count on EVERY system.
    const auto mono_work =
        static_cast<std::int64_t>(mono.iterations) * 3;
    EXPECT_GT(mono_work, batched.log.total_iterations());
}

TEST(Tuning, NinePointStencilPicksEll)
{
    auto csr = make_synthetic_batch(32, 31, StencilKind::nine_point, 1, {});
    const auto choice = tune(compute_stats(csr), 32);
    EXPECT_EQ(choice.format, BatchFormat::ell);
    EXPECT_EQ(choice.block_size, 992);  // 992 rows = 31 full warps
    EXPECT_LT(choice.ell_padding_overhead, 0.05);
}

TEST(Tuning, IrregularRowsPickCsr)
{
    // A pattern with one dense row: ELL padding would be ~n per row.
    const index_type n = 64;
    std::vector<index_type> row_ptrs(static_cast<std::size_t>(n) + 1);
    std::vector<index_type> col_idxs;
    row_ptrs[0] = 0;
    for (index_type r = 0; r < n; ++r) {
        if (r == 0) {
            for (index_type c = 0; c < n; ++c) {
                col_idxs.push_back(c);
            }
        } else {
            col_idxs.push_back(r);
        }
        row_ptrs[static_cast<std::size_t>(r) + 1] =
            static_cast<index_type>(col_idxs.size());
    }
    BatchCsr<real_type> batch(1, n, row_ptrs, col_idxs);
    const auto choice = tune(compute_stats(batch), 32);
    EXPECT_EQ(choice.format, BatchFormat::csr);
}

TEST(Tuning, BlockSizesRespectLimits)
{
    EXPECT_EQ(ell_block_size(992, 32), 992);
    EXPECT_EQ(ell_block_size(5, 32), 32);
    EXPECT_EQ(ell_block_size(5000, 32), 1024);
    EXPECT_EQ(ell_block_size(992, 64), 1024);
    EXPECT_EQ(csr_block_size(992, 32), 1024);
    EXPECT_EQ(csr_block_size(4, 32), 128);
}

TEST(SolverBehavior, CgsAndBicgstabAgreeOnSolution)
{
    auto p = Problem::make(2);
    SolverSettings s;
    s.tolerance = 1e-11;
    s.max_iterations = 1000;
    BatchVector<real_type> x_b(2, p.a.rows());
    BatchVector<real_type> x_c(2, p.a.rows());
    s.solver = SolverType::bicgstab;
    const auto rb = solve_batch(p.a, p.b, x_b, s);
    s.solver = SolverType::cgs;
    const auto rc = solve_batch(p.a, p.b, x_c, s);
    ASSERT_TRUE(rb.log.all_converged());
    ASSERT_TRUE(rc.log.all_converged());
    for (size_type i = 0; i < 2; ++i) {
        for (index_type k = 0; k < p.a.rows(); ++k) {
            EXPECT_NEAR(x_b.entry(i)[k], x_c.entry(i)[k], 1e-8);
        }
    }
}

TEST(SolverBehavior, ResidualHistoryIsRecordedAndReachesTolerance)
{
    auto p = Problem::make(1);
    Workspace ws(p.a.rows(), bicgstab_work_vectors + 1);
    BatchVector<real_type> x(1, p.a.rows());
    JacobiPrec prec;
    prec.generate(p.a.entry(0), ws.slot(bicgstab_work_vectors));
    std::vector<real_type> history;
    const auto result = bicgstab_kernel(
        p.a.entry(0), p.b.entry(0), x.entry(0), prec,
        AbsResidualStop{1e-10}, 500, ws, 0, &history);
    ASSERT_TRUE(result.converged);
    // One entry per evaluated iteration boundary, starting at iteration 0.
    EXPECT_GE(static_cast<int>(history.size()), result.iterations);
    EXPECT_GT(history.front(), history.back());
    EXPECT_LT(history.back(), 1e-9);
    // The history's last value is the residual the solver reported (or
    // tighter: the final half-iteration may improve on it).
    EXPECT_LE(result.residual_norm, history.back() * (1 + 1e-12));
}

TEST(WorkProfile, BicgstabCountsMatchAlgorithmOne)
{
    const auto p = work_profile(SolverType::bicgstab, PrecondType::jacobi);
    EXPECT_EQ(p.spmv_per_iter, 2);
    EXPECT_EQ(p.precond_per_iter, 2);
    EXPECT_EQ(p.dots_per_iter, 6);
    EXPECT_EQ(p.num_vectors, 10);  // 9 + Jacobi inverse diagonal
    const auto ident =
        work_profile(SolverType::bicgstab, PrecondType::identity);
    EXPECT_EQ(ident.num_vectors, 9);  // the paper's count
}

}  // namespace
}  // namespace bsis
