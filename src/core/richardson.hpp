// Batched (preconditioned) Richardson iteration kernel.
//
// The simplest member of the solver family: x += omega * M^-1 r. Useful as
// a smoother and as the baseline iterative method in the solver-comparison
// example.
#pragma once

#include <cmath>
#include <vector>

#include "blas/kernels.hpp"
#include "core/workspace.hpp"
#include "obs/telemetry.hpp"
#include "util/types.hpp"

namespace bsis {

/// Scratch vectors: r, t.
inline constexpr int richardson_work_vectors = 2;

/// `history`, when non-null, receives the residual norm at the top of
/// every iteration (same contract as `bicgstab_kernel`).
template <typename MatrixView, typename Prec, typename Stop>
EntryResult richardson_kernel(const MatrixView& a, ConstVecView<real_type> b,
                              VecView<real_type> x, const Prec& prec,
                              const Stop& stop, int max_iters, Workspace& ws,
                              real_type omega = real_type{1},
                              int work_offset = 0,
                              std::vector<real_type>* history = nullptr)
{
    auto r = ws.slot(work_offset + 0);
    auto t = ws.slot(work_offset + 1);

    const real_type b_norm = blas::nrm2(b);
    real_type r0 = 0;
    if (history != nullptr) {
        history->clear();
    }
    for (int iter = 0; iter < max_iters; ++iter) {
        obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
        blas::axpby(real_type{1}, b, real_type{-1}, r);
        const real_type r_norm = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::nrm2(ConstVecView<real_type>(r));
        });
        if (iter == 0) {
            r0 = r_norm;
        }
        if (history != nullptr) {
            history->push_back(r_norm);
        }
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true, FailureClass::converged};
        }
        if (!std::isfinite(r_norm)) {
            return {iter, r_norm, false, FailureClass::non_finite};
        }
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(r), t); });
        obs::traced(obs::Phase::update, "update",
                    [&] { blas::axpy(omega, ConstVecView<real_type>(t), x); });
    }
    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    blas::axpby(real_type{1}, b, real_type{-1}, r);
    const real_type r_norm = obs::traced(
        obs::Phase::reduction, "reduction",
        [&] { return blas::nrm2(ConstVecView<real_type>(r)); });
    if (history != nullptr) {
        history->push_back(r_norm);
    }
    const bool done = stop.done(r_norm, b_norm);
    return {max_iters, r_norm, done, classify_exhausted(r_norm, r0, done)};
}

}  // namespace bsis
