// Performance attribution: byte/flop accounting per kernel phase, roofline
// classification, measured-vs-modeled drift detection, and the rolling
// continuous-profiler window.
//
// The work LEDGER is the modeled half: it translates a solver's
// per-iteration operation counts (core SolverWorkProfile, the same struct
// the gpusim cost model prices) plus the runtime shape of the batch into
// bytes read/written, flops, and reduction points per phase kind. The
// measured half is obs/phase.hpp's PhaseAccumulator, fed by every
// `obs::traced` span on all three execution paths. Dividing one by the
// other gives achieved GB/s and GF/s per phase, a roofline classification
// against the platform peaks, and -- when measurement and model disagree
// beyond a threshold -- a drift alarm with a FlightRecorder-style JSON
// annotation for the autotuning audit trail.
//
// Byte-accounting conventions (the hand-count contract the attribution
// tests pin down; DESIGN.md "Performance attribution" restates it):
//   * bytes are LOGICAL traffic: each operand vector/array touched by a
//     sweep counts once, with no cache model and no transaction
//     amplification (the gpusim tracer measures those effects; comparing
//     it against this ledger is exactly the drift check);
//   * the shared sparsity pattern counts per system -- every block/thread
//     streams it, hierarchy hits notwithstanding;
//   * a dot counts two operand vectors read, a norm one; a fused or
//     piggybacked extra dot result adds 2n flops but only the extra
//     operand vectors the work profile declares;
//   * ELL and SELL-P flops include the padding (the kernels multiply the
//     stored zeros).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/work_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/types.hpp"

namespace bsis::obs {

/// Bytes/flops/reduction-points of one phase kind.
struct PhaseWork {
    double bytes_read = 0;
    double bytes_written = 0;
    double flops = 0;
    double reductions = 0;  ///< block-wide reduction (synchronization) points

    double bytes() const { return bytes_read + bytes_written; }

    PhaseWork& operator+=(const PhaseWork& o)
    {
        bytes_read += o.bytes_read;
        bytes_written += o.bytes_written;
        flops += o.flops;
        reductions += o.reductions;
        return *this;
    }
};

/// Per-phase work of one solve (or of one iteration of one system, when
/// built with total_iterations = num_systems = 1).
struct WorkLedger {
    PhaseWork phase[phase_count] = {};

    const PhaseWork& of(Phase p) const
    {
        return phase[static_cast<int>(p)];
    }
    PhaseWork& of(Phase p) { return phase[static_cast<int>(p)]; }

    PhaseWork total() const
    {
        PhaseWork t;
        for (const auto& p : phase) {
            t += p;
        }
        return t;
    }
};

/// Storage format as the ledger distinguishes it (the core BatchFormat
/// only spans the two GPU kernel formats).
enum class LedgerFormat { csr, ell, sellp, dense };

/// Shape of one batch system as the byte accounting needs it.
struct LedgerShape {
    index_type rows = 0;
    /// Stored values per system INCLUDING padding (CSR: nnz; ELL:
    /// nnz_per_row * rows; SELL-P: the slice-padded count; dense: rows^2).
    index_type stored_nnz = 0;
    index_type nnz_per_row = 0;  ///< ELL width / max CSR row length
};

/// Builds the ledger of a whole batched solve: per-iteration work from
/// the profile's sweep structure (fused shape when present, one sweep per
/// BLAS call otherwise) scaled by `total_iterations` (summed over the
/// batch), plus per-system setup work scaled by `num_systems`.
WorkLedger work_ledger(const SolverWorkProfile& work,
                       const LedgerShape& shape, LedgerFormat format,
                       double total_iterations, double num_systems);

/// Platform peaks the roofline classification compares against.
struct RooflinePeaks {
    double gbps = 0;    ///< peak memory bandwidth
    double gflops = 0;  ///< peak FP64 rate

    /// Ridge-point arithmetic intensity (flop/byte) separating memory-
    /// from compute-bound.
    double ridge() const { return gbps <= 0 ? 0.0 : gflops / gbps; }
};

/// The host peaks used for solve.phase.* attribution. The default mirrors
/// gpusim::skylake_node() (the paper's CPU baseline node); executors or
/// apps running on different hardware may override it. (obs cannot link
/// against gpusim -- gpusim links against core which links obs -- so the
/// numbers are mirrored here and cross-checked by the attribution tests.)
RooflinePeaks host_roofline();
void set_host_roofline(const RooflinePeaks& peaks);

/// One phase's attribution numbers: measurement joined with the ledger.
struct PhaseAttribution {
    Phase phase = Phase::other;
    double seconds = 0;
    std::int64_t calls = 0;
    double bytes = 0;
    double flops = 0;
    double gbps = 0;       ///< achieved: bytes / seconds
    double gflops = 0;     ///< achieved: flops / seconds
    double intensity = 0;  ///< flops / bytes
    bool memory_bound = true;   ///< intensity below the roofline ridge
    double peak_fraction = 0;   ///< achieved / peak at the binding limit
};

/// Joins measured phase times with the ledger under `peaks`. Phases with
/// no measured time and no ledger work are omitted.
std::vector<PhaseAttribution> attribute_phases(const WorkLedger& ledger,
                                               const PhaseTotals& measured,
                                               const RooflinePeaks& peaks);

/// Records one solve's attribution as gauges under
/// `<prefix>.phase.<name>.{seconds,calls,bytes,flops,gbps,gflops,
/// intensity,memory_bound,peak_fraction}` (prefix "solve" for the host
/// paths, "gpusim" for the modeled device phases).
void record_phase_attribution(MetricsRegistry& registry,
                              const std::string& prefix,
                              const std::vector<PhaseAttribution>& phases);

// ---------------------------------------------------------------------
// Drift detection: does the cost model still explain the measurement?
// ---------------------------------------------------------------------

struct DriftConfig {
    /// A phase alarms when measured_share / modeled_share falls outside
    /// [1/ratio_threshold, ratio_threshold].
    double ratio_threshold = 4.0;
    /// Phases whose share is below this on BOTH sides are exempt (tiny
    /// phases drown in per-span timer overhead).
    double min_share = 0.05;
    /// All share checks are skipped when the measured side's total falls
    /// below this (same units as the measured input; the default assumes
    /// wall seconds). On a solve whose phases sum to mere microseconds a
    /// single scheduler preemption inside one span rewrites the whole
    /// share mix, so an alarm would report OS noise, not model error.
    /// Callers whose measured side is deterministic (the gpusim
    /// executor's modeled decomposition) set this to 0.
    double min_total_measured = 1e-3;
};

struct PhaseDrift {
    Phase phase = Phase::other;
    double measured_share = 0;  ///< fraction of the measured iteration cost
    double modeled_share = 0;   ///< fraction of the modeled iteration cost
    double ratio = 1.0;         ///< measured_share / modeled_share
    bool alarmed = false;
};

struct DriftReport {
    std::vector<PhaseDrift> phases;
    /// Scalar measured-vs-modeled pairs checked alongside the share
    /// comparison (e.g. gpusim traced flops per iteration vs the ledger's
    /// count). `ratio` = measured / modeled.
    struct ScalarCheck {
        std::string name;
        double measured = 0;
        double modeled = 0;
        double ratio = 1.0;
        bool alarmed = false;
    };
    std::vector<ScalarCheck> scalars;

    int alarms() const;
};

/// Compares measured per-phase cost against modeled per-phase cost (any
/// consistent units -- only the SHARES are compared, so host wall seconds
/// can be checked against modeled device microseconds).
DriftReport detect_drift(const double (&measured)[phase_count],
                         const double (&modeled)[phase_count],
                         const DriftConfig& config = {});

/// Adds one scalar measured-vs-modeled check to `report` (alarm when the
/// ratio falls outside [1/threshold, threshold]).
void add_scalar_check(DriftReport& report, const std::string& name,
                      double measured, double modeled, double threshold);

/// Records a drift report: counters `obs.drift.checks` / `obs.drift.alarms`,
/// gauges `obs.drift.<prefix>.<phase>.ratio` (and `.alarmed`), and -- when
/// a dump directory is armed -- a FlightRecorder-style JSON annotation
/// `drift_<seq>_<prefix>.json` describing the disagreement. Returns the
/// number of alarms.
int record_drift(MetricsRegistry& registry, const std::string& prefix,
                 const DriftReport& report);

/// Arms (or, with "", disarms) the drift annotation dump directory. The
/// directory is created on first dump.
void set_drift_dump_dir(const std::string& dir);
std::string drift_dump_dir();

/// The process-wide drift thresholds (record sites read these; tests and
/// tools tighten them to provoke alarms).
DriftConfig drift_config();
void set_drift_config(const DriftConfig& config);

// ---------------------------------------------------------------------
// Continuous profiler: rolling window of per-solve phase aggregates.
// ---------------------------------------------------------------------

/// Bounded ring of per-solve phase aggregates with EWMA and p95 summary
/// statistics. One push per solve_batch (cold path); always-on while
/// metrics are enabled.
class ProfileWindow {
public:
    struct Sample {
        double seconds[phase_count] = {};
        double gbps[phase_count] = {};
    };

    explicit ProfileWindow(int capacity = 128, double ewma_alpha = 0.2);

    void push(const Sample& sample);

    int capacity() const { return capacity_; }
    int size() const;               ///< samples currently retained
    std::int64_t pushed() const;    ///< samples ever pushed

    double ewma_seconds(Phase phase) const;
    double ewma_gbps(Phase phase) const;
    double p95_seconds(Phase phase) const;  ///< over the retained window

    /// Exports the window summary as gauges under
    /// `<prefix>.<phase>.{ewma_us,p95_us,ewma_gbps}` plus
    /// `<prefix>.samples`.
    void export_gauges(MetricsRegistry& registry,
                       const std::string& prefix = "obs.window") const;

    void reset();

private:
    const int capacity_;
    const double alpha_;
    mutable std::mutex mutex_;
    std::vector<Sample> ring_;
    int head_ = 0;
    int count_ = 0;
    std::int64_t pushed_ = 0;
    double ewma_seconds_[phase_count] = {};
    double ewma_gbps_[phase_count] = {};
};

/// The process-wide window record_solve_metrics pushes into.
ProfileWindow& profile_window();

}  // namespace bsis::obs
