// Edge cases and failure injection across modules: degenerate shapes,
// singular inputs, breakdown paths, and limits.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/monolithic.hpp"
#include "core/solver.hpp"
#include "core/workspace.hpp"
#include "exec/executor.hpp"
#include "lapack/banded_lu.hpp"
#include "lapack/tridiag.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

BatchCsr<real_type> identity_batch(size_type nbatch, index_type n)
{
    std::vector<index_type> row_ptrs(static_cast<std::size_t>(n) + 1);
    std::vector<index_type> col_idxs(static_cast<std::size_t>(n));
    for (index_type i = 0; i <= n; ++i) {
        row_ptrs[static_cast<std::size_t>(i)] = i;
    }
    for (index_type i = 0; i < n; ++i) {
        col_idxs[static_cast<std::size_t>(i)] = i;
    }
    BatchCsr<real_type> batch(nbatch, n, row_ptrs, col_idxs);
    for (size_type b = 0; b < nbatch; ++b) {
        for (index_type i = 0; i < n; ++i) {
            batch.values(b)[i] = 1.0;
        }
    }
    return batch;
}

TEST(EdgeCases, EmptyBatchSolveIsANoop)
{
    auto a = identity_batch(0, 4);
    BatchVector<real_type> b(0, 4);
    BatchVector<real_type> x(0, 4);
    const auto result = solve_batch(a, b, x, SolverSettings{});
    EXPECT_EQ(result.log.num_batch(), 0);
    // Vacuously true: no system failed to converge, consistent with the
    // executors' empty-batch early-return reporting success.
    EXPECT_TRUE(result.log.all_converged());
}

TEST(EdgeCases, OneByOneSystems)
{
    auto a = identity_batch(3, 1);
    a.values(1)[0] = 4.0;
    BatchVector<real_type> b(3, 1, 2.0);
    BatchVector<real_type> x(3, 1);
    SolverSettings s;
    s.tolerance = 1e-14;
    const auto result = solve_batch(a, b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_DOUBLE_EQ(x.entry(0)[0], 2.0);
    EXPECT_DOUBLE_EQ(x.entry(1)[0], 0.5);
}

TEST(EdgeCases, ZeroRhsGivesZeroSolutionInZeroIterations)
{
    auto a = make_synthetic_batch(6, 5, StencilKind::nine_point, 2, {});
    BatchVector<real_type> b(2, a.rows(), 0.0);
    BatchVector<real_type> x(2, a.rows(), 7.0);  // garbage, zeroed inside
    SolverSettings s;
    s.tolerance = 1e-12;
    const auto result = solve_batch(a, b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    for (size_type i = 0; i < 2; ++i) {
        EXPECT_EQ(result.log.iterations(i), 0);
        for (index_type k = 0; k < a.rows(); ++k) {
            EXPECT_EQ(x.entry(i)[k], 0.0);
        }
    }
}

TEST(EdgeCases, MaxIterationsZeroReportsInitialResidual)
{
    auto a = make_synthetic_batch(6, 5, StencilKind::nine_point, 1, {});
    BatchVector<real_type> b(1, a.rows(), 1.0);
    BatchVector<real_type> x(1, a.rows());
    SolverSettings s;
    s.max_iterations = 0;
    s.tolerance = 1e-12;
    const auto result = solve_batch(a, b, x, s);
    EXPECT_FALSE(result.log.all_converged());
    EXPECT_EQ(result.log.iterations(0), 0);
    EXPECT_GT(result.log.residual_norm(0), 0.0);
}

TEST(EdgeCases, JacobiThrowsOnZeroDiagonal)
{
    auto a = identity_batch(1, 4);
    a.values(0)[2] = 0.0;
    BatchVector<real_type> b(1, 4, 1.0);
    BatchVector<real_type> x(1, 4);
    SolverSettings s;
    s.precond = PrecondType::jacobi;
    EXPECT_THROW(solve_batch(a, b, x, s), NumericalBreakdown);
}

TEST(EdgeCases, BicgstabReportsBreakdownOnSingularSystem)
{
    // Singular matrix (one zero row): no preconditioner, BiCGStab must
    // terminate without converging rather than loop forever or crash.
    auto a = identity_batch(1, 4);
    a.values(0)[1] = 0.0;  // row 1 entirely zero
    BatchVector<real_type> b(1, 4, 1.0);
    BatchVector<real_type> x(1, 4);
    SolverSettings s;
    s.precond = PrecondType::identity;
    s.max_iterations = 50;
    const auto result = solve_batch(a, b, x, s);
    EXPECT_FALSE(result.log.all_converged());
    EXPECT_TRUE(std::isfinite(result.log.residual_norm(0)));
}

TEST(EdgeCases, NanRhsDoesNotHangAnySolver)
{
    auto a = make_synthetic_batch(6, 5, StencilKind::nine_point, 1, {});
    BatchVector<real_type> b(1, a.rows(), 1.0);
    b.entry(0)[3] = std::numeric_limits<real_type>::quiet_NaN();
    for (const auto solver : {SolverType::bicgstab, SolverType::cgs,
                              SolverType::gmres, SolverType::richardson}) {
        BatchVector<real_type> x(1, a.rows());
        SolverSettings s;
        s.solver = solver;
        s.max_iterations = 20;
        const auto result = solve_batch(a, b, x, s);
        EXPECT_FALSE(result.log.converged(0))
            << "solver " << static_cast<int>(solver);
    }
}

TEST(EdgeCases, MonolithicEmptyAndSingleEntryBatches)
{
    auto a = make_synthetic_batch(6, 5, StencilKind::nine_point, 1, {});
    BatchVector<real_type> b(1, a.rows(), 1.0);
    BatchVector<real_type> x(1, a.rows());
    SolverSettings s;
    s.tolerance = 1e-10;
    const auto result = solve_monolithic(a, b, x, s);
    EXPECT_TRUE(result.converged);
    // With a single entry, the monolithic solve IS the per-system solve.
    BatchVector<real_type> x_ref(1, a.rows());
    solve_batch(a, b, x_ref, s);
    for (index_type k = 0; k < a.rows(); ++k) {
        EXPECT_NEAR(x.entry(0)[k], x_ref.entry(0)[k], 1e-8);
    }
}

TEST(EdgeCases, BandedSolversHandleDiagonalMatrices)
{
    // kl = ku = 0: pure diagonal systems through the banded machinery.
    BatchBanded<real_type> banded(2, 5, 0, 0);
    for (size_type b = 0; b < 2; ++b) {
        auto v = banded.entry(b);
        for (index_type i = 0; i < 5; ++i) {
            v(i, i) = 2.0 + i + b;
        }
    }
    std::vector<real_type> rhs{2, 3, 4, 5, 6};
    auto x = rhs;
    lapack::gbsv(banded.entry(0), VecView<real_type>{x.data(), 5});
    for (index_type i = 0; i < 5; ++i) {
        EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                    rhs[static_cast<std::size_t>(i)] / (2.0 + i), 1e-14);
    }
}

TEST(EdgeCases, GpuExecutorHandlesSingleSystemBatch)
{
    auto a = make_synthetic_batch(6, 5, StencilKind::nine_point, 1, {});
    auto ell = to_ell(a);
    BatchVector<real_type> b(1, a.rows(), 1.0);
    BatchVector<real_type> x(1, a.rows());
    SimGpuExecutor exec(gpusim::mi100());
    SolverSettings s;
    s.tolerance = 1e-10;
    const auto report = exec.solve(ell, b, x, s);
    EXPECT_TRUE(report.log.all_converged());
    EXPECT_EQ(report.num_waves, 1);
    EXPECT_GT(report.kernel_seconds, 0.0);
}

TEST(EdgeCases, RelativeStopWithZeroRhsTerminatesImmediately)
{
    auto a = make_synthetic_batch(6, 5, StencilKind::nine_point, 1, {});
    BatchVector<real_type> b(1, a.rows(), 0.0);
    BatchVector<real_type> x(1, a.rows());
    SolverSettings s;
    s.stop = StopType::rel_residual;
    s.tolerance = 1e-8;
    s.max_iterations = 10;
    const auto result = solve_batch(a, b, x, s);
    // ||r|| = 0 < tol * 0 is false; the solver must still terminate at the
    // iteration cap without dividing by zero or hanging.
    EXPECT_LE(result.log.iterations(0), 10);
    EXPECT_TRUE(std::isfinite(result.log.residual_norm(0)));
}

TEST(EdgeCases, BatchDriversPropagateExceptionsAcrossOpenMp)
{
    // A singular entry anywhere in the batch must surface as a thrown
    // NumericalBreakdown (not a process abort) from every batched driver.
    BatchBanded<real_type> banded(3, 4, 1, 1);
    for (size_type b = 0; b < 3; ++b) {
        auto v = banded.entry(b);
        for (index_type i = 0; i < 4; ++i) {
            v(i, i) = b == 1 ? 0.0 : 2.0;  // entry 1 singular
        }
    }
    BatchVector<real_type> x(3, 4, 1.0);
    EXPECT_THROW(lapack::batch_gbsv(banded, x), NumericalBreakdown);

    lapack::BatchTridiag tri(2, 4);
    for (index_type i = 0; i < 4; ++i) {
        tri.entry(0).diag[i] = 1.0;  // entry 1 left singular (all zeros)
    }
    BatchVector<real_type> xt(2, 4, 1.0);
    EXPECT_THROW(lapack::batch_thomas(tri, xt), NumericalBreakdown);
}

TEST(EdgeCases, WorkspaceShapeTracksRequestStorageNeverShrinks)
{
    // The logical shape must follow every request exactly -- slots are
    // handed to kernels as full-length views, so a smaller solve after a
    // bigger one must get exactly-sized slots, not high-water-mark ones.
    Workspace ws(10, 2);
    const auto* storage = ws.slot(0).data;
    ws.require(5, 1);
    EXPECT_EQ(ws.length(), 5);
    EXPECT_EQ(ws.num_slots(), 1);
    EXPECT_EQ(ws.slot(0).len, 5);
    // ...but shrinking requests reuse the existing storage.
    EXPECT_EQ(ws.slot(0).data, storage);
    ws.require(20, 4);
    EXPECT_EQ(ws.length(), 20);
    EXPECT_EQ(ws.num_slots(), 4);
    auto v = ws.slot(3);
    EXPECT_EQ(v.len, 20);
}

}  // namespace
}  // namespace bsis
