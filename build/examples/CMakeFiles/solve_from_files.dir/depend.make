# Empty dependencies file for solve_from_files.
# This may be replaced when dependencies are built.
