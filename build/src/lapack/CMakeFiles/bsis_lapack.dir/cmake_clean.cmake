file(REMOVE_RECURSE
  "CMakeFiles/bsis_lapack.dir/banded_lu.cpp.o"
  "CMakeFiles/bsis_lapack.dir/banded_lu.cpp.o.d"
  "CMakeFiles/bsis_lapack.dir/banded_qr.cpp.o"
  "CMakeFiles/bsis_lapack.dir/banded_qr.cpp.o.d"
  "CMakeFiles/bsis_lapack.dir/dense.cpp.o"
  "CMakeFiles/bsis_lapack.dir/dense.cpp.o.d"
  "CMakeFiles/bsis_lapack.dir/eigen.cpp.o"
  "CMakeFiles/bsis_lapack.dir/eigen.cpp.o.d"
  "CMakeFiles/bsis_lapack.dir/tridiag.cpp.o"
  "CMakeFiles/bsis_lapack.dir/tridiag.cpp.o.d"
  "libbsis_lapack.a"
  "libbsis_lapack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsis_lapack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
