// Attribution tier (`attribution` ctest label): the work ledger's
// byte/flop hand counts (CSR/ELL/SELL-P/dense SpMV, fused and pipelined
// sweep structures, setup work), roofline attribution arithmetic, drift
// detection, the continuous-profiler window, and the measured-bandwidth
// sanity bounds of real solves on all three execution paths.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "exec/executor.hpp"
#include "gpusim/device.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

constexpr double vb = sizeof(real_type);   // 8
constexpr double ib = sizeof(index_type);  // 4

// ---------------------------------------------------------------------
// Ledger hand counts: one SpMV application per format.
// ---------------------------------------------------------------------

SolverWorkProfile spmv_only_profile()
{
    SolverWorkProfile w;
    w.spmv_per_iter = 1;
    return w;
}

TEST(WorkLedger, CsrSpmvHandCount)
{
    // n = 4 rows, 8 stored nonzeros: values + column indices
    // (8 * 12 = 96) + row pointers (5 * 4 = 20) + x gather (32) = 148
    // bytes read; y write 32; 2 flops per stored entry.
    const obs::LedgerShape shape{4, 8, 2};
    const auto ledger = obs::work_ledger(spmv_only_profile(), shape,
                                         obs::LedgerFormat::csr, 1.0, 0.0);
    const auto& spmv = ledger.of(obs::Phase::spmv);
    EXPECT_DOUBLE_EQ(spmv.bytes_read, 148.0);
    EXPECT_DOUBLE_EQ(spmv.bytes_written, 32.0);
    EXPECT_DOUBLE_EQ(spmv.flops, 16.0);
    EXPECT_DOUBLE_EQ(spmv.reductions, 0.0);
    // No other phase gains work from a bare SpMV.
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::precond).bytes(), 0.0);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::reduction).bytes(), 0.0);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::update).bytes(), 0.0);
}

TEST(WorkLedger, EllSpmvCountsPadding)
{
    // n = 4 rows padded to width 3: 12 stored slots. Padded values +
    // padded indices (12 * 12 = 144) + x (32) = 176 read; the kernel
    // multiplies the stored zeros, so flops = 2 * 12 = 24.
    const obs::LedgerShape shape{4, 12, 3};
    const auto ledger = obs::work_ledger(spmv_only_profile(), shape,
                                         obs::LedgerFormat::ell, 1.0, 0.0);
    const auto& spmv = ledger.of(obs::Phase::spmv);
    EXPECT_DOUBLE_EQ(spmv.bytes_read, 176.0);
    EXPECT_DOUBLE_EQ(spmv.bytes_written, 32.0);
    EXPECT_DOUBLE_EQ(spmv.flops, 24.0);
}

TEST(WorkLedger, SellpSpmvMatchesEllFormulaOnPaddedCount)
{
    // SELL-P differs from ELL only in which padded count the shape
    // carries (slice-padded); the per-stored-slot accounting is the same.
    const obs::LedgerShape shape{4, 10, 2};
    const auto sellp = obs::work_ledger(spmv_only_profile(), shape,
                                        obs::LedgerFormat::sellp, 1.0, 0.0);
    const auto ell = obs::work_ledger(spmv_only_profile(), shape,
                                      obs::LedgerFormat::ell, 1.0, 0.0);
    EXPECT_DOUBLE_EQ(sellp.of(obs::Phase::spmv).bytes_read,
                     ell.of(obs::Phase::spmv).bytes_read);
    EXPECT_DOUBLE_EQ(sellp.of(obs::Phase::spmv).flops,
                     ell.of(obs::Phase::spmv).flops);
    EXPECT_DOUBLE_EQ(sellp.of(obs::Phase::spmv).bytes_read, 10 * 12 + 32.0);
}

TEST(WorkLedger, DenseSpmvHandCount)
{
    const obs::LedgerShape shape{4, 16, 4};
    const auto ledger = obs::work_ledger(spmv_only_profile(), shape,
                                         obs::LedgerFormat::dense, 1.0, 0.0);
    const auto& spmv = ledger.of(obs::Phase::spmv);
    EXPECT_DOUBLE_EQ(spmv.bytes_read, 16 * 8 + 32.0);  // n^2 values + x
    EXPECT_DOUBLE_EQ(spmv.bytes_written, 32.0);
    EXPECT_DOUBLE_EQ(spmv.flops, 32.0);  // 2 n^2
}

// ---------------------------------------------------------------------
// Ledger hand counts: fused and pipelined sweep structures. All built
// with total_iterations = 1, num_systems = 0 to isolate the
// per-iteration work.
// ---------------------------------------------------------------------

constexpr double kN = 100.0;
const obs::LedgerShape kShape{100, 900, 9};

obs::WorkLedger iteration_ledger(SolverType solver, bool pipelined)
{
    const auto work = work_profile(solver, PrecondType::jacobi, 30, 4,
                                   /*fused=*/true, pipelined);
    return obs::work_ledger(work, kShape, obs::LedgerFormat::csr, 1.0, 0.0);
}

TEST(WorkLedger, FusedBicgstabIteration)
{
    const auto ledger = iteration_ledger(SolverType::bicgstab, false);

    // 2 SpMV sweeps per iteration.
    const auto csr_read = 900 * (vb + ib) + 101 * ib + kN * vb;
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::spmv).bytes_read, 2 * csr_read);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::spmv).flops, 2 * 2 * 900.0);

    // 2 Jacobi applications: 2n read + n written, n flops each.
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::precond).bytes_read,
                     2 * 2 * kN * vb);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::precond).flops, 2 * kN);

    // Update: 2 pure + 2 norm-carrying sweeps, each 2 vectors in / 1 out
    // and 2n flops; each fused norm adds 2n flops, no traffic.
    const auto& upd = ledger.of(obs::Phase::update);
    EXPECT_DOUBLE_EQ(upd.bytes_read, 4 * 2 * kN * vb);
    EXPECT_DOUBLE_EQ(upd.bytes_written, 4 * kN * vb);
    EXPECT_DOUBLE_EQ(upd.flops, 4 * 2 * kN + 2 * 2 * kN);
    EXPECT_DOUBLE_EQ(upd.reductions, 0.0);

    // Reduction: 3 standalone sweeps x 2 vectors; 3 sweeps + 1
    // piggybacked extra dot = 4 results x 2n flops; 3 sweep combines +
    // 2 norm-update combines = 5 reduction points.
    const auto& red = ledger.of(obs::Phase::reduction);
    EXPECT_DOUBLE_EQ(red.bytes_read, 3 * 2 * kN * vb);
    EXPECT_DOUBLE_EQ(red.bytes_written, 0.0);
    EXPECT_DOUBLE_EQ(red.flops, 4 * 2 * kN);
    EXPECT_DOUBLE_EQ(red.reductions, 5.0);
}

TEST(WorkLedger, PipelinedBicgstabTradesReductionPointsForWiderReads)
{
    const auto classic = iteration_ledger(SolverType::bicgstab, false);
    const auto pipe = iteration_ledger(SolverType::bicgstab, true);

    // The pipelined dot4 sweep reads one extra operand vector: 2 sweeps
    // x 2 vectors + 1 extra = 5 vectors streamed per iteration.
    const auto& red = pipe.of(obs::Phase::reduction);
    EXPECT_DOUBLE_EQ(red.bytes_read, (2 * 2 + 1) * kN * vb);
    // 2 sweeps + 3 piggybacked results = 5 dot results, 2n flops each.
    EXPECT_DOUBLE_EQ(red.flops, 5 * 2 * kN);
    // 2 sweep combines + 1 norm-update combine = 3 reduction points,
    // down from the classic kernel's 5: the pipelined win.
    EXPECT_DOUBLE_EQ(red.reductions, 3.0);
    EXPECT_LT(red.reductions, classic.of(obs::Phase::reduction).reductions);

    // Update: 3 pure + 1 norm sweep = same 4 streaming sweeps as classic.
    const auto& upd = pipe.of(obs::Phase::update);
    EXPECT_DOUBLE_EQ(upd.bytes_read, 4 * 2 * kN * vb);
    EXPECT_DOUBLE_EQ(upd.flops, 4 * 2 * kN + 1 * 2 * kN);
}

TEST(WorkLedger, PipelinedCgSingleReductionPoint)
{
    const auto classic = iteration_ledger(SolverType::cg, false);
    const auto pipe = iteration_ledger(SolverType::cg, true);

    // Classic fused CG: 2 dot sweeps + 1 norm-update combine = 3 points.
    EXPECT_DOUBLE_EQ(classic.of(obs::Phase::reduction).reductions, 3.0);

    // Pipelined: ONE dot3_nrm2 sweep (3 vectors read, 4 results), plus
    // the r.z combine riding the preconditioner/update side.
    const auto& red = pipe.of(obs::Phase::reduction);
    EXPECT_DOUBLE_EQ(red.reductions, 1.0);
    EXPECT_DOUBLE_EQ(red.bytes_read, (2 * 1 + 1) * kN * vb);
    EXPECT_DOUBLE_EQ(red.flops, (1 + 3) * 2 * kN);

    // The fused extra combine lands on the update phase: 2n flops and
    // one combine point on top of the 3 pure update sweeps.
    const auto& upd = pipe.of(obs::Phase::update);
    EXPECT_DOUBLE_EQ(upd.bytes_read, 3 * 2 * kN * vb);
    EXPECT_DOUBLE_EQ(upd.flops, 3 * 2 * kN + 2 * kN);
    EXPECT_DOUBLE_EQ(upd.reductions, 1.0);
}

TEST(WorkLedger, UnfusedFallbackUsesOperationCounts)
{
    const auto work = work_profile(SolverType::bicgstab, PrecondType::jacobi,
                                   30, 4, /*fused=*/false);
    ASSERT_FALSE(work.has_fused_shape());
    const auto ledger =
        obs::work_ledger(work, kShape, obs::LedgerFormat::csr, 1.0, 0.0);
    // 6 axpy-like updates, 6 standalone dots, one reduction point each.
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::update).bytes_read,
                     6 * 2 * kN * vb);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::update).bytes_written,
                     6 * kN * vb);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::reduction).bytes_read,
                     6 * 2 * kN * vb);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::reduction).reductions, 6.0);
}

TEST(WorkLedger, SetupWorkScalesWithSystems)
{
    // total_iterations = 0 isolates the per-system setup terms.
    const auto work = work_profile(SolverType::bicgstab, PrecondType::jacobi);
    const double systems = 3.0;
    const auto ledger = obs::work_ledger(work, kShape,
                                         obs::LedgerFormat::csr, 0.0, systems);
    const auto csr_read = 900 * (vb + ib) + 101 * ib + kN * vb;
    // setup_spmvs = 1, setup_dots = 1, setup_axpys = 3, + 1 Jacobi build.
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::spmv).bytes_read,
                     systems * csr_read);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::reduction).reductions, systems);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::update).bytes_written,
                     systems * 3 * kN * vb);
    EXPECT_DOUBLE_EQ(ledger.of(obs::Phase::precond).bytes_read,
                     systems * 2 * kN * vb);
}

TEST(WorkLedger, ScalesLinearlyWithIterationsAndTotals)
{
    const auto work = work_profile(SolverType::bicgstab, PrecondType::jacobi);
    const auto one =
        obs::work_ledger(work, kShape, obs::LedgerFormat::csr, 1.0, 0.0);
    const auto ten =
        obs::work_ledger(work, kShape, obs::LedgerFormat::csr, 10.0, 0.0);
    EXPECT_DOUBLE_EQ(ten.total().bytes(), 10.0 * one.total().bytes());
    EXPECT_DOUBLE_EQ(ten.total().flops, 10.0 * one.total().flops);
    EXPECT_DOUBLE_EQ(ten.total().reductions, 10.0 * one.total().reductions);
}

// ---------------------------------------------------------------------
// Roofline attribution arithmetic.
// ---------------------------------------------------------------------

TEST(Attribution, RooflineMathMemoryBound)
{
    obs::WorkLedger ledger;
    ledger.of(obs::Phase::spmv) = {128e9, 0.0, 64e9, 0.0};
    obs::PhaseTotals measured;
    measured.seconds[0] = 1.0;
    measured.calls[0] = 7;
    const obs::RooflinePeaks peaks{256.0, 2000.0};
    const auto rows = obs::attribute_phases(ledger, measured, peaks);
    ASSERT_EQ(rows.size(), 1u);
    const auto& a = rows[0];
    EXPECT_EQ(a.phase, obs::Phase::spmv);
    EXPECT_EQ(a.calls, 7);
    EXPECT_DOUBLE_EQ(a.gbps, 128.0);
    EXPECT_DOUBLE_EQ(a.gflops, 64.0);
    EXPECT_DOUBLE_EQ(a.intensity, 0.5);
    EXPECT_TRUE(a.memory_bound);  // 0.5 flop/byte < ridge 7.8125
    EXPECT_DOUBLE_EQ(a.peak_fraction, 0.5);  // 128 / 256 GB/s
}

TEST(Attribution, RooflineMathComputeBound)
{
    obs::WorkLedger ledger;
    ledger.of(obs::Phase::update) = {1e9, 0.0, 1000e9, 0.0};
    obs::PhaseTotals measured;
    measured.seconds[3] = 1.0;
    const obs::RooflinePeaks peaks{256.0, 2000.0};
    const auto rows = obs::attribute_phases(ledger, measured, peaks);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].memory_bound);  // 1000 flop/byte > ridge
    EXPECT_DOUBLE_EQ(rows[0].peak_fraction, 0.5);  // 1000 / 2000 GF/s
}

TEST(Attribution, OmitsPhasesWithNoWorkAndNoTime)
{
    const obs::WorkLedger ledger;
    const obs::PhaseTotals measured;
    EXPECT_TRUE(
        obs::attribute_phases(ledger, measured, obs::RooflinePeaks{256, 2000})
            .empty());
}

TEST(Attribution, HostRooflineMirrorsSkylakeNode)
{
    // obs cannot link gpusim, so the host peaks are mirrored constants;
    // this test (which links both) pins them to the gpusim CPU spec.
    const auto& cpu = gpusim::skylake_node();
    const auto peaks = obs::host_roofline();
    EXPECT_DOUBLE_EQ(peaks.gbps, cpu.mem_bw_gbps);
    EXPECT_DOUBLE_EQ(peaks.gflops,
                     cpu.total_cores * cpu.peak_fp64_gflops_per_core);
}

TEST(Attribution, RecordPhaseAttributionEmitsGauges)
{
    obs::MetricsRegistry registry;
    obs::WorkLedger ledger;
    ledger.of(obs::Phase::spmv) = {100.0, 50.0, 300.0, 0.0};
    obs::PhaseTotals measured;
    measured.seconds[0] = 2.0;
    const auto rows = obs::attribute_phases(ledger, measured,
                                            obs::RooflinePeaks{256, 2000});
    obs::record_phase_attribution(registry, "solve", rows);
    const auto snap = registry.snapshot();
    EXPECT_DOUBLE_EQ(snap.gauge("solve.phase.spmv.seconds"), 2.0);
    EXPECT_DOUBLE_EQ(snap.gauge("solve.phase.spmv.bytes"), 150.0);
    EXPECT_DOUBLE_EQ(snap.gauge("solve.phase.spmv.flops"), 300.0);
    EXPECT_DOUBLE_EQ(snap.gauge("solve.phase.spmv.intensity"), 2.0);
    EXPECT_DOUBLE_EQ(snap.gauge("solve.phase.spmv.memory_bound"), 1.0);
}

// ---------------------------------------------------------------------
// Drift detection.
// ---------------------------------------------------------------------

TEST(Drift, AgreementRaisesNoAlarm)
{
    const double measured[obs::phase_count] = {4.0, 2.0, 2.0, 2.0, 0.0};
    const double modeled[obs::phase_count] = {8.0, 4.0, 4.0, 4.0, 0.0};
    const auto report = obs::detect_drift(measured, modeled);
    EXPECT_EQ(report.alarms(), 0);
    ASSERT_EQ(report.phases.size(), 4u);  // `other` absent on both sides
    for (const auto& p : report.phases) {
        EXPECT_DOUBLE_EQ(p.ratio, 1.0);
    }
}

TEST(Drift, LargeShareSkewAlarms)
{
    const double measured[obs::phase_count] = {10.0, 0.0, 0.0, 0.0, 0.0};
    const double modeled[obs::phase_count] = {1.0, 9.0, 0.0, 0.0, 0.0};
    const auto report = obs::detect_drift(measured, modeled);
    // spmv: share 1.0 vs 0.1 -> ratio 10 > 4; precond: 0 vs 0.9 -> < 1/4.
    EXPECT_EQ(report.alarms(), 2);
}

TEST(Drift, TinyPhasesAreExemptOnBothSides)
{
    const double measured[obs::phase_count] = {99.0, 1.0, 0.0, 0.0, 0.0};
    const double modeled[obs::phase_count] = {99.96, 0.04, 0.0, 0.0, 0.0};
    // precond ratio is 25x but both shares sit under min_share = 0.05.
    EXPECT_EQ(obs::detect_drift(measured, modeled).alarms(), 0);
}

TEST(Drift, MicrosecondScaleMeasurementsAreSkipped)
{
    // Shares this skewed would alarm twice -- but the measured side sums
    // to 420 us, under the 1 ms noise floor, so no checks run at all: a
    // single scheduler preemption inside one span rewrites a share mix
    // this small.
    const double measured[obs::phase_count] = {300e-6, 50e-6, 40e-6, 30e-6,
                                               0.0};
    const double modeled[obs::phase_count] = {1.0, 9.0, 0.0, 0.0, 0.0};
    EXPECT_TRUE(obs::detect_drift(measured, modeled).phases.empty());

    // Deterministic callers opt out of the guard (the gpusim executor's
    // model-vs-floor comparison) and keep full sensitivity.
    obs::DriftConfig cfg;
    cfg.min_total_measured = 0;
    const auto report = obs::detect_drift(measured, modeled, cfg);
    EXPECT_FALSE(report.phases.empty());
    EXPECT_GT(report.alarms(), 0);
}

TEST(Drift, EmptySidesProduceNoChecks)
{
    const double measured[obs::phase_count] = {1.0, 0.0, 0.0, 0.0, 0.0};
    const double zero[obs::phase_count] = {};
    EXPECT_TRUE(obs::detect_drift(measured, zero).phases.empty());
    EXPECT_TRUE(obs::detect_drift(zero, measured).phases.empty());
}

TEST(Drift, ScalarChecks)
{
    obs::DriftReport report;
    obs::add_scalar_check(report, "fine", 2.0, 1.0, 2.5);
    obs::add_scalar_check(report, "high", 10.0, 1.0, 2.5);
    obs::add_scalar_check(report, "low", 1.0, 10.0, 2.5);
    obs::add_scalar_check(report, "inf", 1.0, 0.0, 2.5);
    obs::add_scalar_check(report, "both_zero", 0.0, 0.0, 2.5);
    ASSERT_EQ(report.scalars.size(), 5u);
    EXPECT_FALSE(report.scalars[0].alarmed);
    EXPECT_TRUE(report.scalars[1].alarmed);
    EXPECT_TRUE(report.scalars[2].alarmed);
    EXPECT_TRUE(report.scalars[3].alarmed);
    EXPECT_TRUE(std::isinf(report.scalars[3].ratio));
    EXPECT_FALSE(report.scalars[4].alarmed);
    EXPECT_EQ(report.alarms(), 3);
}

TEST(Drift, RecordDriftEmitsCountersGaugesAndAnnotation)
{
    const std::string dump_dir =
        ::testing::TempDir() + "bsis_drift_dump_test";
    std::filesystem::remove_all(dump_dir);
    obs::set_drift_dump_dir(dump_dir);

    obs::MetricsRegistry registry;
    const double measured[obs::phase_count] = {10.0, 0.0, 0.0, 0.0, 0.0};
    const double modeled[obs::phase_count] = {1.0, 9.0, 0.0, 0.0, 0.0};
    auto report = obs::detect_drift(measured, modeled);
    obs::add_scalar_check(report, "traced_flops_per_iter", 10.0, 1.0, 2.5);
    const int alarms = obs::record_drift(registry, "unit", report);
    obs::set_drift_dump_dir("");

    EXPECT_EQ(alarms, 3);
    const auto snap = registry.snapshot();
    EXPECT_EQ(snap.counter("obs.drift.checks"), 3);
    EXPECT_EQ(snap.counter("obs.drift.alarms"), 3);
    EXPECT_DOUBLE_EQ(snap.gauge("obs.drift.unit.spmv.ratio"), 10.0);
    EXPECT_DOUBLE_EQ(snap.gauge("obs.drift.unit.spmv.alarmed"), 1.0);
    EXPECT_DOUBLE_EQ(
        snap.gauge("obs.drift.unit.traced_flops_per_iter.alarmed"), 1.0);

    // The armed dump directory received a drift_<seq>_unit.json annotation.
    bool found = false;
    for (const auto& entry :
         std::filesystem::directory_iterator(dump_dir)) {
        const auto name = entry.path().filename().string();
        if (name.rfind("drift_", 0) == 0 &&
            name.find("_unit.json") != std::string::npos) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    std::filesystem::remove_all(dump_dir);
}

// ---------------------------------------------------------------------
// ProfileWindow.
// ---------------------------------------------------------------------

obs::ProfileWindow::Sample sample_with(obs::Phase phase, double seconds,
                                       double gbps = 0)
{
    obs::ProfileWindow::Sample s;
    s.seconds[static_cast<int>(phase)] = seconds;
    s.gbps[static_cast<int>(phase)] = gbps;
    return s;
}

TEST(ProfileWindow, EwmaInitializesOnFirstPush)
{
    obs::ProfileWindow w(8, 0.5);
    w.push(sample_with(obs::Phase::spmv, 1.0, 100.0));
    EXPECT_DOUBLE_EQ(w.ewma_seconds(obs::Phase::spmv), 1.0);
    EXPECT_DOUBLE_EQ(w.ewma_gbps(obs::Phase::spmv), 100.0);
    w.push(sample_with(obs::Phase::spmv, 3.0, 200.0));
    EXPECT_DOUBLE_EQ(w.ewma_seconds(obs::Phase::spmv), 2.0);
    EXPECT_DOUBLE_EQ(w.ewma_gbps(obs::Phase::spmv), 150.0);
}

TEST(ProfileWindow, RingEvictsBeyondCapacity)
{
    obs::ProfileWindow w(4, 0.2);
    for (int i = 0; i < 6; ++i) {
        w.push(sample_with(obs::Phase::update, 1.0 + i));
    }
    EXPECT_EQ(w.size(), 4);
    EXPECT_EQ(w.pushed(), 6);
    // Retained window is {3, 4, 5, 6}; type-7 p95 over it = 5.85.
    EXPECT_NEAR(w.p95_seconds(obs::Phase::update), 5.85, 1e-12);
}

TEST(ProfileWindow, P95TypeSevenInterpolation)
{
    obs::ProfileWindow w(8, 0.2);
    for (const double v : {1.0, 2.0, 3.0, 4.0}) {
        w.push(sample_with(obs::Phase::reduction, v));
    }
    // pos = 0.95 * 3 = 2.85 -> 3 + 0.85 * (4 - 3) = 3.85.
    EXPECT_NEAR(w.p95_seconds(obs::Phase::reduction), 3.85, 1e-12);
    obs::ProfileWindow single(8, 0.2);
    single.push(sample_with(obs::Phase::reduction, 7.0));
    EXPECT_DOUBLE_EQ(single.p95_seconds(obs::Phase::reduction), 7.0);
    EXPECT_DOUBLE_EQ(single.p95_seconds(obs::Phase::spmv), 0.0);
}

TEST(ProfileWindow, ExportGaugesAndReset)
{
    obs::ProfileWindow w(4, 0.5);
    obs::MetricsRegistry registry;
    w.export_gauges(registry, "win");
    EXPECT_DOUBLE_EQ(registry.snapshot().gauge("win.samples"), 0.0);

    w.push(sample_with(obs::Phase::spmv, 2e-3, 10.0));
    w.export_gauges(registry, "win");
    const auto snap = registry.snapshot();
    EXPECT_DOUBLE_EQ(snap.gauge("win.samples"), 1.0);
    EXPECT_NEAR(snap.gauge("win.spmv.ewma_us"), 2000.0, 1e-9);
    EXPECT_NEAR(snap.gauge("win.spmv.p95_us"), 2000.0, 1e-9);
    EXPECT_DOUBLE_EQ(snap.gauge("win.spmv.ewma_gbps"), 10.0);

    w.reset();
    EXPECT_EQ(w.size(), 0);
    EXPECT_EQ(w.pushed(), 0);
    EXPECT_DOUBLE_EQ(w.ewma_seconds(obs::Phase::spmv), 0.0);
}

// ---------------------------------------------------------------------
// Phase timer wiring: obs::traced(Phase, ...) feeds phase_times().
// ---------------------------------------------------------------------

TEST(PhaseTimer, TracedPhaseOverloadAccumulates)
{
    obs::set_metrics_enabled(true);
    const auto before = obs::phase_times().totals();
    const int value = obs::traced(obs::Phase::spmv, "spmv", [] {
        volatile double acc = 0;
        for (int i = 0; i < 1000; ++i) {
            acc = acc + 1.0;
        }
        return 42;
    });
    obs::set_metrics_enabled(false);
    EXPECT_EQ(value, 42);
    const auto delta = obs::phase_times().totals() - before;
    EXPECT_EQ(delta.calls[static_cast<int>(obs::Phase::spmv)], 1);
    EXPECT_GT(delta.seconds[static_cast<int>(obs::Phase::spmv)], 0.0);
    EXPECT_EQ(delta.calls[static_cast<int>(obs::Phase::update)], 0);
}

TEST(PhaseTimer, DisabledRecordsNothing)
{
    obs::set_metrics_enabled(false);
    const auto before = obs::phase_times().totals();
    obs::traced(obs::Phase::update, "update", [] { return 0; });
    const auto delta = obs::phase_times().totals() - before;
    EXPECT_EQ(delta.calls[static_cast<int>(obs::Phase::update)], 0);
}

// ---------------------------------------------------------------------
// End to end: real solves on all three paths produce sane attribution
// (bandwidth within (0, peak]) and zero drift alarms.
// ---------------------------------------------------------------------

class AttributionEndToEnd : public ::testing::Test {
protected:
    void SetUp() override { reset_all(); }
    void TearDown() override { reset_all(); }

    static void reset_all()
    {
        obs::set_metrics_enabled(false);
        obs::set_trace_enabled(false);
        obs::trace().clear();
        obs::trace().set_shard_capacity(1u << 20);
        obs::metrics().reset_values();
        obs::phase_times().reset();
        obs::profile_window().reset();
        obs::set_drift_dump_dir("");
    }

    struct Problem {
        BatchCsr<real_type> a;
        BatchVector<real_type> b;
    };

    static Problem make_problem(size_type nbatch)
    {
        return make_problem_grid(8, 7, nbatch);
    }

    /// The host-path end-to-end tests use a paper-sized grid (992 rows)
    /// so the solve's phase times clear DriftConfig::min_total_measured
    /// and the drift detector genuinely executes; the SIMT-traced gpusim
    /// test stays on the small grid for speed.
    static Problem make_problem_big(size_type nbatch)
    {
        return make_problem_grid(32, 31, nbatch);
    }

    static Problem make_problem_grid(size_type gx, size_type gy,
                                     size_type nbatch)
    {
        SyntheticStencilParams params;
        params.seed = 99;
        auto a = make_synthetic_batch(gx, gy, StencilKind::nine_point,
                                      nbatch, params);
        BatchVector<real_type> b(nbatch, a.rows());
        Rng rng(7);
        for (size_type i = 0; i < nbatch; ++i) {
            for (auto& v : b.entry(i)) {
                v = rng.uniform(-1.0, 1.0);
            }
        }
        return {std::move(a), std::move(b)};
    }

    /// Every `obs.drift.*` gauge, for diagnosing an unexpected alarm.
    static std::string drift_gauges(const obs::MetricsSnapshot& snap)
    {
        std::string out;
        for (const auto& g : snap.gauges) {
            if (g.name.rfind("obs.drift.", 0) == 0) {
                out += g.name + " = " + std::to_string(g.value) + "\n";
            }
        }
        return out;
    }

    /// Every `<prefix>.phase.<name>.gbps` gauge must fall in (0, peak].
    static void expect_sane_bandwidth(const obs::MetricsSnapshot& snap,
                                      const std::string& prefix)
    {
        const double peak = snap.gauge(prefix + ".roofline.peak_gbps");
        ASSERT_GT(peak, 0.0) << prefix;
        int rows = 0;
        for (const auto& g : snap.gauges) {
            const std::string head = prefix + ".phase.";
            if (g.name.rfind(head, 0) != 0 ||
                g.name.size() < 5 ||
                g.name.compare(g.name.size() - 5, 5, ".gbps") != 0) {
                continue;
            }
            ++rows;
            EXPECT_GT(g.value, 0.0) << g.name;
            EXPECT_LE(g.value, peak) << g.name;
        }
        EXPECT_GT(rows, 0) << "no attribution rows under " << prefix;
    }
};

TEST_F(AttributionEndToEnd, ScalarPathAttributesAndStaysWithinRoofline)
{
    auto p = make_problem_big(24);
    obs::set_metrics_enabled(true);
    SolverSettings settings;
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, settings);
    obs::set_metrics_enabled(false);
    ASSERT_TRUE(result.log.all_converged());

    const auto snap = obs::metrics().snapshot();
    expect_sane_bandwidth(snap, "solve");
    EXPECT_EQ(snap.counter("obs.drift.alarms"), 0) << drift_gauges(snap);
    EXPECT_GT(snap.counter("obs.drift.checks"), 0);
    EXPECT_DOUBLE_EQ(snap.gauge("obs.window.samples"), 1.0);
    // The phase gauges decompose the solve: their summed seconds stay
    // below the recorded wall time (spans nest inside the solve).
    double phase_seconds = 0;
    for (const auto& name :
         {"spmv", "precond_apply", "reduction", "update"}) {
        phase_seconds +=
            snap.gauge(std::string("solve.phase.") + name + ".seconds");
    }
    EXPECT_GT(phase_seconds, 0.0);
    EXPECT_LE(phase_seconds, snap.gauge("solve.last_wall_seconds") * 1.001);
}

TEST_F(AttributionEndToEnd, LockstepPathAttributesAndStaysWithinRoofline)
{
    auto p = make_problem_big(24);
    obs::set_metrics_enabled(true);
    SolverSettings settings;
    settings.lockstep_width = 8;
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, settings);
    obs::set_metrics_enabled(false);
    ASSERT_TRUE(result.log.all_converged());

    const auto snap = obs::metrics().snapshot();
    expect_sane_bandwidth(snap, "solve");
    EXPECT_EQ(snap.counter("obs.drift.alarms"), 0) << drift_gauges(snap);
    EXPECT_GT(snap.counter("obs.drift.checks"), 0);
}

TEST_F(AttributionEndToEnd, SimGpuPathAttributesAndStaysWithinRoofline)
{
    auto p = make_problem(6);
    obs::set_metrics_enabled(true);
    SolverSettings settings;
    SimGpuExecutor exec(gpusim::v100());
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    const auto report = exec.solve(to_ell(p.a), p.b, x, settings);
    obs::set_metrics_enabled(false);
    ASSERT_TRUE(report.log.all_converged());

    const auto snap = obs::metrics().snapshot();
    expect_sane_bandwidth(snap, "gpusim");
    EXPECT_EQ(snap.counter("obs.drift.alarms"), 0) << drift_gauges(snap);
    EXPECT_GT(snap.counter("obs.drift.checks"), 0);
    // The device roofline gauges restate the device spec.
    EXPECT_DOUBLE_EQ(snap.gauge("gpusim.roofline.peak_gbps"),
                     gpusim::v100().mem_bw_gbps);
    EXPECT_DOUBLE_EQ(snap.gauge("gpusim.roofline.peak_gflops"),
                     gpusim::v100().peak_fp64_tflops * 1e3);
}

TEST_F(AttributionEndToEnd, ReportRoundTripOverLiveSnapshot)
{
    auto p = make_problem(6);
    obs::set_metrics_enabled(true);
    obs::set_trace_enabled(true);
    SolverSettings settings;
    BatchVector<real_type> x(p.a.num_batch(), p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, settings);
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
    ASSERT_TRUE(result.log.all_converged());

    obs::MetricsDocument doc;
    ASSERT_TRUE(obs::parse_metrics_json(obs::metrics().snapshot_json(), doc));
    std::map<std::string, obs::TraceSpanStats> spans;
    ASSERT_TRUE(
        obs::summarize_trace_json(obs::trace().chrome_trace_json(), spans));
    EXPECT_FALSE(spans.empty());

    const auto report = obs::render_solve_report(doc, spans);
    EXPECT_GT(report.phases, 0);
    EXPECT_EQ(report.drift_alarms, 0);
    EXPECT_EQ(report.bandwidth_violations, 0);
    EXPECT_NE(report.text.find("performance report"), std::string::npos);
    EXPECT_NE(report.text.find("spmv"), std::string::npos);
    EXPECT_NE(report.text.find("PASS"), std::string::npos);
}

TEST_F(AttributionEndToEnd, TraceDropGaugeAndWarnOnce)
{
    obs::trace().set_shard_capacity(4);
    obs::set_trace_enabled(true);
    obs::set_metrics_enabled(true);
    for (int i = 0; i < 12; ++i) {
        obs::ScopedSpan span("overflow_span", "test");
    }
    obs::set_trace_enabled(false);
    obs::sync_trace_dropped_gauge();
    obs::set_metrics_enabled(false);
    EXPECT_GT(obs::trace().dropped(), 0);
    EXPECT_DOUBLE_EQ(obs::metrics().snapshot().gauge("obs.trace.dropped"),
                     static_cast<double>(obs::trace().dropped()));
}

}  // namespace
}  // namespace bsis
