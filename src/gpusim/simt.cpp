#include "gpusim/simt.hpp"

#include "gpusim/sanitizer.hpp"

namespace bsis::gpusim {

BlockTracer::BlockTracer(int block_threads, int warp_size,
                         MemoryHierarchy* mem)
    : block_threads_(block_threads),
      warp_size_(warp_size),
      num_warps_((block_threads + warp_size - 1) / warp_size),
      mem_(mem)
{
    BSIS_ENSURE_ARG(block_threads > 0 && warp_size > 0,
                    "bad block geometry");
    BSIS_ENSURE_ARG(mem != nullptr, "tracer needs a memory hierarchy");
}

void BlockTracer::attach_sanitizer(Sanitizer* sanitizer)
{
    sanitizer_ = sanitizer;
    if (sanitizer_ != nullptr) {
        sanitizer_->begin_block();
    }
}

void BlockTracer::set_warp(int warp)
{
    BSIS_ENSURE_ARG(warp >= 0 && warp < num_warps_,
                    "warp index outside the block");
    warp_ = warp;
}

void BlockTracer::set_kernel(const char* name)
{
    if (sanitizer_ != nullptr) {
        sanitizer_->set_kernel(name);
    }
}

void BlockTracer::instr(int active_lanes)
{
    ++counters_.warp_instructions;
    counters_.active_lane_sum += active_lanes;
}

void BlockTracer::flop(int active_lanes, int per_lane)
{
    instr(active_lanes);
    counters_.flops += static_cast<std::int64_t>(active_lanes) * per_lane;
}

void BlockTracer::global_access(const std::vector<std::uint64_t>& lane_addrs,
                                int bytes_per_lane, bool is_write)
{
    instr(static_cast<int>(lane_addrs.size()));
    if (sanitizer_ != nullptr) {
        sanitizer_->on_global_access(warp_, lane_addrs, bytes_per_lane,
                                     is_write);
    }
    coalesce(lane_addrs, bytes_per_lane, mem_->line_bytes(), segments_);
    for (const auto seg : segments_) {
        mem_->access(seg);
    }
}

void BlockTracer::load_global(const std::vector<std::uint64_t>& lane_addrs,
                              int bytes_per_lane)
{
    global_access(lane_addrs, bytes_per_lane, /*is_write=*/false);
}

void BlockTracer::store_global(const std::vector<std::uint64_t>& lane_addrs,
                               int bytes_per_lane)
{
    // Write-allocate: stores occupy lines like loads for this model.
    global_access(lane_addrs, bytes_per_lane, /*is_write=*/true);
}

void BlockTracer::record_shared(int active_lanes)
{
    instr(active_lanes);
    counters_.shared_accesses += active_lanes;
}

void BlockTracer::load_shared(const std::vector<std::uint64_t>& lane_addrs,
                              int bytes_per_lane)
{
    record_shared(static_cast<int>(lane_addrs.size()));
    if (sanitizer_ != nullptr) {
        sanitizer_->on_shared_access(warp_, lane_addrs, bytes_per_lane,
                                     /*is_write=*/false);
    }
}

void BlockTracer::store_shared(const std::vector<std::uint64_t>& lane_addrs,
                               int bytes_per_lane)
{
    record_shared(static_cast<int>(lane_addrs.size()));
    if (sanitizer_ != nullptr) {
        sanitizer_->on_shared_access(warp_, lane_addrs, bytes_per_lane,
                                     /*is_write=*/true);
    }
}

void BlockTracer::load_shared(int active_lanes)
{
    record_shared(active_lanes);
}

void BlockTracer::store_shared(int active_lanes)
{
    record_shared(active_lanes);
}

void BlockTracer::barrier()
{
    barrier(block_threads_);
}

void BlockTracer::barrier(int active_threads)
{
    ++counters_.barriers;
    if (sanitizer_ != nullptr) {
        sanitizer_->on_barrier(active_threads, block_threads_);
    }
}

}  // namespace bsis::gpusim
