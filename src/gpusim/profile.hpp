// Shared SIMT profiling helper: the one place that knows how to size the
// modeled caches for a traced block and how to replay the fused BiCGStab
// kernel to collect Table II's profiler counters.
//
// Both consumers route through here so their numbers agree by
// construction: bench_table2_metrics (the offline Table II reproduction)
// and SimGpuExecutor's live telemetry (the per-solve metrics snapshot) --
// previously the bench owned this math and the executor had none.
#pragma once

#include <cstdint>
#include <vector>

#include "core/storage_config.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simt.hpp"
#include "gpusim/simt_kernels.hpp"
#include "util/types.hpp"

namespace bsis::gpusim {

/// Cache capacities one traced block sees on `device`.
struct CacheSizing {
    std::int64_t l1_bytes = 0;
    std::int64_t l2_bytes = 0;
};

/// L1 = the per-CU L1/shared array minus the block's shared-memory
/// carve-out (never below a 16 KiB floor); L2 = the device L2 partitioned
/// among the resident blocks, except the SHARED sparsity pattern
/// (`pattern_index_count` index_type words) which occupies L2 once for
/// all of them. `block_threads` and `config.shared_bytes` determine the
/// residency via the occupancy model.
CacheSizing profile_cache_sizing(const DeviceSpec& device,
                                 const StorageConfig& config,
                                 index_type block_threads,
                                 size_type pattern_index_count);

/// Aggregated profile of a sample of traced blocks.
struct KernelProfile {
    SimtCounters counters;
    CacheStats l1;
    CacheStats l2;
    int blocks_traced = 0;
    int warp_size = 0;

    double warp_utilization() const
    {
        return counters.warp_utilization(warp_size);
    }
    double l1_hit_rate() const { return l1.hit_rate(); }
    double l2_hit_rate() const { return l2.hit_rate(); }
};

/// Pattern arrays for one traced format; unused arrays may be empty (the
/// other format's kernel never touches them).
struct ProfilePattern {
    TracedFormat format{};
    const std::vector<index_type>* row_ptrs = nullptr;   ///< CSR
    const std::vector<index_type>* csr_col_idxs = nullptr;
    const std::vector<index_type>* ell_col_idxs = nullptr;
    index_type nnz_per_row = 0;   ///< ELL
    index_type nnz_stored = 0;    ///< stored nonzeros per system
};

/// Replays the fused BiCGStab kernel for one sample block per entry of
/// `block_iterations` (block k maps system k's operand addresses and runs
/// block_iterations[k] iterations) against a fresh L1/L2 pair sized by
/// `sizing`. The L1 is invalidated between blocks -- consecutive blocks
/// land on different CUs in general -- while L2 contents persist. With
/// `pipelined` the traced kernel is trace_pipelined_bicgstab (one or two
/// reduction points per iteration) instead of the classic fused kernel.
KernelProfile profile_bicgstab(const DeviceSpec& device,
                               const StorageConfig& config,
                               index_type block_threads,
                               const ProfilePattern& pattern,
                               index_type rows,
                               const std::vector<int>& block_iterations,
                               const CacheSizing& sizing,
                               bool pipelined = false);

}  // namespace bsis::gpusim
