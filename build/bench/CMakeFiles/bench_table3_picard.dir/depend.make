# Empty dependencies file for bench_table3_picard.
# This may be replaced when dependencies are built.
