// Matrix statistics supporting Fig. 3 (storage cost) and Fig. 4 (sparsity
// pattern characterization) of the paper.
#pragma once

#include <iosfwd>

#include "matrix/batch_csr.hpp"
#include "util/types.hpp"

namespace bsis {

/// Structural and numerical characteristics of one batch of matrices with a
/// shared sparsity pattern.
struct MatrixStats {
    index_type rows = 0;
    index_type nnz = 0;
    index_type min_nnz_per_row = 0;
    index_type max_nnz_per_row = 0;
    double avg_nnz_per_row = 0.0;
    index_type kl = 0;  ///< lower half bandwidth
    index_type ku = 0;  ///< upper half bandwidth
    bool pattern_symmetric = false;
    bool numerically_symmetric = false;
    /// min over rows of |a_ii| / sum_{j != i} |a_ij| for batch entry 0;
    /// > 1 means strictly diagonally dominant.
    double diagonal_dominance = 0.0;
};

MatrixStats compute_stats(const BatchCsr<real_type>& batch);

/// Storage-cost model of Fig. 3: bytes needed to store `num_batch` matrices
/// of the given shared pattern in each format. The SELL-P figure uses the
/// uniform-pattern model (every slice padded to `max_nnz_per_row`), an
/// upper bound on the actual per-slice-padded allocation; slices made
/// entirely of short boundary rows come in under it
/// (bench_fig3_storage cross-checks the bound against `to_sellp`).
struct StorageCost {
    size_type dense_bytes = 0;
    size_type csr_bytes = 0;
    size_type ell_bytes = 0;
    size_type sellp_bytes = 0;
};

StorageCost storage_cost(index_type rows, index_type nnz,
                         index_type max_nnz_per_row, size_type num_batch,
                         size_type value_bytes = sizeof(real_type),
                         size_type index_bytes = sizeof(index_type),
                         index_type slice_size = 32);

/// Prints an ASCII rendering of the sparsity pattern (for small matrices),
/// the textual stand-in for the paper's Fig. 4 spy plot.
void print_pattern(std::ostream& os, const BatchCsr<real_type>& batch,
                   index_type max_rows = 64);

}  // namespace bsis
