#include "gpusim/simt_kernels.hpp"

#include <algorithm>

#include "matrix/batch_ell.hpp"
#include "util/error.hpp"

namespace bsis::gpusim {

namespace {

/// Region bases of the virtual address space. Pattern regions are shared
/// by all systems; value/vector regions are strided per system. Each base
/// carries a distinct non-power-of-two offset so the regions do not alias
/// onto the same cache sets (power-of-two bases would all index set 0).
constexpr std::uint64_t region_col_idxs = (std::uint64_t{1} << 32) + 0x1480;
constexpr std::uint64_t region_row_ptrs = (std::uint64_t{2} << 32) + 0x3900;
constexpr std::uint64_t region_values = (std::uint64_t{4} << 32) + 0x6c80;
constexpr std::uint64_t region_b = (std::uint64_t{8} << 32) + 0x9e00;
constexpr std::uint64_t region_spill = (std::uint64_t{16} << 32) + 0xd580;
constexpr std::uint64_t region_log = (std::uint64_t{32} << 32) + 0x10e00;

std::uint64_t round_up(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) / align * align;
}

}  // namespace

AddressMap AddressMap::for_system(size_type system_index, index_type rows,
                                  index_type nnz_stored,
                                  int num_spill_vectors)
{
    const auto sys = static_cast<std::uint64_t>(system_index);
    AddressMap map;
    map.rows = rows;
    map.col_idxs = region_col_idxs;
    map.row_ptrs = region_row_ptrs;
    map.values =
        region_values +
        sys * round_up(static_cast<std::uint64_t>(nnz_stored) *
                           sizeof(real_type),
                       256);
    map.b = region_b +
            sys * round_up(
                      static_cast<std::uint64_t>(rows) * sizeof(real_type),
                      256);
    map.spill =
        region_spill +
        sys * round_up(static_cast<std::uint64_t>(
                           std::max(num_spill_vectors, 1)) *
                           rows * sizeof(real_type),
                       256);
    map.log = region_log + sys * round_up(log_record_bytes, 256);
    return map;
}

size_type traced_shared_bytes(const StorageConfig& config, int num_warps,
                              int scratch_slots_per_warp)
{
    // Per-warp scratch slots for the cross-warp combines: the classic
    // fused dual-dot publishes two partials per warp in one pass, the
    // pipelined three-result sweep publishes three.
    return config.shared_bytes +
           static_cast<size_type>(num_warps) *
               static_cast<size_type>(scratch_slots_per_warp) *
               static_cast<size_type>(sizeof(real_type));
}

void register_map_buffers(Sanitizer& sanitizer, const AddressMap& map,
                          index_type rows, index_type nnz_stored,
                          bool csr_pattern, int num_spill_vectors)
{
    const auto ib = static_cast<size_type>(sizeof(index_type));
    const auto vb = static_cast<size_type>(sizeof(real_type));
    sanitizer.register_buffer("col_idxs", map.col_idxs,
                              static_cast<size_type>(nnz_stored) * ib);
    if (csr_pattern) {
        sanitizer.register_buffer(
            "row_ptrs", map.row_ptrs,
            (static_cast<size_type>(rows) + 1) * ib);
    }
    sanitizer.register_buffer("values", map.values,
                              static_cast<size_type>(nnz_stored) * vb);
    sanitizer.register_buffer("b", map.b,
                              static_cast<size_type>(rows) * vb);
    if (num_spill_vectors > 0) {
        sanitizer.register_buffer(
            "spill", map.spill,
            static_cast<size_type>(num_spill_vectors) * rows * vb);
    }
    sanitizer.register_buffer("log", map.log,
                              static_cast<size_type>(log_record_bytes));
}

namespace {

/// One coalesced warp access to `active` consecutive elements starting at
/// element index `first` of an array at `base`.
void contiguous_access(BlockTracer& tracer, std::uint64_t base,
                       index_type first, int active, int elem_bytes,
                       bool store, std::vector<std::uint64_t>& scratch)
{
    scratch.clear();
    for (int lane = 0; lane < active; ++lane) {
        scratch.push_back(base + static_cast<std::uint64_t>(first + lane) *
                                     static_cast<std::uint64_t>(elem_bytes));
    }
    if (store) {
        tracer.store_global(scratch, elem_bytes);
    } else {
        tracer.load_global(scratch, elem_bytes);
    }
}

/// Same, but for a vector living in shared memory (base = byte offset).
void shared_contiguous(BlockTracer& tracer, std::uint64_t base,
                       index_type first, int active, bool store,
                       std::vector<std::uint64_t>& scratch)
{
    scratch.clear();
    for (int lane = 0; lane < active; ++lane) {
        scratch.push_back(base + static_cast<std::uint64_t>(first + lane) *
                                     sizeof(real_type));
    }
    if (store) {
        tracer.store_shared(scratch, sizeof(real_type));
    } else {
        tracer.load_shared(scratch, sizeof(real_type));
    }
}

/// Reads vector elements [first, first+active) from shared or global.
void vec_read(BlockTracer& tracer, std::uint64_t base, index_type first,
              int active, std::vector<std::uint64_t>& scratch)
{
    if (is_shared_addr(base)) {
        shared_contiguous(tracer, base, first, active, false, scratch);
    } else {
        contiguous_access(tracer, base, first, active, sizeof(real_type),
                          false, scratch);
    }
}

void vec_write(BlockTracer& tracer, std::uint64_t base, index_type first,
               int active, std::vector<std::uint64_t>& scratch)
{
    if (is_shared_addr(base)) {
        shared_contiguous(tracer, base, first, active, true, scratch);
    } else {
        contiguous_access(tracer, base, first, active, sizeof(real_type),
                          true, scratch);
    }
}

/// Gathers x[col] for the given column indices (SpMV right operand).
void gather_x(BlockTracer& tracer, std::uint64_t x_base,
              const index_type* cols, int active,
              std::vector<std::uint64_t>& lane_addrs)
{
    lane_addrs.clear();
    for (int lane = 0; lane < active; ++lane) {
        lane_addrs.push_back(x_base +
                             static_cast<std::uint64_t>(cols[lane]) *
                                 sizeof(real_type));
    }
    if (is_shared_addr(x_base)) {
        tracer.load_shared(lane_addrs, sizeof(real_type));
    } else {
        tracer.load_global(lane_addrs, sizeof(real_type));
    }
}

/// Warp shuffle reduction over `count` values: stages halve the live
/// values; each stage is one warp instruction with that many active lanes.
void warp_reduce(BlockTracer& tracer, int count)
{
    while (count > 1) {
        const int half = (count + 1) / 2;
        tracer.flop(half);
        count = half;
    }
}

/// Cross-warp combine of `num_results` per-warp reduction partials: warp
/// w's partial for result j lives at scratch slot w * num_results + j.
/// Partials are published, a barrier orders them, warp 0 combines each
/// result and publishes it to the first `num_results` scratch slots, a
/// barrier makes them visible, every thread broadcast-reads them, and a
/// final barrier protects the scratch before reuse.
void cross_warp_combine(BlockTracer& tracer, std::uint64_t scratch_base,
                        int num_results)
{
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> addrs;
    const auto slot = [&](int w, int j) {
        return scratch_base +
               static_cast<std::uint64_t>(w * num_results + j) *
                   sizeof(real_type);
    };
    // The leading lanes of each warp publish its partials.
    for (int w = 0; w < warps; ++w) {
        tracer.set_warp(w);
        addrs.clear();
        for (int j = 0; j < num_results; ++j) {
            addrs.push_back(slot(w, j));
        }
        tracer.store_shared(addrs, sizeof(real_type));
    }
    tracer.barrier();  // partials must be visible before the combine
    // Warp 0 combines each result's partials and publishes the results.
    tracer.set_warp(0);
    for (int j = 0; j < num_results; ++j) {
        addrs.clear();
        for (int w = 0; w < warps; ++w) {
            addrs.push_back(slot(w, j));
        }
        tracer.load_shared(addrs, sizeof(real_type));
        warp_reduce(tracer, warps);
    }
    addrs.clear();
    for (int j = 0; j < num_results; ++j) {
        addrs.push_back(slot(0, j));
    }
    tracer.store_shared(addrs, sizeof(real_type));
    tracer.barrier();  // results must be visible to every warp
    // Every thread reads the results back: full-warp broadcast loads (LDS
    // broadcasts same-address lanes in one cycle).
    for (int j = 0; j < num_results; ++j) {
        addrs.assign(static_cast<std::size_t>(warp), slot(0, j));
        for (int w = 0; w < warps; ++w) {
            tracer.set_warp(w);
            tracer.load_shared(addrs, sizeof(real_type));
        }
    }
    tracer.barrier();  // scratch may be reused after this point
}

/// Common CSR SpMV trace body. With fused reductions (`self_dot` or
/// non-empty `dot_bases`) each row's write is followed by the per-row
/// reduction reads/flops and the kernel closes with one cross-warp
/// combine; otherwise with the plain trailing barrier.
void spmv_csr_core(BlockTracer& tracer, const AddressMap& map,
                   const std::vector<index_type>& row_ptrs,
                   const std::vector<index_type>& col_idxs,
                   std::uint64_t x_base, std::uint64_t y_base,
                   bool self_dot,
                   const std::vector<std::uint64_t>& dot_bases,
                   std::uint64_t scratch_base)
{
    const auto rows = static_cast<index_type>(row_ptrs.size()) - 1;
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    const int num_results =
        (self_dot ? 1 : 0) + static_cast<int>(dot_bases.size());
    std::vector<std::uint64_t> scratch;
    std::vector<std::uint64_t> gather;

    // Warp w handles rows w, w + warps, ... (one warp per row).
    for (index_type r = 0; r < rows; ++r) {
        tracer.set_warp(static_cast<int>(r % warps));
        // Row extent loaded by the warp leader.
        contiguous_access(tracer, map.row_ptrs, r, 2, sizeof(index_type),
                          false, scratch);
        const index_type begin = row_ptrs[r];
        const index_type nnz = row_ptrs[r + 1] - begin;
        for (index_type k0 = 0; k0 < nnz; k0 += warp) {
            const int active =
                static_cast<int>(std::min<index_type>(warp, nnz - k0));
            contiguous_access(tracer, map.col_idxs, begin + k0, active,
                              sizeof(index_type), false, scratch);
            contiguous_access(tracer, map.values, begin + k0, active,
                              sizeof(real_type), false, scratch);
            gather_x(tracer, x_base, col_idxs.data() + begin + k0, active,
                     gather);
            tracer.flop(active, 2);  // fused multiply-add per lane
        }
        // Fused cross-dots ride the per-lane partials BEFORE the row
        // reduce: y_r * w[r] = sum_lanes(partial * w[r]), so the row's
        // active lanes broadcast-load w[r] and fma it onto their own dot
        // accumulators -- same lane activity as the SpMV fma itself, and
        // the per-lane accumulators reduce only once at the very end.
        const int red_active = static_cast<int>(std::min<index_type>(
            warp, std::max<index_type>(nnz, 1)));
        for (const auto base : dot_bases) {
            scratch.assign(static_cast<std::size_t>(red_active),
                           base + static_cast<std::uint64_t>(r) *
                                      sizeof(real_type));
            if (is_shared_addr(base)) {
                tracer.load_shared(scratch, sizeof(real_type));
            } else {
                tracer.load_global(scratch, sizeof(real_type));
            }
            tracer.flop(red_active, 2);
        }
        warp_reduce(tracer, red_active);
        vec_write(tracer, y_base, r, 1, scratch);
        // The self-dot needs the reduced row value: the leader squares it
        // onto its accumulator (registers only, no load).
        if (self_dot) {
            tracer.flop(1, 2);
        }
    }
    if (num_results == 0) {
        tracer.barrier();
        return;
    }
    // Cross-dot accumulators are per-lane; the self-dot already lives in
    // a single lane per warp and goes straight to the combine.
    for (std::size_t j = 0; j < dot_bases.size(); ++j) {
        warp_reduce(tracer, warp);
    }
    cross_warp_combine(tracer, scratch_base, num_results);
}

/// Common ELL SpMV trace body; see spmv_csr_core for the fused-reduction
/// tail.
void spmv_ell_core(BlockTracer& tracer, const AddressMap& map,
                   index_type rows, index_type nnz_per_row,
                   const std::vector<index_type>& ell_col_idxs,
                   std::uint64_t x_base, std::uint64_t y_base,
                   bool self_dot,
                   const std::vector<std::uint64_t>& dot_bases,
                   std::uint64_t scratch_base)
{
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    const int num_results =
        (self_dot ? 1 : 0) + static_cast<int>(dot_bases.size());
    std::vector<std::uint64_t> scratch;
    std::vector<std::uint64_t> gather;
    std::vector<index_type> cols(static_cast<std::size_t>(warp));

    // Lane r accumulates row r; the slot loop is the outer loop so
    // consecutive lanes read consecutive memory (column-major layout).
    for (index_type k = 0; k < nnz_per_row; ++k) {
        for (index_type r0 = 0; r0 < rows; r0 += warp) {
            tracer.set_warp(static_cast<int>((r0 / warp) % warps));
            const int active =
                static_cast<int>(std::min<index_type>(warp, rows - r0));
            const index_type slot_first = k * rows + r0;
            contiguous_access(tracer, map.col_idxs, slot_first, active,
                              sizeof(index_type), false, scratch);
            contiguous_access(tracer, map.values, slot_first, active,
                              sizeof(real_type), false, scratch);
            int live = 0;
            for (int lane = 0; lane < active; ++lane) {
                const index_type c =
                    ell_col_idxs[static_cast<std::size_t>(slot_first) +
                                 lane];
                if (c != ell_padding) {
                    cols[static_cast<std::size_t>(live++)] = c;
                }
            }
            if (live > 0) {
                gather_x(tracer, x_base, cols.data(), live, gather);
                tracer.flop(live, 2);
            }
        }
    }
    for (index_type r0 = 0; r0 < rows; r0 += warp) {
        tracer.set_warp(static_cast<int>((r0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, rows - r0));
        vec_write(tracer, y_base, r0, active, scratch);
        // Fused reductions on the freshly produced values (see
        // spmv_csr_core), coalesced across the chunk's lanes.
        if (self_dot) {
            tracer.flop(active, 2);
        }
        for (const auto base : dot_bases) {
            vec_read(tracer, base, r0, active, scratch);
            tracer.flop(active, 2);
        }
    }
    if (num_results == 0) {
        tracer.barrier();
        return;
    }
    for (int j = 0; j < num_results; ++j) {
        warp_reduce(tracer, warp);
    }
    cross_warp_combine(tracer, scratch_base, num_results);
}

}  // namespace

void trace_spmv_csr(BlockTracer& tracer, const AddressMap& map,
                    const std::vector<index_type>& row_ptrs,
                    const std::vector<index_type>& col_idxs,
                    std::uint64_t x_base, std::uint64_t y_base)
{
    tracer.set_kernel("spmv_csr");
    spmv_csr_core(tracer, map, row_ptrs, col_idxs, x_base, y_base, false,
                  {}, shared_space);
}

void trace_spmv_csr_dots(BlockTracer& tracer, const AddressMap& map,
                         const std::vector<index_type>& row_ptrs,
                         const std::vector<index_type>& col_idxs,
                         std::uint64_t x_base, std::uint64_t y_base,
                         bool self_dot,
                         const std::vector<std::uint64_t>& dot_bases,
                         std::uint64_t scratch_base)
{
    tracer.set_kernel("spmv_csr_dots");
    spmv_csr_core(tracer, map, row_ptrs, col_idxs, x_base, y_base,
                  self_dot, dot_bases, scratch_base);
}

void trace_spmv_ell(BlockTracer& tracer, const AddressMap& map,
                    index_type rows, index_type nnz_per_row,
                    const std::vector<index_type>& ell_col_idxs,
                    std::uint64_t x_base, std::uint64_t y_base)
{
    tracer.set_kernel("spmv_ell");
    spmv_ell_core(tracer, map, rows, nnz_per_row, ell_col_idxs, x_base,
                  y_base, false, {}, shared_space);
}

void trace_spmv_ell_dots(BlockTracer& tracer, const AddressMap& map,
                         index_type rows, index_type nnz_per_row,
                         const std::vector<index_type>& ell_col_idxs,
                         std::uint64_t x_base, std::uint64_t y_base,
                         bool self_dot,
                         const std::vector<std::uint64_t>& dot_bases,
                         std::uint64_t scratch_base)
{
    tracer.set_kernel("spmv_ell_dots");
    spmv_ell_core(tracer, map, rows, nnz_per_row, ell_col_idxs, x_base,
                  y_base, self_dot, dot_bases, scratch_base);
}

void trace_spmv_ell_multi(BlockTracer& tracer, const AddressMap& map,
                          index_type rows, index_type nnz_per_row,
                          const std::vector<index_type>& ell_col_idxs,
                          int threads_per_row, std::uint64_t x_base,
                          std::uint64_t y_base)
{
    tracer.set_kernel("spmv_ell_multi");
    const int warp = tracer.warp_size();
    BSIS_ENSURE_ARG(threads_per_row >= 1 && warp % threads_per_row == 0,
                    "threads_per_row must divide the warp size");
    const int warps = tracer.num_warps();
    const int rows_per_warp = warp / threads_per_row;
    std::vector<std::uint64_t> lane_vals;
    std::vector<std::uint64_t> lane_cols;
    std::vector<std::uint64_t> gather;

    // A warp covers `rows_per_warp` consecutive rows; within each row its
    // thread group strides over the slots.
    for (index_type r0 = 0; r0 < rows; r0 += rows_per_warp) {
        tracer.set_warp(static_cast<int>((r0 / rows_per_warp) % warps));
        const int active_rows = static_cast<int>(
            std::min<index_type>(rows_per_warp, rows - r0));
        for (index_type k0 = 0; k0 < nnz_per_row;
             k0 += threads_per_row) {
            lane_vals.clear();
            lane_cols.clear();
            gather.clear();
            int live = 0;
            for (int rr = 0; rr < active_rows; ++rr) {
                for (int t = 0; t < threads_per_row; ++t) {
                    const index_type k = k0 + t;
                    if (k >= nnz_per_row) {
                        continue;
                    }
                    const std::size_t slot =
                        static_cast<std::size_t>(k) * rows + (r0 + rr);
                    lane_cols.push_back(map.col_idxs +
                                        slot * sizeof(index_type));
                    lane_vals.push_back(map.values +
                                        slot * sizeof(real_type));
                    const index_type c = ell_col_idxs[slot];
                    if (c != ell_padding) {
                        gather.push_back(
                            x_base + static_cast<std::uint64_t>(c) *
                                         sizeof(real_type));
                        ++live;
                    }
                }
            }
            tracer.load_global(lane_cols, sizeof(index_type));
            tracer.load_global(lane_vals, sizeof(real_type));
            if (!gather.empty()) {
                if (is_shared_addr(x_base)) {
                    tracer.load_shared(gather, sizeof(real_type));
                } else {
                    tracer.load_global(gather, sizeof(real_type));
                }
            }
            tracer.flop(live, 2);
        }
        // Sub-warp reduction: log2(threads_per_row) shuffle stages over
        // all groups of the warp.
        int width = threads_per_row;
        while (width > 1) {
            width /= 2;
            tracer.flop(active_rows * width);
        }
        std::vector<std::uint64_t> store;
        for (int rr = 0; rr < active_rows; ++rr) {
            store.push_back(y_base + static_cast<std::uint64_t>(r0 + rr) *
                                         sizeof(real_type));
        }
        if (is_shared_addr(y_base)) {
            tracer.store_shared(store, sizeof(real_type));
        } else {
            tracer.store_global(store, sizeof(real_type));
        }
    }
    tracer.barrier();
}

void trace_dot(BlockTracer& tracer, index_type n, std::uint64_t a_base,
               std::uint64_t b_base, std::uint64_t scratch_base)
{
    tracer.set_kernel("dot");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    // Grid-stride accumulation into per-lane partials.
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        vec_read(tracer, a_base, i0, active, scratch);
        if (b_base != a_base) {
            vec_read(tracer, b_base, i0, active, scratch);
        }
        tracer.flop(active, 2);
    }
    // Per-warp shuffle tree (all warps run it concurrently; issued once).
    warp_reduce(tracer, warp);
    cross_warp_combine(tracer, scratch_base, 1);
}

void trace_dot2(BlockTracer& tracer, index_type n, std::uint64_t x_base,
                std::uint64_t y1_base, std::uint64_t y2_base,
                std::uint64_t scratch_base)
{
    tracer.set_kernel("dot2");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    // One grid-stride sweep feeds BOTH per-lane partials: each distinct
    // operand is read once, then two fused multiply-adds accumulate
    // x*y1 and x*y2.
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        vec_read(tracer, x_base, i0, active, scratch);
        if (y1_base != x_base) {
            vec_read(tracer, y1_base, i0, active, scratch);
        }
        if (y2_base != x_base && y2_base != y1_base) {
            vec_read(tracer, y2_base, i0, active, scratch);
        }
        tracer.flop(active, 2);
        tracer.flop(active, 2);
    }
    // Per-warp shuffle trees for the two partials, then one combine round
    // publishing both results.
    warp_reduce(tracer, warp);
    warp_reduce(tracer, warp);
    cross_warp_combine(tracer, scratch_base, 2);
}

void trace_axpy_nrm2(BlockTracer& tracer, index_type n,
                     const std::vector<std::uint64_t>& read_bases,
                     std::uint64_t out_base, std::uint64_t scratch_base)
{
    tracer.set_kernel("axpy_nrm2");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    // Streaming update sweep that also accumulates the squared norm of the
    // value it writes -- the written element is still in registers, so the
    // norm costs no extra memory traffic.
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        for (const auto base : read_bases) {
            vec_read(tracer, base, i0, active, scratch);
        }
        tracer.flop(active, 2);  // the update
        vec_write(tracer, out_base, i0, active, scratch);
        tracer.flop(active, 2);  // norm accumulation of the written value
    }
    warp_reduce(tracer, warp);
    cross_warp_combine(tracer, scratch_base, 1);
}

void trace_axpy_nrm2_dot(BlockTracer& tracer, index_type n,
                         const std::vector<std::uint64_t>& read_bases,
                         std::uint64_t out_base, std::uint64_t dot_base,
                         std::uint64_t scratch_base)
{
    tracer.set_kernel("axpy_nrm2_dot");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    // Streaming update sweep accumulating BOTH the squared norm of the
    // written value and its product against `dot_base`: the written
    // element is in registers, so the two reductions cost one extra
    // operand read and two fmas.
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        for (const auto base : read_bases) {
            vec_read(tracer, base, i0, active, scratch);
        }
        tracer.flop(active, 2);  // the update
        vec_write(tracer, out_base, i0, active, scratch);
        tracer.flop(active, 2);  // norm accumulation
        vec_read(tracer, dot_base, i0, active, scratch);
        tracer.flop(active, 2);  // dot accumulation
    }
    warp_reduce(tracer, warp);
    warp_reduce(tracer, warp);
    cross_warp_combine(tracer, scratch_base, 2);
}

void trace_axpy(BlockTracer& tracer, index_type n,
                const std::vector<std::uint64_t>& read_bases,
                std::uint64_t out_base)
{
    tracer.set_kernel("axpy");
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        tracer.set_warp(static_cast<int>((i0 / warp) % warps));
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        for (const auto base : read_bases) {
            vec_read(tracer, base, i0, active, scratch);
        }
        tracer.flop(active, 2);
        vec_write(tracer, out_base, i0, active, scratch);
    }
    tracer.barrier();
}

namespace {

/// Solver vector addresses resolved from a storage config: each slot's
/// shared-memory offset or spilled global region, in slot order. Shared
/// vector i sits at byte offset i * padded_length * sizeof(real_type);
/// the cross-warp reduction scratch follows the last shared vector.
struct BicgstabSlots {
    std::uint64_t p_hat, v, s_hat, t, r, r_hat, p, s, x;
    std::uint64_t inv_diag;
    std::uint64_t reduce_scratch;
    bool has_jacobi;
};

BicgstabSlots resolve_bicgstab_slots(const AddressMap& map,
                                     const StorageConfig& config)
{
    BSIS_ENSURE_ARG(!config.slots.empty(), "storage config not built");
    const auto vector_bytes =
        static_cast<std::uint64_t>(config.padded_length) *
        sizeof(real_type);
    std::vector<std::uint64_t> base(config.slots.size());
    int spill = 0;
    for (std::size_t i = 0; i < config.slots.size(); ++i) {
        base[i] =
            config.slots[i].space == MemSpace::shared
                ? static_cast<std::uint64_t>(
                      config.shared_slot_index(config.slots[i].name)) *
                      vector_bytes
                : map.spill_vec(spill++);
    }
    const auto vec = [&](const char* name) {
        for (std::size_t i = 0; i < config.slots.size(); ++i) {
            if (config.slots[i].name == name) {
                return base[i];
            }
        }
        throw BadArgument("trace_bicgstab",
                          std::string("unknown slot ") + name);
    };
    BicgstabSlots s{};
    s.p_hat = vec("p_hat");
    s.v = vec("v");
    s.s_hat = vec("s_hat");
    s.t = vec("t");
    s.r = vec("r");
    s.r_hat = vec("r_hat");
    s.p = vec("p");
    s.s = vec("s");
    s.x = vec("x");
    s.has_jacobi = config.slots.back().cls == SlotClass::precond;
    s.inv_diag = s.has_jacobi ? base.back() : shared_space;
    s.reduce_scratch =
        static_cast<std::uint64_t>(config.num_shared) * vector_bytes;
    return s;
}

/// Exit write-back of the per-system log record: lane 0 stores
/// {iterations, residual_norm, failure class} -- the same taxonomy the
/// host-side kernels classify -- as three 8-byte words. This is what a
/// real GPU kernel must emit for the flight recorder to work off-device.
void trace_log_writeback(BlockTracer& tracer, const AddressMap& map)
{
    tracer.instr(1);
    tracer.store_global({map.log}, 8);
    tracer.store_global({map.log + 8}, 8);
    tracer.store_global({map.log + 16}, 8);
}

}  // namespace

void trace_bicgstab(BlockTracer& tracer, const AddressMap& map,
                    TracedFormat format,
                    const std::vector<index_type>& row_ptrs,
                    const std::vector<index_type>& csr_col_idxs,
                    const std::vector<index_type>& ell_col_idxs,
                    index_type rows, index_type nnz_per_row, int iterations,
                    const StorageConfig& config)
{
    tracer.set_kernel("bicgstab");
    const auto slots = resolve_bicgstab_slots(map, config);
    const auto p_hat = slots.p_hat;
    const auto v = slots.v;
    const auto s_hat = slots.s_hat;
    const auto t = slots.t;
    const auto r = slots.r;
    const auto r_hat = slots.r_hat;
    const auto p = slots.p;
    const auto s = slots.s;
    const auto x = slots.x;
    const bool has_jacobi = slots.has_jacobi;
    const std::uint64_t inv_diag = slots.inv_diag;
    const std::uint64_t reduce_scratch = slots.reduce_scratch;

    const auto spmv = [&](std::uint64_t in, std::uint64_t out) {
        if (format == TracedFormat::csr) {
            trace_spmv_csr(tracer, map, row_ptrs, csr_col_idxs, in, out);
        } else {
            trace_spmv_ell(tracer, map, rows, nnz_per_row, ell_col_idxs, in,
                           out);
        }
    };
    const auto precond = [&](std::uint64_t in, std::uint64_t out) {
        if (has_jacobi) {
            trace_axpy(tracer, rows, {inv_diag, in}, out);
        } else {
            trace_axpy(tracer, rows, {in}, out);
        }
    };
    const auto dot = [&](std::uint64_t a, std::uint64_t b) {
        trace_dot(tracer, rows, a, b, reduce_scratch);
    };

    // Setup: Jacobi generation (diagonal gather + invert), r = b - A x
    // with the initial norm fused into the update sweep, r_hat = r.
    if (has_jacobi) {
        trace_axpy(tracer, rows, {map.values}, inv_diag);
    }
    spmv(x, t);
    trace_axpy_nrm2(tracer, rows, {map.b, t}, r, reduce_scratch);
    trace_axpy(tracer, rows, {r}, r_hat);

    // Fused iteration: the paper's single-pass update kernels. ||s|| and
    // ||r|| ride on the s and r update sweeps; t.s and t.t share one
    // dual-dot sweep.
    for (int it = 0; it < iterations; ++it) {
        dot(r, r_hat);                            // rho
        trace_axpy(tracer, rows, {r, p, v}, p);   // p update
        precond(p, p_hat);
        spmv(p_hat, v);
        dot(r_hat, v);                            // alpha denominator
        trace_axpy_nrm2(tracer, rows, {r, v}, s,  // s = r - alpha v, ||s||
                        reduce_scratch);
        precond(s, s_hat);
        spmv(s_hat, t);
        trace_dot2(tracer, rows, t, t, s,         // omega num. + denom.
                   reduce_scratch);
        trace_axpy(tracer, rows, {x, p_hat, s_hat}, x);
        trace_axpy_nrm2(tracer, rows, {s, t}, r,  // r update, ||r||
                        reduce_scratch);
    }

    trace_log_writeback(tracer, map);
}

void trace_pipelined_bicgstab(BlockTracer& tracer, const AddressMap& map,
                              TracedFormat format,
                              const std::vector<index_type>& row_ptrs,
                              const std::vector<index_type>& csr_col_idxs,
                              const std::vector<index_type>& ell_col_idxs,
                              index_type rows, index_type nnz_per_row,
                              int iterations, const StorageConfig& config)
{
    tracer.set_kernel("pipelined_bicgstab");
    const auto slots = resolve_bicgstab_slots(map, config);
    const auto p_hat = slots.p_hat;
    const auto v = slots.v;
    const auto s_hat = slots.s_hat;
    const auto t = slots.t;
    const auto r = slots.r;
    const auto r_hat = slots.r_hat;
    const auto p = slots.p;
    const auto s = slots.s;
    const auto x = slots.x;
    const bool has_jacobi = slots.has_jacobi;
    const std::uint64_t inv_diag = slots.inv_diag;
    const std::uint64_t reduce_scratch = slots.reduce_scratch;

    const auto spmv_dots = [&](std::uint64_t in, std::uint64_t out,
                               bool self_dot,
                               const std::vector<std::uint64_t>& dots) {
        if (format == TracedFormat::csr) {
            trace_spmv_csr_dots(tracer, map, row_ptrs, csr_col_idxs, in,
                                out, self_dot, dots, reduce_scratch);
        } else {
            trace_spmv_ell_dots(tracer, map, rows, nnz_per_row,
                                ell_col_idxs, in, out, self_dot, dots,
                                reduce_scratch);
        }
    };
    const auto precond = [&](std::uint64_t in, std::uint64_t out) {
        if (has_jacobi) {
            trace_axpy(tracer, rows, {inv_diag, in}, out);
        } else {
            trace_axpy(tracer, rows, {in}, out);
        }
    };

    // Setup matches the classic kernel plus the initial rho = r.r_hat
    // (afterwards rho lives in the recurrence).
    if (has_jacobi) {
        trace_axpy(tracer, rows, {map.values}, inv_diag);
    }
    spmv_dots(x, t, false, {});
    trace_axpy_nrm2(tracer, rows, {map.b, t}, r, reduce_scratch);
    trace_axpy(tracer, rows, {r}, r_hat);
    trace_dot(tracer, rows, r, r_hat, reduce_scratch);

    // Pipelined iteration: no standalone rho reduction (recurrence);
    // r_hat.v rides the SpMV producing v; ||s|| and s.r_hat ride the s
    // update; t.t / t.s / t.r_hat ride the SpMV producing t in ONE
    // three-result combine; the x and r updates stream with no reduction
    // at all (||r|| comes from the recurrence). 14 block barriers per
    // iteration versus the classic kernel's 21.
    for (int it = 0; it < iterations; ++it) {
        trace_axpy(tracer, rows, {r, p, v}, p);       // p update
        precond(p, p_hat);
        spmv_dots(p_hat, v, false, {r_hat});          // v = A p_hat, r_hat.v
        trace_axpy_nrm2_dot(tracer, rows, {r, v}, s,  // s, ||s||, s.r_hat
                            r_hat, reduce_scratch);
        precond(s, s_hat);
        spmv_dots(s_hat, t, true, {s, r_hat});        // t, t.t, t.s, t.r_hat
        trace_axpy(tracer, rows, {x, p_hat, s_hat}, x);
        trace_axpy(tracer, rows, {s, t}, r);          // pure streaming sweep
    }

    trace_log_writeback(tracer, map);
}

}  // namespace bsis::gpusim
