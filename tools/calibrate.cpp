// Scratch calibration tool (not part of the installed targets): finds the
// time step / collisionality regime where the proxy app reproduces the
// paper's iteration counts (electron ~30 -> ~12, ion ~5 -> ~2 across 5
// warm-started Picard iterations at abs tol 1e-10).
#include <cstdio>
#include <cstdlib>

#include "xgc/picard.hpp"

using namespace bsis;
using namespace bsis::xgc;

int main(int argc, char** argv)
{
    const real_type dt = argc > 1 ? std::atof(argv[1]) : 0.01;
    WorkloadParams wp;
    wp.num_mesh_nodes = 4;
    CollisionWorkload workload(wp);

    SolverSettings s;
    s.solver = SolverType::bicgstab;
    s.precond = PrecondType::jacobi;
    s.tolerance = 1e-10;
    s.max_iterations = 500;

    PicardSettings ps;
    ps.dt = dt;
    ps.num_iterations = 5;
    ps.warm_start = true;

    auto report =
        implicit_collision_step(workload, ps, make_reference_solver(s));
    std::printf("dt = %g\n", dt);
    for (int k = 0; k < report.picard_iterations; ++k) {
        std::printf("picard %d: ion %.1f iters, electron %.1f iters\n", k,
                    report.mean_species_iterations(k, 0, 2),
                    report.mean_species_iterations(k, 1, 2));
    }
    std::printf("nonlinear change: %.3e, conservation err: %.3e\n",
                report.nonlinear_change, report.max_conservation_error());
    // Sanity: all systems converged?
    for (const auto& log : report.linear_logs) {
        if (!log.all_converged()) {
            std::printf("WARNING: some systems did not converge!\n");
        }
    }
    return 0;
}
