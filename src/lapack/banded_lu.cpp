#include "lapack/banded_lu.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include <exception>

#include "util/error.hpp"

namespace bsis::lapack {

void gbtrf(BandedView<real_type> a, std::vector<index_type>& ipiv)
{
    const index_type n = a.n;
    const index_type kl = a.kl;
    // Fill-in from pivoting widens the upper bandwidth to kl + ku.
    const index_type kuw = a.kl + a.ku;
    ipiv.assign(static_cast<std::size_t>(n), 0);

    for (index_type j = 0; j < n; ++j) {
        const index_type km = std::min(kl, n - 1 - j);
        // Partial pivoting: largest magnitude in column j, rows j..j+km.
        index_type piv = j;
        real_type piv_mag = std::abs(a(j, j));
        for (index_type i = j + 1; i <= j + km; ++i) {
            const real_type mag = std::abs(a(i, j));
            if (mag > piv_mag) {
                piv_mag = mag;
                piv = i;
            }
        }
        ipiv[j] = piv;
        if (piv_mag == real_type{0}) {
            throw NumericalBreakdown(
                "gbtrf", "zero pivot at column " + std::to_string(j));
        }
        const index_type jhi = std::min(j + kuw, n - 1);
        if (piv != j) {
            for (index_type c = j; c <= jhi; ++c) {
                std::swap(a(j, c), a(piv, c));
            }
        }
        const real_type inv_pivot = real_type{1} / a(j, j);
        for (index_type i = j + 1; i <= j + km; ++i) {
            const real_type l = a(i, j) * inv_pivot;
            a(i, j) = l;
            for (index_type c = j + 1; c <= jhi; ++c) {
                a(i, c) -= l * a(j, c);
            }
        }
    }
}

void gbtrs(const BandedView<real_type>& a,
           const std::vector<index_type>& ipiv, VecView<real_type> b)
{
    const index_type n = a.n;
    BSIS_ENSURE_DIMS(b.len == n, "rhs length must equal matrix order");
    BSIS_ENSURE_DIMS(static_cast<index_type>(ipiv.size()) == n,
                     "ipiv length must equal matrix order");
    const index_type kuw = a.kl + a.ku;

    // Forward: apply P and L (unit lower triangular, multipliers stored in
    // the band below the diagonal).
    for (index_type j = 0; j < n; ++j) {
        if (ipiv[j] != j) {
            std::swap(b[j], b[ipiv[j]]);
        }
        const index_type ihi = std::min(j + a.kl, n - 1);
        for (index_type i = j + 1; i <= ihi; ++i) {
            b[i] -= a(i, j) * b[j];
        }
    }
    // Backward: solve U x = y, U has upper bandwidth kl + ku.
    for (index_type j = n - 1; j >= 0; --j) {
        b[j] /= a(j, j);
        const index_type ilo = std::max(j - kuw, index_type{0});
        for (index_type i = ilo; i < j; ++i) {
            b[i] -= a(i, j) * b[j];
        }
    }
}

void gbsv(BandedView<real_type> a, VecView<real_type> b)
{
    std::vector<index_type> ipiv;
    gbtrf(a, ipiv);
    gbtrs(a, ipiv, b);
}

double gbsv_flops(index_type n, index_type kl, index_type ku)
{
    // gbtrf: per column, km <= kl multiplier divisions and an outer product
    // over km x (kl + ku) entries; gbtrs: triangular solves over the bands.
    const double dn = n;
    const double dkl = kl;
    const double kuw = static_cast<double>(kl) + ku;
    const double factor = dn * (dkl + 2.0 * dkl * kuw);
    const double solve = dn * (2.0 * dkl + 2.0 * kuw + 1.0);
    return factor + solve;
}

void batch_gbsv(BatchBanded<real_type>& a, BatchVector<real_type>& x)
{
    BSIS_ENSURE_DIMS(a.num_batch() == x.num_batch(),
                     "batch counts must match");
    BSIS_ENSURE_DIMS(a.n() == x.len(), "rhs length must equal matrix order");
    const size_type nbatch = a.num_batch();
    std::exception_ptr failure;
#pragma omp parallel for schedule(dynamic)
    for (size_type b = 0; b < nbatch; ++b) {
        try {
            gbsv(a.entry(b), x.entry(b));
        } catch (...) {
#pragma omp critical(bsis_batch_driver_failure)
            {
                if (!failure) {
                    failure = std::current_exception();
                }
            }
        }
    }
    if (failure) {
        std::rethrow_exception(failure);
    }
}

}  // namespace bsis::lapack
