file(REMOVE_RECURSE
  "libbsis_xgc.a"
)
