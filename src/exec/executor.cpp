#include "exec/executor.hpp"

#include <algorithm>

#include "gpusim/simt.hpp"
#include "gpusim/simt_kernels.hpp"
#include "lapack/banded_lu.hpp"
#include "matrix/conversions.hpp"
#include "obs/attribution.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bsis {

namespace {

std::vector<VectorSlot> slots_for(const SolverSettings& settings)
{
    const int prec =
        precond_work_vectors(settings.precond, settings.block_jacobi_size);
    switch (settings.solver) {
    case SolverType::bicgstab:
        return bicgstab_slots(prec);
    case SolverType::bicg:
        return bicg_slots(prec);
    case SolverType::cgs:
        return cgs_slots(prec);
    case SolverType::cg:
        return cg_slots(prec);
    case SolverType::gmres:
        return gmres_slots(settings.gmres_restart, prec);
    case SolverType::richardson:
        return richardson_slots(prec);
    case SolverType::chebyshev:
        return chebyshev_slots(prec);
    }
    return {};
}

gpusim::SystemShape shape_of(const BatchCsr<real_type>& a)
{
    // max_nnz_per_row is cached on the batch at construction; this runs
    // per solve and must not rescan the row pointers.
    return {a.rows(), a.nnz_per_entry(), a.max_nnz_per_row()};
}

gpusim::SystemShape shape_of(const BatchEll<real_type>& a)
{
    return {a.rows(), a.stored_per_entry(), a.nnz_per_row()};
}

size_type pattern_bytes(const BatchCsr<real_type>& a)
{
    return static_cast<size_type>(
        (a.row_ptrs().size() + a.col_idxs().size()) * sizeof(index_type));
}

size_type pattern_bytes(const BatchEll<real_type>& a)
{
    return static_cast<size_type>(a.col_idxs().size() * sizeof(index_type));
}

size_type values_bytes(const BatchCsr<real_type>& a)
{
    return a.num_batch() * a.nnz_per_entry() *
           static_cast<size_type>(sizeof(real_type));
}

size_type values_bytes(const BatchEll<real_type>& a)
{
    return a.num_batch() * a.stored_per_entry() *
           static_cast<size_type>(sizeof(real_type));
}

/// Pattern arrays the traced kernels need, per matrix format. Unused
/// arrays point to an empty vector (the other format's kernel never
/// touches them).
struct TraceInputs {
    gpusim::TracedFormat format{};
    const std::vector<index_type>* row_ptrs;
    const std::vector<index_type>* csr_cols;
    const std::vector<index_type>* ell_cols;
    index_type nnz_per_row = 0;
    index_type nnz_stored = 0;
};

const std::vector<index_type>& no_pattern()
{
    static const std::vector<index_type> empty;
    return empty;
}

TraceInputs trace_inputs(const BatchCsr<real_type>& a)
{
    return {gpusim::TracedFormat::csr, &a.row_ptrs(), &a.col_idxs(),
            &no_pattern(), 0, a.nnz_per_entry()};
}

TraceInputs trace_inputs(const BatchEll<real_type>& a)
{
    return {gpusim::TracedFormat::ell, &no_pattern(), &no_pattern(),
            &a.col_idxs(), a.nnz_per_row(), a.stored_per_entry()};
}

}  // namespace

template <typename BatchMatrix>
GpuSolveReport SimGpuExecutor::solve_impl(const BatchMatrix& a,
                                          const BatchVector<real_type>& b,
                                          BatchVector<real_type>& x,
                                          const SolverSettings& settings,
                                          BatchFormat format,
                                          bool include_transfers) const
{
    GpuSolveReport report;
    obs::ScopedSpan solve_span("gpu_solve", "executor",
                               static_cast<std::int64_t>(a.num_batch()));
    const auto shape = shape_of(a);

    // 1. Shared-memory configuration (Section IV-D).
    report.storage = configure_storage(
        slots_for(settings), shape.rows, device_.warp_size,
        sizeof(real_type),
        static_cast<size_type>(device_.max_shared_kib_per_block * 1024));

    // 2. Block size from the tuning rules (Section IV-E) and occupancy.
    report.block_threads =
        format == BatchFormat::ell
            ? ell_block_size(shape.rows, device_.warp_size)
            : csr_block_size(shape.rows, device_.warp_size);
    report.occupancy = gpusim::compute_occupancy(device_,
                                                 report.block_threads,
                                                 report.storage.shared_bytes);

    // 3. Functional solve (the real arithmetic; gives iteration counts).
    Timer timer;
    auto result = solve_batch(a, b, x, settings);
    report.wall_seconds = timer.seconds();
    report.log = std::move(result.log);
    report.history = std::move(result.history);
    report.failures = report.log.failure_counts();

    // 4. Per-block cost model and block schedule. Co-residency only
    // throttles a block when the batch actually fills the CUs that far.
    const int resident = static_cast<int>(std::min<size_type>(
        report.occupancy.blocks_per_cu,
        std::max<size_type>(1, (a.num_batch() + device_.num_cu - 1) /
                                   device_.num_cu)));
    report.block_cost =
        gpusim::block_cost(device_, shape, format, report.block_threads,
                           report.storage, result.work, resident);
    std::vector<double> durations;
    durations.reserve(static_cast<std::size_t>(report.log.num_batch()));
    for (size_type i = 0; i < report.log.num_batch(); ++i) {
        durations.push_back(
            report.block_cost.block_us(report.log.iterations(i)) * 1e-6);
    }
    const auto schedule = gpusim::schedule_blocks_timeline(
        durations, report.occupancy.device_slots(device_),
        device_.scheduling);
    report.num_waves = schedule.num_waves;
    report.kernel_seconds =
        device_.launch_overhead_us * 1e-6 + schedule.makespan_seconds;
    if (obs::trace_enabled()) {
        // Render the modeled device timeline as a second Perfetto process:
        // one complete event per scheduled block, on its resident slot's
        // track, shifted past the modeled launch overhead.
        auto& trace = obs::trace();
        const double launch_us = device_.launch_overhead_us;
        trace.emit_complete("kernel_launch", "gpusim",
                            obs::TraceSession::device_pid, 0, 0.0,
                            launch_us);
        for (std::size_t i = 0; i < schedule.blocks.size(); ++i) {
            const auto& blk = schedule.blocks[i];
            trace.emit_complete(
                "block", "gpusim", obs::TraceSession::device_pid, blk.slot,
                launch_us + blk.start_seconds * 1e6,
                (blk.end_seconds - blk.start_seconds) * 1e6,
                static_cast<std::int64_t>(i));
        }
    }

    // 4b. Live SIMT profile (the Table II counters, measured on THIS
    // solve's blocks with their actual iteration counts). Runs when
    // explicitly requested or while telemetry is on; only the fused
    // BiCGStab kernel has a traced twin.
    if ((profile_ || obs::enabled()) &&
        settings.solver == SolverType::bicgstab && settings.fused_kernels &&
        a.num_batch() > 0) {
        const auto inputs = trace_inputs(a);
        const gpusim::ProfilePattern pattern{
            inputs.format,      inputs.row_ptrs,    inputs.csr_cols,
            inputs.ell_cols,    inputs.nnz_per_row, inputs.nnz_stored};
        const auto sizing = gpusim::profile_cache_sizing(
            device_, report.storage, report.block_threads,
            pattern_bytes(a) / static_cast<size_type>(sizeof(index_type)));
        std::vector<int> block_iters;
        const auto sample =
            std::min<size_type>(profile_sample_blocks, a.num_batch());
        block_iters.reserve(static_cast<std::size_t>(sample));
        for (size_type blk = 0; blk < sample; ++blk) {
            block_iters.push_back(std::max(1, report.log.iterations(blk)));
        }
        report.profile = gpusim::profile_bicgstab(
            device_, report.storage, report.block_threads, pattern,
            shape.rows, block_iters, sizing, settings.pipelined);
        report.profiled = true;
    }
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        m.add_named("gpusim.solves");
        m.set_named("gpusim.kernel_seconds", report.kernel_seconds);
        m.set_named("gpusim.num_waves", report.num_waves);
        m.set_named("gpusim.blocks_per_cu",
                    report.occupancy.blocks_per_cu);
        m.set_named("gpusim.device_slots",
                    report.occupancy.device_slots(device_));
        if (report.profiled) {
            m.set_named("gpusim.warp_utilization",
                        report.profile.warp_utilization());
            m.set_named("gpusim.l1_hit_rate", report.profile.l1_hit_rate());
            m.set_named("gpusim.l2_hit_rate", report.profile.l2_hit_rate());
        }
        m.add_named(
            "gpusim.fail.max_iters",
            report.failures[static_cast<std::size_t>(
                FailureClass::max_iters)]);
        m.add_named(
            "gpusim.fail.breakdown_rho",
            report.failures[static_cast<std::size_t>(
                FailureClass::breakdown_rho)]);
        m.add_named(
            "gpusim.fail.breakdown_omega",
            report.failures[static_cast<std::size_t>(
                FailureClass::breakdown_omega)]);
        m.add_named(
            "gpusim.fail.stagnated",
            report.failures[static_cast<std::size_t>(
                FailureClass::stagnated)]);
        m.add_named(
            "gpusim.fail.non_finite",
            report.failures[static_cast<std::size_t>(
                FailureClass::non_finite)]);

        // Performance attribution of the MODELED device run: the block
        // cost decomposition splits the kernel time into phases, the
        // work ledger prices their bytes/flops, and the join yields the
        // model's implied per-block bandwidth and roofline position
        // under the device peaks. Drift then cross-checks (a) the
        // decomposition against the ledger's device-roofline floor and
        // (b) -- when the live SIMT profile ran -- the ledger against
        // the TRACED per-iteration flop and transaction counters.
        const double total_iters =
            static_cast<double>(report.log.total_iterations());
        obs::LedgerShape lshape;
        lshape.rows = shape.rows;
        lshape.stored_nnz = shape.nnz;
        lshape.nnz_per_row = shape.nnz_per_row;
        const auto lformat = format == BatchFormat::ell
                                 ? obs::LedgerFormat::ell
                                 : obs::LedgerFormat::csr;
        const double systems = static_cast<double>(a.num_batch());
        const auto ledger = obs::work_ledger(result.work, lshape, lformat,
                                             total_iters, systems);

        // Modeled per-phase busy time summed over every block (seconds);
        // iter_spmv_us bundles the preconditioner applications, so the
        // phases are rebuilt from the unit costs.
        const auto& cost = report.block_cost;
        obs::PhaseTotals modeled;
        const auto phase_idx = [](obs::Phase p) {
            return static_cast<int>(p);
        };
        modeled.seconds[phase_idx(obs::Phase::spmv)] =
            (result.work.spmv_per_iter * cost.spmv_us * total_iters +
             result.work.setup_spmvs * cost.spmv_us * systems) *
            1e-6;
        modeled.seconds[phase_idx(obs::Phase::precond)] =
            (result.work.precond_per_iter * cost.precond_us * total_iters +
             (result.work.precond_per_iter > 0 ? cost.precond_us : 0.0) *
                 systems) *
            1e-6;
        modeled.seconds[phase_idx(obs::Phase::reduction)] =
            (cost.iter_reduction_us * total_iters +
             result.work.setup_dots * cost.dot_us * systems) *
            1e-6;
        modeled.seconds[phase_idx(obs::Phase::update)] =
            (cost.iter_update_us * total_iters +
             result.work.setup_axpys * cost.axpy_us * systems) *
            1e-6;

        const obs::RooflinePeaks device_peaks{
            device_.mem_bw_gbps, device_.peak_fp64_tflops * 1e3};
        const auto attribution =
            obs::attribute_phases(ledger, modeled, device_peaks);
        obs::record_phase_attribution(m, "gpusim", attribution);
        m.set_named("gpusim.roofline.peak_gbps", device_peaks.gbps);
        m.set_named("gpusim.roofline.peak_gflops", device_peaks.gflops);

        // Sweeps per iteration per phase (plus per-system setup sweeps):
        // each full-vector sweep ends in a block-wide barrier, so the
        // drift floor below can price the synchronization the logical
        // ledger's pure-bandwidth view is blind to. At collision-operator
        // sizes the sweeps are latency-dominated, and a bytes-only floor
        // would flag the reduction phase (whose latency per byte is
        // largest) as permanently drifted.
        const auto& w0 = result.work;
        double sweeps[obs::phase_count] = {};
        sweeps[phase_idx(obs::Phase::spmv)] =
            w0.spmv_per_iter * total_iters + w0.setup_spmvs * systems;
        sweeps[phase_idx(obs::Phase::precond)] =
            w0.precond_per_iter * total_iters +
            (w0.precond_per_iter > 0 ? systems : 0.0);
        if (w0.has_fused_shape()) {
            sweeps[phase_idx(obs::Phase::update)] =
                (w0.fused_update_sweeps + w0.fused_norm_update_sweeps) *
                total_iters;
            sweeps[phase_idx(obs::Phase::reduction)] =
                w0.fused_dot_sweeps * total_iters;
        } else {
            sweeps[phase_idx(obs::Phase::update)] =
                w0.axpys_per_iter * total_iters;
            sweeps[phase_idx(obs::Phase::reduction)] =
                w0.dots_per_iter * total_iters;
        }
        sweeps[phase_idx(obs::Phase::update)] += w0.setup_axpys * systems;
        sweeps[phase_idx(obs::Phase::reduction)] += w0.setup_dots * systems;

        double measured_phase[obs::phase_count] = {};
        double floor_phase[obs::phase_count] = {};
        for (int p = 0; p < obs::phase_count; ++p) {
            if (p == phase_idx(obs::Phase::other)) {
                continue;
            }
            measured_phase[p] = modeled.seconds[p];
            const auto& w = ledger.phase[p];
            // Roofline + synchronization floor: streaming time at the
            // full-device peaks (which scale every phase identically --
            // drift only compares shares, so the per-block bandwidth
            // split cancels out) plus the device's cross-warp combine
            // latency per ledger reduction point and a barrier per
            // sweep. What the floor still omits (instruction issue,
            // spill penalties) is exactly what the drift band tolerates.
            floor_phase[p] =
                std::max(w.bytes() / (device_peaks.gbps * 1e9),
                         w.flops / (device_peaks.gflops * 1e9)) +
                (w.reductions * device_.reduction_latency_us +
                 sweeps[p] * device_.barrier_latency_us) *
                    1e-6;
        }
        // The floor prices streaming at the full-device peaks while the
        // cost model prices it at the block's cache-aware bandwidth
        // share, so the stream:latency balance of the two sides differs
        // by construction; this model-vs-floor check gets twice the band
        // of the measured-path checks.
        auto drift_cfg = obs::drift_config();
        drift_cfg.ratio_threshold *= 2.0;
        // The "measured" side here is the model's own deterministic
        // decomposition -- no wall-clock noise -- so the minimum-total
        // guard for noisy measurements does not apply.
        drift_cfg.min_total_measured = 0;
        auto drift =
            obs::detect_drift(measured_phase, floor_phase, drift_cfg);
        if (report.profiled && total_iters > 0) {
            // The profile replays `sample` blocks for their actual
            // iteration counts; normalize both sides to one iteration of
            // one system before comparing.
            double profiled_iters = 0;
            const auto sample =
                std::min<size_type>(profile_sample_blocks, a.num_batch());
            for (size_type blk = 0; blk < sample; ++blk) {
                profiled_iters += std::max(1, report.log.iterations(blk));
            }
            const auto per_iter =
                obs::work_ledger(result.work, lshape, lformat, 1.0, 0.0)
                    .total();
            if (profiled_iters > 0 && per_iter.flops > 0) {
                obs::add_scalar_check(
                    drift, "traced_flops_per_iter",
                    static_cast<double>(report.profile.counters.flops) /
                        profiled_iters,
                    per_iter.flops, 2.5);
                // Traced bytes are 128 B coalesced transactions into L1,
                // which include transaction amplification and re-reads
                // the logical ledger deliberately omits -- hence the
                // loose threshold.
                obs::add_scalar_check(
                    drift, "traced_bytes_per_iter",
                    static_cast<double>(report.profile.l1.accesses) *
                        128.0 / profiled_iters,
                    per_iter.bytes(), 6.0);
            }
        }
        obs::record_drift(m, "gpusim", drift);
    }

    // 5. Sanitized trace replay (opt-in): re-trace the fused kernel for
    // the first blocks of the batch with the SIMT sanitizer attached.
    // BiCGStab is the fused solver the tracer models; other solvers are
    // reported un-sanitized rather than traced with the wrong kernel.
    if (sanitize_ && settings.solver == SolverType::bicgstab &&
        a.num_batch() > 0) {
        report.sanitized = true;
        const bool pipelined =
            settings.pipelined && settings.fused_kernels;
        const auto inputs = trace_inputs(a);
        gpusim::Sanitizer sanitizer;
        const int num_warps =
            (report.block_threads + device_.warp_size - 1) /
            device_.warp_size;
        // The pipelined kernel's widest combine publishes three partials
        // per warp; the classic kernels publish at most two.
        sanitizer.set_shared_limit(gpusim::traced_shared_bytes(
            report.storage, num_warps, pipelined ? 3 : 2));
        const auto blocks = std::min<size_type>(2, a.num_batch());
        for (size_type blk = 0; blk < blocks; ++blk) {
            gpusim::MemoryHierarchy mem(
                static_cast<std::int64_t>(device_.l1_shared_kib_per_cu *
                                          1024),
                static_cast<std::int64_t>(device_.l2_mib * 1024 * 1024));
            gpusim::BlockTracer tracer(report.block_threads,
                                       device_.warp_size, &mem);
            tracer.attach_sanitizer(&sanitizer);
            const auto map = gpusim::AddressMap::for_system(
                blk, shape.rows, inputs.nnz_stored,
                report.storage.num_global);
            sanitizer.clear_buffers();
            gpusim::register_map_buffers(
                sanitizer, map, shape.rows, inputs.nnz_stored,
                inputs.format == gpusim::TracedFormat::csr,
                report.storage.num_global);
            const auto trace = pipelined ? gpusim::trace_pipelined_bicgstab
                                         : gpusim::trace_bicgstab;
            trace(tracer, map, inputs.format, *inputs.row_ptrs,
                  *inputs.csr_cols, *inputs.ell_cols, shape.rows,
                  inputs.nnz_per_row,
                  std::max(1, report.log.iterations(blk)), report.storage);
        }
        report.sanitizer = sanitizer.report();
        if (obs::metrics_enabled()) {
            auto& m = obs::metrics();
            m.add_named("gpusim.sanitized_solves");
            m.add_named("gpusim.sanitizer_violations",
                        report.sanitizer.total_violations);
            m.add_named("gpusim.sanitizer_races", report.sanitizer.races);
            m.add_named("gpusim.sanitizer_barrier_divergences",
                        report.sanitizer.barrier_divergences);
            m.add_named("gpusim.sanitizer_oob_accesses",
                        report.sanitizer.oob_accesses);
        }
    }

    // 6. Transfers (values + pattern + rhs down, solution up).
    if (include_transfers) {
        double h2d = static_cast<double>(values_bytes(a)) +
                     static_cast<double>(pattern_bytes(a)) +
                     static_cast<double>(b.size()) * sizeof(real_type);
        if (settings.use_initial_guess) {
            h2d += static_cast<double>(x.size()) * sizeof(real_type);
        }
        report.h2d_seconds = gpusim::transfer_seconds(device_, h2d);
        report.d2h_seconds = gpusim::transfer_seconds(
            device_, static_cast<double>(x.size()) * sizeof(real_type));
    }
    return report;
}

GpuSolveReport SimGpuExecutor::solve(const BatchCsr<real_type>& a,
                                     const BatchVector<real_type>& b,
                                     BatchVector<real_type>& x,
                                     const SolverSettings& settings,
                                     bool include_transfers) const
{
    return solve_impl(a, b, x, settings, BatchFormat::csr,
                      include_transfers);
}

GpuSolveReport SimGpuExecutor::solve(const BatchEll<real_type>& a,
                                     const BatchVector<real_type>& b,
                                     BatchVector<real_type>& x,
                                     const SolverSettings& settings,
                                     bool include_transfers) const
{
    return solve_impl(a, b, x, settings, BatchFormat::ell,
                      include_transfers);
}

double SimGpuExecutor::spmv_seconds(const gpusim::SystemShape& shape,
                                    BatchFormat format, size_type num_batch,
                                    int reps) const
{
    const index_type block_threads =
        format == BatchFormat::ell
            ? ell_block_size(shape.rows, device_.warp_size)
            : csr_block_size(shape.rows, device_.warp_size);
    // SpMV-only kernel: no shared-memory carve-out, occupancy is
    // thread-limited.
    const auto occ = gpusim::compute_occupancy(device_, block_threads, 0);
    StorageConfig no_shared;  // all operands in global memory
    no_shared.padded_length = shape.rows;
    const auto cost =
        gpusim::block_cost(device_, shape, format, block_threads, no_shared,
                           SolverWorkProfile{}, occ.blocks_per_cu);
    std::vector<double> durations(
        static_cast<std::size_t>(num_batch),
        (cost.spmv_us) * 1e-6);
    const auto schedule = gpusim::schedule_blocks(
        durations, occ.device_slots(device_), device_.scheduling);
    return reps * (device_.launch_overhead_us * 1e-6 +
                   schedule.makespan_seconds);
}

double SimGpuExecutor::direct_qr_seconds(index_type rows, index_type kl,
                                         index_type ku,
                                         size_type num_batch) const
{
    // The batched QR's per-system work is identical across systems; its
    // throughput saturates like the iterative kernels, so the same wave
    // schedule applies with one system per CU slot.
    const double per_system =
        gpusim::direct_qr_system_seconds(device_, rows, kl, ku);
    // cuSolver runs one system per thread block with modest occupancy.
    std::vector<double> durations(static_cast<std::size_t>(num_batch),
                                  per_system * device_.num_cu);
    const auto schedule =
        gpusim::schedule_blocks(durations, device_.num_cu,
                                gpusim::SchedulingPolicy::greedy_dynamic);
    return device_.launch_overhead_us * 1e-6 + schedule.makespan_seconds;
}

CpuSolveReport CpuExecutor::gbsv(const BatchCsr<real_type>& a,
                                 const BatchVector<real_type>& b,
                                 BatchVector<real_type>& x) const
{
    CpuSolveReport report;
    obs::ScopedSpan solve_span("cpu_gbsv", "executor",
                               static_cast<std::int64_t>(a.num_batch()));
    const auto [kl, ku] = bandwidths(a);
    report.per_system_seconds =
        gpusim::cpu_gbsv_system_seconds(cpu_, a.rows(), kl, ku);

    // Functional solve with our dgbsv implementation.
    Timer timer;
    auto banded = to_banded(a, kl, ku);
    for (size_type i = 0; i < a.num_batch(); ++i) {
        blas::copy(b.entry(i), x.entry(i));
    }
    lapack::batch_gbsv(banded, x);
    report.wall_seconds = timer.seconds();

    // Node model: equal-cost systems list-scheduled over cores_used cores.
    const auto waves = (a.num_batch() + cpu_.cores_used - 1) /
                       std::max(1, cpu_.cores_used);
    report.node_seconds =
        static_cast<double>(waves) * report.per_system_seconds;
    return report;
}

CpuSolveReport CpuExecutor::iterative(const BatchCsr<real_type>& a,
                                      const BatchVector<real_type>& b,
                                      BatchVector<real_type>& x,
                                      const SolverSettings& settings) const
{
    CpuSolveReport report;
    if (a.num_batch() == 0) {
        // Nothing to solve or model: skip the solve and the scheduler
        // rather than scheduling zero blocks.
        return report;
    }
    obs::ScopedSpan solve_span("cpu_iterative", "executor",
                               static_cast<std::int64_t>(a.num_batch()));
    Timer timer;
    const auto result = solve_batch(a, b, x, settings);
    report.wall_seconds = timer.seconds();

    // Per-system modeled time: the sparse kernels run memory-bound on a
    // CPU core at ~1/3 of the banded LU's effective flop rate (indexed
    // gathers, short rows, no blocking).
    const double core_rate = cpu_.peak_fp64_gflops_per_core * 1e9 *
                             cpu_.banded_lu_efficiency / 3.0;
    const double n = a.rows();
    const double nnz = a.nnz_per_entry();
    const auto& work = result.work;
    const double flops_per_iter =
        work.spmv_per_iter * 2.0 * nnz +
        (work.precond_per_iter + work.dots_per_iter +
         work.axpys_per_iter) *
            2.0 * n;
    // Batch-lockstep SIMD lanes multiply a core's effective throughput:
    // W lanes retire W systems per sweep, derated by the per-lane
    // efficiency (1 lane = scalar path, multiplier 1).
    const double lane_mult =
        1.0 + (work.simd_lanes - 1) * cpu_.simd_lane_efficiency;
    std::vector<double> durations;
    durations.reserve(static_cast<std::size_t>(a.num_batch()));
    double mean = 0;
    for (size_type i = 0; i < a.num_batch(); ++i) {
        const double flops =
            flops_per_iter * (result.log.iterations(i) + 2.0);
        durations.push_back(flops / (core_rate * lane_mult));
        mean += durations.back();
    }
    report.per_system_seconds =
        a.num_batch() == 0 ? 0.0 : mean / static_cast<double>(a.num_batch());
    const auto schedule = gpusim::schedule_blocks(
        durations, cpu_.cores_used,
        gpusim::SchedulingPolicy::greedy_dynamic);
    report.node_seconds = schedule.makespan_seconds;
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        m.add_named("cpu.iterative_solves");
        m.set_named("cpu.node_seconds", report.node_seconds);
        m.set_named("cpu.per_system_seconds", report.per_system_seconds);
        m.set_named("cpu.simd_lanes",
                    static_cast<double>(result.work.simd_lanes));
    }
    return report;
}

}  // namespace bsis
