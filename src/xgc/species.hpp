// Particle species of the collision proxy app.
//
// The paper's proxy simulates a plasma with one ion species and electrons
// (Section II-A). Collisionality scales like nu ~ 1/(sqrt(m) T^{3/2}): at
// equal temperature, electron self-collisions are ~sqrt(m_i/m_e) ~ 60x
// faster than ion self-collisions -- which is exactly why the electron
// matrices sit further from the identity and need ~30 BiCGStab iterations
// where the ions need ~5 (Fig. 2 / Table III of the paper).
#pragma once

#include <cmath>
#include <string>

#include "util/types.hpp"

namespace bsis::xgc {

struct SpeciesParams {
    std::string name;
    real_type mass = 1.0;    ///< in units of the reference (ion) mass
    real_type charge = 1.0;  ///< in units of e
    /// Self-collision rate in units of the reference collision time,
    /// defined AT the reference density (nu scales with n/reference_density).
    real_type collision_rate = 1.0;
    /// Density at which collision_rate is quoted. The workload sets this
    /// to its physical reference density so that the normalized dynamics
    /// are density-scale invariant while the distribution MAGNITUDES keep
    /// their physical size (which is what the paper's ABSOLUTE residual
    /// tolerance of 1e-10 is measured against).
    real_type reference_density = 1.0;
    /// How strongly the Rosenbluth-like shell screening of the background
    /// distribution modulates the diffusion rates (0 = pure Dougherty
    /// operator, 1 = full shell ratio). Controls the Picard contraction
    /// rate; calibrated against Table III of the paper.
    real_type screening_strength = 0.1;
    /// Weight of the OTHER species' shell screening in this species'
    /// coefficients (field-particle coupling: the ion matrix keeps
    /// changing while the electrons relax, holding its warm-started
    /// iteration count at ~2 instead of collapsing to 0).
    real_type cross_species_weight = 0.0;
};

/// Deuterium-like ion species (reference units). `index` > 0 produces
/// heavier, higher-charge impurity species (the multi-ion plasmas future
/// XGC targets: Coulomb collisionality scales like Z^4 / sqrt(m)).
inline SpeciesParams ion_species(int index = 0)
{
    SpeciesParams s;
    s.name = index == 0 ? "ion" : "impurity_" + std::to_string(index);
    s.mass = 1.0 + 2.0 * index;
    s.charge = 1.0 + index;
    const double z = s.charge;
    s.collision_rate = z * z * z * z / std::sqrt(s.mass);
    s.screening_strength = 0.6;
    s.cross_species_weight = 0.6;
    return s;
}

/// Electron species: nu_e/nu_i ~ sqrt(m_i/m_e) at equal temperature.
inline SpeciesParams electron_species()
{
    SpeciesParams s;
    s.name = "electron";
    s.mass = 1.0 / 3672.0;
    s.charge = -1.0;
    s.collision_rate = 60.0;
    s.screening_strength = 0.8;
    s.cross_species_weight = 0.3;
    return s;
}

}  // namespace bsis::xgc
