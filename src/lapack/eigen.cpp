#include "lapack/eigen.hpp"

#include <algorithm>
#include <cmath>

#include "matrix/conversions.hpp"
#include "util/error.hpp"

namespace bsis::lapack {

namespace {

/// 1-based dense accessor over an (n+1) x (n+1) scratch buffer. The
/// balanc/elmhes/hqr algorithms below are faithful translations of the
/// EISPACK/Numerical-Recipes routines, which are 1-based; keeping the
/// indexing identical avoids translation bugs in this notoriously fiddly
/// code.
class Mat1 {
public:
    Mat1(index_type n) : n_(n), data_((n + 1) * (n + 1), 0.0) {}

    real_type& operator()(index_type i, index_type j)
    {
        return data_[static_cast<std::size_t>(i) * (n_ + 1) + j];
    }

private:
    index_type n_;
    std::vector<real_type> data_;
};

/// Balances a matrix by diagonal similarity transforms (EISPACK balanc);
/// reduces the norm and improves eigenvalue accuracy.
void balanc(Mat1& a, index_type n)
{
    constexpr real_type radix = 2.0;
    const real_type sqrdx = radix * radix;
    bool done = false;
    while (!done) {
        done = true;
        for (index_type i = 1; i <= n; ++i) {
            real_type r = 0;
            real_type c = 0;
            for (index_type j = 1; j <= n; ++j) {
                if (j != i) {
                    c += std::abs(a(j, i));
                    r += std::abs(a(i, j));
                }
            }
            if (c != 0.0 && r != 0.0) {
                real_type g = r / radix;
                real_type f = 1.0;
                const real_type s = c + r;
                while (c < g) {
                    f *= radix;
                    c *= sqrdx;
                }
                g = r * radix;
                while (c > g) {
                    f /= radix;
                    c /= sqrdx;
                }
                if ((c + r) / f < 0.95 * s) {
                    done = false;
                    g = 1.0 / f;
                    for (index_type j = 1; j <= n; ++j) {
                        a(i, j) *= g;
                    }
                    for (index_type j = 1; j <= n; ++j) {
                        a(j, i) *= f;
                    }
                }
            }
        }
    }
}

/// Reduces to upper Hessenberg form by stabilized elementary similarity
/// transformations (EISPACK elmhes).
void elmhes(Mat1& a, index_type n)
{
    for (index_type m = 2; m < n; ++m) {
        real_type x = 0.0;
        index_type i = m;
        for (index_type j = m; j <= n; ++j) {
            if (std::abs(a(j, m - 1)) > std::abs(x)) {
                x = a(j, m - 1);
                i = j;
            }
        }
        if (i != m) {
            for (index_type j = m - 1; j <= n; ++j) {
                std::swap(a(i, j), a(m, j));
            }
            for (index_type j = 1; j <= n; ++j) {
                std::swap(a(j, i), a(j, m));
            }
        }
        if (x != 0.0) {
            for (index_type ii = m + 1; ii <= n; ++ii) {
                real_type y = a(ii, m - 1);
                if (y != 0.0) {
                    y /= x;
                    a(ii, m - 1) = y;
                    for (index_type j = m; j <= n; ++j) {
                        a(ii, j) -= y * a(m, j);
                    }
                    for (index_type j = 1; j <= n; ++j) {
                        a(j, m) += y * a(j, ii);
                    }
                }
            }
        }
    }
    // elmhes leaves the multipliers below the sub-diagonal; hqr expects a
    // clean Hessenberg matrix.
    for (index_type i = 3; i <= n; ++i) {
        for (index_type j = 1; j <= i - 2; ++j) {
            a(i, j) = 0.0;
        }
    }
}

real_type sign_of(real_type a, real_type b)
{
    return b >= 0 ? std::abs(a) : -std::abs(a);
}

/// Francis double-shift QR on an upper Hessenberg matrix (EISPACK hqr,
/// eigenvalues only).
void hqr(Mat1& a, index_type n, std::vector<real_type>& wr,
         std::vector<real_type>& wi)
{
    wr.assign(static_cast<std::size_t>(n) + 1, 0.0);
    wi.assign(static_cast<std::size_t>(n) + 1, 0.0);

    real_type anorm = 0.0;
    for (index_type i = 1; i <= n; ++i) {
        for (index_type j = std::max<index_type>(i - 1, 1); j <= n; ++j) {
            anorm += std::abs(a(i, j));
        }
    }
    index_type nn = n;
    real_type t = 0.0;
    while (nn >= 1) {
        index_type its = 0;
        index_type l;
        do {
            for (l = nn; l >= 2; --l) {
                real_type s =
                    std::abs(a(l - 1, l - 1)) + std::abs(a(l, l));
                if (s == 0.0) {
                    s = anorm;
                }
                if (std::abs(a(l, l - 1)) + s == s) {
                    a(l, l - 1) = 0.0;
                    break;
                }
            }
            real_type x = a(nn, nn);
            if (l == nn) {
                wr[nn] = x + t;
                wi[nn--] = 0.0;
            } else {
                real_type y = a(nn - 1, nn - 1);
                real_type w = a(nn, nn - 1) * a(nn - 1, nn);
                if (l == nn - 1) {
                    const real_type p = 0.5 * (y - x);
                    const real_type q = p * p + w;
                    real_type z = std::sqrt(std::abs(q));
                    x += t;
                    if (q >= 0.0) {
                        z = p + sign_of(z, p);
                        wr[nn - 1] = wr[nn] = x + z;
                        if (z != 0.0) {
                            wr[nn] = x - w / z;
                        }
                        wi[nn - 1] = wi[nn] = 0.0;
                    } else {
                        wr[nn - 1] = wr[nn] = x + p;
                        wi[nn] = z;
                        wi[nn - 1] = -z;
                    }
                    nn -= 2;
                } else {
                    if (its == 60) {
                        throw NumericalBreakdown(
                            "hqr", "too many QR iterations");
                    }
                    if (its == 10 || its == 20 || its == 30 || its == 40 ||
                        its == 50) {
                        // Exceptional shift.
                        t += x;
                        for (index_type i = 1; i <= nn; ++i) {
                            a(i, i) -= x;
                        }
                        const real_type s = std::abs(a(nn, nn - 1)) +
                                            std::abs(a(nn - 1, nn - 2));
                        y = x = 0.75 * s;
                        w = -0.4375 * s * s;
                    }
                    ++its;
                    real_type p = 0;
                    real_type q = 0;
                    real_type r = 0;
                    real_type z = 0;
                    index_type m;
                    for (m = nn - 2; m >= l; --m) {
                        z = a(m, m);
                        const real_type rr = x - z;
                        const real_type ss = y - z;
                        p = (rr * ss - w) / a(m + 1, m) + a(m, m + 1);
                        q = a(m + 1, m + 1) - z - rr - ss;
                        r = a(m + 2, m + 1);
                        const real_type s =
                            std::abs(p) + std::abs(q) + std::abs(r);
                        p /= s;
                        q /= s;
                        r /= s;
                        if (m == l) {
                            break;
                        }
                        const real_type u = std::abs(a(m, m - 1)) *
                                            (std::abs(q) + std::abs(r));
                        const real_type v =
                            std::abs(p) *
                            (std::abs(a(m - 1, m - 1)) + std::abs(z) +
                             std::abs(a(m + 1, m + 1)));
                        if (u + v == v) {
                            break;
                        }
                    }
                    for (index_type i = m + 2; i <= nn; ++i) {
                        a(i, i - 2) = 0.0;
                        if (i != m + 2) {
                            a(i, i - 3) = 0.0;
                        }
                    }
                    for (index_type k = m; k <= nn - 1; ++k) {
                        if (k != m) {
                            p = a(k, k - 1);
                            q = a(k + 1, k - 1);
                            r = 0.0;
                            if (k != nn - 1) {
                                r = a(k + 2, k - 1);
                            }
                            x = std::abs(p) + std::abs(q) + std::abs(r);
                            if (x != 0.0) {
                                p /= x;
                                q /= x;
                                r /= x;
                            }
                        }
                        const real_type s =
                            sign_of(std::sqrt(p * p + q * q + r * r), p);
                        if (s != 0.0) {
                            if (k == m) {
                                if (l != m) {
                                    a(k, k - 1) = -a(k, k - 1);
                                }
                            } else {
                                a(k, k - 1) = -s * x;
                            }
                            p += s;
                            x = p / s;
                            real_type yy = q / s;
                            z = r / s;
                            q /= p;
                            r /= p;
                            for (index_type j = k; j <= nn; ++j) {
                                p = a(k, j) + q * a(k + 1, j);
                                if (k != nn - 1) {
                                    p += r * a(k + 2, j);
                                    a(k + 2, j) -= p * z;
                                }
                                a(k + 1, j) -= p * yy;
                                a(k, j) -= p * x;
                            }
                            const index_type mmin =
                                nn < k + 3 ? nn : k + 3;
                            for (index_type i = l; i <= mmin; ++i) {
                                p = x * a(i, k) + yy * a(i, k + 1);
                                if (k != nn - 1) {
                                    p += z * a(i, k + 2);
                                    a(i, k + 2) -= p * r;
                                }
                                a(i, k + 1) -= p * q;
                                a(i, k) -= p;
                            }
                        }
                    }
                }
            }
        } while (l < nn - 1 && nn >= 1);
    }
}

}  // namespace

std::vector<complex_type> eigenvalues(DenseView<real_type> a)
{
    BSIS_ENSURE_DIMS(a.rows == a.cols, "eigenvalues need a square matrix");
    const index_type n = a.rows;
    if (n == 0) {
        return {};
    }
    Mat1 work(n);
    for (index_type i = 0; i < n; ++i) {
        for (index_type j = 0; j < n; ++j) {
            work(i + 1, j + 1) = a(i, j);
        }
    }
    balanc(work, n);
    elmhes(work, n);
    std::vector<real_type> wr;
    std::vector<real_type> wi;
    hqr(work, n, wr, wi);

    std::vector<complex_type> eigs;
    eigs.reserve(static_cast<std::size_t>(n));
    for (index_type i = 1; i <= n; ++i) {
        eigs.emplace_back(wr[i], wi[i]);
    }
    std::sort(eigs.begin(), eigs.end(),
              [](const complex_type& x, const complex_type& y) {
                  if (x.real() != y.real()) {
                      return x.real() < y.real();
                  }
                  return x.imag() < y.imag();
              });
    return eigs;
}

std::vector<complex_type> eigenvalues(const BatchCsr<real_type>& batch,
                                      size_type entry)
{
    BSIS_ENSURE_ARG(entry >= 0 && entry < batch.num_batch(),
                    "entry out of range");
    BatchDense<real_type> dense(1, batch.rows(), batch.rows());
    auto d = dense.entry(0);
    const auto a = batch.entry(entry);
    for (index_type r = 0; r < a.rows; ++r) {
        for (index_type k = a.row_ptrs[r]; k < a.row_ptrs[r + 1]; ++k) {
            d(r, a.col_idxs[k]) = a.values[k];
        }
    }
    return eigenvalues(d);
}

SpectrumSummary summarize_spectrum(const std::vector<complex_type>& eigs)
{
    SpectrumSummary s;
    if (eigs.empty()) {
        return s;
    }
    s.min_real = eigs.front().real();
    s.max_real = eigs.front().real();
    double min_abs = std::abs(eigs.front());
    double max_abs = min_abs;
    index_type clustered = 0;
    for (const auto& e : eigs) {
        s.min_real = std::min(s.min_real, e.real());
        s.max_real = std::max(s.max_real, e.real());
        s.max_abs_imag = std::max(s.max_abs_imag, std::abs(e.imag()));
        min_abs = std::min(min_abs, std::abs(e));
        max_abs = std::max(max_abs, std::abs(e));
        if (std::abs(e - complex_type{1.0, 0.0}) < 0.1) {
            ++clustered;
        }
    }
    s.spread = min_abs == 0.0 ? 0.0 : max_abs / min_abs;
    s.clustered_fraction =
        static_cast<double>(clustered) / static_cast<double>(eigs.size());
    return s;
}

}  // namespace bsis::lapack
