#include "core/solver.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <exception>

#include "core/bicg.hpp"
#include "core/bicgstab.hpp"
#include "core/chebyshev.hpp"
#include "core/cg.hpp"
#include "core/cgs.hpp"
#include "core/gmres.hpp"
#include "core/richardson.hpp"
#include "core/workspace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace bsis {

namespace {

int max_threads()
{
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 1;
#endif
}

int this_thread()
{
#ifdef _OPENMP
    return omp_get_thread_num();
#else
    return 0;
#endif
}

/// Number of workspace slots a composition needs (solver scratch +
/// preconditioner storage).
int workspace_slots(const SolverSettings& s)
{
    const int prec = precond_work_vectors(s.precond, s.block_jacobi_size);
    switch (s.solver) {
    case SolverType::bicgstab:
        return bicgstab_work_vectors + prec;
    case SolverType::bicg:
        return bicg_work_vectors + prec;
    case SolverType::cgs:
        return cgs_work_vectors + prec;
    case SolverType::cg:
        return cg_work_vectors + prec;
    case SolverType::gmres:
        return gmres_work_vectors(s.gmres_restart) + prec;
    case SolverType::richardson:
        return richardson_work_vectors + prec;
    case SolverType::chebyshev:
        // +3 scratch slots for the Gershgorin bound computation.
        return chebyshev_work_vectors + 3 + prec;
    }
    return 0;
}

/// Per-calling-thread solver scratch, persistent across solve_batch calls
/// so repeated solves (Picard loops, bench repetitions) stop reallocating.
/// thread_local (rather than a global pool) keeps concurrent solve_batch
/// calls from different host threads isolated; the OpenMP threads of each
/// call's parallel region index into their caller's pool.
struct SolveScratch {
    WorkspacePool workspaces;
    std::vector<GmresScratch> gmres;
};

SolveScratch& solve_scratch()
{
    thread_local SolveScratch scratch;
    return scratch;
}

/// Runs the fully composed kernel over the batch. Prec and Stop are
/// compile-time parameters here, exactly as in the paper's fused kernel.
template <typename BatchMatrix, typename Prec, typename Stop>
void run_batch(const BatchMatrix& a, const BatchVector<real_type>& b,
               BatchVector<real_type>& x, const SolverSettings& settings,
               const Stop& stop, BatchLog& log)
{
    const size_type nbatch = a.num_batch();
    const index_type n = x.len();
    const int solver_slots = workspace_slots(settings);
    const int nthreads = max_threads();

    auto& scratch = solve_scratch();
    scratch.workspaces.require(nthreads, n, solver_slots);
    if (static_cast<int>(scratch.gmres.size()) < nthreads) {
        scratch.gmres.resize(static_cast<std::size_t>(nthreads));
    }
    auto& workspaces = scratch.workspaces;
    auto& gmres_scratch = scratch.gmres;

    // Exceptions cannot unwind through an OpenMP region: capture the
    // first one and rethrow it after the loop.
    std::exception_ptr failure;
#pragma omp parallel for schedule(dynamic)
    for (size_type i = 0; i < nbatch; ++i) {
        try {
        auto& ws = workspaces.at(this_thread());
        const auto av = a.entry(i);
        const auto bv = b.entry(i);
        auto xv = x.entry(i);
        if (!settings.use_initial_guess) {
            blas::fill(xv, real_type{0});
        }
        // Preconditioner storage lives in the tail slots of the workspace
        // (contiguous, so a multi-slot strip is one view).
        const int prec_vecs =
            precond_work_vectors(settings.precond, settings.block_jacobi_size);
        const int prec_slot_base = solver_slots - prec_vecs;
        Prec prec = [&] {
            if constexpr (std::is_same_v<Prec, BlockJacobiPrec>) {
                return BlockJacobiPrec(settings.block_jacobi_size);
            } else {
                return Prec{};
            }
        }();
        if constexpr (std::is_same_v<Prec, JacobiPrec>) {
            prec.generate(av, ws.slot(prec_slot_base));
        } else if constexpr (std::is_same_v<Prec, BlockJacobiPrec>) {
            prec.generate(av, VecView<real_type>{
                                  ws.slot(prec_slot_base).data,
                                  ws.length() * prec_vecs});
        } else {
            (void)prec_slot_base;
            prec.generate(av, VecView<real_type>{});
        }

        EntryResult result;
        switch (settings.solver) {
        case SolverType::bicgstab:
            result = settings.fused_kernels
                         ? bicgstab_kernel(av, bv, xv, prec, stop,
                                           settings.max_iterations, ws)
                         : bicgstab_kernel_unfused(av, bv, xv, prec, stop,
                                                   settings.max_iterations,
                                                   ws);
            break;
        case SolverType::bicg:
            result = bicg_kernel(av, bv, xv, prec, stop,
                                 settings.max_iterations, ws);
            break;
        case SolverType::cgs:
            result = cgs_kernel(av, bv, xv, prec, stop,
                                settings.max_iterations, ws);
            break;
        case SolverType::cg:
            result = cg_kernel(av, bv, xv, prec, stop,
                               settings.max_iterations, ws);
            break;
        case SolverType::gmres:
            result = gmres_kernel(
                av, bv, xv, prec, stop, settings.max_iterations,
                settings.gmres_restart, ws,
                gmres_scratch[static_cast<std::size_t>(this_thread())]);
            break;
        case SolverType::richardson:
            result = richardson_kernel(av, bv, xv, prec, stop,
                                       settings.max_iterations, ws,
                                       settings.richardson_omega);
            break;
        case SolverType::chebyshev: {
            const auto bounds = gershgorin_bounds(
                av, ws, chebyshev_work_vectors,
                settings.precond != PrecondType::identity);
            result = chebyshev_kernel(av, bv, xv, prec, stop,
                                      settings.max_iterations, bounds, ws);
            break;
        }
        }
        log.record(i, result.iterations, result.residual_norm,
                   result.converged);
        } catch (...) {
#pragma omp critical(bsis_solver_failure)
            {
                if (!failure) {
                    failure = std::current_exception();
                }
            }
        }
    }
    if (failure) {
        std::rethrow_exception(failure);
    }
}

template <typename BatchMatrix, typename Prec>
void dispatch_stop(const BatchMatrix& a, const BatchVector<real_type>& b,
                   BatchVector<real_type>& x, const SolverSettings& settings,
                   BatchLog& log)
{
    switch (settings.stop) {
    case StopType::abs_residual:
        run_batch<BatchMatrix, Prec>(a, b, x, settings,
                                     AbsResidualStop{settings.tolerance},
                                     log);
        break;
    case StopType::rel_residual:
        run_batch<BatchMatrix, Prec>(a, b, x, settings,
                                     RelResidualStop{settings.tolerance},
                                     log);
        break;
    }
}

}  // namespace

template <typename BatchMatrix>
BatchSolveResult solve_batch(const BatchMatrix& a,
                             const BatchVector<real_type>& b,
                             BatchVector<real_type>& x,
                             const SolverSettings& settings)
{
    BSIS_ENSURE_DIMS(a.num_batch() == b.num_batch() &&
                         a.num_batch() == x.num_batch(),
                     "matrix/rhs/solution batch counts must match");
    BSIS_ENSURE_DIMS(a.rows() == b.len() && a.rows() == x.len(),
                     "matrix order and vector lengths must match");
    BSIS_ENSURE_ARG(settings.max_iterations >= 0,
                    "negative iteration limit");
    BSIS_ENSURE_ARG(settings.tolerance >= 0, "negative tolerance");

    BatchSolveResult result;
    result.log = BatchLog(a.num_batch());
    result.work = work_profile(settings.solver, settings.precond,
                               settings.gmres_restart,
                               settings.block_jacobi_size,
                               settings.fused_kernels);
    Timer timer;
    switch (settings.precond) {
    case PrecondType::identity:
        dispatch_stop<BatchMatrix, IdentityPrec>(a, b, x, settings,
                                                 result.log);
        break;
    case PrecondType::jacobi:
        dispatch_stop<BatchMatrix, JacobiPrec>(a, b, x, settings,
                                               result.log);
        break;
    case PrecondType::block_jacobi:
        dispatch_stop<BatchMatrix, BlockJacobiPrec>(a, b, x, settings,
                                                    result.log);
        break;
    }
    result.wall_seconds = timer.seconds();
    return result;
}

template BatchSolveResult solve_batch<BatchCsr<real_type>>(
    const BatchCsr<real_type>&, const BatchVector<real_type>&,
    BatchVector<real_type>&, const SolverSettings&);
template BatchSolveResult solve_batch<BatchEll<real_type>>(
    const BatchEll<real_type>&, const BatchVector<real_type>&,
    BatchVector<real_type>&, const SolverSettings&);
template BatchSolveResult solve_batch<BatchDense<real_type>>(
    const BatchDense<real_type>&, const BatchVector<real_type>&,
    BatchVector<real_type>&, const SolverSettings&);

}  // namespace bsis
