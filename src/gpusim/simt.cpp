#include "gpusim/simt.hpp"

namespace bsis::gpusim {

BlockTracer::BlockTracer(int block_threads, int warp_size,
                         MemoryHierarchy* mem)
    : block_threads_(block_threads),
      warp_size_(warp_size),
      num_warps_((block_threads + warp_size - 1) / warp_size),
      mem_(mem)
{
    BSIS_ENSURE_ARG(block_threads > 0 && warp_size > 0,
                    "bad block geometry");
    BSIS_ENSURE_ARG(mem != nullptr, "tracer needs a memory hierarchy");
}

void BlockTracer::instr(int active_lanes)
{
    ++counters_.warp_instructions;
    counters_.active_lane_sum += active_lanes;
}

void BlockTracer::flop(int active_lanes, int per_lane)
{
    instr(active_lanes);
    counters_.flops += static_cast<std::int64_t>(active_lanes) * per_lane;
}

void BlockTracer::load_global(const std::vector<std::uint64_t>& lane_addrs,
                              int bytes_per_lane)
{
    instr(static_cast<int>(lane_addrs.size()));
    coalesce(lane_addrs, bytes_per_lane, mem_->line_bytes(), segments_);
    for (const auto seg : segments_) {
        mem_->access(seg);
    }
}

void BlockTracer::store_global(const std::vector<std::uint64_t>& lane_addrs,
                               int bytes_per_lane)
{
    // Write-allocate: stores occupy lines like loads for this model.
    load_global(lane_addrs, bytes_per_lane);
}

void BlockTracer::load_shared(int active_lanes)
{
    instr(active_lanes);
    counters_.shared_accesses += active_lanes;
}

void BlockTracer::store_shared(int active_lanes)
{
    instr(active_lanes);
    counters_.shared_accesses += active_lanes;
}

void BlockTracer::barrier()
{
    ++counters_.barriers;
}

}  // namespace bsis::gpusim
