# Empty dependencies file for bench_ablation_monolithic.
# This may be replaced when dependencies are built.
