// Fig. 9 of the paper: speedup of the batched BiCGStab (BatchEll, warm-
// started) on the three GPUs over the dgbsv banded solver on the Skylake
// node, measured over all 5 Picard iterations of the collision step, for
// ion-only, electron-only, and combined batches. The paper reports
// combined speedups between ~4x and ~9x, with the ion systems benefiting
// the most (fewest iterations).
#include <iostream>

#include "common.hpp"

namespace {

using namespace bsis;

struct StepTimes {
    double gpu_seconds = 0;
    double cpu_seconds = 0;
};

/// Runs the full 5-iteration Picard step once; the GPU path solves with
/// BiCGStab(ELL) and the CPU path re-solves the same systems with the
/// modeled Skylake dgbsv (as the production code would).
StepTimes run_step(size_type nbatch, bool ions, bool electrons,
                   const SimGpuExecutor& gpu, const CpuExecutor& cpu)
{
    xgc::WorkloadParams wp;
    wp.include_ions = ions;
    wp.include_electrons = electrons;
    const size_type per_node = (ions ? 1 : 0) + (electrons ? 1 : 0);
    wp.num_mesh_nodes = nbatch / per_node;
    xgc::CollisionWorkload workload(wp);

    SolverSettings settings;
    settings.tolerance = 1e-10;
    settings.max_iterations = 500;

    StepTimes times;
    const auto solver = [&](const BatchCsr<real_type>& a,
                            const BatchVector<real_type>& b,
                            BatchVector<real_type>& x, bool warm,
                            int /*k*/) {
        auto ell = to_ell(a);
        SolverSettings local = settings;
        local.use_initial_guess = warm;
        auto report = gpu.solve(ell, b, x, local);
        times.gpu_seconds += report.kernel_seconds;

        BatchVector<real_type> x_cpu(a.num_batch(), a.rows());
        times.cpu_seconds += cpu.gbsv(a, b, x_cpu).node_seconds;
        return report.log;
    };
    implicit_collision_step(workload, xgc::PicardSettings{}, solver);
    return times;
}

}  // namespace

int main()
{
    using namespace bsis;
    const size_type nbatch = bench::quick_mode() ? 240 : 960;
    const CpuExecutor skylake;

    Table table({"batch_kind", "batch", "device", "gpu_ms", "skylake_ms",
                 "speedup"});
    struct Kind {
        const char* name;
        bool ions;
        bool electrons;
    };
    const Kind kinds[] = {{"ion-only", true, false},
                          {"electron-only", false, true},
                          {"combined", true, true}};
    int count = 0;
    const auto* gpus = gpusim::all_gpus(count);
    for (const auto& kind : kinds) {
        for (int g = 0; g < count; ++g) {
            const SimGpuExecutor gpu(gpus[g]);
            const auto times =
                run_step(nbatch, kind.ions, kind.electrons, gpu, skylake);
            table.new_row()
                .add(kind.name)
                .add(nbatch)
                .add(gpus[g].name)
                .add(times.gpu_seconds * 1e3, 5)
                .add(times.cpu_seconds * 1e3, 5)
                .add(times.cpu_seconds / times.gpu_seconds, 3);
        }
    }
    bench::emit("fig9_speedup",
                "Fig. 9: speedup of batched BiCGStab(ELL) over Skylake "
                "dgbsv, 5 Picard iterations with warm starts",
                table);
    std::cout << "\nShape checks (paper):\n"
                 "  * ion-only speedups are the largest\n"
                 "  * combined-batch speedups between ~4x and ~9x\n";
    return 0;
}
