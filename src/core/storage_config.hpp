// Automatic configuration of GPU shared memory (paper Section IV-D).
//
// Krylov solvers need a set of per-system intermediate vectors. On the GPU,
// the fused solver kernel places as many of them as possible in the compute
// unit's shared memory, preferring the vectors involved in matrix-vector
// products ("red" vectors of Algorithm 1), then the other intermediates
// ("blue"); whatever does not fit spills to global memory. The matrix and
// the right-hand side always stay in global memory (read-only, served by
// the L1 cache). The resulting placement determines both the memory traffic
// of every solver operation and the occupancy (blocks per compute unit) in
// the scheduler -- exactly the mechanism the paper describes for the V100
// placing 6 of BiCGStab's 9 vectors in shared memory.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace bsis {

/// Memory space a solver vector was assigned to.
enum class MemSpace { shared, global };

/// Placement priority class of a solver vector.
enum class SlotClass {
    spmv,          ///< "red": operand/result of an SpMV -- placed first
    intermediate,  ///< "blue": other read-write vector -- placed second
    precond        ///< preconditioner storage -- placed last
};

/// One named per-system vector required by a solver.
struct VectorSlot {
    std::string name;
    SlotClass cls = SlotClass::intermediate;
    MemSpace space = MemSpace::global;  ///< filled in by configure()
};

/// Result of the shared-memory configuration for one solver x device
/// combination.
struct StorageConfig {
    std::vector<VectorSlot> slots;
    index_type padded_length = 0;   ///< vector length rounded to warp size
    size_type shared_bytes = 0;     ///< shared memory requested per block
    int num_shared = 0;             ///< vectors placed in shared memory
    int num_global = 0;             ///< vectors spilled to global memory

    bool in_shared(const std::string& name) const;

    /// Ordinal of `name` among the shared-memory slots, in slot order
    /// (i.e. its vector index within the block's shared allocation), or
    /// -1 when the slot spilled to global memory.
    int shared_slot_index(const std::string& name) const;
};

/// Greedily assigns slots to shared memory in priority order (spmv <
/// intermediate < precond; ties keep declaration order) until
/// `shared_capacity_bytes` would be exceeded. `padded_length` is `length`
/// rounded up to a multiple of `warp_size` so each vector starts on a warp
/// boundary (the paper's `padded_length`/`shared_gap`).
StorageConfig configure_storage(std::vector<VectorSlot> slots,
                                index_type length, index_type warp_size,
                                size_type value_bytes,
                                size_type shared_capacity_bytes);

/// The 9 BiCGStab vectors of Algorithm 1 plus optional preconditioner
/// scratch: red = {p_hat, v, s_hat, t}, blue = {r, r_hat, p, s, x}.
std::vector<VectorSlot> bicgstab_slots(int precond_work_vectors);

/// CGS vectors: red = {u_hat, v, t}, blue = {r, r_hat, u, p, q, x}.
std::vector<VectorSlot> cgs_slots(int precond_work_vectors);

/// CG vectors: red = {p, q}, blue = {r, z, x}.
std::vector<VectorSlot> cg_slots(int precond_work_vectors);

/// GMRES(m) vectors: red = {w, z}, blue = {r, x} plus the m+1 Krylov basis
/// vectors (basis counts as intermediate storage).
std::vector<VectorSlot> gmres_slots(int restart, int precond_work_vectors);

/// Richardson vectors: red = {t}, blue = {r, x}.
std::vector<VectorSlot> richardson_slots(int precond_work_vectors);

/// BiCG vectors: red = {p, p_hat, q, q_hat}, blue = {r, r_hat, z, z_hat, x}.
std::vector<VectorSlot> bicg_slots(int precond_work_vectors);

/// Chebyshev vectors: red = {p, q}, blue = {r, z, x}.
std::vector<VectorSlot> chebyshev_slots(int precond_work_vectors);

}  // namespace bsis
