// Analytic per-block cost model for the fused batched solver kernel.
//
// Translates the solver's per-iteration operation counts (core
// SolverWorkProfile), the matrix shape, the storage configuration, and the
// device characteristics into a modeled duration for one thread block
// solving one system. The model captures the effects the paper measures:
//   * warp under-utilization of the CSR warp-per-row SpMV at 9 nnz/row
//     (worse on the MI100's 64-wide wavefronts),
//   * coalescing of the column-major ELL layout,
//   * block-wide reductions as the latency-dominant term,
//   * shared-memory placement removing global traffic,
//   * compute-unit timesharing between co-resident blocks.
#pragma once

#include "core/storage_config.hpp"
#include "core/tuning.hpp"
#include "core/work_profile.hpp"
#include "gpusim/device.hpp"
#include "util/types.hpp"

namespace bsis::gpusim {

/// Shape of one batch system as seen by the kernel.
struct SystemShape {
    index_type rows = 0;
    index_type nnz = 0;          ///< stored nonzeros per system
    index_type nnz_per_row = 0;  ///< ELL width / typical CSR row length
};

/// Modeled durations of the kernel building blocks for one block.
struct BlockCost {
    double spmv_us = 0;
    double dot_us = 0;        ///< one block-wide reduction
    double axpy_us = 0;       ///< one streaming vector update
    double precond_us = 0;    ///< one preconditioner application
    double setup_us = 0;      ///< residual init + preconditioner generation
    double per_iteration_us = 0;

    /// Decomposition of per_iteration_us (consumed by the ablation
    /// benches): SpMV + preconditioner / reduction / streaming-update
    /// shares. With a fused work profile, a norm fused into an update
    /// sweep is split between the update share (the sweep's traffic) and
    /// the reduction share (the combine latency).
    double iter_spmv_us = 0;       ///< SpMV + preconditioner share
    double iter_reduction_us = 0;  ///< block-wide reduction share
    double iter_update_us = 0;     ///< streaming vector-update share

    double block_us(int iterations) const
    {
        return setup_us + per_iteration_us * iterations;
    }
};

/// Builds the per-block cost for `format` on `device`, with `occupancy`
/// co-resident blocks per CU timesharing its throughput.
BlockCost block_cost(const DeviceSpec& device, const SystemShape& shape,
                     BatchFormat format, index_type block_threads,
                     const StorageConfig& config,
                     const SolverWorkProfile& work, int blocks_per_cu);

/// Modeled per-system time of the batched sparse direct QR (the cuSolver
/// csrqrsvBatched stand-in): factorization flops at the device's measured
/// direct-solver efficiency.
double direct_qr_system_seconds(const DeviceSpec& device, index_type rows,
                                index_type kl, index_type ku);

/// Modeled per-system time of LAPACK dgbsv on one core of the CPU node.
double cpu_gbsv_system_seconds(const CpuSpec& cpu, index_type rows,
                               index_type kl, index_type ku);

/// Host <-> device transfer time for `bytes` over the device link.
double transfer_seconds(const DeviceSpec& device, double bytes);

/// Modeled time of a cuThomasBatch-style batched tridiagonal solve: one
/// thread per system over interleaved storage. Latency-bound by the 2n-
/// step serial recurrence when the batch is small; throughput-bound when
/// the device is saturated (Section III of the paper).
double thomas_batched_seconds(const DeviceSpec& device, index_type n,
                              size_type num_batch);

/// Modeled time of a gtsv2-style batched cyclic reduction: fine-grain
/// parallel, 2*ceil(log2 n) dependent kernel levels.
double cyclic_reduction_batched_seconds(const DeviceSpec& device,
                                        index_type n, size_type num_batch);

/// Modeled time of a batched DENSE LU solve (getrf/getrs batched, the
/// Section II comparison: "using dense solvers on the GPU is not enough to
/// beat ... the banded ... solver on the CPU" at these sizes).
double dense_lu_batched_seconds(const DeviceSpec& device, index_type n,
                                size_type num_batch);

}  // namespace bsis::gpusim
