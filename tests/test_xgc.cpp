#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lapack/eigen.hpp"
#include "matrix/stats.hpp"
#include "xgc/collision_operator.hpp"
#include "xgc/distribution.hpp"
#include "xgc/grid.hpp"
#include "xgc/picard.hpp"
#include "xgc/species.hpp"
#include "xgc/workload.hpp"

namespace bsis::xgc {
namespace {

TEST(Grid, PaperGridHas992Rows)
{
    const VelocityGrid grid(32, 31);
    EXPECT_EQ(grid.rows(), 992);
    EXPECT_EQ(grid.n_vpar(), 32);
    EXPECT_EQ(grid.n_vperp(), 31);
}

TEST(Grid, CellCentersAndFaces)
{
    const VelocityGrid grid(8, 4, 4.0, 2.0);
    EXPECT_DOUBLE_EQ(grid.dvpar(), 1.0);
    EXPECT_DOUBLE_EQ(grid.dvperp(), 0.5);
    EXPECT_DOUBLE_EQ(grid.vpar(0), -3.5);
    EXPECT_DOUBLE_EQ(grid.vpar(7), 3.5);
    EXPECT_DOUBLE_EQ(grid.vperp(0), 0.25);
    EXPECT_DOUBLE_EQ(grid.vperp_face(0), 0.0);  // axis: zero metric
    EXPECT_DOUBLE_EQ(grid.vperp_face(4), 2.0);
    EXPECT_EQ(grid.row(3, 2), 2 * 8 + 3);
}

TEST(Grid, RejectsBadShapes)
{
    EXPECT_THROW(VelocityGrid(2, 31), BadArgument);
    EXPECT_THROW(VelocityGrid(32, 31, -1.0), BadArgument);
}

TEST(Distribution, MaxwellianMomentsRoundTrip)
{
    const VelocityGrid grid(48, 48, 7.0, 7.0);
    PlasmaState state;
    state.density = 2.5;
    state.u_par = 0.3;
    state.temperature = 1.2;
    std::vector<real_type> f(static_cast<std::size_t>(grid.rows()));
    maxwellian(grid, state, VecView<real_type>{f.data(), grid.rows()});
    const auto m =
        moments(grid, ConstVecView<real_type>{f.data(), grid.rows()});
    EXPECT_NEAR(m.density, state.density, 0.01 * state.density);
    EXPECT_NEAR(m.u_par, state.u_par, 0.01);
    EXPECT_NEAR(m.temperature, state.temperature, 0.02);
}

TEST(Distribution, ConservedQuantitiesOfMaxwellian)
{
    const VelocityGrid grid(48, 48, 7.0, 7.0);
    PlasmaState state;
    state.density = 1.0;
    state.temperature = 1.0;
    std::vector<real_type> f(static_cast<std::size_t>(grid.rows()));
    maxwellian(grid, state, VecView<real_type>{f.data(), grid.rows()});
    const auto q =
        conserved(grid, ConstVecView<real_type>{f.data(), grid.rows()});
    EXPECT_NEAR(q.density, 1.0, 0.01);
    EXPECT_NEAR(q.momentum, 0.0, 1e-10);  // symmetric grid, zero flow
    EXPECT_NEAR(q.energy, 1.5, 0.05);     // (3/2) n T
}

TEST(Distribution, MomentFixRestoresInvariantsExactly)
{
    const VelocityGrid grid(32, 31);
    PlasmaState state;
    std::vector<real_type> f(static_cast<std::size_t>(grid.rows()));
    maxwellian(grid, state, VecView<real_type>{f.data(), grid.rows()});
    const auto target =
        conserved(grid, ConstVecView<real_type>{f.data(), grid.rows()});
    // Perturb f, then fix.
    for (std::size_t i = 0; i < f.size(); ++i) {
        f[i] *= 1.0 + 0.01 * std::sin(static_cast<double>(i));
    }
    moment_fix(grid, VecView<real_type>{f.data(), grid.rows()}, target);
    const auto fixed =
        conserved(grid, ConstVecView<real_type>{f.data(), grid.rows()});
    EXPECT_NEAR(conservation_error(target, fixed), 0.0, 1e-12);
}

TEST(Distribution, ConservationErrorMetric)
{
    ConservedQuantities a{1.0, 0.0, 1.5};
    ConservedQuantities b{1.0 + 1e-7, 1e-8, 1.5};
    EXPECT_NEAR(conservation_error(a, b), 1e-7, 2e-8);
    EXPECT_DOUBLE_EQ(conservation_error(a, a), 0.0);
}

class OperatorFixture : public ::testing::Test {
protected:
    OperatorFixture() : grid_(32, 31), op_(grid_, ion_species()) {}

    VelocityGrid grid_;
    CollisionOperator op_;
};

TEST_F(OperatorFixture, PatternIsTheNinePointStencil)
{
    const auto& p = op_.pattern();
    EXPECT_EQ(p.rows(), 992);
    index_type max_nnz = 0;
    for (index_type r = 0; r < p.rows(); ++r) {
        max_nnz = std::max(max_nnz, p.row_ptrs[r + 1] - p.row_ptrs[r]);
    }
    EXPECT_EQ(max_nnz, 9);
}

TEST_F(OperatorFixture, MaxwellianIsExactDiscreteEquilibrium)
{
    // The Maxwellian-weighted discretization annihilates the drifting
    // Maxwellian of the SAME moments to machine precision.
    PlasmaState state;
    state.density = 1.3;
    state.u_par = 0.2;
    state.temperature = 0.9;
    std::vector<real_type> f(static_cast<std::size_t>(grid_.rows()));
    std::vector<real_type> cf(static_cast<std::size_t>(grid_.rows()));
    maxwellian(grid_, state, VecView<real_type>{f.data(), grid_.rows()});
    op_.apply(state, ConstVecView<real_type>{f.data(), grid_.rows()},
              VecView<real_type>{cf.data(), grid_.rows()});
    real_type worst = 0;
    for (const auto v : cf) {
        worst = std::max(worst, std::abs(v));
    }
    EXPECT_LT(worst, 1e-12);
}

TEST_F(OperatorFixture, DensityConservedForArbitraryF)
{
    // Flux form + zero-flux boundaries: the weighted column sums of C
    // vanish, so density is conserved for ANY f.
    PlasmaState state;
    std::vector<real_type> f(static_cast<std::size_t>(grid_.rows()));
    for (index_type j = 0; j < grid_.n_vperp(); ++j) {
        for (index_type i = 0; i < grid_.n_vpar(); ++i) {
            f[grid_.row(i, j)] =
                0.1 + 0.05 * std::sin(0.7 * i) * std::cos(0.3 * j);
        }
    }
    std::vector<real_type> cf(static_cast<std::size_t>(grid_.rows()));
    op_.apply(state, ConstVecView<real_type>{f.data(), grid_.rows()},
              VecView<real_type>{cf.data(), grid_.rows()});
    real_type density_rate = 0;
    real_type magnitude = 0;
    for (index_type j = 0; j < grid_.n_vperp(); ++j) {
        for (index_type i = 0; i < grid_.n_vpar(); ++i) {
            density_rate += cf[grid_.row(i, j)] * grid_.cell_volume(j);
            magnitude +=
                std::abs(cf[grid_.row(i, j)]) * grid_.cell_volume(j);
        }
    }
    EXPECT_LT(std::abs(density_rate), 1e-12 * std::max(magnitude, 1.0));
}

TEST_F(OperatorFixture, RelaxesPerturbationTowardEquilibrium)
{
    // C must push a perturbed distribution back toward the Maxwellian:
    // the L2 distance to equilibrium decreases under a small explicit
    // step.
    PlasmaState state;
    std::vector<real_type> m(static_cast<std::size_t>(grid_.rows()));
    maxwellian(grid_, state, VecView<real_type>{m.data(), grid_.rows()});
    auto f = m;
    for (index_type j = 0; j < grid_.n_vperp(); ++j) {
        for (index_type i = 0; i < grid_.n_vpar(); ++i) {
            f[grid_.row(i, j)] *= 1.0 + 0.1 * std::sin(0.5 * i + 0.2 * j);
        }
    }
    std::vector<real_type> cf(static_cast<std::size_t>(grid_.rows()));
    op_.apply(state, ConstVecView<real_type>{f.data(), grid_.rows()},
              VecView<real_type>{cf.data(), grid_.rows()});
    real_type before = 0;
    real_type after = 0;
    const real_type dt = 1e-3;
    for (std::size_t i = 0; i < f.size(); ++i) {
        before += (f[i] - m[i]) * (f[i] - m[i]);
        const real_type stepped = f[i] + dt * cf[i];
        after += (stepped - m[i]) * (stepped - m[i]);
    }
    EXPECT_LT(after, before);
}

TEST_F(OperatorFixture, AssembledMatrixIsNonsymmetricAndNearIdentity)
{
    PlasmaState state;
    BatchCsr<real_type> batch(1, grid_.rows(), op_.pattern().row_ptrs,
                              op_.pattern().col_idxs);
    op_.assemble(state, 0.0035, batch.values(0));
    const auto stats = compute_stats(batch);
    EXPECT_FALSE(stats.numerically_symmetric);
    EXPECT_TRUE(stats.pattern_symmetric);
    // Backward Euler of a small step: diagonal near 1.
    std::vector<real_type> diag(static_cast<std::size_t>(grid_.rows()));
    extract_diagonal(batch.entry(0),
                     VecView<real_type>{diag.data(), grid_.rows()});
    for (const auto d : diag) {
        EXPECT_GT(d, 0.5);
        EXPECT_LT(d, 3.0);
    }
}

TEST_F(OperatorFixture, ScreeningTablesReflectShape)
{
    PlasmaState state;
    std::vector<real_type> f(static_cast<std::size_t>(grid_.rows()));
    maxwellian(grid_, state, VecView<real_type>{f.data(), grid_.rows()});
    op_.set_background(state, ConstVecView<real_type>{f.data(), grid_.rows()});
    for (const auto k : op_.background_table()) {
        EXPECT_NEAR(k, 1.0, 0.05);  // Maxwellian: ratio ~ 1 in every shell
    }
    // A beam-loaded distribution deviates in the high-speed shells.
    PlasmaState beam = state;
    beam.u_par = 2.5;
    beam.density = 0.4;
    std::vector<real_type> g(static_cast<std::size_t>(grid_.rows()));
    maxwellian(grid_, beam, VecView<real_type>{g.data(), grid_.rows()});
    for (std::size_t i = 0; i < f.size(); ++i) {
        f[i] += g[i];
    }
    op_.set_background(state, ConstVecView<real_type>{f.data(), grid_.rows()});
    real_type max_dev = 0;
    for (const auto k : op_.background_table()) {
        max_dev = std::max(max_dev, std::abs(k - 1.0));
    }
    EXPECT_GT(max_dev, 0.2);
}

TEST(Workload, SystemLayoutAlternatesSpecies)
{
    WorkloadParams params;
    params.num_mesh_nodes = 3;
    CollisionWorkload w(params);
    EXPECT_EQ(w.num_systems(), 6);
    EXPECT_EQ(w.system_species(0).name, "ion");
    EXPECT_EQ(w.system_species(1).name, "electron");
    EXPECT_EQ(w.system_species(4).name, "ion");
}

TEST(Workload, SingleSpeciesFiltering)
{
    WorkloadParams params;
    params.num_mesh_nodes = 2;
    params.include_electrons = false;
    CollisionWorkload ions_only(params);
    EXPECT_EQ(ions_only.num_systems(), 2);
    EXPECT_EQ(ions_only.system_species(1).name, "ion");
    params.include_electrons = true;
    params.include_ions = false;
    CollisionWorkload electrons_only(params);
    EXPECT_EQ(electrons_only.system_species(0).name, "electron");
    params.include_electrons = false;
    EXPECT_THROW(CollisionWorkload{params}, BadArgument);
}

TEST(Workload, MultiIonSpeciesLayout)
{
    WorkloadParams params;
    params.num_mesh_nodes = 2;
    params.num_ion_species = 3;
    CollisionWorkload w(params);
    EXPECT_EQ(w.num_species(), 4);  // 3 ions + electrons
    EXPECT_EQ(w.num_systems(), 8);
    EXPECT_EQ(w.system_species(0).name, "ion");
    EXPECT_EQ(w.system_species(1).name, "impurity_1");
    EXPECT_EQ(w.system_species(2).name, "impurity_2");
    EXPECT_EQ(w.system_species(3).name, "electron");
    // Impurities collide faster (Z^4 scaling).
    EXPECT_GT(w.system_species(1).collision_rate,
              w.system_species(0).collision_rate);
    EXPECT_GT(w.system_species(2).collision_rate,
              w.system_species(1).collision_rate);
}

TEST(Workload, MultiSpeciesPicardStepConverges)
{
    WorkloadParams wp;
    wp.num_mesh_nodes = 1;
    wp.num_ion_species = 3;
    CollisionWorkload workload(wp);
    SolverSettings s;
    s.tolerance = 1e-10;
    s.max_iterations = 500;
    PicardSettings ps;
    ps.num_iterations = 3;
    const auto report = implicit_collision_step(
        workload, ps, make_reference_solver(s));
    for (const auto& log : report.linear_logs) {
        EXPECT_TRUE(log.all_converged());
    }
    EXPECT_LT(report.max_conservation_error(), 1e-12);
}

TEST(Workload, NodesHaveDistinctProfiles)
{
    WorkloadParams params;
    params.num_mesh_nodes = 4;
    CollisionWorkload w(params);
    const auto m0 = w.system_moments(w.distributions(), 0);
    const auto m2 = w.system_moments(w.distributions(), 2);
    EXPECT_NE(m0.density, m2.density);
    EXPECT_NE(m0.temperature, m2.temperature);
}

TEST(Workload, AssemblyFillsEverySystem)
{
    WorkloadParams params;
    params.num_mesh_nodes = 2;
    CollisionWorkload w(params);
    auto a = w.make_matrix_batch();
    w.assemble_batch(w.distributions(), w.distributions(), 0.0035, a);
    for (size_type sys = 0; sys < w.num_systems(); ++sys) {
        real_type sum = 0;
        for (index_type k = 0; k < a.nnz_per_entry(); ++k) {
            sum += std::abs(a.values(sys)[k]);
        }
        EXPECT_GT(sum, 100.0) << "system " << sys;  // diag alone is ~992
    }
    // Ion and electron matrices must differ (different collisionality).
    real_type diff = 0;
    for (index_type k = 0; k < a.nnz_per_entry(); ++k) {
        diff += std::abs(a.values(0)[k] - a.values(1)[k]);
    }
    EXPECT_GT(diff, 1.0);
}

class PicardFixture : public ::testing::Test {
protected:
    static PicardReport run(bool warm, int num_nodes = 2,
                            real_type tol = 1e-10)
    {
        WorkloadParams wp;
        wp.num_mesh_nodes = num_nodes;
        CollisionWorkload workload(wp);
        SolverSettings s;
        s.tolerance = tol;
        s.max_iterations = 500;
        PicardSettings ps;
        ps.warm_start = warm;
        return implicit_collision_step(workload, ps,
                                       make_reference_solver(s));
    }
};

TEST_F(PicardFixture, TableThreeShape)
{
    // Table III of the paper: electron iterations decay ~30 -> ~12, ion
    // ~5 -> ~2, monotonically, under warm starting.
    const auto report = run(true);
    ASSERT_EQ(report.picard_iterations, 5);
    const double e0 = report.mean_species_iterations(0, 1, 2);
    const double e4 = report.mean_species_iterations(4, 1, 2);
    const double i0 = report.mean_species_iterations(0, 0, 2);
    const double i4 = report.mean_species_iterations(4, 0, 2);
    EXPECT_NEAR(e0, 30.0, 6.0);
    EXPECT_LT(e4, 0.6 * e0);
    EXPECT_GT(e4, 2.0);
    EXPECT_NEAR(i0, 5.0, 2.0);
    EXPECT_LT(i4, i0);
    // Electron systems are much harder than ion systems (Fig. 2).
    EXPECT_GT(e0, 3.0 * i0);
    for (int k = 1; k < 5; ++k) {
        EXPECT_LE(report.mean_species_iterations(k, 1, 2),
                  report.mean_species_iterations(k - 1, 1, 2) + 0.51)
            << "electron counts must not increase at picard " << k;
    }
}

TEST_F(PicardFixture, WarmStartReducesTotalIterations)
{
    const auto warm = run(true);
    const auto cold = run(false);
    std::int64_t warm_total = 0;
    std::int64_t cold_total = 0;
    for (int k = 0; k < 5; ++k) {
        warm_total += warm.linear_logs[static_cast<std::size_t>(k)]
                          .total_iterations();
        cold_total += cold.linear_logs[static_cast<std::size_t>(k)]
                          .total_iterations();
    }
    EXPECT_LT(warm_total, cold_total);
    // Fig. 8 text: zero-guess electron count stays ~35 at every Picard
    // iteration.
    const double cold_e0 = cold.mean_species_iterations(0, 1, 2);
    const double cold_e4 = cold.mean_species_iterations(4, 1, 2);
    EXPECT_NEAR(cold_e0, cold_e4, 0.25 * cold_e0);
}

TEST_F(PicardFixture, ConservationFixedToMachinePrecision)
{
    const auto report = run(true);
    EXPECT_LT(report.max_conservation_error(), 1e-12);
    // The raw (unfixed) solution drifts by the discretization error.
    real_type raw = 0;
    for (const auto e : report.raw_conservation_errors) {
        raw = std::max(raw, e);
    }
    EXPECT_GT(raw, 1e-12);
    EXPECT_LT(raw, 1e-2);
}

TEST_F(PicardFixture, AllLinearSolvesConverge)
{
    const auto report = run(true);
    for (const auto& log : report.linear_logs) {
        EXPECT_TRUE(log.all_converged());
    }
    EXPECT_TRUE(report.converged);
}

TEST_F(PicardFixture, NonlinearToleranceStopsEarly)
{
    WorkloadParams wp;
    wp.num_mesh_nodes = 1;
    CollisionWorkload workload(wp);
    SolverSettings s;
    s.tolerance = 1e-12;
    s.max_iterations = 500;
    PicardSettings ps;
    ps.num_iterations = 50;
    ps.nonlinear_tol = 1e-8;
    const auto report = implicit_collision_step(
        workload, ps, make_reference_solver(s));
    EXPECT_TRUE(report.converged);
    EXPECT_LT(report.picard_iterations, 50);
    EXPECT_LT(report.nonlinear_change, 1e-8);
}

TEST_F(PicardFixture, LooseLinearToleranceStallsPicard)
{
    // Section V of the paper: raising the linear tolerance above 1e-10
    // prevented the Picard loop from converging.
    WorkloadParams wp;
    wp.num_mesh_nodes = 1;
    CollisionWorkload workload(wp);
    SolverSettings s;
    s.tolerance = 1e-2;  // hopeless
    s.max_iterations = 500;
    PicardSettings ps;
    ps.num_iterations = 20;
    ps.nonlinear_tol = 1e-9;
    const auto report = implicit_collision_step(
        workload, ps, make_reference_solver(s));
    EXPECT_FALSE(report.converged);
    EXPECT_EQ(report.picard_iterations, 20);
}

TEST(Physics, CollisionsIsotropizeTemperatureAnisotropy)
{
    // Start from an anisotropic bi-Maxwellian-like state (T_par > T_perp
    // via a parallel beam) and take several implicit collision steps: the
    // anisotropy ratio must decay monotonically toward 1.
    WorkloadParams wp;
    wp.num_mesh_nodes = 1;
    CollisionWorkload workload(wp);
    SolverSettings s;
    s.tolerance = 1e-10;
    s.max_iterations = 500;
    PicardSettings ps;
    ps.num_iterations = 3;

    const auto ratio_of = [&](size_type sys) {
        return temperature_anisotropy(
                   workload.grid(),
                   ConstVecView<real_type>(
                       workload.distributions().entry(sys)))
            .ratio();
    };
    const double before = ratio_of(1);  // electron: fast relaxation
    EXPECT_GT(before, 1.05);            // the beam loads T_par
    double prev = before;
    for (int step = 0; step < 4; ++step) {
        implicit_collision_step(workload, ps, make_reference_solver(s));
        const double now = ratio_of(1);
        EXPECT_LT(now, prev + 1e-6) << "step " << step;
        prev = now;
    }
    EXPECT_LT(std::abs(prev - 1.0), std::abs(before - 1.0));
}

TEST(Physics, MaxwellianHasUnitAnisotropyRatio)
{
    const VelocityGrid grid(32, 31);
    PlasmaState state;
    state.temperature = 1.3;
    state.u_par = 0.4;
    std::vector<real_type> f(static_cast<std::size_t>(grid.rows()));
    maxwellian(grid, state, VecView<real_type>{f.data(), grid.rows()});
    const auto t = temperature_anisotropy(
        grid, ConstVecView<real_type>{f.data(), grid.rows()});
    EXPECT_NEAR(t.ratio(), 1.0, 0.03);
    EXPECT_NEAR(t.t_par, state.temperature, 0.05 * state.temperature);
}

TEST(Spectrum, IonClusteredElectronSpread)
{
    // Fig. 2 of the paper: ion eigenvalues clustered around 1, electron
    // eigenvalues spread over a wider range of real parts. Run on a
    // smaller grid to keep the dense eigensolver fast.
    WorkloadParams wp;
    wp.n_vpar = 16;
    wp.n_vperp = 15;
    wp.num_mesh_nodes = 1;
    CollisionWorkload w(wp);
    auto a = w.make_matrix_batch();
    w.assemble_batch(w.distributions(), w.distributions(), 0.0035, a);
    const auto ion = lapack::summarize_spectrum(lapack::eigenvalues(a, 0));
    const auto ele = lapack::summarize_spectrum(lapack::eigenvalues(a, 1));
    EXPECT_GT(ion.clustered_fraction, 0.6);
    EXPECT_LT(ele.clustered_fraction, ion.clustered_fraction);
    EXPECT_GT(ele.max_real - ele.min_real,
              2.0 * (ion.max_real - ion.min_real));
    // Both well-conditioned: all eigenvalues in the right half plane.
    EXPECT_GT(ion.min_real, 0.0);
    EXPECT_GT(ele.min_real, 0.0);
}

}  // namespace
}  // namespace bsis::xgc
