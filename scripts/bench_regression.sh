#!/usr/bin/env bash
# Perf-regression run: builds, then times the canonical 992-row collision
# batch (BiCGStab+Jacobi, CSR and ELL, fused and unfused host kernels,
# modeled warp-32/warp-64 devices) and writes BENCH_solvers.json at the
# repo root for commit-over-commit comparison.
#
# Usage: scripts/bench_regression.sh            (full run, ~1000 systems)
#        BSIS_QUICK=1 scripts/bench_regression.sh   (smoke-size run)
#        BUILD_DIR=out scripts/bench_regression.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_regression

"$BUILD_DIR/bench/bench_regression" --out BENCH_solvers.json

echo "bench_regression.sh: wrote $(pwd)/BENCH_solvers.json"
