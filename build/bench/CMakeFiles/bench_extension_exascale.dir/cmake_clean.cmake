file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_exascale.dir/bench_extension_exascale.cpp.o"
  "CMakeFiles/bench_extension_exascale.dir/bench_extension_exascale.cpp.o.d"
  "bench_extension_exascale"
  "bench_extension_exascale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_exascale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
