// Process-wide telemetry switchboard.
//
// The solver hot paths are compiled with telemetry unconditionally present
// but record nothing unless enabled: every record site is gated by an
// inlined relaxed atomic load (`metrics_enabled()` / `trace_enabled()`),
// so the disabled cost is one predictable branch -- verified by the
// bench_regression overhead gate. The global MetricsRegistry and
// TraceSession singletons live for the process; examples and apps flip the
// flags from `--metrics-json=` / `--trace=` CLI options.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bsis::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{false};
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

inline bool metrics_enabled()
{
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

inline bool trace_enabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// True when any telemetry sink is on (cheap pre-check for sites that
/// would otherwise compute a value just to record it).
inline bool enabled() { return metrics_enabled() || trace_enabled(); }

void set_metrics_enabled(bool on);
void set_trace_enabled(bool on);

/// The process-wide registries. Construction is thread-safe; recording
/// into them is only meaningful while the matching flag is on.
MetricsRegistry& metrics();
TraceSession& trace();

/// RAII span against the global TraceSession; no-op when tracing is off
/// at construction time (the end is driven by the same decision, so a
/// flag flip mid-span cannot unbalance the per-thread stack).
class ScopedSpan {
public:
    explicit ScopedSpan(const char* name, const char* cat = "solver",
                        std::int64_t arg = -1)
    {
        if (trace_enabled()) {
            active_ = true;
            trace().begin(name, cat, arg);
        }
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    ~ScopedSpan()
    {
        if (active_) {
            trace().end();
        }
    }

private:
    bool active_ = false;
};

/// Runs `f` under a span named `name` (category "kernel"). The span form
/// the solver kernels use to tag one phase -- an SpMV sweep, a reduction,
/// a fused vector update -- without restructuring the kernel body; when
/// tracing is off this compiles down to the call plus one relaxed load.
template <typename F>
inline decltype(auto) traced(const char* name, F&& f)
{
    ScopedSpan span(name, "kernel");
    return std::forward<F>(f)();
}

}  // namespace bsis::obs
