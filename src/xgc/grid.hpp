// 2D guiding-center velocity-space grid.
//
// XGC's nonlinear Fokker-Planck-Landau collision operator acts on a 2D
// velocity grid (v_parallel, v_perp) at every configuration-space mesh node
// (Section II-A of the paper). The paper's matrices have 992 rows: we use
// the matching 32 x 31 cell-centered grid. The v_perp direction carries the
// cylindrical volume element (gyro-symmetric 3D velocity space), so the
// innermost v_perp face sits exactly on the axis where the metric vanishes
// -- giving a natural zero-flux boundary.
#pragma once

#include "util/types.hpp"

namespace bsis::xgc {

class VelocityGrid {
public:
    /// `vpar_extent`/`vperp_extent` are in thermal velocities of the
    /// reference temperature.
    VelocityGrid(index_type n_vpar, index_type n_vperp,
                 real_type vpar_extent = 6.0, real_type vperp_extent = 6.0);

    index_type n_vpar() const { return n_vpar_; }
    index_type n_vperp() const { return n_vperp_; }
    index_type rows() const { return n_vpar_ * n_vperp_; }

    real_type dvpar() const { return dvpar_; }
    real_type dvperp() const { return dvperp_; }

    /// Cell-center coordinates; i in [0, n_vpar), j in [0, n_vperp).
    real_type vpar(index_type i) const
    {
        return -vpar_extent_ + (i + real_type{0.5}) * dvpar_;
    }
    real_type vperp(index_type j) const
    {
        return (j + real_type{0.5}) * dvperp_;
    }

    /// v_perp at face j-1/2 (face 0 is the axis, v_perp = 0).
    real_type vperp_face(index_type j) const { return j * dvperp_; }

    /// Cylindrical volume element of cell (i, j): 2*pi*v_perp*dv*dv.
    real_type cell_volume(index_type j) const;

    index_type row(index_type i, index_type j) const
    {
        return j * n_vpar_ + i;
    }

private:
    index_type n_vpar_;
    index_type n_vperp_;
    real_type vpar_extent_;
    real_type vperp_extent_;
    real_type dvpar_;
    real_type dvperp_;
};

}  // namespace bsis::xgc
