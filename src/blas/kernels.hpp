// Dense vector kernels used inside the batched solvers.
//
// These are the per-batch-entry building blocks (Section IV-B of the paper):
// they run on one "thread block"'s data and are written so the compiler can
// inline them into the fused solver kernel, exactly as the CUDA/HIP versions
// are inlined by nvcc/hipcc in GINKGO's single-kernel design.
#pragma once

#include <cmath>

#include "blas/batch_vector.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis::blas {

/// y := x
template <typename T>
inline void copy(ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    for (index_type i = 0; i < x.len; ++i) {
        y[i] = x[i];
    }
}

/// x := alpha
template <typename T>
inline void fill(VecView<T> x, T alpha)
{
    for (index_type i = 0; i < x.len; ++i) {
        x[i] = alpha;
    }
}

/// x := alpha * x
template <typename T>
inline void scal(T alpha, VecView<T> x)
{
    for (index_type i = 0; i < x.len; ++i) {
        x[i] *= alpha;
    }
}

/// y := alpha * x + y
template <typename T>
inline void axpy(T alpha, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    for (index_type i = 0; i < x.len; ++i) {
        y[i] += alpha * x[i];
    }
}

/// y := alpha * x + beta * y
template <typename T>
inline void axpby(T alpha, ConstVecView<T> x, T beta, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    for (index_type i = 0; i < x.len; ++i) {
        y[i] = alpha * x[i] + beta * y[i];
    }
}

/// z := x - y
template <typename T>
inline void sub(ConstVecView<T> x, ConstVecView<T> y, VecView<T> z)
{
    BSIS_ASSERT(x.len == y.len && y.len == z.len);
    for (index_type i = 0; i < x.len; ++i) {
        z[i] = x[i] - y[i];
    }
}

/// Dot product x . y (unconjugated; the library is real-valued).
template <typename T>
inline T dot(ConstVecView<T> x, ConstVecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    T sum{};
    for (index_type i = 0; i < x.len; ++i) {
        sum += x[i] * y[i];
    }
    return sum;
}

/// Euclidean norm ||x||_2.
template <typename T>
inline T nrm2(ConstVecView<T> x)
{
    return std::sqrt(dot(x, x));
}

/// Max norm ||x||_inf.
template <typename T>
inline T nrm_inf(ConstVecView<T> x)
{
    T m{};
    for (index_type i = 0; i < x.len; ++i) {
        m = std::max(m, std::abs(x[i]));
    }
    return m;
}

/// z := x .* y (Hadamard product; scalar-Jacobi application).
template <typename T>
inline void mul_elementwise(ConstVecView<T> x, ConstVecView<T> y, VecView<T> z)
{
    BSIS_ASSERT(x.len == y.len && y.len == z.len);
    for (index_type i = 0; i < x.len; ++i) {
        z[i] = x[i] * y[i];
    }
}

// ---- fused single-pass kernels ------------------------------------------
//
// Each of these sweeps its operands exactly once, mirroring the fused GPU
// kernels of Rupp et al. ("Pipelined Iterative Solvers with Kernel Fusion
// for GPUs"): the compositions they replace (copy+axpy, axpy+axpby,
// back-to-back dots over shared operands) each cost one full vector sweep
// per BLAS call on the host, exactly as they cost one kernel launch plus
// one global-memory round trip on the device. Reductions fused into an
// update sweep accumulate in the SAME element order as the unfused
// reference (left to right), so results agree to rounding (see the 4-ulp
// property tests). Output views may alias input views: every iteration
// reads its operands before writing the output element.

/// z := alpha * x + beta * y + gamma * z in one sweep.
///
/// Covers the BiCGStab direction update p = r + beta * (p - omega * v)
/// (alpha=1, beta=-beta*omega, gamma=beta) and the solution update
/// x += alpha * p_hat + omega * s_hat (gamma=1), each previously two
/// sweeps (axpy+axpby / axpy+axpy).
template <typename T>
inline void axpbypcz(T alpha, ConstVecView<T> x, T beta, ConstVecView<T> y,
                     T gamma, VecView<T> z)
{
    BSIS_ASSERT(x.len == z.len && y.len == z.len);
    for (index_type i = 0; i < z.len; ++i) {
        z[i] = alpha * x[i] + beta * y[i] + gamma * z[i];
    }
}

/// z := alpha * x + beta * y in one sweep (replaces copy + axpy pairs).
template <typename T>
inline void zaxpby(T alpha, ConstVecView<T> x, T beta, ConstVecView<T> y,
                   VecView<T> z)
{
    BSIS_ASSERT(x.len == z.len && y.len == z.len);
    for (index_type i = 0; i < z.len; ++i) {
        z[i] = alpha * x[i] + beta * y[i];
    }
}

/// z := alpha * x + beta * y, returning ||z||_2, in one sweep.
///
/// Covers the BiCGStab s-vector update s = r - alpha * v + ||s|| and the
/// residual update r = s - omega * t + ||r||, each previously three
/// sweeps (copy + axpy + nrm2).
template <typename T>
inline T zaxpby_nrm2(T alpha, ConstVecView<T> x, T beta, ConstVecView<T> y,
                     VecView<T> z)
{
    BSIS_ASSERT(x.len == z.len && y.len == z.len);
    T sum{};
    for (index_type i = 0; i < z.len; ++i) {
        const T zi = alpha * x[i] + beta * y[i];
        z[i] = zi;
        sum += zi * zi;
    }
    return std::sqrt(sum);
}

/// y := alpha * x + y, returning ||y||_2, in one sweep (the CG/CGS/BiCG
/// residual update r -= alpha * q fused with its norm).
template <typename T>
inline T axpy_nrm2(T alpha, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == y.len);
    T sum{};
    for (index_type i = 0; i < x.len; ++i) {
        const T yi = y[i] + alpha * x[i];
        y[i] = yi;
        sum += yi * yi;
    }
    return std::sqrt(sum);
}

/// Computes d1 := x . y1 and d2 := x . y2 in one sweep over x (the
/// BiCGStab dual reduction t.t / t.s, previously two passes over t).
template <typename T>
inline void dot2(ConstVecView<T> x, ConstVecView<T> y1, ConstVecView<T> y2,
                 T& d1, T& d2)
{
    BSIS_ASSERT(x.len == y1.len && x.len == y2.len);
    T sum1{};
    T sum2{};
    for (index_type i = 0; i < x.len; ++i) {
        sum1 += x[i] * y1[i];
        sum2 += x[i] * y2[i];
    }
    d1 = sum1;
    d2 = sum2;
}

/// Paired update: y1 := alpha * x1 + beta * y1 and y2 := alpha * x2 +
/// beta * y2 in one loop (the BiCG primal/shadow direction updates, which
/// share their scalars).
template <typename T>
inline void axpby2(T alpha, ConstVecView<T> x1, ConstVecView<T> x2, T beta,
                   VecView<T> y1, VecView<T> y2)
{
    BSIS_ASSERT(x1.len == y1.len && x2.len == y2.len && y1.len == y2.len);
    for (index_type i = 0; i < y1.len; ++i) {
        y1[i] = alpha * x1[i] + beta * y1[i];
        y2[i] = alpha * x2[i] + beta * y2[i];
    }
}

/// Dense matrix-vector product y := A x for a row-major n x n block.
template <typename T>
inline void gemv(index_type n, const T* a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == n && y.len == n);
    for (index_type r = 0; r < n; ++r) {
        T sum{};
        const T* row = a + static_cast<std::size_t>(r) * n;
        for (index_type c = 0; c < n; ++c) {
            sum += row[c] * x[c];
        }
        y[r] = sum;
    }
}

}  // namespace bsis::blas
