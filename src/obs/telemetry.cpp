#include "obs/telemetry.hpp"

namespace bsis::obs {

void set_metrics_enabled(bool on)
{
    detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_enabled(bool on)
{
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry& metrics()
{
    static MetricsRegistry registry;
    return registry;
}

TraceSession& trace()
{
    static TraceSession session;
    return session;
}

PhaseAccumulator& phase_times()
{
    static PhaseAccumulator accumulator;
    return accumulator;
}

void sync_trace_dropped_gauge()
{
    metrics().set_named("obs.trace.dropped",
                        static_cast<double>(trace().dropped()));
}

}  // namespace bsis::obs
