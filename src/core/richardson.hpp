// Batched (preconditioned) Richardson iteration kernel.
//
// The simplest member of the solver family: x += omega * M^-1 r. Useful as
// a smoother and as the baseline iterative method in the solver-comparison
// example.
#pragma once

#include "blas/kernels.hpp"
#include "core/workspace.hpp"
#include "util/types.hpp"

namespace bsis {

/// Scratch vectors: r, t.
inline constexpr int richardson_work_vectors = 2;

template <typename MatrixView, typename Prec, typename Stop>
EntryResult richardson_kernel(const MatrixView& a, ConstVecView<real_type> b,
                              VecView<real_type> x, const Prec& prec,
                              const Stop& stop, int max_iters, Workspace& ws,
                              real_type omega = real_type{1},
                              int work_offset = 0)
{
    auto r = ws.slot(work_offset + 0);
    auto t = ws.slot(work_offset + 1);

    const real_type b_norm = blas::nrm2(b);
    for (int iter = 0; iter < max_iters; ++iter) {
        spmv(a, ConstVecView<real_type>(x), r);
        blas::axpby(real_type{1}, b, real_type{-1}, r);
        const real_type r_norm = blas::nrm2(ConstVecView<real_type>(r));
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true};
        }
        prec.apply(ConstVecView<real_type>(r), t);
        blas::axpy(omega, ConstVecView<real_type>(t), x);
    }
    spmv(a, ConstVecView<real_type>(x), r);
    blas::axpby(real_type{1}, b, real_type{-1}, r);
    const real_type r_norm = blas::nrm2(ConstVecView<real_type>(r));
    return {max_iters, r_norm, stop.done(r_norm, b_norm)};
}

}  // namespace bsis
