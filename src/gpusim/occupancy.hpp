// Occupancy calculation: how many thread blocks (= batch systems) can be
// resident on one compute unit, given the block size and the shared memory
// the storage configuration requested (Section IV-D of the paper: the
// shared-memory placement directly determines occupancy, which the wave
// scheduler turns into throughput).
#pragma once

#include "gpusim/device.hpp"
#include "util/types.hpp"

namespace bsis::gpusim {

struct Occupancy {
    int blocks_per_cu = 1;
    const char* limiter = "";  ///< "threads", "shared", or "blocks"

    /// Total concurrently resident blocks on the device.
    int device_slots(const DeviceSpec& device) const
    {
        return blocks_per_cu * device.num_cu;
    }
};

/// `shared_bytes_per_block` is StorageConfig::shared_bytes. Blocks
/// requesting more shared memory than the per-block limit are clamped by
/// the configuration step, so this only partitions the per-CU capacity.
Occupancy compute_occupancy(const DeviceSpec& device,
                            index_type block_threads,
                            size_type shared_bytes_per_block);

}  // namespace bsis::gpusim
