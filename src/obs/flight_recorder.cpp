#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace bsis::obs {

namespace {

namespace fs = std::filesystem;

// --- minimal JSON sidecar writer -----------------------------------------

void json_number(std::ostream& os, real_type v)
{
    // NaN/Inf are not valid JSON numbers; the sidecar encodes them as
    // strings and the reader maps them back.
    if (std::isnan(v)) {
        os << "\"nan\"";
    } else if (std::isinf(v)) {
        os << (v > 0 ? "\"inf\"" : "\"-inf\"");
    } else {
        std::ostringstream tmp;
        tmp.precision(17);
        tmp << v;
        os << tmp.str();
    }
}

void write_meta(std::ostream& os, const FailureBundleMeta& meta)
{
    os << "{\n";
    os << "  \"failure\": ";
    json_quote(os, meta.failure);
    os << ",\n  \"solver\": ";
    json_quote(os, meta.solver);
    os << ",\n  \"precond\": ";
    json_quote(os, meta.precond);
    os << ",\n  \"stop\": ";
    json_quote(os, meta.stop);
    os << ",\n  \"tolerance\": ";
    json_number(os, meta.tolerance);
    os << ",\n  \"max_iterations\": " << meta.max_iterations;
    os << ",\n  \"gmres_restart\": " << meta.gmres_restart;
    os << ",\n  \"block_jacobi_size\": " << meta.block_jacobi_size;
    os << ",\n  \"richardson_omega\": ";
    json_number(os, meta.richardson_omega);
    os << ",\n  \"used_initial_guess\": "
       << (meta.used_initial_guess ? "true" : "false");
    os << ",\n  \"fused_kernels\": "
       << (meta.fused_kernels ? "true" : "false");
    os << ",\n  \"pipelined\": " << (meta.pipelined ? "true" : "false");
    os << ",\n  \"lockstep_width\": " << meta.lockstep_width;
    os << ",\n  \"system_index\": " << meta.system_index;
    os << ",\n  \"iterations\": " << meta.iterations;
    os << ",\n  \"residual_norm\": ";
    json_number(os, meta.residual_norm);
    os << ",\n  \"history_iterations\": [";
    for (std::size_t i = 0; i < meta.history_iterations.size(); ++i) {
        os << (i == 0 ? "" : ", ") << meta.history_iterations[i];
    }
    os << "],\n  \"history_residuals\": [";
    for (std::size_t i = 0; i < meta.history_residuals.size(); ++i) {
        os << (i == 0 ? "" : ", ");
        json_number(os, meta.history_residuals[i]);
    }
    os << "]\n}\n";
}

// --- minimal JSON sidecar parser -----------------------------------------
//
// Parses exactly the flat object write_meta produces (string / number /
// bool / flat array values). Good enough for the replay tool without
// dragging a JSON dependency into the library.

struct JsonScanner {
    const std::string& text;
    std::size_t pos = 0;

    void skip_ws()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool consume(char c)
    {
        skip_ws();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    [[noreturn]] void fail(const std::string& what) const
    {
        throw ParseError("flight_recorder",
                         what + " at offset " + std::to_string(pos));
    }

    std::string parse_string()
    {
        skip_ws();
        if (pos >= text.size() || text[pos] != '"') {
            fail("expected string");
        }
        ++pos;
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\' && pos + 1 < text.size()) {
                ++pos;
                const char c = text[pos];
                out += c == 'n' ? '\n' : c;
            } else {
                out += text[pos];
            }
            ++pos;
        }
        if (pos >= text.size()) {
            fail("unterminated string");
        }
        ++pos;
        return out;
    }

    real_type parse_number()
    {
        skip_ws();
        if (pos < text.size() && text[pos] == '"') {
            // "nan" / "inf" / "-inf" encoded non-finite values.
            const std::string s = parse_string();
            if (s == "nan") {
                return std::numeric_limits<real_type>::quiet_NaN();
            }
            if (s == "inf") {
                return std::numeric_limits<real_type>::infinity();
            }
            if (s == "-inf") {
                return -std::numeric_limits<real_type>::infinity();
            }
            fail("unknown encoded number '" + s + "'");
        }
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
        }
        if (pos == start) {
            fail("expected number");
        }
        return static_cast<real_type>(
            std::stod(text.substr(start, pos - start)));
    }

    bool parse_bool()
    {
        skip_ws();
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            return false;
        }
        fail("expected bool");
    }

    std::vector<real_type> parse_number_array()
    {
        std::vector<real_type> out;
        if (!consume('[')) {
            fail("expected array");
        }
        skip_ws();
        if (consume(']')) {
            return out;
        }
        for (;;) {
            out.push_back(parse_number());
            if (consume(']')) {
                return out;
            }
            if (!consume(',')) {
                fail("expected ',' in array");
            }
        }
    }
};

FailureBundleMeta parse_meta(const std::string& text)
{
    FailureBundleMeta meta;
    JsonScanner sc{text};
    if (!sc.consume('{')) {
        sc.fail("expected object");
    }
    sc.skip_ws();
    if (sc.consume('}')) {
        return meta;
    }
    for (;;) {
        const std::string key = sc.parse_string();
        if (!sc.consume(':')) {
            sc.fail("expected ':'");
        }
        if (key == "failure") {
            meta.failure = sc.parse_string();
        } else if (key == "solver") {
            meta.solver = sc.parse_string();
        } else if (key == "precond") {
            meta.precond = sc.parse_string();
        } else if (key == "stop") {
            meta.stop = sc.parse_string();
        } else if (key == "tolerance") {
            meta.tolerance = sc.parse_number();
        } else if (key == "max_iterations") {
            meta.max_iterations = static_cast<int>(sc.parse_number());
        } else if (key == "gmres_restart") {
            meta.gmres_restart = static_cast<int>(sc.parse_number());
        } else if (key == "block_jacobi_size") {
            meta.block_jacobi_size = static_cast<int>(sc.parse_number());
        } else if (key == "richardson_omega") {
            meta.richardson_omega = sc.parse_number();
        } else if (key == "used_initial_guess") {
            meta.used_initial_guess = sc.parse_bool();
        } else if (key == "fused_kernels") {
            meta.fused_kernels = sc.parse_bool();
        } else if (key == "pipelined") {
            meta.pipelined = sc.parse_bool();
        } else if (key == "lockstep_width") {
            meta.lockstep_width = static_cast<int>(sc.parse_number());
        } else if (key == "system_index") {
            meta.system_index = static_cast<std::int64_t>(sc.parse_number());
        } else if (key == "iterations") {
            meta.iterations = static_cast<int>(sc.parse_number());
        } else if (key == "residual_norm") {
            meta.residual_norm = sc.parse_number();
        } else if (key == "history_iterations") {
            for (const auto v : sc.parse_number_array()) {
                meta.history_iterations.push_back(
                    static_cast<std::int64_t>(v));
            }
        } else if (key == "history_residuals") {
            meta.history_residuals = sc.parse_number_array();
        } else {
            sc.fail("unknown key '" + key + "'");
        }
        if (sc.consume('}')) {
            return meta;
        }
        if (!sc.consume(',')) {
            sc.fail("expected ',' in object");
        }
    }
}

std::string slurp(const fs::path& path)
{
    std::ifstream is(path);
    if (!is) {
        throw ParseError("flight_recorder",
                         "cannot open " + path.string());
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

}  // namespace

FlightRecorder::FlightRecorder(std::string directory, int budget)
    : directory_(std::move(directory)), budget_(budget)
{
    BSIS_ENSURE_ARG(budget_ >= 0, "negative flight recorder budget");
}

std::int64_t FlightRecorder::seen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return seen_;
}

int FlightRecorder::captured() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return captured_;
}

bool FlightRecorder::capture(const io::Coo& a, ConstVecView<real_type> b,
                             ConstVecView<real_type> x0,
                             const FailureBundleMeta& meta)
{
    int seq = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++seen_;
        if (captured_ >= budget_) {
            return false;
        }
        seq = captured_++;
    }
    // Filesystem writes happen outside the lock: bundles have distinct
    // sequence numbers, so concurrent captures never collide. The sequence
    // is zero-padded so the lexical sort in list_bundles is capture order.
    std::ostringstream name;
    name << std::setw(4) << std::setfill('0') << seq << "_sys"
         << meta.system_index;
    const fs::path dir = fs::path(directory_) / name.str();
    fs::create_directories(dir);
    {
        std::ofstream os(dir / "A.mtx");
        io::write_matrix(os, a);
    }
    {
        std::ofstream os(dir / "b.mtx");
        io::write_vector(os, b);
    }
    {
        std::ofstream os(dir / "x0.mtx");
        io::write_vector(os, x0);
    }
    {
        std::ofstream os(dir / "meta.json");
        write_meta(os, meta);
    }
    if (events_enabled()) {
        events().emit("failure.capture",
                      {field("bundle", dir.string()),
                       field("failure", meta.failure),
                       field("solver", meta.solver),
                       field("system_index", meta.system_index),
                       field("iterations", meta.iterations),
                       field("residual_norm",
                             static_cast<double>(meta.residual_norm))});
    }
    return true;
}

FailureBundle load_bundle(const std::string& bundle_dir)
{
    const fs::path dir(bundle_dir);
    FailureBundle bundle;
    {
        std::ifstream is(dir / "A.mtx");
        if (!is) {
            throw ParseError("flight_recorder",
                             "cannot open " + (dir / "A.mtx").string());
        }
        bundle.a = io::read_matrix(is);
    }
    {
        std::ifstream is(dir / "b.mtx");
        if (!is) {
            throw ParseError("flight_recorder",
                             "cannot open " + (dir / "b.mtx").string());
        }
        bundle.b = io::read_vector(is);
    }
    {
        std::ifstream is(dir / "x0.mtx");
        if (!is) {
            throw ParseError("flight_recorder",
                             "cannot open " + (dir / "x0.mtx").string());
        }
        bundle.x0 = io::read_vector(is);
    }
    bundle.meta = parse_meta(slurp(dir / "meta.json"));
    return bundle;
}

std::vector<std::string> list_bundles(const std::string& capture_dir)
{
    std::vector<std::string> out;
    const fs::path dir(capture_dir);
    if (!fs::exists(dir)) {
        return out;
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.is_directory() &&
            fs::exists(entry.path() / "meta.json")) {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace bsis::obs
