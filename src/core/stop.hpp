// Stopping criteria for the batched iterative solvers.
//
// Section IV-B of the paper: each system of the batch is monitored
// individually and terminates independently. The criteria are plugged into
// the solver kernel as template parameters (compile-time composition, as in
// the paper's Listing 1 `StopType`), so the residual check inlines into the
// fused kernel.
#pragma once

#include "util/types.hpp"

namespace bsis {

/// Stop when the residual 2-norm falls below an absolute threshold. This is
/// the criterion used throughout the paper's evaluation (tau = 1e-10).
struct AbsResidualStop {
    real_type tol;

    /// True when the system with residual norm `r_norm` has converged;
    /// `b_norm` (the right-hand-side norm) is unused for absolute stopping.
    bool done(real_type r_norm, real_type /*b_norm*/) const
    {
        return r_norm < tol;
    }
};

/// Stop when the residual has been reduced by the given relative factor
/// compared to the right-hand side (GINKGO's SimpleRelResidual).
struct RelResidualStop {
    real_type reduction;

    bool done(real_type r_norm, real_type b_norm) const
    {
        return r_norm < reduction * b_norm;
    }
};

/// Runtime selector used by the dispatch layer.
enum class StopType {
    abs_residual,
    rel_residual,
};

}  // namespace bsis
