# Empty dependencies file for bench_ablation_blockjacobi.
# This may be replaced when dependencies are built.
