# Empty dependencies file for bench_fig8_initial_guess.
# This may be replaced when dependencies are built.
