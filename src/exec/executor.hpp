// Executors: run a batched solve on a modeled platform.
//
// SimGpuExecutor runs the batched iterative solver functionally on the
// host (bit-identical arithmetic to a GPU implementation) and layers the
// gpusim performance model on top: storage configuration -> occupancy ->
// per-block cost -> block schedule -> kernel time, plus host-link transfer
// modeling. CpuExecutor is the paper's baseline: LAPACK-style dgbsv over
// the batch, parallelized over the cores of a Skylake node.
#pragma once

#include "blas/batch_vector.hpp"
#include "core/solver.hpp"
#include "core/storage_config.hpp"
#include "core/tuning.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/profile.hpp"
#include "gpusim/sanitizer.hpp"
#include "gpusim/scheduler.hpp"
#include "matrix/batch_csr.hpp"
#include "matrix/batch_ell.hpp"
#include "util/types.hpp"

namespace bsis {

/// Timing report of one batched solve on a simulated GPU.
struct GpuSolveReport {
    BatchLog log;                    ///< per-system convergence data
    double kernel_seconds = 0;       ///< modeled: launch + block makespan
    double h2d_seconds = 0;          ///< modeled host-to-device transfer
    double d2h_seconds = 0;          ///< modeled device-to-host transfer
    double wall_seconds = 0;         ///< measured host time (functional)
    StorageConfig storage;           ///< shared-memory placement used
    gpusim::Occupancy occupancy;
    int num_waves = 0;
    index_type block_threads = 0;
    gpusim::BlockCost block_cost;    ///< per-op modeled costs
    gpusim::SanitizerReport sanitizer;  ///< findings of the sanitized trace
    bool sanitized = false;          ///< whether a sanitized trace ran
    /// Live SIMT profile of a sample of this solve's blocks (warp
    /// utilization, L1/L2 hit rates -- the Table II counters), collected
    /// when profiling is on (set_profile) or telemetry is enabled. Only
    /// the fused BiCGStab kernel is traceable; `profiled` stays false for
    /// other solvers.
    gpusim::KernelProfile profile;
    bool profiled = false;
    /// Residual trajectories, populated when
    /// `SolverSettings::record_convergence` was set.
    obs::ConvergenceHistory history;
    /// Per-batch failure-class summary (index = FailureClass value): how
    /// many systems converged, broke down, stagnated, went non-finite, or
    /// ran out of iterations.
    FailureCounts failures{};

    double total_device_seconds() const
    {
        return kernel_seconds + h2d_seconds + d2h_seconds;
    }

    /// Modeled time per batch entry (right plot of Fig. 6).
    double per_entry_seconds() const
    {
        return log.num_batch() == 0
                   ? 0.0
                   : kernel_seconds / static_cast<double>(log.num_batch());
    }
};

/// Batched iterative solves with gpusim performance modeling.
class SimGpuExecutor {
public:
    explicit SimGpuExecutor(const gpusim::DeviceSpec& device)
        : device_(device)
    {}

    const gpusim::DeviceSpec& device() const { return device_; }

    /// Enables the SIMT sanitizer: each solve additionally replays the
    /// fused BiCGStab kernel trace for the first blocks of the batch with
    /// race / barrier-divergence / bounds checking, reporting findings in
    /// GpuSolveReport::sanitizer. Observation-only: the solution, the
    /// counters, and the modeled times are unchanged.
    void set_sanitize(bool on) { sanitize_ = on; }
    bool sanitize() const { return sanitize_; }

    /// Forces the live SIMT profile (GpuSolveReport::profile) on for every
    /// solve; otherwise it runs only while telemetry (obs metrics or
    /// tracing) is enabled.
    void set_profile(bool on) { profile_ = on; }
    bool profile() const { return profile_; }

    /// Blocks sampled per solve by the live profile.
    static constexpr int profile_sample_blocks = 4;

    /// Solves the batch (functionally exact) and models the device time.
    /// `include_transfers`: account H2D of values+pattern+b (+x when warm
    /// starting) and D2H of x, as the XGC coupling would require.
    GpuSolveReport solve(const BatchCsr<real_type>& a,
                         const BatchVector<real_type>& b,
                         BatchVector<real_type>& x,
                         const SolverSettings& settings,
                         bool include_transfers = false) const;
    GpuSolveReport solve(const BatchEll<real_type>& a,
                         const BatchVector<real_type>& b,
                         BatchVector<real_type>& x,
                         const SolverSettings& settings,
                         bool include_transfers = false) const;

    /// Modeled time of `reps` batched SpMV kernel launches (Fig. 7).
    double spmv_seconds(const gpusim::SystemShape& shape, BatchFormat format,
                        size_type num_batch, int reps = 1) const;

    /// Modeled time of the batched sparse direct QR (cuSolver stand-in) on
    /// a batch of banded systems (Fig. 6 comparison).
    double direct_qr_seconds(index_type rows, index_type kl, index_type ku,
                             size_type num_batch) const;

private:
    template <typename BatchMatrix>
    GpuSolveReport solve_impl(const BatchMatrix& a,
                              const BatchVector<real_type>& b,
                              BatchVector<real_type>& x,
                              const SolverSettings& settings,
                              BatchFormat format,
                              bool include_transfers) const;

    gpusim::DeviceSpec device_;
    bool sanitize_ = false;
    bool profile_ = false;
};

/// Timing report of the CPU baseline.
struct CpuSolveReport {
    double node_seconds = 0;   ///< modeled: batch over the node's cores
    double wall_seconds = 0;   ///< measured host time of the real solve
    double per_system_seconds = 0;  ///< modeled single-core dgbsv time

    double per_entry_seconds(size_type num_batch) const
    {
        return num_batch == 0
                   ? 0.0
                   : node_seconds / static_cast<double>(num_batch);
    }
};

/// The paper's CPU baseline: batched dgbsv on the Skylake node.
class CpuExecutor {
public:
    explicit CpuExecutor(const gpusim::CpuSpec& cpu = gpusim::skylake_node())
        : cpu_(cpu)
    {}

    const gpusim::CpuSpec& cpu() const { return cpu_; }

    /// Solves every system by banded LU (really, on this host) and models
    /// the Skylake-node time: systems distributed over cores_used cores.
    CpuSolveReport gbsv(const BatchCsr<real_type>& a,
                        const BatchVector<real_type>& b,
                        BatchVector<real_type>& x) const;

    /// Runs the batched ITERATIVE solver on the CPU node model (the
    /// paper's Section IV note that the design "carries over to
    /// hierarchical memory multi-core CPU"): one core per system, sparse
    /// kernels at the CPU's memory-bound efficiency. Shows why production
    /// XGC kept dgbsv on the CPU: at n=992 the banded direct solve and
    /// the iterative solve are close on a CPU core, with no warp-width
    /// or occupancy effects to exploit.
    CpuSolveReport iterative(const BatchCsr<real_type>& a,
                             const BatchVector<real_type>& b,
                             BatchVector<real_type>& x,
                             const SolverSettings& settings) const;

private:
    gpusim::CpuSpec cpu_;
};

}  // namespace bsis
