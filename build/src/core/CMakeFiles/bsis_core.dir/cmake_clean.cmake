file(REMOVE_RECURSE
  "CMakeFiles/bsis_core.dir/monolithic.cpp.o"
  "CMakeFiles/bsis_core.dir/monolithic.cpp.o.d"
  "CMakeFiles/bsis_core.dir/solver.cpp.o"
  "CMakeFiles/bsis_core.dir/solver.cpp.o.d"
  "CMakeFiles/bsis_core.dir/storage_config.cpp.o"
  "CMakeFiles/bsis_core.dir/storage_config.cpp.o.d"
  "CMakeFiles/bsis_core.dir/tuning.cpp.o"
  "CMakeFiles/bsis_core.dir/tuning.cpp.o.d"
  "libbsis_core.a"
  "libbsis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
