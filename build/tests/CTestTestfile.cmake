# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_lapack[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_storage_config[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_xgc[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_tridiag[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
