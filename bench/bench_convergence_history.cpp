// Supplementary to Fig. 2 / Table III: the per-iteration residual decay of
// the batched BiCGStab on one ion and one electron system (the per-system
// logging capability of the paper's Listing 1 LogType). The ion residual
// collapses in a handful of iterations (spectrum clustered at 1); the
// electron takes ~30 with the characteristic BiCGStab irregularity.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/bicgstab.hpp"
#include "core/precond.hpp"
#include "core/stop.hpp"

int main()
{
    using namespace bsis;
    bench::XgcBatch problem(2);  // one node: ion (0) + electron (1)
    auto ell = to_ell(problem.a);

    Table table({"iteration", "ion_residual", "electron_residual"});
    std::vector<std::vector<real_type>> histories(2);
    Workspace ws(problem.a.rows(), bicgstab_work_vectors + 1);
    for (size_type sys = 0; sys < 2; ++sys) {
        BatchVector<real_type> x(1, problem.a.rows());
        JacobiPrec prec;
        prec.generate(ell.entry(sys), ws.slot(bicgstab_work_vectors));
        const auto result = bicgstab_kernel(
            ell.entry(sys), problem.rhs().entry(sys), x.entry(0), prec,
            AbsResidualStop{1e-10}, 500, ws, 0,
            &histories[static_cast<std::size_t>(sys)]);
        std::cout << (sys == 0 ? "ion" : "electron") << ": "
                  << result.iterations << " iterations, final residual "
                  << result.residual_norm << "\n";
    }
    const std::size_t len =
        std::max(histories[0].size(), histories[1].size());
    for (std::size_t it = 0; it < len; ++it) {
        table.new_row().add(static_cast<std::int64_t>(it));
        for (const auto& h : histories) {
            if (it < h.size()) {
                table.add(h[it], 6);
            } else {
                table.add("-");
            }
        }
    }
    bench::emit("convergence_history",
                "Residual decay of batched BiCGStab on one ion and one "
                "electron system (abs tol 1e-10, zero guess)",
                table);
    return 0;
}
