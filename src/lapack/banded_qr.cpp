#include "lapack/banded_qr.hpp"

#include <algorithm>
#include <cmath>

#include <exception>

#include "util/error.hpp"

namespace bsis::lapack {

namespace {

/// Computes a Givens rotation (c, s) with [c s; -s c]^T [f; g] = [r; 0].
void make_givens(real_type f, real_type g, real_type& c, real_type& s)
{
    if (g == real_type{0}) {
        c = 1;
        s = 0;
    } else if (std::abs(g) > std::abs(f)) {
        const real_type t = f / g;
        const real_type u = std::sqrt(1 + t * t);
        s = 1 / u;
        c = s * t;
    } else {
        const real_type t = g / f;
        const real_type u = std::sqrt(1 + t * t);
        c = 1 / u;
        s = c * t;
    }
}

}  // namespace

void gbqr_solve(BandedView<real_type> a, VecView<real_type> b)
{
    const index_type n = a.n;
    BSIS_ENSURE_DIMS(b.len == n, "rhs length must equal matrix order");
    const index_type kuw = a.kl + a.ku;  // upper bandwidth of R

    // Eliminate the sub-diagonals column by column, bottom-up. When entry
    // (i, j) is annihilated both rows involved have nonzeros confined to
    // columns j .. j + kl + ku (classical banded-QR fill result), so the
    // rotation is applied over exactly that range.
    for (index_type j = 0; j < n; ++j) {
        const index_type ihi = std::min(j + a.kl, n - 1);
        for (index_type i = ihi; i > j; --i) {
            if (a(i, j) == real_type{0}) {
                continue;
            }
            real_type c;
            real_type s;
            make_givens(a(i - 1, j), a(i, j), c, s);
            const index_type chi = std::min(j + kuw, n - 1);
            for (index_type col = j; col <= chi; ++col) {
                const real_type top = a(i - 1, col);
                const real_type bot = a(i, col);
                a(i - 1, col) = c * top + s * bot;
                a(i, col) = -s * top + c * bot;
            }
            const real_type btop = b[i - 1];
            const real_type bbot = b[i];
            b[i - 1] = c * btop + s * bbot;
            b[i] = -s * btop + c * bbot;
        }
    }
    // Back substitution with R (upper bandwidth kl + ku).
    for (index_type j = n - 1; j >= 0; --j) {
        if (a(j, j) == real_type{0}) {
            throw NumericalBreakdown(
                "gbqr_solve", "zero diagonal in R at " + std::to_string(j));
        }
        b[j] /= a(j, j);
        const index_type ilo = std::max(j - kuw, index_type{0});
        for (index_type i = ilo; i < j; ++i) {
            b[i] -= a(i, j) * b[j];
        }
    }
}

double gbqr_flops(index_type n, index_type kl, index_type ku)
{
    // Per column: up to kl rotations, each applied to ~(kl + ku + 1) column
    // pairs (6 flops per pair) plus the rhs pair, plus rotation setup.
    const double rotations = static_cast<double>(n) * kl;
    const double per_rotation = 6.0 * (static_cast<double>(kl) + ku + 2) + 8;
    const double back_sub =
        static_cast<double>(n) * (2.0 * (static_cast<double>(kl) + ku) + 1);
    return rotations * per_rotation + back_sub;
}

void batch_gbqr_solve(BatchBanded<real_type>& a, BatchVector<real_type>& x)
{
    BSIS_ENSURE_DIMS(a.num_batch() == x.num_batch(),
                     "batch counts must match");
    BSIS_ENSURE_DIMS(a.n() == x.len(), "rhs length must equal matrix order");
    const size_type nbatch = a.num_batch();
    std::exception_ptr failure;
#pragma omp parallel for schedule(dynamic)
    for (size_type b = 0; b < nbatch; ++b) {
        try {
            gbqr_solve(a.entry(b), x.entry(b));
        } catch (...) {
#pragma omp critical(bsis_batch_driver_failure)
            {
                if (!failure) {
                    failure = std::current_exception();
                }
            }
        }
    }
    if (failure) {
        std::rethrow_exception(failure);
    }
}

}  // namespace bsis::lapack
