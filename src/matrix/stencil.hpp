// Stencil-pattern generation on structured 2D grids.
//
// The XGC collision matrices come from a 9-point stencil discretization of a
// 2D velocity grid (Fig. 4 of the paper: 992 rows, 9 nonzeros per interior
// row). This module builds the shared CSR pattern for 5-point and 9-point
// stencils and provides assembly helpers and a synthetic well-conditioned
// generator used by tests and the generic examples.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "matrix/batch_csr.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace bsis {

enum class StencilKind {
    five_point,  ///< cross: C, W, E, S, N
    nine_point   ///< full 3x3 neighborhood (mixed-derivative terms)
};

/// Shared sparsity pattern of a stencil discretization; row r = j*nx + i for
/// grid node (i, j), columns sorted ascending within each row.
struct StencilPattern {
    index_type nx = 0;
    index_type ny = 0;
    StencilKind kind = StencilKind::nine_point;
    std::vector<index_type> row_ptrs;
    std::vector<index_type> col_idxs;

    index_type rows() const { return nx * ny; }
};

/// Builds the CSR pattern of `kind` on an nx x ny grid. Boundary rows have
/// fewer nonzeros (truncated neighborhoods), as in the XGC matrices.
StencilPattern make_stencil_pattern(index_type nx, index_type ny,
                                    StencilKind kind);

/// Neighbor offsets of a stencil kind, center first.
std::vector<std::array<index_type, 2>> stencil_offsets(StencilKind kind);

/// Coefficient callback: value of the stencil entry coupling grid node
/// (i, j) to its neighbor at offset (di, dj).
using StencilCoefficientFn =
    std::function<real_type(index_type i, index_type j, index_type di,
                            index_type dj)>;

/// Creates a BatchCsr with the pattern of `pattern` and fills entry `b`
/// of the batch from `coeff[b]`.
BatchCsr<real_type> assemble_stencil_batch(
    const StencilPattern& pattern,
    const std::vector<StencilCoefficientFn>& coeff);

/// Parameters of the synthetic well-conditioned nonsymmetric stencil
/// generator: I + diffusion + advection with random per-entry perturbation,
/// mimicking the structure (not the physics) of the collision matrices.
struct SyntheticStencilParams {
    real_type diffusion = 0.2;     ///< magnitude of the Laplacian part
    real_type advection = 0.05;    ///< magnitude of the nonsymmetric part
    real_type perturbation = 0.02; ///< relative random variation per entry
    std::uint64_t seed = 42;
};

/// Batch of `num_batch` synthetic stencil matrices, each a perturbed
/// backward-Euler-like operator I + diffusion*L + advection*G. Diagonally
/// dominant, nonsymmetric, eigenvalues clustered near 1.
BatchCsr<real_type> make_synthetic_batch(index_type nx, index_type ny,
                                         StencilKind kind,
                                         size_type num_batch,
                                         const SyntheticStencilParams& params);

}  // namespace bsis
