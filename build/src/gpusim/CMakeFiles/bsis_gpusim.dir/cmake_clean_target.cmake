file(REMOVE_RECURSE
  "libbsis_gpusim.a"
)
