// Deterministic random number generation.
//
// Every stochastic component of the library (workload generators, property
// tests) takes an explicit seed so runs are reproducible; the generator is a
// fixed algorithm (splitmix64 seeding a xoshiro256**) rather than
// std::default_random_engine, whose meaning varies between standard
// libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace bsis {

namespace detail {

/// splitmix64, used only to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64_next(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace detail

/// xoshiro256** pseudo-random generator (Blackman & Vigna). Satisfies
/// UniformRandomBitGenerator so it can drive <random> distributions.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL)
    {
        std::uint64_t sm = seed;
        for (auto& word : state_) {
            word = detail::splitmix64_next(sm);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max()
    {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n).
    std::uint64_t uniform_int(std::uint64_t n)
    {
        // Lemire's unbiased bounded generation.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto l = static_cast<std::uint64_t>(m);
        if (l < n) {
            const std::uint64_t threshold = -n % n;
            while (l < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * n;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace bsis
