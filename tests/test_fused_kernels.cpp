// Tests for the fused BLAS kernels and their use in the solvers.
//
// Property tests compare each single-pass fused kernel against the
// composition of unfused reference kernels it replaces, to within a few
// ulp scaled to the largest accumulated term (fusion may contract
// multiply-adds; it must not reassociate the reduction order). Solve-level
// tests check the fused BiCGStab agrees with the reference composition on
// the stencil batch, and that the persistent workspace pool really is
// persistent.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "blas/kernels.hpp"
#include "core/solver.hpp"
#include "core/workspace.hpp"
#include "matrix/stencil.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

constexpr real_type eps = std::numeric_limits<real_type>::epsilon();

/// Random vector of length n in [-1, 1].
std::vector<real_type> random_vec(Rng& rng, index_type n)
{
    std::vector<real_type> v(static_cast<std::size_t>(n));
    for (auto& x : v) {
        x = rng.uniform(-1.0, 1.0);
    }
    return v;
}

VecView<real_type> view(std::vector<real_type>& v)
{
    return {v.data(), static_cast<index_type>(v.size())};
}

ConstVecView<real_type> cview(const std::vector<real_type>& v)
{
    return {v.data(), static_cast<index_type>(v.size())};
}

/// |a - b| within `ulps` ulp of the magnitude `scale` (NOT of the result:
/// fused updates can cancel, so the bound must follow the largest term).
void expect_close(real_type a, real_type b, real_type scale,
                  double ulps = 4.0)
{
    const real_type bound =
        ulps * eps * std::max<real_type>(scale, real_type{1});
    EXPECT_NEAR(a, b, bound) << "scale " << scale;
}

/// Vector lengths exercised by every property test: empty, sub-warp, odd,
/// and larger-than-a-few-warps.
const index_type lengths[] = {0, 1, 7, 64, 193};

TEST(FusedKernels, AxpbypczMatchesUnfusedComposition)
{
    Rng rng(101);
    for (const auto n : lengths) {
        const auto x = random_vec(rng, n);
        const auto y = random_vec(rng, n);
        const auto z0 = random_vec(rng, n);
        const real_type alpha = 1.0, beta = -0.37, gamma = 0.81;

        auto z_ref = z0;
        // Reference: z = alpha*x + beta*y + gamma*z via scal + two axpys.
        blas::scal(gamma, view(z_ref));
        blas::axpy(alpha, cview(x), view(z_ref));
        blas::axpy(beta, cview(y), view(z_ref));

        auto z = z0;
        blas::axpbypcz(alpha, cview(x), beta, cview(y), gamma, view(z));

        for (index_type i = 0; i < n; ++i) {
            const auto k = static_cast<std::size_t>(i);
            const real_type scale = std::abs(alpha * x[k]) +
                                    std::abs(beta * y[k]) +
                                    std::abs(gamma * z0[k]);
            expect_close(z[k], z_ref[k], scale);
        }
    }
}

TEST(FusedKernels, ZaxpbyMatchesCopyPlusAxpby)
{
    Rng rng(102);
    for (const auto n : lengths) {
        const auto x = random_vec(rng, n);
        const auto y = random_vec(rng, n);
        const real_type alpha = 0.9, beta = -1.21;

        std::vector<real_type> z_ref(static_cast<std::size_t>(n));
        blas::copy(cview(y), view(z_ref));
        blas::axpby(alpha, cview(x), beta, view(z_ref));

        std::vector<real_type> z(static_cast<std::size_t>(n));
        blas::zaxpby(alpha, cview(x), beta, cview(y), view(z));

        for (index_type i = 0; i < n; ++i) {
            const auto k = static_cast<std::size_t>(i);
            const real_type scale =
                std::abs(alpha * x[k]) + std::abs(beta * y[k]);
            expect_close(z[k], z_ref[k], scale);
        }
    }
}

TEST(FusedKernels, ZaxpbyNrm2MatchesSeparateNorm)
{
    Rng rng(103);
    for (const auto n : lengths) {
        const auto x = random_vec(rng, n);
        const auto y = random_vec(rng, n);
        const real_type alpha = -1.0, beta = 0.64;

        std::vector<real_type> z_ref(static_cast<std::size_t>(n));
        blas::zaxpby(alpha, cview(x), beta, cview(y), view(z_ref));
        const real_type norm_ref = blas::nrm2(cview(z_ref));

        std::vector<real_type> z(static_cast<std::size_t>(n));
        const real_type norm =
            blas::zaxpby_nrm2(alpha, cview(x), beta, cview(y), view(z));

        for (index_type i = 0; i < n; ++i) {
            const auto k = static_cast<std::size_t>(i);
            EXPECT_EQ(z[k], z_ref[k]);
        }
        expect_close(norm, norm_ref, norm_ref);
    }
}

TEST(FusedKernels, AxpyNrm2MatchesSeparateNorm)
{
    Rng rng(104);
    for (const auto n : lengths) {
        const auto x = random_vec(rng, n);
        const auto y0 = random_vec(rng, n);
        const real_type alpha = 0.43;

        auto y_ref = y0;
        blas::axpy(alpha, cview(x), view(y_ref));
        const real_type norm_ref = blas::nrm2(cview(y_ref));

        auto y = y0;
        const real_type norm = blas::axpy_nrm2(alpha, cview(x), view(y));

        for (index_type i = 0; i < n; ++i) {
            const auto k = static_cast<std::size_t>(i);
            EXPECT_EQ(y[k], y_ref[k]);
        }
        expect_close(norm, norm_ref, norm_ref);
    }
}

TEST(FusedKernels, Dot2MatchesTwoDots)
{
    Rng rng(105);
    for (const auto n : lengths) {
        const auto x = random_vec(rng, n);
        const auto y1 = random_vec(rng, n);
        const auto y2 = random_vec(rng, n);

        const real_type d1_ref = blas::dot(cview(x), cview(y1));
        const real_type d2_ref = blas::dot(cview(x), cview(y2));

        real_type d1 = 0, d2 = 0;
        blas::dot2(cview(x), cview(y1), cview(y2), d1, d2);

        // Identical accumulation order: the fused pass must agree up to
        // multiply-add contraction.
        expect_close(d1, d1_ref, static_cast<real_type>(n));
        expect_close(d2, d2_ref, static_cast<real_type>(n));
    }
}

TEST(FusedKernels, Dot2SelfDotMatchesNormSquared)
{
    Rng rng(106);
    const index_type n = 96;
    const auto t = random_vec(rng, n);
    const auto s = random_vec(rng, n);
    real_type t_t = 0, t_s = 0;
    blas::dot2(cview(t), cview(t), cview(s), t_t, t_s);
    expect_close(t_t, blas::dot(cview(t), cview(t)),
                 static_cast<real_type>(n));
    expect_close(t_s, blas::dot(cview(t), cview(s)),
                 static_cast<real_type>(n));
}

TEST(FusedKernels, Axpby2MatchesTwoAxpbys)
{
    Rng rng(107);
    for (const auto n : lengths) {
        const auto x1 = random_vec(rng, n);
        const auto x2 = random_vec(rng, n);
        const auto y1_0 = random_vec(rng, n);
        const auto y2_0 = random_vec(rng, n);
        const real_type alpha = 1.0, beta = -0.58;

        auto y1_ref = y1_0;
        auto y2_ref = y2_0;
        blas::axpby(alpha, cview(x1), beta, view(y1_ref));
        blas::axpby(alpha, cview(x2), beta, view(y2_ref));

        auto y1 = y1_0;
        auto y2 = y2_0;
        blas::axpby2(alpha, cview(x1), cview(x2), beta, view(y1), view(y2));

        for (index_type i = 0; i < n; ++i) {
            const auto k = static_cast<std::size_t>(i);
            const real_type s1 =
                std::abs(alpha * x1[k]) + std::abs(beta * y1_0[k]);
            const real_type s2 =
                std::abs(alpha * x2[k]) + std::abs(beta * y2_0[k]);
            expect_close(y1[k], y1_ref[k], s1);
            expect_close(y2[k], y2_ref[k], s2);
        }
    }
}

TEST(FusedKernels, AliasedOutputIsSupported)
{
    // The solvers call the fused kernels with the output aliasing an
    // input (p = r + beta*(p - omega v) reads and writes p).
    Rng rng(108);
    const index_type n = 33;
    const auto r = random_vec(rng, n);
    const auto v = random_vec(rng, n);
    const auto p0 = random_vec(rng, n);
    const real_type beta = 0.7, omega = 0.3;

    auto p_ref = p0;
    blas::scal(beta, view(p_ref));
    blas::axpy(real_type{1}, cview(r), view(p_ref));
    blas::axpy(-beta * omega, cview(v), view(p_ref));

    auto p = p0;
    blas::axpbypcz(real_type{1}, cview(r), -beta * omega, cview(v), beta,
                   view(p));
    for (index_type i = 0; i < n; ++i) {
        const auto k = static_cast<std::size_t>(i);
        const real_type scale = std::abs(r[k]) +
                                std::abs(beta * omega * v[k]) +
                                std::abs(beta * p0[k]);
        expect_close(p[k], p_ref[k], scale);
    }
}

/// Stencil batch with random right-hand sides (same fixture as test_core).
struct Problem {
    BatchCsr<real_type> a;
    BatchVector<real_type> b;

    static Problem make(size_type nbatch)
    {
        SyntheticStencilParams params;
        params.seed = 1234;
        Problem p{make_synthetic_batch(8, 7, StencilKind::nine_point,
                                       nbatch, params),
                  BatchVector<real_type>(nbatch, 8 * 7)};
        Rng rng(55);
        for (size_type i = 0; i < nbatch; ++i) {
            auto bv = p.b.entry(i);
            for (index_type k = 0; k < bv.len; ++k) {
                bv[k] = rng.uniform(-1.0, 1.0);
            }
        }
        return p;
    }
};

TEST(FusedSolve, BicgstabIterationsWithinOneOfUnfused)
{
    const size_type nbatch = 12;
    auto p = Problem::make(nbatch);

    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;
    settings.tolerance = 1e-10;

    BatchVector<real_type> x_fused(nbatch, p.b.len());
    settings.fused_kernels = true;
    const auto fused = solve_batch(p.a, p.b, x_fused, settings);

    BatchVector<real_type> x_ref(nbatch, p.b.len());
    settings.fused_kernels = false;
    const auto ref = solve_batch(p.a, p.b, x_ref, settings);

    ASSERT_TRUE(fused.log.all_converged());
    ASSERT_TRUE(ref.log.all_converged());
    for (size_type i = 0; i < nbatch; ++i) {
        // Identical reduction order means the two paths track each other
        // to rounding; the stopping decision may shift by at most one
        // iteration.
        EXPECT_NEAR(fused.log.iterations(i), ref.log.iterations(i), 1)
            << "system " << i;
        const auto xf = x_fused.entry(i);
        const auto xr = x_ref.entry(i);
        for (index_type k = 0; k < xf.len; ++k) {
            EXPECT_NEAR(xf[k], xr[k], 1e-7) << "system " << i;
        }
    }
    // The fused path must report the fused sweep structure to the cost
    // model; the reference path must not.
    EXPECT_TRUE(fused.work.has_fused_shape());
    EXPECT_FALSE(ref.work.has_fused_shape());
    EXPECT_EQ(fused.work.dots_per_iter, ref.work.dots_per_iter);
}

TEST(FusedSolve, AllSolversConvergeWithFusedKernels)
{
    // The fused updates in CG / CGS / BiCG ride the same solve_batch path;
    // every composition must still converge on the stencil batch.
    const size_type nbatch = 4;
    auto p = Problem::make(nbatch);
    for (const auto solver : {SolverType::bicgstab, SolverType::cgs,
                              SolverType::bicg}) {
        SolverSettings settings;
        settings.solver = solver;
        settings.precond = PrecondType::jacobi;
        settings.tolerance = 1e-10;
        BatchVector<real_type> x(nbatch, p.b.len());
        const auto result = solve_batch(p.a, p.b, x, settings);
        EXPECT_TRUE(result.log.all_converged())
            << "solver " << static_cast<int>(solver);
    }
}

TEST(WorkspacePool, PersistsAndGrowsAcrossRequires)
{
    WorkspacePool pool;
    pool.require(2, 100, 4);
    ASSERT_EQ(pool.num_threads(), 2);
    EXPECT_EQ(pool.at(0).length(), 100);
    EXPECT_EQ(pool.at(0).num_slots(), 4);

    // Same-shape require must not reallocate (this is the point of the
    // pool: repeated solves reuse the buffers).
    const auto* data0 = pool.at(0).slot(0).data;
    const auto* data1 = pool.at(1).slot(0).data;
    pool.require(2, 100, 4);
    EXPECT_EQ(pool.at(0).slot(0).data, data0);
    EXPECT_EQ(pool.at(1).slot(0).data, data1);

    // Growing keeps the pool usable at the larger shape. A smaller
    // request then adopts the smaller shape exactly (kernels get
    // exactly-sized slot views) while reusing the grown storage and
    // keeping every thread's workspace alive.
    pool.require(3, 150, 6);
    EXPECT_EQ(pool.num_threads(), 3);
    EXPECT_EQ(pool.at(2).length(), 150);
    EXPECT_EQ(pool.at(2).num_slots(), 6);
    const auto* grown0 = pool.at(0).slot(0).data;
    pool.require(1, 10, 2);
    EXPECT_EQ(pool.num_threads(), 3);
    EXPECT_EQ(pool.at(0).length(), 10);
    EXPECT_EQ(pool.at(0).num_slots(), 2);
    EXPECT_EQ(pool.at(0).slot(0).data, grown0);
}

TEST(WorkspacePool, SmallerSolveAfterBiggerOneGetsExactSlots)
{
    // Regression: the calling thread's pool persists across solve_batch
    // calls, and slots used to keep their high-water length -- a 992-row
    // solve followed by a 56-row one handed the Jacobi setup (and the
    // kernels) 992-long views over 56-row systems.
    SyntheticStencilParams params;
    params.seed = 1234;
    SolverSettings settings;
    settings.precond = PrecondType::jacobi;

    auto big = make_synthetic_batch(32, 31, StencilKind::nine_point, 2,
                                    params);
    BatchVector<real_type> bb(2, big.rows(), 1.0);
    BatchVector<real_type> xb(2, big.rows());
    ASSERT_TRUE(solve_batch(big, bb, xb, settings).log.all_converged());

    auto small = Problem::make(4);
    BatchVector<real_type> xs(4, small.b.len());
    // Reference solved before the big problem ever touched this pool is
    // unavailable here; bitwise determinism across pool states is what
    // RepeatedSolvesReuseThePool pins. Converging at all is the point:
    // this sequence used to throw on the workspace-length assert.
    ASSERT_TRUE(
        solve_batch(small.a, small.b, xs, settings).log.all_converged());
}

TEST(WorkspacePool, RepeatedSolvesReuseThePool)
{
    // Two solve_batch calls of the same shape: the second must produce the
    // same answer (the pool is opaque to callers, so this is an end-to-end
    // smoke check that reuse does not leak state between solves).
    const size_type nbatch = 4;
    auto p = Problem::make(nbatch);
    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;

    BatchVector<real_type> x1(nbatch, p.b.len());
    const auto first = solve_batch(p.a, p.b, x1, settings);
    BatchVector<real_type> x2(nbatch, p.b.len());
    const auto second = solve_batch(p.a, p.b, x2, settings);

    ASSERT_TRUE(first.log.all_converged());
    ASSERT_TRUE(second.log.all_converged());
    for (size_type i = 0; i < nbatch; ++i) {
        EXPECT_EQ(first.log.iterations(i), second.log.iterations(i));
        const auto a = x1.entry(i);
        const auto b = x2.entry(i);
        for (index_type k = 0; k < a.len; ++k) {
            EXPECT_EQ(a[k], b[k]) << "system " << i;
        }
    }
}

}  // namespace
}  // namespace bsis
