// Live monitoring: background sampler, bounded time series, Prometheus
// exposition, and a declarative alert-rule engine over MetricsRegistry.
//
// Everything the obs stack built so far is post-hoc -- snapshots, traces,
// and reports rendered after the run ends. A Picard campaign over
// thousands of batched systems runs for hours, and both the solve-service
// and online-autotuning directions need a LIVE view: a scrapeable metric
// endpoint, bounded per-metric history, and alerting on the failure
// counters. obs::Monitor is that layer.
//
// The monitor owns a sampler thread that, on a configurable tick,
// snapshots the registry and
//   * appends to bounded per-metric time-series rings: counter deltas
//     become per-second rates, gauges keep their last value, histograms
//     contribute p50/p95 tracks;
//   * evaluates the alert rules (threshold / rate / absence, with
//     for-duration hysteresis and an ok -> pending -> firing -> resolved
//     state machine) -- transitions bump the `obs.alerts.*` counters of
//     the sampled registry itself and append to the event log;
//   * renders the Prometheus text exposition (# HELP / # TYPE derived
//     from the registry; counters additionally get a `_per_sec` rate
//     gauge so file-based consumers need no PromQL) and atomically
//     rewrites the promfile, and serves the same document over a minimal
//     localhost HTTP scrape endpoint.
//
// The sampler never touches solver hot paths: it reads the same sharded
// snapshots every cold path reads, at a default 250 ms tick, and lives
// under the same <= 2% telemetry-overhead gate as the rest of the obs
// stack (bench_regression's monitor A/B row). Tests drive ticks
// deterministically through sample_at().
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <condition_variable>
#include <vector>

#include "obs/metrics.hpp"

namespace bsis::obs {

// ---------------------------------------------------------------------
// Bounded time series
// ---------------------------------------------------------------------

struct SeriesPoint {
    double t = 0;      ///< sample time, unix seconds (or test-supplied)
    double value = 0;
};

/// Fixed-capacity ring of (t, value) samples; push overwrites the oldest.
class TimeSeriesRing {
public:
    explicit TimeSeriesRing(int capacity = 240)
        : ring_(static_cast<std::size_t>(capacity > 0 ? capacity : 1))
    {}

    int capacity() const { return static_cast<int>(ring_.size()); }
    int size() const { return count_; }
    std::int64_t pushed() const { return pushed_; }

    void push(double t, double value)
    {
        ring_[static_cast<std::size_t>(head_)] = {t, value};
        head_ = (head_ + 1) % capacity();
        count_ = std::min(count_ + 1, capacity());
        ++pushed_;
    }

    /// i = 0 is the oldest retained sample, i = size()-1 the newest.
    SeriesPoint at(int i) const
    {
        const int first = (head_ - count_ + capacity()) % capacity();
        return ring_[static_cast<std::size_t>((first + i) % capacity())];
    }

    SeriesPoint back() const
    {
        return count_ == 0 ? SeriesPoint{} : at(count_ - 1);
    }

    std::vector<SeriesPoint> points() const
    {
        std::vector<SeriesPoint> out;
        out.reserve(static_cast<std::size_t>(count_));
        for (int i = 0; i < count_; ++i) {
            out.push_back(at(i));
        }
        return out;
    }

private:
    std::vector<SeriesPoint> ring_;
    int head_ = 0;
    int count_ = 0;
    std::int64_t pushed_ = 0;
};

// ---------------------------------------------------------------------
// Alert rules
// ---------------------------------------------------------------------

/// What a rule evaluates each tick.
enum class AlertFunc {
    value,   ///< counter total / gauge last value / histogram p95
    rate,    ///< counter per-second rate over the last tick
    absent,  ///< metric missing (never recorded); op/threshold unused
};

enum class AlertOp { gt, ge, lt, le };

/// One declarative rule. Text form (one per line in a rule file):
///
///   <name>: <func>(<metric>) <op> <threshold> for <seconds>s
///
/// e.g.  solve_failures: rate(solve.fail.*) > 0 for 0.5s
///       slow_batches:   value(solve.last_wall_seconds) >= 2 for 5s
///       heartbeat:      absent(solve.batches) for 10s
///
/// A metric ending in `*` is a prefix wildcard: value/rate sum over every
/// matching counter (and gauge, for value); absent means NO match exists.
/// `for` is the hysteresis on both edges: the condition must hold that
/// long before the alert fires, and must stay clear that long before a
/// firing alert resolves -- one bad (or good) tick never flaps.
struct AlertRule {
    std::string name;
    AlertFunc func = AlertFunc::value;
    std::string metric;
    AlertOp op = AlertOp::gt;
    double threshold = 0;
    double for_seconds = 0;
};

/// Parses the one-line rule grammar above. Returns false (with a message
/// in `error` when non-null) on malformed input.
bool parse_alert_rule(const std::string& line, AlertRule& out,
                      std::string* error = nullptr);

/// Loads a rule file: one rule per line, blank lines and `#` comments
/// ignored. Returns false on unreadable file or any malformed line.
bool load_alert_rules(const std::string& path, std::vector<AlertRule>& out,
                      std::string* error = nullptr);

/// The default rule set every monitor starts with: solver and gpusim
/// failure-class counters, drift alarms, and trace-span drops.
std::vector<AlertRule> default_alert_rules();

enum class AlertPhase { ok, pending, firing };

const char* alert_phase_name(AlertPhase phase);

/// Live state of one rule.
struct AlertStatus {
    AlertRule rule;
    AlertPhase phase = AlertPhase::ok;
    double last_value = 0;  ///< the evaluated input at the last tick
    bool condition = false;
    double since = 0;  ///< when the current phase was entered
    /// While firing: when the condition last went clear (< 0 while it
    /// still holds). The resolve edge of the for-duration hysteresis.
    double clear_since = -1;
    std::int64_t fired = 0;     ///< ok->firing transitions so far
    std::int64_t resolved = 0;  ///< firing->ok transitions so far
};

// ---------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------

/// One exposition sample: `name{labels} value`.
struct PromSample {
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0;
};

/// A parsed exposition document (the subset the monitor emits: # HELP,
/// # TYPE, and plain samples -- enough for obs_top and round-trip tests).
struct PromDocument {
    std::vector<PromSample> samples;
    std::map<std::string, std::string> help;  ///< metric -> HELP text
    std::map<std::string, std::string> type;  ///< metric -> TYPE

    const PromSample* find(const std::string& name,
                           const std::string& label_key = "",
                           const std::string& label_value = "") const;
    double value(const std::string& name, double fallback = 0) const;
    bool has(const std::string& name) const
    {
        return find(name) != nullptr;
    }
};

bool parse_prometheus_text(const std::string& text, PromDocument& out);

/// Reads and parses `path`; false when unreadable or malformed.
bool load_prometheus_file(const std::string& path, PromDocument& out);

/// `solve.fail.max_iters` -> `bsis_solve_fail_max_iters` (the exposition
/// name of a registry metric: `bsis_` prefix, non-[a-zA-Z0-9_:] -> `_`).
std::string prometheus_name(const std::string& metric);

// ---------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------

struct MonitorConfig {
    /// Sampler period of the background thread (start()).
    double tick_seconds = 0.25;
    /// Capacity of every per-metric time-series ring.
    int ring_capacity = 240;
    /// When non-empty, the Prometheus exposition is atomically rewritten
    /// here every tick (write to `<path>.tmp`, then rename).
    std::string prom_path;
    /// When true, the exposition is also served on a localhost HTTP
    /// endpoint (GET anything -> 200 text/plain). `http_port` 0 binds an
    /// ephemeral port; see Monitor::http_port().
    bool http = false;
    int http_port = 0;
    /// Alert rules; default_alert_rules() when empty and
    /// `use_default_rules` is set.
    std::vector<AlertRule> rules;
    bool use_default_rules = true;
};

class Monitor {
public:
    explicit Monitor(MetricsRegistry& registry, MonitorConfig config = {});
    ~Monitor();

    Monitor(const Monitor&) = delete;
    Monitor& operator=(const Monitor&) = delete;

    /// Launches the sampler thread (and the HTTP endpoint when
    /// configured). Idempotent.
    void start();

    /// Stops the sampler thread after one final sample, so short runs
    /// still publish their tail. Idempotent; the destructor calls it.
    void stop();

    bool running() const;

    /// One sampling tick at wall-clock now (what the background thread
    /// runs); thread-safe.
    void sample_now();

    /// One sampling tick at an explicit time -- the deterministic
    /// entry point the tests drive. Times must be non-decreasing.
    void sample_at(double now_seconds);

    std::int64_t ticks() const;

    /// The Prometheus exposition rendered at the last tick ("" before the
    /// first).
    std::string prometheus_text() const;

    /// The bound HTTP port (differs from config when ephemeral); 0 when
    /// the endpoint is off.
    int http_port() const;

    /// Snapshot of every rule's live state.
    std::vector<AlertStatus> alerts() const;

    /// Rules currently in the firing phase.
    int firing() const;

    /// Per-metric series copies (empty when the metric is unknown).
    /// Counters expose their rate track, gauges their value track,
    /// histograms p50/p95 tracks.
    std::vector<SeriesPoint> counter_rate(const std::string& name) const;
    std::vector<SeriesPoint> gauge_values(const std::string& name) const;
    std::vector<SeriesPoint> histogram_quantile(const std::string& name,
                                                double q) const;

    const MonitorConfig& config() const { return config_; }

private:
    struct CounterSeries {
        TimeSeriesRing rate;
        double last_total = 0;
        bool primed = false;  ///< first sight only records the baseline
        double last_rate = 0;
    };
    struct HistSeries {
        TimeSeriesRing p50;
        TimeSeriesRing p95;
    };

    void sample_locked(double now);
    void evaluate_alerts_locked(const MetricsSnapshot& snap, double now);
    double eval_rule_locked(const AlertRule& rule,
                            const MetricsSnapshot& snap,
                            bool& present) const;
    std::string render_prometheus_locked(const MetricsSnapshot& snap,
                                         double now) const;
    void write_prom_file_locked() const;
    void run_sampler();
    void run_http();
    bool open_http_socket();

    MetricsRegistry& registry_;
    MonitorConfig config_;

    mutable std::mutex mutex_;
    std::map<std::string, CounterSeries> counters_;
    std::map<std::string, TimeSeriesRing> gauges_;
    std::map<std::string, HistSeries> histograms_;
    std::vector<AlertStatus> alerts_;
    /// Exposition text is rendered eagerly only when a per-tick consumer
    /// exists (promfile or HTTP endpoint); otherwise the tick just marks
    /// it stale and prometheus_text() re-renders on demand from the last
    /// snapshot, keeping unconsumed `--monitor` ticks cheap.
    mutable std::string prom_text_;
    mutable bool prom_stale_ = false;
    MetricsSnapshot last_snap_;
    std::int64_t ticks_ = 0;
    double last_tick_time_ = 0;
    bool have_last_tick_ = false;

    std::thread sampler_;
    std::thread http_thread_;
    mutable std::mutex stop_mutex_;
    std::condition_variable stop_cv_;
    bool stop_requested_ = false;
    bool running_ = false;
    int http_fd_ = -1;
    int bound_http_port_ = 0;
};

}  // namespace bsis::obs
