
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xgc/collision_operator.cpp" "src/xgc/CMakeFiles/bsis_xgc.dir/collision_operator.cpp.o" "gcc" "src/xgc/CMakeFiles/bsis_xgc.dir/collision_operator.cpp.o.d"
  "/root/repo/src/xgc/distribution.cpp" "src/xgc/CMakeFiles/bsis_xgc.dir/distribution.cpp.o" "gcc" "src/xgc/CMakeFiles/bsis_xgc.dir/distribution.cpp.o.d"
  "/root/repo/src/xgc/grid.cpp" "src/xgc/CMakeFiles/bsis_xgc.dir/grid.cpp.o" "gcc" "src/xgc/CMakeFiles/bsis_xgc.dir/grid.cpp.o.d"
  "/root/repo/src/xgc/picard.cpp" "src/xgc/CMakeFiles/bsis_xgc.dir/picard.cpp.o" "gcc" "src/xgc/CMakeFiles/bsis_xgc.dir/picard.cpp.o.d"
  "/root/repo/src/xgc/workload.cpp" "src/xgc/CMakeFiles/bsis_xgc.dir/workload.cpp.o" "gcc" "src/xgc/CMakeFiles/bsis_xgc.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/bsis_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/lapack/CMakeFiles/bsis_lapack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
