// Fig. 2 of the paper: eigenvalue distributions of the ion and electron
// collision matrices (ion clustered around 1 on a log real axis, electron
// spread over a wider range of real parts), plus the Fig. 4 sparsity
// characterization (992 rows, 9 nonzeros per row) and the condition
// numbers motivating iterative solvers (Section II).
//
// The dense Hessenberg-QR eigensolver is O(n^3); the full 992-row spectra
// take a couple of minutes on one core, so the default runs the paper grid
// scaled to 16 x 15 = 240 rows (same stencil, same physics, same spectral
// shape) and --full switches to 32 x 31 = 992.
#include <cstring>
#include <fstream>
#include <iostream>

#include "common.hpp"
#include "lapack/dense.hpp"
#include "lapack/eigen.hpp"
#include "matrix/stats.hpp"

int main(int argc, char** argv)
{
    using namespace bsis;
    const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

    xgc::WorkloadParams wp;
    wp.n_vpar = full ? 32 : 16;
    wp.n_vperp = full ? 31 : 15;
    wp.num_mesh_nodes = 1;
    xgc::CollisionWorkload w(wp);
    auto a = w.make_matrix_batch();
    w.assemble_batch(w.distributions(), w.distributions(), 0.0035, a);

    // --- Fig. 4: sparsity pattern characterization ---
    const auto stats = compute_stats(a);
    Table pattern_table({"quantity", "value"});
    pattern_table.new_row().add("rows").add(stats.rows);
    pattern_table.new_row().add("nonzeros").add(stats.nnz);
    pattern_table.new_row()
        .add("max_nnz_per_row")
        .add(stats.max_nnz_per_row);
    pattern_table.new_row()
        .add("min_nnz_per_row (boundary)")
        .add(stats.min_nnz_per_row);
    pattern_table.new_row().add("half_bandwidth_kl").add(stats.kl);
    pattern_table.new_row().add("half_bandwidth_ku").add(stats.ku);
    pattern_table.new_row()
        .add("numerically_symmetric")
        .add(stats.numerically_symmetric ? "yes" : "no");
    bench::emit("fig4_pattern", "Fig. 4: sparsity pattern of one entry",
                pattern_table);

    // --- Fig. 2: spectra of the two species ---
    Table table({"species", "min_real", "max_real", "max_abs_imag",
                 "spread", "fraction_within_0.1_of_1", "kappa_1_estimate"});
    Table eig_csv({"species", "real", "imag"});
    const char* names[2] = {"ion", "electron"};
    for (size_type s = 0; s < 2; ++s) {
        const auto eigs = lapack::eigenvalues(a, s);
        const auto summary = lapack::summarize_spectrum(eigs);
        auto dense = to_dense(a);
        const auto kappa = lapack::estimate_condition_1(
            ConstDenseView<real_type>(dense.entry(s)));
        table.new_row()
            .add(names[s])
            .add(summary.min_real)
            .add(summary.max_real)
            .add(summary.max_abs_imag)
            .add(summary.spread, 4)
            .add(summary.clustered_fraction, 3)
            .add(kappa, 4);
        for (const auto& e : eigs) {
            eig_csv.new_row().add(names[s]).add(e.real(), 12).add(e.imag(),
                                                                  12);
        }
    }
    bench::emit("fig2_eigenvalues",
                std::string("Fig. 2: spectra of the collision matrices (") +
                    (full ? "992" : "240") + " rows)",
                table);
    eig_csv.write_csv("fig2_eigenvalues_points.csv");
    std::cout << "[all eigenvalues written to fig2_eigenvalues_points.csv]\n";

    std::cout << "\nShape check (paper: ion eigenvalues clustered around 1,"
                 "\n             electron real parts spread wider; both "
                 "well-conditioned)\n";
    return 0;
}
