// Batched preconditioned Conjugate Gradient kernel.
//
// For symmetric positive definite batch entries. Not the paper's headline
// solver (the collision matrices are nonsymmetric) but part of the
// "several preconditionable iterative solvers" the library provides
// (Section IV-B) and the reference solver for SPD test problems.
#pragma once

#include <cmath>
#include <vector>

#include "blas/kernels.hpp"
#include "core/workspace.hpp"
#include "obs/telemetry.hpp"
#include "util/types.hpp"

namespace bsis {

/// Scratch vectors: r, z, p, q.
inline constexpr int cg_work_vectors = 4;

/// Solves A x = b with preconditioned CG. `history`, when non-null,
/// receives the residual norm at the top of every iteration (same
/// contract as `bicgstab_kernel`).
template <typename MatrixView, typename Prec, typename Stop>
EntryResult cg_kernel(const MatrixView& a, ConstVecView<real_type> b,
                      VecView<real_type> x, const Prec& prec,
                      const Stop& stop, int max_iters, Workspace& ws,
                      int work_offset = 0,
                      std::vector<real_type>* history = nullptr)
{
    auto r = ws.slot(work_offset + 0);
    auto z = ws.slot(work_offset + 1);
    auto p = ws.slot(work_offset + 2);
    auto q = ws.slot(work_offset + 3);

    const real_type b_norm = blas::nrm2(b);

    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    blas::axpby(real_type{1}, b, real_type{-1}, r);
    real_type r_norm = obs::traced(
        obs::Phase::reduction, "reduction",
        [&] { return blas::nrm2(ConstVecView<real_type>(r)); });

    obs::traced(obs::Phase::precond, "precond_apply",
                [&] { prec.apply(ConstVecView<real_type>(r), z); });
    blas::copy(ConstVecView<real_type>(z), p);
    real_type rz = obs::traced(obs::Phase::reduction, "reduction", [&] {
        return blas::dot(ConstVecView<real_type>(r),
                         ConstVecView<real_type>(z));
    });
    const real_type r0 = r_norm;

    if (history != nullptr) {
        history->clear();
        history->push_back(r_norm);
    }
    for (int iter = 0; iter < max_iters; ++iter) {
        if (stop.done(r_norm, b_norm)) {
            return {iter, r_norm, true, FailureClass::converged};
        }
        if (!std::isfinite(r_norm)) {
            return {iter, r_norm, false, FailureClass::non_finite};
        }
        if (rz == real_type{0}) {
            // The search direction collapsed: alpha = rz / pq undefined.
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(p), q); });
        const real_type pq = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(p),
                             ConstVecView<real_type>(q));
        });
        if (pq <= real_type{0}) {
            // Indefinite matrix: CG is not applicable.
            return {iter, r_norm, false, FailureClass::breakdown_rho};
        }
        const real_type alpha = rz / pq;
        blas::axpy(alpha, ConstVecView<real_type>(p), x);
        // r -= alpha * q fused with ||r|| (one sweep instead of two).
        r_norm = obs::traced(obs::Phase::update, "update", [&] {
            return blas::axpy_nrm2(-alpha, ConstVecView<real_type>(q), r);
        });
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(r), z); });
        const real_type rz_new = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::dot(ConstVecView<real_type>(r),
                             ConstVecView<real_type>(z));
        });
        const real_type beta = rz_new / rz;
        obs::traced(obs::Phase::update, "update", [&] {
            blas::axpby(real_type{1}, ConstVecView<real_type>(z), beta, p);
        });
        rz = rz_new;
        if (history != nullptr) {
            history->push_back(r_norm);
        }
    }
    {
        const bool done = stop.done(r_norm, b_norm);
        return {max_iters, r_norm, done,
                classify_exhausted(r_norm, r0, done)};
    }
}

}  // namespace bsis
