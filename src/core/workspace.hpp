// Per-thread solver workspace.
//
// On the GPU, one thread block owns one system's intermediate vectors
// (shared memory plus a global spill block). On the host, the batch driver
// allocates one Workspace per OpenMP thread and reuses it across the
// systems that thread processes, so no allocation happens inside the solve
// loop.
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// Fixed number of equal-length scratch vectors, handed out as views.
class Workspace {
public:
    Workspace() = default;

    Workspace(index_type length, int num_slots)
        : length_(length),
          num_slots_(num_slots),
          storage_(static_cast<std::size_t>(length) * num_slots, 0.0)
    {
        BSIS_ENSURE_ARG(length >= 0 && num_slots >= 0,
                        "negative workspace size");
    }

    index_type length() const { return length_; }
    int num_slots() const { return num_slots_; }

    /// Grows (never shrinks) to at least the requested shape.
    void require(index_type length, int num_slots)
    {
        if (length > length_ || num_slots > num_slots_) {
            length_ = std::max(length, length_);
            num_slots_ = std::max(num_slots, num_slots_);
            storage_.assign(
                static_cast<std::size_t>(length_) * num_slots_, 0.0);
        }
    }

    VecView<real_type> slot(int i)
    {
        BSIS_ASSERT(i >= 0 && i < num_slots_);
        return {storage_.data() + static_cast<std::size_t>(i) * length_,
                length_};
    }

private:
    index_type length_ = 0;
    int num_slots_ = 0;
    std::vector<real_type> storage_;
};

/// Per-system solve outcome returned by the solver kernels.
struct EntryResult {
    int iterations = 0;
    real_type residual_norm = 0.0;
    bool converged = false;
};

}  // namespace bsis
