#include "xgc/workload.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace bsis::xgc {

CollisionWorkload::CollisionWorkload(const WorkloadParams& params)
    : params_(params), grid_(params.n_vpar, params.n_vperp)
{
    BSIS_ENSURE_ARG(params.num_mesh_nodes >= 1, "need at least one node");
    BSIS_ENSURE_ARG(params.include_ions || params.include_electrons,
                    "need at least one species");
    if (params.include_ions) {
        BSIS_ENSURE_ARG(params.num_ion_species >= 1,
                        "need at least one ion species");
        for (int i = 0; i < params.num_ion_species; ++i) {
            species_.push_back(ion_species(i));
        }
    }
    if (params.include_electrons) {
        species_.push_back(electron_species());
    }
    for (auto& sp : species_) {
        sp.reference_density = params.reference_density;
    }
    for (const auto& sp : species_) {
        operators_.emplace_back(grid_, sp);
    }

    // Per-node plasma profiles: smoothly varying density / temperature /
    // flow around the reference state, as along a flux surface.
    f_ = BatchVector<real_type>(num_systems(), grid_.rows());
    Rng rng(params.seed);
    for (size_type node = 0; node < params.num_mesh_nodes; ++node) {
        PlasmaState state;
        state.density =
            params.reference_density *
            (1.0 + params.density_variation * (2 * rng.uniform() - 1));
        state.temperature =
            1.0 + params.temperature_variation * (2 * rng.uniform() - 1);
        state.u_par = params.flow_variation * (2 * rng.uniform() - 1);
        for (size_type s = 0; s < num_species(); ++s) {
            // Edge plasmas are non-Maxwellian: start each species as a
            // bulk Maxwellian plus a shifted hot beam (a bump-on-tail-like
            // state the collision step then relaxes). The non-equilibrium
            // shape is what gives the Picard loop real work and makes the
            // warm-started iteration counts decay gradually, as in
            // Table III of the paper.
            auto fv = f_.entry(node * num_species() + s);
            PlasmaState bulk = state;
            bulk.density = 0.82 * state.density;
            maxwellian(grid_, bulk, fv);
            PlasmaState beam = state;
            beam.density = 0.18 * state.density;
            beam.u_par = state.u_par +
                         1.3 * std::sqrt(state.temperature) *
                             (1 + 0.2 * (2 * rng.uniform() - 1));
            beam.temperature = 0.45 * state.temperature;
            std::vector<real_type> beam_f(
                static_cast<std::size_t>(grid_.rows()));
            maxwellian(grid_, beam,
                       VecView<real_type>{beam_f.data(), grid_.rows()});
            for (index_type idx = 0; idx < grid_.rows(); ++idx) {
                fv[idx] += beam_f[static_cast<std::size_t>(idx)];
            }
        }
    }
}

BatchCsr<real_type> CollisionWorkload::make_matrix_batch() const
{
    const auto& pattern = operators_.front().pattern();
    return BatchCsr<real_type>(num_systems(), pattern.rows(),
                               pattern.row_ptrs, pattern.col_idxs);
}

void CollisionWorkload::assemble_batch(const BatchVector<real_type>& iterate,
                                       const BatchVector<real_type>& anchor,
                                       real_type dt,
                                       BatchCsr<real_type>& a) const
{
    BSIS_ENSURE_DIMS(a.num_batch() == num_systems(),
                     "matrix batch size mismatch");
    BSIS_ENSURE_DIMS(iterate.num_batch() == num_systems() &&
                         anchor.num_batch() == num_systems(),
                     "iterate batch size mismatch");
    const size_type ns = num_species();
    std::vector<PlasmaState> states(static_cast<std::size_t>(ns));
    std::vector<std::vector<real_type>> tables(
        static_cast<std::size_t>(ns));
    for (size_type node = 0; node < num_mesh_nodes(); ++node) {
        // Maxwellian anchor from the conserved pre-step moments, shell
        // screening from each iterate's shape.
        for (size_type s = 0; s < ns; ++s) {
            const size_type sys = node * ns + s;
            states[static_cast<std::size_t>(s)] =
                system_moments(anchor, sys);
            operators_[static_cast<std::size_t>(s)].set_background(
                states[static_cast<std::size_t>(s)], iterate.entry(sys));
            tables[static_cast<std::size_t>(s)] =
                operators_[static_cast<std::size_t>(s)].background_table();
        }
        // ...then the field-particle coupling to the other species of the
        // same mesh node, and the assembly.
        for (size_type s = 0; s < ns; ++s) {
            auto& op = operators_[static_cast<std::size_t>(s)];
            const real_type w = species_[static_cast<std::size_t>(s)]
                                    .cross_species_weight;
            if (ns >= 2 && w > 0) {
                // Field-particle coupling to the mean of the other
                // species' screenings.
                std::vector<real_type> other(
                    tables[static_cast<std::size_t>(s)].size(), 0.0);
                for (size_type s2 = 0; s2 < ns; ++s2) {
                    if (s2 == s) {
                        continue;
                    }
                    for (std::size_t k = 0; k < other.size(); ++k) {
                        other[k] +=
                            tables[static_cast<std::size_t>(s2)][k] /
                            static_cast<real_type>(ns - 1);
                    }
                }
                op.blend_background(other, w);
            }
            op.assemble(states[static_cast<std::size_t>(s)], dt,
                        a.values(node * ns + s));
        }
    }
}

}  // namespace bsis::xgc
