// Tests for the SIMD batch-lockstep execution path: per-entry equivalence
// with the scalar path across widths and formats, degenerate batch shapes
// (fewer systems than lanes, ragged tails, empty batches, instantly
// converged lanes beside iterating lane-mates), warm starts, relative
// stopping, and the fallback rules for unsupported compositions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/solver.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

struct Problem {
    BatchCsr<real_type> a;
    BatchVector<real_type> b;

    static Problem make(size_type nbatch, index_type nx = 8,
                        index_type ny = 7, bool spd = false,
                        unsigned rhs_seed = 55)
    {
        SyntheticStencilParams params;
        params.seed = 1234;
        if (spd) {
            params.advection = 0.0;
            params.perturbation = 0.0;
        }
        Problem p{make_synthetic_batch(nx, ny, StencilKind::nine_point,
                                       nbatch, params),
                  BatchVector<real_type>(nbatch, nx * ny)};
        Rng rng(rhs_seed);
        for (size_type i = 0; i < nbatch; ++i) {
            auto bv = p.b.entry(i);
            for (index_type k = 0; k < bv.len; ++k) {
                bv[k] = rng.uniform(-1.0, 1.0);
            }
        }
        return p;
    }
};

real_type residual_norm(const BatchCsr<real_type>& a, size_type entry,
                        ConstVecView<real_type> x, ConstVecView<real_type> b)
{
    std::vector<real_type> r(static_cast<std::size_t>(b.len));
    spmv(a.entry(entry), x, VecView<real_type>{r.data(), b.len});
    real_type sum = 0;
    for (index_type i = 0; i < b.len; ++i) {
        const real_type d = r[static_cast<std::size_t>(i)] - b[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

/// Solves the same batch on the scalar and lockstep paths and checks the
/// per-entry results agree: identical converged flags, iteration counts
/// within one, residual norms to rounding at equal counts, and a truly
/// small residual of the lockstep solution for converged entries.
template <typename BatchMatrix>
void expect_lockstep_matches_scalar(const BatchCsr<real_type>& csr,
                                    const BatchMatrix& a,
                                    const BatchVector<real_type>& b,
                                    SolverSettings settings, int width)
{
    const size_type nbatch = a.num_batch();
    BatchVector<real_type> x_scalar(nbatch, a.rows());
    BatchVector<real_type> x_lock(nbatch, a.rows());
    settings.lockstep_width = 0;
    const auto scalar = solve_batch(a, b, x_scalar, settings);
    settings.lockstep_width = width;
    const auto lock = solve_batch(a, b, x_lock, settings);
    ASSERT_EQ(lock.log.num_batch(), nbatch);
    for (size_type i = 0; i < nbatch; ++i) {
        EXPECT_EQ(scalar.log.converged(i), lock.log.converged(i))
            << "system " << i;
        EXPECT_NEAR(scalar.log.iterations(i), lock.log.iterations(i), 1)
            << "system " << i;
        if (scalar.log.iterations(i) == lock.log.iterations(i)) {
            const real_type rs = scalar.log.residual_norm(i);
            const real_type rl = lock.log.residual_norm(i);
            EXPECT_NEAR(rs, rl,
                        1e-6 * std::max({std::abs(rs), std::abs(rl),
                                         real_type{1e-30}}))
                << "system " << i;
        }
        if (lock.log.converged(i) &&
            settings.stop == StopType::abs_residual) {
            EXPECT_LT(residual_norm(csr, i, x_lock.entry(i), b.entry(i)),
                      10 * settings.tolerance)
                << "system " << i;
        }
    }
}

SolverSettings bicgstab_jacobi()
{
    SolverSettings s;
    s.solver = SolverType::bicgstab;
    s.precond = PrecondType::jacobi;
    s.tolerance = 1e-10;
    return s;
}

class LockstepWidth : public ::testing::TestWithParam<int> {};

TEST_P(LockstepWidth, CsrMatchesScalar)
{
    auto p = Problem::make(13);
    expect_lockstep_matches_scalar(p.a, p.a, p.b, bicgstab_jacobi(),
                                   GetParam());
}

TEST_P(LockstepWidth, EllMatchesScalar)
{
    auto p = Problem::make(13);
    const auto ell = to_ell(p.a);
    expect_lockstep_matches_scalar(p.a, ell, p.b, bicgstab_jacobi(),
                                   GetParam());
}

TEST_P(LockstepWidth, SellpMatchesScalar)
{
    auto p = Problem::make(13);
    const auto sellp = to_sellp(p.a, 16);
    expect_lockstep_matches_scalar(p.a, sellp, p.b, bicgstab_jacobi(),
                                   GetParam());
}

TEST_P(LockstepWidth, IdentityPrecondMatchesScalar)
{
    auto p = Problem::make(9);
    auto s = bicgstab_jacobi();
    s.precond = PrecondType::identity;
    s.max_iterations = 2000;
    expect_lockstep_matches_scalar(p.a, p.a, p.b, s, GetParam());
}

TEST_P(LockstepWidth, CgOnSpdBatchMatchesScalar)
{
    auto p = Problem::make(11, 8, 7, /*spd=*/true);
    auto s = bicgstab_jacobi();
    s.solver = SolverType::cg;
    expect_lockstep_matches_scalar(p.a, p.a, p.b, s, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Widths, LockstepWidth, ::testing::Values(2, 4, 8));

TEST(Lockstep, BatchSmallerThanWidth)
{
    // 3 systems through width-8 groups: most lanes never get work.
    auto p = Problem::make(3);
    expect_lockstep_matches_scalar(p.a, p.a, p.b, bicgstab_jacobi(), 8);
}

TEST(Lockstep, RaggedTail)
{
    // 10 % 4 != 0: the last refill round fills only part of a group.
    auto p = Problem::make(10);
    expect_lockstep_matches_scalar(p.a, p.a, p.b, bicgstab_jacobi(), 4);
}

TEST(Lockstep, EmptyBatch)
{
    auto p = Problem::make(1);
    BatchCsr<real_type> empty(0, p.a.rows(), p.a.row_ptrs(),
                              p.a.col_idxs());
    BatchVector<real_type> b(0, p.a.rows());
    BatchVector<real_type> x(0, p.a.rows());
    auto s = bicgstab_jacobi();
    s.lockstep_width = 4;
    const auto result = solve_batch(empty, b, x, s);
    EXPECT_EQ(result.log.num_batch(), 0);
}

TEST(Lockstep, ZeroRhsLanesConvergeInstantlyBesideIteratingLaneMates)
{
    // Zero right-hand sides converge at iteration 0 with a zero solution
    // while their lane-mates keep iterating; the lanes must be refilled
    // and the neighbours' results unaffected.
    auto p = Problem::make(12);
    for (size_type i : {size_type{0}, size_type{3}, size_type{7}}) {
        auto bv = p.b.entry(i);
        for (index_type k = 0; k < bv.len; ++k) {
            bv[k] = 0.0;
        }
    }
    auto s = bicgstab_jacobi();
    s.lockstep_width = 4;
    BatchVector<real_type> x(12, p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    for (size_type i : {size_type{0}, size_type{3}, size_type{7}}) {
        EXPECT_EQ(result.log.iterations(i), 0);
        EXPECT_EQ(result.log.residual_norm(i), 0.0);
        for (index_type k = 0; k < p.a.rows(); ++k) {
            EXPECT_EQ(x.entry(i)[k], 0.0);
        }
    }
    for (size_type i : {size_type{1}, size_type{2}, size_type{4}}) {
        EXPECT_GT(result.log.iterations(i), 0);
        EXPECT_LT(residual_norm(p.a, i, x.entry(i), p.b.entry(i)), 1e-9);
    }
    // The whole batch must also match the scalar path.
    expect_lockstep_matches_scalar(p.a, p.a, p.b, bicgstab_jacobi(), 4);
}

TEST(Lockstep, WarmStartMatchesScalar)
{
    auto p = Problem::make(7);
    auto s = bicgstab_jacobi();
    s.use_initial_guess = true;
    // Both paths start from the same nonzero guess.
    BatchVector<real_type> x_scalar(7, p.a.rows());
    BatchVector<real_type> x_lock(7, p.a.rows());
    Rng rng(99);
    for (size_type i = 0; i < 7; ++i) {
        for (index_type k = 0; k < p.a.rows(); ++k) {
            const real_type g = rng.uniform(-0.1, 0.1);
            x_scalar.entry(i)[k] = g;
            x_lock.entry(i)[k] = g;
        }
    }
    const auto scalar = solve_batch(p.a, p.b, x_scalar, s);
    s.lockstep_width = 4;
    const auto lock = solve_batch(p.a, p.b, x_lock, s);
    for (size_type i = 0; i < 7; ++i) {
        EXPECT_EQ(scalar.log.converged(i), lock.log.converged(i));
        EXPECT_NEAR(scalar.log.iterations(i), lock.log.iterations(i), 1);
        EXPECT_LT(residual_norm(p.a, i, x_lock.entry(i), p.b.entry(i)),
                  1e-9);
    }
}

TEST(Lockstep, RelativeResidualStopMatchesScalar)
{
    auto p = Problem::make(9);
    auto s = bicgstab_jacobi();
    s.stop = StopType::rel_residual;
    s.tolerance = 1e-8;
    expect_lockstep_matches_scalar(p.a, p.a, p.b, s, 4);
}

TEST(Lockstep, OddWidthRoundsDownToSupported)
{
    auto p = Problem::make(6);
    // Width 3 rounds down to 2; width 100 rounds down to 16. Both must
    // still match the scalar path, and the work profile must report the
    // effective lane count.
    for (int requested : {3, 100}) {
        auto s = bicgstab_jacobi();
        s.lockstep_width = requested;
        BatchVector<real_type> x(6, p.a.rows());
        const auto result = solve_batch(p.a, p.b, x, s);
        EXPECT_TRUE(result.log.all_converged());
        EXPECT_EQ(result.work.simd_lanes, requested == 3 ? 2 : 16);
    }
    expect_lockstep_matches_scalar(p.a, p.a, p.b, bicgstab_jacobi(), 3);
}

TEST(Lockstep, UnsupportedCompositionsFallBackToScalarPath)
{
    auto p = Problem::make(5);
    BatchVector<real_type> x(5, p.a.rows());

    // Block-Jacobi preconditioning has no lockstep kernel.
    auto s = bicgstab_jacobi();
    s.precond = PrecondType::block_jacobi;
    s.lockstep_width = 8;
    auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_EQ(result.work.simd_lanes, 1);

    // Unfused kernels keep the scalar reference composition.
    s = bicgstab_jacobi();
    s.fused_kernels = false;
    s.lockstep_width = 8;
    result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_EQ(result.work.simd_lanes, 1);

    // Solvers without a lockstep kernel fall back too.
    s = bicgstab_jacobi();
    s.solver = SolverType::gmres;
    s.lockstep_width = 8;
    result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_EQ(result.work.simd_lanes, 1);

    // Width below 2 selects the scalar path.
    s = bicgstab_jacobi();
    s.lockstep_width = 1;
    result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_EQ(result.work.simd_lanes, 1);

    // BatchDense has no shared sparse pattern to ELL-ize.
    const auto dense = to_dense(p.a);
    s = bicgstab_jacobi();
    s.lockstep_width = 8;
    result = solve_batch(dense, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_EQ(result.work.simd_lanes, 1);
}

TEST(Lockstep, WorkProfileReportsLanes)
{
    auto p = Problem::make(4);
    BatchVector<real_type> x(4, p.a.rows());
    auto s = bicgstab_jacobi();
    s.lockstep_width = 8;
    const auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_EQ(result.work.simd_lanes, 8);
}

TEST(Lockstep, SolveBatchSellpEndToEnd)
{
    // The SELL-P instantiation of solve_batch (scalar and lockstep paths).
    auto p = Problem::make(6);
    const auto sellp = to_sellp(p.a, 32);
    BatchVector<real_type> x(6, p.a.rows());
    auto s = bicgstab_jacobi();
    auto result = solve_batch(sellp, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    for (size_type i = 0; i < 6; ++i) {
        EXPECT_LT(residual_norm(p.a, i, x.entry(i), p.b.entry(i)), 1e-9);
    }
    s.lockstep_width = 8;
    result = solve_batch(sellp, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    EXPECT_EQ(result.work.simd_lanes, 8);
}

}  // namespace
}  // namespace bsis
