file(REMOVE_RECURSE
  "CMakeFiles/bench_related_direct.dir/bench_related_direct.cpp.o"
  "CMakeFiles/bench_related_direct.dir/bench_related_direct.cpp.o.d"
  "bench_related_direct"
  "bench_related_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
