#!/usr/bin/env bash
# Perf-regression run: builds, then times the canonical 992-row collision
# batch (BiCGStab+Jacobi, CSR and ELL, fused/unfused/pipelined host
# kernels, modeled warp-32/warp-64 devices) and writes BENCH_solvers.json
# at the repo root for commit-over-commit comparison.
#
# Baseline refresh cadence: BENCH_solvers.json is COMMITTED and serves as
# the telemetry-overhead gate's reference (the csr/fused median with
# telemetry compiled in but disabled must stay within 2% of it). Refresh
# it -- rerun this script on an otherwise idle machine and commit the new
# file -- whenever a PR intentionally changes solver hot-path performance,
# the workload size, or the measurement machine; do NOT refresh it to
# paper over an unexplained slowdown. When a committed baseline exists it
# is passed to the bench automatically and the gate runs; on a fresh
# checkout without one, the run just writes the first baseline.
#
# Usage: scripts/bench_regression.sh            (full run, ~1000 systems)
#        BSIS_QUICK=1 scripts/bench_regression.sh   (smoke-size run)
#        BUILD_DIR=out scripts/bench_regression.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_regression

BASELINE_ARGS=()
if git show HEAD:BENCH_solvers.json > "$BUILD_DIR/BENCH_baseline.json" \
    2> /dev/null; then
  BASELINE_ARGS=(--baseline "$BUILD_DIR/BENCH_baseline.json")
else
  echo "bench_regression.sh: no committed baseline; writing the first one"
fi

"$BUILD_DIR/bench/bench_regression" --out BENCH_solvers.json \
    --metrics-out "$BUILD_DIR/BENCH_metrics.json" "${BASELINE_ARGS[@]}"

# Performance-attribution gate: render the telemetry-live repetitions'
# metrics snapshot through tools/solve_report and fail on drift alarms
# (the cost model no longer explaining the measured phase mix) or on a
# phase bandwidth outside (0, peak].
echo "-- solve_report drift/bandwidth gate"
cmake --build "$BUILD_DIR" -j "$(nproc)" --target solve_report
"$BUILD_DIR/tools/solve_report" "$BUILD_DIR/BENCH_metrics.json" \
    --out="$BUILD_DIR/BENCH_report.txt" --gate-drift --gate-bandwidth
echo "   report at $BUILD_DIR/BENCH_report.txt"

# Pipelined gate, re-checked here from the written JSON in case the bench
# binary's internal gate is ever relaxed: on a full-size run, the
# pipelined lockstep8 row must beat classic lockstep8 (the variant's whole
# point is fewer, fatter sweeps per iteration).
if [ "${BSIS_QUICK:-0}" != "1" ]; then
  python3 - <<'EOF'
import json, sys
doc = json.load(open("BENCH_solvers.json"))
if doc.get("smoke"):
    sys.exit(0)
rows = {(c["format"], c["variant"]): c["median_wall_seconds"]
        for c in doc["host"]}
classic = rows.get(("csr", "lockstep8"))
pipelined = rows.get(("csr", "pipelined-lockstep8"))
if classic is None or pipelined is None:
    sys.exit("bench_regression.sh: missing lockstep8 rows in JSON")
if not pipelined < classic:
    sys.exit("bench_regression.sh: pipelined lockstep8 (%g s) does not "
             "beat classic lockstep8 (%g s)" % (pipelined, classic))
print("bench_regression.sh: pipelined lockstep8 gate OK "
      "(%g s vs %g s)" % (pipelined, classic))
EOF
fi

# Append a one-line history record so commit-over-commit medians can be
# plotted without digging through git history: timestamp, git SHA, the
# per-variant medians, and the telemetry/monitor overhead percentages.
mkdir -p results
python3 - <<'EOF'
import json, subprocess, time
doc = json.load(open("BENCH_solvers.json"))
sha = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                     capture_output=True, text=True).stdout.strip()
entry = {
    "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "git_sha": sha or "unknown",
    "smoke": bool(doc.get("smoke")),
    "num_systems": doc.get("num_systems"),
    "host_median_wall_seconds": {
        "%s/%s" % (c["format"], c["variant"]): c["median_wall_seconds"]
        for c in doc["host"]},
    "telemetry_overhead_percent":
        doc["telemetry"]["enabled_overhead_percent"],
    "monitor_overhead_percent": doc["monitor"]["overhead_percent"],
}
with open("results/bench_history.jsonl", "a") as out:
    out.write(json.dumps(entry, sort_keys=True) + "\n")
print("bench_regression.sh: appended results/bench_history.jsonl (%s)"
      % entry["utc"])
EOF

echo "bench_regression.sh: wrote $(pwd)/BENCH_solvers.json"
