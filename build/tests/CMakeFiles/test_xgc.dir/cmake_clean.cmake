file(REMOVE_RECURSE
  "CMakeFiles/test_xgc.dir/test_xgc.cpp.o"
  "CMakeFiles/test_xgc.dir/test_xgc.cpp.o.d"
  "test_xgc"
  "test_xgc.pdb"
  "test_xgc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
