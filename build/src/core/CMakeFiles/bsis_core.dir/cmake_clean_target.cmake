file(REMOVE_RECURSE
  "libbsis_core.a"
)
