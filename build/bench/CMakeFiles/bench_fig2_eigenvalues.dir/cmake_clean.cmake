file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_eigenvalues.dir/bench_fig2_eigenvalues.cpp.o"
  "CMakeFiles/bench_fig2_eigenvalues.dir/bench_fig2_eigenvalues.cpp.o.d"
  "bench_fig2_eigenvalues"
  "bench_fig2_eigenvalues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_eigenvalues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
