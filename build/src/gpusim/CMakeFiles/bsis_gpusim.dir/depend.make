# Empty dependencies file for bsis_gpusim.
# This may be replaced when dependencies are built.
