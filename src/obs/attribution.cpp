#include "obs/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>

#include "obs/events.hpp"
#include "obs/json.hpp"

namespace bsis::obs {

namespace {

constexpr double vb = sizeof(real_type);   // 8: value bytes
constexpr double ib = sizeof(index_type);  // 4: index bytes

/// One SpMV application of one system.
PhaseWork spmv_work(const LedgerShape& shape, LedgerFormat format)
{
    const double n = shape.rows;
    const double stored = shape.stored_nnz;
    PhaseWork w;
    switch (format) {
    case LedgerFormat::csr:
        // values + column indices + row pointers + x gather, y write.
        w.bytes_read = stored * (vb + ib) + (n + 1) * ib + n * vb;
        w.flops = 2.0 * stored;
        break;
    case LedgerFormat::ell:
    case LedgerFormat::sellp:
        // Padded values + padded column indices + x; the kernels multiply
        // the stored zeros, so the padding counts in bytes AND flops.
        // (SELL-P's slice offset array is O(n/slice) and ignored.)
        w.bytes_read = stored * (vb + ib) + n * vb;
        w.flops = 2.0 * stored;
        break;
    case LedgerFormat::dense:
        w.bytes_read = n * n * vb + n * vb;
        w.flops = 2.0 * n * n;
        break;
    }
    w.bytes_written = n * vb;
    return w;
}

/// One streaming update sweep (axpy-like: z = a*x + b*y).
PhaseWork axpy_work(double n)
{
    return {2.0 * n * vb, n * vb, 2.0 * n, 0.0};
}

/// One scalar-Jacobi-like preconditioner application (elementwise scale).
PhaseWork precond_work(double n)
{
    return {2.0 * n * vb, n * vb, n, 0.0};
}

/// One standalone dot: two operand vectors in, one scalar result.
PhaseWork dot_work(double n)
{
    return {2.0 * n * vb, 0.0, 2.0 * n, 1.0};
}

void scale_into(PhaseWork& dst, const PhaseWork& w, double count)
{
    dst.bytes_read += w.bytes_read * count;
    dst.bytes_written += w.bytes_written * count;
    dst.flops += w.flops * count;
    dst.reductions += w.reductions * count;
}

}  // namespace

WorkLedger work_ledger(const SolverWorkProfile& work,
                       const LedgerShape& shape, LedgerFormat format,
                       double total_iterations, double num_systems)
{
    const double n = shape.rows;
    WorkLedger ledger;

    // --- per-iteration work, scaled by the batch's summed iterations ---
    scale_into(ledger.of(Phase::spmv), spmv_work(shape, format),
               work.spmv_per_iter * total_iterations);
    scale_into(ledger.of(Phase::precond), precond_work(n),
               work.precond_per_iter * total_iterations);

    if (work.has_fused_shape()) {
        // Update sweeps: every sweep streams 2 vectors in / 1 out. A norm
        // fused into an update sweep adds its 2n flops but no traffic; its
        // combine synchronization is tallied with the reductions below. A
        // dot fused into a NON-reduction sweep (fused_extra_combines, e.g.
        // pipelined CG's r.z on the preconditioner sweep) likewise adds 2n
        // flops plus a combine point charged to the carrying phase.
        const double sweeps =
            work.fused_update_sweeps + work.fused_norm_update_sweeps;
        auto& upd = ledger.of(Phase::update);
        scale_into(upd, axpy_work(n), sweeps * total_iterations);
        upd.flops += 2.0 * n * work.fused_norm_update_sweeps *
                     total_iterations;
        upd.flops += 2.0 * n * work.fused_extra_combines * total_iterations;
        upd.reductions += work.fused_extra_combines * total_iterations;

        // Standalone reduction sweeps: 2 vectors per plain sweep plus the
        // extra operand vectors the multi-output pipelined sweeps widen
        // their reads with; one combine point per sweep plus one per
        // norm-update sweep (mirroring the cost model's iter_reduction
        // terms); every piggybacked extra result adds 2n flops only.
        const double results = work.fused_dot_sweeps + work.fused_extra_dots;
        auto& red = ledger.of(Phase::reduction);
        red.bytes_read +=
            (2.0 * work.fused_dot_sweeps + work.fused_extra_dot_vectors) *
            n * vb * total_iterations;
        red.flops += 2.0 * n * results * total_iterations;
        red.reductions += (work.fused_dot_sweeps +
                           work.fused_norm_update_sweeps) *
                          total_iterations;
    } else {
        scale_into(ledger.of(Phase::update), axpy_work(n),
                   work.axpys_per_iter * total_iterations);
        scale_into(ledger.of(Phase::reduction), dot_work(n),
                   work.dots_per_iter * total_iterations);
    }

    // --- per-system setup work (initial residual, Jacobi generation) ---
    scale_into(ledger.of(Phase::spmv), spmv_work(shape, format),
               work.setup_spmvs * num_systems);
    scale_into(ledger.of(Phase::reduction), dot_work(n),
               work.setup_dots * num_systems);
    scale_into(ledger.of(Phase::update), axpy_work(n),
               work.setup_axpys * num_systems);
    if (work.precond_per_iter > 0) {
        scale_into(ledger.of(Phase::precond), precond_work(n), num_systems);
    }
    return ledger;
}

namespace {
std::mutex roofline_mutex;
// Mirrors gpusim::skylake_node(): 256 GB/s, 40 cores x 50 GF/s. The
// attribution tests cross-check these numbers against the gpusim header.
RooflinePeaks host_peaks{256.0, 2000.0};
}  // namespace

RooflinePeaks host_roofline()
{
    std::lock_guard<std::mutex> lock(roofline_mutex);
    return host_peaks;
}

void set_host_roofline(const RooflinePeaks& peaks)
{
    std::lock_guard<std::mutex> lock(roofline_mutex);
    host_peaks = peaks;
}

std::vector<PhaseAttribution> attribute_phases(const WorkLedger& ledger,
                                               const PhaseTotals& measured,
                                               const RooflinePeaks& peaks)
{
    std::vector<PhaseAttribution> out;
    for (int p = 0; p < phase_count; ++p) {
        const PhaseWork& work = ledger.phase[p];
        const double seconds = measured.seconds[p];
        if (seconds <= 0 && measured.calls[p] == 0 && work.bytes() <= 0) {
            continue;
        }
        PhaseAttribution a;
        a.phase = static_cast<Phase>(p);
        a.seconds = seconds;
        a.calls = measured.calls[p];
        a.bytes = work.bytes();
        a.flops = work.flops;
        if (seconds > 0) {
            a.gbps = a.bytes / seconds * 1e-9;
            a.gflops = a.flops / seconds * 1e-9;
        }
        a.intensity = a.bytes > 0 ? a.flops / a.bytes : 0.0;
        a.memory_bound = a.intensity <= peaks.ridge();
        if (a.memory_bound) {
            a.peak_fraction = peaks.gbps > 0 ? a.gbps / peaks.gbps : 0.0;
        } else {
            a.peak_fraction =
                peaks.gflops > 0 ? a.gflops / peaks.gflops : 0.0;
        }
        out.push_back(a);
    }
    return out;
}

void record_phase_attribution(MetricsRegistry& registry,
                              const std::string& prefix,
                              const std::vector<PhaseAttribution>& phases)
{
    for (const auto& a : phases) {
        const std::string base =
            prefix + ".phase." + phase_name(a.phase) + ".";
        registry.set_named(base + "seconds", a.seconds);
        registry.set_named(base + "calls", static_cast<double>(a.calls));
        registry.set_named(base + "bytes", a.bytes);
        registry.set_named(base + "flops", a.flops);
        registry.set_named(base + "gbps", a.gbps);
        registry.set_named(base + "gflops", a.gflops);
        registry.set_named(base + "intensity", a.intensity);
        registry.set_named(base + "memory_bound", a.memory_bound ? 1.0 : 0.0);
        registry.set_named(base + "peak_fraction", a.peak_fraction);
    }
}

// ---------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------

int DriftReport::alarms() const
{
    int n = 0;
    for (const auto& p : phases) {
        n += p.alarmed ? 1 : 0;
    }
    for (const auto& s : scalars) {
        n += s.alarmed ? 1 : 0;
    }
    return n;
}

DriftReport detect_drift(const double (&measured)[phase_count],
                         const double (&modeled)[phase_count],
                         const DriftConfig& config)
{
    double measured_total = 0;
    double modeled_total = 0;
    for (int p = 0; p < phase_count; ++p) {
        measured_total += std::max(0.0, measured[p]);
        modeled_total += std::max(0.0, modeled[p]);
    }
    DriftReport report;
    if (measured_total <= 0 || modeled_total <= 0) {
        return report;  // nothing to compare; no checks, no alarms
    }
    if (measured_total < config.min_total_measured) {
        return report;  // below the timing-noise floor; shares meaningless
    }
    for (int p = 0; p < phase_count; ++p) {
        PhaseDrift d;
        d.phase = static_cast<Phase>(p);
        d.measured_share = std::max(0.0, measured[p]) / measured_total;
        d.modeled_share = std::max(0.0, modeled[p]) / modeled_total;
        if (d.measured_share <= 0 && d.modeled_share <= 0) {
            continue;  // phase absent on both sides
        }
        if (d.modeled_share > 0) {
            d.ratio = d.measured_share / d.modeled_share;
        } else {
            d.ratio = std::numeric_limits<double>::infinity();
        }
        const bool significant = d.measured_share >= config.min_share ||
                                 d.modeled_share >= config.min_share;
        d.alarmed = significant &&
                    (d.ratio > config.ratio_threshold ||
                     d.ratio < 1.0 / config.ratio_threshold);
        report.phases.push_back(d);
    }
    return report;
}

void add_scalar_check(DriftReport& report, const std::string& name,
                      double measured, double modeled, double threshold)
{
    DriftReport::ScalarCheck check;
    check.name = name;
    check.measured = measured;
    check.modeled = modeled;
    if (modeled > 0) {
        check.ratio = measured / modeled;
    } else {
        check.ratio = measured > 0
                          ? std::numeric_limits<double>::infinity()
                          : 1.0;
    }
    check.alarmed =
        check.ratio > threshold || check.ratio < 1.0 / threshold;
    report.scalars.push_back(check);
}

namespace {
std::mutex drift_mutex;
std::string drift_dir;
DriftConfig drift_cfg;
int drift_dump_seq = 0;

void dump_drift_annotation(const std::string& dir, const std::string& prefix,
                           const DriftReport& report, int seq)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        return;  // annotation is best-effort; metrics already carry the alarm
    }
    std::ostringstream name;
    name << dir << "/drift_" << seq << "_" << prefix << ".json";
    std::ofstream out(name.str());
    if (!out) {
        return;
    }
    out << "{\n  \"kind\": \"drift\",\n  \"prefix\": ";
    json_quote(out, prefix);
    out << ",\n  \"alarms\": " << report.alarms() << ",\n  \"phases\": [";
    bool first = true;
    for (const auto& p : report.phases) {
        out << (first ? "" : ",") << "\n    {\"phase\": \""
            << phase_name(p.phase)
            << "\", \"measured_share\": " << p.measured_share
            << ", \"modeled_share\": " << p.modeled_share
            << ", \"ratio\": " << p.ratio
            << ", \"alarmed\": " << (p.alarmed ? "true" : "false") << "}";
        first = false;
    }
    out << "\n  ],\n  \"scalars\": [";
    first = true;
    for (const auto& s : report.scalars) {
        out << (first ? "" : ",") << "\n    {\"name\": ";
        json_quote(out, s.name);
        out << ", \"measured\": " << s.measured
            << ", \"modeled\": " << s.modeled << ", \"ratio\": " << s.ratio
            << ", \"alarmed\": " << (s.alarmed ? "true" : "false") << "}";
        first = false;
    }
    out << "\n  ]\n}\n";
}
}  // namespace

int record_drift(MetricsRegistry& registry, const std::string& prefix,
                 const DriftReport& report)
{
    const int checks = static_cast<int>(report.phases.size()) +
                       static_cast<int>(report.scalars.size());
    const int alarms = report.alarms();
    registry.add_named("obs.drift.checks", checks);
    if (alarms > 0) {
        registry.add_named("obs.drift.alarms", alarms);
    }
    for (const auto& p : report.phases) {
        const std::string base =
            "obs.drift." + prefix + "." + phase_name(p.phase) + ".";
        registry.set_named(base + "ratio", p.ratio);
        registry.set_named(base + "alarmed", p.alarmed ? 1.0 : 0.0);
    }
    for (const auto& s : report.scalars) {
        const std::string base = "obs.drift." + prefix + "." + s.name + ".";
        registry.set_named(base + "ratio", s.ratio);
        registry.set_named(base + "alarmed", s.alarmed ? 1.0 : 0.0);
    }
    if (alarms > 0) {
        std::string dir;
        int seq = 0;
        {
            std::lock_guard<std::mutex> lock(drift_mutex);
            dir = drift_dir;
            seq = drift_dump_seq++;
        }
        if (!dir.empty()) {
            dump_drift_annotation(dir, prefix, report, seq);
        }
        if (events_enabled()) {
            // Name the worst phase so the event line is actionable on its
            // own, without joining against the gauge snapshot.
            const char* worst = "";
            double worst_ratio = 0;
            for (const auto& p : report.phases) {
                if (p.alarmed && std::abs(std::log(p.ratio)) >
                                     std::abs(std::log(
                                         worst_ratio > 0 ? worst_ratio
                                                         : 1.0))) {
                    worst = phase_name(p.phase);
                    worst_ratio = p.ratio;
                }
            }
            events().emit("drift.alarm",
                          {field("prefix", prefix),
                           field("alarms", alarms),
                           field("checks", checks),
                           field("worst_phase", worst),
                           field("worst_ratio", worst_ratio)});
        }
    }
    return alarms;
}

void set_drift_dump_dir(const std::string& dir)
{
    std::lock_guard<std::mutex> lock(drift_mutex);
    drift_dir = dir;
}

std::string drift_dump_dir()
{
    std::lock_guard<std::mutex> lock(drift_mutex);
    return drift_dir;
}

DriftConfig drift_config()
{
    std::lock_guard<std::mutex> lock(drift_mutex);
    return drift_cfg;
}

void set_drift_config(const DriftConfig& config)
{
    std::lock_guard<std::mutex> lock(drift_mutex);
    drift_cfg = config;
}

// ---------------------------------------------------------------------
// ProfileWindow
// ---------------------------------------------------------------------

ProfileWindow::ProfileWindow(int capacity, double ewma_alpha)
    : capacity_(std::max(1, capacity)),
      alpha_(ewma_alpha),
      ring_(static_cast<std::size_t>(capacity_))
{}

void ProfileWindow::push(const Sample& sample)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_[static_cast<std::size_t>(head_)] = sample;
    head_ = (head_ + 1) % capacity_;
    count_ = std::min(count_ + 1, capacity_);
    ++pushed_;
    for (int p = 0; p < phase_count; ++p) {
        if (pushed_ == 1) {
            ewma_seconds_[p] = sample.seconds[p];
            ewma_gbps_[p] = sample.gbps[p];
        } else {
            ewma_seconds_[p] +=
                alpha_ * (sample.seconds[p] - ewma_seconds_[p]);
            ewma_gbps_[p] += alpha_ * (sample.gbps[p] - ewma_gbps_[p]);
        }
    }
}

int ProfileWindow::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

std::int64_t ProfileWindow::pushed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
}

double ProfileWindow::ewma_seconds(Phase phase) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ewma_seconds_[static_cast<int>(phase)];
}

double ProfileWindow::ewma_gbps(Phase phase) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ewma_gbps_[static_cast<int>(phase)];
}

double ProfileWindow::p95_seconds(Phase phase) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        return 0.0;
    }
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(count_));
    for (int i = 0; i < count_; ++i) {
        values.push_back(ring_[static_cast<std::size_t>(i)]
                             .seconds[static_cast<int>(phase)]);
    }
    std::sort(values.begin(), values.end());
    // Type-7 linear interpolation, matching the histogram quantiles.
    const double pos = 0.95 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

void ProfileWindow::export_gauges(MetricsRegistry& registry,
                                  const std::string& prefix) const
{
    std::int64_t samples = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        samples = pushed_;
    }
    registry.set_named(prefix + ".samples", static_cast<double>(samples));
    if (samples == 0) {
        return;
    }
    for (int p = 0; p < phase_count; ++p) {
        const auto phase = static_cast<Phase>(p);
        if (ewma_seconds(phase) <= 0 && p95_seconds(phase) <= 0) {
            continue;
        }
        const std::string base =
            prefix + "." + std::string(phase_name(phase)) + ".";
        registry.set_named(base + "ewma_us", ewma_seconds(phase) * 1e6);
        registry.set_named(base + "p95_us", p95_seconds(phase) * 1e6);
        registry.set_named(base + "ewma_gbps", ewma_gbps(phase));
    }
}

void ProfileWindow::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    head_ = 0;
    count_ = 0;
    pushed_ = 0;
    for (int p = 0; p < phase_count; ++p) {
        ewma_seconds_[p] = 0;
        ewma_gbps_[p] = 0;
    }
}

ProfileWindow& profile_window()
{
    static ProfileWindow window;
    return window;
}

}  // namespace bsis::obs
