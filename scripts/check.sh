#!/usr/bin/env bash
# Hardened check tier: build, run the sanitizer-labeled tests, the
# observability (telemetry) tests, then run the solver example suite under
# --sanitize. Any SIMT sanitizer finding (shared race, barrier divergence,
# out-of-bounds access) fails the script.
#
# Usage: scripts/check.sh            (build dir defaults to ./build)
#        BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== sanitizer test tier =="
ctest --test-dir "$BUILD_DIR" -L sanitizer --output-on-failure

# Telemetry: metrics registry, Chrome-trace export (valid JSON, properly
# nested spans, monotonic timestamps), convergence history, and the
# live-profile-vs-bench agreement check.
echo "== observability test tier =="
ctest --test-dir "$BUILD_DIR" -L obs --output-on-failure

# Attribution: the work ledger's byte/flop hand counts, roofline
# attribution, drift detection, the continuous-profiler window, and the
# measured-bandwidth sanity bounds of real solves on all three paths.
echo "== attribution test tier =="
ctest --test-dir "$BUILD_DIR" -L attribution --output-on-failure

# Forensics: the failure taxonomy, cross-path classification agreement,
# the flight recorder, and bundle replay -- plus the replay tool's own
# end-to-end loop (force a breakdown, capture the bundle, replay it
# through all three execution paths).
echo "== forensics test tier =="
ctest --test-dir "$BUILD_DIR" -L forensics --output-on-failure
echo "-- replay_entry --selftest"
FORENSICS_DIR=$(mktemp -d)
trap 'rm -rf "$FORENSICS_DIR"' EXIT
"$BUILD_DIR/tools/replay_entry" --selftest "$FORENSICS_DIR/bundles" \
    > /dev/null

# Live monitoring: the time-series sampler, alert hysteresis, Prometheus
# exposition round-trip, the event log, and the seeded failure-storm
# firing/resolved end-to-end. The storm test exports its firing-tick
# promfile so obs_top's --once gate can be asserted binary-level: it must
# exit 1 (alerts firing) on the storm exposition and 0 on a healthy one.
echo "== monitor test tier =="
MONITOR_DIR=$(mktemp -d)
trap 'rm -rf "$FORENSICS_DIR" "$MONITOR_DIR"' EXIT
BSIS_MONITOR_E2E_PROM="$MONITOR_DIR/storm.prom" \
    ctest --test-dir "$BUILD_DIR" -L monitor --output-on-failure
echo "-- obs_top --once e2e"
if [ ! -f "$MONITOR_DIR/storm.prom" ]; then
    echo "check.sh: storm test did not export its promfile" >&2
    exit 1
fi
if "$BUILD_DIR/tools/obs_top" --once "$MONITOR_DIR/storm.prom" \
    > /dev/null; then
    echo "check.sh: obs_top exited 0 on a firing exposition" >&2
    exit 1
fi
"$BUILD_DIR/examples/quickstart" --monitor=50 \
    --prom="$MONITOR_DIR/healthy.prom" > /dev/null
"$BUILD_DIR/tools/obs_top" --once "$MONITOR_DIR/healthy.prom" > /dev/null

# Pipelined variants: classic-vs-pipelined equivalence across solvers,
# preconditioners, formats and execution paths, recurrence-drift bounds,
# failure-classification parity on seeded breakdown/NaN batches, and the
# barrier/utilization deltas of the traced pipelined kernel.
echo "== pipelined test tier =="
ctest --test-dir "$BUILD_DIR" -L pipelined --output-on-failure

# The perf smoke run also covers the SIMD batch-lockstep rows
# (lockstep4/lockstep8) and cross-checks them against the scalar path
# per entry; the full-size lockstep-vs-scalar speedup gate only runs in
# the non-smoke bench_regression.
echo "== perf regression tier (smoke) =="
ctest --test-dir "$BUILD_DIR" -L perf --output-on-failure

echo "== sanitized examples =="
for example in quickstart solver_comparison device_comparison; do
    echo "-- $example --sanitize"
    "$BUILD_DIR/examples/$example" --sanitize > /dev/null
done

echo "check.sh: all sanitized runs clean"
