// Table I of the paper: theoretical performance numbers of the platforms
// the evaluation models, as encoded in the gpusim device database.
#include <iostream>

#include "common.hpp"
#include "gpusim/device.hpp"

int main()
{
    using namespace bsis;
    using namespace bsis::gpusim;

    Table table({"architecture", "peak_fp64_tflops", "mem_bw_gbps",
                 "l1_shared_kib_per_cu", "l2_mib", "num_cu", "warp",
                 "scheduling"});
    int count = 0;
    const DeviceSpec* gpus = all_gpus(count);
    for (int i = 0; i < count; ++i) {
        const auto& d = gpus[i];
        table.new_row()
            .add(d.name)
            .add(d.peak_fp64_tflops)
            .add(d.mem_bw_gbps)
            .add(d.l1_shared_kib_per_cu)
            .add(d.l2_mib)
            .add(d.num_cu)
            .add(d.warp_size)
            .add(d.scheduling == SchedulingPolicy::wave_quantized
                     ? "wave-quantized"
                     : "greedy-dynamic");
    }
    const auto& cpu = skylake_node();
    table.new_row()
        .add(cpu.name)
        .add(cpu.peak_fp64_gflops_per_core * cpu.total_cores / 1000.0)
        .add(cpu.mem_bw_gbps)
        .add("-")
        .add("-")
        .add(cpu.total_cores)
        .add("-")
        .add("batch over cores");

    bench::emit("table1_hardware",
                "Table I: modeled platform characteristics", table);
    return 0;
}
