file(REMOVE_RECURSE
  "CMakeFiles/test_storage_config.dir/test_storage_config.cpp.o"
  "CMakeFiles/test_storage_config.dir/test_storage_config.cpp.o.d"
  "test_storage_config"
  "test_storage_config.pdb"
  "test_storage_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
