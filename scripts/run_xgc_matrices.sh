#!/usr/bin/env bash
# Reproduction of the paper appendix's run_xgc_matrices.sh workflow:
# export a batch of collision matrices in the Zenodo folder layout, then
# sweep the batched solvers over them on every modeled device and both
# formats. Set BATCH_MATRIX_FOLDER to reuse an existing matrix folder
# (e.g. one exported earlier, or the paper's own dgb_2 class).
set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
BATCH_MATRIX_FOLDER=${BATCH_MATRIX_FOLDER:-/tmp/bsis_dgb_2}
NUM_MESH_NODES=${NUM_MESH_NODES:-8}

if [ ! -f "${BATCH_MATRIX_FOLDER}/0/A.mtx" ]; then
  echo "== exporting ${NUM_MESH_NODES} mesh nodes to ${BATCH_MATRIX_FOLDER}"
  "${BUILD_DIR}/examples/export_batch" "${BATCH_MATRIX_FOLDER}" \
      "${NUM_MESH_NODES}"
fi

for device in v100 a100 mi100; do
  for format in csr ell; do
    echo
    echo "== device=${device} format=${format}"
    "${BUILD_DIR}/examples/solve_from_files" "${BATCH_MATRIX_FOLDER}" \
        --device "${device}" --format "${format}" --tol 1e-10
  done
done
