file(REMOVE_RECURSE
  "CMakeFiles/xgc_collision_app.dir/xgc_collision_app.cpp.o"
  "CMakeFiles/xgc_collision_app.dir/xgc_collision_app.cpp.o.d"
  "xgc_collision_app"
  "xgc_collision_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgc_collision_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
