// Error handling for the bsis library.
//
// Library-level contract violations throw exceptions derived from
// bsis::Error; internal invariants are checked with BSIS_ASSERT (active in
// all build types -- these solvers are small enough that the checks are
// never on a hot path that matters relative to the numerical work).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bsis {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when operand dimensions are incompatible.
class DimensionMismatch : public Error {
public:
    DimensionMismatch(const std::string& where, const std::string& detail)
        : Error(where + ": dimension mismatch: " + detail)
    {}
};

/// Thrown when a caller-supplied argument is invalid.
class BadArgument : public Error {
public:
    BadArgument(const std::string& where, const std::string& detail)
        : Error(where + ": bad argument: " + detail)
    {}
};

/// Thrown when a numerical algorithm cannot proceed (e.g. an exactly
/// singular pivot in a direct factorization).
class NumericalBreakdown : public Error {
public:
    NumericalBreakdown(const std::string& where, const std::string& detail)
        : Error(where + ": numerical breakdown: " + detail)
    {}
};

/// Thrown on malformed input files (MatrixMarket etc.).
class ParseError : public Error {
public:
    ParseError(const std::string& where, const std::string& detail)
        : Error(where + ": parse error: " + detail)
    {}
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line)
{
    std::ostringstream os;
    os << "bsis internal assertion failed: (" << expr << ") at " << file << ":"
       << line;
    throw Error(os.str());
}

}  // namespace detail

}  // namespace bsis

/// Internal invariant check, active in every build type.
#define BSIS_ASSERT(expr)                                         \
    do {                                                          \
        if (!(expr)) {                                            \
            ::bsis::detail::assert_fail(#expr, __FILE__, __LINE__); \
        }                                                         \
    } while (0)

/// Argument validation helper: throws BadArgument naming the function.
#define BSIS_ENSURE_ARG(expr, detail)                         \
    do {                                                      \
        if (!(expr)) {                                        \
            throw ::bsis::BadArgument(__func__, detail);      \
        }                                                     \
    } while (0)

/// Dimension validation helper: throws DimensionMismatch naming the function.
#define BSIS_ENSURE_DIMS(expr, detail)                          \
    do {                                                        \
        if (!(expr)) {                                          \
            throw ::bsis::DimensionMismatch(__func__, detail);  \
        }                                                       \
    } while (0)
