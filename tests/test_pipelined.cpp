// Pipelined tier (`pipelined` ctest label): the pipelined BiCGStab / CG
// kernels that collapse the per-iteration reductions into one or two
// multi-output sweeps (SolverSettings::pipelined).
//
// Contract under test: against the classic fused kernels the pipelined
// variants converge with identical verdicts, iteration counts within one,
// and residual norms to rounding at equal counts -- across solvers,
// preconditioners, sparse formats, and the scalar / lockstep paths; the
// recurrence-maintained residual norm may not drift from the true residual
// at exit; failure classification on a seeded breakdown/NaN batch is
// identical to the classic kernels; and the convergence-history recorder
// sees the same span of iterations.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/forensics.hpp"
#include "core/solver.hpp"
#include "exec/executor.hpp"
#include "io/matrix_market.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

struct Problem {
    BatchCsr<real_type> a;
    BatchVector<real_type> b;

    static Problem make(size_type nbatch, index_type nx = 8,
                        index_type ny = 7, bool spd = false,
                        unsigned rhs_seed = 55)
    {
        SyntheticStencilParams params;
        params.seed = 1234;
        if (spd) {
            params.advection = 0.0;
            params.perturbation = 0.0;
        }
        Problem p{make_synthetic_batch(nx, ny, StencilKind::nine_point,
                                       nbatch, params),
                  BatchVector<real_type>(nbatch, nx * ny)};
        Rng rng(rhs_seed);
        for (size_type i = 0; i < nbatch; ++i) {
            auto bv = p.b.entry(i);
            for (index_type k = 0; k < bv.len; ++k) {
                bv[k] = rng.uniform(-1.0, 1.0);
            }
        }
        return p;
    }
};

real_type residual_norm(const BatchCsr<real_type>& a, size_type entry,
                        ConstVecView<real_type> x, ConstVecView<real_type> b)
{
    std::vector<real_type> r(static_cast<std::size_t>(b.len));
    spmv(a.entry(entry), x, VecView<real_type>{r.data(), b.len});
    real_type sum = 0;
    for (index_type i = 0; i < b.len; ++i) {
        const real_type d = r[static_cast<std::size_t>(i)] - b[i];
        sum += d * d;
    }
    return std::sqrt(sum);
}

/// Solves the same batch with the classic and the pipelined fused kernels
/// (same path, same width) and checks the per-entry results agree:
/// identical verdicts, iteration counts within one, residual norms to
/// rounding at equal counts, and a truly small residual of the pipelined
/// solution for converged entries.
template <typename BatchMatrix>
void expect_pipelined_matches_classic(const BatchCsr<real_type>& csr,
                                      const BatchMatrix& a,
                                      const BatchVector<real_type>& b,
                                      SolverSettings settings, int width)
{
    const size_type nbatch = a.num_batch();
    settings.fused_kernels = true;
    settings.lockstep_width = width;
    BatchVector<real_type> x_classic(nbatch, a.rows());
    BatchVector<real_type> x_pipe(nbatch, a.rows());
    settings.pipelined = false;
    const auto classic = solve_batch(a, b, x_classic, settings);
    settings.pipelined = true;
    const auto pipe = solve_batch(a, b, x_pipe, settings);
    ASSERT_EQ(pipe.log.num_batch(), nbatch);
    for (size_type i = 0; i < nbatch; ++i) {
        EXPECT_EQ(classic.log.converged(i), pipe.log.converged(i))
            << "system " << i << " width " << width;
        EXPECT_NEAR(classic.log.iterations(i), pipe.log.iterations(i), 1)
            << "system " << i << " width " << width;
        if (classic.log.iterations(i) == pipe.log.iterations(i)) {
            const real_type rc = classic.log.residual_norm(i);
            const real_type rp = pipe.log.residual_norm(i);
            EXPECT_NEAR(rc, rp,
                        1e-6 * std::max({std::abs(rc), std::abs(rp),
                                         real_type{1e-30}}))
                << "system " << i << " width " << width;
        }
        if (pipe.log.converged(i) &&
            settings.stop == StopType::abs_residual) {
            EXPECT_LT(residual_norm(csr, i, x_pipe.entry(i), b.entry(i)),
                      10 * settings.tolerance)
                << "system " << i << " width " << width;
        }
    }
}

SolverSettings base_settings(SolverType solver, PrecondType precond)
{
    SolverSettings s;
    s.solver = solver;
    s.precond = precond;
    s.tolerance = 1e-10;
    s.max_iterations = 2000;
    return s;
}

/// Widths 0 (scalar path), 4, and 8 (lockstep path).
class PipelinedWidth : public ::testing::TestWithParam<int> {};

TEST_P(PipelinedWidth, BicgstabMatchesClassicAcrossFormatsAndPreconds)
{
    auto p = Problem::make(13);
    const auto ell = to_ell(p.a);
    const auto sellp = to_sellp(p.a, 16);
    for (const auto precond :
         {PrecondType::jacobi, PrecondType::identity}) {
        const auto s = base_settings(SolverType::bicgstab, precond);
        expect_pipelined_matches_classic(p.a, p.a, p.b, s, GetParam());
        expect_pipelined_matches_classic(p.a, ell, p.b, s, GetParam());
        expect_pipelined_matches_classic(p.a, sellp, p.b, s, GetParam());
    }
}

TEST_P(PipelinedWidth, CgMatchesClassicAcrossFormatsAndPreconds)
{
    auto p = Problem::make(11, 8, 7, /*spd=*/true);
    const auto ell = to_ell(p.a);
    const auto sellp = to_sellp(p.a, 16);
    for (const auto precond :
         {PrecondType::jacobi, PrecondType::identity}) {
        const auto s = base_settings(SolverType::cg, precond);
        expect_pipelined_matches_classic(p.a, p.a, p.b, s, GetParam());
        expect_pipelined_matches_classic(p.a, ell, p.b, s, GetParam());
        expect_pipelined_matches_classic(p.a, sellp, p.b, s, GetParam());
    }
}

TEST_P(PipelinedWidth, RelativeStopMatchesClassic)
{
    auto p = Problem::make(9);
    auto s = base_settings(SolverType::bicgstab, PrecondType::jacobi);
    s.stop = StopType::rel_residual;
    s.tolerance = 1e-8;
    expect_pipelined_matches_classic(p.a, p.a, p.b, s, GetParam());
}

/// The recurrence-maintained residual norm must agree with the true
/// residual ||b - A x|| at exit -- the single-iteration recurrences are
/// re-anchored to measured quantities every iteration, so drift cannot
/// compound.
TEST_P(PipelinedWidth, RecurrenceNormDoesNotDriftFromTrueResidual)
{
    for (const auto solver : {SolverType::bicgstab, SolverType::cg}) {
        auto p = Problem::make(10, 8, 7, solver == SolverType::cg);
        auto s = base_settings(solver, PrecondType::jacobi);
        s.pipelined = true;
        s.lockstep_width = GetParam();
        BatchVector<real_type> x(10, p.a.rows());
        const auto result = solve_batch(p.a, p.b, x, s);
        for (size_type i = 0; i < 10; ++i) {
            ASSERT_TRUE(result.log.converged(i)) << "system " << i;
            const real_type reported = result.log.residual_norm(i);
            const real_type true_norm =
                residual_norm(p.a, i, x.entry(i), p.b.entry(i));
            EXPECT_NEAR(reported, true_norm, 10 * s.tolerance)
                << solver_name(solver) << " system " << i;
        }
    }
}

/// Convergence-history span parity: the pipelined kernels feed the
/// recorder the same iteration span as the classic kernels (point at
/// iteration 0, finalized at the exit iteration).
TEST_P(PipelinedWidth, ConvergenceHistoryCoversTheSameSpan)
{
    auto p = Problem::make(6);
    auto s = base_settings(SolverType::bicgstab, PrecondType::jacobi);
    s.record_convergence = true;
    s.lockstep_width = GetParam();
    BatchVector<real_type> x_classic(6, p.a.rows());
    BatchVector<real_type> x_pipe(6, p.a.rows());
    const auto classic = solve_batch(p.a, p.b, x_classic, s);
    s.pipelined = true;
    const auto pipe = solve_batch(p.a, p.b, x_pipe, s);
    ASSERT_TRUE(pipe.history.active());
    ASSERT_EQ(pipe.history.num_batch(), 6);
    for (size_type i = 0; i < 6; ++i) {
        ASSERT_TRUE(pipe.history.finalized(i)) << "system " << i;
        EXPECT_EQ(pipe.history.converged(i), pipe.log.converged(i));
        EXPECT_EQ(pipe.history.final_point(i).iteration,
                  pipe.log.iterations(i));
        const auto& cpts = classic.history.points(i);
        const auto& ppts = pipe.history.points(i);
        ASSERT_FALSE(ppts.empty()) << "system " << i;
        EXPECT_EQ(ppts.front().iteration, 0) << "system " << i;
        // Same initial residual (measured identically by both kernels).
        EXPECT_DOUBLE_EQ(ppts.front().residual, cpts.front().residual)
            << "system " << i;
        // Same span up to the one-iteration stopping slack.
        EXPECT_NEAR(ppts.back().iteration, cpts.back().iteration,
                    1 + classic.history.stride(i))
            << "system " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Paths, PipelinedWidth, ::testing::Values(0, 4, 8));

// ---------------------------------------------------------------------
// Failure-classification parity on a seeded breakdown/NaN batch
// ---------------------------------------------------------------------

/// Tridiagonal Coo as in test_forensics: with `laplacian` the diagonal is
/// the negated off-diagonal row sum (a singular Neumann Laplacian).
io::Coo tridiag(index_type n, real_type diag, real_type off,
                bool laplacian = false)
{
    io::Coo coo;
    coo.rows = n;
    coo.cols = n;
    for (index_type r = 0; r < n; ++r) {
        for (index_type c = std::max(r - 1, index_type{0});
             c <= std::min(r + 1, n - 1); ++c) {
            real_type v = r == c ? diag : off;
            if (laplacian && r == c) {
                v = (r == 0 || r == n - 1) ? -off : -2 * off;
            }
            coo.row_idxs.push_back(r);
            coo.col_idxs.push_back(c);
            coo.values.push_back(v);
        }
    }
    return coo;
}

/// sys 0: singular Laplacian with inconsistent rhs; sys 1: NaN-poisoned
/// rhs; sys 2: hard system under a tight iteration cap; sys 3: identity
/// system, converges immediately. The pipelined kernels must classify
/// every seeded mode exactly as the classic kernels do, on the scalar and
/// the lockstep path alike.
TEST(PipelinedForensics, SeededBatchClassifiesIdenticallyToClassic)
{
    const index_type n = 16;
    const auto a =
        io::from_coo({tridiag(n, 2, -1, true), tridiag(n, 2, -1),
                      tridiag(n, 2.0, -1.01), tridiag(n, 1, 0)});
    BatchVector<real_type> b(4, n, real_type{1});
    b.entry(0)[0] = 2;  // sum(b) != 0: outside the Laplacian's range
    b.entry(1)[n / 2] = std::nan("");

    for (const auto solver : {SolverType::bicgstab, SolverType::cg}) {
        SolverSettings s;
        s.solver = solver;
        s.precond = PrecondType::jacobi;
        s.tolerance = 1e-10;
        s.max_iterations = 2;  // caps the hard system
        for (const int width : {0, 4}) {
            s.lockstep_width = width;
            BatchVector<real_type> x_classic(4, n);
            BatchVector<real_type> x_pipe(4, n);
            s.pipelined = false;
            const auto classic = solve_batch(a, b, x_classic, s);
            s.pipelined = true;
            const auto pipe = solve_batch(a, b, x_pipe, s);
            for (size_type sys = 0; sys < 4; ++sys) {
                EXPECT_EQ(classic.log.failure(sys), pipe.log.failure(sys))
                    << solver_name(solver) << " width " << width
                    << " system " << sys;
            }
            // The seeded modes come out as designed.
            EXPECT_EQ(pipe.log.failure(1), FailureClass::non_finite);
            EXPECT_EQ(pipe.log.failure(3), FailureClass::converged);
            EXPECT_NE(pipe.log.failure(0), FailureClass::converged);
            EXPECT_NE(pipe.log.failure(2), FailureClass::converged);
        }

        // The simulated-GPU executor path reaches the same verdicts.
        s.lockstep_width = 0;
        SimGpuExecutor exec(gpusim::v100());
        BatchVector<real_type> x_classic(4, n);
        BatchVector<real_type> x_pipe(4, n);
        s.pipelined = false;
        const auto classic = exec.solve(a, b, x_classic, s);
        s.pipelined = true;
        const auto pipe = exec.solve(a, b, x_pipe, s);
        for (size_type sys = 0; sys < 4; ++sys) {
            EXPECT_EQ(classic.log.failure(sys), pipe.log.failure(sys))
                << solver_name(solver) << " simgpu system " << sys;
        }
    }
}

// ---------------------------------------------------------------------
// The traced twin on the simulated GPU
// ---------------------------------------------------------------------

/// The pipelined traced kernel must be sanitizer-clean (no races, no
/// barrier divergence, no out-of-bounds scratch publishes) at both warp
/// widths the paper's devices use: 32 (V100) and 64 (MI100).
TEST(PipelinedGpusim, SanitizerCleanAtWarp32And64)
{
    auto p = Problem::make(4);
    for (const auto* device : {&gpusim::v100(), &gpusim::mi100()}) {
        SimGpuExecutor exec(*device);
        exec.set_sanitize(true);
        auto s = base_settings(SolverType::bicgstab, PrecondType::jacobi);
        s.pipelined = true;
        BatchVector<real_type> x(4, p.a.rows());
        const auto report = exec.solve(p.a, p.b, x, s);
        ASSERT_TRUE(report.sanitized) << device->name;
        EXPECT_TRUE(report.sanitizer.clean())
            << device->name << ": " << report.sanitizer.summary();
        EXPECT_TRUE(report.log.all_converged()) << device->name;
    }
}

/// Pipelining must pay off in the model on both devices: fewer block-wide
/// barriers per traced iteration (the profiled counters), a lower modeled
/// per-iteration cost (the priced sweep structure), and -- on the
/// thread-per-row ELL kernel, the Table II workhorse -- improved warp
/// utilization (the removed reduction rounds were the near-empty
/// instructions). The warp-per-row CSR kernel keeps its utilization
/// roughly flat: its short rows bound the lane activity either way.
TEST(PipelinedGpusim, FewerBarriersAndLowerModeledIterationCost)
{
    auto p = Problem::make(4);
    const auto ell = to_ell(p.a);
    for (const auto* device : {&gpusim::v100(), &gpusim::mi100()}) {
        SimGpuExecutor exec(*device);
        exec.set_profile(true);
        auto s = base_settings(SolverType::bicgstab, PrecondType::jacobi);
        const auto run = [&](const auto& a, bool pipelined) {
            s.pipelined = pipelined;
            BatchVector<real_type> x(4, p.a.rows());
            return exec.solve(a, p.b, x, s);
        };
        for (const auto format : {BatchFormat::csr, BatchFormat::ell}) {
            const bool is_ell = format == BatchFormat::ell;
            const auto classic =
                is_ell ? run(ell, false) : run(p.a, false);
            const auto pipe = is_ell ? run(ell, true) : run(p.a, true);
            ASSERT_TRUE(classic.profiled && pipe.profiled)
                << device->name;
            // Same iterations give a fair comparison; the pipelined trace
            // removes 7 of the classic 21 barriers per iteration.
            EXPECT_NEAR(classic.log.iterations(0), pipe.log.iterations(0),
                        1)
                << device->name;
            EXPECT_LT(pipe.profile.counters.barriers,
                      classic.profile.counters.barriers)
                << device->name;
            EXPECT_LT(pipe.block_cost.per_iteration_us,
                      classic.block_cost.per_iteration_us)
                << device->name;
            if (is_ell) {
                EXPECT_GT(pipe.profile.warp_utilization(),
                          classic.profile.warp_utilization())
                    << device->name;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Flag semantics
// ---------------------------------------------------------------------

TEST(PipelinedFlag, RequiresFusedKernels)
{
    // With fused_kernels == false the pipelined flag is ignored: the
    // reference composition runs and converges as usual.
    auto p = Problem::make(5);
    auto s = base_settings(SolverType::bicgstab, PrecondType::jacobi);
    s.fused_kernels = false;
    s.pipelined = true;
    BatchVector<real_type> x(5, p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    // The unfused reference profile carries no fused sweep shape.
    EXPECT_FALSE(result.work.has_fused_shape());
}

TEST(PipelinedFlag, OtherSolversIgnoreTheFlag)
{
    auto p = Problem::make(4);
    auto s = base_settings(SolverType::gmres, PrecondType::jacobi);
    s.pipelined = true;
    BatchVector<real_type> x(4, p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_TRUE(result.log.all_converged());
    for (size_type i = 0; i < 4; ++i) {
        EXPECT_LT(residual_norm(p.a, i, x.entry(i), p.b.entry(i)), 1e-9);
    }
}

TEST(PipelinedWorkProfile, PipelinedShapeShrinksStandaloneReductions)
{
    // The profile the solve reports must price the pipelined sweep
    // structure: fewer standalone reduction sweeps than classic fused,
    // paid with wider reduction reads (extra operand vectors).
    const auto classic = work_profile(SolverType::bicgstab,
                                      PrecondType::jacobi, 30, 4, true);
    const auto pipe = work_profile(SolverType::bicgstab,
                                   PrecondType::jacobi, 30, 4, true, true);
    EXPECT_LT(pipe.fused_dot_sweeps, classic.fused_dot_sweeps);
    EXPECT_GT(pipe.fused_extra_dot_vectors, 0);
    // Operation counts (flop totals) are untouched by pipelining.
    EXPECT_EQ(pipe.dots_per_iter, classic.dots_per_iter);
    EXPECT_EQ(pipe.spmv_per_iter, classic.spmv_per_iter);

    const auto cg_classic =
        work_profile(SolverType::cg, PrecondType::jacobi, 30, 4, true);
    const auto cg_pipe =
        work_profile(SolverType::cg, PrecondType::jacobi, 30, 4, true, true);
    EXPECT_LT(cg_pipe.fused_dot_sweeps + cg_pipe.fused_norm_update_sweeps,
              cg_classic.fused_dot_sweeps +
                  cg_classic.fused_norm_update_sweeps);
    EXPECT_GT(cg_pipe.fused_extra_combines, 0);

    auto p = Problem::make(3);
    auto s = base_settings(SolverType::bicgstab, PrecondType::jacobi);
    s.pipelined = true;
    BatchVector<real_type> x(3, p.a.rows());
    const auto result = solve_batch(p.a, p.b, x, s);
    EXPECT_EQ(result.work.fused_dot_sweeps, pipe.fused_dot_sweeps);
    EXPECT_EQ(result.work.fused_extra_dot_vectors,
              pipe.fused_extra_dot_vectors);
}

}  // namespace
}  // namespace bsis
