// Table II of the paper: profiler counters of the fused batched BiCGStab
// solve on the different platforms with the two batch formats -- warp
// (wavefront) utilization and L1/L2 hit rates -- collected here from the
// SIMT trace simulator (our stand-in for NVIDIA Nsight Compute and AMD
// rocprof; see DESIGN.md substitutions).
//
// A sample of blocks is traced per configuration: each simulated CU gets a
// private L1 sized like the device's L1 after the shared-memory carve-out,
// in front of a device-wide L2.
#include <iostream>

#include "common.hpp"
#include "gpusim/profile.hpp"

int main()
{
    using namespace bsis;
    using namespace bsis::gpusim;

    const auto pattern = make_stencil_pattern(32, 31,
                                              StencilKind::nine_point);
    BatchCsr<real_type> csr(1, pattern.rows(), pattern.row_ptrs,
                            pattern.col_idxs);
    const auto ell = to_ell(csr);
    const int iterations = 20;  // a representative electron-ish solve
    const int sample_blocks = bench::quick_mode() ? 2 : 6;

    Table table({"processor", "format", "variant", "warp_use_%",
                 "l1_hit_%", "l2_hit_%", "barriers_per_iter",
                 "paper_warp_%", "paper_l1_%", "paper_l2_%"});
    struct PaperRow {
        const char* device;
        const char* format;
        double warp, l1, l2;
    };
    const PaperRow paper[] = {
        {"V100", "csr", 75.1, 50.7, 63.1}, {"V100", "ell", 98.2, 24.5, 63.1},
        {"A100", "csr", 72.9, 76.6, 97.2}, {"A100", "ell", 98.2, 74.5, 94.8},
        {"MI100", "csr", 52.0, -1, 86.0},  {"MI100", "ell", 94.0, -1, 88.0},
    };

    int count = 0;
    const auto* gpus = all_gpus(count);
    for (int g = 0; g < count; ++g) {
        const auto& device = gpus[g];
        const auto config = configure_storage(
            bicgstab_slots(1), pattern.rows(), device.warp_size,
            sizeof(real_type),
            static_cast<size_type>(device.max_shared_kib_per_block * 1024));
        // Cache capacities per traced block: shared math with the
        // executor's live profile (gpusim/profile.hpp). Both formats'
        // sparsity arrays live in L2 together, and residency follows the
        // ELL block size (the launch the occupancy analysis targets).
        const auto sizing = profile_cache_sizing(
            device, config, ell_block_size(pattern.rows(), device.warp_size),
            ell.col_idxs().size() + pattern.row_ptrs.size() +
                pattern.col_idxs.size());

        for (const auto format : {TracedFormat::csr, TracedFormat::ell}) {
            const int block_threads =
                format == TracedFormat::ell
                    ? ell_block_size(pattern.rows(), device.warp_size)
                    : csr_block_size(pattern.rows(), device.warp_size);
            const ProfilePattern traced{format, &pattern.row_ptrs,
                                        &pattern.col_idxs, &ell.col_idxs(),
                                        9, ell.stored_per_entry()};
            const std::vector<int> block_iters(
                static_cast<std::size_t>(sample_blocks), iterations);
            // Classic fused kernel and its pipelined twin: the pipelined
            // rows must show the removed per-iteration barriers and, on
            // the thread-per-row ELL kernel, improved warp utilization.
            for (const bool pipelined : {false, true}) {
                const auto profile = profile_bicgstab(
                    device, config, block_threads, traced, pattern.rows(),
                    block_iters, sizing, pipelined);
                const char* fmt_name =
                    format == TracedFormat::ell ? "ell" : "csr";
                const PaperRow* ref = nullptr;
                for (const auto& row : paper) {
                    if (device.name == row.device &&
                        std::string(fmt_name) == row.format) {
                        ref = &row;
                    }
                }
                const double barriers_per_iter =
                    static_cast<double>(profile.counters.barriers) /
                    (static_cast<double>(sample_blocks) * iterations);
                table.new_row()
                    .add(device.name)
                    .add(fmt_name)
                    .add(pipelined ? "pipelined" : "classic")
                    .add(100.0 * profile.warp_utilization(), 4)
                    .add(100.0 * profile.l1_hit_rate(), 4)
                    .add(100.0 * profile.l2_hit_rate(), 4)
                    .add(barriers_per_iter, 4)
                    .add(ref ? ref->warp : 0.0, 4)
                    .add(ref && ref->l1 >= 0 ? ref->l1 : 0.0, 4)
                    .add(ref ? ref->l2 : 0.0, 4);
            }
        }
    }
    bench::emit("table2_metrics",
                "Table II: simulated profiler counters of the fused "
                "BiCGStab solve",
                table);
    std::cout
        << "\nShape checks (paper):\n"
           "  * ELL warp utilization >> CSR on every device\n"
           "  * CSR utilization lowest on the MI100 (64-wide wavefronts)\n"
           "  * A100 cache hit rates above V100 (larger L1 remainder, "
           "larger L2)\n"
           "  * pipelined rows: ~14 barriers/iter vs the classic 21, ELL "
           "warp\n    utilization up (the removed reduction rounds were "
           "near-empty)\n"
           "Note: our warp-utilization counter weights by issued warp "
           "instructions,\nwhich reads lower for CSR than the vendor "
           "profilers' cycle-weighted metric;\nthe ordering is the "
           "reproduced result.\n";
    return 0;
}
