#include "gpusim/simt_kernels.hpp"

#include <algorithm>

#include "matrix/batch_ell.hpp"
#include "util/error.hpp"

namespace bsis::gpusim {

namespace {

/// Region bases of the virtual address space. Pattern regions are shared
/// by all systems; value/vector regions are strided per system. Each base
/// carries a distinct non-power-of-two offset so the regions do not alias
/// onto the same cache sets (power-of-two bases would all index set 0).
constexpr std::uint64_t region_col_idxs = (std::uint64_t{1} << 32) + 0x1480;
constexpr std::uint64_t region_row_ptrs = (std::uint64_t{2} << 32) + 0x3900;
constexpr std::uint64_t region_values = (std::uint64_t{4} << 32) + 0x6c80;
constexpr std::uint64_t region_b = (std::uint64_t{8} << 32) + 0x9e00;
constexpr std::uint64_t region_spill = (std::uint64_t{16} << 32) + 0xd580;

std::uint64_t round_up(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) / align * align;
}

}  // namespace

AddressMap AddressMap::for_system(size_type system_index, index_type rows,
                                  index_type nnz_stored,
                                  int num_spill_vectors)
{
    const auto sys = static_cast<std::uint64_t>(system_index);
    AddressMap map;
    map.rows = rows;
    map.col_idxs = region_col_idxs;
    map.row_ptrs = region_row_ptrs;
    map.values =
        region_values +
        sys * round_up(static_cast<std::uint64_t>(nnz_stored) *
                           sizeof(real_type),
                       256);
    map.b = region_b +
            sys * round_up(
                      static_cast<std::uint64_t>(rows) * sizeof(real_type),
                      256);
    map.spill =
        region_spill +
        sys * round_up(static_cast<std::uint64_t>(
                           std::max(num_spill_vectors, 1)) *
                           rows * sizeof(real_type),
                       256);
    return map;
}

namespace {

/// One coalesced warp access to `active` consecutive elements starting at
/// element index `first` of an array at `base`.
void contiguous_access(BlockTracer& tracer, std::uint64_t base,
                       index_type first, int active, int elem_bytes,
                       bool store, std::vector<std::uint64_t>& scratch)
{
    scratch.clear();
    for (int lane = 0; lane < active; ++lane) {
        scratch.push_back(base + static_cast<std::uint64_t>(first + lane) *
                                     static_cast<std::uint64_t>(elem_bytes));
    }
    if (store) {
        tracer.store_global(scratch, elem_bytes);
    } else {
        tracer.load_global(scratch, elem_bytes);
    }
}

/// Reads vector elements [first, first+active) from shared or global.
void vec_read(BlockTracer& tracer, std::uint64_t base, index_type first,
              int active, std::vector<std::uint64_t>& scratch)
{
    if (base == shared_space) {
        tracer.load_shared(active);
    } else {
        contiguous_access(tracer, base, first, active, sizeof(real_type),
                          false, scratch);
    }
}

void vec_write(BlockTracer& tracer, std::uint64_t base, index_type first,
               int active, std::vector<std::uint64_t>& scratch)
{
    if (base == shared_space) {
        tracer.store_shared(active);
    } else {
        contiguous_access(tracer, base, first, active, sizeof(real_type),
                          true, scratch);
    }
}

/// Gathers x[col] for the given column indices (SpMV right operand).
void gather_x(BlockTracer& tracer, std::uint64_t x_base,
              const index_type* cols, int active,
              std::vector<std::uint64_t>& lane_addrs)
{
    if (x_base == shared_space) {
        tracer.load_shared(active);
        return;
    }
    lane_addrs.clear();
    for (int lane = 0; lane < active; ++lane) {
        lane_addrs.push_back(x_base +
                             static_cast<std::uint64_t>(cols[lane]) *
                                 sizeof(real_type));
    }
    tracer.load_global(lane_addrs, sizeof(real_type));
}

/// Warp shuffle reduction over `count` values: stages halve the live
/// values; each stage is one warp instruction with that many active lanes.
void warp_reduce(BlockTracer& tracer, int count)
{
    while (count > 1) {
        const int half = (count + 1) / 2;
        tracer.flop(half);
        count = half;
    }
}

}  // namespace

void trace_spmv_csr(BlockTracer& tracer, const AddressMap& map,
                    const std::vector<index_type>& row_ptrs,
                    const std::vector<index_type>& col_idxs,
                    std::uint64_t x_base, std::uint64_t y_base)
{
    const auto rows = static_cast<index_type>(row_ptrs.size()) - 1;
    const int warp = tracer.warp_size();
    const int warps = tracer.num_warps();
    std::vector<std::uint64_t> scratch;
    std::vector<std::uint64_t> gather;

    // Warp w handles rows w, w + warps, ... (one warp per row).
    for (index_type r = 0; r < rows; ++r) {
        // Row extent loaded by the warp leader.
        contiguous_access(tracer, map.row_ptrs, r, 2, sizeof(index_type),
                          false, scratch);
        const index_type begin = row_ptrs[r];
        const index_type nnz = row_ptrs[r + 1] - begin;
        for (index_type k0 = 0; k0 < nnz; k0 += warp) {
            const int active =
                static_cast<int>(std::min<index_type>(warp, nnz - k0));
            contiguous_access(tracer, map.col_idxs, begin + k0, active,
                              sizeof(index_type), false, scratch);
            contiguous_access(tracer, map.values, begin + k0, active,
                              sizeof(real_type), false, scratch);
            gather_x(tracer, x_base, col_idxs.data() + begin + k0, active,
                     gather);
            tracer.flop(active, 2);  // fused multiply-add per lane
        }
        warp_reduce(tracer, static_cast<int>(std::min<index_type>(
                                warp, std::max<index_type>(nnz, 1))));
        vec_write(tracer, y_base, r, 1, scratch);
    }
    (void)warps;
    tracer.barrier();
}

void trace_spmv_ell(BlockTracer& tracer, const AddressMap& map,
                    index_type rows, index_type nnz_per_row,
                    const std::vector<index_type>& ell_col_idxs,
                    std::uint64_t x_base, std::uint64_t y_base)
{
    const int warp = tracer.warp_size();
    std::vector<std::uint64_t> scratch;
    std::vector<std::uint64_t> gather;
    std::vector<index_type> cols(static_cast<std::size_t>(warp));

    // Lane r accumulates row r; the slot loop is the outer loop so
    // consecutive lanes read consecutive memory (column-major layout).
    for (index_type k = 0; k < nnz_per_row; ++k) {
        for (index_type r0 = 0; r0 < rows; r0 += warp) {
            const int active =
                static_cast<int>(std::min<index_type>(warp, rows - r0));
            const index_type slot_first = k * rows + r0;
            contiguous_access(tracer, map.col_idxs, slot_first, active,
                              sizeof(index_type), false, scratch);
            contiguous_access(tracer, map.values, slot_first, active,
                              sizeof(real_type), false, scratch);
            int live = 0;
            for (int lane = 0; lane < active; ++lane) {
                const index_type c =
                    ell_col_idxs[static_cast<std::size_t>(slot_first) +
                                 lane];
                if (c != ell_padding) {
                    cols[static_cast<std::size_t>(live++)] = c;
                }
            }
            if (live > 0) {
                gather_x(tracer, x_base, cols.data(), live, gather);
                tracer.flop(live, 2);
            }
        }
    }
    for (index_type r0 = 0; r0 < rows; r0 += warp) {
        const int active =
            static_cast<int>(std::min<index_type>(warp, rows - r0));
        vec_write(tracer, y_base, r0, active, scratch);
    }
    tracer.barrier();
}

void trace_spmv_ell_multi(BlockTracer& tracer, const AddressMap& map,
                          index_type rows, index_type nnz_per_row,
                          const std::vector<index_type>& ell_col_idxs,
                          int threads_per_row, std::uint64_t x_base,
                          std::uint64_t y_base)
{
    const int warp = tracer.warp_size();
    BSIS_ENSURE_ARG(threads_per_row >= 1 && warp % threads_per_row == 0,
                    "threads_per_row must divide the warp size");
    const int rows_per_warp = warp / threads_per_row;
    std::vector<std::uint64_t> lane_vals;
    std::vector<std::uint64_t> lane_cols;
    std::vector<std::uint64_t> gather;

    // A warp covers `rows_per_warp` consecutive rows; within each row its
    // thread group strides over the slots.
    for (index_type r0 = 0; r0 < rows; r0 += rows_per_warp) {
        const int active_rows = static_cast<int>(
            std::min<index_type>(rows_per_warp, rows - r0));
        for (index_type k0 = 0; k0 < nnz_per_row;
             k0 += threads_per_row) {
            lane_vals.clear();
            lane_cols.clear();
            gather.clear();
            int live = 0;
            for (int rr = 0; rr < active_rows; ++rr) {
                for (int t = 0; t < threads_per_row; ++t) {
                    const index_type k = k0 + t;
                    if (k >= nnz_per_row) {
                        continue;
                    }
                    const std::size_t slot =
                        static_cast<std::size_t>(k) * rows + (r0 + rr);
                    lane_cols.push_back(map.col_idxs +
                                        slot * sizeof(index_type));
                    lane_vals.push_back(map.values +
                                        slot * sizeof(real_type));
                    const index_type c = ell_col_idxs[slot];
                    if (c != ell_padding) {
                        if (x_base != shared_space) {
                            gather.push_back(
                                x_base + static_cast<std::uint64_t>(c) *
                                             sizeof(real_type));
                        }
                        ++live;
                    }
                }
            }
            tracer.load_global(lane_cols, sizeof(index_type));
            tracer.load_global(lane_vals, sizeof(real_type));
            if (x_base == shared_space) {
                tracer.load_shared(live);
            } else if (!gather.empty()) {
                tracer.load_global(gather, sizeof(real_type));
            }
            tracer.flop(live, 2);
        }
        // Sub-warp reduction: log2(threads_per_row) shuffle stages over
        // all groups of the warp.
        int width = threads_per_row;
        while (width > 1) {
            width /= 2;
            tracer.flop(active_rows * width);
        }
        std::vector<std::uint64_t> store;
        if (y_base != shared_space) {
            for (int rr = 0; rr < active_rows; ++rr) {
                store.push_back(y_base +
                                static_cast<std::uint64_t>(r0 + rr) *
                                    sizeof(real_type));
            }
            tracer.store_global(store, sizeof(real_type));
        } else {
            tracer.store_shared(active_rows);
        }
    }
    tracer.barrier();
}

void trace_dot(BlockTracer& tracer, index_type n, std::uint64_t a_base,
               std::uint64_t b_base)
{
    const int warp = tracer.warp_size();
    std::vector<std::uint64_t> scratch;
    // Grid-stride accumulation into per-lane partials.
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        vec_read(tracer, a_base, i0, active, scratch);
        if (b_base != a_base) {
            vec_read(tracer, b_base, i0, active, scratch);
        }
        tracer.flop(active, 2);
    }
    // Per-warp tree, then cross-warp tree via shared memory.
    warp_reduce(tracer, warp);
    tracer.barrier();
    tracer.store_shared(1);
    warp_reduce(tracer, tracer.num_warps());
    tracer.barrier();
}

void trace_axpy(BlockTracer& tracer, index_type n,
                const std::vector<std::uint64_t>& read_bases,
                std::uint64_t out_base)
{
    const int warp = tracer.warp_size();
    std::vector<std::uint64_t> scratch;
    for (index_type i0 = 0; i0 < n; i0 += warp) {
        const int active =
            static_cast<int>(std::min<index_type>(warp, n - i0));
        for (const auto base : read_bases) {
            vec_read(tracer, base, i0, active, scratch);
        }
        tracer.flop(active, 2);
        vec_write(tracer, out_base, i0, active, scratch);
    }
    tracer.barrier();
}

void trace_bicgstab(BlockTracer& tracer, const AddressMap& map,
                    TracedFormat format,
                    const std::vector<index_type>& row_ptrs,
                    const std::vector<index_type>& csr_col_idxs,
                    const std::vector<index_type>& ell_col_idxs,
                    index_type rows, index_type nnz_per_row, int iterations,
                    const StorageConfig& config)
{
    // Resolve every solver vector to shared memory or a spilled global
    // region, in slot order.
    BSIS_ENSURE_ARG(!config.slots.empty(), "storage config not built");
    std::vector<std::uint64_t> base(config.slots.size());
    int spill = 0;
    for (std::size_t i = 0; i < config.slots.size(); ++i) {
        base[i] = config.slots[i].space == MemSpace::shared
                      ? shared_space
                      : map.spill_vec(spill++);
    }
    const auto vec = [&](const char* name) {
        for (std::size_t i = 0; i < config.slots.size(); ++i) {
            if (config.slots[i].name == name) {
                return base[i];
            }
        }
        throw BadArgument("trace_bicgstab",
                          std::string("unknown slot ") + name);
    };
    const auto p_hat = vec("p_hat");
    const auto v = vec("v");
    const auto s_hat = vec("s_hat");
    const auto t = vec("t");
    const auto r = vec("r");
    const auto r_hat = vec("r_hat");
    const auto p = vec("p");
    const auto s = vec("s");
    const auto x = vec("x");
    const bool has_jacobi = config.slots.back().cls == SlotClass::precond;
    const std::uint64_t inv_diag =
        has_jacobi ? base.back() : shared_space;

    const auto spmv = [&](std::uint64_t in, std::uint64_t out) {
        if (format == TracedFormat::csr) {
            trace_spmv_csr(tracer, map, row_ptrs, csr_col_idxs, in, out);
        } else {
            trace_spmv_ell(tracer, map, rows, nnz_per_row, ell_col_idxs, in,
                           out);
        }
    };
    const auto precond = [&](std::uint64_t in, std::uint64_t out) {
        if (has_jacobi) {
            trace_axpy(tracer, rows, {inv_diag, in}, out);
        } else {
            trace_axpy(tracer, rows, {in}, out);
        }
    };

    // Setup: Jacobi generation (diagonal gather + invert), r = b - A x,
    // r_hat = r, initial norm.
    if (has_jacobi) {
        trace_axpy(tracer, rows, {map.values}, inv_diag);
    }
    spmv(x, t);
    trace_axpy(tracer, rows, {map.b, t}, r);
    trace_axpy(tracer, rows, {r}, r_hat);
    trace_dot(tracer, rows, r, r);

    for (int it = 0; it < iterations; ++it) {
        trace_dot(tracer, rows, r, r_hat);        // rho
        trace_axpy(tracer, rows, {r, p, v}, p);   // p update
        precond(p, p_hat);
        spmv(p_hat, v);
        trace_dot(tracer, rows, r_hat, v);        // alpha denominator
        trace_axpy(tracer, rows, {r, v}, s);      // s = r - alpha v
        trace_dot(tracer, rows, s, s);            // ||s||
        precond(s, s_hat);
        spmv(s_hat, t);
        trace_dot(tracer, rows, t, s);            // omega numerator
        trace_dot(tracer, rows, t, t);            // omega denominator
        trace_axpy(tracer, rows, {x, p_hat, s_hat}, x);
        trace_axpy(tracer, rows, {s, t}, r);
        trace_dot(tracer, rows, r, r);            // ||r||
    }
}

}  // namespace bsis::gpusim
