// Shared JSON string escaping for every obs emitter.
//
// The metrics snapshot, the Chrome trace, the flight-recorder sidecars,
// the drift annotations, and the event log all hand-write small JSON
// documents; they used to interpolate names raw (or each carried a
// private escaper), so a metric or span name containing a quote,
// backslash, or control character produced an invalid document. Every
// emitter now routes strings through this one escaper.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace bsis::obs {

/// Appends `s` to `os` with JSON string escaping applied (quotes,
/// backslashes, and control characters; the surrounding quotes are the
/// caller's).
inline void json_escape(std::ostream& os, std::string_view s)
{
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\r':
            os << "\\r";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

/// Appends `s` as a complete JSON string token (quotes included).
inline void json_quote(std::ostream& os, std::string_view s)
{
    os << '"';
    json_escape(os, s);
    os << '"';
}

/// String form of json_quote for stream-free call sites.
inline std::string json_quoted(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

}  // namespace bsis::obs
