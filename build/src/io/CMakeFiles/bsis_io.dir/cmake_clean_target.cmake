file(REMOVE_RECURSE
  "libbsis_io.a"
)
