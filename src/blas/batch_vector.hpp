// Batched vector storage and views.
//
// A BatchVector holds `num_batch` independent vectors of equal length in one
// contiguous allocation (entry-major). Solvers operate on per-entry
// VecView/ConstVecView spans, so the same kernels work on owned storage, on
// shared-memory-simulated workspaces, and on slices of larger arrays.
#pragma once

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// Mutable view of one vector of a batch: pointer + length.
template <typename T>
struct VecView {
    T* data = nullptr;
    index_type len = 0;

    T& operator[](index_type i) const { return data[i]; }
    T* begin() const { return data; }
    T* end() const { return data + len; }
};

/// Read-only view of one vector of a batch.
template <typename T>
struct ConstVecView {
    const T* data = nullptr;
    index_type len = 0;

    ConstVecView() = default;
    ConstVecView(const T* d, index_type l) : data(d), len(l) {}
    /// Implicit conversion so kernels can take const views of mutable data.
    ConstVecView(VecView<T> v) : data(v.data), len(v.len) {}

    const T& operator[](index_type i) const { return data[i]; }
    const T* begin() const { return data; }
    const T* end() const { return data + len; }
};

/// `num_batch` vectors of length `len` in one contiguous entry-major array.
template <typename T>
class BatchVector {
public:
    BatchVector() = default;

    BatchVector(size_type num_batch, index_type len, T fill_value = T{})
        : num_batch_(num_batch), len_(len)
    {
        BSIS_ENSURE_ARG(num_batch >= 0, "negative batch count");
        BSIS_ENSURE_ARG(len >= 0, "negative vector length");
        values_.assign(static_cast<std::size_t>(num_batch) * len,
                       fill_value);
    }

    size_type num_batch() const { return num_batch_; }
    index_type len() const { return len_; }

    VecView<T> entry(size_type b)
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {values_.data() + static_cast<std::size_t>(b) * len_, len_};
    }

    ConstVecView<T> entry(size_type b) const
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {values_.data() + static_cast<std::size_t>(b) * len_, len_};
    }

    T* data() { return values_.data(); }
    const T* data() const { return values_.data(); }
    size_type size() const { return static_cast<size_type>(values_.size()); }

    void fill(T value) { std::fill(values_.begin(), values_.end(), value); }

private:
    size_type num_batch_ = 0;
    index_type len_ = 0;
    std::vector<T> values_;
};

}  // namespace bsis
