// ConvergenceHistory: bounded per-system residual trajectories.
//
// The paper's Listing 1 LogType records only the final iteration count and
// residual of every system; this recorder optionally keeps the trajectory
// -- the residual norm at the top of every solver iteration -- behind
// `SolverSettings::record_convergence`. Memory is bounded per system by
// stride decimation: once a trajectory reaches its capacity, every other
// retained point is dropped and the admission stride doubles, so long
// solves keep an evenly thinned trajectory (always including iteration 0)
// plus the exact final point.
//
// Thread safety matches the solver drivers' ownership model: each batch
// system is recorded by exactly one thread (the thread, or lockstep lane,
// solving it), and reads happen after the parallel region.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace bsis::obs {

/// One retained trajectory point.
struct HistoryPoint {
    int iteration = 0;
    real_type residual = 0;
};

class ConvergenceHistory {
public:
    /// Sizes the recorder for `num_batch` systems retaining at most
    /// `capacity` (>= 2) trajectory points each. Drops prior content.
    void reset(size_type num_batch, int capacity = 64);

    /// True when reset() has armed the recorder (recording toggled on).
    bool active() const { return capacity_ > 0; }

    size_type num_batch() const
    {
        return static_cast<size_type>(systems_.size());
    }
    int capacity() const { return capacity_; }

    /// Records the residual at the top of `iteration` (0 = initial
    /// residual). Points arriving out of stride are dropped.
    void record(size_type system, int iteration, real_type residual);

    /// Stores the exact final state of the system's solve.
    void finalize(size_type system, int iterations, real_type residual,
                  bool converged);

    /// Retained trajectory (ascending iterations; thinned, never empty
    /// when at least iteration 0 was recorded).
    const std::vector<HistoryPoint>& points(size_type system) const;

    /// Current admission stride (a power of two; 1 until the first
    /// decimation).
    int stride(size_type system) const;

    HistoryPoint final_point(size_type system) const;
    bool converged(size_type system) const;
    bool finalized(size_type system) const;

private:
    struct System {
        std::vector<HistoryPoint> points;
        int stride = 1;
        HistoryPoint final;
        bool converged = false;
        bool finalized = false;
    };

    int capacity_ = 0;
    std::vector<System> systems_;
};

}  // namespace bsis::obs
