# Empty compiler generated dependencies file for bsis_util.
# This may be replaced when dependencies are built.
