// SIMT execution tracer.
//
// Kernels in simt_kernels.cpp are written against this tracer the way a
// CUDA/HIP kernel is written against a thread block: warp-level
// instructions with explicit active-lane masks and per-lane memory
// addresses. The tracer feeds global accesses through the coalescing unit
// and cache hierarchy and accumulates the counters NVIDIA Nsight Compute /
// AMD rocprof report -- warp (wavefront) utilization and L1/L2 hit rates --
// which reproduces Table II of the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/cache.hpp"
#include "util/types.hpp"

namespace bsis::gpusim {

/// Profiler counters of one traced block execution.
struct SimtCounters {
    std::int64_t warp_instructions = 0;
    std::int64_t active_lane_sum = 0;
    std::int64_t shared_accesses = 0;
    std::int64_t flops = 0;
    std::int64_t barriers = 0;

    /// Mean active lanes per issued warp instruction / warp width --
    /// the "wavefront/warp use %" column of Table II.
    double warp_utilization(int warp_size) const
    {
        return warp_instructions == 0
                   ? 0.0
                   : static_cast<double>(active_lane_sum) /
                         (static_cast<double>(warp_instructions) *
                          warp_size);
    }

    SimtCounters& operator+=(const SimtCounters& other)
    {
        warp_instructions += other.warp_instructions;
        active_lane_sum += other.active_lane_sum;
        shared_accesses += other.shared_accesses;
        flops += other.flops;
        barriers += other.barriers;
        return *this;
    }
};

/// One simulated thread block bound to a CU's memory hierarchy.
class BlockTracer {
public:
    BlockTracer(int block_threads, int warp_size, MemoryHierarchy* mem);

    int block_threads() const { return block_threads_; }
    int warp_size() const { return warp_size_; }
    int num_warps() const { return num_warps_; }

    /// Generic ALU/shuffle warp instruction.
    void instr(int active_lanes);

    /// Arithmetic warp instruction contributing `per_lane` flops per lane.
    void flop(int active_lanes, int per_lane = 1);

    /// One warp global load: `lane_addrs` holds the byte address touched by
    /// each ACTIVE lane; inactive lanes are simply absent.
    void load_global(const std::vector<std::uint64_t>& lane_addrs,
                     int bytes_per_lane);
    void store_global(const std::vector<std::uint64_t>& lane_addrs,
                      int bytes_per_lane);

    /// Shared-memory access (no cache model: LDS/shared is explicitly
    /// managed and conflict-free for these access patterns).
    void load_shared(int active_lanes);
    void store_shared(int active_lanes);

    /// Block-wide barrier (__syncthreads / s_barrier).
    void barrier();

    const SimtCounters& counters() const { return counters_; }

private:
    int block_threads_;
    int warp_size_;
    int num_warps_;
    MemoryHierarchy* mem_;
    SimtCounters counters_;
    std::vector<std::uint64_t> segments_;
};

}  // namespace bsis::gpusim
