
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/monolithic.cpp" "src/core/CMakeFiles/bsis_core.dir/monolithic.cpp.o" "gcc" "src/core/CMakeFiles/bsis_core.dir/monolithic.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/bsis_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/bsis_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/storage_config.cpp" "src/core/CMakeFiles/bsis_core.dir/storage_config.cpp.o" "gcc" "src/core/CMakeFiles/bsis_core.dir/storage_config.cpp.o.d"
  "/root/repo/src/core/tuning.cpp" "src/core/CMakeFiles/bsis_core.dir/tuning.cpp.o" "gcc" "src/core/CMakeFiles/bsis_core.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bsis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/bsis_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/lapack/CMakeFiles/bsis_lapack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
