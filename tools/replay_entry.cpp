// Replay one captured failure bundle through every execution path.
//
// A flight-recorder bundle (see obs/flight_recorder.hpp) holds everything
// needed to re-run a single failed system offline: matrix, right-hand
// side, initial guess, and the solver composition that failed. This tool
// loads a bundle, re-runs the system through the scalar OpenMP path, the
// SIMD batch-lockstep path, and the simulated-GPU executor, prints the
// failure classification and residual trajectory of each side by side,
// and exits nonzero when the paths disagree on the failure class -- a
// disagreement means a path-specific numerical bug, which is exactly what
// the cross-path replay is for.
//
//   replay_entry BUNDLE_DIR [options]
//   replay_entry --selftest DIR     end-to-end check: synthesize a batch
//                                   with known failures, capture it, then
//                                   replay every bundle
//
// Options:
//   --solver=NAME    override the captured solver (bicgstab, cg, ...)
//   --precond=NAME   override the captured preconditioner
//   --format=NAME    matrix format: csr (default), ell, sellp, dense
//   --lockstep=W     lockstep width for the lockstep path (default 8)
//   --max-iters=N    override the captured iteration cap
//   --pipelined      replay with the pipelined kernel variant on every
//                    path, plus a classic-variant scalar baseline row, so
//                    the side-by-side diff covers the variant boundary
//                    (classification must agree across variants too)
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/forensics.hpp"
#include "exec/executor.hpp"
#include "matrix/conversions.hpp"
#include "obs/flight_recorder.hpp"
#include "util/table.hpp"

namespace {

using namespace bsis;

struct PathOutcome {
    std::string path;
    FailureClass failure = FailureClass::max_iters;
    int iterations = 0;
    real_type residual = 0;
    std::vector<obs::HistoryPoint> trajectory;
};

PathOutcome outcome_of(std::string path, const BatchLog& log,
                       const obs::ConvergenceHistory& history)
{
    PathOutcome out;
    out.path = std::move(path);
    out.failure = log.failure(0);
    out.iterations = log.iterations(0);
    out.residual = log.residual_norm(0);
    if (history.active()) {
        out.trajectory = history.points(0);
    }
    return out;
}

template <typename Matrix>
PathOutcome run_host_path(std::string path, const Matrix& a,
                          const BatchVector<real_type>& b,
                          const BatchVector<real_type>& x0,
                          SolverSettings settings, int lockstep_width)
{
    settings.lockstep_width = lockstep_width;
    settings.record_convergence = true;
    settings.use_initial_guess = true;  // x0 is the bundle's actual guess
    settings.flight_recorder = nullptr;
    BatchVector<real_type> x = x0;
    const auto result = solve_batch(a, b, x, settings);
    return outcome_of(std::move(path), result.log, result.history);
}

PathOutcome run_simgpu_path(const BatchCsr<real_type>& a,
                            const BatchVector<real_type>& b,
                            const BatchVector<real_type>& x0,
                            SolverSettings settings)
{
    settings.lockstep_width = 0;
    settings.record_convergence = true;
    settings.use_initial_guess = true;
    settings.flight_recorder = nullptr;
    SimGpuExecutor exec(gpusim::v100());
    BatchVector<real_type> x = x0;
    const auto report = exec.solve(a, b, x, settings);
    return outcome_of("simgpu(V100)", report.log, report.history);
}

struct ReplayOptions {
    std::string format = "csr";
    std::string solver_override;
    std::string precond_override;
    int lockstep_width = 8;
    int max_iters_override = -1;
    /// Replay with the pipelined kernels (solver-variant override); a
    /// classic-variant scalar row joins the diff as the baseline.
    bool pipelined = false;
};

/// Re-runs one bundle through all three paths. Returns true when every
/// path agrees on the failure class.
bool replay_bundle(const std::string& bundle_dir, const ReplayOptions& opt,
                   std::string* agreed_class = nullptr)
{
    const auto bundle = obs::load_bundle(bundle_dir);
    SolverSettings settings;
    if (!apply_bundle_meta(bundle.meta, settings)) {
        std::cerr << "unknown solver/precond/stop name in " << bundle_dir
                  << "/meta.json\n";
        return false;
    }
    if (!opt.solver_override.empty() &&
        !solver_from_name(opt.solver_override, settings.solver)) {
        std::cerr << "unknown solver " << opt.solver_override << '\n';
        return false;
    }
    if (!opt.precond_override.empty() &&
        !precond_from_name(opt.precond_override, settings.precond)) {
        std::cerr << "unknown preconditioner " << opt.precond_override
                  << '\n';
        return false;
    }
    if (opt.max_iters_override >= 0) {
        settings.max_iterations = opt.max_iters_override;
    }
    if (opt.pipelined) {
        settings.pipelined = true;
        settings.fused_kernels = true;  // the pipelined variants are fused
    }

    const auto n = static_cast<index_type>(bundle.a.rows);
    auto csr = io::from_coo({bundle.a});
    BatchVector<real_type> b(1, n);
    BatchVector<real_type> x0(1, n);
    for (index_type i = 0; i < n; ++i) {
        b.entry(0)[i] = bundle.b[static_cast<std::size_t>(i)];
        x0.entry(0)[i] = bundle.x0[static_cast<std::size_t>(i)];
    }

    std::cout << "bundle " << bundle_dir << ": system "
              << bundle.meta.system_index << ", recorded "
              << bundle.meta.failure << " after " << bundle.meta.iterations
              << " iterations (solver " << solver_name(settings.solver)
              << ", precond " << precond_name(settings.precond)
              << ", format " << opt.format
              << (opt.pipelined ? ", variant pipelined" : "") << ")\n";

    std::vector<PathOutcome> outcomes;
    if (opt.pipelined) {
        // Cross-variant baseline: the classic kernels on the scalar path.
        // Classification must agree across the variant boundary as well.
        auto classic = settings;
        classic.pipelined = false;
        outcomes.push_back(
            run_host_path("scalar-classic", csr, b, x0, classic, 0));
    }
    if (opt.format == "ell") {
        const auto ell = to_ell(csr);
        outcomes.push_back(run_host_path("scalar", ell, b, x0, settings, 0));
        outcomes.push_back(run_host_path("lockstep", ell, b, x0, settings,
                                         opt.lockstep_width));
    } else if (opt.format == "sellp") {
        const auto sellp = to_sellp(csr);
        outcomes.push_back(
            run_host_path("scalar", sellp, b, x0, settings, 0));
        outcomes.push_back(run_host_path("lockstep", sellp, b, x0, settings,
                                         opt.lockstep_width));
    } else if (opt.format == "dense") {
        const auto dense = to_dense(csr);
        outcomes.push_back(
            run_host_path("scalar", dense, b, x0, settings, 0));
        // The lockstep path covers the sparse formats only; dense falls
        // back to scalar inside the driver, so skip the duplicate run.
    } else if (opt.format == "csr") {
        outcomes.push_back(run_host_path("scalar", csr, b, x0, settings, 0));
        outcomes.push_back(run_host_path("lockstep", csr, b, x0, settings,
                                         opt.lockstep_width));
    } else {
        std::cerr << "unknown format " << opt.format
                  << " (csr, ell, sellp, dense)\n";
        return false;
    }
    outcomes.push_back(run_simgpu_path(csr, b, x0, settings));

    Table summary({"path", "class", "iterations", "residual"});
    for (const auto& o : outcomes) {
        summary.new_row()
            .add(o.path)
            .add(failure_class_name(o.failure))
            .add(o.iterations)
            .add(static_cast<double>(o.residual), 6);
    }
    summary.print(std::cout);

    // Residual-trajectory diff: one row per recorded point, the paths side
    // by side. Diverging trajectories locate WHERE two paths part ways
    // even when they agree on the final class.
    std::size_t depth = 0;
    for (const auto& o : outcomes) {
        depth = std::max(depth, o.trajectory.size());
    }
    if (depth > 0) {
        std::vector<std::string> header{"point"};
        for (const auto& o : outcomes) {
            header.push_back(o.path + "_iter");
            header.push_back(o.path + "_res");
        }
        Table diff(std::move(header));
        for (std::size_t p = 0; p < depth; ++p) {
            auto& row = diff.new_row();
            row.add(p);
            for (const auto& o : outcomes) {
                if (p < o.trajectory.size()) {
                    row.add(o.trajectory[p].iteration)
                        .add(static_cast<double>(o.trajectory[p].residual),
                             6);
                } else {
                    row.add("-").add("-");
                }
            }
        }
        std::cout << '\n';
        diff.print(std::cout);
    }

    bool agree = true;
    for (const auto& o : outcomes) {
        agree = agree && o.failure == outcomes.front().failure;
    }
    if (!agree) {
        std::cout << "\nPATH DISAGREEMENT: the execution paths classify "
                     "this system differently\n";
    } else if (agreed_class != nullptr) {
        *agreed_class = failure_class_name(outcomes.front().failure);
    }
    return agree;
}

/// End-to-end exercise of the forensics loop: seed a batch with known
/// failure modes, capture the non-converged systems, then replay every
/// bundle and demand cross-path agreement and reproduction of the
/// recorded class.
int selftest(const std::string& dir)
{
    // Three systems on one shared tridiagonal pattern:
    //   0: singular (Neumann Laplacian) with inconsistent rhs -> breakdown
    //      or stagnation, never convergence
    //   1: well-conditioned but rhs poisoned with a NaN -> non_finite
    //   2: well-conditioned -> converges; must NOT be captured
    const index_type n = 16;
    const auto tridiag = [n](real_type diag, real_type off,
                             bool laplacian) {
        io::Coo coo;
        coo.rows = n;
        coo.cols = n;
        for (index_type r = 0; r < n; ++r) {
            for (index_type c = std::max(r - 1, index_type{0});
                 c <= std::min(r + 1, n - 1); ++c) {
                real_type v = r == c ? diag : off;
                if (laplacian && r == c) {
                    // Row sum zero: diagonal = number of neighbors.
                    v = (r == 0 || r == n - 1) ? -off : -2 * off;
                }
                coo.row_idxs.push_back(r);
                coo.col_idxs.push_back(c);
                coo.values.push_back(v);
            }
        }
        return coo;
    };
    const auto a = io::from_coo({tridiag(2, -1, true), tridiag(2, -1, false),
                                 tridiag(2, -1, false)});
    BatchVector<real_type> b(3, n, real_type{1});
    b.entry(0)[0] = 2;  // inconsistent rhs for the singular system
    b.entry(1)[n / 2] = std::nan("");
    BatchVector<real_type> x(3, n);

    obs::FlightRecorder recorder(dir);
    SolverSettings settings;
    settings.solver = SolverType::bicgstab;
    settings.precond = PrecondType::jacobi;
    settings.tolerance = 1e-10;
    settings.max_iterations = 200;
    settings.record_convergence = true;
    settings.flight_recorder = &recorder;
    const auto result = solve_batch(a, b, x, settings);

    int failures = 0;
    if (result.log.failure(2) != FailureClass::converged) {
        std::cerr << "selftest: control system did not converge\n";
        ++failures;
    }
    if (result.log.failure(1) != FailureClass::non_finite) {
        std::cerr << "selftest: NaN-poisoned system classified as "
                  << failure_class_name(result.log.failure(1)) << '\n';
        ++failures;
    }
    if (result.log.failure(0) == FailureClass::converged) {
        std::cerr << "selftest: singular system converged?\n";
        ++failures;
    }
    const auto bundles = obs::list_bundles(dir);
    if (recorder.captured() != 2 || bundles.size() != 2) {
        std::cerr << "selftest: expected 2 bundles, recorder captured "
                  << recorder.captured() << ", found " << bundles.size()
                  << " on disk\n";
        ++failures;
    }
    for (const auto& bundle_dir : bundles) {
        const auto recorded = obs::load_bundle(bundle_dir).meta.failure;
        std::string replayed;
        std::cout << '\n';
        if (!replay_bundle(bundle_dir, ReplayOptions{}, &replayed)) {
            std::cerr << "selftest: paths disagree for " << bundle_dir
                      << '\n';
            ++failures;
        } else if (replayed != recorded) {
            std::cerr << "selftest: replay classified " << replayed
                      << " but the bundle recorded " << recorded << '\n';
            ++failures;
        }
        // Cross-variant replay: the pipelined kernels must classify the
        // same failure, and the diff table now includes a classic-variant
        // scalar baseline so the agreement check spans the variant
        // boundary.
        ReplayOptions pipelined_opt;
        pipelined_opt.pipelined = true;
        std::string replayed_pipelined;
        std::cout << '\n';
        if (!replay_bundle(bundle_dir, pipelined_opt, &replayed_pipelined)) {
            std::cerr << "selftest: pipelined variant disagrees for "
                      << bundle_dir << '\n';
            ++failures;
        } else if (replayed_pipelined != recorded) {
            std::cerr << "selftest: pipelined replay classified "
                      << replayed_pipelined << " but the bundle recorded "
                      << recorded << '\n';
            ++failures;
        }
    }
    std::cout << "\nselftest: " << (failures == 0 ? "PASS" : "FAIL")
              << '\n';
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv)
{
    std::string bundle_dir;
    std::string selftest_dir;
    ReplayOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--selftest") == 0 && i + 1 < argc) {
            selftest_dir = argv[++i];
        } else if (std::strncmp(arg, "--solver=", 9) == 0) {
            opt.solver_override = arg + 9;
        } else if (std::strncmp(arg, "--precond=", 10) == 0) {
            opt.precond_override = arg + 10;
        } else if (std::strncmp(arg, "--format=", 9) == 0) {
            opt.format = arg + 9;
        } else if (std::strncmp(arg, "--lockstep=", 11) == 0) {
            opt.lockstep_width = std::atoi(arg + 11);
        } else if (std::strncmp(arg, "--max-iters=", 12) == 0) {
            opt.max_iters_override = std::atoi(arg + 12);
        } else if (std::strcmp(arg, "--pipelined") == 0) {
            opt.pipelined = true;
        } else if (arg[0] != '-' && bundle_dir.empty()) {
            bundle_dir = arg;
        } else {
            std::cerr << "usage: replay_entry BUNDLE_DIR [--solver=NAME] "
                         "[--precond=NAME] [--format=csr|ell|sellp|dense] "
                         "[--lockstep=W] [--max-iters=N] [--pipelined]\n"
                         "       replay_entry --selftest DIR\n";
            return 2;
        }
    }
    if (!selftest_dir.empty()) {
        return selftest(selftest_dir);
    }
    if (bundle_dir.empty()) {
        std::cerr << "usage: replay_entry BUNDLE_DIR | --selftest DIR\n";
        return 2;
    }
    try {
        return replay_bundle(bundle_dir, opt) ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "replay failed: " << e.what() << '\n';
        return 2;
    }
}
