// TraceSession: phase-level begin/end spans serialized as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Host-side spans nest per thread through a thread-local open-span stack:
// begin() pushes, end() pops and materializes one complete ("ph": "X")
// event with the span's start timestamp and duration. Modeled timelines
// (the gpusim wave scheduler's per-block schedule) are emitted directly
// with emit_complete() under a separate pid, so the host wall-clock
// timeline and the modeled device timeline render as two process tracks.
//
// Events are staged in per-thread cache-line-aligned shards (the
// BatchLogStage pattern); the buffer is bounded -- once a shard reaches
// the configured capacity further events are dropped and counted, never
// reallocated without limit. All record sites are expected to be gated by
// `obs::trace_enabled()` (see obs/telemetry.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/sharding.hpp"

namespace bsis::obs {

/// One complete span. `name` and `cat` must be string literals (or other
/// storage outliving the session) -- the hot path never copies strings.
struct TraceEvent {
    const char* name = "";
    const char* cat = "";
    double ts_us = 0;   ///< start, microseconds since session start
    double dur_us = 0;  ///< duration in microseconds
    int pid = 0;        ///< host_pid or device_pid
    int tid = 0;        ///< host: thread registration order; device: slot
    std::int64_t arg = -1;  ///< optional "system"/"block" id; -1 = none
};

class TraceSession {
public:
    static constexpr int host_pid = 1;    ///< wall-clock host spans
    static constexpr int device_pid = 2;  ///< modeled gpusim timeline

    TraceSession();

    /// Opens a span on the calling thread; must be matched by end().
    void begin(const char* name, const char* cat, std::int64_t arg = -1);

    /// Closes the innermost open span of the calling thread.
    void end();

    /// Emits an already-timed span (modeled timelines; `ts_us`/`dur_us`
    /// need not relate to the session's wall clock).
    void emit_complete(const char* name, const char* cat, int pid, int tid,
                       double ts_us, double dur_us, std::int64_t arg = -1);

    /// Microseconds since the session epoch (construction or last clear).
    double now_us() const;

    /// Drops all recorded events and re-arms the epoch; per-thread shard
    /// registrations survive.
    void clear();

    /// Caps the events retained PER SHARD (thread); further events are
    /// dropped and counted. Applies to shards from the next event on.
    void set_shard_capacity(std::size_t max_events);
    std::size_t shard_capacity() const
    {
        return shard_capacity_.load(std::memory_order_relaxed);
    }

    std::int64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /// Merged copy of every shard's events (unsorted across shards).
    std::vector<TraceEvent> snapshot() const;

    /// The Chrome trace-event JSON document (events sorted by pid, tid,
    /// then timestamp).
    std::string chrome_trace_json() const;
    bool write_chrome_trace(const std::string& path) const;

private:
    struct OpenSpan {
        const char* name;
        const char* cat;
        double ts_us;
        std::int64_t arg;
    };
    struct alignas(64) Shard {
        int index = 0;  ///< registration order (required by PerThreadShards)
        mutable std::mutex mutex;
        std::vector<TraceEvent> events;
        std::vector<OpenSpan> stack;
    };

    void push_event(Shard& shard, const TraceEvent& event);

    std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::size_t> shard_capacity_{1u << 20};
    std::atomic<std::int64_t> dropped_{0};
    PerThreadShards<Shard> shards_;
};

}  // namespace bsis::obs
