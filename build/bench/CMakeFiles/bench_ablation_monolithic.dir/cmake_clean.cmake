file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_monolithic.dir/bench_ablation_monolithic.cpp.o"
  "CMakeFiles/bench_ablation_monolithic.dir/bench_ablation_monolithic.cpp.o.d"
  "bench_ablation_monolithic"
  "bench_ablation_monolithic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_monolithic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
