// Sections II and III of the paper position the batched iterative solvers
// against the pre-existing batched DIRECT approaches. This benchmark
// reproduces those comparisons:
//
//  1. Tridiagonal specialists (cuThomasBatch-style one-thread-per-system
//     Thomas, gtsv2-style cyclic reduction) on 1D collision-like systems:
//     exact solves vs BiCGStab stopping at the application tolerance --
//     and the iterative solver's "early stopping" advantage at looser
//     tolerances (Section III: "flexibility provided by the iterative
//     solvers in terms of early stopping ... can make them very
//     attractive even for relatively small problems").
//
//  2. Batched DENSE LU on the 992-row 9-point systems vs dgbsv on the
//     Skylake node (Section II: "using dense solvers on the GPU is not
//     enough to beat the gain obtained from exploiting the banded nature
//     of the matrix on the CPU").
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "lapack/tridiag.hpp"

namespace {

using namespace bsis;

/// 1D backward-Euler diffusion systems (the tridiagonal analogue of the
/// collision solves), one per batch entry, with mild per-entry variation.
void fill_tridiag(lapack::BatchTridiag& batch, real_type coupling)
{
    for (size_type b = 0; b < batch.num_batch(); ++b) {
        auto t = batch.entry(b);
        const real_type c =
            coupling * (1.0 + 0.1 * static_cast<real_type>(b % 7) / 7.0);
        for (index_type i = 0; i < t.n; ++i) {
            t.sub[i] = i > 0 ? -c : 0.0;
            t.sup[i] = i + 1 < t.n ? -c : 0.0;
            t.diag[i] = 1.0 + 2.0 * c;
        }
    }
}

/// The same systems as a shared-pattern CSR batch for the iterative path.
BatchCsr<real_type> tridiag_to_csr(lapack::BatchTridiag& batch)
{
    const index_type n = batch.n();
    std::vector<index_type> row_ptrs(static_cast<std::size_t>(n) + 1, 0);
    std::vector<index_type> col_idxs;
    for (index_type i = 0; i < n; ++i) {
        if (i > 0) col_idxs.push_back(i - 1);
        col_idxs.push_back(i);
        if (i + 1 < n) col_idxs.push_back(i + 1);
        row_ptrs[static_cast<std::size_t>(i) + 1] =
            static_cast<index_type>(col_idxs.size());
    }
    BatchCsr<real_type> csr(batch.num_batch(), n, row_ptrs, col_idxs);
    for (size_type b = 0; b < batch.num_batch(); ++b) {
        auto t = batch.entry(b);
        real_type* vals = csr.values(b);
        index_type p = 0;
        for (index_type i = 0; i < n; ++i) {
            if (i > 0) vals[p++] = t.sub[i];
            vals[p++] = t.diag[i];
            if (i + 1 < n) vals[p++] = t.sup[i];
        }
    }
    return csr;
}

}  // namespace

int main()
{
    using namespace bsis;
    const auto& device = gpusim::v100();
    const SimGpuExecutor gpu(device);
    const index_type n = 992;

    // --- Part 1: tridiagonal specialists vs batched iterative ---
    Table tri({"batch", "thomas_us", "cyclic_reduction_us",
               "bicgstab_tol1e-10_us", "bicgstab_tol1e-6_us"});
    for (const size_type nbatch : bench::batch_sizes()) {
        lapack::BatchTridiag batch(nbatch, n);
        fill_tridiag(batch, 0.8);
        auto csr = tridiag_to_csr(batch);
        BatchVector<real_type> b(nbatch, n, 1.0);
        BatchVector<real_type> x(nbatch, n);

        SolverSettings s;
        s.tolerance = 1e-10;
        const auto tight = gpu.solve(csr, b, x, s);
        s.tolerance = 1e-6;
        const auto loose = gpu.solve(csr, b, x, s);

        tri.new_row()
            .add(nbatch)
            .add(gpusim::thomas_batched_seconds(device, n, nbatch) * 1e6, 5)
            .add(gpusim::cyclic_reduction_batched_seconds(device, n,
                                                          nbatch) *
                     1e6,
                 5)
            .add(tight.kernel_seconds * 1e6, 5)
            .add(loose.kernel_seconds * 1e6, 5);
    }
    bench::emit("related_tridiag",
                "Related work: batched tridiagonal direct solvers vs "
                "batched BiCGStab (1D collision-like systems, V100 model)",
                tri);

    // --- Part 2: batched dense LU vs the CPU banded solver (Section II) --
    Table dense({"batch", "dense_lu_gpu_ms", "dgbsv_skylake_ms",
                 "bicgstab_skylake_ms", "bicgstab_ell_gpu_ms"});
    const CpuExecutor skylake;
    for (const size_type nbatch : bench::batch_sizes()) {
        bench::XgcBatch problem(nbatch);
        auto ell = to_ell(problem.a);
        BatchVector<real_type> x(nbatch, problem.a.rows());
        SolverSettings s;
        s.tolerance = 1e-10;
        const auto iterative = gpu.solve(ell, problem.rhs(), x, s);
        const auto cpu = skylake.gbsv(problem.a, problem.rhs(), x);
        const auto cpu_iter =
            skylake.iterative(problem.a, problem.rhs(), x, s);
        dense.new_row()
            .add(nbatch)
            .add(gpusim::dense_lu_batched_seconds(device, problem.a.rows(),
                                                  nbatch) *
                     1e3,
                 5)
            .add(cpu.node_seconds * 1e3, 5)
            .add(cpu_iter.node_seconds * 1e3, 5)
            .add(iterative.kernel_seconds * 1e3, 5);
    }
    bench::emit("related_dense",
                "Section II: batched dense LU on the GPU vs banded dgbsv "
                "on the Skylake node vs batched BiCGStab(ELL)",
                dense);

    std::cout
        << "\nShape checks (paper):\n"
           "  * exact tridiagonal solvers win when exactness is required "
           "for 3-diagonal\n    systems, but the iterative solver's early "
           "stopping closes the gap\n"
           "  * dense LU on the GPU does NOT beat the CPU banded solver "
           "at n=992\n"
           "  * the batched iterative solver beats both\n";
    return 0;
}
