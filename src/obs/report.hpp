// Solve-report rendering: turns a metrics-JSON snapshot (and optionally a
// Chrome trace) into the human-readable performance-attribution report
// `tools/solve_report` and `--report=FILE` emit.
//
// The parser accepts exactly the document shape MetricsRegistry emits
// ({"counters": {...}, "gauges": {...}, "histograms": {name: {...}}});
// the renderer groups the attribution gauges back into per-phase tables,
// restates the roofline position of every phase, summarizes drift checks
// and failure classes, and flags gate violations (drift alarms,
// out-of-bounds bandwidth) so CI can fail on them.
#pragma once

#include <map>
#include <string>

namespace bsis::obs {

/// Flat view of one metrics snapshot document.
struct MetricsDocument {
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    /// histogram name -> {"count", "sum", "mean", "p50", "p95", "max"}.
    std::map<std::string, std::map<std::string, double>> histograms;

    bool has_gauge(const std::string& name) const
    {
        return gauges.count(name) != 0;
    }
    double gauge(const std::string& name, double fallback = 0.0) const
    {
        const auto it = gauges.find(name);
        return it == gauges.end() ? fallback : it->second;
    }
    double counter(const std::string& name, double fallback = 0.0) const
    {
        const auto it = counters.find(name);
        return it == counters.end() ? fallback : it->second;
    }
};

/// Parses a MetricsRegistry JSON snapshot. Returns false on malformed
/// input (unknown top-level keys are tolerated; non-numeric leaves are
/// not).
bool parse_metrics_json(const std::string& text, MetricsDocument& out);

/// Reads and parses `path`; returns false when unreadable or malformed.
bool load_metrics_json(const std::string& path, MetricsDocument& out);

/// Per-span aggregate of a Chrome trace document (name -> count and
/// summed duration), used for the report's trace section.
struct TraceSpanStats {
    std::int64_t count = 0;
    double total_us = 0;
};

/// Extracts per-name span aggregates from a Chrome trace-event JSON
/// document (the TraceSession output shape). Returns false on malformed
/// input.
bool summarize_trace_json(const std::string& text,
                          std::map<std::string, TraceSpanStats>& out);

struct SolveReport {
    std::string text;        ///< the rendered report
    int drift_alarms = 0;    ///< obs.drift alarm total in the snapshot
    int bandwidth_violations = 0;  ///< phases with GB/s outside (0, peak]
    int phases = 0;          ///< attribution phase rows rendered
};

/// Renders the report. `trace_spans` may be empty (section omitted).
SolveReport render_solve_report(
    const MetricsDocument& metrics,
    const std::map<std::string, TraceSpanStats>& trace_spans = {});

}  // namespace bsis::obs
