// Shared telemetry flags for the examples:
//   --trace=FILE         phase tracing on; Chrome trace JSON written to
//                        FILE at exit (load in chrome://tracing or
//                        ui.perfetto.dev)
//   --metrics-json=FILE  metrics registry on; JSON snapshot written to
//                        FILE at exit
//   --capture-failures=DIR  arm the flight recorder: every non-converged
//                        system of an armed solve is dumped as a replay
//                        bundle (A.mtx, b.mtx, x0.mtx, meta.json) under
//                        DIR, up to a bounded budget
//   --report=FILE        metrics registry on; the human-readable
//                        performance-attribution report (per-phase
//                        bandwidth/roofline table, drift summary,
//                        failure classes) rendered to FILE at exit --
//                        the same document `tools/solve_report` builds
//                        from a metrics snapshot
//   --drift-dump=DIR     arm the drift annotation dump: every solve
//                        whose measured-vs-modeled phase comparison
//                        alarms writes a drift_<seq>_<prefix>.json
//                        describing the disagreement under DIR
//   --monitor[=tick_ms]  metrics registry on; start the live monitor
//                        (background sampler + alert engine) at the given
//                        tick (default 250 ms)
//   --prom=FILE          implies --monitor; the Prometheus exposition is
//                        atomically rewritten to FILE every tick (point
//                        `obs_top FILE` or a node_exporter textfile
//                        collector at it)
//   --prom-port=N        implies --monitor; serve the exposition on
//                        127.0.0.1:N (N=0 binds an ephemeral port; the
//                        bound port is printed)
//   --alerts=FILE        implies --monitor; replace the default alert
//                        rules with FILE (one rule per line, see
//                        obs/monitor.hpp for the grammar)
//   --events=FILE        structured JSON-lines event log (solve start/end,
//                        failure captures, drift alarms, alert
//                        transitions) appended to FILE with size-capped
//                        rotation
//   --trace-buffer=N     cap each trace shard at N spans; overflow is
//                        dropped and counted in `obs.trace.dropped`
//
// Construct an ObsCli early in main with argc/argv: it consumes the
// recognized flags (compacting argv so positional parsing downstream is
// untouched), flips the obs runtime switches, and writes the requested
// artifacts from its destructor. Telemetry stays fully off -- and the
// instrumented hot paths at their one-branch disabled cost -- when
// neither flag is given.
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "obs/attribution.hpp"
#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/monitor.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace bsis::examples {

class ObsCli {
public:
    ObsCli(int& argc, char** argv)
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::strncmp(argv[i], "--trace=", 8) == 0) {
                trace_path_ = argv[i] + 8;
            } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
                metrics_path_ = argv[i] + 15;
            } else if (std::strncmp(argv[i], "--capture-failures=", 19) ==
                       0) {
                recorder_ =
                    std::make_unique<obs::FlightRecorder>(argv[i] + 19);
            } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
                report_path_ = argv[i] + 9;
            } else if (std::strncmp(argv[i], "--drift-dump=", 13) == 0) {
                drift_dump_ = true;
                obs::set_drift_dump_dir(argv[i] + 13);
            } else if (std::strcmp(argv[i], "--monitor") == 0) {
                monitor_requested_ = true;
            } else if (std::strncmp(argv[i], "--monitor=", 10) == 0) {
                monitor_requested_ = true;
                monitor_config_.tick_seconds =
                    std::atof(argv[i] + 10) / 1000.0;
            } else if (std::strncmp(argv[i], "--prom=", 7) == 0) {
                monitor_requested_ = true;
                monitor_config_.prom_path = argv[i] + 7;
            } else if (std::strncmp(argv[i], "--prom-port=", 12) == 0) {
                monitor_requested_ = true;
                monitor_config_.http = true;
                monitor_config_.http_port = std::atoi(argv[i] + 12);
            } else if (std::strncmp(argv[i], "--alerts=", 9) == 0) {
                monitor_requested_ = true;
                alerts_path_ = argv[i] + 9;
            } else if (std::strncmp(argv[i], "--events=", 9) == 0) {
                events_path_ = argv[i] + 9;
            } else if (std::strncmp(argv[i], "--trace-buffer=", 15) == 0) {
                obs::trace().set_shard_capacity(std::atoi(argv[i] + 15));
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;
        if (!trace_path_.empty()) {
            obs::set_trace_enabled(true);
        }
        if (!metrics_path_.empty() || !report_path_.empty() ||
            monitor_requested_) {
            obs::set_metrics_enabled(true);
        }
        if (!events_path_.empty()) {
            if (!obs::open_events(events_path_)) {
                std::cerr << "[obs] failed to open event log "
                          << events_path_ << '\n';
                events_path_.clear();
            }
        }
        if (monitor_requested_) {
            if (!alerts_path_.empty()) {
                std::string error;
                if (!obs::load_alert_rules(alerts_path_,
                                           monitor_config_.rules, &error)) {
                    std::cerr << "[obs] bad alert rules: " << error << '\n';
                }
            }
            if (monitor_config_.tick_seconds <= 0) {
                monitor_config_.tick_seconds = 0.25;
            }
            monitor_ = std::make_unique<obs::Monitor>(obs::metrics(),
                                                      monitor_config_);
            monitor_->start();
            if (monitor_config_.http) {
                std::cout << "[obs] prometheus endpoint on 127.0.0.1:"
                          << monitor_->http_port() << '\n';
            }
        }
    }

    ObsCli(const ObsCli&) = delete;
    ObsCli& operator=(const ObsCli&) = delete;

    ~ObsCli() { flush(); }

    /// Whether any telemetry flag was given.
    bool active() const
    {
        return !trace_path_.empty() || !metrics_path_.empty() ||
               !report_path_.empty() || monitor_ != nullptr ||
               !events_path_.empty();
    }

    /// The live monitor, or nullptr when --monitor/--prom/--prom-port was
    /// not given.
    obs::Monitor* monitor() const { return monitor_.get(); }

    /// The armed flight recorder, or nullptr when --capture-failures was
    /// not given. Assign to SolverSettings::flight_recorder.
    obs::FlightRecorder* recorder() const { return recorder_.get(); }

    /// Writes the requested artifacts and disables telemetry again.
    /// Idempotent; the destructor calls it for the common case.
    void flush()
    {
        if (monitor_ != nullptr) {
            // Stop (with its final publishing sample) while metrics and
            // the event log are still live.
            obs::sync_trace_dropped_gauge();
            monitor_->stop();
            int firing = 0;
            for (const auto& alert : monitor_->alerts()) {
                if (alert.phase == obs::AlertPhase::firing) {
                    std::cout << "[obs] ALERT firing: " << alert.rule.name
                              << " (" << alert.rule.metric << " = "
                              << alert.last_value << ")\n";
                    ++firing;
                }
            }
            std::cout << "[obs] monitor: " << monitor_->ticks()
                      << " ticks, " << firing << " alerts firing";
            if (!monitor_config_.prom_path.empty()) {
                std::cout << ", exposition at "
                          << monitor_config_.prom_path;
            }
            std::cout << '\n';
            monitor_.reset();
            if (metrics_path_.empty() && report_path_.empty()) {
                obs::set_metrics_enabled(false);
            }
        }
        if (!events_path_.empty()) {
            std::cout << "[obs] " << obs::events().emitted()
                      << " events logged to " << events_path_ << '\n';
            obs::close_events();
            events_path_.clear();
        }
        if (!report_path_.empty()) {
            obs::sync_trace_dropped_gauge();
            obs::MetricsDocument doc;
            if (!obs::parse_metrics_json(obs::metrics().snapshot_json(),
                                         doc)) {
                std::cerr << "[obs] failed to build report snapshot\n";
            } else {
                std::map<std::string, obs::TraceSpanStats> spans;
                obs::summarize_trace_json(obs::trace().chrome_trace_json(),
                                          spans);
                const auto report = obs::render_solve_report(doc, spans);
                std::ofstream out(report_path_);
                if (out && (out << report.text)) {
                    std::cout << "[obs] report written to " << report_path_
                              << '\n';
                } else {
                    std::cerr << "[obs] failed to write report to "
                              << report_path_ << '\n';
                }
            }
            report_path_.clear();
            if (metrics_path_.empty()) {
                obs::set_metrics_enabled(false);
            }
        }
        if (!trace_path_.empty()) {
            obs::set_trace_enabled(false);
            if (obs::trace().write_chrome_trace(trace_path_)) {
                std::cout << "[obs] trace written to " << trace_path_
                          << " (" << obs::trace().snapshot().size()
                          << " events)\n";
            } else {
                std::cerr << "[obs] failed to write trace to "
                          << trace_path_ << '\n';
            }
            trace_path_.clear();
        }
        if (!metrics_path_.empty()) {
            obs::sync_trace_dropped_gauge();
            obs::set_metrics_enabled(false);
            if (obs::metrics().write_json(metrics_path_)) {
                std::cout << "[obs] metrics written to " << metrics_path_
                          << '\n';
            } else {
                std::cerr << "[obs] failed to write metrics to "
                          << metrics_path_ << '\n';
            }
            metrics_path_.clear();
        }
        if (drift_dump_) {
            obs::set_drift_dump_dir("");
            drift_dump_ = false;
        }
        if (recorder_ != nullptr) {
            std::cout << "[obs] flight recorder: " << recorder_->captured()
                      << " of " << recorder_->seen()
                      << " failed systems captured under "
                      << recorder_->directory() << '\n';
            recorder_.reset();
        }
    }

private:
    std::string trace_path_;
    std::string metrics_path_;
    std::string report_path_;
    std::string events_path_;
    std::string alerts_path_;
    bool drift_dump_ = false;
    bool monitor_requested_ = false;
    obs::MonitorConfig monitor_config_;
    std::unique_ptr<obs::Monitor> monitor_;
    std::unique_ptr<obs::FlightRecorder> recorder_;
};

}  // namespace bsis::examples
