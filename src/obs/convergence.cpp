#include "obs/convergence.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsis::obs {

void ConvergenceHistory::reset(size_type num_batch, int capacity)
{
    BSIS_ENSURE_ARG(num_batch >= 0, "num_batch must be non-negative");
    BSIS_ENSURE_ARG(capacity >= 2, "capacity must be at least 2");
    capacity_ = capacity;
    systems_.assign(static_cast<std::size_t>(num_batch), System{});
}

void ConvergenceHistory::record(size_type system, int iteration,
                                real_type residual)
{
    BSIS_ASSERT(system >= 0 && system < num_batch());
    auto& sys = systems_[static_cast<std::size_t>(system)];
    if (iteration % sys.stride != 0) {
        return;
    }
    if (sys.points.size() == static_cast<std::size_t>(capacity_)) {
        // Keep every other point (those aligned to the doubled stride,
        // which always includes iteration 0), then retry admission.
        sys.stride *= 2;
        auto kept = sys.points.begin();
        for (const auto& p : sys.points) {
            if (p.iteration % sys.stride == 0) {
                *kept++ = p;
            }
        }
        sys.points.erase(kept, sys.points.end());
        if (iteration % sys.stride != 0) {
            return;
        }
    }
    sys.points.push_back({iteration, residual});
}

void ConvergenceHistory::finalize(size_type system, int iterations,
                                  real_type residual, bool converged)
{
    BSIS_ASSERT(system >= 0 && system < num_batch());
    auto& sys = systems_[static_cast<std::size_t>(system)];
    sys.final = {iterations, residual};
    sys.converged = converged;
    sys.finalized = true;
}

const std::vector<HistoryPoint>& ConvergenceHistory::points(
    size_type system) const
{
    BSIS_ASSERT(system >= 0 && system < num_batch());
    return systems_[static_cast<std::size_t>(system)].points;
}

int ConvergenceHistory::stride(size_type system) const
{
    BSIS_ASSERT(system >= 0 && system < num_batch());
    return systems_[static_cast<std::size_t>(system)].stride;
}

HistoryPoint ConvergenceHistory::final_point(size_type system) const
{
    BSIS_ASSERT(system >= 0 && system < num_batch());
    return systems_[static_cast<std::size_t>(system)].final;
}

bool ConvergenceHistory::converged(size_type system) const
{
    BSIS_ASSERT(system >= 0 && system < num_batch());
    return systems_[static_cast<std::size_t>(system)].converged;
}

bool ConvergenceHistory::finalized(size_type system) const
{
    BSIS_ASSERT(system >= 0 && system < num_batch());
    return systems_[static_cast<std::size_t>(system)].finalized;
}

}  // namespace bsis::obs
