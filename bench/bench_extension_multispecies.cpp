// Extension experiment: multi-ion-species plasmas.
//
// Section II-A of the paper: "the future XGC application is expected to
// simulate multiple ion species (~10) and electrons, the proxy app
// currently simulates a plasma with one ion species (along with
// electrons)". This benchmark scales the proxy app to several ion species
// (main ion + progressively heavier, higher-charge impurities) and shows
// how the batched solver absorbs the growing, increasingly heterogeneous
// batch -- the argument for per-system convergence monitoring.
#include <iostream>

#include "common.hpp"

int main()
{
    using namespace bsis;
    const SimGpuExecutor gpu(gpusim::a100());
    const size_type nodes = bench::quick_mode() ? 30 : 120;

    Table table({"ion_species", "systems", "iters_min", "iters_mean",
                 "iters_max", "gpu_ms", "us_per_entry"});
    for (const int num_ions : {1, 2, 4, 9}) {
        xgc::WorkloadParams wp;
        wp.num_mesh_nodes = nodes;
        wp.num_ion_species = num_ions;
        xgc::CollisionWorkload workload(wp);
        auto a = workload.make_matrix_batch();
        workload.assemble_batch(workload.distributions(),
                                workload.distributions(), 0.0035, a);
        auto ell = to_ell(a);
        BatchVector<real_type> x(workload.num_systems(), a.rows());
        SolverSettings s;
        s.tolerance = 1e-10;
        s.max_iterations = 500;
        const auto report = gpu.solve(ell, workload.distributions(), x, s);
        int min_it = report.log.iterations(0);
        for (size_type i = 0; i < report.log.num_batch(); ++i) {
            min_it = std::min(min_it, report.log.iterations(i));
        }
        table.new_row()
            .add(num_ions)
            .add(workload.num_systems())
            .add(min_it)
            .add(report.log.mean_iterations(), 4)
            .add(report.log.max_iterations())
            .add(report.kernel_seconds * 1e3, 5)
            .add(report.per_entry_seconds() * 1e6, 4);
        if (!report.log.all_converged()) {
            std::cerr << "WARNING: not all systems converged for "
                      << num_ions << " ion species\n";
        }
    }
    bench::emit("extension_multispecies",
                "Extension: scaling the proxy app toward future XGC's "
                "multi-ion plasmas (A100 model, BiCGStab-ELL)",
                table);
    std::cout
        << "\nReading guide: the iteration-count spread widens with the "
           "species mix\n(impurities collide faster, Z^4 scaling), which "
           "is exactly the regime where\nper-system convergence "
           "monitoring beats lock-step batched iteration.\n";
    return 0;
}
