#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "lapack/banded_lu.hpp"
#include "lapack/banded_qr.hpp"
#include "lapack/dense.hpp"
#include "lapack/eigen.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stencil.hpp"
#include "util/rng.hpp"

namespace bsis {
namespace {

using lapack::eigenvalues;

/// Random banded matrix made safely nonsingular via diagonal dominance.
BatchBanded<real_type> random_banded(size_type nbatch, index_type n,
                                     index_type kl, index_type ku,
                                     std::uint64_t seed)
{
    BatchBanded<real_type> banded(nbatch, n, kl, ku);
    Rng rng(seed);
    for (size_type b = 0; b < nbatch; ++b) {
        auto view = banded.entry(b);
        for (index_type i = 0; i < n; ++i) {
            real_type off = 0;
            for (index_type j = std::max<index_type>(0, i - kl);
                 j <= std::min<index_type>(n - 1, i + ku); ++j) {
                if (j != i) {
                    view(i, j) = rng.uniform(-1.0, 1.0);
                    off += std::abs(view(i, j));
                }
            }
            view(i, i) = off + 1.0 + rng.uniform();
        }
    }
    return banded;
}

/// Residual ||A x - b||_inf computed from an unfactorized copy.
real_type banded_residual(const BatchBanded<real_type>& a_orig,
                          size_type entry, const std::vector<real_type>& x,
                          const std::vector<real_type>& b)
{
    auto view = const_cast<BatchBanded<real_type>&>(a_orig).entry(entry);
    const index_type n = view.n;
    real_type worst = 0;
    for (index_type i = 0; i < n; ++i) {
        real_type sum = 0;
        for (index_type j = std::max<index_type>(0, i - view.kl);
             j <= std::min<index_type>(n - 1, i + view.ku); ++j) {
            sum += view(i, j) * x[static_cast<std::size_t>(j)];
        }
        worst = std::max(worst,
                         std::abs(sum - b[static_cast<std::size_t>(i)]));
    }
    return worst;
}

struct BandShape {
    index_type n;
    index_type kl;
    index_type ku;
};

class BandedSolvers : public ::testing::TestWithParam<BandShape> {};

TEST_P(BandedSolvers, GbsvSolvesToMachinePrecision)
{
    const auto [n, kl, ku] = GetParam();
    auto a = random_banded(1, n, kl, ku, 100 + n);
    auto a_copy = a;
    Rng rng(1);
    std::vector<real_type> b(static_cast<std::size_t>(n));
    for (auto& v : b) {
        v = rng.uniform(-1.0, 1.0);
    }
    auto x = b;
    lapack::gbsv(a.entry(0), VecView<real_type>{x.data(), n});
    EXPECT_LT(banded_residual(a_copy, 0, x, b), 1e-11);
}

TEST_P(BandedSolvers, GbqrSolvesToMachinePrecision)
{
    const auto [n, kl, ku] = GetParam();
    auto a = random_banded(1, n, kl, ku, 300 + n);
    auto a_copy = a;
    Rng rng(2);
    std::vector<real_type> b(static_cast<std::size_t>(n));
    for (auto& v : b) {
        v = rng.uniform(-1.0, 1.0);
    }
    auto x = b;
    lapack::gbqr_solve(a.entry(0), VecView<real_type>{x.data(), n});
    EXPECT_LT(banded_residual(a_copy, 0, x, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BandedSolvers,
    ::testing::Values(BandShape{5, 1, 1}, BandShape{16, 3, 2},
                      BandShape{40, 5, 9}, BandShape{100, 12, 12},
                      BandShape{64, 0, 3}, BandShape{64, 3, 0}));

TEST(BandedLu, PivotingHandlesSmallLeadingPivot)
{
    // A matrix whose (0,0) entry is tiny forces a row swap.
    BatchBanded<real_type> a(1, 3, 1, 1);
    auto v = a.entry(0);
    v(0, 0) = 1e-18;
    v(0, 1) = 1.0;
    v(1, 0) = 1.0;
    v(1, 1) = 1.0;
    v(1, 2) = 1.0;
    v(2, 1) = 1.0;
    v(2, 2) = 2.0;
    auto a_copy = a;
    std::vector<real_type> b{1.0, 2.0, 3.0};
    auto x = b;
    lapack::gbsv(a.entry(0), VecView<real_type>{x.data(), 3});
    EXPECT_LT(banded_residual(a_copy, 0, x, b), 1e-12);
}

TEST(BandedLu, ThrowsOnSingularMatrix)
{
    BatchBanded<real_type> a(1, 2, 1, 1);
    // Column 0 entirely zero.
    a.entry(0)(0, 1) = 1.0;
    a.entry(0)(1, 1) = 1.0;
    std::vector<index_type> ipiv;
    EXPECT_THROW(lapack::gbtrf(a.entry(0), ipiv), NumericalBreakdown);
}

TEST(BandedLu, BatchedDriverSolvesEverySystem)
{
    const index_type n = 30;
    auto a = random_banded(6, n, 4, 3, 77);
    auto a_copy = a;
    BatchVector<real_type> x(6, n);
    Rng rng(5);
    std::vector<std::vector<real_type>> rhs;
    for (size_type bb = 0; bb < 6; ++bb) {
        auto xv = x.entry(bb);
        rhs.emplace_back(static_cast<std::size_t>(n));
        for (index_type i = 0; i < n; ++i) {
            rhs.back()[static_cast<std::size_t>(i)] = rng.uniform(-2.0, 2.0);
            xv[i] = rhs.back()[static_cast<std::size_t>(i)];
        }
    }
    lapack::batch_gbsv(a, x);
    for (size_type bb = 0; bb < 6; ++bb) {
        std::vector<real_type> xs(x.entry(bb).begin(), x.entry(bb).end());
        EXPECT_LT(banded_residual(a_copy, bb, xs,
                                  rhs[static_cast<std::size_t>(bb)]),
                  1e-11);
    }
}

TEST(BandedFlops, CountsArePositiveAndScaleWithBand)
{
    const double narrow = lapack::gbsv_flops(992, 1, 1);
    const double wide = lapack::gbsv_flops(992, 33, 33);
    EXPECT_GT(narrow, 0);
    EXPECT_GT(wide, 20 * narrow);
    EXPECT_GT(lapack::gbqr_flops(992, 33, 33),
              lapack::gbsv_flops(992, 33, 33));
}

TEST(DenseLu, SolveAndTransposeSolve)
{
    const index_type n = 12;
    Rng rng(9);
    std::vector<real_type> a(static_cast<std::size_t>(n) * n);
    for (index_type i = 0; i < n; ++i) {
        real_type off = 0;
        for (index_type j = 0; j < n; ++j) {
            if (i != j) {
                a[static_cast<std::size_t>(i) * n + j] =
                    rng.uniform(-1.0, 1.0);
                off += std::abs(a[static_cast<std::size_t>(i) * n + j]);
            }
        }
        a[static_cast<std::size_t>(i) * n + i] = off + 1;
    }
    auto lu = a;
    DenseView<real_type> lu_view{lu.data(), n, n};
    std::vector<index_type> ipiv;
    lapack::getrf(lu_view, ipiv);

    std::vector<real_type> b(static_cast<std::size_t>(n));
    for (auto& v : b) {
        v = rng.uniform(-1.0, 1.0);
    }
    auto x = b;
    lapack::getrs(ConstDenseView<real_type>(lu_view), ipiv,
                  VecView<real_type>{x.data(), n});
    // Residual A x - b.
    for (index_type i = 0; i < n; ++i) {
        real_type sum = 0;
        for (index_type j = 0; j < n; ++j) {
            sum += a[static_cast<std::size_t>(i) * n + j] *
                   x[static_cast<std::size_t>(j)];
        }
        EXPECT_NEAR(sum, b[static_cast<std::size_t>(i)], 1e-11);
    }
    // Transpose solve: A^T y = b.
    auto y = b;
    lapack::getrs_transpose(ConstDenseView<real_type>(lu_view), ipiv,
                            VecView<real_type>{y.data(), n});
    for (index_type j = 0; j < n; ++j) {
        real_type sum = 0;
        for (index_type i = 0; i < n; ++i) {
            sum += a[static_cast<std::size_t>(i) * n + j] *
                   y[static_cast<std::size_t>(i)];
        }
        EXPECT_NEAR(sum, b[static_cast<std::size_t>(j)], 1e-11);
    }
}

TEST(DenseQr, AgreesWithLuSolve)
{
    const index_type n = 10;
    Rng rng(21);
    std::vector<real_type> a(static_cast<std::size_t>(n) * n);
    for (auto& v : a) {
        v = rng.uniform(-1.0, 1.0);
    }
    for (index_type i = 0; i < n; ++i) {
        a[static_cast<std::size_t>(i) * n + i] += n;
    }
    std::vector<real_type> b(static_cast<std::size_t>(n));
    for (auto& v : b) {
        v = rng.uniform(-1.0, 1.0);
    }
    auto a_lu = a;
    auto a_qr = a;
    auto x_lu = b;
    auto x_qr = b;
    lapack::gesv(DenseView<real_type>{a_lu.data(), n, n},
                 VecView<real_type>{x_lu.data(), n});
    lapack::geqrs(DenseView<real_type>{a_qr.data(), n, n},
                  VecView<real_type>{x_qr.data(), n});
    for (index_type i = 0; i < n; ++i) {
        EXPECT_NEAR(x_lu[static_cast<std::size_t>(i)],
                    x_qr[static_cast<std::size_t>(i)], 1e-10);
    }
}

TEST(DenseLu, BatchedDriverSolvesEverySystem)
{
    const index_type n = 24;
    const size_type nbatch = 5;
    BatchDense<real_type> a(nbatch, n, n);
    BatchDense<real_type> a_copy(nbatch, n, n);
    BatchVector<real_type> x(nbatch, n);
    std::vector<std::vector<real_type>> rhs;
    Rng rng(61);
    for (size_type b = 0; b < nbatch; ++b) {
        auto d = a.entry(b);
        auto dc = a_copy.entry(b);
        for (index_type i = 0; i < n; ++i) {
            real_type off = 0;
            for (index_type j = 0; j < n; ++j) {
                if (i != j) {
                    d(i, j) = rng.uniform(-1.0, 1.0);
                    off += std::abs(d(i, j));
                }
            }
            d(i, i) = off + 1;
            for (index_type j = 0; j < n; ++j) {
                dc(i, j) = d(i, j);
            }
        }
        rhs.emplace_back(static_cast<std::size_t>(n));
        auto xv = x.entry(b);
        for (index_type i = 0; i < n; ++i) {
            rhs.back()[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
            xv[i] = rhs.back()[static_cast<std::size_t>(i)];
        }
    }
    lapack::batch_gesv(a, x);
    for (size_type b = 0; b < nbatch; ++b) {
        const auto d = a_copy.entry(b);
        for (index_type i = 0; i < n; ++i) {
            real_type sum = 0;
            for (index_type j = 0; j < n; ++j) {
                sum += d(i, j) * x.entry(b)[j];
            }
            EXPECT_NEAR(sum, rhs[static_cast<std::size_t>(b)]
                                [static_cast<std::size_t>(i)],
                        1e-11);
        }
    }
}

TEST(Eigen, DiagonalMatrixEigenvaluesExact)
{
    const index_type n = 5;
    std::vector<real_type> a(static_cast<std::size_t>(n) * n, 0.0);
    const real_type diag[5] = {-2.0, -0.5, 0.0, 1.5, 4.0};
    for (index_type i = 0; i < n; ++i) {
        a[static_cast<std::size_t>(i) * n + i] = diag[i];
    }
    auto eigs = eigenvalues(DenseView<real_type>{a.data(), n, n});
    ASSERT_EQ(eigs.size(), 5u);
    for (index_type i = 0; i < n; ++i) {
        EXPECT_NEAR(eigs[static_cast<std::size_t>(i)].real(), diag[i],
                    1e-12);
        EXPECT_NEAR(eigs[static_cast<std::size_t>(i)].imag(), 0.0, 1e-12);
    }
}

TEST(Eigen, RotationMatrixHasComplexPair)
{
    // 2D rotation by 90 degrees: eigenvalues +-i.
    std::vector<real_type> a{0, -1, 1, 0};
    auto eigs = eigenvalues(DenseView<real_type>{a.data(), 2, 2});
    ASSERT_EQ(eigs.size(), 2u);
    EXPECT_NEAR(eigs[0].real(), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(eigs[0].imag()), 1.0, 1e-12);
    EXPECT_NEAR(eigs[0].imag(), -eigs[1].imag(), 1e-12);
}

TEST(Eigen, TridiagonalToeplitzKnownSpectrum)
{
    // Symmetric tridiagonal (2, -1): eigenvalues 2 - 2 cos(k pi / (n+1)).
    const index_type n = 20;
    std::vector<real_type> a(static_cast<std::size_t>(n) * n, 0.0);
    for (index_type i = 0; i < n; ++i) {
        a[static_cast<std::size_t>(i) * n + i] = 2.0;
        if (i > 0) {
            a[static_cast<std::size_t>(i) * n + i - 1] = -1.0;
            a[static_cast<std::size_t>(i - 1) * n + i] = -1.0;
        }
    }
    auto eigs = eigenvalues(DenseView<real_type>{a.data(), n, n});
    ASSERT_EQ(eigs.size(), static_cast<std::size_t>(n));
    for (index_type k = 0; k < n; ++k) {
        const double expected =
            2.0 - 2.0 * std::cos((k + 1) * M_PI / (n + 1));
        EXPECT_NEAR(eigs[static_cast<std::size_t>(k)].real(), expected,
                    1e-9);
        EXPECT_NEAR(eigs[static_cast<std::size_t>(k)].imag(), 0.0, 1e-9);
    }
}

TEST(Eigen, TraceAndDeterminantInvariants)
{
    // Sum of eigenvalues == trace; product == determinant (via LU).
    const index_type n = 15;
    Rng rng(31);
    std::vector<real_type> a(static_cast<std::size_t>(n) * n);
    for (auto& v : a) {
        v = rng.uniform(-1.0, 1.0);
    }
    for (index_type i = 0; i < n; ++i) {
        a[static_cast<std::size_t>(i) * n + i] += 3.0;
    }
    real_type trace = 0;
    for (index_type i = 0; i < n; ++i) {
        trace += a[static_cast<std::size_t>(i) * n + i];
    }
    auto copy = a;
    auto eigs = eigenvalues(DenseView<real_type>{copy.data(), n, n});
    complex_type sum{};
    for (const auto& e : eigs) {
        sum += e;
    }
    EXPECT_NEAR(sum.real(), trace, 1e-8);
    EXPECT_NEAR(sum.imag(), 0.0, 1e-8);
}

TEST(Eigen, StencilMatrixSpectrumNearOne)
{
    // A backward-Euler-like stencil operator has eigenvalues near 1.
    SyntheticStencilParams params;
    params.diffusion = 0.05;
    params.advection = 0.01;
    auto csr = make_synthetic_batch(8, 7, StencilKind::nine_point, 1,
                                    params);
    auto eigs = eigenvalues(csr, 0);
    const auto summary = lapack::summarize_spectrum(eigs);
    EXPECT_GT(summary.min_real, 0.5);
    EXPECT_LT(summary.max_real, 2.0);
    EXPECT_GT(summary.clustered_fraction, 0.0);
}

TEST(Eigen, SummaryOfKnownSpectrum)
{
    std::vector<complex_type> eigs{{1.0, 0.0}, {1.02, 0.05}, {2.0, -0.3}};
    const auto s = lapack::summarize_spectrum(eigs);
    EXPECT_DOUBLE_EQ(s.min_real, 1.0);
    EXPECT_DOUBLE_EQ(s.max_real, 2.0);
    EXPECT_DOUBLE_EQ(s.max_abs_imag, 0.3);
    EXPECT_NEAR(s.clustered_fraction, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(s.spread, std::abs(complex_type(2.0, -0.3)) / 1.0, 1e-12);
}

TEST(Condition, EstimateWithinFactorOfExactForSmallMatrix)
{
    // diag(1, 10, 100): kappa_1 = 100.
    const index_type n = 3;
    std::vector<real_type> a{1, 0, 0, 0, 10, 0, 0, 0, 100};
    const auto est =
        lapack::estimate_condition_1(ConstDenseView<real_type>{a.data(), n, n});
    EXPECT_GT(est, 50.0);
    EXPECT_LT(est, 200.0);
}

TEST(Condition, WellConditionedStencilHasLowKappa)
{
    auto csr = make_synthetic_batch(8, 7, StencilKind::nine_point, 1, {});
    auto dense = to_dense(csr);
    const auto est = lapack::estimate_condition_1(
        ConstDenseView<real_type>(dense.entry(0)));
    // The collision-like matrices are well-conditioned (Section II).
    EXPECT_LT(est, 100.0);
    EXPECT_GE(est, 1.0);
}

}  // namespace
}  // namespace bsis
