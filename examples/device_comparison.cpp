// Runs the same batched solve through every modeled device and prints the
// full performance-model breakdown: storage configuration (how many solver
// vectors fit in shared memory), occupancy, scheduling, per-operation
// costs, and the resulting kernel time -- the quantities Sections IV-C/D/E
// of the paper reason about.
// Pass --sanitize to run every device's solve with the SIMT sanitizer
// attached; the example fails on any reported violation.
// Telemetry: --trace=FILE additionally renders each device's modeled
// block timeline on a device-track of the Chrome trace;
// --metrics-json=FILE dumps the gpusim counters (see examples/obs_cli.hpp).
#include <cstring>
#include <iostream>

#include "exec/executor.hpp"
#include "matrix/conversions.hpp"
#include "obs_cli.hpp"
#include "util/table.hpp"
#include "xgc/workload.hpp"

int main(int argc, char** argv)
{
    using namespace bsis;
    examples::ObsCli obs_cli(argc, argv);
    const bool sanitize =
        argc > 1 && std::strcmp(argv[1], "--sanitize") == 0;

    xgc::WorkloadParams wp;
    wp.num_mesh_nodes = 240;  // 480 systems, enough to saturate every GPU
    xgc::CollisionWorkload workload(wp);
    auto a = workload.make_matrix_batch();
    workload.assemble_batch(workload.distributions(),
                            workload.distributions(), 0.0035, a);
    const auto ell = to_ell(a);
    const auto& b = workload.distributions();

    SolverSettings settings;
    settings.tolerance = 1e-10;
    settings.max_iterations = 500;

    Table table({"device", "vectors_in_shared", "blocks_per_cu",
                 "occupancy_limit", "waves", "spmv_us", "dot_us",
                 "iteration_us", "kernel_ms", "h2d_ms", "us_per_entry"});
    int count = 0;
    std::int64_t violations = 0;
    const auto* gpus = gpusim::all_gpus(count);
    for (int g = 0; g < count; ++g) {
        SimGpuExecutor exec(gpus[g]);
        exec.set_sanitize(sanitize);
        BatchVector<real_type> x(a.num_batch(), a.rows());
        const auto report = exec.solve(ell, b, x, settings, true);
        if (report.sanitized) {
            std::cout << gpus[g].name << " (warp " << gpus[g].warp_size
                      << "): " << report.sanitizer.summary() << '\n';
            violations += report.sanitizer.total_violations;
        }
        table.new_row()
            .add(gpus[g].name)
            .add(report.storage.num_shared)
            .add(report.occupancy.blocks_per_cu)
            .add(report.occupancy.limiter)
            .add(report.num_waves)
            .add(report.block_cost.spmv_us, 3)
            .add(report.block_cost.dot_us, 3)
            .add(report.block_cost.per_iteration_us, 4)
            .add(report.kernel_seconds * 1e3, 4)
            .add(report.h2d_seconds * 1e3, 4)
            .add(report.per_entry_seconds() * 1e6, 4);
    }
    const CpuExecutor cpu;
    BatchVector<real_type> x(a.num_batch(), a.rows());
    const auto cpu_report = cpu.gbsv(a, b, x);
    table.new_row()
        .add(cpu.cpu().name)
        .add("-")
        .add("-")
        .add("-")
        .add(static_cast<std::int64_t>(
            (a.num_batch() + cpu.cpu().cores_used - 1) /
            cpu.cpu().cores_used))
        .add("-")
        .add("-")
        .add("-")
        .add(cpu_report.node_seconds * 1e3, 4)
        .add("-")
        .add(cpu_report.per_entry_seconds(a.num_batch()) * 1e6, 4);

    table.print(std::cout);
    std::cout << "\nReading guide: the V100 fits 6 of the 10 BiCGStab "
                 "vectors in its 48 KiB\nper-block shared window; the A100 "
                 "fits all of them; the MI100's 64 KiB LDS\nholds one "
                 "block per CU, which is why its batch curve steps at "
                 "multiples of 120.\n";
    return violations == 0 ? 0 : 1;
}
