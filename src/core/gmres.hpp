// Batched restarted GMRES(m) kernel with right preconditioning.
//
// Right preconditioning (solve A M^-1 u = b, x = M^-1 u) keeps the
// monitored residual equal to the TRUE residual, so the per-system stopping
// criteria mean the same thing across all solvers in the library.
#pragma once

#include <cmath>
#include <vector>

#include "blas/kernels.hpp"
#include "core/workspace.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// Scratch vectors for GMRES(m): w, z, r plus the m+1 Krylov basis vectors.
inline constexpr int gmres_work_vectors(int restart)
{
    return restart + 4;
}

/// Small dense scratch for the Hessenberg least-squares problem; reusable
/// across systems (resize is a no-op after the first call).
struct GmresScratch {
    std::vector<real_type> h;   ///< (m+1) x m Hessenberg, column-major
    std::vector<real_type> cs;  ///< Givens cosines
    std::vector<real_type> sn;  ///< Givens sines
    std::vector<real_type> g;   ///< rotated rhs of the least-squares system
    std::vector<real_type> y;   ///< triangular solve result

    void require(int restart)
    {
        const auto m = static_cast<std::size_t>(restart);
        h.assign((m + 1) * m, 0.0);
        cs.assign(m, 0.0);
        sn.assign(m, 0.0);
        g.assign(m + 1, 0.0);
        y.assign(m, 0.0);
    }
};

/// `history`, when non-null, receives the initial residual norm plus the
/// Givens residual estimate |g[j+1]| after every inner iteration (the
/// per-iteration convergence signal GMRES actually steers by; the true
/// residual is only recomputed at restarts).
template <typename MatrixView, typename Prec, typename Stop>
EntryResult gmres_kernel(const MatrixView& a, ConstVecView<real_type> b,
                         VecView<real_type> x, const Prec& prec,
                         const Stop& stop, int max_iters, int restart,
                         Workspace& ws, GmresScratch& scratch,
                         int work_offset = 0,
                         std::vector<real_type>* history = nullptr)
{
    BSIS_ENSURE_ARG(restart >= 1, "restart must be >= 1");
    auto w = ws.slot(work_offset + 0);
    auto z = ws.slot(work_offset + 1);
    auto r = ws.slot(work_offset + 2);
    const int basis0 = work_offset + 3;
    const auto basis = [&](int i) { return ws.slot(basis0 + i); };

    scratch.require(restart);
    auto& h = scratch.h;
    auto& cs = scratch.cs;
    auto& sn = scratch.sn;
    auto& g = scratch.g;
    auto& y = scratch.y;
    const auto h_at = [&](int i, int j) -> real_type& {
        return h[static_cast<std::size_t>(j) * (restart + 1) + i];
    };

    const real_type b_norm = blas::nrm2(b);
    int total_iters = 0;

    obs::traced(obs::Phase::spmv, "spmv", [&] { spmv(a, ConstVecView<real_type>(x), r); });
    blas::axpby(real_type{1}, b, real_type{-1}, r);
    real_type beta = obs::traced(
        obs::Phase::reduction, "reduction",
        [&] { return blas::nrm2(ConstVecView<real_type>(r)); });
    const real_type r0 = beta;

    if (history != nullptr) {
        history->clear();
        history->push_back(beta);
    }
    while (total_iters < max_iters) {
        if (stop.done(beta, b_norm)) {
            return {total_iters, beta, true, FailureClass::converged};
        }
        if (!std::isfinite(beta)) {
            return {total_iters, beta, false, FailureClass::non_finite};
        }
        if (beta == real_type{0}) {
            return {total_iters, beta, true, FailureClass::converged};
        }
        // v_0 = r / beta
        blas::copy(ConstVecView<real_type>(r), basis(0));
        blas::scal(real_type{1} / beta, basis(0));
        std::fill(g.begin(), g.end(), real_type{0});
        g[0] = beta;

        int j = 0;
        bool happy = false;
        for (; j < restart && total_iters < max_iters; ++j) {
            obs::traced(obs::Phase::precond, "precond_apply", [&] {
                prec.apply(ConstVecView<real_type>(basis(j)), z);
            });
            obs::traced(obs::Phase::spmv, "spmv",
                        [&] { spmv(a, ConstVecView<real_type>(z), w); });
            // Modified Gram-Schmidt orthogonalization.
            obs::traced(obs::Phase::reduction, "reduction", [&] {
                for (int i = 0; i <= j; ++i) {
                    const real_type hij =
                        blas::dot(ConstVecView<real_type>(w),
                                  ConstVecView<real_type>(basis(i)));
                    h_at(i, j) = hij;
                    blas::axpy(-hij, ConstVecView<real_type>(basis(i)), w);
                }
            });
            const real_type h_next = obs::traced(obs::Phase::reduction, "reduction", [&] {
                return blas::nrm2(ConstVecView<real_type>(w));
            });
            h_at(j + 1, j) = h_next;
            if (h_next != real_type{0}) {
                blas::copy(ConstVecView<real_type>(w), basis(j + 1));
                blas::scal(real_type{1} / h_next, basis(j + 1));
            }
            // Apply the accumulated Givens rotations to column j, then
            // compute the rotation annihilating h(j+1, j).
            for (int i = 0; i < j; ++i) {
                const real_type tmp = cs[i] * h_at(i, j) + sn[i] * h_at(i + 1, j);
                h_at(i + 1, j) =
                    -sn[i] * h_at(i, j) + cs[i] * h_at(i + 1, j);
                h_at(i, j) = tmp;
            }
            const real_type denom = std::hypot(h_at(j, j), h_at(j + 1, j));
            if (denom == real_type{0}) {
                cs[j] = 1;
                sn[j] = 0;
            } else {
                cs[j] = h_at(j, j) / denom;
                sn[j] = h_at(j + 1, j) / denom;
            }
            h_at(j, j) = cs[j] * h_at(j, j) + sn[j] * h_at(j + 1, j);
            h_at(j + 1, j) = 0;
            g[static_cast<std::size_t>(j) + 1] = -sn[j] * g[j];
            g[static_cast<std::size_t>(j)] *= cs[j];
            ++total_iters;
            const real_type res_est =
                std::abs(g[static_cast<std::size_t>(j) + 1]);
            if (history != nullptr) {
                history->push_back(res_est);
            }
            if (stop.done(res_est, b_norm) || h_next == real_type{0}) {
                ++j;
                happy = true;
                break;
            }
        }
        // Solve the j x j triangular system h y = g.
        for (int i = j - 1; i >= 0; --i) {
            real_type sum = g[static_cast<std::size_t>(i)];
            for (int k = i + 1; k < j; ++k) {
                sum -= h_at(i, k) * y[static_cast<std::size_t>(k)];
            }
            y[static_cast<std::size_t>(i)] = sum / h_at(i, i);
        }
        // x += M^-1 (V y)
        obs::traced(obs::Phase::update, "update", [&] {
            blas::fill(w, real_type{0});
            for (int i = 0; i < j; ++i) {
                blas::axpy(y[static_cast<std::size_t>(i)],
                           ConstVecView<real_type>(basis(i)), w);
            }
        });
        obs::traced(obs::Phase::precond, "precond_apply",
                    [&] { prec.apply(ConstVecView<real_type>(w), z); });
        blas::axpy(real_type{1}, ConstVecView<real_type>(z), x);
        // True residual for the restart / convergence decision.
        obs::traced(obs::Phase::spmv, "spmv",
                    [&] { spmv(a, ConstVecView<real_type>(x), r); });
        blas::axpby(real_type{1}, b, real_type{-1}, r);
        beta = obs::traced(obs::Phase::reduction, "reduction", [&] {
            return blas::nrm2(ConstVecView<real_type>(r));
        });
        if (happy && stop.done(beta, b_norm)) {
            return {total_iters, beta, true, FailureClass::converged};
        }
    }
    {
        const bool done = stop.done(beta, b_norm);
        return {total_iters, beta, done, classify_exhausted(beta, r0, done)};
    }
}

}  // namespace bsis
