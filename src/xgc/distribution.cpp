#include "xgc/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace bsis::xgc {

void maxwellian(const VelocityGrid& grid, const PlasmaState& state,
                VecView<real_type> f)
{
    BSIS_ENSURE_DIMS(f.len == grid.rows(), "distribution size mismatch");
    BSIS_ENSURE_ARG(state.temperature > 0, "temperature must be positive");
    const real_type t = state.temperature;
    const real_type norm =
        state.density /
        std::pow(2 * std::numbers::pi_v<real_type> * t, real_type{1.5});
    for (index_type j = 0; j < grid.n_vperp(); ++j) {
        for (index_type i = 0; i < grid.n_vpar(); ++i) {
            const real_type wpar = grid.vpar(i) - state.u_par;
            const real_type vperp = grid.vperp(j);
            f[grid.row(i, j)] =
                norm *
                std::exp(-(wpar * wpar + vperp * vperp) / (2 * t));
        }
    }
}

ConservedQuantities conserved(const VelocityGrid& grid,
                              ConstVecView<real_type> f)
{
    BSIS_ENSURE_DIMS(f.len == grid.rows(), "distribution size mismatch");
    ConservedQuantities q;
    for (index_type j = 0; j < grid.n_vperp(); ++j) {
        const real_type vol = grid.cell_volume(j);
        for (index_type i = 0; i < grid.n_vpar(); ++i) {
            const real_type val = f[grid.row(i, j)] * vol;
            const real_type vpar = grid.vpar(i);
            const real_type vperp = grid.vperp(j);
            q.density += val;
            q.momentum += val * vpar;
            q.energy += val * real_type{0.5} * (vpar * vpar + vperp * vperp);
        }
    }
    return q;
}

PlasmaState moments(const VelocityGrid& grid, ConstVecView<real_type> f)
{
    const auto q = conserved(grid, f);
    PlasmaState state;
    state.density = q.density;
    if (q.density <= real_type{0}) {
        return state;
    }
    state.u_par = q.momentum / q.density;
    // T = (2/3) (E/n - u^2/2) for a 3D (gyro-symmetric) velocity space.
    const real_type specific_energy = q.energy / q.density;
    state.temperature =
        std::max(real_type{1e-12},
                 real_type{2.0 / 3.0} *
                     (specific_energy -
                      real_type{0.5} * state.u_par * state.u_par));
    return state;
}

real_type conservation_error(const ConservedQuantities& before,
                             const ConservedQuantities& after)
{
    const real_type n_scale = std::max(std::abs(before.density),
                                       real_type{1e-30});
    const real_type e_scale = std::max(std::abs(before.energy),
                                       real_type{1e-30});
    // Momentum is normalized by the thermal momentum scale n * v_th (~ n
    // in normalized units) because the flows are small and |p| itself can
    // vanish.
    return std::max(
        {std::abs(after.density - before.density) / n_scale,
         std::abs(after.momentum - before.momentum) / n_scale,
         std::abs(after.energy - before.energy) / e_scale});
}

TemperatureAnisotropy temperature_anisotropy(const VelocityGrid& grid,
                                             ConstVecView<real_type> f)
{
    const auto state = moments(grid, f);
    TemperatureAnisotropy t;
    real_type n = 0;
    for (index_type j = 0; j < grid.n_vperp(); ++j) {
        const real_type vol = grid.cell_volume(j);
        const real_type vperp = grid.vperp(j);
        for (index_type i = 0; i < grid.n_vpar(); ++i) {
            const real_type w = f[grid.row(i, j)] * vol;
            const real_type wpar = grid.vpar(i) - state.u_par;
            n += w;
            t.t_par += w * wpar * wpar;       // <w_par^2>
            t.t_perp += w * vperp * vperp / 2;  // <v_perp^2>/2 per dof
        }
    }
    if (n > 0) {
        t.t_par /= n;
        t.t_perp /= n;
    }
    return t;
}

void moment_fix(const VelocityGrid& grid, VecView<real_type> f,
                const ConservedQuantities& target)
{
    BSIS_ENSURE_DIMS(f.len == grid.rows(), "distribution size mismatch");
    // Invariants psi_k(v) = {1, v_par, E}; solve M c = d with
    // M_{mk} = Int psi_m psi_k f dV and d the moment deficit.
    real_type m[3][3] = {};
    real_type d[3] = {};
    const auto current = conserved(grid, ConstVecView<real_type>(f));
    d[0] = target.density - current.density;
    d[1] = target.momentum - current.momentum;
    d[2] = target.energy - current.energy;

    for (index_type j = 0; j < grid.n_vperp(); ++j) {
        const real_type vol = grid.cell_volume(j);
        const real_type vperp = grid.vperp(j);
        for (index_type i = 0; i < grid.n_vpar(); ++i) {
            const real_type vpar = grid.vpar(i);
            const real_type e =
                real_type{0.5} * (vpar * vpar + vperp * vperp);
            const real_type psi[3] = {1, vpar, e};
            const real_type w = f[grid.row(i, j)] * vol;
            for (int a = 0; a < 3; ++a) {
                for (int b = 0; b < 3; ++b) {
                    m[a][b] += psi[a] * psi[b] * w;
                }
            }
        }
    }
    // Solve the 3x3 system by Gaussian elimination with partial pivoting.
    real_type c[3] = {};
    {
        real_type aug[3][4];
        for (int r = 0; r < 3; ++r) {
            for (int k = 0; k < 3; ++k) {
                aug[r][k] = m[r][k];
            }
            aug[r][3] = d[r];
        }
        for (int col = 0; col < 3; ++col) {
            int piv = col;
            for (int r = col + 1; r < 3; ++r) {
                if (std::abs(aug[r][col]) > std::abs(aug[piv][col])) {
                    piv = r;
                }
            }
            if (std::abs(aug[piv][col]) < real_type{1e-300}) {
                return;  // degenerate (e.g. f == 0): skip the fix
            }
            std::swap_ranges(aug[col], aug[col] + 4, aug[piv]);
            for (int r = col + 1; r < 3; ++r) {
                const real_type factor = aug[r][col] / aug[col][col];
                for (int k = col; k < 4; ++k) {
                    aug[r][k] -= factor * aug[col][k];
                }
            }
        }
        for (int r = 2; r >= 0; --r) {
            real_type sum = aug[r][3];
            for (int k = r + 1; k < 3; ++k) {
                sum -= aug[r][k] * c[k];
            }
            c[r] = sum / aug[r][r];
        }
    }
    for (index_type j = 0; j < grid.n_vperp(); ++j) {
        const real_type vperp = grid.vperp(j);
        for (index_type i = 0; i < grid.n_vpar(); ++i) {
            const real_type vpar = grid.vpar(i);
            const real_type e =
                real_type{0.5} * (vpar * vpar + vperp * vperp);
            f[grid.row(i, j)] *= 1 + c[0] + c[1] * vpar + c[2] * e;
        }
    }
}

}  // namespace bsis::xgc
