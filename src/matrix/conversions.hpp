// Conversions between the batch matrix formats.
//
// All conversions preserve the numerical content exactly; BatchEll
// conversions insert padding (index -1, value 0) as needed and BatchBanded
// conversions require the pattern to fit in the requested band.
#pragma once

#include <algorithm>
#include <vector>

#include "matrix/batch_banded.hpp"
#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"
#include "matrix/batch_sellp.hpp"
#include "util/error.hpp"

namespace bsis {

/// CSR -> ELL. Pads every row to the longest row of the shared pattern
/// unless `nnz_per_row` is given (must then be >= the longest row).
template <typename T>
BatchEll<T> to_ell(const BatchCsr<T>& csr, index_type nnz_per_row = -1)
{
    const index_type rows = csr.rows();
    const auto& ptrs = csr.row_ptrs();
    index_type max_row = 0;
    for (index_type r = 0; r < rows; ++r) {
        max_row = std::max(max_row, ptrs[r + 1] - ptrs[r]);
    }
    if (nnz_per_row < 0) {
        nnz_per_row = max_row;
    }
    BSIS_ENSURE_DIMS(nnz_per_row >= max_row,
                     "requested nnz_per_row smaller than longest CSR row");

    std::vector<index_type> col_idxs(
        static_cast<std::size_t>(rows) * nnz_per_row, ell_padding);
    const auto& csr_cols = csr.col_idxs();
    for (index_type r = 0; r < rows; ++r) {
        index_type k = 0;
        for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p, ++k) {
            col_idxs[static_cast<std::size_t>(k) * rows + r] = csr_cols[p];
        }
    }
    BatchEll<T> ell(csr.num_batch(), rows, nnz_per_row, std::move(col_idxs));
    for (size_type b = 0; b < csr.num_batch(); ++b) {
        const T* src = csr.values(b);
        T* dst = ell.values(b);
        for (index_type r = 0; r < rows; ++r) {
            index_type k = 0;
            for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p, ++k) {
                dst[static_cast<std::size_t>(k) * rows + r] = src[p];
            }
        }
    }
    return ell;
}

/// ELL -> CSR. Padding slots are dropped.
template <typename T>
BatchCsr<T> to_csr(const BatchEll<T>& ell)
{
    const index_type rows = ell.rows();
    const auto ev = ell.entry(0);
    std::vector<index_type> row_ptrs(rows + 1, 0);
    for (index_type r = 0; r < rows; ++r) {
        index_type cnt = 0;
        for (index_type k = 0; k < ell.nnz_per_row(); ++k) {
            if (ell.col_idxs()[ev.at(r, k)] != ell_padding) {
                ++cnt;
            }
        }
        row_ptrs[r + 1] = row_ptrs[r] + cnt;
    }
    std::vector<index_type> col_idxs(row_ptrs[rows]);
    for (index_type r = 0; r < rows; ++r) {
        index_type p = row_ptrs[r];
        for (index_type k = 0; k < ell.nnz_per_row(); ++k) {
            const index_type c = ell.col_idxs()[ev.at(r, k)];
            if (c != ell_padding) {
                col_idxs[p++] = c;
            }
        }
    }
    BatchCsr<T> csr(ell.num_batch(), rows, std::move(row_ptrs),
                    std::move(col_idxs));
    for (size_type b = 0; b < ell.num_batch(); ++b) {
        const T* src = ell.values(b);
        T* dst = csr.values(b);
        const auto& ptrs = csr.row_ptrs();
        for (index_type r = 0; r < rows; ++r) {
            index_type p = ptrs[r];
            for (index_type k = 0; k < ell.nnz_per_row(); ++k) {
                const index_type c = ell.col_idxs()[ev.at(r, k)];
                if (c != ell_padding) {
                    (void)c;
                    dst[p++] = src[ev.at(r, k)];
                }
            }
        }
    }
    return csr;
}

/// CSR -> SELL-P with the given slice size (default: one 32-wide warp).
/// Each slice pads to its own longest row.
template <typename T>
BatchSellp<T> to_sellp(const BatchCsr<T>& csr, index_type slice_size = 32)
{
    const index_type rows = csr.rows();
    const auto& ptrs = csr.row_ptrs();
    const auto& csr_cols = csr.col_idxs();
    const index_type slices = (rows + slice_size - 1) / slice_size;

    std::vector<index_type> slice_sets(static_cast<std::size_t>(slices) + 1,
                                       0);
    for (index_type s = 0; s < slices; ++s) {
        index_type width = 0;
        for (index_type r = s * slice_size;
             r < std::min(rows, (s + 1) * slice_size); ++r) {
            width = std::max(width, ptrs[r + 1] - ptrs[r]);
        }
        slice_sets[static_cast<std::size_t>(s) + 1] =
            slice_sets[static_cast<std::size_t>(s)] + width;
    }
    std::vector<index_type> col_idxs(
        static_cast<std::size_t>(slice_sets.back()) * slice_size,
        ell_padding);
    // Copy kept for the value fill below: slice_sets itself is moved into
    // the constructor first.
    const std::vector<index_type> sets = slice_sets;
    const auto at = [&sets, slice_size](index_type r, index_type k) {
        const index_type s = r / slice_size;
        return (static_cast<std::size_t>(
                    sets[static_cast<std::size_t>(s)]) +
                k) *
                   slice_size +
               r % slice_size;
    };
    for (index_type r = 0; r < rows; ++r) {
        index_type k = 0;
        for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p, ++k) {
            col_idxs[at(r, k)] = csr_cols[p];
        }
    }
    BatchSellp<T> sellp(csr.num_batch(), rows, slice_size,
                        std::move(slice_sets), std::move(col_idxs));
    for (size_type b = 0; b < csr.num_batch(); ++b) {
        const T* src = csr.values(b);
        T* dst = sellp.values(b);
        for (index_type r = 0; r < rows; ++r) {
            index_type k = 0;
            for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p, ++k) {
                dst[at(r, k)] = src[p];
            }
        }
    }
    return sellp;
}

/// CSR -> dense (zero fill).
template <typename T>
BatchDense<T> to_dense(const BatchCsr<T>& csr)
{
    BatchDense<T> dense(csr.num_batch(), csr.rows(), csr.rows());
    for (size_type b = 0; b < csr.num_batch(); ++b) {
        auto d = dense.entry(b);
        const auto a = csr.entry(b);
        for (index_type r = 0; r < a.rows; ++r) {
            for (index_type k = a.row_ptrs[r]; k < a.row_ptrs[r + 1]; ++k) {
                d(r, a.col_idxs[k]) = a.values[k];
            }
        }
    }
    return dense;
}

/// Half bandwidths (kl, ku) of a CSR pattern.
template <typename T>
std::pair<index_type, index_type> bandwidths(const BatchCsr<T>& csr)
{
    index_type kl = 0;
    index_type ku = 0;
    const auto& ptrs = csr.row_ptrs();
    const auto& cols = csr.col_idxs();
    for (index_type r = 0; r < csr.rows(); ++r) {
        for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p) {
            kl = std::max(kl, r - cols[p]);
            ku = std::max(ku, cols[p] - r);
        }
    }
    return {kl, ku};
}

/// CSR -> LAPACK band storage. If kl/ku are negative they are derived from
/// the pattern; otherwise the pattern must fit in the requested band.
template <typename T>
BatchBanded<T> to_banded(const BatchCsr<T>& csr, index_type kl = -1,
                         index_type ku = -1)
{
    const auto [pat_kl, pat_ku] = bandwidths(csr);
    if (kl < 0) {
        kl = pat_kl;
    }
    if (ku < 0) {
        ku = pat_ku;
    }
    BSIS_ENSURE_DIMS(kl >= pat_kl && ku >= pat_ku,
                     "pattern does not fit in requested band");
    BatchBanded<T> banded(csr.num_batch(), csr.rows(), kl, ku);
    const auto& ptrs = csr.row_ptrs();
    const auto& cols = csr.col_idxs();
    for (size_type b = 0; b < csr.num_batch(); ++b) {
        auto bv = banded.entry(b);
        const T* src = csr.values(b);
        for (index_type r = 0; r < csr.rows(); ++r) {
            for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p) {
                bv(r, cols[p]) = src[p];
            }
        }
    }
    return banded;
}

}  // namespace bsis
