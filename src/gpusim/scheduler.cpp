#include "gpusim/scheduler.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace bsis::gpusim {

ScheduleResult schedule_blocks(const std::vector<double>& block_seconds,
                               int slots, SchedulingPolicy policy)
{
    BSIS_ENSURE_ARG(slots >= 1, "need at least one block slot");
    ScheduleResult result;
    if (block_seconds.empty()) {
        return result;
    }
    const auto n = block_seconds.size();
    if (policy == SchedulingPolicy::wave_quantized) {
        // Whole waves retire together: the hardware dispatches the next
        // wave only when every CU of the previous one is free.
        for (std::size_t start = 0; start < n;
             start += static_cast<std::size_t>(slots)) {
            const std::size_t end =
                std::min(n, start + static_cast<std::size_t>(slots));
            double wave_max = 0;
            for (std::size_t i = start; i < end; ++i) {
                wave_max = std::max(wave_max, block_seconds[i]);
            }
            result.makespan_seconds += wave_max;
            ++result.num_waves;
        }
        return result;
    }
    // Greedy dynamic: blocks are assigned in order to the earliest-free
    // slot (classic list scheduling).
    std::priority_queue<double, std::vector<double>, std::greater<>>
        free_times;
    for (int s = 0; s < slots; ++s) {
        free_times.push(0.0);
    }
    double makespan = 0;
    for (const double d : block_seconds) {
        const double start = free_times.top();
        free_times.pop();
        const double end = start + d;
        free_times.push(end);
        makespan = std::max(makespan, end);
    }
    result.makespan_seconds = makespan;
    result.num_waves = static_cast<int>(
        (n + static_cast<std::size_t>(slots) - 1) /
        static_cast<std::size_t>(slots));
    return result;
}

}  // namespace bsis::gpusim
