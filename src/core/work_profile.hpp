// Operation counts of one solver iteration, consumed by the GPU cost model.
//
// The gpusim cost model translates these per-iteration counts (together
// with the matrix shape, the storage configuration, and the device
// characteristics) into a modeled per-block duration for the wave
// scheduler.
#pragma once

#include "core/precond.hpp"
#include "util/types.hpp"

namespace bsis {

enum class SolverType {
    bicgstab,
    bicg,
    cgs,
    cg,
    gmres,
    richardson,
    chebyshev,
};

/// Per-iteration and setup operation counts of a solver composition.
/// "axpys" counts all streaming vector updates (axpy/axpby/copy/fill);
/// "dots" counts block-wide reductions (dot products and norms), which on
/// the GPU serialize behind barrier synchronization. These are OPERATION
/// counts (they fix the flop totals and stay valid for the CPU-node
/// model); the `fused_*` fields below describe how the fused kernel packs
/// those operations into full-vector SWEEPS, which is what the memory-
/// bound GPU cost model prices.
struct SolverWorkProfile {
    double spmv_per_iter = 0;
    double precond_per_iter = 0;
    double dots_per_iter = 0;
    double axpys_per_iter = 0;
    double setup_spmvs = 0;
    double setup_dots = 0;
    double setup_axpys = 0;
    int num_vectors = 0;  ///< per-system vectors incl. x and precond storage

    /// Fused-kernel sweep structure (all zero when the solver is not
    /// expressed in fused form; the cost model then falls back to one
    /// sweep per operation count above).
    double fused_update_sweeps = 0;  ///< pure streaming update sweeps/iter
    double fused_norm_update_sweeps = 0;  ///< update sweeps that also
                                          ///< produce a reduction result
    double fused_dot_sweeps = 0;  ///< standalone reduction sweeps/iter
    double fused_extra_dots = 0;  ///< additional reduction results
                                  ///< piggybacked on an existing sweep
                                  ///< (e.g. the dual-dot's second result)
    double fused_extra_dot_vectors = 0;  ///< extra operand vectors read by
                                         ///< the standalone reduction
                                         ///< sweeps beyond the two a plain
                                         ///< dot streams (the pipelined
                                         ///< multi-output sweeps widen
                                         ///< their reads instead of adding
                                         ///< sweeps)
    double fused_extra_combines = 0;  ///< cross-warp combine rounds added
                                      ///< to sweeps that are NOT priced as
                                      ///< reduction sweeps (a dot fused
                                      ///< into an update or precond sweep)

    /// SIMD lanes of the host batch-lockstep path: the number of batch
    /// entries one CPU thread advances per iteration over interleaved
    /// layouts. 1 = scalar one-entry-at-a-time path (the GPU model is
    /// unaffected; lanes only rescale the CPU-node throughput).
    int simd_lanes = 1;

    bool has_fused_shape() const
    {
        return fused_update_sweeps + fused_norm_update_sweeps +
                   fused_dot_sweeps >
               0;
    }
};

inline int precond_work_vectors(PrecondType precond,
                                int block_jacobi_size = 4)
{
    switch (precond) {
    case PrecondType::identity:
        return 0;
    case PrecondType::jacobi:
        return 1;
    case PrecondType::block_jacobi:
        // One n x block_size strip of inverted diagonal blocks.
        return block_jacobi_size;
    }
    return 0;
}

/// Builds the work profile of one solver composition. With `fused` (the
/// default, matching the host kernels since the kernel-fusion PR) the
/// profile also carries the fused sweep structure; `fused = false`
/// describes the reference one-sweep-per-BLAS-call composition, used by
/// the fusion ablations. `pipelined` (BiCGStab / CG only, requires
/// `fused`) switches to the pipelined kernels' sweep structure: fewer
/// standalone reduction sweeps, paid for with wider reduction reads
/// (`fused_extra_dot_vectors`) and combine rounds on non-reduction sweeps
/// (`fused_extra_combines`).
inline SolverWorkProfile work_profile(SolverType solver, PrecondType precond,
                                      int gmres_restart = 30,
                                      int block_jacobi_size = 4,
                                      bool fused = true,
                                      bool pipelined = false)
{
    const int prec_vecs = precond_work_vectors(precond, block_jacobi_size);
    const double prec_ops = 1.0;
    SolverWorkProfile p;
    switch (solver) {
    case SolverType::bicgstab:
        // Algorithm 1: 2 SpMV, 2 preconditioner applications, 6 reductions
        // (||r||, rho, r_hat.v, ||s||, t.s, t.t), ~6 vector updates.
        p = {2, 2 * prec_ops, 6, 6, 1, 1, 3, 9 + prec_vecs};
        if (fused && pipelined) {
            // Pipelined sweeps: p, x, and r updates (the r norm comes from
            // the recurrence, so its sweep is pure); s update with fused
            // norm; r_hat.v dot plus ONE dot4 sweep reading three vectors
            // (one more than a plain dot) and producing four results.
            p.fused_update_sweeps = 3;
            p.fused_norm_update_sweeps = 1;
            p.fused_dot_sweeps = 2;
            p.fused_extra_dots = 3;
            p.fused_extra_dot_vectors = 1;
        } else if (fused) {
            // Fused sweeps: p and x updates (pure), s and r updates with
            // fused norms, rho / r_hat.v / dual-dot reduction sweeps; the
            // dual-dot's second result rides along.
            p.fused_update_sweeps = 2;
            p.fused_norm_update_sweeps = 2;
            p.fused_dot_sweeps = 3;
            p.fused_extra_dots = 1;
        }
        break;
    case SolverType::cgs:
        // 2 SpMV, 2 preconditioner applications, 3 reductions (rho,
        // sigma, ||r||), ~8 vector updates.
        p = {2, 2 * prec_ops, 3, 8, 1, 1, 2, 9 + prec_vecs};
        if (fused) {
            // u, p, q, t, x single-pass updates; r update with fused norm;
            // rho and sigma reduction sweeps.
            p.fused_update_sweeps = 5;
            p.fused_norm_update_sweeps = 1;
            p.fused_dot_sweeps = 2;
        }
        break;
    case SolverType::bicg:
        // 1 SpMV + 1 transpose SpMV, 2 preconditioner applications,
        // 3 reductions (rho, p_hat.q, ||r||), ~6 vector updates.
        p = {2, 2 * prec_ops, 3, 6, 1, 2, 4, 9 + prec_vecs};
        if (fused) {
            // x, r_hat, and the paired p/p_hat updates (shared-scalar
            // loop, still two vectors of traffic); r update with fused
            // norm; rho and p_hat.q reduction sweeps.
            p.fused_update_sweeps = 4;
            p.fused_norm_update_sweeps = 1;
            p.fused_dot_sweeps = 2;
        }
        break;
    case SolverType::cg:
        p = {1, prec_ops, 3, 3, 1, 2, 2, 5 + prec_vecs};
        if (fused && pipelined) {
            // Pipelined sweeps: x, r, p updates (all pure -- the norm is
            // recurrence-maintained); ONE dot3_nrm2 sweep reading three
            // vectors and producing four results; the r.z dot rides the
            // preconditioner sweep as an extra combine round.
            p.fused_update_sweeps = 3;
            p.fused_norm_update_sweeps = 0;
            p.fused_dot_sweeps = 1;
            p.fused_extra_dots = 3;
            p.fused_extra_dot_vectors = 1;
            p.fused_extra_combines = 1;
        } else if (fused) {
            // x and p updates; r update with fused norm; p.q and r.z
            // reduction sweeps.
            p.fused_update_sweeps = 2;
            p.fused_norm_update_sweeps = 1;
            p.fused_dot_sweeps = 2;
        }
        break;
    case SolverType::gmres: {
        // Average inner step: MGS against j+1 basis vectors, j ~ m/2.
        // Not expressed in fused form: MGS serializes dot/axpy pairs.
        const double avg_orth = gmres_restart / 2.0 + 1.0;
        p = {1, prec_ops, avg_orth + 1, avg_orth + 1, 1, 1, 2,
             gmres_restart + 5 + prec_vecs};
        break;
    }
    case SolverType::richardson:
        p = {1, prec_ops, 1, 2, 0, 0, 0, 3 + prec_vecs};
        break;
    case SolverType::chebyshev:
        // Reduction-free apart from the optional residual check.
        p = {1, prec_ops, 1, 3, 1, 1, 1, 5 + prec_vecs};
        break;
    }
    return p;
}

}  // namespace bsis
