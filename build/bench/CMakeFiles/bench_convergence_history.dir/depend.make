# Empty dependencies file for bench_convergence_history.
# This may be replaced when dependencies are built.
