// The XGC collision-kernel proxy app, end to end: a plasma with beam-
// loaded ion and electron distributions at several mesh nodes relaxes
// toward equilibrium over multiple implicit collision steps. Every step
// runs the backward-Euler + Picard scheme with warm-started batched
// BiCGStab solves and reports the linear-solver behavior, conservation,
// and the approach to the Maxwellian.
//
//   ./build/examples/xgc_collision_app [num_steps] [num_mesh_nodes]
//
// Telemetry (see examples/obs_cli.hpp): --trace=FILE records phase spans
// of every solve -- and additionally sweeps one collision batch through
// all three execution paths (scalar, lockstep width 8, simulated GPU) so
// the Chrome trace shows them side by side; --metrics-json=FILE dumps
// the metrics registry (solve counters, iteration histograms, gpusim
// profiler counters) at exit; --capture-failures=DIR arms the flight
// recorder so every non-converged linear system is dumped as a replay
// bundle for tools/replay_entry; --report=FILE renders the performance-
// attribution report (per-phase bandwidth/roofline table, drift summary,
// failure classes -- the tools/solve_report document) at exit.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "exec/executor.hpp"
#include "matrix/conversions.hpp"
#include "obs_cli.hpp"
#include "util/table.hpp"
#include "xgc/picard.hpp"
#include "xgc/workload.hpp"

int main(int argc, char** argv)
{
    using namespace bsis;
    using namespace bsis::xgc;
    examples::ObsCli obs_cli(argc, argv);

    const int num_steps = argc > 1 ? std::atoi(argv[1]) : 6;
    const size_type num_nodes = argc > 2 ? std::atol(argv[2]) : 4;

    WorkloadParams wp;
    wp.num_mesh_nodes = num_nodes;
    CollisionWorkload workload(wp);
    std::cout << "collision proxy app: " << num_nodes
              << " mesh nodes x 2 species, grid "
              << workload.grid().n_vpar() << " x "
              << workload.grid().n_vperp() << " ("
              << workload.grid().rows() << " rows per system)\n";

    SolverSettings solver;
    solver.solver = SolverType::bicgstab;
    solver.precond = PrecondType::jacobi;
    solver.tolerance = 1e-10;
    solver.max_iterations = 500;
    solver.flight_recorder = obs_cli.recorder();

    PicardSettings picard;  // dt, 5 iterations, warm start, moment fix

    // Distance of the electron distribution at node 0 from the Maxwellian
    // of its own moments: the relaxation the collisions drive.
    const auto deviation = [&]() {
        const size_type sys = 1;  // node 0, electron
        const auto f = workload.distributions().entry(sys);
        const auto state = moments(workload.grid(), f);
        std::vector<real_type> maxw(static_cast<std::size_t>(f.len));
        maxwellian(workload.grid(), state,
                   VecView<real_type>{maxw.data(), f.len});
        real_type num = 0;
        real_type den = 0;
        for (index_type i = 0; i < f.len; ++i) {
            num += (f[i] - maxw[static_cast<std::size_t>(i)]) *
                   (f[i] - maxw[static_cast<std::size_t>(i)]);
            den += maxw[static_cast<std::size_t>(i)] *
                   maxw[static_cast<std::size_t>(i)];
        }
        return std::sqrt(num / den);
    };

    Table table({"step", "non_maxwellian_frac", "iters_ion_first",
                 "iters_electron_first", "conservation_err",
                 "nonlinear_residual"});
    for (int step = 0; step < num_steps; ++step) {
        const real_type before = deviation();
        const auto report = implicit_collision_step(
            workload, picard, make_reference_solver(solver));
        table.new_row()
            .add(step)
            .add(before, 4)
            .add(report.mean_species_iterations(0, 0, 2), 3)
            .add(report.mean_species_iterations(0, 1, 2), 3)
            .add(report.max_conservation_error(), 3)
            .add(report.nonlinear_change, 3);
        if (!report.linear_logs.front().all_converged()) {
            std::cerr << "linear solver failed to converge at step "
                      << step << "\n";
            return 1;
        }
    }
    table.print(std::cout);
    std::cout << "\nfinal non-Maxwellian fraction: " << deviation()
              << " (collisions relax the beam; conservation stays at "
                 "machine precision)\n";

    if (obs_cli.active()) {
        // Telemetry sweep: one representative collision batch through all
        // three execution paths, so the emitted trace and metrics cover
        // the scalar OpenMP path, the SIMD batch-lockstep path, and the
        // simulated-GPU executor side by side.
        auto a = workload.make_matrix_batch();
        workload.assemble_batch(workload.distributions(),
                                workload.distributions(), picard.dt, a);
        const auto& b = workload.distributions();
        SolverSettings sweep = solver;
        sweep.record_convergence = true;

        const auto show = [](const char* path, const BatchLog& log,
                             const obs::ConvergenceHistory& history) {
            std::cout << "[obs] " << path << ": mean iters "
                      << log.mean_iterations() << ", converged "
                      << (log.all_converged() ? "yes" : "no")
                      << ", history points(sys 0) "
                      << (history.active() ? history.points(0).size() : 0)
                      << '\n';
        };
        {
            obs::ScopedSpan span("path_scalar", "app");
            sweep.lockstep_width = 0;
            BatchVector<real_type> x(a.num_batch(), a.rows());
            const auto r = solve_batch(a, b, x, sweep);
            show("scalar", r.log, r.history);
        }
        {
            obs::ScopedSpan span("path_lockstep8", "app");
            sweep.lockstep_width = 8;
            BatchVector<real_type> x(a.num_batch(), a.rows());
            const auto r = solve_batch(a, b, x, sweep);
            show("lockstep8", r.log, r.history);
        }
        {
            obs::ScopedSpan span("path_simgpu", "app");
            sweep.lockstep_width = 0;
            SimGpuExecutor exec(gpusim::v100());
            BatchVector<real_type> x(a.num_batch(), a.rows());
            const auto report = exec.solve(to_ell(a), b, x, sweep);
            show("simgpu(V100)", report.log, report.history);
            if (report.profiled) {
                std::cout << "[obs] simgpu profile: warp utilization "
                          << 100.0 * report.profile.warp_utilization()
                          << "%, L1 hit "
                          << 100.0 * report.profile.l1_hit_rate()
                          << "%, L2 hit "
                          << 100.0 * report.profile.l2_hit_rate() << "%\n";
            }
        }
    }
    return 0;
}
