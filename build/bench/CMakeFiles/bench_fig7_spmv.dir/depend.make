# Empty dependencies file for bench_fig7_spmv.
# This may be replaced when dependencies are built.
