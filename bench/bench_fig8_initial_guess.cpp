// Fig. 8 of the paper: effect of using the previous Picard iterate as the
// initial guess of the next linear solve, on the cumulative solve time of
// all 5 Picard iterations (A100, both formats). The paper reports total-
// time speedups of ~1.15-1.25x for BatchCsr and ~1.2-1.6x for BatchEll.
#include <iostream>

#include "common.hpp"

namespace {

using namespace bsis;

/// Cumulative modeled solve time of the 5 warm- or cold-started Picard
/// iterations on the given device and format.
double picard_solve_time(size_type nbatch, const SimGpuExecutor& exec,
                         BatchFormat format, bool warm_start)
{
    xgc::WorkloadParams wp;
    wp.num_mesh_nodes = nbatch / 2;
    xgc::CollisionWorkload workload(wp);

    SolverSettings settings;
    settings.tolerance = 1e-10;
    settings.max_iterations = 500;

    double total = 0;
    const auto solver = [&](const BatchCsr<real_type>& a,
                            const BatchVector<real_type>& b,
                            BatchVector<real_type>& x, bool warm,
                            int /*k*/) {
        SolverSettings local = settings;
        local.use_initial_guess = warm;
        if (format == BatchFormat::ell) {
            auto ell = to_ell(a);
            auto report = exec.solve(ell, b, x, local);
            total += report.kernel_seconds;
            return report.log;
        }
        auto report = exec.solve(a, b, x, local);
        total += report.kernel_seconds;
        return report.log;
    };
    xgc::PicardSettings ps;
    ps.warm_start = warm_start;
    implicit_collision_step(workload, ps, solver);
    return total;
}

}  // namespace

int main()
{
    using namespace bsis;
    const SimGpuExecutor a100(gpusim::a100());

    Table table({"batch", "format", "zero_guess_ms", "warm_start_ms",
                 "speedup"});
    // Each cell is four full Picard loops; a trimmed sweep keeps the
    // benchmark minutes-scale.
    const std::vector<size_type> sizes =
        bench::quick_mode() ? std::vector<size_type>{120}
                            : std::vector<size_type>{120, 480, 960};
    for (const auto nbatch : sizes) {
        for (const auto format : {BatchFormat::csr, BatchFormat::ell}) {
            const double cold =
                picard_solve_time(nbatch, a100, format, false);
            const double warm =
                picard_solve_time(nbatch, a100, format, true);
            table.new_row()
                .add(nbatch)
                .add(format == BatchFormat::ell ? "ell" : "csr")
                .add(cold * 1e3, 5)
                .add(warm * 1e3, 5)
                .add(cold / warm, 3);
        }
    }
    bench::emit("fig8_initial_guess",
                "Fig. 8: warm start (previous Picard iterate) vs zero "
                "initial guess, A100, cumulative over 5 Picard iterations",
                table);
    std::cout << "\nShape check (paper: speedups ~1.15-1.25x CSR, "
                 "~1.2-1.6x ELL from warm starting)\n";
    return 0;
}
