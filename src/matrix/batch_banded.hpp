// BatchBanded: batch of banded matrices in LAPACK general-band (GB) storage.
//
// This is the format consumed by our dgbsv-equivalent direct solver (the
// paper's CPU baseline). Following LAPACK's convention, each entry is stored
// column-major with leading dimension ldab = 2*kl + ku + 1: the extra kl
// rows on top hold the fill-in produced by partial pivoting in gbtrf.
// Element A(i,j) (0-based, |i-j| within the band) lives at
//   ab[j * ldab + (kl + ku + i - j)].
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// One entry of a BatchBanded in LAPACK GB layout (mutable: the direct
/// solver factorizes in place).
template <typename T>
struct BandedView {
    index_type n = 0;    ///< matrix order
    index_type kl = 0;   ///< sub-diagonals
    index_type ku = 0;   ///< super-diagonals
    T* ab = nullptr;     ///< column-major, ldab = 2*kl + ku + 1

    index_type ldab() const { return 2 * kl + ku + 1; }

    /// Reference to A(i,j); caller must ensure j-ku <= i <= j+kl.
    T& operator()(index_type i, index_type j) const
    {
        return ab[static_cast<std::size_t>(j) * ldab() + (kl + ku + i - j)];
    }

    bool in_band(index_type i, index_type j) const
    {
        return i - j <= kl && j - i <= ku;
    }
};

template <typename T>
class BatchBanded {
public:
    BatchBanded() = default;

    BatchBanded(size_type num_batch, index_type n, index_type kl,
                index_type ku)
        : num_batch_(num_batch), n_(n), kl_(kl), ku_(ku)
    {
        BSIS_ENSURE_ARG(num_batch >= 0 && n >= 0, "negative dimension");
        BSIS_ENSURE_ARG(kl >= 0 && ku >= 0, "negative bandwidth");
        BSIS_ENSURE_ARG(kl < n || n == 0, "kl must be < n");
        BSIS_ENSURE_ARG(ku < n || n == 0, "ku must be < n");
        values_.assign(static_cast<std::size_t>(num_batch) * per_entry(),
                       T{});
    }

    size_type num_batch() const { return num_batch_; }
    index_type n() const { return n_; }
    index_type kl() const { return kl_; }
    index_type ku() const { return ku_; }
    index_type ldab() const { return 2 * kl_ + ku_ + 1; }
    size_type per_entry() const
    {
        return static_cast<size_type>(ldab()) * n_;
    }

    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size() * sizeof(T));
    }

    BandedView<T> entry(size_type b)
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {n_, kl_, ku_,
                values_.data() + static_cast<std::size_t>(b) * per_entry()};
    }

    /// Read-only access for SpMV/tests; returns a view over const-cast data
    /// is avoided by providing values pointer directly.
    const T* values(size_type b) const
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return values_.data() + static_cast<std::size_t>(b) * per_entry();
    }

private:
    size_type num_batch_ = 0;
    index_type n_ = 0;
    index_type kl_ = 0;
    index_type ku_ = 0;
    std::vector<T> values_;
};

/// y := A x for one banded entry (band-limited traversal).
template <typename T>
inline void spmv(BandedView<T> a, ConstVecView<T> x, VecView<T> y)
{
    BSIS_ASSERT(x.len == a.n && y.len == a.n);
    for (index_type i = 0; i < a.n; ++i) {
        T sum{};
        const index_type jlo = i - a.kl > 0 ? i - a.kl : 0;
        const index_type jhi = i + a.ku < a.n - 1 ? i + a.ku : a.n - 1;
        for (index_type j = jlo; j <= jhi; ++j) {
            sum += a(i, j) * x[j];
        }
        y[i] = sum;
    }
}

}  // namespace bsis
