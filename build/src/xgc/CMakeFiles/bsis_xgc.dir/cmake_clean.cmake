file(REMOVE_RECURSE
  "CMakeFiles/bsis_xgc.dir/collision_operator.cpp.o"
  "CMakeFiles/bsis_xgc.dir/collision_operator.cpp.o.d"
  "CMakeFiles/bsis_xgc.dir/distribution.cpp.o"
  "CMakeFiles/bsis_xgc.dir/distribution.cpp.o.d"
  "CMakeFiles/bsis_xgc.dir/grid.cpp.o"
  "CMakeFiles/bsis_xgc.dir/grid.cpp.o.d"
  "CMakeFiles/bsis_xgc.dir/picard.cpp.o"
  "CMakeFiles/bsis_xgc.dir/picard.cpp.o.d"
  "CMakeFiles/bsis_xgc.dir/workload.cpp.o"
  "CMakeFiles/bsis_xgc.dir/workload.cpp.o.d"
  "libbsis_xgc.a"
  "libbsis_xgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsis_xgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
