// Operation counts of one solver iteration, consumed by the GPU cost model.
//
// The gpusim cost model translates these per-iteration counts (together
// with the matrix shape, the storage configuration, and the device
// characteristics) into a modeled per-block duration for the wave
// scheduler.
#pragma once

#include "core/precond.hpp"
#include "util/types.hpp"

namespace bsis {

enum class SolverType {
    bicgstab,
    bicg,
    cgs,
    cg,
    gmres,
    richardson,
    chebyshev,
};

/// Per-iteration and setup operation counts of a solver composition.
/// "axpys" counts all streaming vector updates (axpy/axpby/copy/fill);
/// "dots" counts block-wide reductions (dot products and norms), which on
/// the GPU serialize behind barrier synchronization.
struct SolverWorkProfile {
    double spmv_per_iter = 0;
    double precond_per_iter = 0;
    double dots_per_iter = 0;
    double axpys_per_iter = 0;
    double setup_spmvs = 0;
    double setup_dots = 0;
    double setup_axpys = 0;
    int num_vectors = 0;  ///< per-system vectors incl. x and precond storage
};

inline int precond_work_vectors(PrecondType precond,
                                int block_jacobi_size = 4)
{
    switch (precond) {
    case PrecondType::identity:
        return 0;
    case PrecondType::jacobi:
        return 1;
    case PrecondType::block_jacobi:
        // One n x block_size strip of inverted diagonal blocks.
        return block_jacobi_size;
    }
    return 0;
}

inline SolverWorkProfile work_profile(SolverType solver, PrecondType precond,
                                      int gmres_restart = 30,
                                      int block_jacobi_size = 4)
{
    const int prec_vecs = precond_work_vectors(precond, block_jacobi_size);
    const double prec_ops = 1.0;
    SolverWorkProfile p;
    switch (solver) {
    case SolverType::bicgstab:
        // Algorithm 1: 2 SpMV, 2 preconditioner applications, 6 reductions
        // (||r||, rho, r_hat.v, ||s||, t.s, t.t), ~6 vector updates.
        p = {2, 2 * prec_ops, 6, 6, 1, 1, 3, 9 + prec_vecs};
        break;
    case SolverType::cgs:
        // 2 SpMV, 2 preconditioner applications, 3 reductions (rho,
        // sigma, ||r||), ~8 vector updates.
        p = {2, 2 * prec_ops, 3, 8, 1, 1, 2, 9 + prec_vecs};
        break;
    case SolverType::bicg:
        // 1 SpMV + 1 transpose SpMV, 2 preconditioner applications,
        // 3 reductions (rho, p_hat.q, ||r||), ~6 vector updates.
        p = {2, 2 * prec_ops, 3, 6, 1, 2, 4, 9 + prec_vecs};
        break;
    case SolverType::cg:
        p = {1, prec_ops, 3, 3, 1, 2, 2, 5 + prec_vecs};
        break;
    case SolverType::gmres: {
        // Average inner step: MGS against j+1 basis vectors, j ~ m/2.
        const double avg_orth = gmres_restart / 2.0 + 1.0;
        p = {1, prec_ops, avg_orth + 1, avg_orth + 1, 1, 1, 2,
             gmres_restart + 5 + prec_vecs};
        break;
    }
    case SolverType::richardson:
        p = {1, prec_ops, 1, 2, 0, 0, 0, 3 + prec_vecs};
        break;
    case SolverType::chebyshev:
        // Reduction-free apart from the optional residual check.
        p = {1, prec_ops, 1, 3, 1, 1, 1, 5 + prec_vecs};
        break;
    }
    return p;
}

}  // namespace bsis
