// Ablation: where does the fused solver iteration's time go?
//
// Section IV of the paper argues the composition/fusion design around the
// costs of the solver components. This bench decomposes the modeled
// per-iteration time of every solver on every device into SpMV /
// reduction (dot, norm) / streaming-update shares -- showing that the
// block-wide reductions dominate at n = 992, which is (a) why fusing the
// kernel and keeping vectors in shared memory matters, and (b) what a
// reduction-free method (Chebyshev) trades iteration count against.
#include <iostream>

#include "common.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/occupancy.hpp"

int main()
{
    using namespace bsis;
    using namespace bsis::gpusim;

    const SystemShape shape{992, 9 * 992, 9};
    Table table({"device", "solver", "iteration_us", "spmv_prec_%",
                 "reductions_%", "updates_%"});
    struct Entry {
        const char* name;
        SolverType solver;
    };
    const Entry solvers[] = {
        {"bicgstab", SolverType::bicgstab},
        {"bicg", SolverType::bicg},
        {"cgs", SolverType::cgs},
        {"gmres(30)", SolverType::gmres},
        {"chebyshev", SolverType::chebyshev},
    };
    int count = 0;
    const auto* gpus = all_gpus(count);
    for (int g = 0; g < count; ++g) {
        const auto& device = gpus[g];
        for (const auto& entry : solvers) {
            const auto work =
                work_profile(entry.solver, PrecondType::jacobi);
            const auto config = configure_storage(
                bicgstab_slots(1), shape.rows, device.warp_size,
                sizeof(real_type),
                static_cast<size_type>(device.max_shared_kib_per_block *
                                       1024));
            const auto block_threads =
                ell_block_size(shape.rows, device.warp_size);
            const auto occ = compute_occupancy(device, block_threads,
                                               config.shared_bytes);
            const auto cost =
                block_cost(device, shape, BatchFormat::ell, block_threads,
                           config, work, occ.blocks_per_cu);
            // The cost model's own decomposition: with the fused work
            // profile the reduction share is what survives fusion (the
            // standalone dot sweeps plus the cross-warp combines of the
            // norms riding on update sweeps).
            const double spmv = cost.iter_spmv_us;
            const double dots = cost.iter_reduction_us;
            const double updates = cost.iter_update_us;
            const double total = cost.per_iteration_us;
            table.new_row()
                .add(device.name)
                .add(entry.name)
                .add(total, 4)
                .add(100.0 * spmv / total, 3)
                .add(100.0 * dots / total, 3)
                .add(100.0 * updates / total, 3);
        }
    }
    bench::emit("ablation_reductions",
                "Ablation: modeled per-iteration cost decomposition of the "
                "fused solvers (ELL, Jacobi, 992-row systems)",
                table);
    std::cout
        << "\nReading guide: block-wide reductions are the largest single "
           "share of the\nKrylov solvers' iteration time -- the latency the "
           "paper's fused single-kernel\ndesign exists to amortize. "
           "Chebyshev trades them away for a-priori spectral\nbounds (and "
           "~3x the iterations on these matrices; see "
           "examples/solver_comparison).\n";
    return 0;
}
