// Monolithic block-diagonal solve -- the design alternative the paper
// rejects in Section II ("One solution ... would be to assemble them into
// block-diagonal matrices with sparse diagonal blocks ... internal
// experiments have shown that such a method is slower than the proposed
// batched iterative solvers").
//
// All systems of the batch are assembled into one global block-diagonal
// operator and solved with a single BiCGStab iteration: the dot products
// couple the blocks (global synchronization points), and the iteration
// count is governed by the hardest system in the batch. The ablation
// benchmark compares this against the independent batched solves.
#pragma once

#include "blas/batch_vector.hpp"
#include "core/logger.hpp"
#include "core/solver.hpp"
#include "matrix/batch_csr.hpp"
#include "util/types.hpp"

namespace bsis {

/// View of a whole batch as one block-diagonal matrix of order
/// num_batch * rows.
struct BlockDiagView {
    const BatchCsr<real_type>* batch = nullptr;

    index_type rows_total() const
    {
        return static_cast<index_type>(batch->num_batch()) * batch->rows();
    }
};

/// y := A x over the global block-diagonal operator.
void spmv(const BlockDiagView& a, ConstVecView<real_type> x,
          VecView<real_type> y);

/// Global diagonal extraction (scalar-Jacobi over all blocks).
void extract_diagonal(const BlockDiagView& a, VecView<real_type> diag);

/// Result of a monolithic solve: one global iteration count.
struct MonolithicResult {
    int iterations = 0;
    real_type residual_norm = 0.0;
    bool converged = false;
    double wall_seconds = 0.0;
};

/// Solves the whole batch as one block-diagonal BiCGStab system. The
/// stopping criterion is applied to the GLOBAL residual norm; with an
/// absolute tolerance this forces every block to iterate until the worst
/// block has converged.
MonolithicResult solve_monolithic(const BatchCsr<real_type>& a,
                                  const BatchVector<real_type>& b,
                                  BatchVector<real_type>& x,
                                  const SolverSettings& settings);

}  // namespace bsis
