#include "obs/events.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "obs/json.hpp"

namespace bsis::obs {

namespace fs = std::filesystem;

double unix_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

EventLog::~EventLog() { close(); }

bool EventLog::open(const std::string& path, std::int64_t max_bytes,
                    int max_rotations)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (out_.is_open()) {
        out_.close();
    }
    const auto parent = fs::path(path).parent_path();
    std::error_code ec;
    if (!parent.empty()) {
        fs::create_directories(parent, ec);  // best effort
    }
    out_.open(path, std::ios::app);
    if (!out_) {
        path_.clear();
        return false;
    }
    path_ = path;
    max_bytes_ = max_bytes > 0 ? max_bytes : default_max_bytes;
    max_rotations_ = max_rotations >= 0 ? max_rotations
                                        : default_max_rotations;
    bytes_ = static_cast<std::int64_t>(out_.tellp());
    emitted_ = 0;
    rotations_ = 0;
    return true;
}

void EventLog::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (out_.is_open()) {
        out_.close();
    }
    path_.clear();
}

bool EventLog::active() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return out_.is_open();
}

std::int64_t EventLog::emitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return emitted_;
}

int EventLog::rotations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rotations_;
}

std::string EventLog::path() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return path_;
}

void EventLog::rotate_locked()
{
    out_.close();
    std::error_code ec;
    if (max_rotations_ == 0) {
        fs::remove(path_, ec);
    } else {
        // Shift <path>.(n-1) -> <path>.n, oldest dropped, then the active
        // file becomes <path>.1.
        fs::remove(path_ + "." + std::to_string(max_rotations_), ec);
        for (int i = max_rotations_ - 1; i >= 1; --i) {
            fs::rename(path_ + "." + std::to_string(i),
                       path_ + "." + std::to_string(i + 1), ec);
        }
        fs::rename(path_, path_ + ".1", ec);
    }
    out_.open(path_, std::ios::trunc);
    bytes_ = 0;
    ++rotations_;
}

void EventLog::emit(const std::string& kind,
                    std::initializer_list<EventField> fields)
{
    std::ostringstream line;
    line.precision(15);
    line << "{\"ts\": " << unix_seconds() << ", \"event\": ";
    json_quote(line, kind);
    for (const auto& f : fields) {
        line << ", ";
        json_quote(line, f.key);
        line << ": ";
        switch (f.type) {
        case EventField::Type::string:
            json_quote(line, f.str);
            break;
        case EventField::Type::number:
            // JSON has no nan/inf literals; encode as strings the way the
            // flight-recorder sidecar does.
            if (std::isnan(f.num)) {
                line << "\"nan\"";
            } else if (std::isinf(f.num)) {
                line << (f.num > 0 ? "\"inf\"" : "\"-inf\"");
            } else {
                line << f.num;
            }
            break;
        case EventField::Type::integer:
            line << f.integer;
            break;
        case EventField::Type::boolean:
            line << (f.boolean ? "true" : "false");
            break;
        }
    }
    line << "}\n";
    const std::string text = line.str();

    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_.is_open()) {
        return;
    }
    if (bytes_ > 0 &&
        bytes_ + static_cast<std::int64_t>(text.size()) > max_bytes_) {
        rotate_locked();
    }
    out_ << text;
    out_.flush();  // lines must be visible to a live tail/obs_top
    bytes_ += static_cast<std::int64_t>(text.size());
    ++emitted_;
}

EventLog& events()
{
    static EventLog log;
    return log;
}

bool open_events(const std::string& path, std::int64_t max_bytes,
                 int max_rotations)
{
    const bool ok = events().open(path, max_bytes, max_rotations);
    detail::g_events_enabled.store(ok, std::memory_order_relaxed);
    return ok;
}

void close_events()
{
    detail::g_events_enabled.store(false, std::memory_order_relaxed);
    events().close();
}

}  // namespace bsis::obs
