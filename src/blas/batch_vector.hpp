// Batched vector storage and views.
//
// A BatchVector holds `num_batch` independent vectors of equal length in one
// contiguous allocation (entry-major). Solvers operate on per-entry
// VecView/ConstVecView spans, so the same kernels work on owned storage, on
// shared-memory-simulated workspaces, and on slices of larger arrays.
#pragma once

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace bsis {

/// Mutable view of one vector of a batch: pointer + length.
template <typename T>
struct VecView {
    T* data = nullptr;
    index_type len = 0;

    T& operator[](index_type i) const { return data[i]; }
    T* begin() const { return data; }
    T* end() const { return data + len; }
};

/// Read-only view of one vector of a batch.
template <typename T>
struct ConstVecView {
    const T* data = nullptr;
    index_type len = 0;

    ConstVecView() = default;
    ConstVecView(const T* d, index_type l) : data(d), len(l) {}
    /// Implicit conversion so kernels can take const views of mutable data.
    ConstVecView(VecView<T> v) : data(v.data), len(v.len) {}

    const T& operator[](index_type i) const { return data[i]; }
    const T* begin() const { return data; }
    const T* end() const { return data + len; }
};

/// Mutable view of a batch-interleaved lane group: `width` vectors of
/// length `len` stored batch-major (SoA over lanes), element i of lane l
/// at data[i * width + l]. This is the host analogue of the paper's
/// one-thread-block-per-system layout turned sideways: where the GPU's
/// warp lanes sweep the ROWS of one system in lockstep, the CPU's SIMD
/// lanes sweep `width` SYSTEMS in lockstep, so each row step is one
/// contiguous width-`width` vector operation.
template <typename T>
struct LaneGroupView {
    T* data = nullptr;
    index_type len = 0;  ///< rows per lane
    int width = 0;       ///< lanes in the group

    T& at(index_type i, int lane) const { return data[i * width + lane]; }
};

/// Read-only view of a batch-interleaved lane group.
template <typename T>
struct ConstLaneGroupView {
    const T* data = nullptr;
    index_type len = 0;
    int width = 0;

    ConstLaneGroupView() = default;
    ConstLaneGroupView(const T* d, index_type l, int w)
        : data(d), len(l), width(w)
    {}
    ConstLaneGroupView(LaneGroupView<T> v)
        : data(v.data), len(v.len), width(v.width)
    {}

    const T& at(index_type i, int lane) const
    {
        return data[i * width + lane];
    }
};

/// Packs one entry-major vector into lane `lane` of an interleaved group:
/// group(i, lane) := x[i] for i < x.len; rows past x.len are untouched.
template <typename T>
inline void pack_lane(ConstVecView<T> x, LaneGroupView<T> group, int lane)
{
    BSIS_ASSERT(lane >= 0 && lane < group.width && x.len <= group.len);
    for (index_type i = 0; i < x.len; ++i) {
        group.at(i, lane) = x[i];
    }
}

/// Unpacks lane `lane` of an interleaved group back into an entry-major
/// vector: x[i] := group(i, lane).
template <typename T>
inline void unpack_lane(ConstLaneGroupView<T> group, int lane, VecView<T> x)
{
    BSIS_ASSERT(lane >= 0 && lane < group.width && x.len <= group.len);
    for (index_type i = 0; i < x.len; ++i) {
        x[i] = group.at(i, lane);
    }
}

/// Zeroes lane `lane` of an interleaved group.
template <typename T>
inline void zero_lane(LaneGroupView<T> group, int lane)
{
    BSIS_ASSERT(lane >= 0 && lane < group.width);
    for (index_type i = 0; i < group.len; ++i) {
        group.at(i, lane) = T{};
    }
}

/// `num_batch` vectors of length `len` in one contiguous entry-major array.
template <typename T>
class BatchVector {
public:
    BatchVector() = default;

    BatchVector(size_type num_batch, index_type len, T fill_value = T{})
        : num_batch_(num_batch), len_(len)
    {
        BSIS_ENSURE_ARG(num_batch >= 0, "negative batch count");
        BSIS_ENSURE_ARG(len >= 0, "negative vector length");
        values_.assign(static_cast<std::size_t>(num_batch) * len,
                       fill_value);
    }

    size_type num_batch() const { return num_batch_; }
    index_type len() const { return len_; }

    VecView<T> entry(size_type b)
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {values_.data() + static_cast<std::size_t>(b) * len_, len_};
    }

    ConstVecView<T> entry(size_type b) const
    {
        BSIS_ASSERT(b >= 0 && b < num_batch_);
        return {values_.data() + static_cast<std::size_t>(b) * len_, len_};
    }

    T* data() { return values_.data(); }
    const T* data() const { return values_.data(); }
    size_type size() const { return static_cast<size_type>(values_.size()); }

    void fill(T value) { std::fill(values_.begin(), values_.end(), value); }

private:
    size_type num_batch_ = 0;
    index_type len_ = 0;
    std::vector<T> values_;
};

}  // namespace bsis
