# Empty compiler generated dependencies file for bsis_matrix.
# This may be replaced when dependencies are built.
