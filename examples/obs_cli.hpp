// Shared telemetry flags for the examples:
//   --trace=FILE         phase tracing on; Chrome trace JSON written to
//                        FILE at exit (load in chrome://tracing or
//                        ui.perfetto.dev)
//   --metrics-json=FILE  metrics registry on; JSON snapshot written to
//                        FILE at exit
//   --capture-failures=DIR  arm the flight recorder: every non-converged
//                        system of an armed solve is dumped as a replay
//                        bundle (A.mtx, b.mtx, x0.mtx, meta.json) under
//                        DIR, up to a bounded budget
//   --report=FILE        metrics registry on; the human-readable
//                        performance-attribution report (per-phase
//                        bandwidth/roofline table, drift summary,
//                        failure classes) rendered to FILE at exit --
//                        the same document `tools/solve_report` builds
//                        from a metrics snapshot
//   --drift-dump=DIR     arm the drift annotation dump: every solve
//                        whose measured-vs-modeled phase comparison
//                        alarms writes a drift_<seq>_<prefix>.json
//                        describing the disagreement under DIR
//
// Construct an ObsCli early in main with argc/argv: it consumes the
// recognized flags (compacting argv so positional parsing downstream is
// untouched), flips the obs runtime switches, and writes the requested
// artifacts from its destructor. Telemetry stays fully off -- and the
// instrumented hot paths at their one-branch disabled cost -- when
// neither flag is given.
#pragma once

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "obs/attribution.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"

namespace bsis::examples {

class ObsCli {
public:
    ObsCli(int& argc, char** argv)
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::strncmp(argv[i], "--trace=", 8) == 0) {
                trace_path_ = argv[i] + 8;
            } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
                metrics_path_ = argv[i] + 15;
            } else if (std::strncmp(argv[i], "--capture-failures=", 19) ==
                       0) {
                recorder_ =
                    std::make_unique<obs::FlightRecorder>(argv[i] + 19);
            } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
                report_path_ = argv[i] + 9;
            } else if (std::strncmp(argv[i], "--drift-dump=", 13) == 0) {
                drift_dump_ = true;
                obs::set_drift_dump_dir(argv[i] + 13);
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;
        if (!trace_path_.empty()) {
            obs::set_trace_enabled(true);
        }
        if (!metrics_path_.empty() || !report_path_.empty()) {
            obs::set_metrics_enabled(true);
        }
    }

    ObsCli(const ObsCli&) = delete;
    ObsCli& operator=(const ObsCli&) = delete;

    ~ObsCli() { flush(); }

    /// Whether any telemetry flag was given.
    bool active() const
    {
        return !trace_path_.empty() || !metrics_path_.empty() ||
               !report_path_.empty();
    }

    /// The armed flight recorder, or nullptr when --capture-failures was
    /// not given. Assign to SolverSettings::flight_recorder.
    obs::FlightRecorder* recorder() const { return recorder_.get(); }

    /// Writes the requested artifacts and disables telemetry again.
    /// Idempotent; the destructor calls it for the common case.
    void flush()
    {
        if (!report_path_.empty()) {
            obs::sync_trace_dropped_gauge();
            obs::MetricsDocument doc;
            if (!obs::parse_metrics_json(obs::metrics().snapshot_json(),
                                         doc)) {
                std::cerr << "[obs] failed to build report snapshot\n";
            } else {
                std::map<std::string, obs::TraceSpanStats> spans;
                obs::summarize_trace_json(obs::trace().chrome_trace_json(),
                                          spans);
                const auto report = obs::render_solve_report(doc, spans);
                std::ofstream out(report_path_);
                if (out && (out << report.text)) {
                    std::cout << "[obs] report written to " << report_path_
                              << '\n';
                } else {
                    std::cerr << "[obs] failed to write report to "
                              << report_path_ << '\n';
                }
            }
            report_path_.clear();
            if (metrics_path_.empty()) {
                obs::set_metrics_enabled(false);
            }
        }
        if (!trace_path_.empty()) {
            obs::set_trace_enabled(false);
            if (obs::trace().write_chrome_trace(trace_path_)) {
                std::cout << "[obs] trace written to " << trace_path_
                          << " (" << obs::trace().snapshot().size()
                          << " events)\n";
            } else {
                std::cerr << "[obs] failed to write trace to "
                          << trace_path_ << '\n';
            }
            trace_path_.clear();
        }
        if (!metrics_path_.empty()) {
            obs::sync_trace_dropped_gauge();
            obs::set_metrics_enabled(false);
            if (obs::metrics().write_json(metrics_path_)) {
                std::cout << "[obs] metrics written to " << metrics_path_
                          << '\n';
            } else {
                std::cerr << "[obs] failed to write metrics to "
                          << metrics_path_ << '\n';
            }
            metrics_path_.clear();
        }
        if (drift_dump_) {
            obs::set_drift_dump_dir("");
            drift_dump_ = false;
        }
        if (recorder_ != nullptr) {
            std::cout << "[obs] flight recorder: " << recorder_->captured()
                      << " of " << recorder_->seen()
                      << " failed systems captured under "
                      << recorder_->directory() << '\n';
            recorder_.reset();
        }
    }

private:
    std::string trace_path_;
    std::string metrics_path_;
    std::string report_path_;
    bool drift_dump_ = false;
    std::unique_ptr<obs::FlightRecorder> recorder_;
};

}  // namespace bsis::examples
