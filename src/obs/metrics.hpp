// MetricsRegistry: named counters, gauges, and histograms for the solver
// stack.
//
// The registry is the live replacement of the one-off bench computations:
// every execution path (scalar, lockstep, simulated GPU) records into the
// same named metrics, and a snapshot serializes them as JSON. Recording is
// sharded per thread (cache-line-aligned shards, merged on snapshot --
// the BatchLogStage pattern) so the hot solver loops never contend on a
// shared cache line. Record sites are expected to be gated by
// `obs::metrics_enabled()` (see obs/telemetry.hpp); a disabled registry
// costs one relaxed atomic load per site.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sharding.hpp"

namespace bsis::obs {

/// Quantile summary of one histogram (p50/p95 over the retained samples,
/// count/sum/max exact over every recorded sample).
struct HistogramSummary {
    std::int64_t count = 0;
    double sum = 0;
    double max = 0;
    double p50 = 0;
    double p95 = 0;

    double mean() const
    {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/// Point-in-time merge of every shard.
struct MetricsSnapshot {
    struct Counter {
        std::string name;
        std::int64_t value = 0;
    };
    struct Gauge {
        std::string name;
        double value = 0;
        bool set = false;  ///< false until the first set()
    };
    struct Histogram {
        std::string name;
        HistogramSummary summary;
    };

    std::vector<Counter> counters;
    std::vector<Gauge> gauges;
    std::vector<Histogram> histograms;

    /// Lookup helpers (linear scan; snapshots are small). Return the
    /// default-constructed value when the name is unknown.
    std::int64_t counter(const std::string& name) const;
    double gauge(const std::string& name) const;
    bool gauge_set(const std::string& name) const;
    HistogramSummary histogram(const std::string& name) const;

    /// JSON document: {"counters": {...}, "gauges": {...},
    /// "histograms": {"name": {"count": .., "p50": .., ...}}}.
    std::string json() const;
};

/// Registry of named metrics with per-thread sharded recording.
class MetricsRegistry {
public:
    using Id = int;

    /// Samples retained per histogram shard before stride decimation
    /// halves them (count/sum/max stay exact; quantiles become
    /// approximate).
    static constexpr int histogram_shard_capacity = 4096;

    /// Registration is idempotent: the same name always yields the same
    /// id. Registering a name under two different kinds throws.
    Id counter(const std::string& name);
    Id gauge(const std::string& name);
    Id histogram(const std::string& name);

    /// Recording. Ids must come from the matching register call.
    void add(Id id, std::int64_t delta = 1);
    void set(Id id, double value);
    void observe(Id id, double sample);

    /// Convenience name-based recording for cold call sites (one mutex
    /// acquisition for the registration lookup).
    void add_named(const std::string& name, std::int64_t delta = 1);
    void set_named(const std::string& name, double value);
    void observe_named(const std::string& name, double sample);

    MetricsSnapshot snapshot() const;
    std::string snapshot_json() const { return snapshot().json(); }
    bool write_json(const std::string& path) const;

    /// Zeroes every recorded value; registered names and ids survive.
    void reset_values();

private:
    enum class Kind { counter, gauge, histogram };

    /// Ids encode (kind, slot-within-kind) so the record calls decode them
    /// without touching the registry's name table (no shared lock on the
    /// hot path; the per-thread shard's own mutex is the only
    /// synchronization, uncontended except against snapshots).
    static constexpr Id kind_shift = 24;
    static Id encode(Kind kind, int slot)
    {
        return (static_cast<Id>(kind) << kind_shift) | slot;
    }
    static Kind kind_of(Id id) { return static_cast<Kind>(id >> kind_shift); }
    static int slot_of(Id id) { return id & ((1 << kind_shift) - 1); }

    struct GaugeCell {
        std::uint64_t seq = 0;  ///< global set() order; merge keeps max
        double value = 0;
    };
    struct HistCell {
        std::vector<double> samples;  ///< stride-decimated reservoir
        std::int64_t stride = 1;
        std::int64_t count = 0;  ///< exact, including decimated samples
        double sum = 0;
        double max = 0;
        bool any = false;
    };
    struct alignas(64) Shard {
        int index = 0;  ///< registration order (required by PerThreadShards)
        mutable std::mutex mutex;
        std::vector<std::int64_t> counters;
        std::vector<GaugeCell> gauges;
        std::vector<HistCell> histograms;
    };

    Id register_metric(const std::string& name, Kind kind);

    mutable std::mutex names_mutex_;
    std::vector<std::string> counter_names_;
    std::vector<std::string> gauge_names_;
    std::vector<std::string> histogram_names_;
    std::atomic<std::uint64_t> gauge_seq_{0};
    PerThreadShards<Shard> shards_;
};

}  // namespace bsis::obs
