# Empty compiler generated dependencies file for bench_related_direct.
# This may be replaced when dependencies are built.
