#include "core/storage_config.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bsis {

bool StorageConfig::in_shared(const std::string& name) const
{
    for (const auto& slot : slots) {
        if (slot.name == name) {
            return slot.space == MemSpace::shared;
        }
    }
    throw BadArgument("StorageConfig::in_shared", "unknown slot " + name);
}

int StorageConfig::shared_slot_index(const std::string& name) const
{
    int ordinal = 0;
    for (const auto& slot : slots) {
        if (slot.name == name) {
            return slot.space == MemSpace::shared ? ordinal : -1;
        }
        if (slot.space == MemSpace::shared) {
            ++ordinal;
        }
    }
    throw BadArgument("StorageConfig::shared_slot_index",
                      "unknown slot " + name);
}

StorageConfig configure_storage(std::vector<VectorSlot> slots,
                                index_type length, index_type warp_size,
                                size_type value_bytes,
                                size_type shared_capacity_bytes)
{
    BSIS_ENSURE_ARG(length >= 0, "negative vector length");
    BSIS_ENSURE_ARG(warp_size > 0, "warp size must be positive");
    StorageConfig config;
    config.padded_length =
        (length + warp_size - 1) / warp_size * warp_size;
    const size_type bytes_per_vector =
        static_cast<size_type>(config.padded_length) * value_bytes;

    // Stable order: priority class first, declaration order within class.
    std::vector<std::size_t> order(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return static_cast<int>(slots[a].cls) <
                                static_cast<int>(slots[b].cls);
                     });

    size_type used = 0;
    for (const auto i : order) {
        if (bytes_per_vector > 0 &&
            used + bytes_per_vector <= shared_capacity_bytes) {
            slots[i].space = MemSpace::shared;
            used += bytes_per_vector;
            ++config.num_shared;
        } else {
            slots[i].space = MemSpace::global;
            ++config.num_global;
        }
    }
    config.shared_bytes = used;
    config.slots = std::move(slots);
    return config;
}

std::vector<VectorSlot> bicgstab_slots(int precond_work_vectors)
{
    std::vector<VectorSlot> slots{
        {"p_hat", SlotClass::spmv, MemSpace::global},
        {"v", SlotClass::spmv, MemSpace::global},
        {"s_hat", SlotClass::spmv, MemSpace::global},
        {"t", SlotClass::spmv, MemSpace::global},
        {"r", SlotClass::intermediate, MemSpace::global},
        {"r_hat", SlotClass::intermediate, MemSpace::global},
        {"p", SlotClass::intermediate, MemSpace::global},
        {"s", SlotClass::intermediate, MemSpace::global},
        {"x", SlotClass::intermediate, MemSpace::global},
    };
    for (int i = 0; i < precond_work_vectors; ++i) {
        slots.push_back({"prec_" + std::to_string(i), SlotClass::precond,
                         MemSpace::global});
    }
    return slots;
}

std::vector<VectorSlot> cgs_slots(int precond_work_vectors)
{
    std::vector<VectorSlot> slots{
        {"u_hat", SlotClass::spmv, MemSpace::global},
        {"v", SlotClass::spmv, MemSpace::global},
        {"t", SlotClass::spmv, MemSpace::global},
        {"r", SlotClass::intermediate, MemSpace::global},
        {"r_hat", SlotClass::intermediate, MemSpace::global},
        {"u", SlotClass::intermediate, MemSpace::global},
        {"p", SlotClass::intermediate, MemSpace::global},
        {"q", SlotClass::intermediate, MemSpace::global},
        {"x", SlotClass::intermediate, MemSpace::global},
    };
    for (int i = 0; i < precond_work_vectors; ++i) {
        slots.push_back({"prec_" + std::to_string(i), SlotClass::precond,
                         MemSpace::global});
    }
    return slots;
}

std::vector<VectorSlot> cg_slots(int precond_work_vectors)
{
    std::vector<VectorSlot> slots{
        {"p", SlotClass::spmv, MemSpace::global},
        {"q", SlotClass::spmv, MemSpace::global},
        {"r", SlotClass::intermediate, MemSpace::global},
        {"z", SlotClass::intermediate, MemSpace::global},
        {"x", SlotClass::intermediate, MemSpace::global},
    };
    for (int i = 0; i < precond_work_vectors; ++i) {
        slots.push_back({"prec_" + std::to_string(i), SlotClass::precond,
                         MemSpace::global});
    }
    return slots;
}

std::vector<VectorSlot> gmres_slots(int restart, int precond_work_vectors)
{
    BSIS_ENSURE_ARG(restart >= 1, "restart must be >= 1");
    std::vector<VectorSlot> slots{
        {"w", SlotClass::spmv, MemSpace::global},
        {"z", SlotClass::spmv, MemSpace::global},
        {"r", SlotClass::intermediate, MemSpace::global},
        {"x", SlotClass::intermediate, MemSpace::global},
    };
    for (int i = 0; i <= restart; ++i) {
        slots.push_back({"v_" + std::to_string(i), SlotClass::intermediate,
                         MemSpace::global});
    }
    for (int i = 0; i < precond_work_vectors; ++i) {
        slots.push_back({"prec_" + std::to_string(i), SlotClass::precond,
                         MemSpace::global});
    }
    return slots;
}

std::vector<VectorSlot> richardson_slots(int precond_work_vectors)
{
    std::vector<VectorSlot> slots{
        {"t", SlotClass::spmv, MemSpace::global},
        {"r", SlotClass::intermediate, MemSpace::global},
        {"x", SlotClass::intermediate, MemSpace::global},
    };
    for (int i = 0; i < precond_work_vectors; ++i) {
        slots.push_back({"prec_" + std::to_string(i), SlotClass::precond,
                         MemSpace::global});
    }
    return slots;
}

std::vector<VectorSlot> bicg_slots(int precond_work_vectors)
{
    std::vector<VectorSlot> slots{
        {"p", SlotClass::spmv, MemSpace::global},
        {"p_hat", SlotClass::spmv, MemSpace::global},
        {"q", SlotClass::spmv, MemSpace::global},
        {"q_hat", SlotClass::spmv, MemSpace::global},
        {"r", SlotClass::intermediate, MemSpace::global},
        {"r_hat", SlotClass::intermediate, MemSpace::global},
        {"z", SlotClass::intermediate, MemSpace::global},
        {"z_hat", SlotClass::intermediate, MemSpace::global},
        {"x", SlotClass::intermediate, MemSpace::global},
    };
    for (int i = 0; i < precond_work_vectors; ++i) {
        slots.push_back({"prec_" + std::to_string(i), SlotClass::precond,
                         MemSpace::global});
    }
    return slots;
}

std::vector<VectorSlot> chebyshev_slots(int precond_work_vectors)
{
    std::vector<VectorSlot> slots{
        {"p", SlotClass::spmv, MemSpace::global},
        {"q", SlotClass::spmv, MemSpace::global},
        {"r", SlotClass::intermediate, MemSpace::global},
        {"z", SlotClass::intermediate, MemSpace::global},
        {"x", SlotClass::intermediate, MemSpace::global},
    };
    for (int i = 0; i < precond_work_vectors; ++i) {
        slots.push_back({"prec_" + std::to_string(i), SlotClass::precond,
                         MemSpace::global});
    }
    return slots;
}

}  // namespace bsis
