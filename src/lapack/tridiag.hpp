// Batched tridiagonal and pentadiagonal direct solvers.
//
// Section III of the paper surveys the batched direct solvers that existed
// before its batched iterative approach: cuSPARSE's gtsv2StridedBatch
// (cyclic-reduction variants), cuThomasBatch (one thread per system,
// interleaved storage), and pentadiagonal solvers [6], [12], [17]. These
// are the baselines the paper positions itself against, so the library
// provides them:
//   * thomas_solve        -- the classic O(n) serial recurrence (the
//                            per-thread algorithm of cuThomasBatch),
//   * cyclic_reduction_solve -- the fine-grain parallel O(n log n)
//                            scheme GPU vendors use inside gtsv2,
//   * pentadiag_solve     -- banded elimination with two off-diagonals.
// All three assume the diagonally dominant systems these applications
// produce (no pivoting, like their GPU counterparts).
#pragma once

#include <vector>

#include "blas/batch_vector.hpp"
#include "util/types.hpp"

namespace bsis::lapack {

/// One tridiagonal system: sub/main/super diagonals of length n (sub[0]
/// and sup[n-1] are unused).
template <typename T>
struct TridiagView {
    index_type n = 0;
    T* sub = nullptr;
    T* diag = nullptr;
    T* sup = nullptr;
};

/// Batch of tridiagonal systems (entry-major storage of each diagonal).
class BatchTridiag {
public:
    BatchTridiag() = default;
    BatchTridiag(size_type num_batch, index_type n);

    size_type num_batch() const { return num_batch_; }
    index_type n() const { return n_; }

    TridiagView<real_type> entry(size_type b);

private:
    size_type num_batch_ = 0;
    index_type n_ = 0;
    std::vector<real_type> sub_;
    std::vector<real_type> diag_;
    std::vector<real_type> sup_;
};

/// Thomas algorithm (no pivoting); destroys the matrix, overwrites b with
/// the solution. Throws NumericalBreakdown on a zero pivot.
void thomas_solve(TridiagView<real_type> a, VecView<real_type> b);

/// Cyclic reduction (the GPU-parallel scheme); does not modify the matrix,
/// overwrites b with the solution. Handles arbitrary n (not only powers of
/// two). Throws NumericalBreakdown on a zero reduced pivot.
void cyclic_reduction_solve(const TridiagView<const real_type>& a,
                            VecView<real_type> b);

/// Convenience overload for a mutable view.
void cyclic_reduction_solve(const TridiagView<real_type>& a,
                            VecView<real_type> b);

/// Batched drivers (OpenMP over systems).
void batch_thomas(BatchTridiag& a, BatchVector<real_type>& x);
void batch_cyclic_reduction(BatchTridiag& a, BatchVector<real_type>& x);

/// One pentadiagonal system: five diagonals of length n (out-of-range
/// leading/trailing entries unused).
template <typename T>
struct PentadiagView {
    index_type n = 0;
    T* sub2 = nullptr;
    T* sub1 = nullptr;
    T* diag = nullptr;
    T* sup1 = nullptr;
    T* sup2 = nullptr;
};

class BatchPentadiag {
public:
    BatchPentadiag() = default;
    BatchPentadiag(size_type num_batch, index_type n);

    size_type num_batch() const { return num_batch_; }
    index_type n() const { return n_; }

    PentadiagView<real_type> entry(size_type b);

private:
    size_type num_batch_ = 0;
    index_type n_ = 0;
    std::vector<real_type> bands_[5];
};

/// Pentadiagonal elimination without pivoting (the cuPentBatch-style
/// algorithm [12]); destroys the matrix, overwrites b with the solution.
void pentadiag_solve(PentadiagView<real_type> a, VecView<real_type> b);

void batch_pentadiag(BatchPentadiag& a, BatchVector<real_type>& x);

/// Flop counts for the device cost models.
double thomas_flops(index_type n);
double cyclic_reduction_flops(index_type n);
double pentadiag_flops(index_type n);

}  // namespace bsis::lapack
