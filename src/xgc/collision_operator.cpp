#include "xgc/collision_operator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/error.hpp"

namespace bsis::xgc {

CollisionOperator::CollisionOperator(const VelocityGrid& grid,
                                     SpeciesParams species)
    : grid_(grid),
      species_(std::move(species)),
      pattern_(make_stencil_pattern(grid.n_vpar(), grid.n_vperp(),
                                    StencilKind::nine_point)),
      scratch_(pattern_.col_idxs.size(), 0.0)
{}

void CollisionOperator::add(index_type row, index_type col,
                            real_type coeff) const
{
    for (index_type p = pattern_.row_ptrs[row];
         p < pattern_.row_ptrs[row + 1]; ++p) {
        if (pattern_.col_idxs[p] == col) {
            scratch_[static_cast<std::size_t>(p)] += coeff;
            return;
        }
    }
    throw Error("CollisionOperator: coefficient outside 9-point stencil");
}

void CollisionOperator::set_background(const PlasmaState& state,
                                       ConstVecView<real_type> f)
{
    BSIS_ENSURE_DIMS(f.len == grid_.rows(), "distribution size mismatch");
    constexpr int num_shells = 48;
    std::vector<real_type> actual(num_shells, 0.0);
    std::vector<real_type> reference(num_shells, 0.0);

    const real_type t = std::max(state.temperature, real_type{1e-12});
    const real_type vth = std::sqrt(t);
    PlasmaState maxw_state = state;
    for (index_type j = 0; j < grid_.n_vperp(); ++j) {
        const real_type vol = grid_.cell_volume(j);
        const real_type w2 = grid_.vperp(j);
        for (index_type i = 0; i < grid_.n_vpar(); ++i) {
            const real_type w1 = grid_.vpar(i) - state.u_par;
            const real_type wbar = std::sqrt(w1 * w1 + w2 * w2) / vth;
            int shell = static_cast<int>(wbar / screen_max_ * num_shells);
            shell = std::min(shell, num_shells - 1);
            const real_type maxw =
                maxw_state.density /
                std::pow(2 * std::numbers::pi_v<real_type> * t,
                         real_type{1.5}) *
                std::exp(-(w1 * w1 + w2 * w2) / (2 * t));
            actual[static_cast<std::size_t>(shell)] +=
                f[grid_.row(i, j)] * vol;
            reference[static_cast<std::size_t>(shell)] += maxw * vol;
        }
    }
    screen_.assign(num_shells, real_type{1});
    for (int s = 0; s < num_shells; ++s) {
        if (reference[static_cast<std::size_t>(s)] > real_type{1e-14}) {
            screen_[static_cast<std::size_t>(s)] =
                std::clamp(actual[static_cast<std::size_t>(s)] /
                               reference[static_cast<std::size_t>(s)],
                           real_type{0.2}, real_type{5.0});
        }
    }
}

void CollisionOperator::clear_background() { screen_.clear(); }

void CollisionOperator::blend_background(const std::vector<real_type>& other,
                                         real_type weight)
{
    BSIS_ENSURE_DIMS(other.size() == screen_.size(),
                     "screening tables must match");
    for (std::size_t s = 0; s < screen_.size(); ++s) {
        screen_[s] = (1 - weight) * screen_[s] + weight * other[s];
    }
}

real_type CollisionOperator::screening(real_type wbar) const
{
    if (screen_.empty()) {
        return 1;
    }
    const auto n = static_cast<int>(screen_.size());
    const real_type pos =
        std::clamp(wbar / screen_max_ * n - real_type{0.5}, real_type{0},
                   static_cast<real_type>(n - 1));
    const int lo = static_cast<int>(pos);
    const int hi = std::min(lo + 1, n - 1);
    const real_type frac = pos - lo;
    const real_type kappa =
        (1 - frac) * screen_[static_cast<std::size_t>(lo)] +
        frac * screen_[static_cast<std::size_t>(hi)];
    // Modulate with the species' screening strength.
    return 1 + species_.screening_strength * (kappa - 1);
}

void CollisionOperator::tensor(const PlasmaState& state, real_type vpar,
                               real_type vperp, real_type& d11,
                               real_type& d12, real_type& d22) const
{
    const real_type t2 = state.temperature;
    const real_type w1 = vpar - state.u_par;
    const real_type w2 = vperp;
    const real_type w_sq = w1 * w1 + w2 * w2;
    if (w_sq < real_type{1e-12}) {
        d11 = d22 = t2;
        d12 = 0;
        return;
    }
    const real_type wbar = std::sqrt(w_sq / t2);
    // Speed-dependent parallel/perpendicular diffusion (Rosenbluth-like):
    // both decay at high speed, the perpendicular one more slowly --
    // exactly the anisotropy that produces the mixed-derivative terms.
    const real_type denom = 1 + wbar * wbar * wbar / 3;
    const real_type screen = screening(wbar);
    const real_type phi_par = screen * t2 / denom;
    const real_type phi_perp =
        screen * t2 * (1 + wbar * wbar / 4) / denom;
    const real_type diff = phi_par - phi_perp;
    d11 = phi_perp + diff * (w1 * w1) / w_sq;
    d22 = phi_perp + diff * (w2 * w2) / w_sq;
    d12 = diff * (w1 * w2) / w_sq;
}

void CollisionOperator::accumulate(const PlasmaState& state,
                                   real_type scale) const
{
    std::fill(scratch_.begin(), scratch_.end(), real_type{0});
    const index_type nx = grid_.n_vpar();
    const index_type ny = grid_.n_vperp();
    const real_type d1 = grid_.dvpar();
    const real_type d2 = grid_.dvperp();
    const real_type t2 = state.temperature;
    // Collisionality nu ~ n / T^{3/2} (Coulomb scaling): the moment
    // dependence is part of the nonlinearity the Picard loop resolves.
    const real_type nu = species_.collision_rate *
                         (state.density / species_.reference_density) /
                         std::pow(t2, real_type{1.5});
    const real_type k = scale * nu;

    // Maxwellian-weighted (Chang-Cooper-type) form of the bracket:
    //   a f + grad f  =  M grad(f / M),   M = exp(-|v - u|^2 / 2T),
    // discretized as  M_face * ((f/M)_R - (f/M)_L) / h. The drifting
    // Maxwellian of the iterate's moments is then an EXACT discrete
    // stationary state, which keeps the moment drift of the implicit
    // solve second order in the deviation from equilibrium.
    const auto log_m = [&](real_type vpar, real_type vperp) {
        const real_type w1 = vpar - state.u_par;
        return -(w1 * w1 + vperp * vperp) / (2 * t2);
    };
    // M_face / M_cell evaluated stably in log space.
    const auto ratio = [&](real_type log_m_face, real_type log_m_cell) {
        return std::exp(log_m_face - log_m_cell);
    };

    // --- v_par faces (between (i, j) and (i+1, j)) ---
    for (index_type j = 0; j < ny; ++j) {
        const real_type vperp_c = grid_.vperp(j);
        for (index_type i = 0; i + 1 < nx; ++i) {
            const real_type vpar_f = grid_.vpar(i) + d1 / 2;
            real_type d11;
            real_type d12;
            real_type d22;
            tensor(state, vpar_f, vperp_c, d11, d12, d22);
            const real_type lmf = log_m(vpar_f, vperp_c);

            const index_type left = grid_.row(i, j);
            const index_type right = grid_.row(i + 1, j);
            // Flux coefficient on a distribution value `col` contributes
            // +c/d1 to the left row and -c/d1 to the right row.
            const auto flux = [&](index_type col, real_type coeff) {
                add(left, col, k * coeff / d1);
                add(right, col, -k * coeff / d1);
            };
            // d11 * M_f * ((f/M)_R - (f/M)_L) / d1
            flux(left, -d11 * ratio(lmf, log_m(grid_.vpar(i), vperp_c)) /
                           d1);
            flux(right,
                 d11 * ratio(lmf, log_m(grid_.vpar(i + 1), vperp_c)) / d1);
            // d12 * M_f * d(f/M)/d vperp at the face; the mixed bracket is
            // dropped on faces adjacent to the vperp boundary (one-sided
            // stencils would leave the 9-point pattern).
            if (j > 0 && j + 1 < ny) {
                const real_type c4 = d12 / (4 * d2);
                const auto mixed = [&](index_type ii, index_type jj,
                                       real_type sign) {
                    flux(grid_.row(ii, jj),
                         sign * c4 *
                             ratio(lmf, log_m(grid_.vpar(ii),
                                              grid_.vperp(jj))));
                };
                mixed(i, j + 1, 1);
                mixed(i + 1, j + 1, 1);
                mixed(i, j - 1, -1);
                mixed(i + 1, j - 1, -1);
            }
        }
    }

    // --- v_perp faces (between (i, j) and (i, j+1)) ---
    for (index_type j = 0; j + 1 < ny; ++j) {
        const real_type vperp_f = grid_.vperp_face(j + 1);
        const real_type jac_b = grid_.vperp(j);
        const real_type jac_t = grid_.vperp(j + 1);
        for (index_type i = 0; i < nx; ++i) {
            const real_type vpar_c = grid_.vpar(i);
            real_type d11;
            real_type d12;
            real_type d22;
            tensor(state, vpar_c, vperp_f, d11, d12, d22);
            const real_type lmf = log_m(vpar_c, vperp_f);

            const index_type bottom = grid_.row(i, j);
            const index_type top = grid_.row(i, j + 1);
            // Cylindrical metric: flux weighted by the face radius and
            // divided by each cell's center radius.
            const auto flux = [&](index_type col, real_type coeff) {
                add(bottom, col, k * coeff * vperp_f / (jac_b * d2));
                add(top, col, -k * coeff * vperp_f / (jac_t * d2));
            };
            // d22 * M_f * ((f/M)_T - (f/M)_B) / d2
            flux(bottom,
                 -d22 * ratio(lmf, log_m(vpar_c, grid_.vperp(j))) / d2);
            flux(top,
                 d22 * ratio(lmf, log_m(vpar_c, grid_.vperp(j + 1))) / d2);
            // d12 * M_f * d(f/M)/d vpar at the face
            if (i > 0 && i + 1 < nx) {
                const real_type c4 = d12 / (4 * d1);
                const auto mixed = [&](index_type ii, index_type jj,
                                       real_type sign) {
                    flux(grid_.row(ii, jj),
                         sign * c4 *
                             ratio(lmf, log_m(grid_.vpar(ii),
                                              grid_.vperp(jj))));
                };
                mixed(i + 1, j, 1);
                mixed(i + 1, j + 1, 1);
                mixed(i - 1, j, -1);
                mixed(i - 1, j + 1, -1);
            }
        }
    }
}

void CollisionOperator::assemble(const PlasmaState& state, real_type dt,
                                 real_type* values) const
{
    BSIS_ENSURE_ARG(dt > 0, "time step must be positive");
    accumulate(state, real_type{1});
    const index_type rows = pattern_.rows();
    for (index_type r = 0; r < rows; ++r) {
        for (index_type p = pattern_.row_ptrs[r];
             p < pattern_.row_ptrs[r + 1]; ++p) {
            const real_type identity =
                pattern_.col_idxs[p] == r ? real_type{1} : real_type{0};
            values[p] =
                identity - dt * scratch_[static_cast<std::size_t>(p)];
        }
    }
}

void CollisionOperator::apply(const PlasmaState& state,
                              ConstVecView<real_type> f,
                              VecView<real_type> out) const
{
    BSIS_ENSURE_DIMS(f.len == grid_.rows() && out.len == grid_.rows(),
                     "distribution size mismatch");
    accumulate(state, real_type{1});
    for (index_type r = 0; r < grid_.rows(); ++r) {
        real_type sum{};
        for (index_type p = pattern_.row_ptrs[r];
             p < pattern_.row_ptrs[r + 1]; ++p) {
            sum += scratch_[static_cast<std::size_t>(p)] *
                   f[pattern_.col_idxs[p]];
        }
        out[r] = sum;
    }
}

}  // namespace bsis::xgc
