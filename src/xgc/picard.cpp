#include "xgc/picard.hpp"

#include <cmath>

#include "blas/kernels.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace bsis::xgc {

real_type PicardReport::max_conservation_error() const
{
    real_type m = 0;
    for (const auto e : conservation_errors) {
        m = std::max(m, e);
    }
    return m;
}

double PicardReport::mean_species_iterations(int picard_index,
                                             size_type species,
                                             size_type num_species) const
{
    const auto& log =
        linear_logs[static_cast<std::size_t>(picard_index)];
    double sum = 0;
    size_type count = 0;
    for (size_type sys = species; sys < log.num_batch();
         sys += num_species) {
        sum += log.iterations(sys);
        ++count;
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

PicardReport implicit_collision_step(CollisionWorkload& workload,
                                     const PicardSettings& settings,
                                     const BatchLinearSolver& solve)
{
    BSIS_ENSURE_ARG(settings.num_iterations >= 1,
                    "need at least one Picard iteration");
    BSIS_ENSURE_ARG(settings.dt > 0, "time step must be positive");

    const size_type nsys = workload.num_systems();
    obs::ScopedSpan step_span("picard_step", "xgc",
                              static_cast<std::int64_t>(nsys));
    const index_type n = workload.grid().rows();

    // f^n (right-hand side of every linear solve in this step).
    BatchVector<real_type> f_n = workload.distributions();
    // Picard iterate; starts from f^n.
    BatchVector<real_type> x = f_n;
    BatchVector<real_type> x_prev(nsys, n);

    auto a = workload.make_matrix_batch();

    PicardReport report;
    real_type f_n_norm = 0;
    for (size_type sys = 0; sys < nsys; ++sys) {
        f_n_norm += blas::dot(ConstVecView<real_type>(f_n.entry(sys)),
                              ConstVecView<real_type>(f_n.entry(sys)));
    }
    f_n_norm = std::sqrt(f_n_norm);

    // Conserved targets of every system (the pre-step invariants).
    std::vector<ConservedQuantities> targets;
    targets.reserve(static_cast<std::size_t>(nsys));
    for (size_type sys = 0; sys < nsys; ++sys) {
        targets.push_back(conserved(workload.grid(), f_n.entry(sys)));
    }

    std::vector<real_type> residual(static_cast<std::size_t>(n));
    for (int k = 0; k < settings.num_iterations; ++k) {
        obs::ScopedSpan iter_span("picard_iteration", "xgc", k);
        obs::traced("assemble_batch", [&] {
            workload.assemble_batch(x, f_n, settings.dt, a);
        });

        // True nonlinear residual ||f^n - A(x) x|| / ||f^n||: the honest
        // fixed-point convergence measure. (Monitoring only the change of
        // the iterate would be fooled by a loose linear solver whose
        // warm-started solves no-op.)
        real_type res = 0;
        obs::traced("nonlinear_residual", [&] {
            for (size_type sys = 0; sys < nsys; ++sys) {
                spmv(a.entry(sys), ConstVecView<real_type>(x.entry(sys)),
                     VecView<real_type>{residual.data(), n});
                const auto bv = f_n.entry(sys);
                for (index_type i = 0; i < n; ++i) {
                    const real_type d =
                        bv[i] - residual[static_cast<std::size_t>(i)];
                    res += d * d;
                }
            }
        });
        report.nonlinear_change =
            std::sqrt(res) / std::max(f_n_norm, real_type{1e-30});
        if (settings.nonlinear_tol > 0 && k > 0 &&
            report.nonlinear_change < settings.nonlinear_tol) {
            report.converged = true;
            break;
        }

        x_prev = x;
        if (!settings.warm_start) {
            x.fill(real_type{0});
        }
        report.linear_logs.push_back(
            solve(a, f_n, x, settings.warm_start, k));
        ++report.picard_iterations;
    }
    if (settings.nonlinear_tol == 0) {
        report.converged = true;
    }
    (void)x_prev;

    // Conservation of the raw Picard solution, then the post-step moment
    // fix (production XGC behavior), then the accepted-step conservation.
    report.raw_conservation_errors.reserve(static_cast<std::size_t>(nsys));
    for (size_type sys = 0; sys < nsys; ++sys) {
        report.raw_conservation_errors.push_back(conservation_error(
            targets[static_cast<std::size_t>(sys)],
            conserved(workload.grid(), x.entry(sys))));
    }
    if (settings.conservation_fix) {
        for (size_type sys = 0; sys < nsys; ++sys) {
            moment_fix(workload.grid(), x.entry(sys),
                       targets[static_cast<std::size_t>(sys)]);
        }
    }
    report.conservation_errors.reserve(static_cast<std::size_t>(nsys));
    for (size_type sys = 0; sys < nsys; ++sys) {
        const auto after = conserved(workload.grid(), x.entry(sys));
        report.conservation_errors.push_back(conservation_error(
            targets[static_cast<std::size_t>(sys)], after));
    }
    workload.distributions() = x;
    if (obs::metrics_enabled()) {
        auto& m = obs::metrics();
        m.add_named("xgc.picard_steps");
        m.add_named("xgc.picard_iterations", report.picard_iterations);
        m.set_named("xgc.nonlinear_residual",
                    static_cast<double>(report.nonlinear_change));
        m.set_named("xgc.max_conservation_error",
                    static_cast<double>(report.max_conservation_error()));
        FailureCounts fails{};
        for (const auto& log : report.linear_logs) {
            const auto counts = log.failure_counts();
            for (std::size_t c = 0; c < counts.size(); ++c) {
                fails[c] += counts[c];
            }
        }
        m.add_named("xgc.fail.max_iters",
                    fails[static_cast<int>(FailureClass::max_iters)]);
        m.add_named("xgc.fail.breakdown_rho",
                    fails[static_cast<int>(FailureClass::breakdown_rho)]);
        m.add_named("xgc.fail.breakdown_omega",
                    fails[static_cast<int>(FailureClass::breakdown_omega)]);
        m.add_named("xgc.fail.stagnated",
                    fails[static_cast<int>(FailureClass::stagnated)]);
        m.add_named("xgc.fail.non_finite",
                    fails[static_cast<int>(FailureClass::non_finite)]);
    }
    return report;
}

BatchLinearSolver make_reference_solver(SolverSettings base)
{
    return [base](const BatchCsr<real_type>& a,
                  const BatchVector<real_type>& b,
                  BatchVector<real_type>& x, bool warm_start,
                  int /*picard_index*/) {
        SolverSettings settings = base;
        settings.use_initial_guess = warm_start;
        return solve_batch(a, b, x, settings).log;
    };
}

}  // namespace bsis::xgc
