file(REMOVE_RECURSE
  "CMakeFiles/bench_convergence_history.dir/bench_convergence_history.cpp.o"
  "CMakeFiles/bench_convergence_history.dir/bench_convergence_history.cpp.o.d"
  "bench_convergence_history"
  "bench_convergence_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
