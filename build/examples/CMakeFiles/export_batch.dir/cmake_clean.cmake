file(REMOVE_RECURSE
  "CMakeFiles/export_batch.dir/export_batch.cpp.o"
  "CMakeFiles/export_batch.dir/export_batch.cpp.o.d"
  "export_batch"
  "export_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
