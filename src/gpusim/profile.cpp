#include "gpusim/profile.hpp"

#include <algorithm>

#include "gpusim/occupancy.hpp"
#include "util/error.hpp"

namespace bsis::gpusim {

CacheSizing profile_cache_sizing(const DeviceSpec& device,
                                 const StorageConfig& config,
                                 index_type block_threads,
                                 size_type pattern_index_count)
{
    CacheSizing sizing;
    // L1 available to a block = carve-out remainder, floored at 16 KiB
    // (the hardware's minimum L1 split).
    sizing.l1_bytes = static_cast<std::int64_t>(
        std::max(16.0 * 1024,
                 device.l1_shared_kib_per_cu * 1024 -
                     static_cast<double>(config.shared_bytes)));
    // The device-wide L2 is shared by every RESIDENT block; each traced
    // block sees its share (the paper's V100-vs-A100 L2 hit contrast comes
    // exactly from this partitioning). The SHARED sparsity pattern
    // occupies L2 once for every resident block (same addresses); the rest
    // is split among them.
    const auto occ =
        compute_occupancy(device, block_threads, config.shared_bytes);
    const auto pattern_bytes =
        static_cast<double>(pattern_index_count) * sizeof(index_type);
    sizing.l2_bytes = static_cast<std::int64_t>(
        pattern_bytes +
        std::max(0.0, device.l2_mib * 1024 * 1024 - pattern_bytes) /
            std::max(1, occ.device_slots(device)));
    return sizing;
}

KernelProfile profile_bicgstab(const DeviceSpec& device,
                               const StorageConfig& config,
                               index_type block_threads,
                               const ProfilePattern& pattern,
                               index_type rows,
                               const std::vector<int>& block_iterations,
                               const CacheSizing& sizing, bool pipelined)
{
    BSIS_ENSURE_ARG(pattern.row_ptrs != nullptr &&
                        pattern.csr_col_idxs != nullptr &&
                        pattern.ell_col_idxs != nullptr,
                    "pattern arrays must be non-null (may be empty)");
    KernelProfile profile;
    profile.warp_size = device.warp_size;
    MemoryHierarchy mem(sizing.l1_bytes, sizing.l2_bytes);
    for (std::size_t blk = 0; blk < block_iterations.size(); ++blk) {
        BlockTracer tracer(block_threads, device.warp_size, &mem);
        const auto map = AddressMap::for_system(
            static_cast<size_type>(blk), rows, pattern.nnz_stored,
            config.num_global);
        const auto trace =
            pipelined ? trace_pipelined_bicgstab : trace_bicgstab;
        trace(tracer, map, pattern.format, *pattern.row_ptrs,
              *pattern.csr_col_idxs, *pattern.ell_col_idxs, rows,
              pattern.nnz_per_row, block_iterations[blk], config);
        profile.counters += tracer.counters();
        ++profile.blocks_traced;
        // Next block lands on a different CU in general.
        mem.invalidate_l1();
    }
    profile.l1 = mem.l1_stats();
    profile.l2 = mem.l2_stats();
    return profile;
}

}  // namespace bsis::gpusim
