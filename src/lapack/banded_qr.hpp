// Banded QR factorization and solve via Givens rotations.
//
// This is an exact sparse direct solver for the band/stencil matrices of
// the collision kernel and serves as our stand-in for cuSOLVER's
// csrqrsvBatched (the batched sparse QR the paper compares against in
// Fig. 6). Like the paper's comparison target, it solves to machine
// precision and performs roughly an order of magnitude more flops per
// system than a few BiCGSTAB iterations.
#pragma once

#include "matrix/batch_banded.hpp"
#include "util/types.hpp"

namespace bsis::lapack {

/// Solves A x = b by banded QR (Givens). `a` is destroyed (overwritten by
/// R); `b` is overwritten by the solution. The BandedView layout reserves
/// exactly the kl extra super-diagonals the R factor fills in.
void gbqr_solve(BandedView<real_type> a, VecView<real_type> b);

/// Floating-point operations of one banded-QR solve on (n, kl, ku).
double gbqr_flops(index_type n, index_type kl, index_type ku);

/// Batched driver (OpenMP over systems); destroys the band storage.
void batch_gbqr_solve(BatchBanded<real_type>& a, BatchVector<real_type>& x);

}  // namespace bsis::lapack
