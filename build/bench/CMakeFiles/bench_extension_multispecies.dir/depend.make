# Empty dependencies file for bench_extension_multispecies.
# This may be replaced when dependencies are built.
