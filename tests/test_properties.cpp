// Property-based tests: randomized sweeps over module invariants,
// parameterized by RNG seed (deterministic generators, so failures
// reproduce exactly).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/solver.hpp"
#include "core/storage_config.hpp"
#include "exec/executor.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/scheduler.hpp"
#include "lapack/banded_lu.hpp"
#include "lapack/dense.hpp"
#include "matrix/conversions.hpp"
#include "matrix/stats.hpp"
#include "util/rng.hpp"
#include "xgc/distribution.hpp"
#include "xgc/grid.hpp"

namespace bsis {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

/// Random square CSR batch with a random (shared) pattern: every row gets
/// the diagonal plus a random set of off-diagonals; values are diagonally
/// dominant so every solver and factorization applies.
BatchCsr<real_type> random_sparse_batch(Rng& rng, index_type n,
                                        size_type nbatch)
{
    std::vector<index_type> row_ptrs(static_cast<std::size_t>(n) + 1, 0);
    std::vector<index_type> col_idxs;
    for (index_type r = 0; r < n; ++r) {
        std::vector<index_type> cols{r};
        const int extras = static_cast<int>(rng.uniform_int(6));
        for (int e = 0; e < extras; ++e) {
            cols.push_back(static_cast<index_type>(rng.uniform_int(
                static_cast<std::uint64_t>(n))));
        }
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        for (const auto c : cols) {
            col_idxs.push_back(c);
        }
        row_ptrs[static_cast<std::size_t>(r) + 1] =
            static_cast<index_type>(col_idxs.size());
    }
    BatchCsr<real_type> batch(nbatch, n, row_ptrs, col_idxs);
    for (size_type b = 0; b < nbatch; ++b) {
        real_type* vals = batch.values(b);
        const auto& ptrs = batch.row_ptrs();
        const auto& cols = batch.col_idxs();
        for (index_type r = 0; r < n; ++r) {
            real_type off = 0;
            index_type diag_pos = -1;
            for (index_type p = ptrs[r]; p < ptrs[r + 1]; ++p) {
                if (cols[p] == r) {
                    diag_pos = p;
                } else {
                    vals[p] = rng.uniform(-1.0, 1.0);
                    off += std::abs(vals[p]);
                }
            }
            vals[diag_pos] = off + 1.0 + rng.uniform();
        }
    }
    return batch;
}

TEST_P(Seeded, ConversionChainPreservesSpmvOnRandomPatterns)
{
    Rng rng(GetParam());
    const index_type n = 20 + static_cast<index_type>(rng.uniform_int(60));
    auto csr = random_sparse_batch(rng, n, 3);
    auto ell = to_ell(csr);
    auto sellp = to_sellp(csr, 8);
    auto back = to_csr(ell);

    std::vector<real_type> x(static_cast<std::size_t>(n));
    for (auto& v : x) {
        v = rng.uniform(-1.0, 1.0);
    }
    for (size_type b = 0; b < 3; ++b) {
        std::vector<real_type> y0(static_cast<std::size_t>(n));
        std::vector<real_type> y1(static_cast<std::size_t>(n));
        const ConstVecView<real_type> xv{x.data(), n};
        spmv(csr.entry(b), xv, VecView<real_type>{y0.data(), n});
        spmv(ell.entry(b), xv, VecView<real_type>{y1.data(), n});
        for (index_type i = 0; i < n; ++i) {
            ASSERT_NEAR(y0[static_cast<std::size_t>(i)],
                        y1[static_cast<std::size_t>(i)], 1e-13);
        }
        spmv(sellp.entry(b), xv, VecView<real_type>{y1.data(), n});
        for (index_type i = 0; i < n; ++i) {
            ASSERT_NEAR(y0[static_cast<std::size_t>(i)],
                        y1[static_cast<std::size_t>(i)], 1e-13);
        }
        spmv(back.entry(b), xv, VecView<real_type>{y1.data(), n});
        for (index_type i = 0; i < n; ++i) {
            ASSERT_NEAR(y0[static_cast<std::size_t>(i)],
                        y1[static_cast<std::size_t>(i)], 1e-13);
        }
    }
}

TEST_P(Seeded, TransposeSpmvIsAdjointOfSpmv)
{
    // <A x, y> == <x, A^T y> for random vectors, all formats.
    Rng rng(GetParam() + 1000);
    const index_type n = 16 + static_cast<index_type>(rng.uniform_int(48));
    auto csr = random_sparse_batch(rng, n, 1);
    auto ell = to_ell(csr);
    std::vector<real_type> x(static_cast<std::size_t>(n));
    std::vector<real_type> y(static_cast<std::size_t>(n));
    for (index_type i = 0; i < n; ++i) {
        x[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
        y[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
    }
    std::vector<real_type> ax(static_cast<std::size_t>(n));
    std::vector<real_type> aty(static_cast<std::size_t>(n));
    const ConstVecView<real_type> xv{x.data(), n};
    const ConstVecView<real_type> yv{y.data(), n};
    spmv(csr.entry(0), xv, VecView<real_type>{ax.data(), n});
    spmv_transpose(csr.entry(0), yv, VecView<real_type>{aty.data(), n});
    const real_type lhs = blas::dot(ConstVecView<real_type>{ax.data(), n},
                                    yv);
    const real_type rhs = blas::dot(xv,
                                    ConstVecView<real_type>{aty.data(), n});
    EXPECT_NEAR(lhs, rhs, 1e-11 * (std::abs(lhs) + 1));
    // ELL transpose agrees with CSR transpose.
    std::vector<real_type> aty_ell(static_cast<std::size_t>(n));
    spmv_transpose(ell.entry(0), yv, VecView<real_type>{aty_ell.data(), n});
    for (index_type i = 0; i < n; ++i) {
        ASSERT_NEAR(aty_ell[static_cast<std::size_t>(i)],
                    aty[static_cast<std::size_t>(i)], 1e-12);
    }
}

TEST_P(Seeded, EverySolverReachesToleranceOnRandomBatches)
{
    Rng rng(GetParam() + 2000);
    const index_type n = 24 + static_cast<index_type>(rng.uniform_int(40));
    auto csr = random_sparse_batch(rng, n, 2);
    BatchVector<real_type> b(2, n);
    for (size_type i = 0; i < 2; ++i) {
        for (auto& v : b.entry(i)) {
            v = rng.uniform(-1.0, 1.0);
        }
    }
    for (const auto solver :
         {SolverType::bicgstab, SolverType::bicg, SolverType::cgs,
          SolverType::gmres}) {
        SolverSettings s;
        s.solver = solver;
        s.tolerance = 1e-9;
        s.max_iterations = 2000;
        BatchVector<real_type> x(2, n);
        const auto result = solve_batch(csr, b, x, s);
        EXPECT_TRUE(result.log.all_converged())
            << "solver " << static_cast<int>(solver) << " seed "
            << GetParam();
        for (size_type i = 0; i < 2; ++i) {
            EXPECT_LE(result.log.residual_norm(i), 1e-9);
        }
    }
}

TEST_P(Seeded, GreedyScheduleNeverWorseThanWaveQuantized)
{
    Rng rng(GetParam() + 3000);
    const int n = 50 + static_cast<int>(rng.uniform_int(200));
    const int slots = 8 + static_cast<int>(rng.uniform_int(64));
    std::vector<double> durations;
    durations.reserve(static_cast<std::size_t>(n));
    double total = 0;
    double longest = 0;
    for (int i = 0; i < n; ++i) {
        durations.push_back(rng.uniform(1e-5, 2e-3));
        total += durations.back();
        longest = std::max(longest, durations.back());
    }
    const auto greedy = gpusim::schedule_blocks(
        durations, slots, gpusim::SchedulingPolicy::greedy_dynamic);
    const auto wave = gpusim::schedule_blocks(
        durations, slots, gpusim::SchedulingPolicy::wave_quantized);
    EXPECT_LE(greedy.makespan_seconds, wave.makespan_seconds + 1e-15);
    // Lower bounds of any schedule.
    EXPECT_GE(greedy.makespan_seconds, longest - 1e-15);
    EXPECT_GE(greedy.makespan_seconds, total / slots - 1e-12);
    // Greedy list scheduling is within 2x of the trivial lower bound.
    EXPECT_LE(greedy.makespan_seconds,
              2 * std::max(longest, total / slots) + 1e-12);
}

TEST_P(Seeded, CoalescingCoversEveryAccessWithoutDuplicates)
{
    Rng rng(GetParam() + 4000);
    std::vector<std::uint64_t> addrs;
    for (int lane = 0; lane < 32; ++lane) {
        addrs.push_back(rng.uniform_int(1 << 20));
    }
    std::vector<std::uint64_t> segs;
    gpusim::coalesce(addrs, 8, 128, segs);
    // Segments are unique, aligned, and cover every lane access.
    for (std::size_t i = 1; i < segs.size(); ++i) {
        EXPECT_LT(segs[i - 1], segs[i]);
    }
    for (const auto s : segs) {
        EXPECT_EQ(s % 128, 0u);
    }
    for (const auto a : addrs) {
        bool covered_lo = false;
        bool covered_hi = false;
        for (const auto s : segs) {
            covered_lo |= a >= s && a < s + 128;
            covered_hi |= a + 7 >= s && a + 7 < s + 128;
        }
        EXPECT_TRUE(covered_lo && covered_hi);
    }
    EXPECT_LE(segs.size(), 2 * addrs.size());
}

TEST_P(Seeded, CacheHitRateImprovesOnSecondPass)
{
    Rng rng(GetParam() + 5000);
    gpusim::Cache cache(16 * 1024, 128, 4);
    // Working set half the capacity: second pass must hit ~always.
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 64; ++i) {
        addrs.push_back(rng.uniform_int(8 * 1024));
    }
    for (const auto a : addrs) {
        cache.access(a);
    }
    const auto first = cache.stats();
    for (const auto a : addrs) {
        EXPECT_TRUE(cache.access(a)) << "address " << a;
    }
    EXPECT_GT(cache.stats().hits, first.hits);
}

TEST_P(Seeded, MomentFixHitsArbitraryNearbyTargets)
{
    Rng rng(GetParam() + 6000);
    const xgc::VelocityGrid grid(16, 15);
    xgc::PlasmaState state;
    state.density = 1.0 + rng.uniform(-0.2, 0.2);
    state.u_par = rng.uniform(-0.2, 0.2);
    state.temperature = 1.0 + rng.uniform(-0.3, 0.3);
    std::vector<real_type> f(static_cast<std::size_t>(grid.rows()));
    xgc::maxwellian(grid, state, VecView<real_type>{f.data(), grid.rows()});
    auto target =
        xgc::conserved(grid, ConstVecView<real_type>{f.data(), grid.rows()});
    target.density *= 1.0 + rng.uniform(-0.01, 0.01);
    target.momentum += rng.uniform(-0.01, 0.01);
    target.energy *= 1.0 + rng.uniform(-0.01, 0.01);
    xgc::moment_fix(grid, VecView<real_type>{f.data(), grid.rows()},
                    target);
    const auto fixed =
        xgc::conserved(grid, ConstVecView<real_type>{f.data(), grid.rows()});
    EXPECT_NEAR(fixed.density, target.density,
                1e-11 * std::abs(target.density));
    EXPECT_NEAR(fixed.momentum, target.momentum,
                1e-11 * (std::abs(target.momentum) + 1));
    EXPECT_NEAR(fixed.energy, target.energy,
                1e-11 * std::abs(target.energy));
}

TEST_P(Seeded, StorageConfigInvariants)
{
    Rng rng(GetParam() + 7000);
    const index_type n = 64 + static_cast<index_type>(rng.uniform_int(2000));
    const index_type warp = rng.uniform() < 0.5 ? 32 : 64;
    const size_type capacity =
        static_cast<size_type>(rng.uniform_int(128 * 1024));
    const auto slots = bicgstab_slots(1);
    const auto cfg = configure_storage(slots, n, warp, sizeof(real_type),
                                       capacity);
    EXPECT_EQ(cfg.num_shared + cfg.num_global,
              static_cast<int>(slots.size()));
    EXPECT_EQ(cfg.padded_length % warp, 0);
    EXPECT_GE(cfg.padded_length, n);
    EXPECT_LT(cfg.padded_length, n + warp);
    EXPECT_EQ(cfg.shared_bytes,
              static_cast<size_type>(cfg.num_shared) * cfg.padded_length *
                  static_cast<size_type>(sizeof(real_type)));
    EXPECT_LE(cfg.shared_bytes, capacity);
    // Monotonicity: more capacity never places fewer vectors.
    const auto bigger = configure_storage(slots, n, warp, sizeof(real_type),
                                          capacity * 2 + 4096);
    EXPECT_GE(bigger.num_shared, cfg.num_shared);
}

TEST_P(Seeded, BandedLuMatchesDenseLuOnRandomBands)
{
    Rng rng(GetParam() + 8000);
    const index_type n = 12 + static_cast<index_type>(rng.uniform_int(30));
    const auto kl =
        static_cast<index_type>(rng.uniform_int(std::min(n - 1, 5)));
    const auto ku =
        static_cast<index_type>(rng.uniform_int(std::min(n - 1, 5)));
    BatchBanded<real_type> banded(1, n, kl, ku);
    BatchDense<real_type> dense(1, n, n);
    auto bv = banded.entry(0);
    auto dv = dense.entry(0);
    for (index_type i = 0; i < n; ++i) {
        real_type off = 0;
        for (index_type j = std::max<index_type>(0, i - kl);
             j <= std::min<index_type>(n - 1, i + ku); ++j) {
            if (j != i) {
                bv(i, j) = rng.uniform(-1.0, 1.0);
                dv(i, j) = bv(i, j);
                off += std::abs(bv(i, j));
            }
        }
        bv(i, i) = off + 1;
        dv(i, i) = bv(i, i);
    }
    std::vector<real_type> rhs(static_cast<std::size_t>(n));
    for (auto& v : rhs) {
        v = rng.uniform(-1.0, 1.0);
    }
    auto x_banded = rhs;
    auto x_dense = rhs;
    lapack::gbsv(banded.entry(0), VecView<real_type>{x_banded.data(), n});
    lapack::gesv(dense.entry(0), VecView<real_type>{x_dense.data(), n});
    for (index_type i = 0; i < n; ++i) {
        ASSERT_NEAR(x_banded[static_cast<std::size_t>(i)],
                    x_dense[static_cast<std::size_t>(i)], 1e-10);
    }
}

TEST_P(Seeded, SanitizedSolveIsCleanAndObservationOnly)
{
    // Random batch systems, random sizes, both warp widths: the fused
    // BiCGStab trace must be violation-free under the SIMT sanitizer, and
    // turning the sanitizer on must not perturb the solve (bit-identical
    // solutions, identical iteration counts).
    Rng rng(GetParam());
    const index_type n = 16 + static_cast<index_type>(rng.uniform_int(80));
    const size_type nbatch = 1 + static_cast<size_type>(rng.uniform_int(4));
    auto a = random_sparse_batch(rng, n, nbatch);
    BatchVector<real_type> b(nbatch, n);
    for (size_type s = 0; s < nbatch; ++s) {
        for (index_type i = 0; i < n; ++i) {
            b.entry(s)[i] = rng.uniform(-1.0, 1.0);
        }
    }
    SolverSettings settings;
    settings.tolerance = 1e-9;

    // V100: warp 32; MI100: wavefront 64.
    for (const auto* device : {&gpusim::v100(), &gpusim::mi100()}) {
        SimGpuExecutor plain(*device);
        SimGpuExecutor sanitized(*device);
        sanitized.set_sanitize(true);
        BatchVector<real_type> x_plain(nbatch, n, 0.0);
        BatchVector<real_type> x_san(nbatch, n, 0.0);
        const auto r_plain = plain.solve(a, b, x_plain, settings);
        const auto r_san = sanitized.solve(a, b, x_san, settings);

        ASSERT_TRUE(r_san.sanitized);
        EXPECT_TRUE(r_san.sanitizer.clean())
            << device->name << ": " << r_san.sanitizer.summary();
        for (size_type s = 0; s < nbatch; ++s) {
            EXPECT_EQ(r_plain.log.iterations(s), r_san.log.iterations(s));
            for (index_type i = 0; i < n; ++i) {
                ASSERT_EQ(x_plain.entry(s)[i], x_san.entry(s)[i]);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 5, 8, 13,
                                                          21, 34));

}  // namespace
}  // namespace bsis
