# Empty dependencies file for bench_fig2_eigenvalues.
# This may be replaced when dependencies are built.
