#include "gpusim/scheduler.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "util/error.hpp"

namespace bsis::gpusim {

ScheduleTimeline schedule_blocks_timeline(
    const std::vector<double>& block_seconds, int slots,
    SchedulingPolicy policy)
{
    BSIS_ENSURE_ARG(slots >= 1, "need at least one block slot");
    ScheduleTimeline timeline;
    if (block_seconds.empty()) {
        return timeline;
    }
    const auto n = block_seconds.size();
    timeline.blocks.resize(n);
    if (policy == SchedulingPolicy::wave_quantized) {
        // Whole waves retire together: the hardware dispatches the next
        // wave only when every CU of the previous one is free, so every
        // block of a wave starts at the wave boundary.
        double wave_start = 0;
        for (std::size_t start = 0; start < n;
             start += static_cast<std::size_t>(slots)) {
            const std::size_t end =
                std::min(n, start + static_cast<std::size_t>(slots));
            double wave_max = 0;
            for (std::size_t i = start; i < end; ++i) {
                timeline.blocks[i].start_seconds = wave_start;
                timeline.blocks[i].end_seconds =
                    wave_start + block_seconds[i];
                timeline.blocks[i].slot = static_cast<int>(i - start);
                wave_max = std::max(wave_max, block_seconds[i]);
            }
            wave_start += wave_max;
            ++timeline.num_waves;
        }
        timeline.makespan_seconds = wave_start;
        return timeline;
    }
    // Greedy dynamic: blocks are assigned in order to the earliest-free
    // slot (classic list scheduling). Ties broken by slot index for a
    // deterministic timeline.
    using SlotTime = std::pair<double, int>;
    std::priority_queue<SlotTime, std::vector<SlotTime>,
                        std::greater<SlotTime>>
        free_times;
    for (int s = 0; s < slots; ++s) {
        free_times.emplace(0.0, s);
    }
    double makespan = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto [start, slot] = free_times.top();
        free_times.pop();
        const double end = start + block_seconds[i];
        free_times.emplace(end, slot);
        timeline.blocks[i] = {start, end, slot};
        makespan = std::max(makespan, end);
    }
    timeline.makespan_seconds = makespan;
    timeline.num_waves = static_cast<int>(
        (n + static_cast<std::size_t>(slots) - 1) /
        static_cast<std::size_t>(slots));
    return timeline;
}

ScheduleResult schedule_blocks(const std::vector<double>& block_seconds,
                               int slots, SchedulingPolicy policy)
{
    const auto timeline =
        schedule_blocks_timeline(block_seconds, slots, policy);
    return {timeline.makespan_seconds, timeline.num_waves};
}

}  // namespace bsis::gpusim
