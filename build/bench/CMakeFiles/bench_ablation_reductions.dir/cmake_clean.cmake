file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reductions.dir/bench_ablation_reductions.cpp.o"
  "CMakeFiles/bench_ablation_reductions.dir/bench_ablation_reductions.cpp.o.d"
  "bench_ablation_reductions"
  "bench_ablation_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
